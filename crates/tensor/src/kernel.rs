//! Shared cache-blocked matmul kernels.
//!
//! Every matrix product in the workspace — `matmul`, `t_matmul`, `matmul_t`
//! and their `_into` variants on [`crate::Matrix`] — bottoms out in the three
//! kernels here, replacing the three hand-rolled triple loops the substrate
//! started with:
//!
//! * [`gemm_nn`] — `out = A·B`, a register-tiled i-k-j loop: the output is
//!   processed in `MR × NR` tiles whose accumulators live in registers for
//!   the whole `k` loop, so output-row traffic drops by a factor of `NR`
//!   versus the naive loop and the inner body vectorises over `NR` lanes.
//! * [`gemm_tn`] — `out = Aᵀ·B` without materialising the transpose; the
//!   summed dimension walks *rows* of both operands, so all loads are
//!   contiguous.
//! * [`gemm_nt`] — `out = A·Bᵀ` via the **packed transposed-B path**: `B` is
//!   repacked into a transposed buffer (reused across calls, thread-local)
//!   and the product runs through [`gemm_nn`]. Packing costs `k·n` moves but
//!   turns an unvectorisable per-element dot-product reduction into the tiled
//!   kernel above.
//!
//! # Determinism
//!
//! All three kernels accumulate each output element strictly in ascending
//! order of the summed index — the same order as the naive loops they
//! replaced — so for finite operands results are bit-identical to the
//! pre-kernel substrate and seeded experiments reproduce exactly. (The old
//! loops skipped terms whose `A` element was exactly `0.0`; the kernels
//! accumulate every term, which only differs for non-finite operands, where
//! `0.0 × ∞`/`0.0 × NaN` now propagate NaN per IEEE-754.)
//!
//! # Integer kernels
//!
//! [`gemm_nn_i8`] and [`gemm_nt_i8`] are the i8×i8→i32 siblings used by the
//! quantised inference path ([`crate::QuantizedMatrix`]). They route each
//! shape to one of two bodies:
//!
//! * **Dot path** (narrow outputs, `n < NR` with `k ≥ NR`): each output
//!   element is a single-accumulator dot product over contiguous rows —
//!   the one reduction shape LLVM lowers to `vpmaddwd` (16 widening
//!   multiply-adds per AVX2 instruction, twice the f32 FMA lane count).
//!   This is the AE *encoder* shape (`k = input_dim`, `n = bottleneck`),
//!   where the f32 tile structure degrades to scalar ragged columns.
//! * **Tiled path** (everything else): the same `MR × NR` register tiling
//!   as the f32 kernels, vectorising over the `n` output columns with
//!   widened i32 multiplies. Wide outputs with tiny `k` (the AE *decoder*
//!   shape) land here, where per-element dot reductions would drown in
//!   horizontal-sum tails.
//!
//! Each route wants `B` in a different layout, so which kernel packs
//! depends on the route: dots read `Bᵀ` rows ([`gemm_nt_i8`] is pack-free,
//! [`gemm_nn_i8`] repacks), tiles read `B` rows ([`gemm_nn_i8`] is
//! pack-free, [`gemm_nt_i8`] repacks) — the thread-local panel is shared.
//! Integer addition is associative, so the routing is semantically
//! invisible and the determinism guarantee is stronger than the f32 one:
//! the integer output is *exactly* determined by the operands —
//! bit-identical across reruns, thread counts, and any reordering of the
//! accumulation.

use std::cell::RefCell;
use std::sync::atomic::{AtomicUsize, Ordering};

use hec_telemetry::FastCounter;

/// Rows of `A` per register tile.
const MR: usize = 4;
/// Columns of `B` per register tile (two 8-lane f32 vectors on AVX2).
const NR: usize = 16;

/// f32 gemm kernel invocations (`gemm_nn` + `gemm_tn`; `gemm_nt` routes
/// through `gemm_nn` and is counted there). Relaxed statics, not registry
/// entries: these sites sit inside parallel training loops where a mutex
/// per call would serialise the workers. [`publish_telemetry`] copies them
/// into the registry at snapshot time.
static GEMM_F32_CALLS: FastCounter = FastCounter::new("tensor.gemm.f32_calls");
/// i8×i8→i32 gemm kernel invocations (`gemm_nn_i8` + `gemm_nt_i8`).
static GEMM_I8_CALLS: FastCounter = FastCounter::new("tensor.gemm.i8_calls");

/// Publishes the kernel fast counters into the global telemetry registry
/// (as unlabelled counters, set-semantics — safe to call repeatedly). A
/// no-op when the `telemetry` feature is off.
pub fn publish_telemetry() {
    GEMM_F32_CALLS.publish();
    GEMM_I8_CALLS.publish();
}

/// Allocating matmul wrapper calls since process start — see
/// [`matmul_allocations`].
static MATMUL_ALLOCS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Reusable packing buffer for [`gemm_nt`]'s transposed-B path. Grows to
    /// the largest `k × n` panel seen on this thread and is then reused, so
    /// steady-state calls allocate nothing.
    static PACK_BT: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
    /// Same, for the integer kernels' repack panel — `Bᵀ` rows when
    /// [`gemm_nn_i8`] takes the dot route, `B` rows when [`gemm_nt_i8`]
    /// takes the tile route.
    static PACK_BT_I8: RefCell<Vec<i8>> = const { RefCell::new(Vec::new()) };
}

/// Number of *allocating* matmul wrapper calls (`Matrix::matmul`,
/// `t_matmul`, `matmul_t`) since process start.
///
/// Hot paths are expected to use the `_into` family, which never touches
/// this counter; tests assert a delta of zero around a warmed training step
/// to prove the hot path performs no matmul-related heap allocations.
pub fn matmul_allocations() -> usize {
    MATMUL_ALLOCS.load(Ordering::Relaxed)
}

/// Records one allocating matmul call (see [`matmul_allocations`]).
pub(crate) fn count_matmul_alloc() {
    MATMUL_ALLOCS.fetch_add(1, Ordering::Relaxed);
}

/// Zeroes the trailing `n % NR` column strip of a row-major `m×n` output —
/// the only region the scalar ragged-corner path *accumulates* into. Every
/// full-`NR`-wide tile (micro kernels and the full-width edge path) fully
/// overwrites its output region, so zero-filling it would be wasted work on
/// the hot exact-multiple shapes.
fn zero_ragged_tail(n: usize, out: &mut [f32]) {
    let tail = n % NR;
    if tail == 0 {
        return;
    }
    if tail == n {
        out.fill(0.0);
        return;
    }
    for row in out.chunks_exact_mut(n) {
        row[n - tail..].fill(0.0);
    }
}

/// `out = A·B` where `A` is `m×k`, `B` is `k×n` and `out` is `m×n`, all
/// row-major. Overwrites `out` completely.
///
/// # Panics
///
/// Panics (in debug builds) if a slice length disagrees with its dimensions.
pub fn gemm_nn(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    GEMM_F32_CALLS.add(1);
    zero_ragged_tail(n, out);
    let mut i = 0;
    while i < m {
        let ib = MR.min(m - i);
        let mut j = 0;
        while j < n {
            let jb = NR.min(n - j);
            if ib == MR && jb == NR {
                micro_nn(i, j, k, n, a, b, out);
            } else {
                edge_any(i, ib, j, jb, k, n, b, out, |row, kk| a[row * k + kk]);
            }
            j += jb;
        }
        i += ib;
    }
}

/// `out = Aᵀ·B` where `A` is `r×m` (so `Aᵀ` is `m×r`), `B` is `r×n` and
/// `out` is `m×n`. Overwrites `out` completely.
pub fn gemm_tn(r: usize, m: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    debug_assert_eq!(a.len(), r * m);
    debug_assert_eq!(b.len(), r * n);
    debug_assert_eq!(out.len(), m * n);
    GEMM_F32_CALLS.add(1);
    zero_ragged_tail(n, out);
    let mut i = 0;
    while i < m {
        let ib = MR.min(m - i);
        let mut j = 0;
        while j < n {
            let jb = NR.min(n - j);
            if ib == MR && jb == NR {
                micro_tn(i, j, r, m, n, a, b, out);
            } else {
                edge_any(i, ib, j, jb, r, n, b, out, |col, kk| a[kk * m + col]);
            }
            j += jb;
        }
        i += ib;
    }
}

/// `out = A·Bᵀ` where `A` is `m×k`, `B` is `nr×k` (so `Bᵀ` is `k×nr`) and
/// `out` is `m×nr`. Overwrites `out` completely.
///
/// Packs `Bᵀ` into a thread-local buffer first (allocation-free once the
/// buffer has grown to the workload's panel size), then multiplies through
/// [`gemm_nn`] — see the module docs for why.
pub fn gemm_nt(m: usize, k: usize, nr: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), nr * k);
    debug_assert_eq!(out.len(), m * nr);
    PACK_BT.with(|cell| {
        let mut bt = cell.borrow_mut();
        // Grow-only: the pack loop below overwrites every element of the
        // k×nr panel, so no zero-fill of the slice is needed.
        if bt.len() < k * nr {
            bt.resize(k * nr, 0.0);
        }
        let panel = &mut bt[..k * nr];
        for (j, b_row) in b.chunks_exact(k).enumerate() {
            for (kk, &v) in b_row.iter().enumerate() {
                panel[kk * nr + j] = v;
            }
        }
        gemm_nn(m, k, nr, a, panel, out);
    });
}

/// `out = A·B` over i8 operands with i32 accumulation: `A` is `m×k`, `B` is
/// `k×n`, `out` is `m×n`, all row-major. Overwrites `out` completely.
///
/// Accumulation never overflows for `k ≤ 2^16`: each term is at most
/// `128 × 128` in magnitude, so the running sum stays below `2^14 · k`.
/// Debug builds assert this bound.
pub fn gemm_nn_i8(m: usize, k: usize, n: usize, a: &[i8], b: &[i8], out: &mut [i32]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    debug_assert!(k <= 1 << 16, "i32 accumulator bound: k = {k} > 65536");
    GEMM_I8_CALLS.add(1);
    if dot_route(k, n) {
        // Narrow output: repack B into Bᵀ rows and take the dot path.
        PACK_BT_I8.with(|cell| {
            let mut bt = cell.borrow_mut();
            if bt.len() < k * n {
                bt.resize(k * n, 0);
            }
            let panel = &mut bt[..k * n];
            for (kk, b_row) in b.chunks_exact(n).enumerate() {
                for (j, &v) in b_row.iter().enumerate() {
                    panel[j * k + kk] = v;
                }
            }
            dots_nt_i8(k, n, a, panel, out);
        });
    } else {
        tiled_nn_i8(m, k, n, a, b, out);
    }
}

/// `out = A·Bᵀ` over i8 operands: `A` is `m×k`, `B` is `nr×k` (so `Bᵀ` is
/// `k×nr`) and `out` is `m×nr`. Overwrites `out` completely.
///
/// Narrow outputs run pack-free — every output element is a dot product of
/// a row of `A` and a row of `B`, both already contiguous. Wide outputs
/// repack `B` into `Bᵀ` (the f32 [`gemm_nt`] move) for the tiled path.
pub fn gemm_nt_i8(m: usize, k: usize, nr: usize, a: &[i8], b: &[i8], out: &mut [i32]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), nr * k);
    debug_assert_eq!(out.len(), m * nr);
    debug_assert!(k <= 1 << 16, "i32 accumulator bound: k = {k} > 65536");
    GEMM_I8_CALLS.add(1);
    if dot_route(k, nr) {
        dots_nt_i8(k, nr, a, b, out);
    } else {
        PACK_BT_I8.with(|cell| {
            let mut bt = cell.borrow_mut();
            if bt.len() < k * nr {
                bt.resize(k * nr, 0);
            }
            let panel = &mut bt[..k * nr];
            for (j, b_row) in b.chunks_exact(k).enumerate() {
                for (kk, &v) in b_row.iter().enumerate() {
                    panel[kk * nr + j] = v;
                }
            }
            tiled_nn_i8(m, k, nr, a, panel, out);
        });
    }
}

/// Route selector for the integer kernels: dots pay one horizontal-sum
/// tail per output element, so they only win when there are few columns
/// (`n < NR` — where the tile kernel would run scalar ragged columns) and
/// enough depth to amortise the tail (`k ≥ NR`). Measured on the AE
/// shapes: dots are ~1.3× faster than f32 at `k=96, n=3` and ~10× slower
/// than the tile at `k=3, n=96`.
#[inline(always)]
pub(crate) fn dot_route(k: usize, n: usize) -> bool {
    n < NR && k >= NR
}

/// Dot-path core: `out[i][j] = a_row(i) · bt_row(j)` with `bt` holding
/// `Bᵀ` contiguously (`n × k`, row-major).
fn dots_nt_i8(k: usize, n: usize, a: &[i8], bt: &[i8], out: &mut [i32]) {
    for (a_row, o_row) in a.chunks_exact(k).zip(out.chunks_exact_mut(n)) {
        for (b_row, o) in bt.chunks_exact(k).zip(o_row.iter_mut()) {
            *o = dot_i8(a_row, b_row);
        }
    }
}

/// i8·i8 → i32 dot product. The single-accumulator integer reduction is
/// the shape LLVM's vectoriser lowers to `vpmaddwd` (16 widening multiply-
/// adds per instruction on AVX2); any parallel-reduction or elementwise
/// restructuring of this loop falls back to the 2-µop `vpmulld`. Integer
/// addition is associative, so any accumulation order the compiler picks
/// yields the same bits.
#[inline(always)]
fn dot_i8(a: &[i8], b: &[i8]) -> i32 {
    a.iter().zip(b).map(|(&x, &y)| x as i32 * y as i32).sum()
}

/// Tile-path core: the f32 [`gemm_nn`] structure over i8 operands with
/// widened i32 multiplies, vectorising over the `n` output columns.
fn tiled_nn_i8(m: usize, k: usize, n: usize, a: &[i8], b: &[i8], out: &mut [i32]) {
    zero_ragged_tail_i32(n, out);
    let mut i = 0;
    while i < m {
        let ib = MR.min(m - i);
        let mut j = 0;
        while j < n {
            let jb = NR.min(n - j);
            if ib == MR && jb == NR {
                micro_nn_i8(i, j, k, n, a, b, out);
            } else {
                edge_any_i8(i, ib, j, jb, k, n, a, b, out);
            }
            j += jb;
        }
        i += ib;
    }
}

/// Integer sibling of [`zero_ragged_tail`]: only the scalar ragged-corner
/// path accumulates into `out`, so only the trailing `n % NR` column strip
/// needs zeroing.
fn zero_ragged_tail_i32(n: usize, out: &mut [i32]) {
    let tail = n % NR;
    if tail == 0 {
        return;
    }
    if tail == n {
        out.fill(0);
        return;
    }
    for row in out.chunks_exact_mut(n) {
        row[n - tail..].fill(0);
    }
}

/// Full `MR × NR` register tile of integer `A·B` — the f32 [`micro_nn`]
/// with i32 accumulators and widened multiplies.
#[inline(always)]
fn micro_nn_i8(i: usize, j: usize, k: usize, n: usize, a: &[i8], b: &[i8], out: &mut [i32]) {
    let a0 = &a[i * k..(i + 1) * k];
    let a1 = &a[(i + 1) * k..(i + 2) * k];
    let a2 = &a[(i + 2) * k..(i + 3) * k];
    let a3 = &a[(i + 3) * k..(i + 4) * k];
    let (mut c0, mut c1, mut c2, mut c3) = ([0i32; NR], [0i32; NR], [0i32; NR], [0i32; NR]);
    for (kk, b_full) in b.chunks_exact(n).enumerate() {
        let b_row: &[i8; NR] = b_full[j..j + NR].try_into().expect("NR-wide tile slice");
        let (v0, v1, v2, v3) = (a0[kk] as i32, a1[kk] as i32, a2[kk] as i32, a3[kk] as i32);
        for c in 0..NR {
            let bv = b_row[c] as i32;
            c0[c] += v0 * bv;
            c1[c] += v1 * bv;
            c2[c] += v2 * bv;
            c3[c] += v3 * bv;
        }
    }
    for (r, acc) in [c0, c1, c2, c3].iter().enumerate() {
        out[(i + r) * n + j..(i + r) * n + j + NR].copy_from_slice(acc);
    }
}

/// Ragged edge tile of the integer tile path — mirrors the f32
/// [`edge_any`]: full-width `NR` column strips keep a register
/// accumulator per row, only the final corner runs scalar.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn edge_any_i8(
    i: usize,
    ib: usize,
    j: usize,
    jb: usize,
    k: usize,
    n: usize,
    a: &[i8],
    b: &[i8],
    out: &mut [i32],
) {
    for row in i..i + ib {
        if jb == NR {
            let mut acc = [0i32; NR];
            for (kk, b_full) in b.chunks_exact(n).enumerate() {
                let b_row: &[i8; NR] = b_full[j..j + NR].try_into().expect("NR-wide slice");
                let av = a[row * k + kk] as i32;
                for c in 0..NR {
                    acc[c] += av * b_row[c] as i32;
                }
            }
            out[row * n + j..row * n + j + NR].copy_from_slice(&acc);
        } else {
            let (o_start, o_end) = (row * n + j, row * n + j + jb);
            for kk in 0..k {
                let av = a[row * k + kk] as i32;
                let b_row = &b[kk * n + j..kk * n + j + jb];
                let o_row = &mut out[o_start..o_end];
                for (o, &bv) in o_row.iter_mut().zip(b_row.iter()) {
                    *o += av * bv as i32;
                }
            }
        }
    }
}

/// Full `MR × NR` register tile of `A·B`: accumulators stay live across the
/// whole summed dimension, written back once.
#[inline(always)]
fn micro_nn(i: usize, j: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    let a0 = &a[i * k..(i + 1) * k];
    let a1 = &a[(i + 1) * k..(i + 2) * k];
    let a2 = &a[(i + 2) * k..(i + 3) * k];
    let a3 = &a[(i + 3) * k..(i + 4) * k];
    let (mut c0, mut c1, mut c2, mut c3) = ([0.0f32; NR], [0.0f32; NR], [0.0f32; NR], [0.0f32; NR]);
    for (kk, b_full) in b.chunks_exact(n).enumerate() {
        let b_row: &[f32; NR] = b_full[j..j + NR].try_into().expect("NR-wide tile slice");
        let (v0, v1, v2, v3) = (a0[kk], a1[kk], a2[kk], a3[kk]);
        for c in 0..NR {
            c0[c] += v0 * b_row[c];
            c1[c] += v1 * b_row[c];
            c2[c] += v2 * b_row[c];
            c3[c] += v3 * b_row[c];
        }
    }
    for (r, acc) in [c0, c1, c2, c3].iter().enumerate() {
        out[(i + r) * n + j..(i + r) * n + j + NR].copy_from_slice(acc);
    }
}

/// Full `MR × NR` register tile of `Aᵀ·B`: the `MR` values of `A` per summed
/// step are contiguous (`A` is walked row-wise), so all loads stream.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn micro_tn(
    i: usize,
    j: usize,
    r: usize,
    m: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
) {
    let (mut c0, mut c1, mut c2, mut c3) = ([0.0f32; NR], [0.0f32; NR], [0.0f32; NR], [0.0f32; NR]);
    for kk in 0..r {
        let a4: &[f32; MR] = a[kk * m + i..kk * m + i + MR].try_into().expect("MR-wide tile slice");
        let b_row: &[f32; NR] = b[kk * n + j..kk * n + j + NR].try_into().expect("NR-wide slice");
        for c in 0..NR {
            c0[c] += a4[0] * b_row[c];
            c1[c] += a4[1] * b_row[c];
            c2[c] += a4[2] * b_row[c];
            c3[c] += a4[3] * b_row[c];
        }
    }
    for (row, acc) in [c0, c1, c2, c3].iter().enumerate() {
        out[(i + row) * n + j..(i + row) * n + j + NR].copy_from_slice(acc);
    }
}

/// Ragged edge tile (fewer than `MR` rows or `NR` columns). Full-width
/// `NR` column tiles still get a register accumulator per row — this is the
/// hot path for batch-1 model steps (`m = 1`) — and only the final corner
/// falls back to scalar accumulation. Summation order matches the tile path.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn edge_any(
    i: usize,
    ib: usize,
    j: usize,
    jb: usize,
    k: usize,
    n: usize,
    b: &[f32],
    out: &mut [f32],
    a_at: impl Fn(usize, usize) -> f32,
) {
    for row in i..i + ib {
        if jb == NR {
            let mut acc = [0.0f32; NR];
            for (kk, b_full) in b.chunks_exact(n).enumerate() {
                let b_row: &[f32; NR] = b_full[j..j + NR].try_into().expect("NR-wide slice");
                let av = a_at(row, kk);
                for c in 0..NR {
                    acc[c] += av * b_row[c];
                }
            }
            out[row * n + j..row * n + j + NR].copy_from_slice(&acc);
        } else {
            let (o_start, o_end) = (row * n + j, row * n + j + jb);
            for kk in 0..k {
                let av = a_at(row, kk);
                let b_row = &b[kk * n + j..kk * n + j + jb];
                let o_row = &mut out[o_start..o_end];
                for (o, &bv) in o_row.iter_mut().zip(b_row.iter()) {
                    *o += av * bv;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_nn(m: usize, k: usize, n: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for kk in 0..k {
                for j in 0..n {
                    out[i * n + j] += a[i * k + kk] * b[kk * n + j];
                }
            }
        }
        out
    }

    fn ramp(len: usize, scale: f32) -> Vec<f32> {
        (0..len).map(|x| ((x % 17) as f32 - 8.0) * scale).collect()
    }

    #[test]
    fn gemm_nn_matches_naive_on_ragged_shapes() {
        for &(m, k, n) in
            &[(1, 1, 1), (4, 4, 16), (5, 3, 17), (96, 64, 96), (7, 129, 3), (33, 2, 31)]
        {
            let a = ramp(m * k, 0.25);
            let b = ramp(k * n, 0.5);
            let mut out = vec![0.0f32; m * n];
            gemm_nn(m, k, n, &a, &b, &mut out);
            assert_eq!(out, naive_nn(m, k, n, &a, &b), "shape {m}x{k}x{n}");
        }
    }

    #[test]
    fn gemm_tn_matches_transposed_naive() {
        let (r, m, n) = (6, 5, 19);
        let a = ramp(r * m, 0.1);
        let b = ramp(r * n, 0.3);
        let mut at = vec![0.0f32; m * r];
        for row in 0..r {
            for col in 0..m {
                at[col * r + row] = a[row * m + col];
            }
        }
        let mut out = vec![0.0f32; m * n];
        gemm_tn(r, m, n, &a, &b, &mut out);
        let expect = naive_nn(m, r, n, &at, &b);
        for (x, y) in out.iter().zip(expect.iter()) {
            assert!((x - y).abs() < 1e-5, "{x} vs {y}");
        }
    }

    #[test]
    fn gemm_nt_matches_dot_products() {
        let (m, k, nr) = (5, 23, 7);
        let a = ramp(m * k, 0.2);
        let b = ramp(nr * k, 0.4);
        let mut out = vec![0.0f32; m * nr];
        gemm_nt(m, k, nr, &a, &b, &mut out);
        for i in 0..m {
            for j in 0..nr {
                let dot: f32 =
                    (0..k).map(|kk| a[i * k + kk] * b[j * k + kk]).fold(0.0, |s, x| s + x);
                assert!((out[i * nr + j] - dot).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn gemm_overwrites_stale_output() {
        let a = [1.0f32, 2.0];
        let b = [3.0f32, 4.0];
        let mut out = [99.0f32];
        gemm_nn(1, 2, 1, &a, &b, &mut out);
        assert_eq!(out[0], 11.0);
    }

    #[test]
    fn gemm_overwrites_stale_output_on_every_tile_path() {
        // Shapes chosen to hit each write path: exact MR×NR tiles (4,3,16),
        // partial rows at full NR width (5,3,16), ragged tail columns
        // (5,3,17), and tail-only narrow outputs (3,2,5). Stale garbage in
        // `out` must never leak into any region.
        for &(m, k, n) in &[(4usize, 3usize, 16usize), (5, 3, 16), (5, 3, 17), (3, 2, 5)] {
            let a = ramp(m * k, 0.25);
            let b = ramp(k * n, 0.5);
            let mut out = vec![99.0f32; m * n];
            gemm_nn(m, k, n, &a, &b, &mut out);
            assert_eq!(out, naive_nn(m, k, n, &a, &b), "gemm_nn stale {m}x{k}x{n}");

            // Same stale-buffer guarantee for the transposed-A kernel.
            let at = ramp(k * m, 0.2); // k×m operand read as Aᵀ
            let mut out_t = vec![-7.0f32; m * n];
            gemm_tn(k, m, n, &at, &b, &mut out_t);
            let mut a_mat = vec![0.0f32; m * k];
            for row in 0..k {
                for col in 0..m {
                    a_mat[col * k + row] = at[row * m + col];
                }
            }
            let expect = naive_nn(m, k, n, &a_mat, &b);
            for (x, y) in out_t.iter().zip(expect.iter()) {
                assert!((x - y).abs() < 1e-5, "gemm_tn stale {m}x{k}x{n}: {x} vs {y}");
            }
        }
    }

    #[test]
    fn alloc_counter_is_monotone() {
        let before = matmul_allocations();
        count_matmul_alloc();
        assert!(matmul_allocations() > before);
    }

    fn naive_nn_i8(m: usize, k: usize, n: usize, a: &[i8], b: &[i8]) -> Vec<i32> {
        let mut out = vec![0i32; m * n];
        for i in 0..m {
            for kk in 0..k {
                for j in 0..n {
                    out[i * n + j] += a[i * k + kk] as i32 * b[kk * n + j] as i32;
                }
            }
        }
        out
    }

    fn ramp_i8(len: usize, step: usize) -> Vec<i8> {
        (0..len).map(|x| ((x * step % 255) as i32 - 127) as i8).collect()
    }

    #[test]
    fn gemm_nn_i8_matches_naive_on_ragged_shapes() {
        for &(m, k, n) in
            &[(1, 1, 1), (4, 4, 16), (5, 3, 17), (96, 64, 96), (7, 129, 3), (33, 2, 31)]
        {
            let a = ramp_i8(m * k, 7);
            let b = ramp_i8(k * n, 11);
            let mut out = vec![99i32; m * n]; // stale garbage must be overwritten
            gemm_nn_i8(m, k, n, &a, &b, &mut out);
            assert_eq!(out, naive_nn_i8(m, k, n, &a, &b), "shape {m}x{k}x{n}");
        }
    }

    #[test]
    fn gemm_nt_i8_matches_dot_products() {
        for &(m, k, nr) in &[(1, 96, 3), (5, 23, 7), (96, 64, 96)] {
            let a = ramp_i8(m * k, 13);
            let b = ramp_i8(nr * k, 5);
            let mut out = vec![-3i32; m * nr];
            gemm_nt_i8(m, k, nr, &a, &b, &mut out);
            for i in 0..m {
                for j in 0..nr {
                    let dot: i32 =
                        (0..k).map(|kk| a[i * k + kk] as i32 * b[j * k + kk] as i32).sum();
                    assert_eq!(out[i * nr + j], dot, "({i},{j}) of {m}x{k}x{nr}");
                }
            }
        }
    }

    #[test]
    fn gemm_i8_saturating_extremes_do_not_overflow() {
        // Worst-case magnitude: every product is (-128)·(-128); k = 256 keeps
        // the i32 accumulator far below its bound but exercises carry chains.
        let (m, k, n) = (4, 256, 16);
        let a = vec![-128i8; m * k];
        let b = vec![-128i8; k * n];
        let mut out = vec![0i32; m * n];
        gemm_nn_i8(m, k, n, &a, &b, &mut out);
        assert!(out.iter().all(|&x| x == 128 * 128 * 256));
    }
}
