//! End-to-end integration tests: the whole paper pipeline at test scale.
//!
//! The configuration comes from `hec-bench`'s shared profiles, honoring
//! `HEC_PROFILE` with a `quick` default so `cargo test` stays seconds-scale
//! (`HEC_PROFILE=full cargo test` runs the release-sized experiment).

use hec_ad::core::{DatasetConfig, Experiment, ExperimentConfig, SchemeKind};
use hec_ad::sim::DatasetKind;
use hec_bench::{univariate_config, Profile};

fn tiny_univariate(seed: u64) -> ExperimentConfig {
    let profile = Profile::from_env_or(Profile::Quick);
    let mut config = univariate_config(profile);
    config.seed = seed;
    if let DatasetConfig::Univariate(ref mut power) = config.dataset {
        power.seed = seed;
        if profile == Profile::Quick {
            // Lower noise than the bench profile: these tests assert relative
            // orderings (per-layer accuracy, adaptive vs fixed) that need a
            // cleaner signal at quick scale than the profile's smoke runs do.
            power.noise_std = 0.015;
        }
    }
    config
}

#[test]
fn univariate_report_has_paper_shape() {
    let report = Experiment::run(tiny_univariate(7));
    assert_eq!(report.kind, DatasetKind::Univariate);

    // Table I: capacity ladder up, exec-time ladder down.
    assert_eq!(report.table1.len(), 3);
    assert!(report.table1[0].params < report.table1[1].params);
    assert!(report.table1[1].params < report.table1[2].params);
    assert!(report.table1[0].exec_ms > report.table1[2].exec_ms);

    // Table II: all five schemes present, delays ordered IoT < Edge < Cloud.
    assert_eq!(report.table2.len(), 5);
    let row = |k: SchemeKind| report.table2.iter().find(|r| r.scheme == k).unwrap();
    assert!(row(SchemeKind::IoTDevice).delay_ms < row(SchemeKind::Edge).delay_ms);
    assert!(row(SchemeKind::Edge).delay_ms < row(SchemeKind::Cloud).delay_ms);

    // Successive reports N/A reward; others report a value.
    assert!(row(SchemeKind::Successive).reward.is_none());
    for k in [SchemeKind::IoTDevice, SchemeKind::Edge, SchemeKind::Cloud, SchemeKind::Adaptive] {
        assert!(row(k).reward.is_some(), "{k} missing reward");
    }

    // The adaptive scheme must undercut always-Cloud on delay.
    assert!(row(SchemeKind::Adaptive).delay_ms < row(SchemeKind::Cloud).delay_ms);

    // The action histogram accounts for every evaluated window.
    assert_eq!(report.adaptive_actions.iter().sum::<usize>(), report.eval_windows);
}

#[test]
fn adaptive_reward_is_best_or_near_best() {
    let report = Experiment::run(tiny_univariate(11));
    let rewards: Vec<(SchemeKind, f64)> =
        report.table2.iter().filter_map(|r| r.reward.map(|v| (r.scheme, v))).collect();
    let adaptive = rewards.iter().find(|(k, _)| *k == SchemeKind::Adaptive).unwrap().1;
    let best = rewards.iter().map(|(_, v)| *v).fold(f64::NEG_INFINITY, f64::max);
    // The bandit trains on a small corpus at test scale; allow a small slack
    // rather than demanding strict optimality.
    assert!(
        adaptive >= best - 2.0,
        "adaptive reward {adaptive:.2} far below best fixed scheme {best:.2}"
    );
}

#[test]
fn training_curve_improves() {
    let report = Experiment::run(tiny_univariate(3));
    let curve = &report.training_curve.mean_reward_per_epoch;
    assert!(curve.len() >= 10);
    let early: f32 = curve[..3].iter().sum::<f32>() / 3.0;
    let late: f32 = curve[curve.len() - 3..].iter().sum::<f32>() / 3.0;
    assert!(
        late >= early - 0.05,
        "policy reward regressed during training: early {early}, late {late}"
    );
}

#[test]
fn deterministic_given_seed() {
    let a = Experiment::run(tiny_univariate(5));
    let b = Experiment::run(tiny_univariate(5));
    for (ra, rb) in a.table2.iter().zip(b.table2.iter()) {
        assert_eq!(ra.scheme, rb.scheme);
        assert!((ra.accuracy_pct - rb.accuracy_pct).abs() < 1e-9);
        assert!((ra.delay_ms - rb.delay_ms).abs() < 1e-9);
    }
}

#[test]
fn stage_api_exposes_split_sizes() {
    let config = tiny_univariate(1);
    let days = match &config.dataset {
        DatasetConfig::Univariate(power) => power.days,
        other => panic!("expected univariate dataset, got {other:?}"),
    };
    let mut exp = Experiment::prepare(config);
    let (train, test, policy, full) = exp.split.sizes();
    assert!(train > 0 && test > 0 && policy > 0);
    assert_eq!(full, days);
    // The paper's protocol: training normals ≈ 70% of all normals.
    let normals = exp.split.full.iter().filter(|w| !w.anomalous).count();
    let frac = train as f64 / normals as f64;
    assert!((frac - 0.7).abs() < 0.02, "train fraction {frac}");
    exp.train_detectors();
    let t1 = exp.table1();
    assert!(t1.iter().all(|r| r.accuracy_pct >= 0.0 && r.accuracy_pct <= 100.0));
}
