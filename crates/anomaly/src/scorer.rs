//! Gaussian logPD anomaly scoring and the confident-detection rules.
//!
//! §II-A3: *"We assume that reconstruction errors follow the Gaussian
//! distribution N(µ, Σ) … We use logarithmic probability densities (logPD) of
//! the reconstruction errors as anomaly scores … We then use the minimum
//! value of the logPD on the normal dataset (i.e., the training set) as the
//! threshold for detecting outliers."*

use std::fmt;

use serde::{Deserialize, Serialize};

use hec_tensor::{Gaussian, GaussianError, Matrix};

/// The paper's two *confident detection* conditions (§II-A3):
///
/// a detection is confident if **(i)** at least one point's logPD is below
/// `factor ×` threshold (logPD is negative, so this means "much more
/// anomalous than the border"), or **(ii)** the fraction of anomalous points
/// exceeds `fraction`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConfidenceRule {
    /// Multiplier on the (negative) threshold for condition (i). Paper: 2.0.
    pub factor: f32,
    /// Anomalous-point fraction for condition (ii). Paper: 0.05.
    pub fraction: f32,
}

impl Default for ConfidenceRule {
    fn default() -> Self {
        Self { factor: 2.0, fraction: 0.05 }
    }
}

impl ConfidenceRule {
    /// Evaluates the rule given the window's point scores and the threshold.
    ///
    /// A *normal* verdict is also treated as confident when **no** point is
    /// anywhere near the threshold margin; concretely we mirror condition
    /// (i): normal is confident if the minimum logPD stays above
    /// `threshold / factor` — comfortably inside the normal region.
    pub fn is_confident(
        &self,
        min_log_pd: f32,
        anomalous_fraction: f32,
        threshold: f32,
        verdict_anomalous: bool,
    ) -> bool {
        if verdict_anomalous {
            min_log_pd < self.factor * threshold || anomalous_fraction > self.fraction
        } else {
            // Far from the border on the normal side.
            min_log_pd > threshold / self.factor
        }
    }
}

/// Error from [`LogPdScorer`] operations.
#[derive(Debug, Clone, PartialEq)]
pub enum ScorerError {
    /// The underlying Gaussian fit failed.
    Gaussian(GaussianError),
    /// No error vectors were supplied.
    EmptyCalibrationSet,
}

impl fmt::Display for ScorerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScorerError::Gaussian(e) => write!(f, "gaussian fit failed: {e}"),
            ScorerError::EmptyCalibrationSet => write!(f, "no calibration error vectors"),
        }
    }
}

impl std::error::Error for ScorerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ScorerError::Gaussian(e) => Some(e),
            ScorerError::EmptyCalibrationSet => None,
        }
    }
}

impl From<GaussianError> for ScorerError {
    fn from(e: GaussianError) -> Self {
        ScorerError::Gaussian(e)
    }
}

/// How the detection threshold is derived from the training logPDs.
///
/// The paper uses the **minimum** training logPD (§II-A3). The minimum is an
/// extreme-value statistic: across models it varies by several σ for no
/// capacity-related reason, which scrambles the sensitivity ordering the
/// HEC ladder depends on. [`ThresholdRule::MeanMinusKSigma`] replaces it
/// with `µ(logPD) − k·σ(logPD)` on the same calibration data — the same
/// quantity with the tail noise averaged out — and is the default (`k = 6`).
/// `Min` reproduces the paper's rule exactly; the threshold-rule ablation
/// bench compares them.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ThresholdRule {
    /// The paper's rule: the minimum logPD observed on the training set.
    Min,
    /// A low quantile of the training logPDs (0 = `Min`).
    Quantile(f64),
    /// `µ − k·σ` of the training logPDs.
    MeanMinusKSigma(f32),
    /// Pin the **window-level** false-positive rate: the threshold is the
    /// given quantile of per-window *minimum* logPDs on the calibration
    /// windows, so every model flags the same fraction of normal windows.
    /// With equal specificity, detection sensitivity ordering follows model
    /// capacity directly — this is the validation-tuned-τ practice of
    /// EncDec-AD (ref [2]) and is the default (`0.02` = 2 % normal windows
    /// flagged). Handled by the detectors (needs per-window grouping).
    WindowFpr(f64),
}

impl Default for ThresholdRule {
    fn default() -> Self {
        ThresholdRule::WindowFpr(0.02)
    }
}

impl ThresholdRule {
    /// Computes the threshold from the calibration logPDs.
    ///
    /// # Panics
    ///
    /// Panics if `log_pds` is empty, a quantile is outside `[0, 1]`, or `k`
    /// is not positive.
    pub fn threshold(&self, log_pds: &[f32]) -> f32 {
        assert!(!log_pds.is_empty(), "no calibration logPDs");
        match *self {
            ThresholdRule::Min => log_pds.iter().copied().fold(f32::INFINITY, f32::min),
            ThresholdRule::Quantile(q) => {
                assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
                let mut sorted = log_pds.to_vec();
                sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite logPDs"));
                let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
                sorted[idx]
            }
            ThresholdRule::MeanMinusKSigma(k) => {
                assert!(k > 0.0, "k must be positive");
                let n = log_pds.len() as f32;
                let mean = log_pds.iter().sum::<f32>() / n;
                let var = log_pds.iter().map(|&x| (x - mean) * (x - mean)).sum::<f32>() / n;
                mean - k * var.sqrt()
            }
            ThresholdRule::WindowFpr(q) => {
                // Interpreted over whatever population the caller provides;
                // detectors pass per-window minima here.
                assert!((0.0..1.0).contains(&q), "fpr must be in [0, 1)");
                let mut sorted = log_pds.to_vec();
                sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite logPDs"));
                let idx = ((sorted.len() as f64 - 1.0) * q).floor() as usize;
                sorted[idx]
            }
        }
    }
}

/// A fitted logPD scorer: Gaussian over reconstruction-error vectors plus the
/// calibrated detection threshold.
///
/// For univariate models the error vectors are 1-dimensional (per-timestep
/// scalar errors); for the multivariate seq2seq models they are
/// 18-dimensional (per-timestep error vectors), matching refs [2], [3], [9].
///
/// # Example
///
/// ```rust
/// use hec_anomaly::LogPdScorer;
///
/// // Calibrate on small errors; a large error scores below threshold.
/// let calib: Vec<Vec<f32>> = (0..50).map(|i| vec![0.01 * (i % 7) as f32]).collect();
/// let scorer = LogPdScorer::fit(&calib, 1e-4)?;
/// assert!(scorer.log_pd(&[5.0]) < scorer.threshold());
/// # Ok::<(), hec_anomaly::ScorerError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogPdScorer {
    gaussian: Gaussian,
    threshold: f32,
}

impl LogPdScorer {
    /// Fits the Gaussian on calibration error vectors (from **normal**
    /// training windows) and sets the threshold to the **minimum** logPD
    /// observed among them — the paper's exact rule.
    ///
    /// `ridge` regularises the covariance diagonal.
    ///
    /// # Errors
    ///
    /// [`ScorerError::EmptyCalibrationSet`] if `errors` is empty;
    /// [`ScorerError::Gaussian`] if the fit fails (e.g. fewer than two
    /// vectors, or non-PD covariance even after the ridge).
    pub fn fit(errors: &[Vec<f32>], ridge: f32) -> Result<Self, ScorerError> {
        Self::fit_with_rule(errors, ridge, ThresholdRule::Min)
    }

    /// Like [`LogPdScorer::fit`] but with an explicit [`ThresholdRule`].
    ///
    /// # Errors
    ///
    /// Same as [`LogPdScorer::fit`].
    pub fn fit_with_rule(
        errors: &[Vec<f32>],
        ridge: f32,
        rule: ThresholdRule,
    ) -> Result<Self, ScorerError> {
        if errors.is_empty() {
            return Err(ScorerError::EmptyCalibrationSet);
        }
        let dim = errors[0].len();
        let mut flat = Vec::with_capacity(errors.len() * dim);
        for e in errors {
            assert_eq!(e.len(), dim, "inconsistent error-vector dimensionality");
            flat.extend_from_slice(e);
        }
        let samples = Matrix::from_vec(errors.len(), dim, flat);
        let gaussian = Gaussian::fit(&samples, ridge)?;
        let log_pds: Vec<f32> = errors
            .iter()
            .map(|e| gaussian.log_pdf(e).expect("dimension validated above"))
            .collect();
        let threshold = rule.threshold(&log_pds);
        Ok(Self { gaussian, threshold })
    }

    /// The calibrated detection threshold.
    pub fn threshold(&self) -> f32 {
        self.threshold
    }

    /// Overrides the detection threshold (used by detectors implementing
    /// window-level rules such as [`ThresholdRule::WindowFpr`]).
    pub fn set_threshold(&mut self, threshold: f32) {
        self.threshold = threshold;
    }

    /// Dimensionality of the error vectors.
    pub fn dim(&self) -> usize {
        self.gaussian.dim()
    }

    /// logPD of a single error vector.
    ///
    /// # Panics
    ///
    /// Panics if the vector's dimensionality differs from the calibration.
    pub fn log_pd(&self, error: &[f32]) -> f32 {
        self.gaussian.log_pdf(error).expect("error-vector dimension mismatch")
    }

    /// logPD of a single scalar error (1-D calibration) — allocation-free
    /// and bit-identical to [`LogPdScorer::log_pd`] on `&[error]`.
    ///
    /// # Panics
    ///
    /// Panics if the scorer was calibrated on multivariate errors.
    pub fn log_pd_scalar(&self, error: f32) -> f32 {
        self.gaussian.log_pdf_scalar(error).expect("scorer is not 1-dimensional")
    }

    /// Scores a window's per-point error vectors; returns
    /// `(min_log_pd, anomalous_fraction)` where a point is anomalous when its
    /// logPD is below the threshold.
    ///
    /// # Panics
    ///
    /// Panics if `errors` is empty or dimensionality differs.
    pub fn score_window(&self, errors: &[Vec<f32>]) -> (f32, f32) {
        assert!(!errors.is_empty(), "empty window");
        let mut min_lp = f32::INFINITY;
        let mut below = 0usize;
        for e in errors {
            let lp = self.log_pd(e);
            min_lp = min_lp.min(lp);
            if lp < self.threshold {
                below += 1;
            }
        }
        (min_lp, below as f32 / errors.len() as f32)
    }

    /// Scalar-error variant of [`LogPdScorer::score_window`] for univariate
    /// models — the autoencoders' per-window hot path. No per-point vectors,
    /// no allocation, same result to the bit.
    ///
    /// # Panics
    ///
    /// Panics if `errors` is empty or the scorer is not 1-dimensional.
    pub fn score_window_scalar(&self, errors: &[f32]) -> (f32, f32) {
        assert!(!errors.is_empty(), "empty window");
        let mut min_lp = f32::INFINITY;
        let mut below = 0usize;
        for &e in errors {
            let lp = self.log_pd_scalar(e);
            min_lp = min_lp.min(lp);
            if lp < self.threshold {
                below += 1;
            }
        }
        (min_lp, below as f32 / errors.len() as f32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn calib() -> Vec<Vec<f32>> {
        (0..100).map(|i| vec![0.02 * ((i % 11) as f32 - 5.0)]).collect()
    }

    #[test]
    fn threshold_is_min_training_log_pd() {
        let scorer = LogPdScorer::fit(&calib(), 1e-4).unwrap();
        let min = calib().iter().map(|e| scorer.log_pd(e)).fold(f32::INFINITY, f32::min);
        assert!((scorer.threshold() - min).abs() < 1e-5);
    }

    #[test]
    fn training_points_never_below_threshold() {
        let scorer = LogPdScorer::fit(&calib(), 1e-4).unwrap();
        let (_, frac) = scorer.score_window(&calib());
        assert_eq!(frac, 0.0);
    }

    #[test]
    fn large_error_scores_below_threshold() {
        let scorer = LogPdScorer::fit(&calib(), 1e-4).unwrap();
        assert!(scorer.log_pd(&[3.0]) < scorer.threshold());
        let (min_lp, frac) = scorer.score_window(&[vec![3.0], vec![0.0]]);
        assert!(min_lp < scorer.threshold());
        assert!((frac - 0.5).abs() < 1e-6);
    }

    #[test]
    fn scalar_scoring_is_bit_identical_to_vector_scoring() {
        let scorer = LogPdScorer::fit(&calib(), 1e-4).unwrap();
        let window: Vec<Vec<f32>> = vec![vec![0.01], vec![-0.07], vec![3.0], vec![0.0]];
        let scalars: Vec<f32> = window.iter().map(|e| e[0]).collect();
        let (min_v, frac_v) = scorer.score_window(&window);
        let (min_s, frac_s) = scorer.score_window_scalar(&scalars);
        assert_eq!(min_v.to_bits(), min_s.to_bits());
        assert_eq!(frac_v.to_bits(), frac_s.to_bits());
        for &e in &scalars {
            assert_eq!(scorer.log_pd(&[e]).to_bits(), scorer.log_pd_scalar(e).to_bits());
        }
    }

    #[test]
    fn multivariate_scoring() {
        let errors: Vec<Vec<f32>> =
            (0..60).map(|i| vec![0.01 * (i % 5) as f32, -0.01 * (i % 3) as f32]).collect();
        let scorer = LogPdScorer::fit(&errors, 1e-4).unwrap();
        assert_eq!(scorer.dim(), 2);
        assert!(scorer.log_pd(&[1.0, 1.0]) < scorer.threshold());
    }

    #[test]
    fn empty_calibration_rejected() {
        assert_eq!(LogPdScorer::fit(&[], 1e-4).unwrap_err(), ScorerError::EmptyCalibrationSet);
    }

    #[test]
    fn confidence_condition_one_deep_anomaly() {
        let rule = ConfidenceRule::default();
        let threshold = -10.0;
        // min_log_pd far below 2×threshold → confident anomaly.
        assert!(rule.is_confident(-25.0, 0.01, threshold, true));
        // Barely below threshold and few points → not confident.
        assert!(!rule.is_confident(-11.0, 0.01, threshold, true));
    }

    #[test]
    fn confidence_condition_two_many_points() {
        let rule = ConfidenceRule::default();
        let threshold = -10.0;
        assert!(rule.is_confident(-11.0, 0.10, threshold, true)); // >5% points
        assert!(!rule.is_confident(-11.0, 0.05, threshold, true)); // exactly 5% is not >
    }

    #[test]
    fn confident_normal_requires_margin() {
        let rule = ConfidenceRule::default();
        let threshold = -10.0;
        assert!(rule.is_confident(-3.0, 0.0, threshold, false)); // well above -5
        assert!(!rule.is_confident(-8.0, 0.0, threshold, false)); // near the border
    }

    #[test]
    fn scorer_error_display() {
        let e = ScorerError::EmptyCalibrationSet.to_string();
        assert!(e.contains("calibration"));
    }
}
