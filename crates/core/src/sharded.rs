//! Parallel driver for the sharded fleet engine.
//!
//! `hec_sim::fleet::shard` owns the partitioning and the deterministic
//! merge; this module supplies the threads. Each lookahead window, every
//! shard is advanced to the same conservative barrier by
//! [`parallel_for_each_mut`] (one contiguous chunk of shards per worker,
//! worker count from `HEC_THREADS`), then the coordinator merges the
//! buffered outcomes in stable `(time, shard-id)` order and the observer
//! sees them serially. Because shards are independent and the merge order
//! is fixed, the outcome stream, the observer calls and the final report
//! are byte-identical whatever the thread count — the same invariant CI
//! enforces for the serial engine.
//!
//! The router must be `Fn + Sync` (shared across workers); routing tables
//! and scenario route plans qualify. Stateful `FnMut` routers — e.g. a
//! policy mid-training — cannot be shared across threads and instead go
//! through [`ShardedFleetEngine::step`], which advances shards serially
//! in stable order (still through the same coordinator, so the contract
//! and the outputs are unchanged).

use hec_sim::fleet::{
    FleetReport, FleetScenario, JobEvent, RouteCtx, ShardPlan, ShardedFleetEngine,
};

use crate::parallel::parallel_for_each_mut;

/// Result of one sharded fleet run: the merged report plus per-shard
/// event counts (for per-shard throughput reporting in `repro_fleet`).
#[derive(Debug, Clone, PartialEq)]
pub struct ShardedFleetRun {
    /// The merged, deterministic fleet report.
    pub report: FleetReport,
    /// Discrete events processed by each shard, in shard order.
    pub shard_events: Vec<u64>,
}

/// Runs a shard plan to completion, advancing shards **in parallel**
/// (up to `HEC_THREADS` workers) and delivering every merged outcome to
/// `observer` in the deterministic `(time, shard-id)` order.
///
/// With a one-shard plan this is exactly the serial step loop (and its
/// byte-identical report).
///
/// # Panics
///
/// Panics if the router returns a layer outside the topology.
pub fn run_plan(
    plan: &ShardPlan,
    router: &(dyn Fn(&RouteCtx) -> usize + Sync),
    observer: &mut dyn FnMut(&JobEvent),
) -> ShardedFleetRun {
    let _span = hec_telemetry::WallSpan::new("core.fleet_run");
    let mut engine = ShardedFleetEngine::new(plan);
    if engine.num_shards() == 1 {
        let mut serial = |ctx: &RouteCtx| router(ctx);
        while let Some(ev) = engine.step(&mut serial) {
            observer(&ev);
        }
    } else {
        while let Some(barrier) = engine.next_barrier() {
            parallel_for_each_mut(engine.shards_mut(), |_s, shard| {
                let mut shim = |ctx: &RouteCtx| router(ctx);
                shard.advance_to(barrier, &mut shim);
            });
            engine.merge_window();
            while let Some(ev) = engine.pop_ready() {
                observer(&ev);
            }
        }
    }
    let shard_events = (0..engine.num_shards()).map(|s| engine.shards_mut()[s].events()).collect();
    ShardedFleetRun { report: engine.report(), shard_events }
}

/// Runs `scenario` under its own routing plans, partitioned into
/// `shards` shards and driven in parallel — the scale tier behind
/// `repro_fleet --shards`.
///
/// # Panics
///
/// Panics if `shards` is 0 or the scenario has no cohorts.
pub fn run_scenario_sharded(scenario: &FleetScenario, shards: usize) -> ShardedFleetRun {
    let plan = ShardPlan::new(scenario, shards);
    run_plan(&plan, &|ctx: &RouteCtx| scenario.planned_layer(ctx.cohort, ctx.seq), &mut |_| {})
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parallel::with_thread_count;
    use hec_sim::fleet::{FleetScale, FleetSim};

    /// The serial step driver and the parallel window driver must produce
    /// the same outcome stream and byte-identical reports.
    fn step_driven(sc: &FleetScenario, shards: usize) -> (Vec<JobEvent>, FleetReport) {
        let plan = ShardPlan::new(sc, shards);
        let mut engine = ShardedFleetEngine::new(&plan);
        let mut router = |ctx: &RouteCtx| sc.planned_layer(ctx.cohort, ctx.seq);
        let mut outcomes = Vec::new();
        while let Some(ev) = engine.step(&mut router) {
            outcomes.push(ev);
        }
        (outcomes, engine.report())
    }

    fn window_driven(
        sc: &FleetScenario,
        shards: usize,
        threads: usize,
    ) -> (Vec<JobEvent>, ShardedFleetRun) {
        let plan = ShardPlan::new(sc, shards);
        let mut outcomes = Vec::new();
        let run = with_thread_count(threads, || {
            run_plan(&plan, &|ctx: &RouteCtx| sc.planned_layer(ctx.cohort, ctx.seq), &mut |ev| {
                outcomes.push(*ev)
            })
        });
        (outcomes, run)
    }

    #[test]
    fn parallel_driver_matches_serial_step_driver() {
        for name in FleetScenario::NAMES {
            let sc = FleetScenario::by_name(name, FleetScale::Quick).unwrap();
            let (step_ev, step_rep) = step_driven(&sc, 4);
            let (win_ev, win_run) = window_driven(&sc, 4, 4);
            assert_eq!(step_ev, win_ev, "{name}: outcome streams diverged");
            assert_eq!(step_rep, win_run.report, "{name}: reports diverged");
            assert_eq!(win_run.shard_events.len(), 4, "{name}");
            assert_eq!(win_run.shard_events.iter().sum::<u64>(), win_run.report.events, "{name}");
        }
    }

    #[test]
    fn sharded_run_is_thread_count_invariant() {
        let sc = FleetScenario::flash_crowd(FleetScale::Quick);
        let (ev_1, run_1) = window_driven(&sc, 4, 1);
        let (ev_4, run_4) = window_driven(&sc, 4, 4);
        assert_eq!(ev_1, ev_4, "outcome stream depends on HEC_THREADS");
        assert_eq!(run_1, run_4, "report depends on HEC_THREADS");
        assert_eq!(run_1.report.to_text(), run_4.report.to_text());
        assert_eq!(run_1.report.layers_csv(), run_4.report.layers_csv());
        assert_eq!(run_1.report.trace_csv(), run_4.report.trace_csv());
    }

    #[test]
    fn one_shard_run_matches_the_serial_engine_bytes() {
        for name in FleetScenario::NAMES {
            let sc = FleetScenario::by_name(name, FleetScale::Quick).unwrap();
            let serial = FleetSim::new(&sc).run();
            let run = run_scenario_sharded(&sc, 1);
            assert_eq!(serial, run.report, "{name}");
            assert_eq!(serial.to_text(), run.report.to_text(), "{name}");
        }
    }

    #[test]
    fn scenario_helper_conserves_windows() {
        let sc = FleetScenario::edge_saturated(FleetScale::Quick);
        let run = run_scenario_sharded(&sc, 3);
        assert_eq!(run.report.emitted, sc.total_windows());
        assert_eq!(run.report.served + run.report.dropped, run.report.emitted);
    }
}
