//! Context-vector scaling.
//!
//! Policy networks train best on roughly unit-scale inputs. The univariate
//! context (`{min, max, mean, std}` of a day) and the multivariate context
//! (LSTM encoder states) are both standardised with statistics fitted on the
//! policy-training corpus.

use serde::{Deserialize, Serialize};

/// Per-dimension standardiser for context vectors.
///
/// # Example
///
/// ```rust
/// use hec_bandit::ContextScaler;
///
/// let contexts = vec![vec![0.0, 10.0], vec![2.0, 30.0], vec![4.0, 50.0]];
/// let scaler = ContextScaler::fit(&contexts);
/// let z = scaler.transform(&[2.0, 30.0]);
/// assert!(z.iter().all(|v| v.abs() < 1e-6)); // the mean maps to 0
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ContextScaler {
    mean: Vec<f32>,
    std: Vec<f32>,
}

impl ContextScaler {
    /// Fits per-dimension mean/std on a corpus of context vectors.
    ///
    /// Zero-variance dimensions get `σ = 1`.
    ///
    /// # Panics
    ///
    /// Panics if `contexts` is empty or dimensionalities are inconsistent.
    pub fn fit(contexts: &[Vec<f32>]) -> Self {
        assert!(!contexts.is_empty(), "no contexts to fit");
        let d = contexts[0].len();
        assert!(d > 0, "empty context vectors");
        let n = contexts.len() as f32;
        let mut mean = vec![0.0f32; d];
        for c in contexts {
            assert_eq!(c.len(), d, "inconsistent context dimensionality");
            for (m, &x) in mean.iter_mut().zip(c.iter()) {
                *m += x;
            }
        }
        for m in &mut mean {
            *m /= n;
        }
        let mut var = vec![0.0f32; d];
        for c in contexts {
            for ((v, &m), &x) in var.iter_mut().zip(mean.iter()).zip(c.iter()) {
                *v += (x - m) * (x - m);
            }
        }
        let std = var
            .into_iter()
            .map(|v| {
                let s = (v / n).sqrt();
                if s > 0.0 {
                    s
                } else {
                    1.0
                }
            })
            .collect();
        Self { mean, std }
    }

    /// Context dimensionality.
    pub fn dim(&self) -> usize {
        self.mean.len()
    }

    /// Standardises one context vector.
    ///
    /// # Panics
    ///
    /// Panics on dimensionality mismatch.
    pub fn transform(&self, context: &[f32]) -> Vec<f32> {
        assert_eq!(context.len(), self.dim(), "context dimension mismatch");
        context
            .iter()
            .zip(self.mean.iter())
            .zip(self.std.iter())
            .map(|((&x, &m), &s)| (x - m) / s)
            .collect()
    }

    /// Standardises a whole corpus.
    pub fn transform_all(&self, contexts: &[Vec<f32>]) -> Vec<Vec<f32>> {
        contexts.iter().map(|c| self.transform(c)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_variance_after_transform() {
        let contexts: Vec<Vec<f32>> = (0..50).map(|i| vec![i as f32, 100.0 - i as f32]).collect();
        let scaler = ContextScaler::fit(&contexts);
        let z = scaler.transform_all(&contexts);
        for d in 0..2 {
            let vals: Vec<f32> = z.iter().map(|c| c[d]).collect();
            let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
            let var: f32 =
                vals.iter().map(|&x| (x - mean) * (x - mean)).sum::<f32>() / vals.len() as f32;
            assert!(mean.abs() < 1e-4);
            assert!((var - 1.0).abs() < 1e-3);
        }
    }

    #[test]
    fn constant_dimension_maps_to_zero() {
        let contexts = vec![vec![5.0, 1.0], vec![5.0, 2.0], vec![5.0, 3.0]];
        let scaler = ContextScaler::fit(&contexts);
        for c in &contexts {
            assert_eq!(scaler.transform(c)[0], 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "no contexts")]
    fn empty_corpus_panics() {
        let _ = ContextScaler::fit(&[]);
    }

    #[test]
    #[should_panic(expected = "inconsistent context dimensionality")]
    fn ragged_corpus_panics() {
        let _ = ContextScaler::fit(&[vec![1.0], vec![1.0, 2.0]]);
    }
}
