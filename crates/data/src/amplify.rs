//! Trace amplification: stretch a checked-in fixture into an
//! engine-scale stream without network access.
//!
//! The fleet engine shards to millions of devices, but the repository's
//! real traces are a few hundred windows — big enough to validate the
//! parsers, far too small to exercise the ingestion → sharded-replay
//! path at engine rate. [`amplify_corpus`] multiplies a loaded corpus by
//! a repetition factor: repetition 0 is the base corpus **verbatim**,
//! and every later repetition applies a deterministic per-(repetition,
//! window, channel) perturbation — a multiplicative scale and an
//! additive jitter drawn from splitmix64 streams, **constant across the
//! timesteps of a window** so within-window dynamics (the thing the
//! detectors and the paper's context features look at) are preserved.
//! Windows are never split or recombined, and each repetition appends
//! the base corpus's windows in order, so session/window boundaries
//! survive amplification. Labels and anomaly classes are copied
//! unchanged.
//!
//! Everything is a pure function of `(base corpus, factor, seed)` — same
//! inputs, same amplified stream, on any machine and at any thread
//! count.

use crate::source::{DatasetSource, IngestError, LabeledCorpus};
use crate::window::LabeledWindow;

/// How repetitions `>= 1` are perturbed. The defaults are gentle (±1%
/// scale, ±0.002 jitter): enough that repeated windows are not byte
/// copies, small enough that a window's anomaly label stays truthful —
/// the power fixture's anomaly signal survives standardisation at these
/// levels (checked empirically in `repro_real --amplify`; larger values
/// drift the detectors' input distribution and belong to the
/// online-learning-under-drift experiments, not to replay).
#[derive(Debug, Clone, Copy)]
pub struct PerturbConfig {
    /// Half-width of the multiplicative scale band: each (repetition,
    /// window, channel) scales by `1 ± scale`.
    pub scale: f32,
    /// Half-width of the additive jitter band, in raw data units.
    pub jitter: f32,
    /// Stream seed; fixtures amplified with different seeds decorrelate.
    pub seed: u64,
}

impl Default for PerturbConfig {
    fn default() -> Self {
        Self { scale: 0.01, jitter: 0.002, seed: 0x9e37_79b9_7f4a_7c15 }
    }
}

/// Rejection of an invalid [`PerturbConfig`]: a negative or non-finite
/// band half-width would silently manufacture NaN windows (`NaN * v` and
/// `v + NaN` both poison every sample they touch) that the downstream
/// standardiser would then reject one corpus later, far from the cause.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerturbConfigError {
    /// Which field was invalid (`"scale"` or `"jitter"`).
    pub field: &'static str,
    /// The offending value.
    pub value: f32,
}

impl std::fmt::Display for PerturbConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "invalid PerturbConfig: {} must be finite and non-negative, got {}",
            self.field, self.value
        )
    }
}

impl std::error::Error for PerturbConfigError {}

impl PerturbConfig {
    /// Checks that both band half-widths are finite and non-negative.
    /// [`amplify_corpus`] and [`AmplifiedSource::new`] call this and
    /// panic with the error's message; validate explicitly at config
    /// parse time to surface the problem as a value instead.
    pub fn validate(&self) -> Result<(), PerturbConfigError> {
        if !self.scale.is_finite() || self.scale < 0.0 {
            return Err(PerturbConfigError { field: "scale", value: self.scale });
        }
        if !self.jitter.is_finite() || self.jitter < 0.0 {
            return Err(PerturbConfigError { field: "jitter", value: self.jitter });
        }
        Ok(())
    }
}

/// `splitmix64` step — the same generator the fleet scenarios use for
/// deterministic derived streams.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Uniform in `[-1, 1)` from the generator's top 24 bits.
fn unit(state: &mut u64) -> f32 {
    ((splitmix64(state) >> 40) as f32 / (1u64 << 24) as f32) * 2.0 - 1.0
}

/// Multiplies `base` by `factor`: repetition 0 verbatim, repetitions
/// `1..factor` perturbed per [`PerturbConfig`]. `factor == 1` returns a
/// clone of the base. The result has `base.len() * factor` windows in
/// repetition-major order (base order preserved within each repetition).
///
/// # Panics
///
/// Panics if `factor == 0` (an amplified corpus with no repetitions is
/// a caller bug — use `Option` at the call site to express "off"), or
/// if `perturb` fails [`PerturbConfig::validate`].
pub fn amplify_corpus(
    base: &LabeledCorpus,
    factor: usize,
    perturb: &PerturbConfig,
) -> LabeledCorpus {
    assert!(factor >= 1, "amplification factor must be at least 1");
    perturb.validate().unwrap_or_else(|e| panic!("{e}"));
    let mut windows = Vec::with_capacity(base.len() * factor);
    let mut classes = Vec::with_capacity(base.len() * factor);
    for rep in 0..factor {
        for (w, window) in base.windows.iter().enumerate() {
            let data = if rep == 0 {
                window.data.clone()
            } else {
                let (steps, channels) = (window.data.rows(), window.data.cols());
                // One scale/jitter pair per channel, held constant over
                // the window's timesteps: the stream key mixes the
                // repetition, window index and seed so every repetition
                // of every window draws an independent perturbation.
                let mut values = window.data.as_slice().to_vec();
                for c in 0..channels {
                    let mut state = perturb
                        .seed
                        .wrapping_add((rep as u64).wrapping_mul(0x0100_0000_01b3))
                        .wrapping_add((w as u64).wrapping_mul(0x1000_0000_0000_001b))
                        .wrapping_add(c as u64);
                    let scale = 1.0 + perturb.scale * unit(&mut state);
                    let jitter = perturb.jitter * unit(&mut state);
                    for t in 0..steps {
                        let v = &mut values[t * channels + c];
                        *v = *v * scale + jitter;
                    }
                }
                hec_tensor::Matrix::from_vec(steps, channels, values)
            };
            windows.push(LabeledWindow::new(data, window.anomalous));
            classes.push(base.classes[w]);
        }
    }
    LabeledCorpus::new(windows, classes)
}

/// A [`DatasetSource`] that amplifies whatever its base source loads —
/// the checked-in fixture becomes an engine-scale stream behind the same
/// trait the rest of the pipeline consumes.
#[derive(Debug, Clone)]
pub struct AmplifiedSource<S> {
    base: S,
    factor: usize,
    perturb: PerturbConfig,
}

impl<S: DatasetSource> AmplifiedSource<S> {
    /// Wraps `base`, multiplying its corpus by `factor` on load.
    ///
    /// # Panics
    ///
    /// Panics if `factor == 0` or if `perturb` fails
    /// [`PerturbConfig::validate`].
    pub fn new(base: S, factor: usize, perturb: PerturbConfig) -> Self {
        assert!(factor >= 1, "amplification factor must be at least 1");
        perturb.validate().unwrap_or_else(|e| panic!("{e}"));
        Self { base, factor, perturb }
    }
}

impl<S: DatasetSource> DatasetSource for AmplifiedSource<S> {
    fn name(&self) -> String {
        format!("amplified({} x{})", self.base.name(), self.factor)
    }

    fn channels(&self) -> usize {
        self.base.channels()
    }

    fn load(&self) -> Result<LabeledCorpus, IngestError> {
        Ok(amplify_corpus(&self.base.load()?, self.factor, &self.perturb))
    }
}

/// The temporal shape of an injected regime change.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriftKind {
    /// Full intensity from the onset window onward.
    Step,
    /// Intensity climbs linearly over `ramp_windows` windows after the
    /// onset, then stays at 1.
    Ramp {
        /// Windows from onset until full intensity (must be ≥ 1).
        ramp_windows: usize,
    },
    /// Alternating regimes: `period` drifted windows, `period` base
    /// windows, repeating from the onset.
    Recurring {
        /// Half-cycle length in windows (must be ≥ 1).
        period: usize,
    },
}

/// A deterministic regime-change schedule, layered on top of
/// [`PerturbConfig`] amplification: amplify first (replay-grade
/// perturbation, labels truthful), then [`DriftSchedule::apply`] shifts
/// the post-onset windows' level and scale — `v ↦ v·(1 + scale·I(w)) +
/// level·I(w)` with intensity `I(w) ∈ [0, 1]` a pure function of the
/// window index. The transform is affine and constant within a window,
/// so within-window dynamics (what the detectors score) are preserved
/// and **labels stay truthful**: an anomalous window is exactly as
/// anomalous relative to a refit standardiser, while a pipeline frozen
/// on pre-drift moments sees the whole stream shift.
///
/// Everything is keyed by the window index — no RNG — so the same
/// schedule on the same corpus yields the same stream on any machine and
/// at any thread count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftSchedule {
    /// Temporal shape of the shift.
    pub kind: DriftKind,
    /// First window index the shift touches.
    pub onset: usize,
    /// Additive level shift at full intensity, in raw data units.
    pub level: f32,
    /// Multiplicative scale shift at full intensity (`0.15` = +15%).
    pub scale: f32,
}

impl DriftSchedule {
    /// The shift intensity at window `w`, in `[0, 1]`.
    pub fn intensity(&self, w: usize) -> f32 {
        if w < self.onset {
            return 0.0;
        }
        let since = w - self.onset;
        match self.kind {
            DriftKind::Step => 1.0,
            DriftKind::Ramp { ramp_windows } => {
                (((since + 1) as f32) / ramp_windows.max(1) as f32).min(1.0)
            }
            DriftKind::Recurring { period } => {
                if (since / period.max(1)).is_multiple_of(2) {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }

    /// Applies the schedule to a corpus: window `w` becomes
    /// `v·(1 + scale·I(w)) + level·I(w)`; labels and anomaly classes are
    /// copied unchanged. Windows before the onset are cloned verbatim.
    ///
    /// # Panics
    ///
    /// Panics if `level` or `scale` is non-finite, or if a `Ramp` /
    /// `Recurring` kind has a zero span.
    pub fn apply(&self, base: &LabeledCorpus) -> LabeledCorpus {
        assert!(
            self.level.is_finite() && self.scale.is_finite(),
            "drift level/scale must be finite"
        );
        match self.kind {
            DriftKind::Ramp { ramp_windows } => {
                assert!(ramp_windows >= 1, "ramp_windows must be at least 1")
            }
            DriftKind::Recurring { period } => assert!(period >= 1, "period must be at least 1"),
            DriftKind::Step => {}
        }
        let windows = base
            .windows
            .iter()
            .enumerate()
            .map(|(w, window)| {
                let i = self.intensity(w);
                let data = if i == 0.0 {
                    window.data.clone()
                } else {
                    let gain = 1.0 + self.scale * i;
                    let offset = self.level * i;
                    let values =
                        window.data.as_slice().iter().map(|&v| v * gain + offset).collect();
                    hec_tensor::Matrix::from_vec(window.data.rows(), window.data.cols(), values)
                };
                LabeledWindow::new(data, window.anomalous)
            })
            .collect();
        LabeledCorpus::new(windows, base.classes.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hec_tensor::Matrix;

    fn base() -> LabeledCorpus {
        let mk =
            |v: f32, anomalous| LabeledWindow::new(Matrix::from_vec(3, 2, vec![v; 6]), anomalous);
        LabeledCorpus::new(
            vec![mk(1.0, false), mk(2.0, true), mk(3.0, false)],
            vec![None, Some(1), None],
        )
    }

    #[test]
    fn factor_one_is_the_identity() {
        let b = base();
        let a = amplify_corpus(&b, 1, &PerturbConfig::default());
        assert_eq!(a.len(), b.len());
        for (x, y) in a.windows.iter().zip(&b.windows) {
            assert_eq!(x.data.as_slice(), y.data.as_slice());
        }
        assert_eq!(a.classes, b.classes);
    }

    #[test]
    fn repetition_zero_is_verbatim_and_later_reps_are_perturbed() {
        let b = base();
        let a = amplify_corpus(&b, 3, &PerturbConfig::default());
        assert_eq!(a.len(), 9);
        // Rep 0 verbatim.
        for (x, y) in a.windows[..3].iter().zip(&b.windows) {
            assert_eq!(x.data.as_slice(), y.data.as_slice());
        }
        // Reps 1, 2 perturbed, each differently.
        assert_ne!(a.windows[3].data.as_slice(), b.windows[0].data.as_slice());
        assert_ne!(a.windows[6].data.as_slice(), a.windows[3].data.as_slice());
        // Labels and classes replicate in repetition-major order.
        assert_eq!(a.classes, [None, Some(1), None].repeat(3));
        assert!(a.windows[4].anomalous && a.windows[7].anomalous);
    }

    #[test]
    fn perturbation_is_constant_within_a_window_per_channel() {
        let b = base();
        let a = amplify_corpus(&b, 2, &PerturbConfig::default());
        let w = &a.windows[3].data; // rep 1, window 0 (constant base 1.0)
        for c in 0..2 {
            let first = w[(0, c)];
            for t in 1..3 {
                assert_eq!(w[(t, c)], first, "channel {c} must be uniformly perturbed");
            }
        }
        // ... but channels draw independent perturbations.
        assert_ne!(w[(0, 0)], w[(0, 1)]);
    }

    #[test]
    fn amplification_is_deterministic_and_gentle() {
        let b = base();
        let cfg = PerturbConfig::default();
        let a1 = amplify_corpus(&b, 4, &cfg);
        let a2 = amplify_corpus(&b, 4, &cfg);
        for (x, y) in a1.windows.iter().zip(&a2.windows) {
            assert_eq!(x.data.as_slice(), y.data.as_slice());
        }
        // Bounded: |v' - v| <= |v| * scale + jitter (+ f32 slack).
        for (rep_w, base_w) in a1.windows.iter().zip(b.windows.iter().cycle()) {
            for (p, v) in rep_w.data.as_slice().iter().zip(base_w.data.as_slice()) {
                assert!((p - v).abs() <= v.abs() * cfg.scale + cfg.jitter + 1e-6);
            }
        }
        // Different seed, different stream.
        let a3 = amplify_corpus(&b, 4, &PerturbConfig { seed: 7, ..cfg });
        assert_ne!(a1.windows[3].data.as_slice(), a3.windows[3].data.as_slice());
    }

    #[test]
    fn perturb_config_validation_rejects_bad_half_widths() {
        let ok = PerturbConfig::default();
        assert_eq!(ok.validate(), Ok(()));
        for (cfg, field, value) in [
            (PerturbConfig { scale: -0.1, ..ok }, "scale", -0.1f32),
            (PerturbConfig { scale: f32::NAN, ..ok }, "scale", f32::NAN),
            (PerturbConfig { scale: f32::INFINITY, ..ok }, "scale", f32::INFINITY),
            (PerturbConfig { jitter: -1e-9, ..ok }, "jitter", -1e-9),
            (PerturbConfig { jitter: f32::NEG_INFINITY, ..ok }, "jitter", f32::NEG_INFINITY),
        ] {
            let err = cfg.validate().unwrap_err();
            assert_eq!(err.field, field);
            assert!(err.value == value || (err.value.is_nan() && value.is_nan()));
            assert!(err.to_string().contains(field), "message names the field: {err}");
        }
    }

    #[test]
    #[should_panic(expected = "jitter must be finite")]
    fn amplify_corpus_rejects_invalid_configs() {
        let cfg = PerturbConfig { jitter: f32::NAN, ..PerturbConfig::default() };
        let _ = amplify_corpus(&base(), 2, &cfg);
    }

    #[test]
    #[should_panic(expected = "scale must be finite")]
    fn amplified_source_rejects_invalid_configs() {
        struct Never;
        impl DatasetSource for Never {
            fn name(&self) -> String {
                "never".into()
            }
            fn channels(&self) -> usize {
                1
            }
            fn load(&self) -> Result<LabeledCorpus, IngestError> {
                unreachable!("validation fires before any load")
            }
        }
        let cfg = PerturbConfig { scale: -1.0, ..PerturbConfig::default() };
        let _ = AmplifiedSource::new(Never, 2, cfg);
    }

    fn sched(kind: DriftKind) -> DriftSchedule {
        DriftSchedule { kind, onset: 2, level: 10.0, scale: 0.5 }
    }

    #[test]
    fn drift_intensity_shapes() {
        let step = sched(DriftKind::Step);
        assert_eq!((step.intensity(0), step.intensity(1)), (0.0, 0.0));
        assert_eq!((step.intensity(2), step.intensity(100)), (1.0, 1.0));

        let ramp = sched(DriftKind::Ramp { ramp_windows: 4 });
        assert_eq!(ramp.intensity(1), 0.0);
        assert_eq!(ramp.intensity(2), 0.25);
        assert_eq!(ramp.intensity(4), 0.75);
        assert_eq!(ramp.intensity(5), 1.0);
        assert_eq!(ramp.intensity(50), 1.0);

        let rec = sched(DriftKind::Recurring { period: 3 });
        assert_eq!(rec.intensity(1), 0.0);
        // Windows 2..5 drifted, 5..8 base, 8..11 drifted again.
        assert_eq!((rec.intensity(2), rec.intensity(4)), (1.0, 1.0));
        assert_eq!((rec.intensity(5), rec.intensity(7)), (0.0, 0.0));
        assert_eq!(rec.intensity(8), 1.0);
    }

    #[test]
    fn drift_apply_shifts_values_and_keeps_labels_truthful() {
        let b = base(); // windows of constant 1.0 / 2.0 / 3.0, labels F/T/F
        let s = DriftSchedule { kind: DriftKind::Step, onset: 1, level: 10.0, scale: 0.5 };
        let d = s.apply(&b);
        assert_eq!(d.len(), b.len());
        // Pre-onset window verbatim.
        assert_eq!(d.windows[0].data.as_slice(), b.windows[0].data.as_slice());
        // Post-onset: v * 1.5 + 10.
        assert_eq!(d.windows[1].data.as_slice(), &[13.0f32; 6][..]);
        assert_eq!(d.windows[2].data.as_slice(), &[14.5f32; 6][..]);
        // Labels and classes untouched.
        let labels: Vec<bool> = d.windows.iter().map(|w| w.anomalous).collect();
        assert_eq!(labels, vec![false, true, false]);
        assert_eq!(d.classes, b.classes);
        // Pure function of the window index: reapplying is identical.
        let d2 = s.apply(&b);
        for (x, y) in d.windows.iter().zip(&d2.windows) {
            assert_eq!(x.data.as_slice(), y.data.as_slice());
        }
    }

    #[test]
    #[should_panic(expected = "must be finite")]
    fn drift_apply_rejects_non_finite_shift() {
        let s = DriftSchedule { kind: DriftKind::Step, onset: 0, level: f32::NAN, scale: 0.0 };
        let _ = s.apply(&base());
    }
}
