//! The REINFORCE policy network (§II-B, Fig. 2).
//!
//! *"we build the policy network as a single hidden neural network with 100
//! hidden units and an output layer with 3 units"* (§III-B). The network
//! maps the context `z_x` to logits whose softmax is the categorical policy
//! `π_θ(a | z_x) = ∏_k s_k^{a_k}`; the selected action is
//! `argmax_k s_k` at evaluation time and a sample from the distribution
//! during training.

use rand::Rng;

use hec_nn::{Activation, Dense, Optimizer, Sequential};
use hec_tensor::{vecops, Matrix};

/// The policy network `f_θ(z_x) → s ∈ Δ^{K-1}`.
///
/// # Example
///
/// ```rust
/// use hec_bandit::PolicyNetwork;
///
/// let mut policy = PolicyNetwork::new(4, 100, 3, 7);
/// let probs = policy.probabilities(&[0.0, 1.0, 0.5, 0.2]);
/// assert_eq!(probs.len(), 3);
/// ```
pub struct PolicyNetwork {
    net: Sequential,
    input_dim: usize,
    num_actions: usize,
}

impl PolicyNetwork {
    /// Builds the network: `Dense(input → hidden, ReLU)` then
    /// `Dense(hidden → actions, linear)` with softmax applied on top.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero or `num_actions < 2`.
    pub fn new(input_dim: usize, hidden: usize, num_actions: usize, seed: u64) -> Self {
        assert!(input_dim > 0 && hidden > 0, "dimensions must be non-zero");
        assert!(num_actions >= 2, "need at least two actions");
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let net = Sequential::new(vec![
            Box::new(Dense::new_he(&mut rng, input_dim, hidden, Activation::Relu)),
            Box::new(Dense::new(&mut rng, hidden, num_actions, Activation::Linear)),
        ]);
        Self { net, input_dim, num_actions }
    }

    /// Context dimensionality.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Number of actions K (HEC layers).
    pub fn num_actions(&self) -> usize {
        self.num_actions
    }

    /// Trainable parameter count.
    pub fn param_count(&self) -> usize {
        self.net.param_count()
    }

    /// The policy `π_θ(· | context)` as a probability vector.
    ///
    /// # Panics
    ///
    /// Panics if `context.len() != input_dim`.
    pub fn probabilities(&mut self, context: &[f32]) -> Vec<f32> {
        assert_eq!(context.len(), self.input_dim, "context dimension mismatch");
        let logits = self.net.predict(&Matrix::row_vector(context));
        vecops::softmax(logits.as_slice())
    }

    /// Samples an action from the policy (training-time exploration).
    pub fn sample(&mut self, context: &[f32], rng: &mut impl Rng) -> usize {
        let probs = self.probabilities(context);
        let u: f32 = rng.gen();
        let mut acc = 0.0f32;
        for (k, &p) in probs.iter().enumerate() {
            acc += p;
            if u < acc {
                return k;
            }
        }
        probs.len() - 1
    }

    /// The greedy action `|a| = argmax_k s_k` (evaluation-time selection).
    pub fn greedy(&mut self, context: &[f32]) -> usize {
        vecops::argmax(&self.probabilities(context))
    }

    /// Greedy actions for a whole corpus in **one batched forward pass**:
    /// the contexts are stacked into a `windows × input_dim` matrix so the
    /// dense kernels see a real batch instead of per-window row vectors.
    ///
    /// Each row goes through the same softmax + argmax as
    /// [`PolicyNetwork::greedy`] (not a raw-logit argmax — f32 softmax can
    /// round two distinct logits to equal probabilities, which would flip
    /// tie resolution), so the selected actions are identical to the
    /// per-window path by construction.
    ///
    /// # Panics
    ///
    /// Panics if any context's length differs from `input_dim`.
    pub fn greedy_batch(&mut self, contexts: &[Vec<f32>]) -> Vec<usize> {
        if contexts.is_empty() {
            return Vec::new();
        }
        let mut data = Vec::with_capacity(contexts.len() * self.input_dim);
        for (i, ctx) in contexts.iter().enumerate() {
            assert_eq!(ctx.len(), self.input_dim, "context {i} dimension mismatch");
            data.extend_from_slice(ctx);
        }
        let x = Matrix::from_vec(contexts.len(), self.input_dim, data);
        let logits = self.net.predict(&x);
        logits.iter_rows().map(|row| vecops::argmax(&vecops::softmax(row))).collect()
    }

    /// Serialises every trainable parameter (in layer visitation order)
    /// as little-endian `f32` bytes. Two policies trained through
    /// byte-identical update sequences produce byte-identical digests —
    /// the determinism contract the fleet-in-the-loop trainer is tested
    /// against.
    pub fn weights_le_bytes(&mut self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.param_count() * 4);
        self.net.visit_params(&mut |param, _grad| {
            for &v in param.as_slice() {
                out.extend_from_slice(&v.to_le_bytes());
            }
        });
        out
    }

    /// One REINFORCE update minimising `−advantage · log π_θ(action | ctx)`:
    /// backpropagates `advantage · (π − e_action)` through the network and
    /// applies the optimizer.
    ///
    /// Returns `log π_θ(action | ctx)` *before* the update (useful for
    /// monitoring convergence).
    ///
    /// # Panics
    ///
    /// Panics if `context.len() != input_dim` or `action >= num_actions`.
    pub fn reinforce_update(
        &mut self,
        context: &[f32],
        action: usize,
        advantage: f32,
        optimizer: &mut dyn Optimizer,
    ) -> f32 {
        self.reinforce_update_with_entropy(context, action, advantage, 0.0, optimizer)
    }

    /// [`PolicyNetwork::reinforce_update`] with an **entropy bonus**: the
    /// minimised objective becomes
    /// `−advantage · log π_θ(action | ctx) − β · H(π_θ(· | ctx))`.
    ///
    /// Plain REINFORCE saturates its softmax once one action is on
    /// average best — the logit gap grows without bound, gradients for
    /// the other actions vanish, and the policy freezes before it can
    /// discriminate per context. This bites on long in-fleet training
    /// runs, where each epoch applies one update per *emitted window*
    /// (thousands) rather than per corpus window (hundreds). The entropy
    /// term pushes back with gradient `β · π_k (log π_k + H)` on each
    /// logit, keeping a saturating distribution exploratory without
    /// having to shrink the learning rate for everything else.
    ///
    /// `entropy_beta == 0` is exactly [`PolicyNetwork::reinforce_update`].
    ///
    /// # Panics
    ///
    /// Panics if `context.len() != input_dim`, `action >= num_actions`,
    /// or `entropy_beta` is negative or non-finite.
    pub fn reinforce_update_with_entropy(
        &mut self,
        context: &[f32],
        action: usize,
        advantage: f32,
        entropy_beta: f32,
        optimizer: &mut dyn Optimizer,
    ) -> f32 {
        assert_eq!(context.len(), self.input_dim, "context dimension mismatch");
        assert!(action < self.num_actions, "action out of range");
        assert!(
            entropy_beta >= 0.0 && entropy_beta.is_finite(),
            "entropy_beta must be finite and non-negative"
        );
        let logits = self.net.forward_training(&Matrix::row_vector(context));
        let probs = vecops::softmax(logits.as_slice());
        let log_prob = probs[action].max(1e-12).ln();

        let mut dlogits: Vec<f32> = probs.iter().map(|&p| advantage * p).collect();
        dlogits[action] -= advantage;
        if entropy_beta > 0.0 {
            // H = −Σ π log π; descent on −βH adds β·π_k(log π_k + H).
            let entropy: f32 = -probs.iter().map(|&p| p * p.max(1e-12).ln()).sum::<f32>();
            for (d, &p) in dlogits.iter_mut().zip(probs.iter()) {
                *d += entropy_beta * p * (p.max(1e-12).ln() + entropy);
            }
        }
        let grad = Matrix::row_vector(&dlogits);
        let _ = self.net.backward(&grad);
        self.net.apply_gradients(optimizer);
        log_prob
    }
}

impl std::fmt::Debug for PolicyNetwork {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "PolicyNetwork({} → {} actions, params={})",
            self.input_dim,
            self.num_actions,
            self.param_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hec_nn::Sgd;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn probabilities_form_distribution() {
        let mut p = PolicyNetwork::new(4, 16, 3, 0);
        let probs = p.probabilities(&[0.5, -0.5, 1.0, 0.0]);
        assert_eq!(probs.len(), 3);
        assert!((probs.iter().sum::<f32>() - 1.0).abs() < 1e-5);
        assert!(probs.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn paper_dimensions() {
        // 4 context features → 100 hidden → 3 actions.
        let p = PolicyNetwork::new(4, 100, 3, 0);
        assert_eq!(p.param_count(), 4 * 100 + 100 + 100 * 3 + 3);
    }

    #[test]
    fn reinforce_increases_probability_of_rewarded_action() {
        let mut p = PolicyNetwork::new(2, 16, 3, 1);
        let ctx = [0.3, -0.7];
        let before = p.probabilities(&ctx)[2];
        let mut opt = Sgd::new(0.1);
        for _ in 0..50 {
            p.reinforce_update(&ctx, 2, 1.0, &mut opt);
        }
        let after = p.probabilities(&ctx)[2];
        assert!(after > before, "P(a=2) did not increase: {before} -> {after}");
        assert!(after > 0.9, "P(a=2) = {after} not dominant after training");
    }

    #[test]
    fn negative_advantage_decreases_probability() {
        let mut p = PolicyNetwork::new(2, 16, 3, 2);
        let ctx = [1.0, 1.0];
        let before = p.probabilities(&ctx)[0];
        let mut opt = Sgd::new(0.1);
        for _ in 0..50 {
            p.reinforce_update(&ctx, 0, -1.0, &mut opt);
        }
        let after = p.probabilities(&ctx)[0];
        assert!(after < before, "P(a=0) did not decrease: {before} -> {after}");
    }

    #[test]
    fn policy_is_context_dependent_after_training() {
        // Reward action 0 in context A and action 2 in context B.
        let mut p = PolicyNetwork::new(2, 32, 3, 3);
        let ctx_a = [1.0, 0.0];
        let ctx_b = [0.0, 1.0];
        let mut opt = Sgd::new(0.05);
        for _ in 0..200 {
            p.reinforce_update(&ctx_a, 0, 1.0, &mut opt);
            p.reinforce_update(&ctx_b, 2, 1.0, &mut opt);
        }
        assert_eq!(p.greedy(&ctx_a), 0);
        assert_eq!(p.greedy(&ctx_b), 2);
    }

    #[test]
    fn greedy_batch_matches_greedy() {
        let mut p = PolicyNetwork::new(3, 16, 3, 9);
        let contexts: Vec<Vec<f32>> = (0..17)
            .map(|i| vec![(i as f32 * 0.37).sin(), (i as f32 * 0.11).cos(), i as f32 / 17.0])
            .collect();
        let batched = p.greedy_batch(&contexts);
        let single: Vec<usize> = contexts.iter().map(|c| p.greedy(c)).collect();
        assert_eq!(batched, single);
        assert!(p.greedy_batch(&[]).is_empty());
    }

    #[test]
    fn sampling_follows_distribution() {
        let mut p = PolicyNetwork::new(2, 16, 3, 4);
        let ctx = [0.2, 0.8];
        let probs = p.probabilities(&ctx);
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0usize; 3];
        for _ in 0..3000 {
            counts[p.sample(&ctx, &mut rng)] += 1;
        }
        for k in 0..3 {
            let freq = counts[k] as f32 / 3000.0;
            assert!((freq - probs[k]).abs() < 0.05, "action {k}: sampled {freq} vs π {}", probs[k]);
        }
    }

    #[test]
    fn log_prob_is_returned() {
        let mut p = PolicyNetwork::new(2, 8, 3, 5);
        let mut opt = Sgd::new(0.01);
        let lp = p.reinforce_update(&[0.1, 0.1], 1, 0.5, &mut opt);
        assert!(lp < 0.0, "log-prob must be negative, got {lp}");
        assert!(lp > -10.0, "log-prob suspiciously small: {lp}");
    }

    #[test]
    fn weight_digest_is_deterministic_and_tracks_updates() {
        let mut a = PolicyNetwork::new(3, 8, 3, 7);
        let mut b = PolicyNetwork::new(3, 8, 3, 7);
        assert_eq!(a.weights_le_bytes(), b.weights_le_bytes());
        assert_eq!(a.weights_le_bytes().len(), a.param_count() * 4);
        let mut opt = Sgd::new(0.1);
        a.reinforce_update(&[1.0, 0.0, 0.0], 1, 1.0, &mut opt);
        assert_ne!(a.weights_le_bytes(), b.weights_le_bytes());
        // The same update applied to the twin restores byte equality.
        let mut opt_b = Sgd::new(0.1);
        b.reinforce_update(&[1.0, 0.0, 0.0], 1, 1.0, &mut opt_b);
        assert_eq!(a.weights_le_bytes(), b.weights_le_bytes());
    }

    #[test]
    fn zero_entropy_beta_is_exactly_plain_reinforce() {
        let mut a = PolicyNetwork::new(2, 16, 3, 6);
        let mut b = PolicyNetwork::new(2, 16, 3, 6);
        let mut opt_a = Sgd::new(0.05);
        let mut opt_b = Sgd::new(0.05);
        for i in 0..20 {
            let ctx = [0.1 * i as f32, -0.3];
            a.reinforce_update(&ctx, i % 3, 0.7, &mut opt_a);
            b.reinforce_update_with_entropy(&ctx, i % 3, 0.7, 0.0, &mut opt_b);
        }
        assert_eq!(a.weights_le_bytes(), b.weights_le_bytes());
    }

    #[test]
    fn entropy_regularisation_resists_softmax_saturation() {
        // Hammer one action with positive advantage: plain REINFORCE
        // saturates (max prob → 1), the entropy-regularised policy keeps
        // a visibly softer distribution under the same update stream.
        let ctx = [0.4, -0.2];
        let run = |beta: f32| {
            let mut p = PolicyNetwork::new(2, 16, 3, 8);
            let mut opt = Sgd::new(0.1);
            for _ in 0..400 {
                p.reinforce_update_with_entropy(&ctx, 1, 1.0, beta, &mut opt);
            }
            p.probabilities(&ctx)
        };
        let plain = run(0.0);
        let regularised = run(0.5);
        assert!(plain[1] > 0.99, "plain REINFORCE should saturate, got {:?}", plain);
        assert!(
            regularised[1] < 0.98,
            "entropy bonus failed to cap saturation: {:?} vs {:?}",
            regularised,
            plain
        );
        // The rewarded action still dominates — regularisation tempers,
        // it does not overturn.
        assert!(regularised[1] > 0.5, "{regularised:?}");
    }

    #[test]
    fn entropy_term_alone_pushes_toward_uniform() {
        let ctx = [1.0, -1.0];
        let mut p = PolicyNetwork::new(2, 16, 3, 9);
        // Skew the policy hard first.
        let mut opt = Sgd::new(0.1);
        for _ in 0..200 {
            p.reinforce_update(&ctx, 0, 1.0, &mut opt);
        }
        let skewed = p.probabilities(&ctx);
        // Advantage 0 ⇒ only the entropy gradient acts.
        for _ in 0..400 {
            p.reinforce_update_with_entropy(&ctx, 0, 0.0, 0.5, &mut opt);
        }
        let relaxed = p.probabilities(&ctx);
        let spread = |probs: &[f32]| {
            probs.iter().cloned().fold(f32::MIN, f32::max)
                - probs.iter().cloned().fold(f32::MAX, f32::min)
        };
        assert!(
            spread(&relaxed) < spread(&skewed),
            "entropy-only updates must flatten the distribution: {relaxed:?} vs {skewed:?}"
        );
    }

    #[test]
    #[should_panic(expected = "entropy_beta must be finite and non-negative")]
    fn negative_entropy_beta_rejected() {
        let mut p = PolicyNetwork::new(2, 8, 3, 0);
        let mut opt = Sgd::new(0.01);
        let _ = p.reinforce_update_with_entropy(&[0.0, 0.0], 0, 1.0, -0.1, &mut opt);
    }

    #[test]
    #[should_panic(expected = "context dimension mismatch")]
    fn wrong_context_width_panics() {
        let mut p = PolicyNetwork::new(4, 8, 3, 0);
        let _ = p.probabilities(&[1.0]);
    }

    #[test]
    #[should_panic(expected = "action out of range")]
    fn bad_action_panics() {
        let mut p = PolicyNetwork::new(2, 8, 3, 0);
        let mut opt = Sgd::new(0.01);
        let _ = p.reinforce_update(&[0.0, 0.0], 3, 1.0, &mut opt);
    }
}
