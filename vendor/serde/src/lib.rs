//! Offline marker-trait subset of the `serde` API.
//!
//! Nothing in this workspace serializes at runtime yet — the derives are
//! declared on config/report structs so downstream consumers *can* once a
//! real serializer is wired in. Until the build environment can reach
//! crates.io, [`Serialize`] and [`Deserialize`] are marker traits
//! blanket-implemented for every type, and the re-exported derives expand
//! to nothing. Swapping the path dependency for real `serde` is a
//! manifest-only change.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

impl<T: ?Sized> Serialize for T {}

impl<'de, T: ?Sized> Deserialize<'de> for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
