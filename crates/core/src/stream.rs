//! The demo result panel's streaming series (Fig. 3b).
//!
//! The paper's GUI continuously plots, as windows stream in: the raw sensory
//! signal, the detection outcome (0/1) vs ground truth, the detection delay
//! vs the action chosen by the policy network, and the accumulated accuracy
//! and F1-score. This module regenerates exactly those series as data.

use serde::{Deserialize, Serialize};

use hec_bandit::{ContextScaler, PolicyNetwork};
use hec_data::BinaryConfusion;

use crate::oracle::Oracle;
use crate::scheme::{SchemeEvaluator, SchemeKind};

/// One row of the Fig. 3b panel: the state after processing window `index`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StreamRecord {
    /// Stream position (window index).
    pub index: usize,
    /// Ground truth (1 = anomalous).
    pub truth: bool,
    /// The scheme's verdict.
    pub predicted: bool,
    /// Layer that served the window (the plotted "action").
    pub action: usize,
    /// End-to-end detection delay of this window, ms.
    pub delay_ms: f64,
    /// Accuracy accumulated over the stream so far.
    pub cumulative_accuracy: f64,
    /// F1-score accumulated over the stream so far.
    pub cumulative_f1: f64,
}

/// Replays the evaluation corpus as a stream under the given scheme,
/// producing the Fig. 3b series.
///
/// `policy`/`scaler` are required only for [`SchemeKind::Adaptive`].
///
/// # Panics
///
/// Panics if `Adaptive` is requested without a policy and scaler.
pub fn stream_records(
    evaluator: &SchemeEvaluator<'_>,
    oracle: &Oracle,
    kind: SchemeKind,
    mut policy: Option<&mut PolicyNetwork>,
    scaler: Option<&ContextScaler>,
) -> Vec<StreamRecord> {
    let mut confusion = BinaryConfusion::new();
    let mut records = Vec::with_capacity(oracle.len());
    for i in 0..oracle.len() {
        let outcome = match kind {
            SchemeKind::IoTDevice => evaluator.fixed(oracle, i, 0),
            SchemeKind::Edge => evaluator.fixed(oracle, i, 1),
            SchemeKind::Cloud => evaluator.fixed(oracle, i, 2),
            SchemeKind::Successive => evaluator.successive(oracle, i),
            SchemeKind::Adaptive => {
                let p = policy.as_deref_mut().expect("Adaptive needs a trained policy");
                let s = scaler.expect("Adaptive needs a context scaler");
                evaluator.adaptive(oracle, i, p, s)
            }
        };
        let truth = oracle.outcomes[i].truth;
        confusion.record(outcome.verdict, truth);
        records.push(StreamRecord {
            index: i,
            truth,
            predicted: outcome.verdict,
            action: outcome.final_layer,
            delay_ms: outcome.delay_ms,
            cumulative_accuracy: confusion.accuracy(),
            cumulative_f1: confusion.f1(),
        });
    }
    records
}

/// Renders stream records as CSV (header + one line per window), the format
/// the `repro_fig3` bench binary writes.
pub fn to_csv(records: &[StreamRecord]) -> String {
    let mut out =
        String::from("index,truth,predicted,action,delay_ms,cumulative_accuracy,cumulative_f1\n");
    for r in records {
        out.push_str(&format!(
            "{},{},{},{},{:.3},{:.6},{:.6}\n",
            r.index,
            r.truth as u8,
            r.predicted as u8,
            r.action,
            r.delay_ms,
            r.cumulative_accuracy,
            r.cumulative_f1
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::WindowOutcome;
    use hec_anomaly::ConfidenceRule;
    use hec_bandit::RewardModel;
    use hec_sim::{DatasetKind, HecTopology};

    fn oracle(n: usize) -> Oracle {
        let outcomes = (0..n)
            .map(|i| {
                let truth = i % 3 == 0;
                WindowOutcome {
                    truth,
                    min_log_pd: [-5.0, -5.0, if truth { -60.0 } else { -1.0 }],
                    anomalous_fraction: [
                        0.0,
                        if truth && i % 2 == 0 { 0.4 } else { 0.0 },
                        if truth { 0.4 } else { 0.0 },
                    ],
                    context: vec![i as f32],
                }
            })
            .collect();
        Oracle {
            outcomes,
            thresholds: [-10.0; 3],
            flag_fraction: 0.0,
            confidence: ConfidenceRule::default(),
        }
    }

    #[test]
    fn stream_length_matches_corpus() {
        let topo = HecTopology::paper_testbed(DatasetKind::Univariate);
        let ev = SchemeEvaluator::new(&topo, 384, RewardModel::new(0.0005));
        let o = oracle(30);
        let records = stream_records(&ev, &o, SchemeKind::Cloud, None, None);
        assert_eq!(records.len(), 30);
        assert!(records.iter().enumerate().all(|(i, r)| r.index == i));
    }

    #[test]
    fn cumulative_accuracy_is_monotone_series_of_running_mean() {
        let topo = HecTopology::paper_testbed(DatasetKind::Univariate);
        let ev = SchemeEvaluator::new(&topo, 384, RewardModel::new(0.0005));
        let o = oracle(30);
        let records = stream_records(&ev, &o, SchemeKind::Cloud, None, None);
        // Cloud is always correct in this synthetic oracle.
        let last = records.last().unwrap();
        assert_eq!(last.cumulative_accuracy, 1.0);
        assert_eq!(last.cumulative_f1, 1.0);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let topo = HecTopology::paper_testbed(DatasetKind::Univariate);
        let ev = SchemeEvaluator::new(&topo, 384, RewardModel::new(0.0005));
        let o = oracle(5);
        let csv = to_csv(&stream_records(&ev, &o, SchemeKind::IoTDevice, None, None));
        assert_eq!(csv.lines().count(), 6);
        assert!(csv.starts_with("index,truth"));
    }

    #[test]
    fn iot_stream_has_constant_low_delay() {
        let topo = HecTopology::paper_testbed(DatasetKind::Univariate);
        let ev = SchemeEvaluator::new(&topo, 384, RewardModel::new(0.0005));
        let o = oracle(10);
        let records = stream_records(&ev, &o, SchemeKind::IoTDevice, None, None);
        assert!(records.iter().all(|r| (r.delay_ms - 12.4).abs() < 1e-9));
        assert!(records.iter().all(|r| r.action == 0));
    }
}
