//! Weight initialisers.
//!
//! The paper's models are standard Keras layers; we reproduce the default
//! initialisation behaviour: Glorot/Xavier uniform for dense and LSTM kernels,
//! zeros for biases. He initialisation is provided for ReLU layers in the
//! policy network.

use rand::Rng;

use crate::Matrix;

/// Glorot/Xavier uniform: `U(-l, l)` with `l = sqrt(6 / (fan_in + fan_out))`.
///
/// This is the Keras default (`glorot_uniform`) used by the paper's dense and
/// LSTM layers.
///
/// # Panics
///
/// Panics if either dimension is zero.
pub fn glorot_uniform(rng: &mut impl Rng, fan_in: usize, fan_out: usize) -> Matrix {
    assert!(fan_in > 0 && fan_out > 0, "fan dimensions must be non-zero");
    let limit = (6.0 / (fan_in + fan_out) as f32).sqrt();
    uniform(rng, fan_in, fan_out, -limit, limit)
}

/// He/Kaiming uniform: `U(-l, l)` with `l = sqrt(6 / fan_in)`; preferred for
/// ReLU activations.
///
/// # Panics
///
/// Panics if either dimension is zero.
pub fn he_uniform(rng: &mut impl Rng, fan_in: usize, fan_out: usize) -> Matrix {
    assert!(fan_in > 0 && fan_out > 0, "fan dimensions must be non-zero");
    let limit = (6.0 / fan_in as f32).sqrt();
    uniform(rng, fan_in, fan_out, -limit, limit)
}

/// Uniform initialisation over `[lo, hi)`.
///
/// # Panics
///
/// Panics if either dimension is zero or `lo >= hi`.
pub fn uniform(rng: &mut impl Rng, rows: usize, cols: usize, lo: f32, hi: f32) -> Matrix {
    assert!(rows > 0 && cols > 0, "dimensions must be non-zero");
    assert!(lo < hi, "invalid uniform range [{lo}, {hi})");
    let data = (0..rows * cols).map(|_| rng.gen_range(lo..hi)).collect();
    Matrix::from_vec(rows, cols, data)
}

/// Standard normal initialisation scaled by `std`.
///
/// Uses the Box–Muller transform so only a `Rng` (not `rand_distr`) is needed.
///
/// # Panics
///
/// Panics if either dimension is zero or `std` is not positive.
pub fn normal(rng: &mut impl Rng, rows: usize, cols: usize, std: f32) -> Matrix {
    assert!(rows > 0 && cols > 0, "dimensions must be non-zero");
    assert!(std > 0.0, "std must be positive");
    let n = rows * cols;
    let mut data = Vec::with_capacity(n);
    while data.len() < n {
        let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
        let u2: f32 = rng.gen_range(0.0..1.0);
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f32::consts::PI * u2;
        data.push(r * theta.cos() * std);
        if data.len() < n {
            data.push(r * theta.sin() * std);
        }
    }
    Matrix::from_vec(rows, cols, data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn glorot_respects_limit() {
        let mut rng = StdRng::seed_from_u64(7);
        let w = glorot_uniform(&mut rng, 100, 50);
        let limit = (6.0f32 / 150.0).sqrt();
        assert!(w.as_slice().iter().all(|&x| x.abs() <= limit));
        assert_eq!(w.shape(), (100, 50));
    }

    #[test]
    fn he_respects_limit() {
        let mut rng = StdRng::seed_from_u64(7);
        let w = he_uniform(&mut rng, 64, 32);
        let limit = (6.0f32 / 64.0).sqrt();
        assert!(w.as_slice().iter().all(|&x| x.abs() <= limit));
    }

    #[test]
    fn uniform_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let w = uniform(&mut rng, 10, 10, -0.25, 0.25);
        assert!(w.as_slice().iter().all(|&x| (-0.25..0.25).contains(&x)));
    }

    #[test]
    fn normal_moments_roughly_correct() {
        let mut rng = StdRng::seed_from_u64(42);
        let w = normal(&mut rng, 100, 100, 0.5);
        let mean = w.mean();
        let var =
            w.as_slice().iter().map(|&x| (x - mean) * (x - mean)).sum::<f32>() / w.len() as f32;
        assert!(mean.abs() < 0.02, "mean {mean} too far from 0");
        assert!((var.sqrt() - 0.5).abs() < 0.02, "std {} too far from 0.5", var.sqrt());
    }

    #[test]
    fn deterministic_given_seed() {
        let w1 = glorot_uniform(&mut StdRng::seed_from_u64(9), 4, 4);
        let w2 = glorot_uniform(&mut StdRng::seed_from_u64(9), 4, 4);
        assert_eq!(w1, w2);
    }

    #[test]
    #[should_panic(expected = "std must be positive")]
    fn normal_rejects_nonpositive_std() {
        let _ = normal(&mut StdRng::seed_from_u64(0), 2, 2, 0.0);
    }
}
