//! Threaded message-passing runtime for the testbed.
//!
//! The paper's demo connects the three layers with keep-alive TCP sockets
//! (§III-C). Here each layer is a worker thread and crossbeam channels stand
//! in for the sockets: detection jobs are routed to the worker of the chosen
//! layer, executed there (via a caller-supplied executor closure), and the
//! result is reported together with the *simulated* end-to-end delay from
//! the topology's delay model (virtual time — the runtime never sleeps).

use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;

use crate::topology::HecTopology;

/// A detection job to run at a chosen layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DetectJob {
    /// Caller-assigned identifier (e.g. window index).
    pub id: u64,
    /// Layer to execute at (0 = IoT).
    pub layer: usize,
    /// Payload size in bytes (for bandwidth-capped links).
    pub payload_bytes: usize,
}

/// A completed job.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobResult {
    /// The job's identifier.
    pub id: u64,
    /// Layer it executed at.
    pub layer: usize,
    /// Simulated end-to-end delay, ms (transfer + execution).
    pub e2e_ms: f64,
    /// The executor's verdict (`true` = anomalous).
    pub verdict: bool,
}

/// Per-layer executor: given a job id, returns the detection verdict.
pub type Executor = Box<dyn FnMut(u64) -> bool + Send>;

/// The running testbed: one worker thread per layer.
///
/// # Example
///
/// ```rust
/// use hec_sim::{DatasetKind, DetectJob, HecRuntime, HecTopology};
///
/// let topo = HecTopology::paper_testbed(DatasetKind::Univariate);
/// let executors: Vec<_> = (0..3)
///     .map(|layer| {
///         Box::new(move |id: u64| (id + layer as u64) % 2 == 0) as _
///     })
///     .collect();
/// let runtime = HecRuntime::spawn(topo, executors);
/// runtime.submit(DetectJob { id: 0, layer: 2, payload_bytes: 384 });
/// let results = runtime.shutdown();
/// assert_eq!(results.len(), 1);
/// assert!((results[0].e2e_ms - 504.5).abs() < 1e-9);
/// ```
pub struct HecRuntime {
    submit_tx: Option<Sender<DetectJob>>,
    result_rx: Receiver<JobResult>,
    handles: Vec<JoinHandle<()>>,
    layer_counts: Arc<Mutex<Vec<u64>>>,
    num_layers: usize,
}

impl HecRuntime {
    /// Spawns one worker per layer.
    ///
    /// # Panics
    ///
    /// Panics if the number of executors differs from the topology's layers.
    pub fn spawn(topology: HecTopology, executors: Vec<Executor>) -> Self {
        assert_eq!(
            executors.len(),
            topology.num_layers(),
            "need one executor per layer ({} layers, {} executors)",
            topology.num_layers(),
            executors.len()
        );
        let (submit_tx, submit_rx) = unbounded::<DetectJob>();
        let (result_tx, result_rx) = unbounded::<JobResult>();
        let layer_counts = Arc::new(Mutex::new(vec![0u64; topology.num_layers()]));

        let mut worker_txs: Vec<Sender<DetectJob>> = Vec::new();
        let mut handles: Vec<JoinHandle<()>> = Vec::new();

        for (layer, mut exec) in executors.into_iter().enumerate() {
            let (tx, rx) = unbounded::<DetectJob>();
            worker_txs.push(tx);
            let result_tx = result_tx.clone();
            let topo = topology.clone();
            let counts = Arc::clone(&layer_counts);
            handles.push(std::thread::spawn(move || {
                for job in rx.iter() {
                    let verdict = exec(job.id);
                    let e2e_ms = topo.end_to_end_ms(layer, job.payload_bytes);
                    counts.lock()[layer] += 1;
                    // Receiver may be gone during shutdown; ignore send errors.
                    let _ = result_tx.send(JobResult { id: job.id, layer, e2e_ms, verdict });
                }
            }));
        }
        drop(result_tx);

        // Router thread: forwards each job to its layer's worker. Layer
        // bounds are validated in `submit` (the caller's thread), so an
        // out-of-range job can never reach this loop.
        let num_layers = worker_txs.len();
        let router = std::thread::spawn(move || {
            for job in submit_rx.iter() {
                let _ = worker_txs[job.layer].send(job);
            }
            // Dropping worker_txs closes the workers.
        });
        handles.push(router);

        Self { submit_tx: Some(submit_tx), result_rx, handles, layer_counts, num_layers }
    }

    /// Submits a job for execution.
    ///
    /// # Panics
    ///
    /// Panics in the *caller's* context if `job.layer` is out of range —
    /// validating here (rather than in the router thread) means a bad job
    /// fails fast at the submission site instead of killing the router and
    /// leaving `shutdown` to surface a confusing cross-thread error.
    /// Also panics if called after [`HecRuntime::shutdown`] (the runtime is
    /// consumed by `shutdown`, so this cannot normally happen).
    pub fn submit(&self, job: DetectJob) {
        assert!(
            job.layer < self.num_layers,
            "job {} targets layer {} but the topology has only {} layers",
            job.id,
            job.layer,
            self.num_layers
        );
        self.submit_tx
            .as_ref()
            .expect("runtime already shut down")
            .send(job)
            .expect("router thread terminated unexpectedly");
    }

    /// Jobs executed per layer so far.
    pub fn layer_counts(&self) -> Vec<u64> {
        self.layer_counts.lock().clone()
    }

    /// Closes the submission side, waits for all workers and returns every
    /// result (ordered by completion).
    pub fn shutdown(mut self) -> Vec<JobResult> {
        self.submit_tx = None; // close the channel; router & workers drain
        let mut results: Vec<JobResult> = self.result_rx.iter().collect();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
        results.sort_by_key(|r| r.id);
        results
    }
}

impl std::fmt::Debug for HecRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "HecRuntime(layers={}, active={})",
            self.layer_counts.lock().len(),
            self.submit_tx.is_some()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::DatasetKind;

    fn runtime() -> HecRuntime {
        let topo = HecTopology::paper_testbed(DatasetKind::Univariate);
        let executors: Vec<Executor> = (0..3)
            .map(|layer| Box::new(move |id: u64| id % 2 == layer as u64 % 2) as Executor)
            .collect();
        HecRuntime::spawn(topo, executors)
    }

    #[test]
    fn jobs_route_to_requested_layer() {
        let rt = runtime();
        for (id, layer) in [(0u64, 0usize), (1, 1), (2, 2), (3, 1)] {
            rt.submit(DetectJob { id, layer, payload_bytes: 384 });
        }
        let results = rt.shutdown();
        assert_eq!(results.len(), 4);
        assert_eq!(results[0].layer, 0);
        assert_eq!(results[1].layer, 1);
        assert_eq!(results[2].layer, 2);
        assert_eq!(results[3].layer, 1);
    }

    #[test]
    fn delays_match_topology() {
        let rt = runtime();
        rt.submit(DetectJob { id: 0, layer: 0, payload_bytes: 384 });
        rt.submit(DetectJob { id: 1, layer: 1, payload_bytes: 384 });
        rt.submit(DetectJob { id: 2, layer: 2, payload_bytes: 384 });
        let results = rt.shutdown();
        assert!((results[0].e2e_ms - 12.4).abs() < 1e-9);
        assert!((results[1].e2e_ms - 257.43).abs() < 1e-9);
        assert!((results[2].e2e_ms - 504.5).abs() < 1e-9);
    }

    #[test]
    fn executors_produce_verdicts() {
        let topo = HecTopology::paper_testbed(DatasetKind::Univariate);
        let executors: Vec<Executor> =
            vec![Box::new(|_| true), Box::new(|_| false), Box::new(|id| id == 7)];
        let rt = HecRuntime::spawn(topo, executors);
        rt.submit(DetectJob { id: 7, layer: 2, payload_bytes: 0 });
        rt.submit(DetectJob { id: 8, layer: 2, payload_bytes: 0 });
        rt.submit(DetectJob { id: 9, layer: 0, payload_bytes: 0 });
        let results = rt.shutdown();
        assert!(results[0].verdict); // id 7 at cloud
        assert!(!results[1].verdict); // id 8 at cloud
        assert!(results[2].verdict); // id 9 at iot (always true)
    }

    #[test]
    fn counts_track_placement() {
        let rt = runtime();
        for id in 0..9u64 {
            rt.submit(DetectJob { id, layer: (id % 3) as usize, payload_bytes: 0 });
        }
        let results = rt.shutdown();
        assert_eq!(results.len(), 9);
        let mut per_layer = [0u64; 3];
        for r in &results {
            per_layer[r.layer] += 1;
        }
        assert_eq!(per_layer, [3, 3, 3]);
    }

    #[test]
    fn many_jobs_complete() {
        let rt = runtime();
        for id in 0..500u64 {
            rt.submit(DetectJob { id, layer: (id % 3) as usize, payload_bytes: 128 });
        }
        let results = rt.shutdown();
        assert_eq!(results.len(), 500);
        // Sorted by id.
        for (i, r) in results.iter().enumerate() {
            assert_eq!(r.id, i as u64);
        }
    }

    #[test]
    #[should_panic(expected = "one executor per layer")]
    fn executor_count_mismatch_panics() {
        let topo = HecTopology::paper_testbed(DatasetKind::Univariate);
        let _ = HecRuntime::spawn(topo, vec![]);
    }

    #[test]
    #[should_panic(expected = "targets layer 7 but the topology has only 3 layers")]
    fn out_of_range_layer_panics_in_submit() {
        let rt = runtime();
        rt.submit(DetectJob { id: 42, layer: 7, payload_bytes: 0 });
    }

    #[test]
    fn valid_jobs_still_flow_after_validation() {
        // The bounds check must not reject in-range layers, including the
        // top one.
        let rt = runtime();
        rt.submit(DetectJob { id: 0, layer: 2, payload_bytes: 64 });
        assert_eq!(rt.shutdown().len(), 1);
    }
}
