//! REINFORCE training with the reinforcement-comparison baseline.
//!
//! §II-B: *"To reduce the variance of reward value and increase the
//! convergence rate, we utilize reinforcement comparison [11] with a baseline
//! R(ã, z_x)"* — i.e. the advantage fed to the policy gradient is the reward
//! minus a running reference reward (Williams 1992, Sutton & Barto §2.8).

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use hec_nn::Adam;

use crate::delay::DelaySource;
use crate::policy::PolicyNetwork;
use crate::reward::RewardModel;

/// The reinforcement-comparison baseline: an exponentially-weighted running
/// mean of observed rewards, `r̄ ← r̄ + β (r − r̄)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReinforcementComparison {
    reference: f32,
    beta: f32,
    initialized: bool,
}

impl ReinforcementComparison {
    /// Creates a baseline with smoothing step `β ∈ (0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < beta <= 1`.
    pub fn new(beta: f32) -> Self {
        assert!(beta > 0.0 && beta <= 1.0, "beta must be in (0, 1]");
        Self { reference: 0.0, beta, initialized: false }
    }

    /// Current reference reward `r̄`.
    pub fn reference(&self) -> f32 {
        self.reference
    }

    /// Computes the advantage `r − r̄` and then updates `r̄`.
    pub fn advantage_and_update(&mut self, reward: f32) -> f32 {
        if !self.initialized {
            // Seed the reference with the first observation so the first
            // advantage is 0 rather than a full-magnitude spike.
            self.reference = reward;
            self.initialized = true;
            return 0.0;
        }
        let advantage = reward - self.reference;
        self.reference += self.beta * (reward - self.reference);
        advantage
    }
}

/// Training hyper-parameters for [`PolicyTrainer`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Passes over the context set.
    pub epochs: usize,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// Baseline smoothing β.
    pub baseline_beta: f32,
    /// Whether to use the reinforcement-comparison baseline (the paper does;
    /// `false` gives plain REINFORCE for the ablation bench).
    pub use_baseline: bool,
    /// Entropy-regularisation strength β (0 = plain REINFORCE, the
    /// paper's regime and the default). Long in-fleet runs apply one
    /// update per *emitted window* and saturate the softmax on the
    /// on-average-best action; a small β (~0.01) keeps the policy
    /// exploratory there — see
    /// [`PolicyNetwork::reinforce_update_with_entropy`].
    pub entropy_beta: f32,
    /// Sampling / shuffling seed.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 30,
            learning_rate: 1e-3,
            baseline_beta: 0.05,
            use_baseline: true,
            entropy_beta: 0.0,
            seed: 0,
        }
    }
}

/// Per-epoch mean rewards — the policy's learning curve (used by the
/// convergence-ablation bench).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainingCurve {
    /// Mean observed reward per epoch, in training order.
    pub mean_reward_per_epoch: Vec<f32>,
}

impl TrainingCurve {
    /// Mean reward of the final epoch.
    ///
    /// # Panics
    ///
    /// Panics if the curve is empty.
    pub fn final_reward(&self) -> f32 {
        *self.mean_reward_per_epoch.last().expect("empty training curve")
    }
}

/// Trains a [`PolicyNetwork`] on a corpus of contexts against a black-box
/// reward oracle (the oracle hides the AD models, delays and labels).
pub struct PolicyTrainer {
    policy: PolicyNetwork,
    baseline: ReinforcementComparison,
    optimizer: Adam,
    rng: StdRng,
    config: TrainConfig,
    /// Deferred `(context, action, reward)` observations for continual
    /// mode: accumulated via [`PolicyTrainer::buffer`], applied FIFO by
    /// [`PolicyTrainer::refresh`].
    pending: Vec<(Vec<f32>, usize, f32)>,
}

impl PolicyTrainer {
    /// Creates a trainer that owns the policy.
    pub fn new(policy: PolicyNetwork, config: TrainConfig) -> Self {
        Self {
            baseline: ReinforcementComparison::new(config.baseline_beta),
            optimizer: Adam::new(config.learning_rate),
            rng: StdRng::seed_from_u64(config.seed),
            policy,
            config,
            pending: Vec::new(),
        }
    }

    /// Immutable access to the policy.
    pub fn policy(&self) -> &PolicyNetwork {
        &self.policy
    }

    /// Mutable access to the policy (e.g. for greedy evaluation mid-run).
    pub fn policy_mut(&mut self) -> &mut PolicyNetwork {
        &mut self.policy
    }

    /// Consumes the trainer, returning the trained policy.
    pub fn into_policy(self) -> PolicyNetwork {
        self.policy
    }

    /// One REINFORCE step on a single context: sample an action, query the
    /// reward oracle, update baseline and policy. Returns `(action, reward)`.
    pub fn step(
        &mut self,
        context: &[f32],
        reward_of: &mut dyn FnMut(usize) -> f32,
    ) -> (usize, f32) {
        let action = self.sample_action(context);
        let reward = reward_of(action);
        self.observe(context, action, reward);
        (action, reward)
    }

    /// Samples an action from the current policy *without* updating —
    /// the first half of a step whose reward arrives later (e.g. when the
    /// window's simulated completion is observed only after it drains
    /// through the fleet's queues). Pair with [`PolicyTrainer::observe`].
    pub fn sample_action(&mut self, context: &[f32]) -> usize {
        self.policy.sample(context, &mut self.rng)
    }

    /// Applies the deferred REINFORCE update for an action sampled
    /// earlier via [`PolicyTrainer::sample_action`], once its reward is
    /// known: updates the baseline and the policy. `context` must be the
    /// exact context the action was sampled from.
    pub fn observe(&mut self, context: &[f32], action: usize, reward: f32) {
        let advantage = if self.config.use_baseline {
            self.baseline.advantage_and_update(reward)
        } else {
            reward
        };
        self.policy.reinforce_update_with_entropy(
            context,
            action,
            advantage,
            self.config.entropy_beta,
            &mut self.optimizer,
        );
    }

    /// Continual mode, half one: queues a deferred observation without
    /// updating anything. The streaming adaptation loop samples shadow
    /// actions while a chunk replays through the fleet and buffers each
    /// `(context, action, reward)` here; [`PolicyTrainer::refresh`]
    /// applies them between chunks, so routing tables stay stable within
    /// a chunk (the sharded replay driver requires a stateless router)
    /// while the policy still learns inside the stream.
    pub fn buffer(&mut self, context: Vec<f32>, action: usize, reward: f32) {
        self.pending.push((context, action, reward));
    }

    /// Observations currently buffered.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Continual mode, half two: applies every buffered observation in
    /// FIFO order through [`PolicyTrainer::observe`] (baseline update +
    /// `reinforce_update`, PR 4's deferred-reward split) and clears the
    /// buffer. Returns how many updates were applied. Deterministic:
    /// same buffered sequence, same resulting weights.
    pub fn refresh(&mut self) -> usize {
        let pending = std::mem::take(&mut self.pending);
        let n = pending.len();
        for (context, action, reward) in pending {
            self.observe(&context, action, reward);
        }
        n
    }

    /// Trains for `config.epochs` passes over `contexts`; the oracle is
    /// called as `reward_of(context_index, action)`.
    ///
    /// # Panics
    ///
    /// Panics if `contexts` is empty.
    pub fn train(
        &mut self,
        contexts: &[Vec<f32>],
        reward_of: &mut dyn FnMut(usize, usize) -> f32,
    ) -> TrainingCurve {
        assert!(!contexts.is_empty(), "no training contexts");
        let mut curve = Vec::with_capacity(self.config.epochs);
        let mut order: Vec<usize> = (0..contexts.len()).collect();
        for _ in 0..self.config.epochs {
            use rand::seq::SliceRandom;
            order.shuffle(&mut self.rng);
            let mut total = 0.0f32;
            for &i in &order {
                let (_, r) = self.step(&contexts[i], &mut |a| reward_of(i, a));
                total += r;
            }
            curve.push(total / contexts.len() as f32);
        }
        TrainingCurve { mean_reward_per_epoch: curve }
    }

    /// Trains against a [`RewardModel`] whose delays come from a pluggable
    /// [`DelaySource`]: the canonical reward path. `correct_of(i, a)` is
    /// the frozen oracle's verdict-correctness for window `i` at action
    /// `a`; windows the source reports as dropped (`None`) pay the drop
    /// penalty ([`RewardModel::reward_dropped`]).
    ///
    /// With a [`crate::StaticDelays`] table this reproduces the paper's
    /// original static training bit-for-bit; with observed delays the same
    /// loop learns load-dependent costs.
    ///
    /// # Panics
    ///
    /// Panics if `contexts` is empty.
    pub fn train_with_delays(
        &mut self,
        contexts: &[Vec<f32>],
        correct_of: &mut dyn FnMut(usize, usize) -> bool,
        delays: &dyn DelaySource,
        reward: &RewardModel,
    ) -> TrainingCurve {
        let mut reward_of = |i: usize, a: usize| -> f32 {
            reward.reward_outcome(correct_of(i, a), delays.delay_ms(i, a)) as f32
        };
        self.train(contexts, &mut reward_of)
    }
}

impl std::fmt::Debug for PolicyTrainer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PolicyTrainer({:?}, baseline_ref={:.4})", self.policy, self.baseline.reference())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_tracks_rewards() {
        let mut b = ReinforcementComparison::new(0.5);
        assert_eq!(b.advantage_and_update(1.0), 0.0); // seeds the reference
        assert_eq!(b.reference(), 1.0);
        let adv = b.advantage_and_update(2.0);
        assert!((adv - 1.0).abs() < 1e-6);
        assert!((b.reference() - 1.5).abs() < 1e-6);
    }

    #[test]
    fn baseline_reduces_advantage_magnitude_over_time() {
        let mut b = ReinforcementComparison::new(0.2);
        let mut last_adv = f32::INFINITY;
        for _ in 0..20 {
            last_adv = b.advantage_and_update(3.0);
        }
        assert!(last_adv.abs() < 0.1, "advantage should decay to 0 for constant rewards");
    }

    #[test]
    fn trainer_learns_context_dependent_optimum() {
        // Context [1,0] → action 0 pays; context [0,1] → action 2 pays.
        let contexts: Vec<Vec<f32>> =
            (0..40).map(|i| if i % 2 == 0 { vec![1.0, 0.0] } else { vec![0.0, 1.0] }).collect();
        let mut reward = |i: usize, a: usize| -> f32 {
            let best = if i.is_multiple_of(2) { 0 } else { 2 };
            if a == best {
                1.0
            } else {
                0.0
            }
        };
        let policy = PolicyNetwork::new(2, 32, 3, 9);
        let mut trainer = PolicyTrainer::new(
            policy,
            TrainConfig { epochs: 60, learning_rate: 5e-3, ..Default::default() },
        );
        let curve = trainer.train(&contexts, &mut reward);
        assert!(curve.final_reward() > 0.85, "final mean reward {} too low", curve.final_reward());
        let policy = trainer.policy_mut();
        assert_eq!(policy.greedy(&[1.0, 0.0]), 0);
        assert_eq!(policy.greedy(&[0.0, 1.0]), 2);
    }

    #[test]
    fn curve_improves_on_average() {
        let contexts: Vec<Vec<f32>> = (0..20).map(|_| vec![0.5, 0.5]).collect();
        let mut reward = |_i: usize, a: usize| if a == 1 { 1.0 } else { -0.2 };
        let policy = PolicyNetwork::new(2, 16, 3, 5);
        let mut trainer = PolicyTrainer::new(
            policy,
            TrainConfig { epochs: 40, learning_rate: 5e-3, ..Default::default() },
        );
        let curve = trainer.train(&contexts, &mut reward);
        let early: f32 = curve.mean_reward_per_epoch[..5].iter().sum::<f32>() / 5.0;
        let late: f32 = curve.mean_reward_per_epoch[35..].iter().sum::<f32>() / 5.0;
        assert!(late > early, "no improvement: early {early}, late {late}");
    }

    #[test]
    fn delay_source_training_matches_equivalent_closure() {
        use crate::delay::StaticDelays;

        // Identical seeds and rewards ⇒ identical curves and weights,
        // whether the reward comes from the closure or the trait path.
        let contexts: Vec<Vec<f32>> =
            (0..30).map(|i| if i % 2 == 0 { vec![1.0, 0.0] } else { vec![0.0, 1.0] }).collect();
        let delays = StaticDelays::new(vec![12.4, 257.43, 504.5]);
        let reward = RewardModel::new(0.0005);
        let correct = |i: usize, a: usize| if i.is_multiple_of(2) { a == 0 } else { a == 2 };
        let config = TrainConfig { epochs: 10, ..Default::default() };

        let mut via_trait = PolicyTrainer::new(PolicyNetwork::new(2, 16, 3, 5), config);
        let curve_trait =
            via_trait.train_with_delays(&contexts, &mut { correct }, &delays, &reward);

        let mut via_closure = PolicyTrainer::new(PolicyNetwork::new(2, 16, 3, 5), config);
        let mut reward_of = |i: usize, a: usize| -> f32 {
            reward.reward(correct(i, a), delays.per_action()[a]) as f32
        };
        let curve_closure = via_closure.train(&contexts, &mut reward_of);

        assert_eq!(curve_trait, curve_closure);
        assert_eq!(
            via_trait.policy_mut().weights_le_bytes(),
            via_closure.policy_mut().weights_le_bytes()
        );
    }

    #[test]
    fn dropped_windows_pay_the_penalty_during_training() {
        use crate::delay::ObservedDelays;

        // Action 1 is never served: the trained policy must avoid it even
        // though its "correctness" would have been perfect.
        let contexts: Vec<Vec<f32>> = (0..20).map(|_| vec![1.0, 1.0]).collect();
        let mut observed = ObservedDelays::new(20, 3);
        for i in 0..20 {
            observed.record(i, 0, 12.4);
            observed.record(i, 2, 504.5);
        }
        let reward = RewardModel::new(0.0005);
        let mut trainer = PolicyTrainer::new(
            PolicyNetwork::new(2, 16, 3, 3),
            TrainConfig { epochs: 40, learning_rate: 5e-3, ..Default::default() },
        );
        let curve = trainer.train_with_delays(&contexts, &mut |_i, _a| true, &observed, &reward);
        assert!(curve.final_reward() > 0.8, "final {}", curve.final_reward());
        assert_ne!(trainer.policy_mut().greedy(&[1.0, 1.0]), 1, "policy kept the dropped arm");
    }

    #[test]
    fn entropy_beta_keeps_long_runs_unsaturated() {
        // One action always pays: a long run of identical updates — the
        // in-fleet saturation regime in miniature. With β = 0 the softmax
        // pins to the winner; with a small β the policy keeps sampling
        // the alternatives at a visible rate while still preferring the
        // winner.
        let contexts: Vec<Vec<f32>> = (0..20).map(|_| vec![0.5, 0.5]).collect();
        let run = |entropy_beta: f32| {
            let mut trainer = PolicyTrainer::new(
                PolicyNetwork::new(2, 16, 3, 5),
                TrainConfig {
                    epochs: 120,
                    learning_rate: 5e-3,
                    entropy_beta,
                    ..Default::default()
                },
            );
            let mut reward = |_i: usize, a: usize| if a == 1 { 1.0 } else { -0.2 };
            let curve = trainer.train(&contexts, &mut reward);
            (trainer.policy_mut().probabilities(&[0.5, 0.5]), curve)
        };
        let (plain, _) = run(0.0);
        let (regularised, curve) = run(0.01);
        assert!(plain[1] > regularised[1], "{plain:?} vs {regularised:?}");
        assert!(regularised[1] > 0.5, "winner must still dominate: {regularised:?}");
        assert!(curve.final_reward() > 0.5, "regularised training still learns");
    }

    #[test]
    fn buffered_refresh_matches_immediate_observes() {
        // Continual mode is exactly the deferred-reward split batched:
        // buffering a sequence and refreshing must produce the same
        // weights as calling `observe` immediately in the same order.
        let config = TrainConfig { learning_rate: 5e-3, ..Default::default() };
        let obs: Vec<(Vec<f32>, usize, f32)> = (0..30)
            .map(|i| {
                let ctx = if i % 2 == 0 { vec![1.0, 0.0] } else { vec![0.0, 1.0] };
                (ctx, i % 3, if i % 3 == 0 { 1.0 } else { -0.2 })
            })
            .collect();

        let mut immediate = PolicyTrainer::new(PolicyNetwork::new(2, 16, 3, 5), config);
        for (ctx, a, r) in &obs {
            immediate.observe(ctx, *a, *r);
        }

        let mut buffered = PolicyTrainer::new(PolicyNetwork::new(2, 16, 3, 5), config);
        for (ctx, a, r) in &obs {
            buffered.buffer(ctx.clone(), *a, *r);
        }
        assert_eq!(buffered.pending_len(), obs.len());
        assert_eq!(buffered.refresh(), obs.len());
        assert_eq!(buffered.pending_len(), 0, "refresh drains the buffer");
        assert_eq!(buffered.refresh(), 0, "empty refresh is a no-op");

        assert_eq!(
            immediate.policy_mut().weights_le_bytes(),
            buffered.policy_mut().weights_le_bytes()
        );
    }

    #[test]
    fn continual_refresh_tracks_a_regime_change() {
        // Pre-drift the best arm is 0; post-drift it is 2. Chunked
        // buffer→refresh cycles must move the greedy choice. Pre-drift
        // training is deliberately moderate: a fully saturated softmax
        // cannot escape under REINFORCE (both the policy gradient and
        // the entropy gradient scale with π(1−π) → 0), which is why the
        // continual mode keeps a small entropy β in the stream.
        let mut trainer = PolicyTrainer::new(
            PolicyNetwork::new(2, 16, 3, 7),
            TrainConfig { learning_rate: 5e-3, entropy_beta: 0.02, ..Default::default() },
        );
        let ctx = vec![0.7, 0.3];
        for phase in 0..2 {
            let best = if phase == 0 { 0 } else { 2 };
            let chunks = if phase == 0 { 6 } else { 30 };
            for _chunk in 0..chunks {
                for _ in 0..20 {
                    let a = trainer.sample_action(&ctx);
                    let r = if a == best { 1.0 } else { -0.2 };
                    trainer.buffer(ctx.clone(), a, r);
                }
                trainer.refresh();
            }
            assert_eq!(trainer.policy_mut().greedy(&ctx), best, "phase {phase}");
        }
    }

    #[test]
    #[should_panic(expected = "no training contexts")]
    fn empty_contexts_panics() {
        let policy = PolicyNetwork::new(2, 8, 3, 0);
        let mut trainer = PolicyTrainer::new(policy, TrainConfig::default());
        let _ = trainer.train(&[], &mut |_, _| 0.0);
    }

    #[test]
    #[should_panic(expected = "beta must be in")]
    fn invalid_beta_rejected() {
        let _ = ReinforcementComparison::new(0.0);
    }
}
