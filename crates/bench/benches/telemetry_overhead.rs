//! Criterion bench: telemetry recording cost, and proof that the
//! disabled configuration is free.
//!
//! Run with default features for the enabled-path numbers; run with
//! `--no-default-features` and the `*_gated` rows collapse to the cost
//! of an empty loop, because every recording entry point folds away on
//! `hec_telemetry::ENABLED == false` (the CI no-op build compiles this
//! configuration). The `fleet_quick_*` pair pins the end-to-end overhead
//! of the instrumented sharded engine: with capture off, the only
//! telemetry work in the run is two u64 bumps per lookahead window.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use hec_core::run_scenario_sharded;
use hec_sim::fleet::{FleetScale, FleetScenario};
use hec_telemetry::{FastCounter, WallSpan};

static BENCH_COUNTER: FastCounter = FastCounter::new("bench.fast_counter");

fn bench_primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("telemetry_primitives");

    // A Relaxed atomic bump when enabled; an empty body when not.
    group.bench_function("fast_counter_add_gated", |b| {
        b.iter(|| {
            for _ in 0..1000 {
                BENCH_COUNTER.add(black_box(1));
            }
        })
    });

    // Registry mutex + BTreeMap lookup when enabled; empty when not.
    group.bench_function("registry_counter_add_gated", |b| {
        b.iter(|| {
            for _ in 0..100 {
                hec_telemetry::counter_add("bench.registry_counter", &[], black_box(1));
            }
        })
    });

    // Two Instant reads + a sidecar fold when enabled; empty when not.
    group.bench_function("wall_span_gated", |b| {
        b.iter(|| {
            for _ in 0..100 {
                let _s = WallSpan::new("bench.wall_span");
                black_box(());
            }
        })
    });

    // Capture defaults to off, so this is the per-event cost every
    // un-traced fleet run pays at each instrumentation site: one
    // relaxed load (enabled) or nothing (disabled).
    group.bench_function("vspan_capture_off_gated", |b| {
        b.iter(|| {
            for _ in 0..1000 {
                hec_telemetry::vspan(black_box("bench.track"), "ev", 0.0, 1.0);
            }
        })
    });

    group.finish();
    hec_telemetry::clear_wall_stats();
    hec_telemetry::reset();
}

fn bench_instrumented_fleet(c: &mut Criterion) {
    let mut group = c.benchmark_group("telemetry_fleet");
    group.sample_size(20);
    let sc = FleetScenario::edge_saturated(FleetScale::Quick);

    // Instrumented engine, capture off — the default running mode. The
    // delta of this row between default features and
    // `--no-default-features` is the total enabled-but-idle overhead.
    group.bench_function("fleet_quick_capture_off", |b| {
        b.iter(|| black_box(run_scenario_sharded(black_box(&sc), 4)))
    });

    // Full virtual-event capture, the --telemetry dump mode.
    group.bench_function("fleet_quick_capture_on", |b| {
        b.iter(|| {
            hec_telemetry::set_trace_capture(true);
            let out = black_box(run_scenario_sharded(black_box(&sc), 4));
            hec_telemetry::set_trace_capture(false);
            hec_telemetry::clear_trace();
            out
        })
    });

    group.finish();
    hec_telemetry::reset();
}

criterion_group!(benches, bench_primitives, bench_instrumented_fleet);
criterion_main!(benches);
