//! Sharded trace replay: an (amplified) real-trace corpus streamed
//! through the **sharded** fleet engine at engine rate.
//!
//! [`crate::stream::stream_through_fleet`] replays a corpus through a
//! one-shard engine so stateful (`FnMut`) routers stay legal — the right
//! tool for the closed-loop probe-cohort evaluation, and a single-engine
//! bottleneck at a million windows. This module is the scale tier: the
//! replay cohort's devices are partitioned into the [`ShardPlan`]'s
//! contiguous slices (device id → shard, the PR-6 scheme), every shard
//! advances in parallel on the `HEC_THREADS` workers, and the scheme
//! routes each window through a precomputed
//! [`scheme_action_table`] — a stateless `Fn + Sync` lookup, which is
//! exactly what the parallel driver requires. Outcomes merge in the
//! deterministic `(time, shard-id)` order, so the replayed
//! [`FleetStreamResult`] is byte-identical across reruns, shard counts
//! and thread counts.
//!
//! Scheme-routed windows map to oracle windows round-robin in emission
//! order (`seq % corpus len`) — the same mapping
//! `stream_through_fleet` uses without a probe cohort, so a one-shard
//! replay reproduces its results exactly (asserted in tests).

use hec_bandit::{ContextScaler, PolicyNetwork, RewardModel};
use hec_data::BinaryConfusion;
use hec_sim::fleet::{
    CohortSpec, DropReason, FleetScale, FleetScenario, JobEvent, LatencyHist, RouteCtx, RoutePlan,
    ShardPlan,
};
use hec_sim::DatasetKind;

use crate::oracle::Oracle;
use crate::scheme::SchemeKind;
use crate::sharded::run_plan;
use crate::stream::{scheme_action_table, DropBreakdown, FleetStreamResult};

/// Windows each replay device emits: the corpus spreads over
/// `n / 10` devices, so a million-window trace exercises a
/// hundred-thousand-device fleet.
pub const WINDOWS_PER_DEVICE: u32 = 10;

/// Builds the replay fleet for an `n_windows` trace: one cohort of
/// `ceil(n / WINDOWS_PER_DEVICE)` devices, each emitting
/// `WINDOWS_PER_DEVICE` windows a minute apart, on the `light_load`
/// queue/link parameters with the dataset's payload. Device ids are
/// contiguous, so [`ShardPlan::new`] splits the cohort into per-shard
/// device slices. When `WINDOWS_PER_DEVICE` does not divide `n_windows`
/// the fleet emits up to one device's extra windows; the oracle mapping
/// wraps round-robin, keeping every emitted window scored.
///
/// # Panics
///
/// Panics if `n_windows == 0`.
pub fn replay_scenario(kind: DatasetKind, payload_bytes: usize, n_windows: u64) -> FleetScenario {
    assert!(n_windows > 0, "cannot replay an empty trace");
    let mut sc = FleetScenario::light_load(FleetScale::Quick);
    sc.name = "trace_replay".into();
    sc.kind = kind;
    sc.payload_bytes = payload_bytes;
    let devices = n_windows.div_ceil(WINDOWS_PER_DEVICE as u64).min(u32::MAX as u64) as u32;
    let windows_per_device = n_windows.div_ceil(devices as u64) as u32;
    sc.cohorts =
        vec![CohortSpec::uniform(devices, windows_per_device, 60_000.0, 0.0, RoutePlan::Fixed(0))];
    sc
}

/// Streams the oracle corpus through the sharded fleet under a scheme:
/// every emitted window maps to an oracle window (round-robin in
/// emission order), the precomputed action table chooses its layer, the
/// sharded engine charges the load-dependent delay, and the serving
/// layer's frozen verdict is scored against ground truth — the same
/// accounting as [`crate::stream::stream_through_fleet`], at shard
/// scale.
///
/// `policy`/`scaler` are required only for [`SchemeKind::Adaptive`],
/// which must be a **static** policy (see [`scheme_action_table`]).
///
/// Deterministic: same inputs ⇒ an identical [`FleetStreamResult`],
/// regardless of `HEC_THREADS` or rerun. The shard count is part of the
/// simulated physics (each shard owns a `1/shards` slice of the queue
/// and link capacity), so different `shards` values model different —
/// individually deterministic — fleets.
///
/// # Panics
///
/// Panics if the oracle is empty, `shards == 0`, or the
/// policy/scaler requirements above are violated.
pub fn replay_trace_sharded(
    scenario: &FleetScenario,
    oracle: &Oracle,
    kind: SchemeKind,
    policy: Option<&mut PolicyNetwork>,
    scaler: Option<&ContextScaler>,
    reward: &RewardModel,
    shards: usize,
) -> FleetStreamResult {
    assert!(!oracle.is_empty(), "cannot replay an empty oracle corpus");
    let _span = hec_telemetry::WallSpan::new("core.replay");
    let n = oracle.len() as u64;
    let actions = scheme_action_table(scenario, oracle, kind, policy, scaler);
    let plan = ShardPlan::new(scenario, shards);

    let mut confusion = BinaryConfusion::new();
    let mut missed = 0u64;
    let mut reward_sum = 0.0f64;
    let mut routed = 0u64;
    let mut routed_latency = LatencyHist::new();
    let mut drop_counts = vec![[0u64; 2]; scenario.topology().num_layers()];

    let router = |ctx: &RouteCtx| actions[(ctx.seq % n) as usize];
    let run = run_plan(&plan, &router, &mut |ev| match *ev {
        JobEvent::Served { seq, layer, latency_ms, .. } => {
            let i = (seq % n) as usize;
            confusion.record(oracle.verdict(i, layer), oracle.outcomes[i].truth);
            reward_sum += reward.reward_outcome(oracle.correct(i, layer), Some(latency_ms));
            routed_latency.record(latency_ms);
            routed += 1;
        }
        JobEvent::Dropped { layer, reason, .. } => {
            let cause = match reason {
                DropReason::QueueFull => 0,
                DropReason::LinkSaturated => 1,
            };
            drop_counts[layer][cause] += 1;
            missed += 1;
            reward_sum += reward.reward_dropped();
            routed += 1;
        }
    });

    let fleet = run.report;
    let drops: Vec<DropBreakdown> = drop_counts
        .iter()
        .enumerate()
        .map(|(layer, c)| DropBreakdown { layer, queue: c[0], link: c[1] })
        .collect();
    let total_drops: u64 = drops.iter().map(|d| d.queue + d.link).sum();
    debug_assert_eq!(total_drops, fleet.dropped, "drop breakdown diverged from the fleet report");
    debug_assert_eq!(fleet.served + fleet.dropped, fleet.emitted, "window conservation violated");
    if hec_telemetry::ENABLED {
        let scheme = kind.to_string();
        hec_telemetry::counter_add("replay.windows", &[("scheme", &scheme)], fleet.emitted);
        hec_telemetry::counter_add("replay.missed", &[("scheme", &scheme)], missed);
    }
    let mean_reward_x100 = 100.0 * reward_sum / routed.max(1) as f64;
    FleetStreamResult {
        scheme: kind,
        fleet,
        confusion,
        missed,
        drops,
        mean_reward_x100,
        routed_mean_ms: routed_latency.mean(),
        routed_p99_ms: routed_latency.quantile(0.99),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::WindowOutcome;
    use crate::parallel::with_thread_count;
    use crate::stream::stream_through_fleet;
    use hec_anomaly::ConfidenceRule;

    fn oracle(n: usize) -> Oracle {
        let outcomes = (0..n)
            .map(|i| {
                let truth = i % 3 == 0;
                WindowOutcome {
                    truth,
                    min_log_pd: [-5.0, -5.0, if truth { -60.0 } else { -1.0 }],
                    anomalous_fraction: [
                        0.0,
                        if truth && i % 2 == 0 { 0.4 } else { 0.0 },
                        if truth { 0.4 } else { 0.0 },
                    ],
                    context: vec![i as f32],
                }
            })
            .collect();
        Oracle {
            outcomes,
            thresholds: [-10.0; 3],
            flag_fraction: 0.0,
            confidence: ConfidenceRule::default(),
        }
    }

    fn rm() -> RewardModel {
        RewardModel::new(0.0005)
    }

    #[test]
    fn replay_scenario_covers_the_trace() {
        let sc = replay_scenario(DatasetKind::Univariate, 384, 1_000_000);
        assert_eq!(sc.total_devices(), 100_000);
        assert_eq!(sc.total_windows(), 1_000_000);
        // Non-divisible traces round up, never down.
        let sc = replay_scenario(DatasetKind::Univariate, 384, 95);
        assert!(sc.total_windows() >= 95);
        // A tiny trace still has at least one device.
        let sc = replay_scenario(DatasetKind::Univariate, 384, 3);
        assert_eq!(sc.total_devices(), 1);
        assert!(sc.total_windows() >= 3);
    }

    /// At a fixed shard count the replay is byte-identical across
    /// reruns and thread counts. (Different shard counts model
    /// different fleets — each shard owns a capacity slice — so only
    /// conservation is asserted across them.)
    #[test]
    fn replay_is_rerun_and_thread_invariant() {
        let o = oracle(120);
        let sc = replay_scenario(DatasetKind::Univariate, 384, o.len() as u64);
        for shards in [1, 2, 4] {
            let base = with_thread_count(1, || {
                replay_trace_sharded(&sc, &o, SchemeKind::Successive, None, None, &rm(), shards)
            });
            for threads in [1, 2, 4] {
                let run = with_thread_count(threads, || {
                    replay_trace_sharded(&sc, &o, SchemeKind::Successive, None, None, &rm(), shards)
                });
                assert_eq!(base, run, "shards={shards} threads={threads}");
            }
            assert_eq!(base.fleet.served + base.fleet.dropped, base.fleet.emitted);
        }
    }

    /// A one-shard replay must reproduce `stream_through_fleet` on the
    /// same scenario exactly — the two drivers share the action table
    /// and the oracle mapping, so any divergence is a bug.
    #[test]
    fn one_shard_replay_matches_the_streaming_driver() {
        let o = oracle(60);
        let sc = replay_scenario(DatasetKind::Univariate, 384, o.len() as u64);
        for kind in [SchemeKind::IoTDevice, SchemeKind::Cloud, SchemeKind::Successive] {
            let replayed = replay_trace_sharded(&sc, &o, kind, None, None, &rm(), 1);
            let streamed = stream_through_fleet(&sc, &o, kind, None, None, &rm(), None);
            assert_eq!(replayed, streamed, "{kind}");
        }
    }

    #[test]
    fn replay_routes_static_adaptive_policies() {
        let o = oracle(90);
        let scaler = hec_bandit::ContextScaler::fit(&o.contexts());
        let mut policy = PolicyNetwork::new(scaler.dim(), 8, 3, 0);
        let sc = replay_scenario(DatasetKind::Univariate, 384, o.len() as u64);
        let a = replay_trace_sharded(
            &sc,
            &o,
            SchemeKind::Adaptive,
            Some(&mut policy),
            Some(&scaler),
            &rm(),
            3,
        );
        let b = replay_trace_sharded(
            &sc,
            &o,
            SchemeKind::Adaptive,
            Some(&mut policy),
            Some(&scaler),
            &rm(),
            3,
        );
        assert_eq!(a, b, "adaptive replay must be deterministic");
        assert_eq!(a.fleet.served + a.fleet.dropped, a.fleet.emitted);
    }

    #[test]
    fn replay_scores_every_emitted_window() {
        let o = oracle(95); // not divisible by WINDOWS_PER_DEVICE
        let sc = replay_scenario(DatasetKind::Univariate, 384, o.len() as u64);
        let r = replay_trace_sharded(&sc, &o, SchemeKind::Cloud, None, None, &rm(), 2);
        assert_eq!(
            r.confusion.total() as u64 + r.missed,
            r.fleet.emitted,
            "wrap-around windows must still be scored"
        );
    }
}
