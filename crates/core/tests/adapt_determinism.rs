//! Satellite guarantee of the online-adaptation loop: the drift
//! detections, the refresh schedule and every chunk statistic are a pure
//! function of the inputs — byte-identical across reruns and
//! `HEC_THREADS` settings, even though each chunk replays through the
//! parallel sharded fleet engine and the refresh path refits the
//! standardizer and recalibrates the detectors mid-stream.

use hec_bandit::{PolicyTrainer, TrainConfig};
use hec_core::adapt::{run_adaptive_stream, AdaptConfig, AdaptReport};
use hec_core::parallel::with_thread_count;
use hec_core::{DatasetConfig, Experiment, ExperimentConfig};
use hec_data::power::{PowerConfig, PowerGenerator};
use hec_data::{DatasetSource, DriftKind, DriftSchedule, LabeledWindow, OnlineStandardizer};

fn tiny_config() -> ExperimentConfig {
    ExperimentConfig {
        dataset: DatasetConfig::Univariate(PowerConfig {
            days: 100,
            samples_per_day: 24,
            anomaly_rate: 0.15,
            noise_std: 0.03,
            seed: 7,
        }),
        ad_epochs: 50,
        policy: TrainConfig { epochs: 8, learning_rate: 2e-3, ..Default::default() },
        seq2seq_hidden: 8,
        policy_hidden: 16,
        seed: 7,
    }
}

fn drifted_stream() -> Vec<LabeledWindow> {
    let base = PowerGenerator::new(PowerConfig {
        days: 100,
        samples_per_day: 24,
        anomaly_rate: 0.15,
        noise_std: 0.03,
        seed: 11,
    })
    .load()
    .unwrap();
    let mut moments = OnlineStandardizer::new(1);
    for w in &base.windows {
        moments.update(&w.data);
    }
    let sigma = moments.freeze().std()[0];
    DriftSchedule { kind: DriftKind::Step, onset: 50, level: 1.5 * sigma, scale: 0.2 }
        .apply(&base)
        .windows
}

/// The full pipeline (prepare → train → adapt) rebuilt from scratch —
/// thread-count invariance must hold for the *whole* construction, not
/// just the final loop.
fn run_once(stream: &[LabeledWindow]) -> AdaptReport {
    let mut exp = Experiment::prepare(tiny_config());
    exp.train_detectors();
    let policy_corpus = exp.split.policy_train.clone();
    let policy_oracle = exp.oracle_over(&policy_corpus);
    let (policy, scaler, _curve) = exp.train_policy(&policy_oracle);
    let mut trainer = PolicyTrainer::new(
        policy,
        TrainConfig { learning_rate: 5e-3, entropy_beta: 0.02, ..Default::default() },
    );
    let mut config = AdaptConfig::adaptive(20, 2);
    config.drift.min_samples = 20;
    run_adaptive_stream(&mut exp, &mut trainer, &scaler, stream, &config)
}

#[test]
fn adapt_schedule_is_thread_and_rerun_invariant() {
    let stream = drifted_stream();
    let base = with_thread_count(1, || run_once(&stream));
    assert!(!base.detections.is_empty(), "fixture must actually drift: {base:?}");
    assert!(!base.refreshes.is_empty(), "fixture must actually refresh: {base:?}");
    for threads in [1, 2, 4] {
        let run = with_thread_count(threads, || run_once(&stream));
        assert_eq!(
            base, run,
            "adaptive run diverged at HEC_THREADS={threads}: detections/refreshes/chunk \
             statistics must be byte-identical"
        );
    }
}
