//! Post-training weight quantization.
//!
//! The paper compresses the models deployed on the IoT device and edge
//! server (§III-B: trainable nodes removed, parameters quantized FP32 →
//! FP16). This module provides symmetric uniform quantization to an
//! arbitrary bit width, which the model catalog uses to emulate the
//! capability gap between deployment tiers (see DESIGN.md §2).

use crate::Matrix;

/// Quantizes every element to a symmetric uniform grid of `bits` bits:
/// `w ↦ round(w/Δ)·Δ` with `Δ = max|w| / (2^{bits-1} − 1)`.
///
/// A zero matrix is returned unchanged. `bits = 1` collapses weights to
/// `{−max, 0, +max}`.
///
/// # Panics
///
/// Panics if `bits` is 0 or greater than 15.
pub fn quantize_inplace(m: &mut Matrix, bits: u8) {
    assert!((1..=15).contains(&bits), "bits must be in 1..=15, got {bits}");
    let max_abs = m.as_slice().iter().fold(0.0f32, |acc, &x| acc.max(x.abs()));
    if max_abs == 0.0 {
        return;
    }
    let levels = ((1u32 << (bits - 1)) - 1).max(1) as f32;
    let delta = max_abs / levels;
    m.map_inplace(|x| (x / delta).round() * delta);
}

/// Root-mean-square quantization error a grid of `bits` bits introduces on
/// `m` (useful for calibrating deployment tiers).
///
/// # Panics
///
/// Panics if `bits` is 0 or greater than 15.
pub fn quantization_rmse(m: &Matrix, bits: u8) -> f32 {
    let mut q = m.clone();
    quantize_inplace(&mut q, bits);
    let diff = m - &q;
    (diff.frobenius_norm_sq() / m.len() as f32).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn high_bit_widths_are_nearly_lossless() {
        let m = Matrix::from_rows(&[&[0.1, -0.2, 0.33], &[0.05, -0.44, 0.21]]);
        assert!(quantization_rmse(&m, 14) < 1e-4);
    }

    #[test]
    fn fewer_bits_mean_more_error() {
        let data: Vec<f32> = (0..64).map(|i| ((i as f32) * 0.37).sin() * 0.5).collect();
        let m = Matrix::from_vec(8, 8, data);
        let e4 = quantization_rmse(&m, 4);
        let e6 = quantization_rmse(&m, 6);
        let e8 = quantization_rmse(&m, 8);
        assert!(e4 > e6 && e6 > e8, "{e4} {e6} {e8}");
    }

    #[test]
    fn values_land_on_grid() {
        let mut m = Matrix::from_rows(&[&[0.9, -0.3, 0.45]]);
        quantize_inplace(&mut m, 3);
        // max=0.9, levels=3, delta=0.3 → all values are multiples of 0.3.
        for &v in m.as_slice() {
            let ratio = v / 0.3;
            assert!((ratio - ratio.round()).abs() < 1e-5, "{v} off-grid");
        }
    }

    #[test]
    fn zero_matrix_unchanged() {
        let mut m = Matrix::zeros(2, 2);
        quantize_inplace(&mut m, 4);
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn max_magnitude_preserved() {
        let mut m = Matrix::from_rows(&[&[1.0, -0.5]]);
        quantize_inplace(&mut m, 5);
        assert_eq!(m[(0, 0)], 1.0);
    }

    #[test]
    #[should_panic(expected = "bits must be in")]
    fn zero_bits_rejected() {
        let mut m = Matrix::ones(1, 1);
        quantize_inplace(&mut m, 0);
    }
}
