//! Property-based equivalence suite for the blocked/packed matmul kernels:
//! every kernel (and its `_into` variant) must match a naive triple-loop
//! reference within 1e-5 across ragged shapes — 1×1, tall, wide, and sizes
//! that are not multiples of the register-tile dimensions.

use proptest::prelude::*;

use hec_ad::tensor::Matrix;

/// Naive j-inner triple loop — the reference implementation.
fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b.rows());
    let mut out = Matrix::zeros(a.rows(), b.cols());
    for i in 0..a.rows() {
        for j in 0..b.cols() {
            let mut acc = 0.0f32;
            for k in 0..a.cols() {
                acc += a[(i, k)] * b[(k, j)];
            }
            out[(i, j)] = acc;
        }
    }
    out
}

fn assert_close(actual: &Matrix, expect: &Matrix, what: &str) {
    assert_eq!(actual.shape(), expect.shape(), "{what}: shape");
    for (x, y) in actual.as_slice().iter().zip(expect.as_slice().iter()) {
        assert!((x - y).abs() <= 1e-5 * (1.0 + y.abs()), "{what}: {x} vs {y}");
    }
}

/// Largest data pool a single operand can need (`k`, `n` < 48; `m` < 24).
const POOL: usize = 48 * 48;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Blocked `A·B`, `Aᵀ·B` and packed `A·Bᵀ` (allocating and `_into`
    /// forms) all match the naive reference on random ragged shapes.
    #[test]
    fn kernels_match_naive_reference(
        m in 1usize..24,
        k in 1usize..48,
        n in 1usize..48,
        pool in proptest::collection::vec(-3.0f32..3.0, 2 * POOL),
    ) {
        let a = Matrix::from_vec(m, k, pool[..m * k].to_vec());
        let b = Matrix::from_vec(k, n, pool[POOL..POOL + k * n].to_vec());
        let expect = naive_matmul(&a, &b);

        assert_close(&a.matmul(&b), &expect, "matmul");

        // `_into` with a deliberately stale, wrong-shaped buffer.
        let mut out = Matrix::ones(3, 7);
        a.matmul_into(&b, &mut out);
        assert_close(&out, &expect, "matmul_into");

        let at = a.transpose();
        assert_close(&at.t_matmul(&b), &expect, "t_matmul");
        at.t_matmul_into(&b, &mut out);
        assert_close(&out, &expect, "t_matmul_into");

        let bt = b.transpose();
        assert_close(&a.matmul_t(&bt), &expect, "matmul_t");
        a.matmul_t_into(&bt, &mut out);
        assert_close(&out, &expect, "matmul_t_into");
    }

    /// The elementwise `_into` ops match their allocating counterparts.
    #[test]
    fn elementwise_into_ops_match(
        rows in 1usize..12,
        cols in 1usize..12,
        pool in proptest::collection::vec(-5.0f32..5.0, 3 * 144),
    ) {
        let len = rows * cols;
        let a = Matrix::from_vec(rows, cols, pool[..len].to_vec());
        let b = Matrix::from_vec(rows, cols, pool[144..144 + len].to_vec());
        let bias = Matrix::from_vec(1, cols, pool[288..288 + cols].to_vec());

        let mut out = Matrix::ones(2, 5);
        a.hadamard_into(&b, &mut out);
        assert_close(&out, &a.hadamard(&b), "hadamard_into");

        a.add_row_broadcast_into(&bias, &mut out);
        assert_close(&out, &a.add_row_broadcast(&bias), "add_row_broadcast_into");

        a.sum_rows_into(&mut out);
        assert_close(&out, &a.sum_rows(), "sum_rows_into");
    }
}

/// Deterministic coverage of the shapes the proptest ranges only sample:
/// degenerate 1×1, tall/wide extremes, exact tile multiples and off-by-one
/// neighbours of the register-tile sizes (MR = 4, NR = 16).
#[test]
fn kernel_edge_shapes() {
    for &(m, k, n) in &[
        (1usize, 1usize, 1usize),
        (1, 1, 17),
        (64, 1, 1), // tall
        (1, 64, 1), // deep
        (1, 3, 64), // wide
        (4, 8, 16), // exact tiles
        (8, 8, 32),
        (3, 7, 15),   // one under the tiles
        (5, 9, 17),   // one over the tiles
        (96, 64, 96), // the benchmarked hot shape
    ] {
        let a = Matrix::from_vec(m, k, (0..m * k).map(|x| ((x % 11) as f32 - 5.0) * 0.3).collect());
        let b = Matrix::from_vec(k, n, (0..k * n).map(|x| ((x % 7) as f32 - 3.0) * 0.5).collect());
        let expect = naive_matmul(&a, &b);
        assert_close(&a.matmul(&b), &expect, "matmul");
        assert_close(&a.transpose().t_matmul(&b), &expect, "t_matmul");
        assert_close(&a.matmul_t(&b.transpose()), &expect, "matmul_t");
    }
}
