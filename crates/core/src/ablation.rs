//! Ablation studies over the design choices DESIGN.md §5 calls out.
//!
//! All ablations run against a frozen [`Oracle`], so they isolate the knob
//! under study from AD-model training variance.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use hec_anomaly::{ConfidenceRule, ThresholdRule};
use hec_bandit::{
    BanditSolver, ContextScaler, DelaySource, EpsilonGreedy, LinUcb, PolicyNetwork, PolicyTrainer,
    RewardModel, TrainConfig, TrainingCurve,
};
use hec_data::BinaryConfusion;
use hec_sim::HecTopology;

use crate::experiment::static_delay_table;
use crate::oracle::Oracle;
use crate::parallel::parallel_map;
use crate::scheme::{SchemeEvaluator, SchemeKind};

/// One point of the α-sensitivity sweep (cost-parameter frontier).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AlphaSweepRow {
    /// The cost parameter α under test.
    pub alpha: f64,
    /// Adaptive-scheme accuracy on the evaluation corpus, percent.
    pub accuracy_pct: f64,
    /// Adaptive-scheme mean delay, ms.
    pub mean_delay_ms: f64,
    /// Adaptive-scheme reward (×100).
    pub reward: f64,
    /// Fraction of windows kept on the IoT device.
    pub local_fraction: f64,
}

/// Sweeps α: larger α penalises delay harder, pushing the learned policy
/// toward lower layers — the accuracy/delay frontier of Eq. 1.
///
/// Each α trains and evaluates its own policy, so the sweep points run in
/// parallel on scoped threads (`HEC_THREADS` workers); row order follows
/// `alphas` regardless of thread count.
pub fn alpha_sweep(
    train_oracle: &Oracle,
    eval_oracle: &Oracle,
    topology: &HecTopology,
    payload_bytes: usize,
    alphas: &[f64],
    policy_hidden: usize,
    train: TrainConfig,
) -> Vec<AlphaSweepRow> {
    let contexts = train_oracle.contexts();
    let scaler = ContextScaler::fit(&contexts);
    let scaled = scaler.transform_all(&contexts);
    let input_dim = scaled[0].len();
    let delays = static_delay_table(topology, payload_bytes);

    parallel_map(alphas, |_, &alpha| {
        let reward = RewardModel::new(alpha);
        let policy = PolicyNetwork::new(input_dim, policy_hidden, 3, train.seed);
        let mut trainer = PolicyTrainer::new(policy, train);
        trainer.train_with_delays(
            &scaled,
            &mut |i, a| train_oracle.correct(i, a),
            &delays,
            &reward,
        );
        let mut policy = trainer.into_policy();

        let ev = SchemeEvaluator::new(topology, payload_bytes, reward);
        let result =
            ev.evaluate(SchemeKind::Adaptive, eval_oracle, Some(&mut policy), Some(&scaler));
        AlphaSweepRow {
            alpha,
            accuracy_pct: result.confusion.accuracy() * 100.0,
            mean_delay_ms: result.mean_delay_ms,
            reward: result.reward_x100.expect("adaptive always has a reward"),
            local_fraction: result.action_histogram[0] as f64 / eval_oracle.len().max(1) as f64,
        }
    })
}

/// Learning curves with and without the reinforcement-comparison baseline
/// (paper §II-B claims the baseline improves convergence).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BaselineAblation {
    /// Curve with the reinforcement-comparison baseline (the paper's choice).
    pub with_baseline: TrainingCurve,
    /// Curve for plain REINFORCE (advantage = raw reward).
    pub without_baseline: TrainingCurve,
}

/// Trains two identical policies, toggling only the baseline.
pub fn baseline_ablation(
    train_oracle: &Oracle,
    topology: &HecTopology,
    payload_bytes: usize,
    alpha: f64,
    policy_hidden: usize,
    train: TrainConfig,
) -> BaselineAblation {
    let contexts = train_oracle.contexts();
    let scaler = ContextScaler::fit(&contexts);
    let scaled = scaler.transform_all(&contexts);
    let input_dim = scaled[0].len();
    let reward = RewardModel::new(alpha);
    let delays = static_delay_table(topology, payload_bytes);

    let run = |use_baseline: bool| -> TrainingCurve {
        let config = TrainConfig { use_baseline, ..train };
        let policy = PolicyNetwork::new(input_dim, policy_hidden, 3, train.seed);
        let mut trainer = PolicyTrainer::new(policy, config);
        trainer.train_with_delays(&scaled, &mut |i, a| train_oracle.correct(i, a), &delays, &reward)
    };

    BaselineAblation { with_baseline: run(true), without_baseline: run(false) }
}

/// One bandit solver's online performance on the frozen oracle.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SolverRow {
    /// Algorithm name.
    pub solver: String,
    /// Mean online reward over all pulls.
    pub mean_reward: f64,
    /// Accuracy of the final greedy policy on the same corpus, percent.
    pub final_accuracy_pct: f64,
    /// Mean delay of the final greedy policy, ms.
    pub final_delay_ms: f64,
}

/// Compares the paper's policy-gradient solver with ε-greedy and LinUCB on
/// identical contexts and rewards.
///
/// The three solvers are independent given the frozen oracle, so they train
/// on separate scoped threads (`HEC_THREADS` workers); row order is fixed
/// (ε-greedy, LinUCB, policy-gradient) regardless of thread count.
pub fn solver_comparison(
    oracle: &Oracle,
    topology: &HecTopology,
    payload_bytes: usize,
    alpha: f64,
    epochs: usize,
    seed: u64,
) -> Vec<SolverRow> {
    let contexts = oracle.contexts();
    let scaler = ContextScaler::fit(&contexts);
    let scaled = scaler.transform_all(&contexts);
    let input_dim = scaled[0].len();
    let reward = RewardModel::new(alpha);
    let delays = static_delay_table(topology, payload_bytes);
    let reward_of = |i: usize, a: usize| -> f32 {
        reward.reward_outcome(oracle.correct(i, a), delays.delay_ms(i, a)) as f32
    };

    // Classic solvers behind the common trait (each worker builds its own).
    let run_classic = |mut solver: Box<dyn BanditSolver>| -> SolverRow {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut total = 0.0f64;
        let mut pulls = 0usize;
        for _ in 0..epochs {
            for (i, ctx) in scaled.iter().enumerate() {
                let arm = solver.select(ctx, &mut rng);
                let r = reward_of(i, arm);
                solver.update(ctx, arm, r);
                total += r as f64;
                pulls += 1;
            }
        }
        // Final greedy pass (no updates).
        let mut confusion = BinaryConfusion::new();
        let mut delay = 0.0f64;
        let mut greedy_rng = StdRng::seed_from_u64(seed ^ 0xFFFF);
        for (i, ctx) in scaled.iter().enumerate() {
            let arm = solver.select(ctx, &mut greedy_rng);
            confusion.record(oracle.verdict(i, arm), oracle.outcomes[i].truth);
            delay += delays.per_action()[arm];
        }
        SolverRow {
            solver: solver.name().to_owned(),
            mean_reward: total / pulls.max(1) as f64,
            final_accuracy_pct: confusion.accuracy() * 100.0,
            final_delay_ms: delay / scaled.len().max(1) as f64,
        }
    };

    // The paper's policy-gradient solver.
    let run_policy_gradient = || -> SolverRow {
        let policy = PolicyNetwork::new(input_dim, 100, 3, seed);
        let mut trainer =
            PolicyTrainer::new(policy, TrainConfig { epochs, seed, ..Default::default() });
        let mut oracle_reward = |i: usize, a: usize| reward_of(i, a);
        let curve = trainer.train(&scaled, &mut oracle_reward);
        let mut policy = trainer.into_policy();
        let mut confusion = BinaryConfusion::new();
        let mut delay = 0.0f64;
        for (i, ctx) in scaled.iter().enumerate() {
            let arm = policy.greedy(ctx);
            confusion.record(oracle.verdict(i, arm), oracle.outcomes[i].truth);
            delay += delays.per_action()[arm];
        }
        let mean_reward = curve.mean_reward_per_epoch.iter().map(|&x| x as f64).sum::<f64>()
            / curve.mean_reward_per_epoch.len().max(1) as f64;
        SolverRow {
            solver: "policy-gradient".to_owned(),
            mean_reward,
            final_accuracy_pct: confusion.accuracy() * 100.0,
            final_delay_ms: delay / scaled.len().max(1) as f64,
        }
    };

    parallel_map(&[0usize, 1, 2], |_, &task| match task {
        0 => run_classic(Box::new(EpsilonGreedy::new(3, 0.1))),
        1 => run_classic(Box::new(LinUcb::new(3, input_dim, 0.5))),
        _ => run_policy_gradient(),
    })
}

/// One point of the confidence-rule sweep for the Successive scheme.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConfidenceRow {
    /// Condition (i) threshold multiplier.
    pub factor: f32,
    /// Condition (ii) anomalous-point fraction.
    pub fraction: f32,
    /// Successive-scheme accuracy, percent.
    pub accuracy_pct: f64,
    /// Successive-scheme F1.
    pub f1: f64,
    /// Successive-scheme mean delay, ms.
    pub mean_delay_ms: f64,
    /// Fraction of windows resolved at the IoT layer.
    pub local_fraction: f64,
}

/// Sweeps the paper's confident-detection rule (2×, 5 %) over a grid and
/// reports the Successive scheme's operating points.
///
/// Grid points are independent (each re-derives verdicts on its own oracle
/// clone), so they run in parallel on scoped threads (`HEC_THREADS`
/// workers); row order follows the `factors × fractions` grid.
pub fn confidence_sweep(
    oracle: &Oracle,
    topology: &HecTopology,
    payload_bytes: usize,
    alpha: f64,
    factors: &[f32],
    fractions: &[f32],
) -> Vec<ConfidenceRow> {
    let reward = RewardModel::new(alpha);
    let ev = SchemeEvaluator::new(topology, payload_bytes, reward);
    let grid: Vec<(f32, f32)> = factors
        .iter()
        .flat_map(|&factor| fractions.iter().map(move |&fraction| (factor, fraction)))
        .collect();
    parallel_map(&grid, |_, &(factor, fraction)| {
        let mut o = oracle.clone();
        o.confidence = ConfidenceRule { factor, fraction };
        let result = ev.evaluate(SchemeKind::Successive, &o, None, None);
        ConfidenceRow {
            factor,
            fraction,
            accuracy_pct: result.confusion.accuracy() * 100.0,
            f1: result.confusion.f1(),
            mean_delay_ms: result.mean_delay_ms,
            local_fraction: result.action_histogram[0] as f64 / o.len().max(1) as f64,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::WindowOutcome;
    use hec_sim::DatasetKind;

    /// Synthetic oracle: layer 0 right on even windows, layer 2 always right.
    fn oracle(n: usize) -> Oracle {
        let outcomes = (0..n)
            .map(|i| {
                let truth = i % 4 == 0;
                let easy = i % 2 == 0;
                let verdict0 = if easy { truth } else { !truth };
                let frac = |v: bool| if v { 0.3f32 } else { 0.0 };
                WindowOutcome {
                    truth,
                    min_log_pd: [
                        if easy { -40.0 } else { -11.0 },
                        if easy { -40.0 } else { -11.0 },
                        if truth { -40.0 } else { -1.0 },
                    ],
                    anomalous_fraction: [frac(verdict0), frac(truth), frac(truth)],
                    context: vec![easy as u8 as f32, truth as u8 as f32],
                }
            })
            .collect();
        Oracle {
            outcomes,
            thresholds: [-10.0; 3],
            flag_fraction: 0.0,
            confidence: ConfidenceRule::default(),
        }
    }

    fn quick_train() -> TrainConfig {
        TrainConfig { epochs: 25, learning_rate: 5e-3, ..Default::default() }
    }

    #[test]
    fn alpha_sweep_trades_delay_for_accuracy() {
        let topo = HecTopology::paper_testbed(DatasetKind::Univariate);
        let o = oracle(200);
        let rows = alpha_sweep(&o, &o, &topo, 384, &[1e-5, 0.05], 32, quick_train());
        assert_eq!(rows.len(), 2);
        // A much larger α should push more traffic to the local layer
        // (or at least never pull it toward the cloud).
        assert!(
            rows[1].local_fraction >= rows[0].local_fraction,
            "α=0.05 local {} < α=1e-5 local {}",
            rows[1].local_fraction,
            rows[0].local_fraction
        );
        assert!(rows[1].mean_delay_ms <= rows[0].mean_delay_ms + 1e-9);
    }

    #[test]
    fn baseline_ablation_produces_two_curves() {
        let topo = HecTopology::paper_testbed(DatasetKind::Univariate);
        let o = oracle(100);
        let ab = baseline_ablation(&o, &topo, 384, 0.0005, 32, quick_train());
        assert_eq!(
            ab.with_baseline.mean_reward_per_epoch.len(),
            ab.without_baseline.mean_reward_per_epoch.len()
        );
        // Both should end up learning something positive.
        assert!(ab.with_baseline.final_reward() > 0.0);
    }

    #[test]
    fn solver_comparison_reports_three_solvers() {
        let topo = HecTopology::paper_testbed(DatasetKind::Univariate);
        let o = oracle(120);
        let rows = solver_comparison(&o, &topo, 384, 0.0005, 15, 3);
        assert_eq!(rows.len(), 3);
        let names: Vec<&str> = rows.iter().map(|r| r.solver.as_str()).collect();
        assert!(names.contains(&"epsilon-greedy"));
        assert!(names.contains(&"linucb"));
        assert!(names.contains(&"policy-gradient"));
        for r in &rows {
            assert!((0.0..=100.0).contains(&r.final_accuracy_pct), "{r:?}");
            assert!(r.final_delay_ms > 0.0);
        }
    }

    #[test]
    fn parallel_sweeps_match_serial() {
        let topo = HecTopology::paper_testbed(DatasetKind::Univariate);
        let o = oracle(90);
        let run = |threads: usize| {
            crate::parallel::with_thread_count(threads, || {
                let conf =
                    confidence_sweep(&o, &topo, 384, 0.0005, &[1.5, 2.0, 2.5], &[0.02, 0.05]);
                let solvers = solver_comparison(&o, &topo, 384, 0.0005, 6, 3);
                (conf, solvers)
            })
        };
        let serial = run(1);
        let parallel = run(4);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn confidence_sweep_covers_grid() {
        let topo = HecTopology::paper_testbed(DatasetKind::Univariate);
        let o = oracle(80);
        let rows = confidence_sweep(&o, &topo, 384, 0.0005, &[1.5, 2.0], &[0.02, 0.05]);
        assert_eq!(rows.len(), 4);
        // A stricter factor (larger) keeps fewer windows local.
        let strict: Vec<&ConfidenceRow> =
            rows.iter().filter(|r| r.factor == 2.0 && r.fraction == 0.05).collect();
        assert_eq!(strict.len(), 1);
        assert!((0.0..=1.0).contains(&strict[0].local_fraction));
    }
}

/// One row of the threshold-rule ablation: how the paper's `Min` rule, a
/// quantile, the robust `µ−kσ` and the fixed-specificity `WindowFpr` rule
/// shift a single detector's operating point on the same scores.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThresholdRow {
    /// Human-readable rule label.
    pub rule: String,
    /// Per-layer accuracy (%) under the re-derived thresholds.
    pub accuracy_pct: [f64; 3],
}

/// Re-derives each layer's verdicts under different threshold rules using
/// the oracle's stored raw scores. Because the oracle keeps `min_log_pd`
/// per window, window-level rules can be re-evaluated without re-running
/// the models: the new threshold is applied to the stored minima.
pub fn threshold_rule_ablation(oracle: &Oracle) -> Vec<ThresholdRow> {
    let rules: Vec<(String, ThresholdRule)> = vec![
        ("min (paper)".into(), ThresholdRule::Min),
        ("quantile 1%".into(), ThresholdRule::Quantile(0.01)),
        ("mean-6sigma".into(), ThresholdRule::MeanMinusKSigma(6.0)),
        ("window-fpr 2%".into(), ThresholdRule::WindowFpr(0.02)),
    ];
    rules
        .into_iter()
        .map(|(label, rule)| {
            let mut accuracy = [0.0f64; 3];
            for (layer, acc) in accuracy.iter_mut().enumerate() {
                // Calibrate on the oracle's *normal* windows' minima, then
                // re-derive verdicts for everything.
                let normal_minima: Vec<f32> = oracle
                    .outcomes
                    .iter()
                    .filter(|o| !o.truth)
                    .map(|o| o.min_log_pd[layer])
                    .collect();
                if normal_minima.is_empty() {
                    continue;
                }
                let threshold = rule.threshold(&normal_minima);
                let correct = oracle
                    .outcomes
                    .iter()
                    .filter(|o| (o.min_log_pd[layer] < threshold) == o.truth)
                    .count();
                *acc = 100.0 * correct as f64 / oracle.len() as f64;
            }
            ThresholdRow { rule: label, accuracy_pct: accuracy }
        })
        .collect()
}

#[cfg(test)]
mod threshold_tests {
    use super::*;
    use crate::oracle::WindowOutcome;

    #[test]
    fn threshold_ablation_covers_all_rules() {
        let outcomes = (0..50)
            .map(|i| {
                let truth = i % 5 == 0;
                WindowOutcome {
                    truth,
                    min_log_pd: [if truth { -30.0 } else { -3.0 - (i % 7) as f32 }; 3],
                    anomalous_fraction: [if truth { 0.2 } else { 0.0 }; 3],
                    context: vec![0.0],
                }
            })
            .collect();
        let oracle = Oracle {
            outcomes,
            thresholds: [-10.0; 3],
            flag_fraction: 0.0,
            confidence: ConfidenceRule::default(),
        };
        let rows = threshold_rule_ablation(&oracle);
        assert_eq!(rows.len(), 4);
        for row in &rows {
            for layer in 0..3 {
                assert!((0.0..=100.0).contains(&row.accuracy_pct[layer]), "{row:?}");
            }
        }
        // With this cleanly-separated synthetic oracle, every rule should be
        // nearly perfect.
        let wfpr = rows.iter().find(|r| r.rule.starts_with("window-fpr")).unwrap();
        assert!(wfpr.accuracy_pct[0] > 90.0);
    }
}
