//! # hec-telemetry — deterministic observability for the HEC-AD stack
//!
//! Metrics, spans and allocation tracking shared by every crate in the
//! workspace, designed around the repo's load-bearing invariant: **all
//! recorded output on the deterministic paths is byte-identical across
//! reruns and `HEC_THREADS` settings.** The subsystem is split by clock
//! domain to keep that true:
//!
//! * [`registry`] — counters, gauges and mergeable [`GeomHist`]
//!   histograms keyed by static name + label set. Holds *deterministic*
//!   quantities only (event counts, virtual-clock latencies, rates per
//!   virtual ms). Snapshots render in sorted order as text, CSV or
//!   NDJSON and byte-diff clean across thread counts (CI-enforced).
//! * [`span`] — virtual-clock spans/instants on named tracks, exported
//!   as Chrome-trace JSON for Perfetto; plus wall-clock [`WallSpan`]
//!   timers that aggregate into a sidecar store rendered to stderr and
//!   `BENCH_*.json` only, so stdout stays byte-stable.
//! * [`alloc`] — the shared counting global allocator (promoted from
//!   three duplicated test harnesses) and [`AllocPhase`] for per-phase
//!   allocation deltas, which land in the sidecar next to wall spans.
//!
//! ## Zero overhead when off
//!
//! Recording is gated on the `enabled` cargo feature through the
//! [`ENABLED`] constant. Every recording entry point starts with
//! `if ENABLED { ... }`, which the compiler folds away when the feature
//! is off, and instrumentation sites that would *build* arguments
//! (format a track name, clone a label) guard themselves on `ENABLED`
//! or [`trace_capture_enabled`] first. `hec-bench` forwards the feature
//! via its default `telemetry` feature; building the library stack
//! without it (`cargo build -p hec-bench --no-default-features`) is the
//! guaranteed no-op configuration, and the `telemetry_overhead` bench
//! pins the enabled-path cost.

pub mod alloc;
pub mod hist;
pub mod registry;
pub mod span;

/// True when the `enabled` cargo feature is on. All recording entry
/// points fold to no-ops when this is `false`; instrumentation sites use
/// it to skip argument construction entirely.
pub const ENABLED: bool = cfg!(feature = "enabled");

pub use alloc::{allocations, AllocPhase, CountingAlloc};
pub use hist::GeomHist;
pub use registry::{
    counter_add, counter_set, gauge_set, hist_record, hist_set, reset, snapshot, FastCounter,
    MetricKey, MetricValue, Registry, Snapshot,
};
pub use span::{
    clear_trace, clear_wall_stats, export_chrome_trace, set_trace_capture, sidecar_add,
    trace_capture_enabled, vinstant, vspan, wall_stats, wall_stats_text, SidecarStat, WallSpan,
};
