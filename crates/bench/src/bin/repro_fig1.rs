//! Regenerates **Fig. 1a** — the HEC testbed topology and the architecture
//! inventory of the six AD models — as a textual diagram.
//!
//! Run with `cargo run -p hec-bench --bin repro_fig1`.

use hec_anomaly::{AeArchitecture, ModelCatalog};
use hec_sim::{DatasetKind, HecTopology};

fn main() {
    println!("== repro_fig1: HEC testbed and AD model architectures ==\n");

    for kind in [DatasetKind::Univariate, DatasetKind::Multivariate] {
        let topo = HecTopology::paper_testbed(kind);
        println!("--- Topology ({kind:?}) ---");
        for (i, layer) in topo.layers().iter().enumerate() {
            println!(
                "  layer {i}: {:<28} uplink rtt = {:>7.2} ms   exec = {:>6.1} ms",
                layer.device.name,
                layer.uplink.rtt_ms,
                topo.exec_ms(i)
            );
        }
        println!();
    }

    println!("--- Univariate models (autoencoders) ---");
    let catalog = ModelCatalog::univariate(96, 0);
    for ((spec, arch_name), arch) in catalog
        .specs()
        .into_iter()
        .zip(["iot", "edge", "cloud"])
        .zip([AeArchitecture::iot(96), AeArchitecture::edge(96), AeArchitecture::cloud(96)])
    {
        println!(
            "  {:<10} {} neuron layers {:?}  ({} params) [{arch_name}]",
            spec.name,
            arch.depth(),
            arch.layer_sizes,
            spec.params
        );
    }
    println!();

    println!("--- Multivariate models (LSTM seq2seq) ---");
    let catalog = ModelCatalog::multivariate(18, 32, 0);
    for spec in catalog.specs() {
        println!("  {:<22} layer {:<5} {} params", spec.name, spec.layer.to_string(), spec.params);
    }
    println!();
    println!(
        "Fig. 1a correspondence: Raspberry Pi 3 (IoT) / Jetson TX2 (edge, 250 ms\n\
         WAN RTT via tc) / Devbox (cloud, 500 ms WAN RTT); AE depth 3/5/7 for\n\
         univariate data; LSTM units x1 (IoT), x2 (edge), bidirectional (cloud)\n\
         for multivariate data."
    );
}
