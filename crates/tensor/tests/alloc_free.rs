//! Counting-allocator proof that the `_into` kernel family is
//! allocation-free once buffers are warm.
//!
//! The whole suite lives in one `#[test]` so no concurrent test can disturb
//! the global allocation counter.

use hec_telemetry::{allocations, CountingAlloc};
use hec_tensor::Matrix;

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn ramp(rows: usize, cols: usize, scale: f32) -> Matrix {
    let data = (0..rows * cols).map(|x| ((x % 13) as f32 - 6.0) * scale).collect();
    Matrix::from_vec(rows, cols, data)
}

#[test]
fn into_kernels_are_allocation_free_after_warmup() {
    let a = ramp(33, 27, 0.1); // deliberately ragged (non-multiple of tiles)
    let b = ramp(27, 31, 0.2);
    let at = ramp(27, 33, 0.1);
    let bt = ramp(31, 27, 0.2);
    let peer = ramp(33, 27, 0.3);
    let bias = ramp(1, 27, 0.5);

    let mut out_nn = Matrix::zeros(1, 1);
    let mut out_tn = Matrix::zeros(1, 1);
    let mut out_nt = Matrix::zeros(1, 1);
    let mut out_elem = Matrix::zeros(1, 1);
    let mut out_sum = Matrix::zeros(1, 1);

    let run =
        |nn: &mut Matrix, tn: &mut Matrix, nt: &mut Matrix, el: &mut Matrix, su: &mut Matrix| {
            a.matmul_into(&b, nn);
            at.t_matmul_into(&b, tn);
            a.matmul_t_into(&bt, nt);
            a.hadamard_into(&peer, el);
            a.add_row_broadcast_into(&bias, el);
            a.sum_rows_into(su);
        };

    // Warmup: buffers (and the thread-local transposed-B pack panel) grow to
    // their steady-state sizes here.
    run(&mut out_nn, &mut out_tn, &mut out_nt, &mut out_elem, &mut out_sum);

    // The counter is process-wide, and the test harness occasionally
    // allocates from another thread mid-window. A kernel that really
    // allocated would dirty every window (16 iterations each), so requiring
    // one clean window keeps the test sound while ignoring one-off noise.
    let mut last_delta = usize::MAX;
    for _attempt in 0..5 {
        let before = allocations();
        for _ in 0..16 {
            run(&mut out_nn, &mut out_tn, &mut out_nt, &mut out_elem, &mut out_sum);
        }
        last_delta = allocations() - before;
        if last_delta == 0 {
            break;
        }
    }
    assert_eq!(
        last_delta, 0,
        "warmed _into kernels performed {last_delta} heap allocations in every window"
    );

    // Sanity: the allocating wrappers do allocate (and are counted by the
    // kernel's wrapper counter).
    let wrapper_before = hec_tensor::kernel::matmul_allocations();
    let alloc_before = allocations();
    let _ = a.matmul(&b);
    assert!(allocations() > alloc_before);
    assert_eq!(hec_tensor::kernel::matmul_allocations(), wrapper_before + 1);
}
