//! Fully-connected layer with optional activation.

use rand::Rng;

use hec_tensor::{init, Matrix};

use crate::activation::Activation;
use crate::sequential::Layer;
use crate::workspace::Buf;

/// A fully-connected layer `y = f(x·W + b)`.
///
/// Weights are `in_dim × out_dim`, initialised Glorot-uniform (the Keras
/// default used by the paper's models); biases start at zero.
///
/// # Example
///
/// ```rust
/// use hec_nn::{Activation, Dense, Layer};
/// use hec_tensor::Matrix;
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let mut rng = StdRng::seed_from_u64(0);
/// let mut layer = Dense::new(&mut rng, 3, 2, Activation::Relu);
/// let x = Matrix::ones(4, 3); // batch of 4
/// let y = layer.forward(&x, false);
/// assert_eq!(y.shape(), (4, 2));
/// ```
pub struct Dense {
    weight: Matrix,
    bias: Matrix,
    activation: Activation,
    grad_weight: Matrix,
    grad_bias: Matrix,
    cached_input: Option<Matrix>,
    cached_output: Option<Matrix>,
    scratch: DenseScratch,
}

/// Reusable buffers so forward/backward perform no matmul allocations.
#[derive(Default)]
struct DenseScratch {
    /// Pre-activation `x·W + b`.
    z: Buf,
    /// Backward `δ = ∂L/∂z`.
    delta: Buf,
    /// Staging for the weight-gradient product before accumulation.
    gw: Buf,
    /// Staging for the bias-gradient row before accumulation.
    gb: Buf,
}

impl Dense {
    /// Creates a dense layer with Glorot-uniform weights and zero biases.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(rng: &mut impl Rng, in_dim: usize, out_dim: usize, activation: Activation) -> Self {
        Self::with_init(init::glorot_uniform(rng, in_dim, out_dim), out_dim, activation)
    }

    /// Creates a dense layer with He-uniform weights (preferred before ReLU).
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new_he(
        rng: &mut impl Rng,
        in_dim: usize,
        out_dim: usize,
        activation: Activation,
    ) -> Self {
        Self::with_init(init::he_uniform(rng, in_dim, out_dim), out_dim, activation)
    }

    fn with_init(weight: Matrix, out_dim: usize, activation: Activation) -> Self {
        let (in_dim, _) = weight.shape();
        Self {
            grad_weight: Matrix::zeros(in_dim, out_dim),
            grad_bias: Matrix::zeros(1, out_dim),
            weight,
            bias: Matrix::zeros(1, out_dim),
            activation,
            cached_input: None,
            cached_output: None,
            scratch: DenseScratch::default(),
        }
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.weight.rows()
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.weight.cols()
    }

    /// The layer's activation function.
    pub fn activation(&self) -> Activation {
        self.activation
    }

    /// Borrow of the kernel matrix (for tests/serialisation).
    pub fn weight(&self) -> &Matrix {
        &self.weight
    }

    /// Borrow of the bias row vector.
    pub fn bias(&self) -> &Matrix {
        &self.bias
    }

    /// Computes the pre-activation `x·W + b` without caching (inference helper).
    pub fn affine(&self, input: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(input.rows(), self.weight.cols());
        self.affine_into(input, &mut out);
        out
    }

    /// Computes the pre-activation `x·W + b` into a caller-owned buffer
    /// (resized in place) — the allocation-free inference path.
    pub fn affine_into(&self, input: &Matrix, out: &mut Matrix) {
        input.matmul_into(&self.weight, out);
        out.add_row_broadcast_assign(&self.bias);
    }
}

impl Layer for Dense {
    fn forward(&mut self, input: &Matrix, training: bool) -> Matrix {
        let z = self.scratch.z.shaped(input.rows(), self.weight.cols());
        input.matmul_into(&self.weight, z);
        z.add_row_broadcast_assign(&self.bias);
        let y = self.activation.apply(z);
        if training {
            self.cached_input = Some(input.clone());
            self.cached_output = Some(y.clone());
        }
        y
    }

    fn backward(&mut self, grad_output: &Matrix) -> Matrix {
        let input =
            self.cached_input.take().expect("Dense::backward called without training-mode forward");
        let output = self.cached_output.take().expect("missing cached output");
        // δ = ∂L/∂z = ∂L/∂y ⊙ f'(z), with f' expressed from the output.
        let delta = self.scratch.delta.shaped(grad_output.rows(), grad_output.cols());
        grad_output.hadamard_into(&self.activation.derivative_from_output(&output), delta);
        // Accumulate parameter gradients (staged through scratch so the
        // products never allocate).
        let gw = self.scratch.gw.shaped(self.weight.rows(), self.weight.cols());
        input.t_matmul_into(delta, gw);
        self.grad_weight += &*gw;
        let gb = self.scratch.gb.shaped(1, self.bias.cols());
        delta.sum_rows_into(gb);
        self.grad_bias += &*gb;
        // ∂L/∂x = δ · Wᵀ
        let mut dx = Matrix::zeros(input.rows(), self.weight.rows());
        delta.matmul_t_into(&self.weight, &mut dx);
        dx
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Matrix, &mut Matrix)) {
        f(&mut self.weight, &mut self.grad_weight);
        f(&mut self.bias, &mut self.grad_bias);
    }

    fn param_count(&self) -> usize {
        self.weight.len() + self.bias.len()
    }

    fn kernel_norm_sq(&self) -> f32 {
        self.weight.frobenius_norm_sq()
    }

    fn apply_l2(&mut self, lambda: f32) {
        self.grad_weight.add_scaled(&self.weight, 2.0 * lambda);
    }
}

impl std::fmt::Debug for Dense {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Dense({}→{}, {:?})", self.in_dim(), self.out_dim(), self.activation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Finite-difference gradient check on a single dense layer.
    #[test]
    fn gradient_check_weights_and_bias() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut layer = Dense::new(&mut rng, 3, 2, Activation::Tanh);
        let x = Matrix::from_rows(&[&[0.5, -0.3, 0.8], &[-0.1, 0.9, 0.2]]);
        // Loss = sum of outputs (so dL/dy = 1).
        let ones = Matrix::ones(2, 2);

        let _ = layer.forward(&x, true);
        let _ = layer.backward(&ones);

        // Collect analytic grads.
        let mut analytic: Vec<f32> = Vec::new();
        layer.visit_params(&mut |_, g| analytic.extend_from_slice(g.as_slice()));

        // Numeric grads via central differences.
        let eps = 1e-3f32;
        let mut numeric: Vec<f32> = Vec::new();
        // Weight then bias, matching visit order.
        for param_idx in 0..2 {
            let n = if param_idx == 0 { layer.weight.len() } else { layer.bias.len() };
            for i in 0..n {
                let get = |l: &mut Dense, delta: f32| {
                    let slice = if param_idx == 0 {
                        l.weight.as_mut_slice()
                    } else {
                        l.bias.as_mut_slice()
                    };
                    slice[i] += delta;
                };
                get(&mut layer, eps);
                let y_plus = layer.forward(&x, false).sum();
                get(&mut layer, -2.0 * eps);
                let y_minus = layer.forward(&x, false).sum();
                get(&mut layer, eps);
                numeric.push((y_plus - y_minus) / (2.0 * eps));
            }
        }

        assert_eq!(analytic.len(), numeric.len());
        for (i, (a, n)) in analytic.iter().zip(numeric.iter()).enumerate() {
            assert!(
                (a - n).abs() < 5e-2 * (1.0 + n.abs()),
                "param {i}: analytic {a} vs numeric {n}"
            );
        }
    }

    #[test]
    fn gradient_check_input() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut layer = Dense::new(&mut rng, 3, 2, Activation::Sigmoid);
        let x = Matrix::from_rows(&[&[0.4, -0.2, 0.1]]);
        let ones = Matrix::ones(1, 2);
        let _ = layer.forward(&x, true);
        let dx = layer.backward(&ones);

        let eps = 1e-3f32;
        for i in 0..3 {
            let mut xp = x.clone();
            xp.as_mut_slice()[i] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[i] -= eps;
            let numeric =
                (layer.forward(&xp, false).sum() - layer.forward(&xm, false).sum()) / (2.0 * eps);
            let analytic = dx.as_slice()[i];
            assert!(
                (analytic - numeric).abs() < 5e-3 * (1.0 + numeric.abs()),
                "input {i}: analytic {analytic} vs numeric {numeric}"
            );
        }
    }

    #[test]
    fn param_count() {
        let mut rng = StdRng::seed_from_u64(0);
        let layer = Dense::new(&mut rng, 10, 7, Activation::Linear);
        assert_eq!(layer.param_count(), 10 * 7 + 7);
    }

    #[test]
    #[should_panic(expected = "without training-mode forward")]
    fn backward_without_forward_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut layer = Dense::new(&mut rng, 2, 2, Activation::Linear);
        let _ = layer.backward(&Matrix::ones(1, 2));
    }

    #[test]
    fn inference_forward_does_not_cache() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut layer = Dense::new(&mut rng, 2, 2, Activation::Linear);
        let _ = layer.forward(&Matrix::ones(1, 2), false);
        assert!(layer.cached_input.is_none());
    }

    #[test]
    fn l2_gradient_is_two_lambda_w() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut layer = Dense::new(&mut rng, 2, 2, Activation::Linear);
        let w0 = layer.weight.clone();
        layer.apply_l2(0.5);
        for (g, w) in layer.grad_weight.as_slice().iter().zip(w0.as_slice().iter()) {
            assert!((g - w).abs() < 1e-6); // 2·0.5·w = w
        }
    }
}
