//! Integration tests spanning the simulator runtime and the scheme layer:
//! the threaded message-passing testbed must agree with the analytic delay
//! model used by the scheme evaluator.

use hec_ad::anomaly::ConfidenceRule;
use hec_ad::bandit::RewardModel;
use hec_ad::core::{Oracle, SchemeEvaluator, SchemeKind, WindowOutcome};
use hec_ad::sim::{DatasetKind, DetectJob, HecRuntime, HecTopology};

fn synthetic_oracle(n: usize) -> Oracle {
    let outcomes = (0..n)
        .map(|i| {
            let truth = i % 5 == 0;
            WindowOutcome {
                truth,
                min_log_pd: [if truth { -40.0 } else { -2.0 }; 3],
                anomalous_fraction: [if truth { 0.3 } else { 0.0 }; 3],
                context: vec![i as f32 % 7.0, truth as u8 as f32],
            }
        })
        .collect();
    Oracle {
        outcomes,
        thresholds: [-10.0; 3],
        flag_fraction: 0.0,
        confidence: ConfidenceRule::default(),
    }
}

#[test]
fn runtime_delays_agree_with_scheme_evaluator() {
    let topo = HecTopology::paper_testbed(DatasetKind::Univariate);
    let oracle = synthetic_oracle(30);
    let ev = SchemeEvaluator::new(&topo, 384, RewardModel::new(0.0005));

    // Analytic per-window outcomes for the Cloud scheme.
    let analytic: Vec<f64> = (0..oracle.len()).map(|i| ev.fixed(&oracle, i, 2).delay_ms).collect();

    // The same jobs through the threaded runtime.
    let verdicts: Vec<bool> = (0..oracle.len()).map(|i| oracle.verdict(i, 2)).collect();
    let executors: Vec<_> = (0..3)
        .map(|_| {
            let v = verdicts.clone();
            Box::new(move |id: u64| v[id as usize]) as _
        })
        .collect();
    let runtime = HecRuntime::spawn(topo.clone(), executors);
    for i in 0..oracle.len() {
        runtime.submit(DetectJob { id: i as u64, layer: 2, payload_bytes: 384 });
    }
    let results = runtime.shutdown();

    assert_eq!(results.len(), analytic.len());
    for (r, a) in results.iter().zip(analytic.iter()) {
        assert!((r.e2e_ms - a).abs() < 1e-9, "runtime {} vs analytic {a}", r.e2e_ms);
    }
    // Verdicts carried through unchanged.
    for (r, i) in results.iter().zip(0..) {
        assert_eq!(r.verdict, oracle.verdict(i, 2));
    }
}

#[test]
fn runtime_handles_mixed_layer_assignment_from_policy_histogram() {
    let topo = HecTopology::paper_testbed(DatasetKind::Multivariate);
    let oracle = synthetic_oracle(60);
    let ev = SchemeEvaluator::new(&topo, 9216, RewardModel::new(0.00035));

    // Successive scheme decides the layer per window; replay on the runtime.
    let outcomes: Vec<_> = (0..oracle.len()).map(|i| ev.successive(&oracle, i)).collect();
    let executors: Vec<_> = (0..3).map(|_| Box::new(move |_id: u64| false) as _).collect();
    let runtime = HecRuntime::spawn(topo.clone(), executors);
    for (i, o) in outcomes.iter().enumerate() {
        runtime.submit(DetectJob { id: i as u64, layer: o.final_layer, payload_bytes: 9216 });
    }
    let results = runtime.shutdown();
    let counts = {
        let mut c = [0usize; 3];
        for r in &results {
            c[r.layer] += 1;
        }
        c
    };
    // Every window accounted for, on the layer the scheme chose.
    assert_eq!(counts.iter().sum::<usize>(), 60);
    for (r, o) in results.iter().zip(outcomes.iter()) {
        assert_eq!(r.layer, o.final_layer);
    }
}

#[test]
fn all_five_schemes_run_on_synthetic_oracle() {
    let topo = HecTopology::paper_testbed(DatasetKind::Univariate);
    let oracle = synthetic_oracle(50);
    let ev = SchemeEvaluator::new(&topo, 384, RewardModel::new(0.0005));

    use hec_ad::bandit::{ContextScaler, PolicyNetwork};
    let scaler = ContextScaler::fit(&oracle.contexts());
    let mut policy = PolicyNetwork::new(2, 16, 3, 0);

    for kind in SchemeKind::ALL {
        let result = match kind {
            SchemeKind::Adaptive => ev.evaluate(kind, &oracle, Some(&mut policy), Some(&scaler)),
            _ => ev.evaluate(kind, &oracle, None, None),
        };
        assert_eq!(result.confusion.total(), 50, "{kind} did not cover the corpus");
        assert!(result.mean_delay_ms > 0.0);
    }
}
