//! Labelled windows and sliding-window extraction.

use hec_tensor::Matrix;

/// A fixed-length window of sensor data with a ground-truth anomaly label.
///
/// `data` is `time × channels` (univariate data uses a single column). This
/// is the unit of detection throughout the reproduction: one window = one
/// detection task = one bandit decision.
#[derive(Debug, Clone, PartialEq)]
pub struct LabeledWindow {
    /// Sensor values, rows = timesteps, cols = channels.
    pub data: Matrix,
    /// Ground truth: `true` = anomalous window.
    pub anomalous: bool,
}

impl LabeledWindow {
    /// Creates a labelled window.
    ///
    /// # Panics
    ///
    /// Panics if `data` holds no samples (zero timesteps or zero
    /// channels). `Matrix` construction already rejects zero dimensions,
    /// so this guards against a future relaxation of that invariant ever
    /// producing an empty detection task silently.
    pub fn new(data: Matrix, anomalous: bool) -> Self {
        assert!(
            data.rows() > 0 && data.cols() > 0,
            "a labelled window needs at least one timestep and one channel"
        );
        Self { data, anomalous }
    }

    /// Window length in timesteps.
    pub fn len(&self) -> usize {
        self.data.rows()
    }

    /// Whether the window holds no timesteps.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of channels.
    pub fn channels(&self) -> usize {
        self.data.cols()
    }

    /// The window flattened row-major into a single feature vector
    /// (time-major), as consumed by the autoencoder models.
    pub fn flattened(&self) -> Vec<f32> {
        self.data.as_slice().to_vec()
    }

    /// Per-timestep rows as 1×channels matrices, as consumed by the seq2seq
    /// models.
    pub fn timesteps(&self) -> Vec<Matrix> {
        self.data.iter_rows().map(Matrix::row_vector).collect()
    }
}

/// Extracts sliding windows of `size` timesteps every `stride` steps from a
/// multichannel series (`time × channels`). Trailing samples that do not fill
/// a complete window are dropped, matching the paper's protocol (window 128,
/// step-size 64, §III-A).
///
/// # Panics
///
/// Panics if `size == 0` or `stride == 0`.
///
/// # Example
///
/// ```rust
/// use hec_data::window::sliding_windows;
/// use hec_tensor::Matrix;
///
/// let series = Matrix::from_vec(10, 1, (0..10).map(|i| i as f32).collect());
/// let ws = sliding_windows(&series, 4, 2);
/// assert_eq!(ws.len(), 4); // starts at 0, 2, 4, 6
/// assert_eq!(ws[1][(0, 0)], 2.0);
/// ```
pub fn sliding_windows(series: &Matrix, size: usize, stride: usize) -> Vec<Matrix> {
    assert!(size > 0, "window size must be non-zero");
    assert!(stride > 0, "stride must be non-zero");
    let mut out = Vec::new();
    let mut start = 0usize;
    while start + size <= series.rows() {
        out.push(series.slice_rows(start, start + size));
        start += stride;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flattened_length() {
        let w = LabeledWindow::new(Matrix::zeros(128, 18), false);
        assert_eq!(w.flattened().len(), 128 * 18);
        assert_eq!(w.len(), 128);
        assert_eq!(w.channels(), 18);
    }

    #[test]
    fn is_empty_reflects_contents() {
        // Every constructible window has data, so is_empty is false — but
        // it must be *computed* from the window's length, not hardcoded.
        let w = LabeledWindow::new(Matrix::zeros(1, 1), false);
        assert!(!w.is_empty());
        assert_eq!(w.len(), 1);
        let big = LabeledWindow::new(Matrix::ones(128, 18), true);
        assert!(!big.is_empty());
        assert_eq!(big.len(), 128);
    }

    #[test]
    fn timesteps_shapes() {
        let w = LabeledWindow::new(Matrix::ones(5, 3), true);
        let ts = w.timesteps();
        assert_eq!(ts.len(), 5);
        assert_eq!(ts[0].shape(), (1, 3));
        assert!(w.anomalous);
    }

    #[test]
    fn sliding_window_counts() {
        let series = Matrix::zeros(128 + 64 * 3, 2);
        let ws = sliding_windows(&series, 128, 64);
        assert_eq!(ws.len(), 4);
    }

    #[test]
    fn sliding_window_drops_partial_tail() {
        let series = Matrix::zeros(10, 1);
        let ws = sliding_windows(&series, 4, 4);
        assert_eq!(ws.len(), 2); // 0..4, 4..8; 8..12 incomplete
    }

    #[test]
    fn sliding_window_contents() {
        let series = Matrix::from_vec(6, 1, vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0]);
        let ws = sliding_windows(&series, 2, 3);
        assert_eq!(ws[0].as_slice(), &[0.0, 1.0]);
        assert_eq!(ws[1].as_slice(), &[3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "stride must be non-zero")]
    fn zero_stride_panics() {
        let _ = sliding_windows(&Matrix::zeros(4, 1), 2, 0);
    }
}
