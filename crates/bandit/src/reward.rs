//! Reward and cost functions (§II-B, Eq. 1).

use serde::{Deserialize, Serialize};

/// Error for a cost query with an invalid (negative or non-finite) delay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidDelay;

impl std::fmt::Display for InvalidDelay {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "delay must be a finite non-negative number of milliseconds")
    }
}

impl std::error::Error for InvalidDelay {}

/// The delay-to-accuracy cost `C(a, x) = α·t / (1 + α·t)` (Eq. 1):
/// a sigmoid-like map from end-to-end delay (ms) into `[0, 1)` so that
/// "a higher delay will result in a greater reduction of accuracy".
///
/// The paper selects `α = 0.0005` for the univariate dataset and
/// `α = 0.00035` for the multivariate dataset (§III-B).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    alpha: f64,
}

impl CostModel {
    /// Creates a cost model with the given α.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is not positive.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0, "alpha must be positive");
        Self { alpha }
    }

    /// The α parameter.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The cost charged to a window that was dropped (never served):
    /// the supremum of `C(a, x)` as `t → ∞`. A drop is therefore strictly
    /// worse than *any* served outcome with the same correctness, however
    /// slow — exactly the ordering admission-control shedding deserves.
    pub const DROP_COST: f64 = 1.0;

    /// Cost of a detection that took `delay_ms` end-to-end.
    ///
    /// Negative and NaN delays clamp to the **worst** served cost
    /// ([`CostModel::DROP_COST`]): they always signal an upstream bug (a
    /// closed-loop observer can never legitimately produce them), and a
    /// release run must neither abort on one nor — worse — hand the
    /// broken arm the cheapest possible outcome for a trainer to
    /// reinforce. Use [`CostModel::try_cost`] to detect them instead.
    pub fn cost(&self, delay_ms: f64) -> f64 {
        self.try_cost(delay_ms).unwrap_or(Self::DROP_COST)
    }

    /// Checked cost: `Err(InvalidDelay)` for negative or NaN delays.
    pub fn try_cost(&self, delay_ms: f64) -> Result<f64, InvalidDelay> {
        if delay_ms.is_nan() || delay_ms < 0.0 {
            return Err(InvalidDelay);
        }
        if delay_ms.is_infinite() {
            return Ok(Self::DROP_COST); // the t → ∞ limit, not inf/inf = NaN
        }
        let at = self.alpha * delay_ms;
        Ok(at / (1.0 + at))
    }
}

/// The bandit reward `R(a, z_x) = accuracy(x) − C(a, x)` where `accuracy(x)`
/// is the per-sample correctness (1 if the selected model's verdict matches
/// the ground truth, else 0).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RewardModel {
    cost: CostModel,
}

impl RewardModel {
    /// Creates a reward model with the given cost α.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is not positive.
    pub fn new(alpha: f64) -> Self {
        Self { cost: CostModel::new(alpha) }
    }

    /// The underlying cost model.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// Reward for a detection with per-sample correctness `correct` that
    /// took `delay_ms`.
    pub fn reward(&self, correct: bool, delay_ms: f64) -> f64 {
        let accuracy = if correct { 1.0 } else { 0.0 };
        accuracy - self.cost.cost(delay_ms)
    }

    /// Reward for a window that was dropped (never served): no verdict was
    /// produced, so the accuracy term is 0 and the delay term is the drop
    /// cost — `−`[`CostModel::DROP_COST`], strictly below every served
    /// outcome.
    pub fn reward_dropped(&self) -> f64 {
        -CostModel::DROP_COST
    }

    /// Reward for a closed-loop outcome: `Some(delay)` means the window
    /// was served (scored by [`RewardModel::reward`]), `None` means it was
    /// dropped and pays [`RewardModel::reward_dropped`] regardless of
    /// `correct` (a shed window has no verdict to be correct about).
    ///
    /// This is the reward path every [`crate::DelaySource`]-driven
    /// training and evaluation loop goes through.
    pub fn reward_outcome(&self, correct: bool, delay_ms: Option<f64>) -> f64 {
        match delay_ms {
            Some(t) => self.reward(correct, t),
            None => self.reward_dropped(),
        }
    }

    /// Aggregate "Reward" column of Table II: `100 × (mean accuracy − mean
    /// cost)` over a set of `(correct, delay)` pairs.
    ///
    /// Note: the paper's absolute reward scale is not reproducible from the
    /// stated formula (see EXPERIMENTS.md); this is our declared scale, used
    /// consistently across all schemes so the ranking is meaningful.
    pub fn aggregate_reward_x100(&self, outcomes: impl IntoIterator<Item = (bool, f64)>) -> f64 {
        let mut total = 0.0f64;
        let mut n = 0usize;
        for (correct, delay) in outcomes {
            total += self.reward(correct, delay);
            n += 1;
        }
        if n == 0 {
            return 0.0;
        }
        100.0 * total / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_is_zero_at_zero_delay() {
        assert_eq!(CostModel::new(0.0005).cost(0.0), 0.0);
    }

    #[test]
    fn cost_monotone_in_delay() {
        let c = CostModel::new(0.0005);
        let mut prev = -1.0;
        for &t in &[1.0, 10.0, 100.0, 500.0, 5_000.0] {
            let cost = c.cost(t);
            assert!(cost > prev);
            prev = cost;
        }
    }

    #[test]
    fn cost_bounded_below_one() {
        let c = CostModel::new(0.0005);
        assert!(c.cost(1e12) < 1.0);
    }

    #[test]
    fn cost_known_values() {
        // α·t = 0.0005 × 504.5 = 0.25225 → C = 0.25225/1.25225 ≈ 0.20144.
        let c = CostModel::new(0.0005);
        assert!((c.cost(504.5) - 0.201_437).abs() < 1e-5);
        // Univariate IoT: α·t = 0.0062 → C ≈ 0.006162.
        assert!((c.cost(12.4) - 0.006_162).abs() < 1e-5);
    }

    #[test]
    fn reward_prefers_fast_correct() {
        let r = RewardModel::new(0.0005);
        assert!(r.reward(true, 12.4) > r.reward(true, 504.5));
        assert!(r.reward(true, 504.5) > r.reward(false, 12.4));
    }

    #[test]
    fn incorrect_far_reward_is_most_negative() {
        let r = RewardModel::new(0.0005);
        assert!(r.reward(false, 504.5) < r.reward(false, 12.4));
        assert!(r.reward(false, 504.5) < 0.0);
    }

    #[test]
    fn aggregate_scales_by_100() {
        let r = RewardModel::new(0.0005);
        let agg = r.aggregate_reward_x100([(true, 0.0), (true, 0.0)]);
        assert!((agg - 100.0).abs() < 1e-9);
        assert_eq!(r.aggregate_reward_x100([]), 0.0);
    }

    #[test]
    fn alpha_tradeoff_crossover() {
        // With a large α, a slow correct detection is worth less than a fast
        // incorrect one is penalised — the knob the paper tunes per dataset.
        let strict = RewardModel::new(0.01);
        let lax = RewardModel::new(1e-6);
        assert!(strict.reward(true, 500.0) < lax.reward(true, 500.0));
    }

    #[test]
    #[should_panic(expected = "alpha must be positive")]
    fn zero_alpha_rejected() {
        let _ = CostModel::new(0.0);
    }

    #[test]
    fn invalid_delays_clamp_but_are_detectable() {
        let c = CostModel::new(0.0005);
        // Release-safe clamp: negative/NaN pay the *worst* served cost
        // instead of aborting — an upstream bug must never look cheap.
        assert_eq!(c.cost(-5.0), CostModel::DROP_COST);
        assert_eq!(c.cost(f64::NAN), CostModel::DROP_COST);
        // The checked path surfaces them.
        assert_eq!(c.try_cost(-5.0), Err(InvalidDelay));
        assert_eq!(c.try_cost(f64::NAN), Err(InvalidDelay));
        assert_eq!(c.try_cost(12.4), Ok(c.cost(12.4)));
        // +∞ is the well-defined limit, not NaN.
        assert_eq!(c.try_cost(f64::INFINITY), Ok(CostModel::DROP_COST));
    }

    #[test]
    fn drop_reward_is_strictly_worse_than_any_served_outcome() {
        let r = RewardModel::new(0.0005);
        assert_eq!(r.reward_dropped(), -1.0);
        // Even an incorrect verdict after an absurd delay beats a drop.
        assert!(r.reward_dropped() < r.reward(false, 1e12));
        assert!(r.reward_dropped() < r.reward(true, 1e12));
    }

    #[test]
    fn reward_outcome_routes_drops_to_the_penalty() {
        let r = RewardModel::new(0.0005);
        assert_eq!(r.reward_outcome(true, Some(12.4)), r.reward(true, 12.4));
        assert_eq!(r.reward_outcome(false, Some(504.5)), r.reward(false, 504.5));
        // Correctness is irrelevant for a window nobody served.
        assert_eq!(r.reward_outcome(true, None), r.reward_dropped());
        assert_eq!(r.reward_outcome(false, None), r.reward_dropped());
    }
}
