//! Discrete-event fleet simulation: stream millions of windows from a
//! device fleet through the 3-layer HEC hierarchy.
//!
//! The per-job [`crate::runtime`] models a *single* device and charges
//! each window the load-independent [`HecTopology::end_to_end_ms`]
//! delay, so offloading never queues and links never saturate. This
//! module scales the testbed out: **N** IoT devices (hundreds of
//! thousands and up) emit windows at configurable rates into per-layer
//! service queues and bandwidth-shared links, making detection delay
//! load-dependent — the quantity the paper's adaptive scheme actually
//! trades off against accuracy.
//!
//! * [`queueing`] — contention primitives: bounded multi-server FIFO
//!   with batch dequeue, egalitarian processor sharing (credit-based,
//!   O(log n) per event);
//! * [`scenario`] — named workloads at two scales (`light_load`,
//!   `edge_saturated`, `cloud_link_constrained`, `flash_crowd`), with
//!   per-cohort heterogeneous payloads and local compute speeds;
//! * [`des`] — the virtual-clock engine on [`crate::EventQueue`]: the
//!   push driver ([`FleetSim`]) and the resumable step-wise engine
//!   ([`FleetEngine`]) that lets a caller interleave "route window →
//!   observe simulated completion → update policy" for in-fleet training;
//! * [`metrics`] — latency histograms, per-layer utilization/drop
//!   summaries, queue traces, CSV renderings;
//! * [`shard`] — the sharded engine: a deterministic device/resource
//!   partitioner ([`ShardPlan`]) and a coordinator
//!   ([`ShardedFleetEngine`]) that advances per-shard sub-engines to
//!   conservative lookahead barriers — in parallel when driven by
//!   `hec-core` — and merges their outcomes in stable shard order,
//!   scaling scenarios to millions of devices.
//!
//! Determinism is a hard invariant: each engine runs over a
//! totally-ordered event heap, all randomness is seeded hashing, shard
//! outcomes merge in a fixed `(time, shard-id)` order, and the same
//! scenario + seed + shard count produce byte-identical reports on any
//! host and under any `HEC_THREADS` setting.
//!
//! [`HecTopology`]: crate::HecTopology

pub mod des;
pub mod metrics;
pub mod queueing;
pub mod scenario;
pub mod shard;

pub use des::{FleetEngine, FleetSim, JobEvent, RouteCtx};
pub use metrics::{DropReason, FleetReport, LatencyHist, LayerSummary, TraceSample};
pub use queueing::{FifoQueue, JobRec, PsResource};
pub use scenario::{CohortSpec, Discipline, FleetScale, FleetScenario, RoutePlan};
pub use shard::{DeviceSlice, ShardEngine, ShardPlan, ShardedFleetEngine};
