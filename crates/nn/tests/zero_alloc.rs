//! Allocation accounting for the model hot paths:
//!
//! * a warmed inference [`Lstm::step_into`] performs **zero** heap
//!   allocations (proved with a counting global allocator);
//! * a full LSTM / seq2seq **training step** makes **zero allocating matmul
//!   calls** — every product routes through the `_into` kernels into reused
//!   workspaces or caller-visible outputs (proved with
//!   `hec_tensor::kernel::matmul_allocations`, which counts the allocating
//!   wrapper calls; the preallocated `dxs` output vector and returned state
//!   are the only matmul results that still own fresh memory).
//!
//! Everything lives in one `#[test]` so no concurrent test can disturb the
//! global counters.

use hec_nn::{
    Activation, Lstm, LstmState, QuantMode, QuantizedDense, RmsProp, Seq2Seq, Seq2SeqConfig,
};
use hec_telemetry::{allocations, CountingAlloc};
use hec_tensor::{Matrix, QuantScheme};

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn hot_paths_are_matmul_allocation_free() {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    // --- Inference LSTM step: zero total allocations once warm. ---
    let mut rng = StdRng::seed_from_u64(7);
    let mut lstm = Lstm::new(&mut rng, 18, 64);
    let x = hec_tensor::init::uniform(&mut rng, 1, 18, -1.0, 1.0);
    let state = LstmState {
        h: hec_tensor::init::uniform(&mut rng, 1, 64, -1.0, 1.0),
        c: hec_tensor::init::uniform(&mut rng, 1, 64, -1.0, 1.0),
    };
    let mut next = LstmState::zeros(1, 64);
    lstm.step_into(&x, &state, &mut next); // warmup: scratch buffers grow here

    // The counter is process-wide and the test harness occasionally
    // allocates from another thread mid-window; a step that really
    // allocated would dirty every window (32 iterations each), so one
    // clean window out of five keeps the assertion sound without the noise.
    let mut last_delta = usize::MAX;
    for _attempt in 0..5 {
        let before = allocations();
        for _ in 0..32 {
            lstm.step_into(&x, &state, &mut next);
        }
        last_delta = allocations() - before;
        if last_delta == 0 {
            break;
        }
    }
    assert_eq!(
        last_delta, 0,
        "warmed Lstm::step_into performed {last_delta} heap allocations in every window"
    );

    // --- Quantised dense forward (int8 weights *and* activations): zero
    // total allocations once the code buffers and kernel scratch are warm,
    // at both AE-IoT layer shapes (narrow-output dot route and wide-output
    // tiled route with the pre-packed weight layout). ---
    let enc_w = hec_tensor::init::uniform(&mut rng, 96, 3, -1.0, 1.0);
    let enc_b = Matrix::zeros(1, 3);
    let dec_w = hec_tensor::init::uniform(&mut rng, 3, 96, -1.0, 1.0);
    let dec_b = Matrix::zeros(1, 96);
    let mode = QuantMode::int8(QuantScheme::PerRow);
    let mut enc = QuantizedDense::from_weights(&enc_w, &enc_b, Activation::Tanh, mode);
    let mut dec = QuantizedDense::from_weights(&dec_w, &dec_b, Activation::Linear, mode);
    let x = hec_tensor::init::uniform(&mut rng, 1, 96, -1.0, 1.0);
    let mut h = Matrix::zeros(1, 3);
    let mut y = Matrix::zeros(1, 96);
    enc.forward_into(&x, &mut h); // warmup: activation codes + scratch grow
    dec.forward_into(&h, &mut y);
    let mut last_delta = usize::MAX;
    for _attempt in 0..5 {
        let before = allocations();
        for _ in 0..32 {
            enc.forward_into(&x, &mut h);
            dec.forward_into(&h, &mut y);
        }
        last_delta = allocations() - before;
        if last_delta == 0 {
            break;
        }
    }
    assert_eq!(
        last_delta, 0,
        "warmed QuantizedDense::forward_into performed {last_delta} heap allocations per window"
    );

    // --- LSTM training step (forward_seq + backward_seq): zero allocating
    // matmul wrapper calls — all products go through `_into` kernels. ---
    let xs: Vec<Matrix> =
        (0..16).map(|_| hec_tensor::init::uniform(&mut rng, 1, 18, -1.0, 1.0)).collect();
    let train_step = |lstm: &mut Lstm| {
        let states = lstm.forward_seq(&xs, true);
        let dhs: Vec<Matrix> =
            states.iter().map(|s| Matrix::ones(s.h.rows(), s.h.cols())).collect();
        let _ = lstm.backward_seq(&dhs, None);
    };
    train_step(&mut lstm); // warmup
    let wrapper_before = hec_tensor::kernel::matmul_allocations();
    train_step(&mut lstm);
    assert_eq!(
        hec_tensor::kernel::matmul_allocations(),
        wrapper_before,
        "LSTM training step performed allocating matmul calls"
    );

    // --- Full seq2seq training step (encoder, decoder, dense output,
    // dropout, optimizer): still zero allocating matmul calls. ---
    let config = Seq2SeqConfig { input_dim: 4, encoder_hidden: 12, ..Default::default() };
    let mut model = Seq2Seq::new(config);
    let window: Vec<Matrix> = (0..8)
        .map(|t| {
            Matrix::row_vector(&[
                (t as f32 * 0.3).sin(),
                (t as f32 * 0.3).cos(),
                (t as f32 * 0.7).sin(),
                (t as f32 * 0.7).cos(),
            ])
        })
        .collect();
    let mut opt = RmsProp::new(1e-3);
    let _ = model.train_batch(&window, &mut opt); // warmup
    let wrapper_before = hec_tensor::kernel::matmul_allocations();
    let _ = model.train_batch(&window, &mut opt);
    assert_eq!(
        hec_tensor::kernel::matmul_allocations(),
        wrapper_before,
        "Seq2Seq training step performed allocating matmul calls"
    );
}
