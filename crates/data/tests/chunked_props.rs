//! Property tests for the chunked parallel parsers (feature
//! `real-data`): over randomly generated CSV/NDJSON inputs — CRLF line
//! endings, comments, blank lines, headers, missing-value markers,
//! malformed fields, day-label disagreements, arity errors — the chunked
//! path must match the serial readers **exactly**, for every chunk size
//! from one byte to past the whole file and at several thread counts:
//!
//! * on success: same windows (bitwise sample values), same labels, same
//!   anomaly classes;
//! * on failure: same error variant rendering, same message, same
//!   1-based global line number (the first error in input order).
//!
//! Chunk boundaries land mid-record, mid-CRLF, mid-comment — everywhere
//! — because every chunk size in the sweep is tried on every generated
//! input.
#![cfg(feature = "real-data")]

use proptest::prelude::*;

use hec_data::ingest::{MhealthNdjsonSource, MissingValuePolicy, PowerCsvSource};
use hec_data::LabeledCorpus;

const SPD: usize = 4;

/// Renders one pseudo-random power-CSV line from a (kind, value) token.
/// Most kinds are well-formed; a few inject the error paths the serial
/// reader defines (missing values, malformed numbers, bad labels, arity
/// slips) so error equality is exercised as often as success equality.
fn power_line(kind: u8, v: u32, out: &mut String) {
    let x = (v % 997) as f32 / 100.0;
    let label = v % 4;
    match kind % 16 {
        0 => out.push_str("# a comment line\n"),
        1 => out.push('\n'),
        2 => out.push_str("   \n"),
        3 => {
            out.push_str(&format!("{x:.3},{label}\r\n"));
        }
        4 => {
            // Unlabelled record (label defaults to 0).
            out.push_str(&format!("{x:.3}\n"));
        }
        5 => {
            // Empty label field (also defaults to 0).
            out.push_str(&format!("{x:.3},\n"));
        }
        6 if v.is_multiple_of(5) => {
            // Missing value (empty field) — policy-dependent.
            out.push_str(&format!(",{label}\n"));
        }
        7 if v.is_multiple_of(7) => {
            // Non-finite value — treated as missing.
            out.push_str(&format!("nan,{label}\n"));
        }
        8 if v.is_multiple_of(11) => {
            // Malformed number: Parse error at this line.
            out.push_str("12..5,0\n");
        }
        9 if v.is_multiple_of(13) => {
            // Malformed label AFTER a missing value marker would have
            // fired — exercises the deferred-label stitch ordering.
            out.push_str(&format!("{x:.3},bogus\n"));
        }
        10 if v.is_multiple_of(17) => {
            // Arity slip: three fields.
            out.push_str(&format!("{x:.3},{label},9\n"));
        }
        _ => {
            out.push_str(&format!("{x:.3},{label}\n"));
        }
    }
}

/// Renders one pseudo-random MHEALTH NDJSON line. 18 channels; error
/// kinds inject nulls, arity slips and invalid activities.
fn mhealth_line(kind: u8, v: u32, out: &mut String) {
    let subject = v % 2;
    let activity = v % 5;
    let base = (v % 89) as f32 / 10.0;
    match kind % 12 {
        0 => out.push_str("# a comment line\n"),
        1 => out.push('\n'),
        2 if v.is_multiple_of(5) => {
            // One null sample — policy-dependent missing value.
            let mut ch: Vec<String> = (0..18).map(|c| format!("{:.2}", base + c as f32)).collect();
            ch[(v % 18) as usize] = "null".into();
            out.push_str(&format!(
                "{{\"subject\": {subject}, \"activity\": {activity}, \"ch\": [{}]}}\n",
                ch.join(", ")
            ));
        }
        3 if v.is_multiple_of(7) => {
            // Arity slip: 17 channels.
            let ch: Vec<String> = (0..17).map(|c| format!("{:.2}", base + c as f32)).collect();
            out.push_str(&format!(
                "{{\"subject\": {subject}, \"activity\": {activity}, \"ch\": [{}]}}\n",
                ch.join(", ")
            ));
        }
        4 if v.is_multiple_of(11) => {
            // Invalid activity id.
            let ch: Vec<String> = (0..18).map(|c| format!("{:.2}", base + c as f32)).collect();
            out.push_str(&format!(
                "{{\"subject\": {subject}, \"activity\": 99, \"ch\": [{}]}}\n",
                ch.join(", ")
            ));
        }
        5 if v.is_multiple_of(13) => {
            // Truncated object: reader-level parse error.
            out.push_str(&format!("{{\"subject\": {subject}, \"activity\": {activity}\n"));
        }
        _ => {
            let ch: Vec<String> = (0..18).map(|c| format!("{:.2}", base + c as f32)).collect();
            let crlf = if v.is_multiple_of(3) { "\r\n" } else { "\n" };
            out.push_str(&format!(
                "{{\"subject\": {subject}, \"activity\": {activity}, \"ch\": [{}]}}{crlf}",
                ch.join(", ")
            ));
        }
    }
}

/// The chunk-size sweep for an input of `len` bytes: every boundary
/// regime from one-byte chunks (maximal stitching) to a single chunk
/// covering the file (serial execution of the chunked code path).
fn chunk_sizes(len: usize) -> Vec<usize> {
    let mut sizes = vec![1, 2, 3, 5, 7, 13];
    sizes.extend([len / 3, len / 2, len.saturating_sub(1), len, len + 7]);
    sizes.retain(|&s| s >= 1);
    sizes.dedup();
    sizes
}

fn assert_corpora_eq(serial: &LabeledCorpus, chunked: &LabeledCorpus, ctx: &str) {
    assert_eq!(serial.len(), chunked.len(), "{ctx}: window count");
    assert_eq!(serial.classes, chunked.classes, "{ctx}: classes");
    for (i, (a, b)) in serial.windows.iter().zip(chunked.windows.iter()).enumerate() {
        assert_eq!(a.anomalous, b.anomalous, "{ctx}: window {i} label");
        assert_eq!(a.data.as_slice(), b.data.as_slice(), "{ctx}: window {i} samples");
    }
}

/// Serial vs chunked over every chunk size, success or failure.
fn assert_power_equivalence(text: &str, policy: MissingValuePolicy) {
    let source = PowerCsvSource::new("unused.csv", SPD, policy);
    let serial = source.parse(std::io::Cursor::new(text.as_bytes()));
    for chunk in chunk_sizes(text.len()) {
        let chunked = source.parse_chunked(text.as_bytes(), chunk);
        let ctx = format!("power[{policy}] chunk={chunk}");
        match (&serial, &chunked) {
            (Ok(s), Ok(c)) => assert_corpora_eq(s, c, &ctx),
            (Err(s), Err(c)) => {
                assert_eq!(s.line(), c.line(), "{ctx}: error line");
                assert_eq!(s.to_string(), c.to_string(), "{ctx}: error message");
            }
            (s, c) => panic!("{ctx}: serial {s:?} vs chunked {c:?}"),
        }
    }
}

fn assert_mhealth_equivalence(text: &str, policy: MissingValuePolicy) {
    let source = MhealthNdjsonSource::new("unused.ndjson", 3, 2, policy);
    let serial = source.parse(std::io::Cursor::new(text.as_bytes()));
    for chunk in chunk_sizes(text.len()) {
        let chunked = source.parse_chunked(text.as_bytes(), chunk);
        let ctx = format!("mhealth[{policy}] chunk={chunk}");
        match (&serial, &chunked) {
            (Ok(s), Ok(c)) => assert_corpora_eq(s, c, &ctx),
            (Err(s), Err(c)) => {
                assert_eq!(s.line(), c.line(), "{ctx}: error line");
                assert_eq!(s.to_string(), c.to_string(), "{ctx}: error message");
            }
            (s, c) => panic!("{ctx}: serial {s:?} vs chunked {c:?}"),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Power CSV: chunked == serial on arbitrary record mixes, with and
    /// without a leading header, under both missing-value policies.
    #[test]
    fn power_chunked_equals_serial(
        tokens in proptest::collection::vec((0u8..32, 0u32..100_000), 0..80),
        header in 0u8..2,
    ) {
        let mut text = String::new();
        if header == 1 {
            text.push_str("demand,label\n");
        }
        for &(kind, v) in &tokens {
            power_line(kind, v, &mut text);
        }
        assert_power_equivalence(&text, MissingValuePolicy::Reject);
        assert_power_equivalence(&text, MissingValuePolicy::ImputePrevious);
    }

    /// MHEALTH NDJSON: chunked == serial on arbitrary record mixes
    /// (session-key changes included — subjects and activities vary per
    /// record) under both missing-value policies.
    #[test]
    fn mhealth_chunked_equals_serial(
        tokens in proptest::collection::vec((0u8..32, 0u32..100_000), 0..48),
    ) {
        let mut text = String::new();
        for &(kind, v) in &tokens {
            mhealth_line(kind, v, &mut text);
        }
        assert_mhealth_equivalence(&text, MissingValuePolicy::Reject);
        assert_mhealth_equivalence(&text, MissingValuePolicy::ImputePrevious);
    }

    /// Thread count must not matter either: the same input parsed
    /// chunked at 1, 2 and 5 workers is bitwise identical.
    #[test]
    fn power_chunked_is_thread_invariant(
        tokens in proptest::collection::vec((0u8..32, 0u32..100_000), 0..60),
    ) {
        let mut text = String::new();
        for &(kind, v) in &tokens {
            power_line(kind, v, &mut text);
        }
        let source = PowerCsvSource::new("unused.csv", SPD, MissingValuePolicy::ImputePrevious);
        let chunk = (text.len() / 4).max(1);
        let base = hec_tensor::parallel::with_thread_count(1, || {
            source.parse_chunked(text.as_bytes(), chunk)
        });
        for threads in [2, 5] {
            let run = hec_tensor::parallel::with_thread_count(threads, || {
                source.parse_chunked(text.as_bytes(), chunk)
            });
            match (&base, &run) {
                (Ok(a), Ok(b)) => assert_corpora_eq(a, b, &format!("threads={threads}")),
                (Err(a), Err(b)) => {
                    assert_eq!(a.line(), b.line());
                    assert_eq!(a.to_string(), b.to_string());
                }
                (a, b) => panic!("threads={threads}: {a:?} vs {b:?}"),
            }
        }
    }
}
