//! Regenerates **Fig. 3b** — the demo result panel: detection outcome vs
//! ground truth, detection delay vs policy actions, and cumulative
//! accuracy/F1, streamed over the evaluation corpus.
//!
//! Prints a textual summary and, when an output directory is given as the
//! first argument, writes one CSV per scheme:
//!
//! ```text
//! cargo run --release -p hec-bench --bin repro_fig3 -- out/
//! ```

use hec_bandit::RewardModel;
use hec_bench::{univariate_config, Profile};
use hec_core::stream::{stream_records, to_csv};
use hec_core::{Experiment, SchemeEvaluator, SchemeKind};

fn main() {
    let out_dir = std::env::args().nth(1);
    let profile = Profile::from_env();
    println!("== repro_fig3 (profile: {profile:?}) ==\n");

    let config = univariate_config(profile);
    let payload = config.payload_bytes();
    let alpha = config.dataset.kind().paper_alpha();
    let mut exp = Experiment::prepare(config);
    exp.train_detectors();

    let policy_corpus = exp.split.policy_train.clone();
    let policy_oracle = exp.oracle_over(&policy_corpus);
    let (mut policy, scaler, _) = exp.train_policy(&policy_oracle);

    let eval_corpus = exp.split.full.clone();
    let eval_oracle = exp.oracle_over(&eval_corpus);
    let ev = SchemeEvaluator::new(exp.topology(), payload, RewardModel::new(alpha));

    for kind in SchemeKind::ALL {
        let records = match kind {
            SchemeKind::Adaptive => {
                stream_records(&ev, &eval_oracle, kind, Some(&mut policy), Some(&scaler))
            }
            _ => stream_records(&ev, &eval_oracle, kind, None, None),
        };
        let last = records.last().expect("non-empty corpus");
        let mean_delay: f64 =
            records.iter().map(|r| r.delay_ms).sum::<f64>() / records.len() as f64;
        println!(
            "{:<12} windows={:<5} final acc={:.4} final f1={:.4} mean delay={:.2} ms",
            kind.to_string(),
            records.len(),
            last.cumulative_accuracy,
            last.cumulative_f1,
            mean_delay
        );
        if let Some(dir) = &out_dir {
            std::fs::create_dir_all(dir).expect("create output directory");
            let path =
                format!("{dir}/fig3_{}.csv", kind.to_string().to_lowercase().replace(' ', "_"));
            std::fs::write(&path, to_csv(&records)).expect("write CSV");
            println!("  wrote {path}");
        }
    }
    println!(
        "\nEach CSV column maps to a Fig. 3b panel: predicted vs truth (detection\n\
         outcome plot), delay_ms + action (delay-vs-action plot), and the\n\
         cumulative accuracy / F1 series."
    );
}
