//! The demo result panel's streaming series (Fig. 3b) and the closed-loop
//! fleet streaming driver.
//!
//! The paper's GUI continuously plots, as windows stream in: the raw sensory
//! signal, the detection outcome (0/1) vs ground truth, the detection delay
//! vs the action chosen by the policy network, and the accumulated accuracy
//! and F1-score. This module regenerates exactly those series as data.
//!
//! [`stream_through_fleet`] goes further: it replays the evaluation corpus
//! from every device of a [`FleetScenario`] into the discrete-event fleet
//! simulator, with the scheme (in particular the trained bandit policy)
//! choosing each window's layer. The chosen action now changes *queueing* —
//! a policy that routes everything to the cloud saturates the cloud path
//! and pays load-dependent delay, which the per-window Fig. 3b replay
//! cannot express.

use std::fmt::Write as _;

use serde::{Deserialize, Serialize};

use hec_bandit::{ContextScaler, PolicyNetwork};
use hec_data::BinaryConfusion;
use hec_sim::fleet::{FleetReport, FleetScenario, FleetSim, JobEvent};

use crate::oracle::Oracle;
use crate::scheme::{SchemeEvaluator, SchemeKind};

/// One row of the Fig. 3b panel: the state after processing window `index`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StreamRecord {
    /// Stream position (window index).
    pub index: usize,
    /// Ground truth (1 = anomalous).
    pub truth: bool,
    /// The scheme's verdict.
    pub predicted: bool,
    /// Layer that served the window (the plotted "action").
    pub action: usize,
    /// End-to-end detection delay of this window, ms.
    pub delay_ms: f64,
    /// Accuracy accumulated over the stream so far.
    pub cumulative_accuracy: f64,
    /// F1-score accumulated over the stream so far.
    pub cumulative_f1: f64,
}

/// Replays the evaluation corpus as a stream under the given scheme,
/// producing the Fig. 3b series.
///
/// `policy`/`scaler` are required only for [`SchemeKind::Adaptive`].
///
/// # Panics
///
/// Panics if `Adaptive` is requested without a policy and scaler.
pub fn stream_records(
    evaluator: &SchemeEvaluator<'_>,
    oracle: &Oracle,
    kind: SchemeKind,
    mut policy: Option<&mut PolicyNetwork>,
    scaler: Option<&ContextScaler>,
) -> Vec<StreamRecord> {
    let mut confusion = BinaryConfusion::new();
    let mut records = Vec::with_capacity(oracle.len());
    for i in 0..oracle.len() {
        let outcome = match kind {
            SchemeKind::IoTDevice => evaluator.fixed(oracle, i, 0),
            SchemeKind::Edge => evaluator.fixed(oracle, i, 1),
            SchemeKind::Cloud => evaluator.fixed(oracle, i, 2),
            SchemeKind::Successive => evaluator.successive(oracle, i),
            SchemeKind::Adaptive => {
                let p = policy.as_deref_mut().expect("Adaptive needs a trained policy");
                let s = scaler.expect("Adaptive needs a context scaler");
                evaluator.adaptive(oracle, i, p, s)
            }
        };
        let truth = oracle.outcomes[i].truth;
        confusion.record(outcome.verdict, truth);
        records.push(StreamRecord {
            index: i,
            truth,
            predicted: outcome.verdict,
            action: outcome.final_layer,
            delay_ms: outcome.delay_ms,
            cumulative_accuracy: confusion.accuracy(),
            cumulative_f1: confusion.f1(),
        });
    }
    records
}

/// Renders stream records as CSV (header + one line per window), the format
/// the `repro_fig3` bench binary writes.
pub fn to_csv(records: &[StreamRecord]) -> String {
    let mut out =
        String::from("index,truth,predicted,action,delay_ms,cumulative_accuracy,cumulative_f1\n");
    for r in records {
        out.push_str(&format!(
            "{},{},{},{},{:.3},{:.6},{:.6}\n",
            r.index,
            r.truth as u8,
            r.predicted as u8,
            r.action,
            r.delay_ms,
            r.cumulative_accuracy,
            r.cumulative_f1
        ));
    }
    out
}

/// Result of streaming the corpus through the fleet under one scheme.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetStreamResult {
    /// Which scheme routed the windows.
    pub scheme: SchemeKind,
    /// The fleet simulation's load report (utilization, queue traces,
    /// drops, load-dependent latency distributions per layer).
    pub fleet: FleetReport,
    /// Detection confusion over the *served* windows (each window's
    /// verdict comes from the oracle at the layer that served it).
    pub confusion: BinaryConfusion,
    /// Windows shed by admission control before any model saw them.
    pub missed: u64,
}

impl FleetStreamResult {
    /// Accuracy over served windows.
    pub fn accuracy(&self) -> f64 {
        self.confusion.accuracy()
    }

    /// F1 over served windows.
    pub fn f1(&self) -> f64 {
        self.confusion.f1()
    }
}

/// Streams the corpus through the discrete-event fleet simulator under a
/// scheme: every emitted window maps to an oracle window (`seq mod
/// corpus`), the scheme chooses its layer, the fleet sim charges the
/// load-dependent delay, and the layer's frozen detector verdict is scored
/// against ground truth.
///
/// The scenario's own routing plans are ignored — the scheme routes. For
/// [`SchemeKind::Adaptive`] the policy's greedy actions are precomputed in
/// one batched forward pass; for [`SchemeKind::Successive`] each window is
/// routed to the layer where the escalation would stop (the intermediate
/// hops' delays are not modelled — only the serving layer's queueing is).
///
/// Deterministic: same scenario + oracle + policy ⇒ an identical
/// [`FleetStreamResult`], regardless of `HEC_THREADS`.
///
/// # Panics
///
/// Panics if the oracle is empty or `Adaptive` is requested without a
/// policy and scaler.
pub fn stream_through_fleet(
    scenario: &FleetScenario,
    oracle: &Oracle,
    kind: SchemeKind,
    mut policy: Option<&mut PolicyNetwork>,
    scaler: Option<&ContextScaler>,
) -> FleetStreamResult {
    assert!(!oracle.is_empty(), "cannot stream an empty oracle corpus");
    let n = oracle.len();
    // Per-oracle-window layer choice, precomputed so the router is a table
    // lookup on the hot path.
    let actions: Vec<usize> = match kind {
        SchemeKind::IoTDevice => vec![0; n],
        SchemeKind::Edge => vec![1; n],
        SchemeKind::Cloud => vec![2; n],
        SchemeKind::Successive => {
            let top = scenario.topology().num_layers() - 1;
            (0..n)
                .map(|i| {
                    let mut layer = 0usize;
                    while layer < top && !oracle.confident(i, layer) {
                        layer += 1;
                    }
                    layer
                })
                .collect()
        }
        SchemeKind::Adaptive => {
            let p = policy.take().expect("Adaptive needs a trained policy");
            let s = scaler.expect("Adaptive needs a context scaler");
            let scaled: Vec<Vec<f32>> =
                oracle.outcomes.iter().map(|o| s.transform(&o.context)).collect();
            p.greedy_batch(&scaled)
        }
    };

    let mut confusion = BinaryConfusion::new();
    let mut missed = 0u64;
    let mut router = |ctx: &hec_sim::fleet::RouteCtx<'_>| actions[(ctx.seq % n as u64) as usize];
    let mut observer = |ev: &JobEvent| match *ev {
        JobEvent::Served { seq, layer, .. } => {
            let i = (seq % n as u64) as usize;
            confusion.record(oracle.verdict(i, layer), oracle.outcomes[i].truth);
        }
        JobEvent::Dropped { .. } => missed += 1,
    };
    let fleet = FleetSim::new(scenario).run_with(&mut router, &mut observer);
    FleetStreamResult { scheme: kind, fleet, confusion, missed }
}

/// Renders per-scheme fleet streaming results as CSV: one row per scheme
/// with detection quality next to the load-dependent latency figures.
pub fn fleet_stream_csv(results: &[FleetStreamResult]) -> String {
    let mut out = String::from(
        "scheme,emitted,served,missed,accuracy,f1,mean_ms,p50_ms,p99_ms,\
         iot_util,edge_util,cloud_util,edge_drop_rate,cloud_drop_rate\n",
    );
    for r in results {
        let layer = |l: usize| &r.fleet.layers[l];
        let _ = writeln!(
            out,
            "{},{},{},{},{:.6},{:.6},{:.3},{:.3},{:.3},{:.6},{:.6},{:.6},{:.6},{:.6}",
            r.scheme,
            r.fleet.emitted,
            r.fleet.served,
            r.missed,
            r.accuracy(),
            r.f1(),
            r.fleet.overall_mean_ms,
            r.fleet.overall_p50_ms,
            r.fleet.overall_p99_ms,
            layer(0).utilization,
            layer(1).utilization,
            layer(2).utilization,
            layer(1).drop_rate,
            layer(2).drop_rate,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::WindowOutcome;
    use hec_anomaly::ConfidenceRule;
    use hec_bandit::RewardModel;
    use hec_sim::{DatasetKind, HecTopology};

    fn oracle(n: usize) -> Oracle {
        let outcomes = (0..n)
            .map(|i| {
                let truth = i % 3 == 0;
                WindowOutcome {
                    truth,
                    min_log_pd: [-5.0, -5.0, if truth { -60.0 } else { -1.0 }],
                    anomalous_fraction: [
                        0.0,
                        if truth && i % 2 == 0 { 0.4 } else { 0.0 },
                        if truth { 0.4 } else { 0.0 },
                    ],
                    context: vec![i as f32],
                }
            })
            .collect();
        Oracle {
            outcomes,
            thresholds: [-10.0; 3],
            flag_fraction: 0.0,
            confidence: ConfidenceRule::default(),
        }
    }

    #[test]
    fn stream_length_matches_corpus() {
        let topo = HecTopology::paper_testbed(DatasetKind::Univariate);
        let ev = SchemeEvaluator::new(&topo, 384, RewardModel::new(0.0005));
        let o = oracle(30);
        let records = stream_records(&ev, &o, SchemeKind::Cloud, None, None);
        assert_eq!(records.len(), 30);
        assert!(records.iter().enumerate().all(|(i, r)| r.index == i));
    }

    #[test]
    fn cumulative_accuracy_is_monotone_series_of_running_mean() {
        let topo = HecTopology::paper_testbed(DatasetKind::Univariate);
        let ev = SchemeEvaluator::new(&topo, 384, RewardModel::new(0.0005));
        let o = oracle(30);
        let records = stream_records(&ev, &o, SchemeKind::Cloud, None, None);
        // Cloud is always correct in this synthetic oracle.
        let last = records.last().unwrap();
        assert_eq!(last.cumulative_accuracy, 1.0);
        assert_eq!(last.cumulative_f1, 1.0);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let topo = HecTopology::paper_testbed(DatasetKind::Univariate);
        let ev = SchemeEvaluator::new(&topo, 384, RewardModel::new(0.0005));
        let o = oracle(5);
        let csv = to_csv(&stream_records(&ev, &o, SchemeKind::IoTDevice, None, None));
        assert_eq!(csv.lines().count(), 6);
        assert!(csv.starts_with("index,truth"));
    }

    #[test]
    fn iot_stream_has_constant_low_delay() {
        let topo = HecTopology::paper_testbed(DatasetKind::Univariate);
        let ev = SchemeEvaluator::new(&topo, 384, RewardModel::new(0.0005));
        let o = oracle(10);
        let records = stream_records(&ev, &o, SchemeKind::IoTDevice, None, None);
        assert!(records.iter().all(|r| (r.delay_ms - 12.4).abs() < 1e-9));
        assert!(records.iter().all(|r| r.action == 0));
    }

    /// The cumulative accuracy/F1 at every stream position must equal the
    /// metrics recomputed from scratch over the prefix of (predicted,
    /// truth) pairs — the running confusion may never drift.
    #[test]
    fn cumulative_accounting_matches_prefix_recomputation() {
        let topo = HecTopology::paper_testbed(DatasetKind::Univariate);
        let ev = SchemeEvaluator::new(&topo, 384, RewardModel::new(0.0005));
        let o = oracle(50);
        // IoT misses every true anomaly in this oracle (mixed verdicts);
        // Cloud gets everything right — check the accounting on both.
        for kind in [SchemeKind::IoTDevice, SchemeKind::Cloud] {
            let records = stream_records(&ev, &o, kind, None, None);
            for (i, r) in records.iter().enumerate() {
                let prefix = BinaryConfusion::from_predictions(
                    records[..=i].iter().map(|p| (p.predicted, p.truth)),
                );
                assert_eq!(r.cumulative_accuracy, prefix.accuracy(), "accuracy drift at {i}");
                assert_eq!(r.cumulative_f1, prefix.f1(), "f1 drift at {i}");
            }
        }
        // The IoT series genuinely varies (neither all-correct nor all-wrong).
        let last = *stream_records(&ev, &o, SchemeKind::IoTDevice, None, None).last().unwrap();
        assert!(last.cumulative_accuracy > 0.0 && last.cumulative_accuracy < 1.0);
    }

    /// A tiny fleet scenario for driver tests: `devices` devices, 10
    /// windows each, one window per `period_ms`.
    fn fleet_scenario(devices: u32, period_ms: f64) -> FleetScenario {
        use hec_sim::fleet::{CohortSpec, FleetScale, RoutePlan};
        let mut sc = FleetScenario::light_load(FleetScale::Quick);
        sc.name = "driver_test".into();
        sc.trace_interval_ms = 10.0;
        sc.cohorts = vec![CohortSpec {
            devices,
            windows_per_device: 10,
            period_ms,
            start_ms: 0.0,
            route: RoutePlan::Fixed(0), // overridden by the scheme router
        }];
        sc
    }

    #[test]
    fn fleet_stream_unloaded_cloud_matches_table2() {
        let sc = fleet_scenario(5, 10_000.0);
        let o = oracle(30);
        let r = stream_through_fleet(&sc, &o, SchemeKind::Cloud, None, None);
        assert_eq!(r.fleet.served, 50);
        assert_eq!(r.missed, 0);
        assert!((r.fleet.layers[2].mean_ms - 504.5).abs() < 1e-9);
        // Cloud verdicts are always correct in this synthetic oracle.
        assert_eq!(r.accuracy(), 1.0);
        assert_eq!(r.f1(), 1.0);
    }

    #[test]
    fn fleet_stream_load_changes_the_delay_of_the_same_action() {
        // Same scheme, same corpus — a 100× faster fleet must pay more
        // per window at the edge than the slow fleet (queueing).
        let o = oracle(30);
        let slow =
            stream_through_fleet(&fleet_scenario(10, 10_000.0), &o, SchemeKind::Edge, None, None);
        let mut fast_sc = fleet_scenario(200, 4.0);
        fast_sc.batch_max = 1;
        let fast = stream_through_fleet(&fast_sc, &o, SchemeKind::Edge, None, None);
        assert!(
            fast.fleet.layers[1].p99_ms > slow.fleet.layers[1].p99_ms + 50.0,
            "fast p99 {} vs slow p99 {}",
            fast.fleet.layers[1].p99_ms,
            slow.fleet.layers[1].p99_ms
        );
    }

    #[test]
    fn fleet_stream_adaptive_routes_by_policy_and_is_thread_invariant() {
        let o = oracle(60);
        let contexts = o.contexts();
        let scaler = hec_bandit::ContextScaler::fit(&contexts);
        let mut policy = PolicyNetwork::new(1, 8, 3, 0);
        let sc = fleet_scenario(20, 50.0);

        let mut run = |threads: usize| {
            crate::parallel::with_thread_count(threads, || {
                stream_through_fleet(
                    &sc,
                    &o,
                    SchemeKind::Adaptive,
                    Some(&mut policy),
                    Some(&scaler),
                )
            })
        };
        let serial = run(1);
        let parallel = run(2);
        assert_eq!(serial, parallel, "fleet stream must not depend on HEC_THREADS");
        assert_eq!(serial.fleet.served + serial.missed, serial.fleet.emitted);
    }

    #[test]
    fn fleet_stream_csv_has_one_row_per_scheme() {
        let o = oracle(20);
        let sc = fleet_scenario(5, 1_000.0);
        let results: Vec<FleetStreamResult> = [SchemeKind::IoTDevice, SchemeKind::Successive]
            .into_iter()
            .map(|kind| stream_through_fleet(&sc, &o, kind, None, None))
            .collect();
        let csv = fleet_stream_csv(&results);
        assert!(csv.starts_with("scheme,emitted"));
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.contains("IoT Device"));
    }
}
