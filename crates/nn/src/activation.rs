//! Element-wise activation functions and their derivatives.

use serde::{Deserialize, Serialize};

use hec_tensor::Matrix;

/// Element-wise activation applied by a [`crate::Dense`] layer.
///
/// The derivative is expressed in terms of the *activated output* `y = f(x)`,
/// which is what the backward pass has cached (this is exact for all four
/// variants: linear, sigmoid, tanh and ReLU).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Activation {
    /// Identity: `f(x) = x`.
    #[default]
    Linear,
    /// Logistic sigmoid: `f(x) = 1 / (1 + e^{-x})`.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
    /// Rectified linear unit: `f(x) = max(0, x)`.
    Relu,
}

impl Activation {
    /// Applies the activation to every element of `m`.
    pub fn apply(self, m: &Matrix) -> Matrix {
        match self {
            Activation::Linear => m.clone(),
            Activation::Sigmoid => m.map(sigmoid),
            Activation::Tanh => m.map(f32::tanh),
            Activation::Relu => m.map(|x| x.max(0.0)),
        }
    }

    /// Applies the activation to every element of `m` in place — the
    /// allocation-free sibling of [`Activation::apply`] used by the
    /// quantised inference path.
    pub fn apply_inplace(self, m: &mut Matrix) {
        match self {
            Activation::Linear => {}
            Activation::Sigmoid => m.map_inplace(sigmoid),
            Activation::Tanh => m.map_inplace(f32::tanh),
            Activation::Relu => m.map_inplace(|x| x.max(0.0)),
        }
    }

    /// Derivative `f'(x)` expressed as a function of the activated output
    /// `y = f(x)`.
    pub fn derivative_from_output(self, y: &Matrix) -> Matrix {
        match self {
            Activation::Linear => Matrix::ones(y.rows(), y.cols()),
            Activation::Sigmoid => y.map(|v| v * (1.0 - v)),
            Activation::Tanh => y.map(|v| 1.0 - v * v),
            Activation::Relu => y.map(|v| if v > 0.0 { 1.0 } else { 0.0 }),
        }
    }
}

/// Scalar logistic sigmoid, numerically stable for large |x|.
pub fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_derivative(act: Activation, x: f32) {
        let eps = 1e-3f32;
        let m = Matrix::filled(1, 1, x);
        let y = act.apply(&m);
        let analytic = act.derivative_from_output(&y)[(0, 0)];
        let y_plus = act.apply(&Matrix::filled(1, 1, x + eps))[(0, 0)];
        let y_minus = act.apply(&Matrix::filled(1, 1, x - eps))[(0, 0)];
        let numeric = (y_plus - y_minus) / (2.0 * eps);
        assert!(
            (analytic - numeric).abs() < 2e-3,
            "{act:?} at {x}: analytic {analytic} vs numeric {numeric}"
        );
    }

    #[test]
    fn derivatives_match_finite_difference() {
        for &x in &[-2.0f32, -0.5, 0.3, 1.7] {
            check_derivative(Activation::Linear, x);
            check_derivative(Activation::Sigmoid, x);
            check_derivative(Activation::Tanh, x);
            check_derivative(Activation::Relu, x); // x away from the kink
        }
    }

    #[test]
    fn sigmoid_extremes_are_stable() {
        assert!((sigmoid(100.0) - 1.0).abs() < 1e-6);
        assert!(sigmoid(-100.0) < 1e-6);
        assert!(sigmoid(-100.0) >= 0.0);
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-7);
    }

    #[test]
    fn relu_clamps_negatives() {
        let m = Matrix::from_rows(&[&[-1.0, 0.0, 2.0]]);
        let y = Activation::Relu.apply(&m);
        assert_eq!(y.as_slice(), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn tanh_range() {
        let m = Matrix::from_rows(&[&[-10.0, 10.0]]);
        let y = Activation::Tanh.apply(&m);
        assert!(y.as_slice().iter().all(|&v| (-1.0..=1.0).contains(&v)));
    }

    #[test]
    fn default_is_linear() {
        assert_eq!(Activation::default(), Activation::Linear);
    }
}
