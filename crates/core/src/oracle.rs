//! Precomputed per-window detection outcomes.
//!
//! The paper trains and freezes the K = 3 AD models first, then trains the
//! policy network against them (§II-B). Detection outcomes per (window,
//! layer) are therefore immutable during bandit training, and we precompute
//! them once: this keeps REINFORCE epochs cheap and makes the confidence
//! rule and flagging threshold re-derivable for ablations (we store the raw
//! scores, not just verdicts).

use hec_anomaly::{ConfidenceRule, ModelCatalog};
use hec_data::LabeledWindow;
use hec_tensor::vecops;

/// Raw per-layer scores of one window, plus its ground truth and context.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowOutcome {
    /// Ground truth: `true` = anomalous.
    pub truth: bool,
    /// Minimum per-point logPD under each layer's model (bottom-up).
    pub min_log_pd: [f32; 3],
    /// Anomalous-point fraction under each layer's model.
    pub anomalous_fraction: [f32; 3],
    /// Contextual feature vector `z_x` for the policy network.
    pub context: Vec<f32>,
}

/// A frozen set of outcomes plus the calibration needed to re-derive
/// verdicts and confidence under any rule.
#[derive(Debug, Clone, PartialEq)]
pub struct Oracle {
    /// Per-window outcomes, in corpus order.
    pub outcomes: Vec<WindowOutcome>,
    /// Each layer's calibrated logPD threshold.
    pub thresholds: [f32; 3],
    /// Anomalous-fraction above which a window is flagged (default 0).
    pub flag_fraction: f32,
    /// Confidence rule for the Successive scheme.
    pub confidence: ConfidenceRule,
}

impl Oracle {
    /// Runs every window through all three (already fitted) detectors.
    ///
    /// Context features come from the IoT-layer detector when it provides
    /// them (the LSTM-encoder state, §III-B); otherwise the univariate
    /// `{min, max, mean, std}` summary of the window is used.
    ///
    /// # Panics
    ///
    /// Panics if any detector was not fitted.
    pub fn precompute(catalog: &mut ModelCatalog, windows: &[LabeledWindow]) -> Self {
        let mut thresholds = [0.0f32; 3];
        let mut per_layer: Vec<Vec<(f32, f32)>> = Vec::with_capacity(3);
        for (layer, det) in catalog.detectors_mut().iter_mut().enumerate() {
            thresholds[layer] =
                det.threshold().expect("detector must be fitted before precomputing outcomes");
            // Batched scoring: one forward pass over the whole corpus where
            // the detector supports it (identical results to per-window).
            let scores = det
                .detect_batch(windows)
                .into_iter()
                .map(|d| (d.min_log_pd, d.anomalous_fraction))
                .collect();
            per_layer.push(scores);
        }

        let contexts = extract_contexts(catalog, windows);
        let outcomes = windows
            .iter()
            .enumerate()
            .map(|(i, w)| WindowOutcome {
                truth: w.anomalous,
                min_log_pd: [per_layer[0][i].0, per_layer[1][i].0, per_layer[2][i].0],
                anomalous_fraction: [per_layer[0][i].1, per_layer[1][i].1, per_layer[2][i].1],
                context: contexts[i].clone(),
            })
            .collect();

        Self { outcomes, thresholds, flag_fraction: 0.0, confidence: ConfidenceRule::default() }
    }

    /// Like [`Oracle::precompute`] but with exact thresholds supplied by the
    /// caller (from each detector's `FitReport`).
    pub fn precompute_with_thresholds(
        catalog: &mut ModelCatalog,
        windows: &[LabeledWindow],
        thresholds: [f32; 3],
    ) -> Self {
        let mut oracle = Self::precompute(catalog, windows);
        oracle.thresholds = thresholds;
        oracle
    }

    /// Number of windows.
    pub fn len(&self) -> usize {
        self.outcomes.len()
    }

    /// Whether the oracle holds no windows.
    pub fn is_empty(&self) -> bool {
        self.outcomes.is_empty()
    }

    /// Layer `layer`'s verdict on window `i` (`true` = anomalous).
    pub fn verdict(&self, i: usize, layer: usize) -> bool {
        self.outcomes[i].anomalous_fraction[layer] > self.flag_fraction
    }

    /// Whether layer `layer`'s detection of window `i` is confident.
    pub fn confident(&self, i: usize, layer: usize) -> bool {
        let o = &self.outcomes[i];
        self.confidence.is_confident(
            o.min_log_pd[layer],
            o.anomalous_fraction[layer],
            self.thresholds[layer],
            self.verdict(i, layer),
        )
    }

    /// Whether layer `layer` classifies window `i` correctly.
    pub fn correct(&self, i: usize, layer: usize) -> bool {
        self.verdict(i, layer) == self.outcomes[i].truth
    }

    /// Per-layer accuracy over all windows (sanity metric).
    pub fn layer_accuracy(&self, layer: usize) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        let correct = (0..self.len()).filter(|&i| self.correct(i, layer)).count();
        correct as f64 / self.len() as f64
    }

    /// All context vectors (corpus order).
    pub fn contexts(&self) -> Vec<Vec<f32>> {
        self.outcomes.iter().map(|o| o.context.clone()).collect()
    }
}

/// Context extraction: IoT-layer model features if available, else the
/// univariate summary features.
fn extract_contexts(catalog: &mut ModelCatalog, windows: &[LabeledWindow]) -> Vec<Vec<f32>> {
    let iot = catalog.detector_mut(hec_anomaly::HecLayer::IoT);
    windows
        .iter()
        .map(|w| {
            iot.context_features(w)
                .unwrap_or_else(|| vecops::summary_features(&w.flattened()).to_vec())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hec_anomaly::{AeArchitecture, AutoencoderDetector};
    use hec_tensor::Matrix;

    fn ramp(n: usize, jitter: f32) -> LabeledWindow {
        let v: Vec<f32> = (0..n).map(|t| t as f32 / n as f32 + jitter).collect();
        LabeledWindow::new(Matrix::from_vec(n, 1, v), false)
    }

    fn flat(n: usize) -> LabeledWindow {
        LabeledWindow::new(Matrix::from_vec(n, 1, vec![0.5; n]), true)
    }

    fn fitted_catalog(n: usize) -> ModelCatalog {
        let mut catalog = ModelCatalog::from_detectors(vec![
            Box::new(AutoencoderDetector::new("AE-IoT", AeArchitecture::iot(n), 0)),
            Box::new(AutoencoderDetector::new("AE-Edge", AeArchitecture::edge(n), 1)),
            Box::new(AutoencoderDetector::new("AE-Cloud", AeArchitecture::cloud(n), 2)),
        ]);
        let train: Vec<LabeledWindow> = (0..30).map(|i| ramp(n, 0.002 * (i % 5) as f32)).collect();
        for det in catalog.detectors_mut() {
            det.fit(&train, 60).unwrap();
        }
        catalog
    }

    #[test]
    fn precompute_covers_all_windows_and_layers() {
        let mut catalog = fitted_catalog(16);
        let windows = vec![ramp(16, 0.0), flat(16), ramp(16, 0.001)];
        let oracle = Oracle::precompute(&mut catalog, &windows);
        assert_eq!(oracle.len(), 3);
        assert!(!oracle.is_empty());
        for o in &oracle.outcomes {
            assert!(o.min_log_pd.iter().all(|x| x.is_finite()));
            assert_eq!(o.context.len(), 4); // univariate summary features
        }
    }

    #[test]
    fn anomalous_window_detected_by_some_layer() {
        let mut catalog = fitted_catalog(16);
        let windows = vec![ramp(16, 0.0), flat(16)];
        let oracle = Oracle::precompute(&mut catalog, &windows);
        assert!(!oracle.outcomes[0].truth);
        assert!(oracle.outcomes[1].truth);
        let detected = (0..3).any(|layer| oracle.verdict(1, layer));
        assert!(detected, "flat window missed by all layers");
    }

    #[test]
    fn correctness_uses_truth() {
        let mut catalog = fitted_catalog(16);
        let windows = vec![ramp(16, 0.0), flat(16)];
        let oracle = Oracle::precompute(&mut catalog, &windows);
        for layer in 0..3 {
            assert_eq!(
                oracle.correct(0, layer),
                !oracle.verdict(0, layer),
                "normal window correctness must be the negated verdict"
            );
        }
    }

    #[test]
    fn explicit_thresholds_are_adopted() {
        let mut catalog = fitted_catalog(16);
        let windows = vec![ramp(16, 0.0)];
        let oracle = Oracle::precompute_with_thresholds(&mut catalog, &windows, [-1.0, -2.0, -3.0]);
        assert_eq!(oracle.thresholds, [-1.0, -2.0, -3.0]);
    }

    #[test]
    fn layer_accuracy_in_unit_range() {
        let mut catalog = fitted_catalog(16);
        let windows = vec![ramp(16, 0.0), flat(16), ramp(16, 0.002)];
        let oracle = Oracle::precompute(&mut catalog, &windows);
        for layer in 0..3 {
            let acc = oracle.layer_accuracy(layer);
            assert!((0.0..=1.0).contains(&acc));
        }
    }
}
