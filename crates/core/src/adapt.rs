//! Online adaptation under drift: the closed loop that keeps the
//! pipeline calibrated while the input distribution moves.
//!
//! The offline pipeline ([`crate::experiment`]) fits its standardizer,
//! detectors and policy once and freezes them. Under a regime change
//! (sensor recalibration, seasonal level shift, fleet firmware update —
//! modelled by `hec_data::DriftSchedule`) the frozen pipeline's layer-0
//! anomalous-fraction stream shifts, detection quality collapses, and the
//! bandit keeps routing on stale context statistics. This module closes
//! the loop:
//!
//! 1. **Stream in chunks.** The raw (unstandardised) window stream is
//!    processed chunk by chunk: standardise with the *current*
//!    standardizer, precompute the oracle, and replay the chunk through
//!    the sharded fleet engine ([`crate::replay`]) under the bandit
//!    policy — so adaptation runs inside the same resumable DES loop as
//!    every other scale experiment.
//! 2. **Detect drift.** Each window's layer-0 anomalous-point fraction (a
//!    bounded statistic the IoT-tier detector already computes) feeds a
//!    Page–Hinkley mean-shift detector — O(1) per window, deterministic.
//! 3. **Refresh in-fleet.** On an alarm (rate-limited by
//!    [`AdaptConfig::min_refresh_gap`]): refit the standardizer from a
//!    sliding reservoir of recent **raw** windows
//!    (`hec_data::OnlineStandardizer`, Welford moments, no second pass
//!    over history), re-standardise the reservoir, keep the windows the
//!    cloud-tier model still deems normal (self-labelling — ground truth
//!    is not available in deployment) and recalibrate every detector's
//!    logPD scorer and threshold on them
//!    ([`crate::Experiment::recalibrate_detectors`]) — no weight
//!    retraining anywhere.
//! 4. **Track the policy.** Independently of alarms, the bandit shadows
//!    each chunk with sampled actions scored against the static delay
//!    ladder, buffers the `(context, action, reward)` triples, and
//!    applies them between chunks (`PolicyTrainer::buffer`/`refresh`) —
//!    so the greedy routing table the fleet replays stays fixed *within*
//!    a chunk (the sharded driver requires a stateless router) and moves
//!    only at chunk boundaries.
//!
//! Everything is deterministic: same inputs ⇒ a byte-identical
//! [`AdaptReport`] across reruns and `HEC_THREADS` settings (asserted in
//! `tests/adapt_determinism.rs`).
//!
//! **Clock domains.** Drift detection and refresh run in *window-index*
//! time (the ingestion clock); the fleet replay inside each chunk runs in
//! *simulated* milliseconds (the DES clock). A refresh takes effect at
//! the next chunk boundary, never mid-flight — matching a fleet where new
//! calibration is pushed between reporting rounds.

use hec_anomaly::{PageHinkley, PageHinkleyConfig, SlidingReservoir};
use hec_bandit::{ContextScaler, DelaySource, PolicyTrainer, RewardModel, TrainConfig};
use hec_data::{LabeledWindow, OnlineStandardizer};

use crate::experiment::Experiment;
use crate::replay::{replay_scenario, replay_trace_sharded};
use crate::scheme::SchemeKind;

/// Configuration of one adaptive (or deliberately frozen) streaming run.
#[derive(Debug, Clone)]
pub struct AdaptConfig {
    /// Windows per chunk (refresh granularity; the routing table is
    /// fixed within a chunk).
    pub chunk: usize,
    /// Fleet shards for the chunk replay (part of the simulated physics,
    /// see [`crate::replay::replay_trace_sharded`]).
    pub shards: usize,
    /// Page–Hinkley parameters for the layer-0 score stream.
    pub drift: PageHinkleyConfig,
    /// Capacity of the raw-window reservoir feeding refreshes.
    pub reservoir: usize,
    /// Minimum chunks between two refreshes (alarm rate limiter).
    pub min_refresh_gap: usize,
    /// Refit the standardizer from the reservoir on alarm.
    pub refresh_standardizer: bool,
    /// Recalibrate detector scorers/thresholds on alarm.
    pub recalibrate_detectors: bool,
    /// Apply buffered policy updates at every chunk boundary.
    pub refresh_policy: bool,
    /// Hyper-parameters of the continual policy trainer (learning rate,
    /// entropy regularisation, sampling seed). Ignored when
    /// [`AdaptConfig::refresh_policy`] is `false`.
    pub policy_train: TrainConfig,
    /// Telemetry label distinguishing runs (e.g. `"frozen"` /
    /// `"adaptive"`).
    pub label: String,
}

impl AdaptConfig {
    /// A fully frozen pipeline: same chunked replay and drift *detection*
    /// (so both arms report the same statistic stream), but no refresh of
    /// any kind — the paper's offline regime, used as the comparison
    /// baseline.
    pub fn frozen(chunk: usize, shards: usize) -> Self {
        Self {
            chunk,
            shards,
            drift: PageHinkleyConfig::default(),
            // One chunk: at detection time (the chunk after a step
            // onset) the reservoir then holds only post-shift windows,
            // so the refit lands on the new regime instead of halfway
            // between the old and new ones.
            reservoir: chunk,
            min_refresh_gap: 2,
            refresh_standardizer: false,
            recalibrate_detectors: false,
            refresh_policy: false,
            policy_train: TrainConfig::default(),
            label: "frozen".into(),
        }
    }

    /// The full adaptive pipeline: standardizer refit + detector
    /// recalibration on alarm, continual policy refresh every chunk.
    pub fn adaptive(chunk: usize, shards: usize) -> Self {
        Self {
            refresh_standardizer: true,
            recalibrate_detectors: true,
            refresh_policy: true,
            policy_train: TrainConfig {
                learning_rate: 5e-3,
                entropy_beta: 0.02,
                ..TrainConfig::default()
            },
            label: "adaptive".into(),
            ..Self::frozen(chunk, shards)
        }
    }

    fn validate(&self) {
        assert!(self.chunk > 0, "chunk size must be positive");
        assert!(self.shards > 0, "need at least one fleet shard");
        assert!(self.reservoir > 0, "reservoir capacity must be positive");
    }
}

/// Per-chunk outcome of the streaming loop.
#[derive(Debug, Clone, PartialEq)]
pub struct ChunkStats {
    /// Chunk index (0-based, ingestion order).
    pub index: usize,
    /// Windows in this chunk.
    pub windows: usize,
    /// Detection F1 over the chunk's served windows.
    pub f1: f64,
    /// Detection accuracy over the chunk's served windows.
    pub accuracy: f64,
    /// `100 × mean(accuracy − cost)` over the chunk's routed windows,
    /// at observed load-dependent delays (drops pay the drop penalty).
    pub mean_reward_x100: f64,
    /// Page–Hinkley statistic after the chunk's last window.
    pub drift_statistic: f64,
    /// Whether the drift detector alarmed during this chunk.
    pub drift_alarm: bool,
    /// Whether a refresh (standardizer and/or recalibration) executed at
    /// this chunk's boundary.
    pub refreshed: bool,
    /// Buffered policy observations applied at this chunk's boundary.
    pub policy_updates: usize,
    /// The layer-0 logPD threshold in force *after* this chunk (moves
    /// when recalibration fires).
    pub threshold_iot: f32,
}

/// Result of one [`run_adaptive_stream`] call.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptReport {
    /// The run's telemetry label (from [`AdaptConfig::label`]).
    pub label: String,
    /// Per-chunk statistics, in stream order.
    pub chunks: Vec<ChunkStats>,
    /// Chunk indices where the drift detector alarmed.
    pub detections: Vec<usize>,
    /// Chunk indices where a refresh executed.
    pub refreshes: Vec<usize>,
    /// Total windows streamed.
    pub total_windows: usize,
}

impl AdaptReport {
    /// Recovery metrics relative to a known drift onset (the injection
    /// harness knows where it put the drift; deployment would use the
    /// first detection instead).
    ///
    /// The pre-onset chunks establish baseline F1 and reward; recovery is
    /// the number of post-onset chunks until F1 first returns to within
    /// `epsilon` of baseline (`None` if it never does).
    ///
    /// # Panics
    ///
    /// Panics if `onset_chunk` is 0 or ≥ the chunk count (no baseline or
    /// no post-drift region to score).
    pub fn recovery(&self, onset_chunk: usize, epsilon: f64) -> RecoveryStats {
        assert!(
            onset_chunk > 0 && onset_chunk < self.chunks.len(),
            "onset chunk {onset_chunk} leaves no pre- or post-drift region in {} chunks",
            self.chunks.len()
        );
        let (pre, post) = self.chunks.split_at(onset_chunk);
        let mean = |xs: &[ChunkStats], f: fn(&ChunkStats) -> f64| {
            xs.iter().map(f).sum::<f64>() / xs.len() as f64
        };
        let baseline_f1 = mean(pre, |c| c.f1);
        let baseline_reward = mean(pre, |c| c.mean_reward_x100);
        let recovery_chunks = post.iter().position(|c| c.f1 >= baseline_f1 - epsilon);
        // Reward foregone post-onset vs the pre-drift baseline, in
        // absolute reward units (the per-window mean is `x100`).
        let cumulative_reward_loss = post
            .iter()
            .map(|c| (baseline_reward - c.mean_reward_x100).max(0.0) * c.windows as f64 / 100.0)
            .sum();
        RecoveryStats {
            baseline_f1,
            baseline_reward_x100: baseline_reward,
            recovery_chunks,
            cumulative_reward_loss,
            post_f1: mean(post, |c| c.f1),
            post_reward_x100: mean(post, |c| c.mean_reward_x100),
        }
    }
}

/// Recovery metrics of one run relative to a drift onset
/// (see [`AdaptReport::recovery`]).
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryStats {
    /// Mean F1 over the pre-onset chunks.
    pub baseline_f1: f64,
    /// Mean reward (×100) over the pre-onset chunks.
    pub baseline_reward_x100: f64,
    /// Post-onset chunks until F1 returned to within ε of baseline
    /// (`Some(0)` = the first post-onset chunk already held), `None` if
    /// it never recovered within the stream.
    pub recovery_chunks: Option<usize>,
    /// Total reward foregone post-onset vs baseline, in absolute reward
    /// units (never negative; chunks above baseline contribute 0).
    pub cumulative_reward_loss: f64,
    /// Mean F1 over the post-onset chunks.
    pub post_f1: f64,
    /// Mean reward (×100) over the post-onset chunks.
    pub post_reward_x100: f64,
}

/// Streams raw (unstandardised) windows through the experiment's
/// pipeline in chunks, detecting drift and — per `config` — refreshing
/// the standardizer, the detector calibration and the policy in-fleet.
/// See the module docs for the loop structure.
///
/// `trainer` owns the routing policy (frozen runs never update it, so
/// one trainer can serve a frozen run and then an adaptive run on the
/// same weights); `scaler` is the context scaler the policy was trained
/// with.
///
/// Deterministic: same inputs ⇒ a byte-identical [`AdaptReport`], across
/// reruns and `HEC_THREADS`.
///
/// # Panics
///
/// Panics if `stream` is empty, if the config is invalid, or if the
/// windows' shape does not match the experiment's dataset.
pub fn run_adaptive_stream(
    exp: &mut Experiment,
    trainer: &mut PolicyTrainer,
    scaler: &ContextScaler,
    stream: &[LabeledWindow],
    config: &AdaptConfig,
) -> AdaptReport {
    assert!(!stream.is_empty(), "cannot adapt over an empty stream");
    config.validate();
    let _span = hec_telemetry::WallSpan::new("core.adapt");

    let kind = exp.config().dataset.kind();
    let payload = exp.config().payload_bytes();
    let reward = RewardModel::new(kind.paper_alpha());
    let delays = exp.static_delays();

    let mut ph = PageHinkley::new(config.drift);
    let mut reservoir: SlidingReservoir<LabeledWindow> = SlidingReservoir::new(config.reservoir);
    let mut chunks = Vec::with_capacity(stream.len().div_ceil(config.chunk));
    let mut detections = Vec::new();
    let mut refreshes = Vec::new();
    let mut last_refresh: Option<usize> = None;

    for (index, raw) in stream.chunks(config.chunk).enumerate() {
        for w in raw {
            reservoir.push(w.clone());
        }

        // Replay the chunk through the sharded fleet under the current
        // calibration and the current greedy routing table.
        let standardized = exp.standardize_windows(raw);
        let oracle = exp.oracle_over(&standardized);
        let scenario = replay_scenario(kind, payload, raw.len() as u64);
        let result = replay_trace_sharded(
            &scenario,
            &oracle,
            SchemeKind::Adaptive,
            Some(trainer.policy_mut()),
            Some(scaler),
            &reward,
            config.shards,
        );

        // Drift detection on the layer-0 anomalous-fraction stream.
        let mut drift_alarm = false;
        for outcome in &oracle.outcomes {
            if ph.observe(outcome.anomalous_fraction[0]) {
                drift_alarm = true;
            }
        }
        if drift_alarm {
            detections.push(index);
        }

        // Two-stage refresh on alarm, rate-limited.
        let gap_ok = last_refresh.is_none_or(|c| index - c >= config.min_refresh_gap);
        let want_refresh = config.refresh_standardizer || config.recalibrate_detectors;
        let mut refreshed = false;
        if drift_alarm && gap_ok && want_refresh {
            if config.refresh_standardizer {
                let mut online = OnlineStandardizer::new(exp.standardizer().channels());
                for w in reservoir.iter() {
                    online.update(&w.data);
                }
                exp.set_standardizer(online.freeze());
                refreshed = true;
            }
            if config.recalibrate_detectors {
                // Self-label the reservoir under the *new* standardizer:
                // keep what the cloud-tier model still deems normal
                // (ground truth is unavailable in deployment).
                let raw_reservoir: Vec<LabeledWindow> = reservoir.iter().cloned().collect();
                let std_reservoir = exp.standardize_windows(&raw_reservoir);
                let reservoir_oracle = exp.oracle_over(&std_reservoir);
                let normals: Vec<LabeledWindow> = std_reservoir
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| !reservoir_oracle.verdict(*i, 2))
                    .map(|(_, w)| LabeledWindow::new(w.data.clone(), false))
                    .collect();
                if !normals.is_empty() && exp.recalibrate_detectors(&normals).is_ok() {
                    refreshed = true;
                }
            }
            if refreshed {
                ph.reset();
                last_refresh = Some(index);
                refreshes.push(index);
            }
        }

        // Continual policy tracking: shadow the chunk with sampled
        // actions against the static delay ladder, apply between chunks.
        let mut policy_updates = 0;
        if config.refresh_policy {
            for (i, outcome) in oracle.outcomes.iter().enumerate() {
                let context = scaler.transform(&outcome.context);
                let action = trainer.sample_action(&context);
                let delay = delays.delay_ms(i, action).expect("static delays never drop");
                let r = reward.reward(oracle.correct(i, action), delay) as f32;
                trainer.buffer(context, action, r);
            }
            policy_updates = trainer.refresh();
        }

        chunks.push(ChunkStats {
            index,
            windows: raw.len(),
            f1: result.f1(),
            accuracy: result.accuracy(),
            mean_reward_x100: result.mean_reward_x100,
            drift_statistic: ph.statistic(),
            drift_alarm,
            refreshed,
            policy_updates,
            threshold_iot: exp.thresholds()[0],
        });
    }

    if hec_telemetry::ENABLED {
        let labels: &[(&'static str, &str)] = &[("pipeline", &config.label)];
        hec_telemetry::counter_add("drift.detections", labels, detections.len() as u64);
        hec_telemetry::counter_add("adapt.refreshes", labels, refreshes.len() as u64);
        hec_telemetry::counter_add(
            "adapt.policy_updates",
            labels,
            chunks.iter().map(|c| c.policy_updates as u64).sum(),
        );
        hec_telemetry::gauge_set("adapt.chunks", labels, chunks.len() as f64);
    }

    AdaptReport {
        label: config.label.clone(),
        chunks,
        detections,
        refreshes,
        total_windows: stream.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{DatasetConfig, Experiment, ExperimentConfig};
    use hec_data::power::{PowerConfig, PowerGenerator};
    use hec_data::{DatasetSource, DriftKind, DriftSchedule};

    fn tiny_config(seed: u64) -> ExperimentConfig {
        ExperimentConfig {
            dataset: DatasetConfig::Univariate(PowerConfig {
                days: 120,
                samples_per_day: 24,
                anomaly_rate: 0.15,
                noise_std: 0.03,
                seed: 7,
            }),
            ad_epochs: 60,
            policy: hec_bandit::TrainConfig {
                epochs: 10,
                learning_rate: 2e-3,
                ..Default::default()
            },
            seq2seq_hidden: 8,
            policy_hidden: 16,
            seed,
        }
    }

    /// A prepared experiment plus a drift-injected raw stream.
    fn fixture() -> (Experiment, PolicyTrainer, ContextScaler, Vec<LabeledWindow>) {
        let mut exp = Experiment::prepare(tiny_config(7));
        exp.train_detectors();
        let policy_corpus = exp.split.policy_train.clone();
        let policy_oracle = exp.oracle_over(&policy_corpus);
        let (policy, scaler, _curve) = exp.train_policy(&policy_oracle);
        let trainer = PolicyTrainer::new(
            policy,
            hec_bandit::TrainConfig {
                learning_rate: 5e-3,
                entropy_beta: 0.02,
                ..Default::default()
            },
        );

        // A fresh raw corpus (different generator seed), drifted mid-way.
        let base = PowerGenerator::new(PowerConfig {
            days: 120,
            samples_per_day: 24,
            anomaly_rate: 0.15,
            noise_std: 0.03,
            seed: 11,
        })
        .load()
        .unwrap();
        let mut moments = OnlineStandardizer::new(1);
        for w in &base.windows {
            moments.update(&w.data);
        }
        let sigma = moments.freeze().std()[0];
        let drift =
            DriftSchedule { kind: DriftKind::Step, onset: 60, level: 1.5 * sigma, scale: 0.2 };
        let stream = drift.apply(&base).windows;
        (exp, trainer, scaler, stream)
    }

    #[test]
    fn frozen_run_detects_but_never_refreshes() {
        let (mut exp, mut trainer, scaler, stream) = fixture();
        let mut config = AdaptConfig::frozen(20, 2);
        config.drift.min_samples = 20;
        let report = run_adaptive_stream(&mut exp, &mut trainer, &scaler, &stream, &config);
        assert_eq!(report.total_windows, stream.len());
        assert_eq!(report.chunks.len(), stream.len().div_ceil(20));
        assert!(report.refreshes.is_empty(), "frozen must never refresh");
        assert!(report.chunks.iter().all(|c| c.policy_updates == 0));
        assert!(
            !report.detections.is_empty(),
            "a 1.5σ step must trip the drift detector: {report:?}"
        );
        // Detection must be post-onset (window 60 ⇒ chunk 3+).
        assert!(report.detections[0] >= 3, "detections: {:?}", report.detections);
        // Thresholds never move in a frozen run.
        let t0 = report.chunks[0].threshold_iot;
        assert!(report.chunks.iter().all(|c| c.threshold_iot == t0));
    }

    #[test]
    fn adaptive_run_refreshes_after_detection() {
        let (mut exp, mut trainer, scaler, stream) = fixture();
        let mut config = AdaptConfig::adaptive(20, 2);
        config.drift.min_samples = 20;
        let report = run_adaptive_stream(&mut exp, &mut trainer, &scaler, &stream, &config);
        assert!(!report.detections.is_empty());
        assert!(!report.refreshes.is_empty(), "adaptive must refresh on alarm: {report:?}");
        assert!(report.refreshes[0] >= report.detections[0]);
        assert!(report.chunks.iter().any(|c| c.policy_updates > 0));
        // Refresh must move the layer-0 threshold (recalibration) at the
        // refresh chunk.
        let refresh_chunk = report.refreshes[0];
        if refresh_chunk > 0 {
            let before = report.chunks[refresh_chunk - 1].threshold_iot;
            let after = report.chunks[refresh_chunk].threshold_iot;
            assert_ne!(before, after, "recalibration must re-estimate the threshold");
        }
    }

    #[test]
    fn adaptive_recovers_better_than_frozen() {
        let (mut exp_f, mut trainer_f, scaler, stream) = fixture();
        let mut frozen_cfg = AdaptConfig::frozen(20, 2);
        frozen_cfg.drift.min_samples = 20;
        let frozen = run_adaptive_stream(&mut exp_f, &mut trainer_f, &scaler, &stream, &frozen_cfg);

        let (mut exp_a, mut trainer_a, scaler_a, stream_a) = fixture();
        let mut adaptive_cfg = AdaptConfig::adaptive(20, 2);
        adaptive_cfg.drift.min_samples = 20;
        let adaptive =
            run_adaptive_stream(&mut exp_a, &mut trainer_a, &scaler_a, &stream_a, &adaptive_cfg);

        // Onset at window 60 / chunk 3.
        let fr = frozen.recovery(3, 0.05);
        let ar = adaptive.recovery(3, 0.05);
        // Same pre-drift pipeline ⇒ same baseline.
        assert_eq!(fr.baseline_f1, ar.baseline_f1);
        assert!(
            ar.post_f1 >= fr.post_f1,
            "adaptive post-drift F1 {:.3} must not trail frozen {:.3}",
            ar.post_f1,
            fr.post_f1
        );
    }

    #[test]
    fn recovery_stats_are_sane() {
        let (mut exp, mut trainer, scaler, stream) = fixture();
        let mut config = AdaptConfig::frozen(20, 2);
        config.drift.min_samples = 20;
        let report = run_adaptive_stream(&mut exp, &mut trainer, &scaler, &stream, &config);
        let r = report.recovery(3, 0.05);
        assert!((0.0..=1.0).contains(&r.baseline_f1));
        assert!(r.cumulative_reward_loss >= 0.0);
        if let Some(k) = r.recovery_chunks {
            assert!(k < report.chunks.len());
        }
    }

    #[test]
    #[should_panic(expected = "empty stream")]
    fn empty_stream_is_rejected() {
        let (mut exp, mut trainer, scaler, _stream) = fixture();
        let config = AdaptConfig::frozen(20, 2);
        run_adaptive_stream(&mut exp, &mut trainer, &scaler, &[], &config);
    }
}
