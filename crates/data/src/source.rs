//! A unified source abstraction over synthetic generators and file-backed
//! real traces.
//!
//! Every dataset the pipeline can score — the synthetic [`crate::power`] /
//! [`crate::mhealth`] generators and (behind the `real-data` feature) the
//! [`crate::ingest`] CSV/NDJSON trace loaders — produces the same shape:
//! a [`LabeledCorpus`] of windows plus per-window anomaly-class ids, which
//! is exactly what [`crate::paper_split`] consumes. [`DatasetSource`]
//! abstracts over *where* that corpus comes from, so the experiment
//! pipeline is agnostic to synthetic vs real data.

use crate::mhealth::MhealthGenerator;
use crate::power::PowerGenerator;
use crate::window::LabeledWindow;

/// A labelled corpus plus per-window anomaly-class ids — the input shape
/// of [`crate::paper_split`] (`None` = normal, `Some(c)` = anomaly class
/// `c`, stratified for the paper's "5 % of each class" sampling).
#[derive(Debug, Clone)]
pub struct LabeledCorpus {
    /// The windows, in corpus order.
    pub windows: Vec<LabeledWindow>,
    /// Per-window anomaly class (`None` = normal), parallel to `windows`.
    pub classes: Vec<Option<usize>>,
}

impl LabeledCorpus {
    /// Bundles windows with their class ids.
    ///
    /// # Panics
    ///
    /// Panics if the vectors' lengths differ, or if any window's
    /// anomaly label disagrees with its class id (`Some` ⇔ anomalous) —
    /// a source adapter bug, not a data defect.
    pub fn new(windows: Vec<LabeledWindow>, classes: Vec<Option<usize>>) -> Self {
        assert_eq!(windows.len(), classes.len(), "windows and classes must be parallel");
        for (i, (w, c)) in windows.iter().zip(classes.iter()).enumerate() {
            assert_eq!(w.anomalous, c.is_some(), "window {i}: anomaly label and class id disagree");
        }
        Self { windows, classes }
    }

    /// Number of windows.
    pub fn len(&self) -> usize {
        self.windows.len()
    }

    /// Whether the corpus holds no windows.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// Windows labelled normal.
    pub fn normal_count(&self) -> usize {
        self.classes.iter().filter(|c| c.is_none()).count()
    }

    /// Windows per anomaly class, as sorted `(class, count)` pairs.
    pub fn class_counts(&self) -> Vec<(usize, usize)> {
        let mut counts = std::collections::BTreeMap::new();
        for c in self.classes.iter().flatten() {
            *counts.entry(*c).or_insert(0usize) += 1;
        }
        counts.into_iter().collect()
    }
}

/// An error raised while loading a dataset from a source.
///
/// File-backed sources report the **1-based line number** of the offending
/// record wherever one exists, so a malformed trace points straight at the
/// line to fix. Synthetic sources never fail.
#[derive(Debug)]
pub enum IngestError {
    /// The trace could not be read (open failure, disk error, bad UTF-8).
    /// `line` is the last successfully read line (0 = open failure).
    Io {
        /// Logical name of the trace being read.
        name: String,
        /// Last line successfully read before the failure.
        line: u64,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// A malformed line: unparseable field, invalid JSON, wrong arity.
    Parse {
        /// 1-based line number of the malformed line.
        line: u64,
        /// What was wrong.
        message: String,
    },
    /// A missing or non-finite sample the active
    /// [`MissingValuePolicy`](crate::ingest::MissingValuePolicy) rejects.
    Missing {
        /// 1-based line number of the offending sample.
        line: u64,
        /// What was missing and why the policy could not resolve it.
        message: String,
    },
    /// A structurally valid record that violates the dataset schema
    /// (label out of range, inconsistent day label, …).
    Schema {
        /// 1-based line number of the offending record.
        line: u64,
        /// The schema rule that was violated.
        message: String,
    },
}

impl IngestError {
    /// The 1-based line number the error points at (0 = before line 1).
    pub fn line(&self) -> u64 {
        match self {
            IngestError::Io { line, .. }
            | IngestError::Parse { line, .. }
            | IngestError::Missing { line, .. }
            | IngestError::Schema { line, .. } => *line,
        }
    }
}

impl std::fmt::Display for IngestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IngestError::Io { name, line, source } => {
                write!(f, "{name}: I/O error after line {line}: {source}")
            }
            IngestError::Parse { line, message } => write!(f, "line {line}: {message}"),
            IngestError::Missing { line, message } => write!(f, "line {line}: {message}"),
            IngestError::Schema { line, message } => write!(f, "line {line}: {message}"),
        }
    }
}

impl std::error::Error for IngestError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IngestError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// A dataset the pipeline can load and score: synthetic generator or
/// file-backed trace, behind one interface.
pub trait DatasetSource {
    /// Human-readable source name (used in reports; must be stable so
    /// repro output stays byte-identical).
    fn name(&self) -> String;

    /// Number of sensor channels every window carries.
    fn channels(&self) -> usize;

    /// Loads (or synthesises) the corpus.
    fn load(&self) -> Result<LabeledCorpus, IngestError>;
}

impl DatasetSource for PowerGenerator {
    fn name(&self) -> String {
        format!("synthetic-power(days={})", self.config().days)
    }

    fn channels(&self) -> usize {
        1
    }

    fn load(&self) -> Result<LabeledCorpus, IngestError> {
        let days = self.generate();
        let classes = days.iter().map(|(_, k)| k.map(|kind| kind.class_index())).collect();
        let windows = days.into_iter().map(|(w, _)| w).collect();
        Ok(LabeledCorpus::new(windows, classes))
    }
}

impl DatasetSource for MhealthGenerator {
    fn name(&self) -> String {
        format!("synthetic-mhealth(subjects={})", self.config().subjects)
    }

    fn channels(&self) -> usize {
        crate::mhealth::CHANNELS
    }

    fn load(&self) -> Result<LabeledCorpus, IngestError> {
        let pairs = self.generate();
        let classes =
            pairs.iter().map(|(_, a)| if a.is_normal() { None } else { Some(a.index()) }).collect();
        let windows = pairs.into_iter().map(|(w, _)| w).collect();
        Ok(LabeledCorpus::new(windows, classes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mhealth::MhealthConfig;
    use crate::power::PowerConfig;
    use hec_tensor::Matrix;

    #[test]
    fn power_generator_is_a_source() {
        let gen = PowerGenerator::new(PowerConfig { days: 30, ..Default::default() });
        assert_eq!(gen.channels(), 1);
        assert!(gen.name().contains("synthetic-power"));
        let corpus = gen.load().unwrap();
        assert_eq!(corpus.len(), 30);
        let class_total: usize = corpus.class_counts().iter().map(|(_, n)| n).sum();
        assert_eq!(corpus.normal_count() + class_total, 30, "every window is normal or classed");
        assert!(corpus.normal_count() > 0 && class_total > 0, "default rate mixes both kinds");
        // Source output matches the generator's direct output exactly.
        let direct = gen.generate();
        for ((w, k), (cw, cc)) in
            direct.iter().zip(corpus.windows.iter().zip(corpus.classes.iter()))
        {
            assert_eq!(&w.data, &cw.data);
            assert_eq!(k.map(|kind| kind.class_index()), *cc);
        }
    }

    #[test]
    fn mhealth_generator_is_a_source() {
        let gen = MhealthGenerator::new(MhealthConfig {
            subjects: 2,
            session_len: 256,
            normal_session_multiplier: 2,
            ..Default::default()
        });
        assert_eq!(gen.channels(), 18);
        let corpus = gen.load().unwrap();
        assert!(!corpus.is_empty());
        assert!(corpus.normal_count() > 0);
        // 11 anomalous activities.
        assert_eq!(corpus.class_counts().len(), 11);
    }

    #[test]
    fn class_counts_aggregate() {
        let w = |a: bool| LabeledWindow::new(Matrix::zeros(2, 1), a);
        let corpus = LabeledCorpus::new(
            vec![w(false), w(true), w(true), w(true)],
            vec![None, Some(0), Some(2), Some(2)],
        );
        assert_eq!(corpus.normal_count(), 1);
        assert_eq!(corpus.class_counts(), vec![(0, 1), (2, 2)]);
    }

    #[test]
    #[should_panic(expected = "disagree")]
    fn inconsistent_labels_rejected() {
        let w = LabeledWindow::new(Matrix::zeros(2, 1), true);
        let _ = LabeledCorpus::new(vec![w], vec![None]);
    }

    #[test]
    fn error_display_carries_line_numbers() {
        let e = IngestError::Parse { line: 17, message: "expected 2 fields, got 3".into() };
        assert_eq!(e.to_string(), "line 17: expected 2 fields, got 3");
        assert_eq!(e.line(), 17);
        let io = IngestError::Io {
            name: "trace.csv".into(),
            line: 4,
            source: std::io::Error::new(std::io::ErrorKind::InvalidData, "bad utf-8"),
        };
        assert!(io.to_string().contains("after line 4"), "{io}");
    }
}
