//! Loss functions.

use hec_tensor::Matrix;

/// A differentiable loss over a batch of predictions.
pub trait Loss {
    /// Scalar loss value.
    fn value(&self, prediction: &Matrix, target: &Matrix) -> f32;

    /// Gradient `∂L/∂prediction`, same shape as `prediction`.
    fn gradient(&self, prediction: &Matrix, target: &Matrix) -> Matrix;
}

/// Mean squared error over all elements — the paper's reconstruction loss
/// ("minimize the mean squared reconstruction error", §II-A2).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Mse;

impl Loss for Mse {
    fn value(&self, prediction: &Matrix, target: &Matrix) -> f32 {
        let diff = prediction - target;
        diff.frobenius_norm_sq() / prediction.len() as f32
    }

    fn gradient(&self, prediction: &Matrix, target: &Matrix) -> Matrix {
        let scale = 2.0 / prediction.len() as f32;
        (prediction - target).scale(scale)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_zero_on_match() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        assert_eq!(Mse.value(&a, &a), 0.0);
    }

    #[test]
    fn mse_known_value() {
        let p = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let t = Matrix::zeros(2, 2);
        // (1+4+9+16)/4 = 7.5
        assert!((Mse.value(&p, &t) - 7.5).abs() < 1e-6);
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let p = Matrix::from_rows(&[&[0.5, -1.0], &[2.0, 0.0]]);
        let t = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 1.0]]);
        let g = Mse.gradient(&p, &t);
        let eps = 1e-3f32;
        for i in 0..4 {
            let mut pp = p.clone();
            pp.as_mut_slice()[i] += eps;
            let mut pm = p.clone();
            pm.as_mut_slice()[i] -= eps;
            let numeric = (Mse.value(&pp, &t) - Mse.value(&pm, &t)) / (2.0 * eps);
            assert!(
                (g.as_slice()[i] - numeric).abs() < 1e-3,
                "elem {i}: {} vs {numeric}",
                g.as_slice()[i]
            );
        }
    }

    #[test]
    fn gradient_is_zero_at_minimum() {
        let a = Matrix::from_rows(&[&[3.0, -2.0]]);
        let g = Mse.gradient(&a, &a);
        assert!(g.as_slice().iter().all(|&x| x == 0.0));
    }
}
