//! Runs the named discrete-event **fleet scenarios** — light_load,
//! edge_saturated, cloud_link_constrained, flash_crowd — streaming the
//! whole device fleet's windows through the 3-layer hierarchy with
//! per-layer queueing, bandwidth-shared links and admission control, and
//! reports load-dependent latency distributions, utilization and drop
//! rates per layer.
//!
//! `HEC_PROFILE=full` (the default) runs ≥100k devices / ≥1M windows per
//! scenario; `quick` runs the same rates at 1/50 scale. `--devices`,
//! `--windows` and `--shards` scale further: the 1M-device / 10M-window
//! tier is `--devices 1000000 --shards 8`, sharding the fleet across
//! `HEC_THREADS` workers through `hec_core::sharded`. Everything on
//! stdout is deterministic — the same (profile, devices, windows, shards)
//! setting produces byte-identical output on any host and under any
//! `HEC_THREADS` value, which the CI smoke jobs enforce by diffing runs
//! (timing goes to stderr). `--shards 1` (the default) is the serial
//! engine, byte-identical to the pre-sharding binary.
//!
//! ```text
//! cargo run --release -p hec-bench --bin repro_fleet -- [out_dir] \
//!     [--stream] [--devices N] [--windows N] [--shards N]
//! ```
//!
//! With `out_dir`, per-layer and queue-trace CSVs are written there. With
//! `--stream`, the evaluation corpus is additionally streamed through a
//! mid-load fleet under all five schemes (closed loop: the trained
//! bandit's actions shape the queueing), printing accuracy/F1 next to the
//! load-dependent delays.

use std::str::FromStr;
use std::time::Instant;

use hec_bandit::RewardModel;
use hec_bench::{univariate_config, Profile};
use hec_core::sharded::run_scenario_sharded;
use hec_core::stream::{fleet_stream_csv, stream_through_fleet, FleetStreamResult};
use hec_core::{Experiment, SchemeKind};
use hec_sim::fleet::{CohortSpec, FleetScale, FleetScenario, RoutePlan};
use hec_sim::DatasetKind;

/// Counting global allocator, so `AllocPhase` deltas recorded by the
/// instrumented library layers are real in this binary.
#[cfg(feature = "telemetry")]
#[global_allocator]
static GLOBAL_ALLOC: hec_telemetry::CountingAlloc = hec_telemetry::CountingAlloc;

const USAGE: &str = "\
usage: repro_fleet [out_dir] [--stream] [--devices N] [--windows N] [--shards N]
                   [--telemetry DIR]

Runs the named discrete-event fleet scenarios and prints deterministic,
byte-stable reports on stdout (timing goes to stderr).

  out_dir        write per-layer and queue-trace CSVs here
  --stream       additionally stream the evaluation corpus through a
                 mid-load fleet under all five schemes (closed loop)
  --devices N    scale every scenario to ~N total devices; emission
                 periods and the virtual horizon stretch by the same
                 factor, preserving every offered-load rate
                 (env fallback: HEC_DEVICES)
  --windows N    windows emitted per device (default: the scenario's
                 own, 10; total windows = devices x N)
                 (env fallback: HEC_WINDOWS)
  --shards N     partition each fleet into N independent shards driven
                 in parallel on HEC_THREADS workers; N=1 (default) is
                 the serial engine (env fallback: HEC_SHARDS)
  --telemetry DIR  capture the metric registry and virtual-clock span
                 trace and write telemetry_snapshot.{txt,ndjson} and
                 trace.json (Perfetto-loadable) into DIR; the files are
                 byte-identical across reruns and HEC_THREADS values
  --help         print this help

HEC_PROFILE=full|quick selects the base scale (default: full). For a
fixed (profile, devices, windows, shards) setting, stdout and the CSVs
are byte-identical across reruns and across HEC_THREADS values.
";

fn scale_of(profile: Profile) -> FleetScale {
    match profile {
        Profile::Quick => FleetScale::Quick,
        Profile::Full => FleetScale::Full,
    }
}

/// Parses an env var as a flag fallback; unparsable values are rejected
/// just like bad flag values, so a typo can't silently run the default.
fn env_override<T: FromStr>(key: &str) -> Option<T> {
    let raw = std::env::var(key).ok()?;
    match raw.trim().parse() {
        Ok(v) => Some(v),
        Err(_) => {
            eprintln!("repro_fleet: cannot parse {key}={raw:?}");
            std::process::exit(2);
        }
    }
}

fn parse_value<T: FromStr>(value: Option<String>, flag: &str) -> T {
    let Some(raw) = value else {
        eprintln!("repro_fleet: {flag} needs a value\n\n{USAGE}");
        std::process::exit(2);
    };
    match raw.trim().parse() {
        Ok(v) => v,
        Err(_) => {
            eprintln!("repro_fleet: cannot parse {flag} value {raw:?}");
            std::process::exit(2);
        }
    }
}

fn main() {
    let mut out_dir: Option<String> = None;
    let mut with_stream = false;
    let mut devices: Option<u64> = env_override("HEC_DEVICES");
    let mut windows: Option<u32> = env_override("HEC_WINDOWS");
    let mut shards: Option<usize> = env_override("HEC_SHARDS");
    let mut telemetry_dir: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--help" | "-h" => {
                print!("{USAGE}");
                return;
            }
            "--stream" => with_stream = true,
            "--devices" => devices = Some(parse_value(args.next(), "--devices")),
            "--windows" => windows = Some(parse_value(args.next(), "--windows")),
            "--shards" => shards = Some(parse_value(args.next(), "--shards")),
            "--telemetry" => telemetry_dir = Some(parse_value(args.next(), "--telemetry")),
            _ if arg.starts_with('-') || out_dir.is_some() => {
                eprintln!("repro_fleet: unexpected argument {arg:?}\n\n{USAGE}");
                std::process::exit(2);
            }
            _ => out_dir = Some(arg),
        }
    }
    let shards = shards.unwrap_or(1);
    if shards == 0 || devices == Some(0) || windows == Some(0) {
        eprintln!("repro_fleet: --devices/--windows/--shards must be at least 1");
        std::process::exit(2);
    }

    hec_bench::telemetry::init("repro_fleet", telemetry_dir.as_deref());
    let mut bench_metrics: Vec<(String, f64)> = Vec::new();

    let profile = Profile::from_env();
    let scale = scale_of(profile);
    println!("== repro_fleet (profile: {profile:?}) ==\n");
    // Deterministic banner for non-default tiers only, so the default
    // invocation stays byte-identical to the pre-sharding recordings.
    if devices.is_some() || windows.is_some() || shards > 1 {
        let dev = devices.map_or_else(|| "scenario".into(), |d| d.to_string());
        let win = windows.map_or_else(|| "scenario".into(), |w| w.to_string());
        println!("-- scale tier: devices={dev} windows/device={win} shards={shards} --\n");
    }

    for name in FleetScenario::NAMES {
        let mut sc = FleetScenario::by_name(name, scale).expect("named scenario");
        if let Some(d) = devices {
            sc.scale_fleet(d as f64 / sc.total_devices() as f64);
        }
        if let Some(w) = windows {
            sc.set_windows_per_device(w);
        }
        let t0 = Instant::now();
        let run = run_scenario_sharded(&sc, shards);
        let wall = t0.elapsed().as_secs_f64();
        let report = &run.report;
        // Wall-clock throughput is machine-dependent: stderr only, so
        // stdout stays byte-identical across reruns.
        eprintln!(
            "[timing] {name}: {:.2} s wall, {:.2}M events/s, {:.2}M windows/s",
            wall,
            report.events as f64 / wall / 1e6,
            report.emitted as f64 / wall / 1e6
        );
        bench_metrics.push((format!("{name}.events_per_s"), report.events as f64 / wall));
        bench_metrics.push((format!("{name}.windows_per_s"), report.emitted as f64 / wall));
        if shards > 1 {
            let per_shard: Vec<String> =
                run.shard_events.iter().map(|&e| format!("{:.2}M", e as f64 / 1e6)).collect();
            eprintln!(
                "[timing] {name}: {} shards, per-shard events [{}], aggregate {:.2}M events/s",
                shards,
                per_shard.join(", "),
                report.events as f64 / wall / 1e6
            );
        }
        print!("{}", report.to_text());
        println!();
        if let Some(dir) = &out_dir {
            std::fs::create_dir_all(dir).expect("create output directory");
            let layers = format!("{dir}/fleet_{name}_layers.csv");
            std::fs::write(&layers, report.layers_csv()).expect("write layers CSV");
            let trace = format!("{dir}/fleet_{name}_trace.csv");
            std::fs::write(&trace, report.trace_csv()).expect("write trace CSV");
            println!("  wrote {layers} and {trace}\n");
        }
    }

    if with_stream {
        stream_schemes(profile, scale, out_dir.as_deref());
    }

    let metric_refs: Vec<(&str, f64)> =
        bench_metrics.iter().map(|(n, v)| (n.as_str(), *v)).collect();
    hec_bench::telemetry::write_bench_json("repro_fleet", &metric_refs);
    hec_bench::telemetry::dump("repro_fleet", telemetry_dir.as_deref());
}

/// Closed loop: train the univariate pipeline, then stream the evaluation
/// corpus from every device of a mid-load fleet under each scheme — the
/// policy's action distribution now determines which queues build up.
/// (The `--devices`/`--windows`/`--shards` tier applies to the named
/// scenarios above, not to this training-in-the-loop section.)
fn stream_schemes(profile: Profile, scale: FleetScale, out_dir: Option<&str>) {
    println!("-- closed-loop scheme streaming (fleet-loaded delays) --\n");
    let config = univariate_config(profile);
    let mut exp = Experiment::prepare(config);
    exp.train_detectors();
    let policy_corpus = exp.split.policy_train.clone();
    let policy_oracle = exp.oracle_over(&policy_corpus);
    let (mut policy, scaler, _) = exp.train_policy(&policy_oracle);
    let eval_corpus = exp.split.full.clone();
    let eval_oracle = exp.oracle_over(&eval_corpus);

    // A fleet hot enough that routing everything to one layer hurts:
    // ~1.3k windows/s offered against the edge's ~540/s and a 6 Mbit/s
    // cloud uplink (~2k windows/s of 384 B payloads). The same divisor
    // the named scenarios use keeps the rates identical at both scales.
    let s = scale.divisor();
    let mut sc = FleetScenario::light_load(scale);
    sc.name = "scheme_stream".into();
    sc.batch_max = 1;
    sc.cloud_bandwidth_mbps = Some(6.0);
    // RoutePlan is overridden by the scheme router.
    sc.cohorts = vec![CohortSpec::uniform(
        (100_000.0 / s) as u32,
        10,
        75_000.0 / s,
        0.0,
        RoutePlan::Fixed(0),
    )];

    let reward = RewardModel::new(DatasetKind::Univariate.paper_alpha());
    let results: Vec<FleetStreamResult> = SchemeKind::ALL
        .iter()
        .map(|&kind| match kind {
            SchemeKind::Adaptive => stream_through_fleet(
                &sc,
                &eval_oracle,
                kind,
                Some(&mut policy),
                Some(&scaler),
                &reward,
                None,
            ),
            _ => stream_through_fleet(&sc, &eval_oracle, kind, None, None, &reward, None),
        })
        .collect();

    for r in &results {
        println!(
            "{:<12} served={:<8} missed={:<8} acc={:.4} f1={:.4} reward={:<8.2} mean={:.2} ms \
             p99={:.2} ms",
            r.scheme.to_string(),
            r.fleet.served,
            r.missed,
            r.accuracy(),
            r.f1(),
            r.mean_reward_x100,
            r.fleet.overall_mean_ms,
            r.fleet.overall_p99_ms
        );
    }
    if let Some(dir) = out_dir {
        std::fs::create_dir_all(dir).expect("create output directory");
        let path = format!("{dir}/fleet_schemes.csv");
        std::fs::write(&path, fleet_stream_csv(&results)).expect("write scheme CSV");
        println!("\n  wrote {path}");
    }
}
