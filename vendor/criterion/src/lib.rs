//! Offline subset of the `criterion` bench API.
//!
//! Provides [`Criterion`], [`BenchmarkGroup`], [`Bencher`] and the
//! [`criterion_group!`]/[`criterion_main!`] macros, enough to compile and
//! run this workspace's four benches without crates.io access. Instead of
//! criterion's statistical machinery, each bench is timed with a simple
//! warmup + median-of-samples wall-clock measurement and one line is
//! printed per benchmark. Swap the path dependency for real `criterion`
//! to get rigorous statistics and HTML reports.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Entry point handed to bench functions.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 50, measurement_time: Duration::from_secs(1) }
    }
}

impl Criterion {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Sets the target total measurement time per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name, self.sample_size, self.measurement_time, f);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_owned(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            _parent: self,
        }
    }
}

/// A group of benchmarks sharing a name prefix and settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples for benches in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Sets the target total measurement time for benches in this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name);
        run_bench(&full, self.sample_size, self.measurement_time, f);
        self
    }

    /// Ends the group (kept for API compatibility; prints nothing extra).
    pub fn finish(self) {}
}

/// Times the closure passed to [`Bencher::iter`].
#[derive(Debug, Default)]
pub struct Bencher {
    samples_ns: Vec<f64>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Runs `f` repeatedly, recording one timing sample per batch.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        let iters = self.iters_per_sample.max(1);
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let elapsed = start.elapsed();
        self.samples_ns.push(elapsed.as_nanos() as f64 / iters as f64);
    }
}

fn run_bench<F>(name: &str, sample_size: usize, measurement_time: Duration, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // Calibration pass: find how many iterations fit a sample budget.
    let mut bencher = Bencher { samples_ns: Vec::new(), iters_per_sample: 1 };
    f(&mut bencher);
    let per_iter_ns = bencher.samples_ns.last().copied().unwrap_or(1.0).max(1.0);
    let budget_ns = measurement_time.as_nanos() as f64 / sample_size as f64;
    let iters = (budget_ns / per_iter_ns).clamp(1.0, 1e6) as u64;

    let mut bencher = Bencher { samples_ns: Vec::new(), iters_per_sample: iters };
    for _ in 0..sample_size {
        f(&mut bencher);
    }
    bencher.samples_ns.sort_by(|a, b| a.total_cmp(b));
    let median = bencher.samples_ns[bencher.samples_ns.len() / 2];
    println!("{name:<48} time: {} ({} samples x {} iters)", fmt_ns(median), sample_size, iters);
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:8.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:8.2} us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:8.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:8.2} s ", ns / 1_000_000_000.0)
    }
}

/// Declares a bench group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_times() {
        let mut c = Criterion::default();
        c.sample_size(5).measurement_time(Duration::from_millis(20));
        let mut runs = 0u64;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                runs += 1;
                black_box(runs)
            })
        });
        assert!(runs > 0);
    }

    #[test]
    fn groups_prefix_names_and_finish() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3).measurement_time(Duration::from_millis(10));
        group.bench_function("inner", |b| b.iter(|| black_box(1 + 1)));
        group.finish();
    }
}
