//! Int8 affine quantisation for the layer-0 inference path.
//!
//! The paper compresses the models deployed on the IoT device and edge
//! server (§III-B: trainable nodes removed, parameters quantized). This
//! module provides the *real* quantised representation behind that story:
//! [`QuantizedMatrix`] stores saturating i8 values plus affine
//! `(scale, zero_point)` parameters — per-tensor or per-row
//! ([`QuantScheme`]) — and multiplies through the integer kernels in
//! [`crate::kernel`] (`gemm_nn_i8`/`gemm_nt_i8`), dequantising through an
//! `_into` API that allocates nothing per call.
//!
//! # Scheme
//!
//! Real values map as `x ≈ scale · (q − zero_point)` with `q ∈ [−128, 127]`.
//! The calibration range is nudged to include zero (so exact zeros stay
//! exact) and `scale = (hi − lo) / 254`, which guarantees every in-range
//! value quantises with error at most `scale / 2` *without* engaging the
//! saturating clamp — the property the round-trip proptests pin down.
//! Constant and all-zero matrices fall back to `scale = 1, zero_point = 0`
//! so no NaN or zero scale is ever produced.
//!
//! # Determinism
//!
//! Quantisation is element-wise and the matmul accumulates i8×i8 products
//! in i32 — integer addition is associative, so quantised products are
//! bit-identical across reruns, `HEC_THREADS` settings, and accumulation
//! order changes. CI byte-diffs the quantised repro output on exactly this
//! guarantee.
//!
//! # Legacy shims
//!
//! [`quantize_inplace`]/[`quantization_rmse`] predate the real path. At
//! 8 bits they now round-trip through [`QuantizedMatrix::quantize_symmetric`]
//! (bit-identical to the old `round(x/Δ)·Δ` grid, `Δ = max|x|/127`); other
//! bit widths keep the fake-quant grid and are **simulation-only** — they
//! model the capability gap between deployment tiers (DESIGN.md §2) and
//! never touch the integer kernels.

use std::cell::RefCell;

use crate::kernel;
use crate::Matrix;

thread_local! {
    /// Reusable i32 accumulator panel for [`QuantizedMatrix::matmul_t_into`].
    /// Grows to the largest `m × n` output seen on this thread, then reused.
    static ACC_I32: RefCell<Vec<i32>> = const { RefCell::new(Vec::new()) };
}

/// Granularity of the affine quantisation parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QuantScheme {
    /// One `(scale, zero_point)` pair for the whole matrix.
    PerTensor,
    /// One `(scale, zero_point)` pair per row. Weights are stored transposed
    /// (`out_dim × in_dim`), so this is per-output-channel quantisation.
    PerRow,
}

impl QuantScheme {
    /// Stable lower-case label used in repro-bin tables and CSVs.
    pub fn label(self) -> &'static str {
        match self {
            QuantScheme::PerTensor => "per-tensor",
            QuantScheme::PerRow => "per-row",
        }
    }
}

/// One affine parameter pair: `real ≈ scale · (q − zero_point)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantParams {
    /// Step between adjacent quantisation levels; always finite and > 0.
    pub scale: f32,
    /// The integer code that represents real zero; always in `[−128, 127]`.
    pub zero_point: i32,
}

impl QuantParams {
    /// Affine parameters covering `[lo, hi]`, nudged to include zero.
    ///
    /// Uses 255 of the 256 codes (`scale = span/254`) so that every value in
    /// the calibration range provably quantises within `scale/2` without
    /// saturating — see the module docs. Degenerate ranges (constant, zero,
    /// or non-finite input) fall back to `scale = 1, zero_point = 0`.
    fn from_range(lo: f32, hi: f32) -> Self {
        let lo = lo.min(0.0);
        let hi = hi.max(0.0);
        let scale = (hi - lo) / 254.0;
        if !(scale.is_finite() && scale > 0.0) {
            return QuantParams { scale: 1.0, zero_point: 0 };
        }
        // Integer zero-point keeps `round(x/scale) + zp` in [−128, 127] for
        // every x ∈ [lo, hi]: round(lo/scale)+zp = −128 exactly, and the
        // rounded span is at most 255 codes.
        let zero_point = -128 - (lo / scale).round() as i32;
        QuantParams { scale, zero_point }
    }

    /// Symmetric parameters on the legacy 8-bit grid: `scale = max|x|/127`,
    /// `zero_point = 0`, codes in `[−127, 127]`.
    fn symmetric(max_abs: f32) -> Self {
        let scale = max_abs / 127.0;
        if !(scale.is_finite() && scale > 0.0) {
            return QuantParams { scale: 1.0, zero_point: 0 };
        }
        QuantParams { scale, zero_point: 0 }
    }

    /// Quantises one value (saturating).
    #[inline]
    pub fn quantize(&self, x: f32) -> i8 {
        let q = (x / self.scale).round() + self.zero_point as f32;
        q.clamp(-128.0, 127.0) as i8
    }

    /// Reconstructs the real value of one code.
    #[inline]
    pub fn dequantize(&self, q: i8) -> f32 {
        (q as i32 - self.zero_point) as f32 * self.scale
    }
}

/// A row-major i8 matrix with affine quantisation parameters and cached
/// per-row code sums (needed for the zero-point correction terms of the
/// integer matmul).
///
/// Products run through [`kernel::gemm_nt_i8`] with i32 accumulation and
/// dequantise via [`QuantizedMatrix::matmul_t_into`], which reuses a
/// thread-local accumulator panel and resizes `out` in place — zero heap
/// allocations per call once warm. The allocating convenience wrapper
/// [`QuantizedMatrix::matmul_t`] bumps the same counter as the f32
/// allocating wrappers ([`kernel::matmul_allocations`]).
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedMatrix {
    rows: usize,
    cols: usize,
    data: Vec<i8>,
    /// One entry (per-tensor) or `rows` entries (per-row).
    params: Vec<QuantParams>,
    /// Per-row sums of the i8 codes, widened to i32.
    row_sums: Vec<i32>,
    scheme: QuantScheme,
    /// When set, `data` holds the codes transposed (`cols × rows`,
    /// row-major) — the layout [`kernel::gemm_nn_i8`]'s tile route reads
    /// directly. See [`Self::pack_for_inference`]. Parameters and row sums
    /// stay indexed by *logical* row.
    packed_nn: bool,
    /// Folded right-hand-side dequantisation constants, three `rows`-long
    /// segments (`s_b`, `s_b·z_b`, `s_b·(Σq_b − k·z_b)`), computed once at
    /// quantisation time so [`Self::matmul_t_into`]'s correction loop is
    /// pure multiply-add work.
    rhs_consts: Vec<f32>,
}

impl QuantizedMatrix {
    /// An empty 0×0 per-tensor matrix — a seed for [`Self::quantize_from`]
    /// buffer reuse.
    pub fn empty() -> Self {
        QuantizedMatrix {
            rows: 0,
            cols: 0,
            data: Vec::new(),
            params: Vec::new(),
            row_sums: Vec::new(),
            scheme: QuantScheme::PerTensor,
            packed_nn: false,
            rhs_consts: Vec::new(),
        }
    }

    /// Quantises `m` with affine parameters at the given granularity.
    pub fn quantize(m: &Matrix, scheme: QuantScheme) -> Self {
        let mut q = Self::empty();
        q.quantize_from(m, scheme);
        q
    }

    /// Quantises `m` on the symmetric per-tensor grid (`zero_point = 0`,
    /// codes in `[−127, 127]`) — bit-identical to the legacy 8-bit
    /// fake-quant grid, and the grid [`quantize_inplace`] round-trips at
    /// 8 bits.
    pub fn quantize_symmetric(m: &Matrix) -> Self {
        let mut q = Self::empty();
        let max_abs = m.as_slice().iter().fold(0.0f32, |acc, &x| acc.max(x.abs()));
        q.requantize_with(m, QuantScheme::PerTensor, |_| QuantParams::symmetric(max_abs));
        q
    }

    /// Re-quantises `m` into this matrix, reusing its buffers (grow-only) —
    /// the per-batch activation path. Allocation-free once the buffers have
    /// grown to the workload's shape.
    pub fn quantize_from(&mut self, m: &Matrix, scheme: QuantScheme) {
        match scheme {
            QuantScheme::PerTensor => {
                let (lo, hi) = min_max(m.as_slice());
                let p = QuantParams::from_range(lo, hi);
                self.requantize_with(m, scheme, |_| p);
            }
            QuantScheme::PerRow => {
                self.requantize_with(m, scheme, |row| {
                    let (lo, hi) = min_max(row);
                    QuantParams::from_range(lo, hi)
                });
            }
        }
    }

    fn requantize_with(
        &mut self,
        m: &Matrix,
        scheme: QuantScheme,
        param_for: impl Fn(&[f32]) -> QuantParams,
    ) {
        let (rows, cols) = m.shape();
        self.rows = rows;
        self.cols = cols;
        self.scheme = scheme;
        self.packed_nn = false;
        self.data.resize(rows * cols, 0);
        self.row_sums.resize(rows, 0);
        let n_params = match scheme {
            QuantScheme::PerTensor => 1,
            QuantScheme::PerRow => rows,
        };
        self.params.resize(n_params, QuantParams { scale: 1.0, zero_point: 0 });
        if matches!(scheme, QuantScheme::PerTensor) {
            self.params[0] = param_for(m.as_slice());
        }
        for (r, row) in m.iter_rows().enumerate() {
            let p = match scheme {
                QuantScheme::PerTensor => self.params[0],
                QuantScheme::PerRow => {
                    self.params[r] = param_for(row);
                    self.params[r]
                }
            };
            let mut sum = 0i32;
            let qrow = &mut self.data[r * cols..(r + 1) * cols];
            for (q, &x) in qrow.iter_mut().zip(row.iter()) {
                let code = p.quantize(x);
                *q = code;
                sum += code as i32;
            }
            self.row_sums[r] = sum;
        }
        self.fold_rhs_consts();
    }

    /// Rebuilds [`Self::rhs_consts`] from the current params and row sums.
    fn fold_rhs_consts(&mut self) {
        let n = self.rows;
        self.rhs_consts.resize(3 * n, 0.0);
        let k = self.cols as i32;
        for r in 0..n {
            let p = if self.params.len() == 1 { self.params[0] } else { self.params[r] };
            self.rhs_consts[r] = p.scale;
            self.rhs_consts[n + r] = p.scale * p.zero_point as f32;
            self.rhs_consts[2 * n + r] = p.scale * (self.row_sums[r] - k * p.zero_point) as f32;
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// The quantisation granularity this matrix was built with.
    pub fn scheme(&self) -> QuantScheme {
        self.scheme
    }

    /// The affine parameters: one entry for per-tensor, `rows` for per-row.
    pub fn params(&self) -> &[QuantParams] {
        &self.params
    }

    /// The raw i8 codes — row-major over the logical shape, or transposed
    /// (`cols × rows`) when [`Self::is_packed_nn`] is set.
    pub fn codes(&self) -> &[i8] {
        &self.data
    }

    /// Whether the codes are stored in the transposed inference layout.
    pub fn is_packed_nn(&self) -> bool {
        self.packed_nn
    }

    /// Re-lays the codes in the orientation the integer matmul reads them,
    /// chosen by the kernel's route for this shape — a weights-only,
    /// quantise-once optimisation.
    ///
    /// As the right-hand side of [`Self::matmul_t_into`] this matrix's
    /// rows are *output columns*: the kernel's dot route reads them as
    /// stored (row-major), but the tile route — wide outputs, the AE
    /// decoder shape — wants the transpose and would otherwise repack
    /// `cols × rows` bytes on **every** call. Packing once here makes the
    /// tile route pack-free, exactly like the f32 `gemm_nn` path. The
    /// product is bit-identical either way (same codes, same integer
    /// arithmetic); only per-call packing work is removed.
    pub fn pack_for_inference(&mut self) {
        if self.packed_nn || kernel::dot_route(self.cols, self.rows) {
            return;
        }
        let (n, k) = (self.rows, self.cols);
        let mut packed = vec![0i8; self.data.len()];
        for j in 0..n {
            for kk in 0..k {
                packed[kk * n + j] = self.data[j * k + kk];
            }
        }
        self.data = packed;
        self.packed_nn = true;
    }

    #[inline]
    fn param_for_row(&self, r: usize) -> QuantParams {
        if self.params.len() == 1 {
            self.params[0]
        } else {
            self.params[r]
        }
    }

    /// Reconstructs the real-valued matrix (allocating).
    pub fn dequantize(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols);
        self.dequantize_into(&mut out);
        out
    }

    /// Reconstructs the real-valued matrix into `out` (resized in place —
    /// allocation-free once `out` has the capacity).
    pub fn dequantize_into(&self, out: &mut Matrix) {
        out.resize(self.rows, self.cols);
        let o = out.as_mut_slice();
        for r in 0..self.rows {
            let p = self.param_for_row(r);
            let orow = &mut o[r * self.cols..(r + 1) * self.cols];
            if self.packed_nn {
                for (c, dst) in orow.iter_mut().enumerate() {
                    *dst = p.dequantize(self.data[c * self.rows + r]);
                }
            } else {
                let qrow = &self.data[r * self.cols..(r + 1) * self.cols];
                for (dst, &q) in orow.iter_mut().zip(qrow.iter()) {
                    *dst = p.dequantize(q);
                }
            }
        }
    }

    /// `out = self · rhsᵀ` dequantised to f32: `self` is `m×k`, `rhs` is
    /// `n×k`, `out` becomes `m×n`. The integer product runs through
    /// [`kernel::gemm_nt_i8`]; the affine correction applies the cached
    /// per-row code sums:
    ///
    /// `y[i][j] = s_a s_b · (Σ q_a q_b − z_b Σq_a − z_a Σq_b + k·z_a z_b)`
    ///
    /// The `rhs`-side factors are folded into three per-column f32
    /// constants once per call, so the per-element correction is three
    /// multiply-adds that vectorise — the scalar per-element form costs
    /// more than the integer kernel itself on wide outputs. The folded
    /// expression is fixed, so results stay bit-identical across reruns
    /// and thread counts.
    ///
    /// Allocation-free per call once the thread-local buffers and `out`
    /// have grown to the workload's shape.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions disagree.
    pub fn matmul_t_into(&self, rhs: &QuantizedMatrix, out: &mut Matrix) {
        assert_eq!(
            self.cols, rhs.cols,
            "quantised matmul_t: inner dims {} vs {}",
            self.cols, rhs.cols
        );
        assert!(!self.packed_nn, "quantised matmul_t: lhs must be row-major (activations)");
        let (m, k, n) = (self.rows, self.cols, rhs.rows);
        out.resize(m, n);
        ACC_I32.with(|cell| {
            let mut acc = cell.borrow_mut();
            if acc.len() < m * n {
                acc.resize(m * n, 0);
            }
            let acc = &mut acc[..m * n];
            if rhs.packed_nn {
                // Codes already in the tile route's layout: pack-free.
                kernel::gemm_nn_i8(m, k, n, &self.data, &rhs.data, acc);
            } else {
                kernel::gemm_nt_i8(m, k, n, &self.data, &rhs.data, acc);
            }
            // y[i][j] = s_a·(s_b·acc − (s_b z_b)·Σq_a − z_a·s_b(Σq_b − k z_b)),
            // with the three rhs factors pre-folded at quantisation time.
            let (sb, rest) = rhs.rhs_consts.split_at(n);
            let (sbz, swk) = rest.split_at(n);
            let o = out.as_mut_slice();
            for i in 0..m {
                let pa = self.param_for_row(i);
                let (sa, za) = (pa.scale, pa.zero_point as f32);
                let xa = self.row_sums[i] as f32;
                let orow = &mut o[i * n..(i + 1) * n];
                let arow = &acc[i * n..(i + 1) * n];
                for j in 0..n {
                    orow[j] = sa * (sb[j] * arow[j] as f32 - sbz[j] * xa - za * swk[j]);
                }
            }
        });
    }

    /// Allocating wrapper over [`Self::matmul_t_into`]. Counts against
    /// [`kernel::matmul_allocations`] like the f32 allocating wrappers; hot
    /// paths must use the `_into` variant.
    pub fn matmul_t(&self, rhs: &QuantizedMatrix) -> Matrix {
        kernel::count_matmul_alloc();
        let mut out = Matrix::zeros(self.rows, rhs.rows);
        self.matmul_t_into(rhs, &mut out);
        out
    }
}

fn min_max(xs: &[f32]) -> (f32, f32) {
    xs.iter().fold((f32::INFINITY, f32::NEG_INFINITY), |(lo, hi), &x| (lo.min(x), hi.max(x)))
}

/// Quantizes every element to a symmetric uniform grid of `bits` bits:
/// `w ↦ round(w/Δ)·Δ` with `Δ = max|w| / (2^{bits-1} − 1)`.
///
/// At `bits = 8` this is a thin wrapper over the real quantiser — a
/// [`QuantizedMatrix::quantize_symmetric`] round-trip, bit-identical to the
/// historical grid. Other bit widths keep the legacy fake-quant formula and
/// are **simulation-only**: they model tier capability gaps and never touch
/// the integer kernels.
///
/// A zero matrix is returned unchanged. `bits = 1` collapses weights to
/// `{−max, 0, +max}`.
///
/// # Panics
///
/// Panics if `bits` is 0 or greater than 15.
pub fn quantize_inplace(m: &mut Matrix, bits: u8) {
    assert!((1..=15).contains(&bits), "bits must be in 1..=15, got {bits}");
    if bits == 8 {
        QuantizedMatrix::quantize_symmetric(m).dequantize_into(m);
        return;
    }
    let max_abs = m.as_slice().iter().fold(0.0f32, |acc, &x| acc.max(x.abs()));
    if max_abs == 0.0 {
        return;
    }
    let levels = ((1u32 << (bits - 1)) - 1).max(1) as f32;
    let delta = max_abs / levels;
    m.map_inplace(|x| (x / delta).round() * delta);
}

/// Root-mean-square quantization error a grid of `bits` bits introduces on
/// `m` (useful for calibrating deployment tiers).
///
/// # Panics
///
/// Panics if `bits` is 0 or greater than 15.
pub fn quantization_rmse(m: &Matrix, bits: u8) -> f32 {
    let mut q = m.clone();
    quantize_inplace(&mut q, bits);
    let diff = m - &q;
    (diff.frobenius_norm_sq() / m.len() as f32).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn high_bit_widths_are_nearly_lossless() {
        let m = Matrix::from_rows(&[&[0.1, -0.2, 0.33], &[0.05, -0.44, 0.21]]);
        assert!(quantization_rmse(&m, 14) < 1e-4);
    }

    #[test]
    fn fewer_bits_mean_more_error() {
        let data: Vec<f32> = (0..64).map(|i| ((i as f32) * 0.37).sin() * 0.5).collect();
        let m = Matrix::from_vec(8, 8, data);
        let e4 = quantization_rmse(&m, 4);
        let e6 = quantization_rmse(&m, 6);
        let e8 = quantization_rmse(&m, 8);
        assert!(e4 > e6 && e6 > e8, "{e4} {e6} {e8}");
    }

    #[test]
    fn values_land_on_grid() {
        let mut m = Matrix::from_rows(&[&[0.9, -0.3, 0.45]]);
        quantize_inplace(&mut m, 3);
        // max=0.9, levels=3, delta=0.3 → all values are multiples of 0.3.
        for &v in m.as_slice() {
            let ratio = v / 0.3;
            assert!((ratio - ratio.round()).abs() < 1e-5, "{v} off-grid");
        }
    }

    #[test]
    fn zero_matrix_unchanged() {
        for bits in [4, 8] {
            let mut m = Matrix::zeros(2, 2);
            quantize_inplace(&mut m, bits);
            assert!(m.as_slice().iter().all(|&x| x == 0.0));
        }
    }

    #[test]
    fn max_magnitude_preserved() {
        let mut m = Matrix::from_rows(&[&[1.0, -0.5]]);
        quantize_inplace(&mut m, 5);
        assert_eq!(m[(0, 0)], 1.0);
    }

    #[test]
    #[should_panic(expected = "bits must be in")]
    fn zero_bits_rejected() {
        let mut m = Matrix::ones(1, 1);
        quantize_inplace(&mut m, 0);
    }

    /// The satellite contract: at 8 bits the legacy wrapper must reproduce
    /// the historical fake-quant grid *exactly* while routing through the
    /// real quantiser.
    #[test]
    fn legacy_wrapper_matches_old_grid_exactly_at_8_bits() {
        let data: Vec<f32> = (0..96).map(|i| ((i as f32) * 0.731).sin() * 2.5).collect();
        let m = Matrix::from_vec(8, 12, data);

        // Historical formula, inlined: round(x/Δ)·Δ with Δ = max|x|/127.
        let max_abs = m.as_slice().iter().fold(0.0f32, |a, &x| a.max(x.abs()));
        let delta = max_abs / 127.0;
        let mut legacy = m.clone();
        legacy.map_inplace(|x| (x / delta).round() * delta);

        let mut via_new = m.clone();
        quantize_inplace(&mut via_new, 8);
        assert_eq!(via_new.as_slice(), legacy.as_slice());

        // And the RMSE figures agree exactly too.
        let legacy_rmse = {
            let diff = &m - &legacy;
            (diff.frobenius_norm_sq() / m.len() as f32).sqrt()
        };
        assert_eq!(quantization_rmse(&m, 8), legacy_rmse);
    }

    #[test]
    fn affine_roundtrip_error_within_half_scale() {
        let data: Vec<f32> = (0..60).map(|i| ((i as f32) * 0.913).cos() * 3.0 - 0.7).collect();
        let m = Matrix::from_vec(6, 10, data);
        for scheme in [QuantScheme::PerTensor, QuantScheme::PerRow] {
            let q = QuantizedMatrix::quantize(&m, scheme);
            let back = q.dequantize();
            for r in 0..m.rows() {
                let bound = q.param_for_row(r).scale * 0.5 * 1.0001 + 1e-6;
                for c in 0..m.cols() {
                    let err = (m[(r, c)] - back[(r, c)]).abs();
                    assert!(err <= bound, "({r},{c}): err {err} > {bound} [{scheme:?}]");
                }
            }
        }
    }

    #[test]
    fn constant_and_zero_matrices_produce_finite_params() {
        for value in [0.0f32, 3.25, -1.5] {
            let m = Matrix::filled(3, 4, value);
            for scheme in [QuantScheme::PerTensor, QuantScheme::PerRow] {
                let q = QuantizedMatrix::quantize(&m, scheme);
                for p in q.params() {
                    assert!(p.scale.is_finite() && p.scale > 0.0, "scale {} for {value}", p.scale);
                }
                let back = q.dequantize();
                let bound = q.params()[0].scale * 0.5 + 1e-6;
                for (&x, &y) in m.as_slice().iter().zip(back.as_slice()) {
                    assert!((x - y).abs() <= bound, "{x} vs {y}");
                }
            }
        }
    }

    #[test]
    fn per_row_is_no_worse_than_per_tensor_on_skewed_rows() {
        // Row 0 spans ±10, row 1 spans ±0.01: per-tensor forces row 1 onto
        // a coarse grid, per-row gives it its own fine one.
        let m = Matrix::from_rows(&[&[10.0, -10.0, 5.0, -2.0], &[0.01, -0.01, 0.005, -0.002]]);
        let rmse = |q: &QuantizedMatrix| {
            let diff = &m - &q.dequantize();
            (diff.frobenius_norm_sq() / m.len() as f32).sqrt()
        };
        let per_tensor = rmse(&QuantizedMatrix::quantize(&m, QuantScheme::PerTensor));
        let per_row = rmse(&QuantizedMatrix::quantize(&m, QuantScheme::PerRow));
        assert!(per_row < per_tensor, "per-row {per_row} vs per-tensor {per_tensor}");
    }

    #[test]
    fn quantised_matmul_t_tracks_f32_product() {
        let (m, k, n) = (5, 64, 7);
        let a = Matrix::from_vec(m, k, (0..m * k).map(|i| ((i as f32) * 0.17).sin()).collect());
        let b = Matrix::from_vec(n, k, (0..n * k).map(|i| ((i as f32) * 0.23).cos()).collect());
        let exact = a.matmul_t(&b);
        for scheme in [QuantScheme::PerTensor, QuantScheme::PerRow] {
            let qa = QuantizedMatrix::quantize(&a, scheme);
            let qb = QuantizedMatrix::quantize(&b, scheme);
            let mut out = Matrix::zeros(1, 1);
            qa.matmul_t_into(&qb, &mut out);
            assert_eq!(out.shape(), (m, n));
            let err = (&out - &exact).frobenius_norm() / exact.frobenius_norm().max(1e-12);
            assert!(err < 0.02, "relative error {err} too large [{scheme:?}]");
        }
    }

    #[test]
    fn quantised_matmul_is_deterministic_across_reruns() {
        let a = Matrix::from_vec(4, 32, (0..128).map(|i| ((i as f32) * 0.31).sin()).collect());
        let b = Matrix::from_vec(6, 32, (0..192).map(|i| ((i as f32) * 0.41).cos()).collect());
        let qa = QuantizedMatrix::quantize(&a, QuantScheme::PerRow);
        let qb = QuantizedMatrix::quantize(&b, QuantScheme::PerRow);
        let first = qa.matmul_t(&qb);
        for _ in 0..3 {
            let again = qa.matmul_t(&qb);
            assert_eq!(first.as_slice(), again.as_slice());
        }
    }

    #[test]
    fn packed_inference_layout_is_bit_identical() {
        // Wide-output (decoder) shape: packing re-lays the codes for the
        // tile route. Same codes, same integer arithmetic — the product
        // and the dequantised matrix must not change by a single bit.
        let x = Matrix::from_vec(5, 3, (0..15).map(|i| ((i as f32) * 0.7).sin()).collect());
        let w = Matrix::from_vec(24, 3, (0..72).map(|i| ((i as f32) * 0.3).cos()).collect());
        let xq = QuantizedMatrix::quantize(&x, QuantScheme::PerRow);
        let wq = QuantizedMatrix::quantize(&w, QuantScheme::PerRow);
        let mut packed = wq.clone();
        packed.pack_for_inference();
        assert!(packed.is_packed_nn());
        assert_eq!(packed.dequantize().as_slice(), wq.dequantize().as_slice());
        let (mut a, mut b) = (Matrix::zeros(1, 1), Matrix::zeros(1, 1));
        xq.matmul_t_into(&wq, &mut a);
        xq.matmul_t_into(&packed, &mut b);
        assert_eq!(a.as_slice(), b.as_slice());

        // Narrow-output (encoder) shape: the dot route already reads the
        // stored layout, so packing must be a no-op.
        let enc = QuantizedMatrix::quantize(&w.transpose(), QuantScheme::PerRow);
        let mut enc_packed = enc.clone();
        enc_packed.pack_for_inference();
        assert!(!enc_packed.is_packed_nn());
        assert_eq!(enc_packed, enc);
    }

    #[test]
    fn allocating_wrapper_counts_into_not() {
        let a = Matrix::ones(2, 8);
        let qa = QuantizedMatrix::quantize(&a, QuantScheme::PerTensor);
        let before = kernel::matmul_allocations();
        let mut out = Matrix::zeros(2, 2);
        qa.matmul_t_into(&qa, &mut out);
        assert_eq!(kernel::matmul_allocations(), before, "_into must not count");
        let _ = qa.matmul_t(&qa);
        assert!(kernel::matmul_allocations() > before, "wrapper must count");
    }

    #[test]
    fn quantize_from_reuses_buffers() {
        let m1 = Matrix::from_vec(4, 8, (0..32).map(|i| i as f32 * 0.1).collect());
        let mut q = QuantizedMatrix::quantize(&m1, QuantScheme::PerRow);
        let m2 = Matrix::from_vec(2, 8, (0..16).map(|i| -(i as f32) * 0.2).collect());
        q.quantize_from(&m2, QuantScheme::PerTensor);
        assert_eq!(q.shape(), (2, 8));
        assert_eq!(q.scheme(), QuantScheme::PerTensor);
        assert_eq!(q.params().len(), 1);
        let back = q.dequantize();
        let bound = q.params()[0].scale * 0.5 + 1e-6;
        for (&x, &y) in m2.as_slice().iter().zip(back.as_slice()) {
            assert!((x - y).abs() <= bound);
        }
    }
}
