//! No-op `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros.
//!
//! The vendored [`serde`] stub gives every type a blanket impl of its
//! marker traits, so the derives here only need to exist (and accept the
//! `#[serde(...)]` helper attribute) — they emit no code. This keeps the
//! 37 derive sites across the workspace compiling without network access
//! to the real `serde`; swap the path dependency for crates.io `serde`
//! to restore real serialization.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]`; expands to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]`; expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
