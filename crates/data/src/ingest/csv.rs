//! Hand-rolled, allocation-lean CSV record reader.
//!
//! One reusable line buffer and one reusable field-bounds vector serve
//! the whole stream: steady-state reading allocates only when a line is
//! longer than every line before it. Records are borrowed views into the
//! buffer ([`CsvRecord`]), valid until the next
//! [`CsvReader::next_record`] call.
//!
//! Dialect: configurable single-byte delimiter (default `,`) or
//! whitespace splitting; fields are trimmed; blank lines and lines
//! starting with `#` are skipped; CRLF line endings are tolerated.
//! Quoting is **not** supported — the sensor traces this reads are
//! numeric, and a stray quote fails loudly with its line number instead
//! of being guessed at.

use std::io::BufRead;

use crate::source::IngestError;

/// How a line is split into fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delimiter {
    /// Split at every occurrence of this byte (empty fields preserved,
    /// so `1,,3` has a *missing* middle field).
    Byte(u8),
    /// Split at runs of ASCII whitespace (empty fields impossible).
    Whitespace,
}

/// Field spellings treated as a missing value (case-insensitive):
/// the empty field, `?`, `nan`, `na`, and `null`.
fn is_missing_marker(field: &str) -> bool {
    field.is_empty()
        || field == "?"
        || field.eq_ignore_ascii_case("nan")
        || field.eq_ignore_ascii_case("na")
        || field.eq_ignore_ascii_case("null")
}

/// A streaming CSV reader over any [`BufRead`].
#[derive(Debug)]
pub struct CsvReader<R> {
    src: R,
    name: String,
    delimiter: Delimiter,
    line: String,
    bounds: Vec<(usize, usize)>,
    line_no: u64,
}

impl<R: BufRead> CsvReader<R> {
    /// Creates a comma-delimited reader. `name` is the logical trace name
    /// used in I/O error reports (keep it relative/stable so repro output
    /// stays byte-identical).
    pub fn new(src: R, name: impl Into<String>) -> Self {
        Self {
            src,
            name: name.into(),
            delimiter: Delimiter::Byte(b','),
            line: String::new(),
            bounds: Vec::new(),
            line_no: 0,
        }
    }

    /// Replaces the delimiter (e.g. `Delimiter::Whitespace` for the
    /// space/tab-separated UCI exports).
    ///
    /// # Panics
    ///
    /// Panics if a `Delimiter::Byte` is not ASCII: a byte ≥ 0x80 can
    /// fall inside a multi-byte UTF-8 character, and splitting there
    /// would put a field bound on a non-character boundary.
    pub fn with_delimiter(mut self, delimiter: Delimiter) -> Self {
        if let Delimiter::Byte(b) = delimiter {
            assert!(b.is_ascii(), "delimiter byte 0x{b:02X} is not ASCII");
        }
        self.delimiter = delimiter;
        self
    }

    /// Numbers lines from `first_line` instead of 1 — the chunked parser
    /// hands each worker a mid-file byte range plus the global number of
    /// its first line, so per-chunk errors carry file-global line numbers
    /// with no post-hoc fixup. A reader whose first line is not line 1 is
    /// by definition not at the physical start of the file, so it also
    /// skips the UTF-8 BOM strip.
    ///
    /// # Panics
    ///
    /// Panics if `first_line` is zero (line numbers are 1-based).
    pub fn with_start_line(mut self, first_line: u64) -> Self {
        assert!(first_line >= 1, "line numbers are 1-based");
        self.line_no = first_line - 1;
        self
    }

    /// The 1-based number of the most recently read line (0 before the
    /// first record).
    pub fn line_number(&self) -> u64 {
        self.line_no
    }

    /// Reads the next data record, skipping blank and `#`-comment lines.
    /// Returns `Ok(None)` at end of input. The returned record borrows
    /// the reader's buffers and is valid until the next call.
    pub fn next_record(&mut self) -> Result<Option<CsvRecord<'_>>, IngestError> {
        loop {
            self.line.clear();
            let read = self.src.read_line(&mut self.line).map_err(|e| IngestError::Io {
                name: self.name.clone(),
                line: self.line_no,
                source: e,
            })?;
            if read == 0 {
                return Ok(None);
            }
            self.line_no += 1;
            if self.line_no == 1 {
                // Strip a UTF-8 BOM off the very first line of the file
                // (spreadsheet exports prepend one; it would otherwise
                // read as field bytes and raise a spurious parse error).
                if self.line.starts_with('\u{feff}') {
                    self.line.drain(..'\u{feff}'.len_utf8());
                }
            }
            while self.line.ends_with('\n') || self.line.ends_with('\r') {
                self.line.pop();
            }
            let trimmed = self.line.trim_start();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            break;
        }
        self.bounds.clear();
        match self.delimiter {
            Delimiter::Byte(delim) => {
                let bytes = self.line.as_bytes();
                let mut start = 0usize;
                for (i, &b) in bytes.iter().enumerate() {
                    if b == delim {
                        self.bounds.push(trim_bounds(&self.line, start, i));
                        start = i + 1;
                    }
                }
                self.bounds.push(trim_bounds(&self.line, start, bytes.len()));
            }
            Delimiter::Whitespace => {
                let bytes = self.line.as_bytes();
                let mut start: Option<usize> = None;
                for (i, &b) in bytes.iter().enumerate() {
                    if b.is_ascii_whitespace() {
                        if let Some(s) = start.take() {
                            self.bounds.push((s, i));
                        }
                    } else if start.is_none() {
                        start = Some(i);
                    }
                }
                if let Some(s) = start {
                    self.bounds.push((s, bytes.len()));
                }
            }
        }
        Ok(Some(CsvRecord { line_no: self.line_no, line: &self.line, bounds: &self.bounds }))
    }
}

/// Trims ASCII whitespace off a half-open byte range of `line`.
fn trim_bounds(line: &str, mut start: usize, mut end: usize) -> (usize, usize) {
    let bytes = line.as_bytes();
    while start < end && bytes[start].is_ascii_whitespace() {
        start += 1;
    }
    while end > start && bytes[end - 1].is_ascii_whitespace() {
        end -= 1;
    }
    (start, end)
}

/// One parsed CSV record: a borrowed view into the reader's buffers.
#[derive(Debug, Clone, Copy)]
pub struct CsvRecord<'a> {
    line_no: u64,
    line: &'a str,
    bounds: &'a [(usize, usize)],
}

impl CsvRecord<'_> {
    /// 1-based line number this record came from.
    pub fn line_number(&self) -> u64 {
        self.line_no
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.bounds.len()
    }

    /// Whether the record has no fields (cannot happen for records
    /// returned by [`CsvReader::next_record`], which skips blank lines).
    pub fn is_empty(&self) -> bool {
        self.bounds.is_empty()
    }

    /// Field `i`, trimmed.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn field(&self, i: usize) -> &str {
        let (start, end) = self.bounds[i];
        &self.line[start..end]
    }

    /// Fails unless the record has between `min` and `max` fields.
    pub fn expect_fields(&self, min: usize, max: usize) -> Result<(), IngestError> {
        if self.len() < min || self.len() > max {
            let expected = if min == max { format!("{min}") } else { format!("{min}..={max}") };
            return Err(IngestError::Parse {
                line: self.line_no,
                message: format!("expected {expected} fields, got {}", self.len()),
            });
        }
        Ok(())
    }

    /// Parses field `i` as `f32`; `Ok(None)` when the field is a missing
    /// marker (empty, `?`, `nan`, `na`, `null` — see module docs).
    pub fn parse_f32(&self, i: usize) -> Result<Option<f32>, IngestError> {
        let field = self.field(i);
        if is_missing_marker(field) {
            return Ok(None);
        }
        field.parse::<f32>().map(Some).map_err(|_| IngestError::Parse {
            line: self.line_no,
            message: format!("field {} ({field:?}) is not a number", i + 1),
        })
    }

    /// Parses field `i` as a non-negative integer.
    pub fn parse_usize(&self, i: usize) -> Result<usize, IngestError> {
        let field = self.field(i);
        field.parse::<usize>().map_err(|_| IngestError::Parse {
            line: self.line_no,
            message: format!("field {} ({field:?}) is not a non-negative integer", i + 1),
        })
    }

    /// Whether this record looks like a header row: every field is
    /// non-missing, fails to parse as a number, **and starts with an
    /// ASCII letter or underscore** (the shape of a column name). The
    /// last condition keeps a merely *malformed* first reading — e.g.
    /// `12..5` in a label-less trace — from being silently swallowed as
    /// a header, which would shift every later day window by one
    /// reading; such lines raise their line-numbered parse error
    /// instead.
    pub fn looks_like_header(&self) -> bool {
        !self.is_empty()
            && (0..self.len()).all(|i| {
                let f = self.field(i);
                !is_missing_marker(f)
                    && f.parse::<f32>().is_err()
                    && f.starts_with(|c: char| c.is_ascii_alphabetic() || c == '_')
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn reader(text: &str) -> CsvReader<Cursor<&str>> {
        CsvReader::new(Cursor::new(text), "test.csv")
    }

    #[test]
    fn reads_records_with_line_numbers() {
        let mut r = reader("# comment\n1.5,2\n\n3.5,4\n");
        let rec = r.next_record().unwrap().unwrap();
        assert_eq!(rec.line_number(), 2);
        assert_eq!(rec.len(), 2);
        assert_eq!(rec.parse_f32(0).unwrap(), Some(1.5));
        assert_eq!(rec.parse_usize(1).unwrap(), 2);
        let rec = r.next_record().unwrap().unwrap();
        assert_eq!(rec.line_number(), 4);
        assert_eq!(rec.field(0), "3.5");
        assert!(r.next_record().unwrap().is_none());
    }

    #[test]
    fn crlf_and_field_whitespace_are_tolerated() {
        let mut r = reader(" 1.0 , 2.0 \r\n");
        let rec = r.next_record().unwrap().unwrap();
        assert_eq!(rec.field(0), "1.0");
        assert_eq!(rec.field(1), "2.0");
    }

    #[test]
    fn empty_and_marker_fields_are_missing() {
        let mut r = reader("1,,3\n?,NaN,na\nNULL,2,3\n");
        let rec = r.next_record().unwrap().unwrap();
        assert_eq!(rec.len(), 3);
        assert_eq!(rec.parse_f32(1).unwrap(), None);
        let rec = r.next_record().unwrap().unwrap();
        for i in 0..3 {
            assert_eq!(rec.parse_f32(i).unwrap(), None, "field {i}");
        }
        let rec = r.next_record().unwrap().unwrap();
        assert_eq!(rec.parse_f32(0).unwrap(), None);
        assert_eq!(rec.parse_f32(1).unwrap(), Some(2.0));
    }

    #[test]
    fn malformed_field_reports_line_and_field() {
        let mut r = reader("1.0\nabc\n");
        let _ = r.next_record().unwrap().unwrap();
        let rec = r.next_record().unwrap().unwrap();
        let err = rec.parse_f32(0).unwrap_err();
        assert_eq!(err.line(), 2);
        assert!(err.to_string().contains("\"abc\""), "{err}");
    }

    #[test]
    fn arity_check_reports_line() {
        let mut r = reader("1,2,3\n");
        let rec = r.next_record().unwrap().unwrap();
        let err = rec.expect_fields(1, 2).unwrap_err();
        assert_eq!(err.line(), 1);
        assert!(err.to_string().contains("expected 1..=2 fields, got 3"), "{err}");
        assert!(rec.expect_fields(3, 3).is_ok());
    }

    #[test]
    fn whitespace_delimiter_splits_runs() {
        let mut r = reader("1.0\t 2.0   3.0\n").with_delimiter(Delimiter::Whitespace);
        let rec = r.next_record().unwrap().unwrap();
        assert_eq!(rec.len(), 3);
        assert_eq!(rec.parse_f32(2).unwrap(), Some(3.0));
    }

    #[test]
    fn header_detection() {
        let mut r = reader("value,label\n1.0,0\n");
        let rec = r.next_record().unwrap().unwrap();
        assert!(rec.looks_like_header());
        let rec = r.next_record().unwrap().unwrap();
        assert!(!rec.looks_like_header());
    }

    #[test]
    fn malformed_numbers_are_not_headers() {
        // A corrupted first reading must raise its parse error, not be
        // silently swallowed as a header (which would misalign every
        // later fixed-length window by one reading).
        for line in ["12..5", "1.2.3,0", "-"] {
            let text = format!("{line}\n");
            let mut r = reader(&text);
            let rec = r.next_record().unwrap().unwrap();
            assert!(!rec.looks_like_header(), "{line:?} mistaken for a header");
        }
        let mut r = reader("_ts,demand\n");
        assert!(r.next_record().unwrap().unwrap().looks_like_header());
    }

    #[test]
    #[should_panic(expected = "not ASCII")]
    fn non_ascii_delimiter_rejected() {
        // A byte >= 0x80 could split inside a multi-byte UTF-8 character.
        let _ = reader("a\n").with_delimiter(Delimiter::Byte(0xA0));
    }

    #[test]
    fn bom_is_stripped_from_the_first_line_only() {
        // BOM before a header line: the header still looks like one.
        let mut r = reader("\u{feff}value,label\n1.0,0\n");
        let rec = r.next_record().unwrap().unwrap();
        assert!(rec.looks_like_header(), "BOM must not hide the header");
        // BOM before a data line: the first field parses.
        let mut r = reader("\u{feff}1.5,2\n");
        let rec = r.next_record().unwrap().unwrap();
        assert_eq!(rec.parse_f32(0).unwrap(), Some(1.5));
    }

    #[test]
    fn start_line_offsets_numbering_and_disables_bom_strip() {
        let mut r = reader("7.5\n8.5\n").with_start_line(41);
        assert_eq!(r.next_record().unwrap().unwrap().line_number(), 41);
        assert_eq!(r.next_record().unwrap().unwrap().line_number(), 42);
        // A mid-file chunk beginning with BOM bytes is corrupt data, not
        // a byte-order mark — it must surface as a parse failure.
        let mut r = reader("\u{feff}1.5\n").with_start_line(10);
        let rec = r.next_record().unwrap().unwrap();
        let err = rec.parse_f32(0).unwrap_err();
        assert_eq!(err.line(), 10);
    }

    #[test]
    fn invalid_utf8_is_an_io_error_not_a_panic() {
        let bytes: &[u8] = b"1.0\n\xff\xfe\n";
        let mut r = CsvReader::new(Cursor::new(bytes), "bin.csv");
        let _ = r.next_record().unwrap().unwrap();
        let err = r.next_record().unwrap_err();
        assert!(matches!(err, IngestError::Io { line: 1, .. }), "{err:?}");
    }
}
