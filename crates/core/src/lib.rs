//! # hec-core
//!
//! The end-to-end reproduction pipeline of *"Contextual-Bandit Anomaly
//! Detection for IoT Data in Distributed Hierarchical Edge Computing"*
//! (ICDCS 2020): this crate glues the substrates together into the paper's
//! actual experiments.
//!
//! * [`oracle`] — precomputed per-window detection outcomes for all three
//!   layers (the AD models are frozen while the policy trains, §II-B);
//! * [`scheme`] — the five model-selection schemes of §III-C: always-IoT,
//!   always-Edge, always-Cloud, **Successive** escalation, and the proposed
//!   **Adaptive** contextual-bandit scheme;
//! * [`experiment`] — the full pipeline: generate data → split → train the
//!   model catalog → calibrate scorers → train the policy network → evaluate
//!   every scheme (Tables I and II);
//! * [`report`] — table rows and ASCII formatting for the reproduction
//!   harness;
//! * [`stream`] — the demo result panel's streaming series (Fig. 3b) and
//!   the closed-loop fleet streaming driver (windows → policy actions →
//!   discrete-event fleet sim, so the bandit's action changes queueing),
//!   with native routing for load-aware policies;
//! * [`fleet_train`] — fleet-in-the-loop bandit training: the policy
//!   trains *inside* the discrete-event simulator on observed
//!   load-dependent delays and live queue-state context features;
//! * [`ablation`] — α sweeps, baseline ablation, bandit-solver comparison
//!   and confidence-rule sweeps (DESIGN.md §5);
//! * [`parallel`] — scoped-thread helpers (`HEC_THREADS` override) behind
//!   the parallel scheme evaluation and sweeps, with deterministic result
//!   ordering;
//! * [`adapt`] — online adaptation under drift: chunked streaming with
//!   Page–Hinkley drift detection on the layer-0 score stream and
//!   in-fleet refresh of the standardizer, the detector calibration and
//!   the bandit policy — all inside the sharded replay loop, with
//!   deterministic reports;
//! * [`sharded`] — the parallel driver for the sharded fleet engine:
//!   shards advance to conservative lookahead barriers on `HEC_THREADS`
//!   workers and merge deterministically, scaling fleet scenarios to
//!   millions of devices with byte-identical output at any thread count.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod adapt;
pub mod experiment;
pub mod fleet_train;
pub mod oracle;
pub mod replay;
pub mod report;
pub mod scheme;
pub mod sharded;
pub mod stream;

/// Scoped-thread parallelism helpers, hosted by `hec-tensor` so the data
/// layer can reach the same substrate without a dependency cycle;
/// re-exported here so `hec_core::parallel::*` call sites keep working.
pub use hec_tensor::parallel;

pub use adapt::{run_adaptive_stream, AdaptConfig, AdaptReport, ChunkStats, RecoveryStats};
pub use experiment::{
    static_delay_table, DatasetConfig, Experiment, ExperimentConfig, ExperimentReport,
};
pub use fleet_train::{train_policy_in_fleet, FleetTrainOutcome};
pub use oracle::{Oracle, WindowOutcome};
pub use report::{format_table1, format_table2, Table1Row, Table2Row};
pub use scheme::{SchemeEvaluator, SchemeKind, SchemeOutcome, SchemeResult};
pub use sharded::{run_plan, run_scenario_sharded, ShardedFleetRun};
