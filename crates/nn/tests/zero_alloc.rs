//! Allocation accounting for the model hot paths:
//!
//! * a warmed inference [`Lstm::step_into`] performs **zero** heap
//!   allocations (proved with a counting global allocator);
//! * a full LSTM / seq2seq **training step** makes **zero allocating matmul
//!   calls** — every product routes through the `_into` kernels into reused
//!   workspaces or caller-visible outputs (proved with
//!   `hec_tensor::kernel::matmul_allocations`, which counts the allocating
//!   wrapper calls; the preallocated `dxs` output vector and returned state
//!   are the only matmul results that still own fresh memory).
//!
//! Everything lives in one `#[test]` so no concurrent test can disturb the
//! global counters.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use hec_nn::{Lstm, LstmState, RmsProp, Seq2Seq, Seq2SeqConfig};
use hec_tensor::Matrix;

struct CountingAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::SeqCst);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::SeqCst);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> usize {
    ALLOCS.load(Ordering::SeqCst)
}

#[test]
fn hot_paths_are_matmul_allocation_free() {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    // --- Inference LSTM step: zero total allocations once warm. ---
    let mut rng = StdRng::seed_from_u64(7);
    let mut lstm = Lstm::new(&mut rng, 18, 64);
    let x = hec_tensor::init::uniform(&mut rng, 1, 18, -1.0, 1.0);
    let state = LstmState {
        h: hec_tensor::init::uniform(&mut rng, 1, 64, -1.0, 1.0),
        c: hec_tensor::init::uniform(&mut rng, 1, 64, -1.0, 1.0),
    };
    let mut next = LstmState::zeros(1, 64);
    lstm.step_into(&x, &state, &mut next); // warmup: scratch buffers grow here

    // The counter is process-wide and the test harness occasionally
    // allocates from another thread mid-window; a step that really
    // allocated would dirty every window (32 iterations each), so one
    // clean window out of five keeps the assertion sound without the noise.
    let mut last_delta = usize::MAX;
    for _attempt in 0..5 {
        let before = allocations();
        for _ in 0..32 {
            lstm.step_into(&x, &state, &mut next);
        }
        last_delta = allocations() - before;
        if last_delta == 0 {
            break;
        }
    }
    assert_eq!(
        last_delta, 0,
        "warmed Lstm::step_into performed {last_delta} heap allocations in every window"
    );

    // --- LSTM training step (forward_seq + backward_seq): zero allocating
    // matmul wrapper calls — all products go through `_into` kernels. ---
    let xs: Vec<Matrix> =
        (0..16).map(|_| hec_tensor::init::uniform(&mut rng, 1, 18, -1.0, 1.0)).collect();
    let train_step = |lstm: &mut Lstm| {
        let states = lstm.forward_seq(&xs, true);
        let dhs: Vec<Matrix> =
            states.iter().map(|s| Matrix::ones(s.h.rows(), s.h.cols())).collect();
        let _ = lstm.backward_seq(&dhs, None);
    };
    train_step(&mut lstm); // warmup
    let wrapper_before = hec_tensor::kernel::matmul_allocations();
    train_step(&mut lstm);
    assert_eq!(
        hec_tensor::kernel::matmul_allocations(),
        wrapper_before,
        "LSTM training step performed allocating matmul calls"
    );

    // --- Full seq2seq training step (encoder, decoder, dense output,
    // dropout, optimizer): still zero allocating matmul calls. ---
    let config = Seq2SeqConfig { input_dim: 4, encoder_hidden: 12, ..Default::default() };
    let mut model = Seq2Seq::new(config);
    let window: Vec<Matrix> = (0..8)
        .map(|t| {
            Matrix::row_vector(&[
                (t as f32 * 0.3).sin(),
                (t as f32 * 0.3).cos(),
                (t as f32 * 0.7).sin(),
                (t as f32 * 0.7).cos(),
            ])
        })
        .collect();
    let mut opt = RmsProp::new(1e-3);
    let _ = model.train_batch(&window, &mut opt); // warmup
    let wrapper_before = hec_tensor::kernel::matmul_allocations();
    let _ = model.train_batch(&window, &mut opt);
    assert_eq!(
        hec_tensor::kernel::matmul_allocations(),
        wrapper_before,
        "Seq2Seq training step performed allocating matmul calls"
    );
}
