//! # hec-sim
//!
//! Simulator for the paper's 3-layer hierarchical edge computing (HEC)
//! testbed (Fig. 1a / Fig. 4): a Raspberry Pi 3 (IoT device), an NVIDIA
//! Jetson TX2 (edge server) and an NVIDIA Devbox (cloud), connected by
//! WAN links emulated in the paper with the Linux `tc` traffic-control tool.
//!
//! What the physical testbed measures — per-model execution time on each
//! machine plus network transfer over the emulated WAN — this crate models:
//!
//! * [`device`] — device profiles and execution-time models, calibrated to
//!   the paper's measured Table I times (e.g. AE on the Pi: 12.4 ms;
//!   BiLSTM-seq2seq on the Devbox: 232.3 ms);
//! * [`network`] — links with RTT, optional bandwidth and jitter, calibrated
//!   to Table II (IoT→Edge ≈ 250 ms RTT, IoT→Cloud ≈ 500 ms RTT);
//! * [`topology`] — the assembled testbed and its end-to-end delay model;
//! * [`event`] — a deterministic discrete-event queue;
//! * [`runtime`] — a threaded message-passing runtime (crossbeam channels
//!   standing in for the paper's keep-alive TCP sockets) that executes
//!   detection jobs at a chosen layer and reports simulated end-to-end
//!   delays;
//! * [`fleet`] — a discrete-event *fleet* simulator: hundreds of
//!   thousands of devices streaming millions of windows through
//!   per-layer service queues and bandwidth-shared links, making
//!   detection delay load-dependent (utilization, queue traces, drop
//!   rates, p50/p99 latencies per scheme).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod device;
pub mod event;
pub mod fleet;
pub mod network;
pub mod runtime;
pub mod topology;

pub use device::{DeviceProfile, ExecTimeModel};
pub use event::EventQueue;
pub use fleet::{FleetReport, FleetScale, FleetScenario, FleetSim};
pub use network::Link;
pub use runtime::{DetectJob, HecRuntime, JobResult};
pub use topology::{DatasetKind, HecTopology};
