//! Criterion bench: discrete-event fleet simulator throughput — how fast
//! virtual windows stream through the 3-layer hierarchy. The quick-scale
//! named scenarios run in full per iteration (20k–25k windows each);
//! events/sec on the build machine is recorded in EXPERIMENTS.md from
//! `repro_fleet`'s stderr timing at full scale (≥1M windows).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use hec_sim::fleet::{FleetScale, FleetScenario, FleetSim};

fn bench_scenarios(c: &mut Criterion) {
    let mut group = c.benchmark_group("fleet_throughput_quick");
    for name in FleetScenario::NAMES {
        let sc = FleetScenario::by_name(name, FleetScale::Quick).expect("named scenario");
        let windows = sc.total_windows();
        group.bench_function(&format!("{name}_{windows}_windows"), |b| {
            b.iter(|| black_box(FleetSim::new(black_box(&sc)).run()))
        });
    }
    group.finish();
}

fn bench_event_queue(c: &mut Criterion) {
    // The raw heap underneath it all: schedule+pop round-trips.
    let mut group = c.benchmark_group("fleet_event_queue");
    group.bench_function("schedule_pop_10k", |b| {
        b.iter(|| {
            let mut q = hec_sim::EventQueue::new();
            for i in 0..10_000u64 {
                // Scatter times so the heap actually reorders.
                q.schedule(((i * 2_654_435_761) % 1_000_000) as f64, i);
            }
            let mut acc = 0u64;
            while let Some((_, v)) = q.pop() {
                acc = acc.wrapping_add(v);
            }
            black_box(acc)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_scenarios, bench_event_queue);
criterion_main!(benches);
