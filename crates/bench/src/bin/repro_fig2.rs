//! Regenerates **Fig. 2** — the adaptive model-selection policy network — as
//! a textual schematic plus a worked selection trace on real contexts.
//!
//! Run with `cargo run -p hec-bench --bin repro_fig2`.

use hec_bandit::{DelaySource, PolicyNetwork, PolicyTrainer, RewardModel, TrainConfig};
use hec_core::static_delay_table;
use hec_sim::{DatasetKind, HecTopology};

fn main() {
    println!("== repro_fig2: adaptive model selection with a policy network ==\n");

    let mut policy = PolicyNetwork::new(4, 100, 3, 0);
    println!("policy network f_theta(.): context z_x ({} dims)", policy.input_dim());
    println!("  -> Dense(4 -> 100, ReLU)");
    println!("  -> Dense(100 -> 3, linear)");
    println!("  -> softmax  =>  pi_theta(a | z_x) over K = 3 HEC layers");
    println!("  total parameters: {}\n", policy.param_count());

    // Worked trace: train on a toy contextual problem where feature 3 (the
    // window's std) encodes hardness, then show the selection for three
    // representative contexts.
    let topo = HecTopology::paper_testbed(DatasetKind::Univariate);
    let reward = RewardModel::new(DatasetKind::Univariate.paper_alpha());
    let contexts: Vec<Vec<f32>> = (0..60)
        .map(|i| {
            let hardness = (i % 3) as f32 / 2.0; // 0, 0.5, 1
            vec![0.0, 1.0, 0.5, hardness]
        })
        .collect();
    // Oracle: layer k is correct iff its capacity (k) covers the hardness.
    let delays = static_delay_table(&topo, 384);
    let mut reward_of = |i: usize, a: usize| -> f32 {
        let hardness = (i % 3) as f32 / 2.0;
        let capable = a as f32 / 2.0 >= hardness;
        reward.reward_outcome(capable, delays.delay_ms(i, a)) as f32
    };
    let mut trainer = PolicyTrainer::new(
        policy,
        TrainConfig { epochs: 60, learning_rate: 2e-3, ..Default::default() },
    );
    let curve = trainer.train(&contexts, &mut reward_of);
    policy = trainer.into_policy();

    println!("training curve (mean reward per epoch, first/mid/last):");
    let c = &curve.mean_reward_per_epoch;
    println!(
        "  epoch 1: {:.3}   epoch {}: {:.3}   epoch {}: {:.3}\n",
        c[0],
        c.len() / 2,
        c[c.len() / 2],
        c.len(),
        c[c.len() - 1]
    );

    println!("worked selection trace:");
    for (desc, hardness) in [("easy window", 0.0f32), ("medium window", 0.5), ("hard window", 1.0)]
    {
        let ctx = vec![0.0, 1.0, 0.5, hardness];
        let probs = policy.probabilities(&ctx);
        let action = policy.greedy(&ctx);
        println!(
            "  {desc:<14} z_x = {ctx:?}  pi = [{:.3}, {:.3}, {:.3}]  ->  |a| = {} ({})",
            probs[0],
            probs[1],
            probs[2],
            action,
            ["IoT", "Edge", "Cloud"][action]
        );
    }
}
