//! Ablation studies (DESIGN.md §5): α sensitivity, the reinforcement-
//! comparison baseline, alternative bandit solvers, and the Successive
//! scheme's confidence rule.
//!
//! Run with `cargo run --release -p hec-bench --bin repro_ablation`
//! (`HEC_PROFILE=quick` for a fast smoke run).

use hec_bandit::TrainConfig;
use hec_bench::{univariate_config, Profile};
use hec_core::ablation::{
    alpha_sweep, baseline_ablation, confidence_sweep, solver_comparison, threshold_rule_ablation,
};
use hec_core::Experiment;

fn main() {
    let profile = Profile::from_env();
    println!("== repro_ablation (profile: {profile:?}) ==\n");

    let config = univariate_config(profile);
    let payload = config.payload_bytes();
    let alpha = config.dataset.kind().paper_alpha();
    let train = TrainConfig {
        epochs: config.policy.epochs,
        learning_rate: config.policy.learning_rate,
        ..Default::default()
    };
    let policy_hidden = config.policy_hidden;
    let mut exp = Experiment::prepare(config);
    exp.train_detectors();
    let policy_corpus = exp.split.policy_train.clone();
    let train_oracle = exp.oracle_over(&policy_corpus);
    let eval_corpus = exp.split.full.clone();
    let eval_oracle = exp.oracle_over(&eval_corpus);
    let topo = exp.topology().clone();

    println!("--- (1) alpha sensitivity (Eq. 1 cost parameter) ---");
    let alphas = [5e-5, 2e-4, 5e-4, 2e-3, 1e-2];
    for row in
        alpha_sweep(&train_oracle, &eval_oracle, &topo, payload, &alphas, policy_hidden, train)
    {
        println!(
            "  alpha={:<8.0e} acc={:>6.2}%  delay={:>7.2} ms  reward={:>6.2}  local={:.0}%",
            row.alpha,
            row.accuracy_pct,
            row.mean_delay_ms,
            row.reward,
            row.local_fraction * 100.0
        );
    }

    println!("\n--- (2) reinforcement-comparison baseline vs plain REINFORCE ---");
    let ab = baseline_ablation(&train_oracle, &topo, payload, alpha, policy_hidden, train);
    let show = |label: &str, curve: &hec_bandit::TrainingCurve| {
        let c = &curve.mean_reward_per_epoch;
        let q = c.len() / 4;
        println!(
            "  {label:<18} epoch1={:.3}  e{}={:.3}  e{}={:.3}  final={:.3}",
            c[0],
            q.max(1),
            c[q.max(1) - 1],
            2 * q.max(1),
            c[(2 * q).max(1) - 1],
            curve.final_reward()
        );
    };
    show("with baseline", &ab.with_baseline);
    show("without baseline", &ab.without_baseline);

    println!("\n--- (3) bandit solver comparison ---");
    for row in solver_comparison(&train_oracle, &topo, payload, alpha, train.epochs, 42) {
        println!(
            "  {:<16} online mean reward={:>6.3}  greedy acc={:>6.2}%  greedy delay={:>7.2} ms",
            row.solver, row.mean_reward, row.final_accuracy_pct, row.final_delay_ms
        );
    }

    println!("\n--- (4) threshold-rule ablation (accuracy % per layer IoT/Edge/Cloud) ---");
    for row in threshold_rule_ablation(&eval_oracle) {
        println!(
            "  {:<14} {:>6.2}% / {:>6.2}% / {:>6.2}%",
            row.rule, row.accuracy_pct[0], row.accuracy_pct[1], row.accuracy_pct[2]
        );
    }

    println!("\n--- (5) Successive confidence-rule sweep (paper: factor 2x, fraction 5%) ---");
    for row in
        confidence_sweep(&eval_oracle, &topo, payload, alpha, &[1.5, 2.0, 3.0], &[0.02, 0.05, 0.10])
    {
        println!(
            "  factor={:<4} fraction={:<5} acc={:>6.2}%  f1={:.3}  delay={:>7.2} ms  local={:.0}%",
            row.factor,
            row.fraction,
            row.accuracy_pct,
            row.f1,
            row.mean_delay_ms,
            row.local_fraction * 100.0
        );
    }
}
