//! Service-queue primitives for the fleet simulator.
//!
//! Three contention models cover the testbed's resources:
//!
//! * [`FifoQueue`] — a bounded multi-server FIFO with batch dequeue, for
//!   the shared edge/cloud compute layers (server count =
//!   [`crate::DeviceProfile::concurrency`]);
//! * [`PsResource`] — an egalitarian processor-sharing resource, used for
//!   bandwidth-shared uplinks (every in-flight transfer gets an equal
//!   share of the link) and optionally for compute layers;
//! * per-device dedicated service (layer 0) lives in the engine itself as
//!   a `busy_until` array — each IoT device is its own single server, so
//!   no shared structure is needed.
//!
//! Everything here is deterministic: state evolves only through explicit
//! method calls, ties break by insertion sequence, and no wall-clock or
//! OS entropy is consulted.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

/// A window in flight through the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobRec {
    /// Virtual emission time at the device, ms.
    pub emit_ms: f64,
    /// Global window sequence number (assigned at emission).
    pub seq: u64,
    /// Emitting device id (global across cohorts).
    pub device: u32,
}

/// A bounded multi-server FIFO queue with batch dequeue.
///
/// Jobs wait in arrival order; when a server frees it takes up to
/// `batch_max` waiting jobs and serves them together (the batch costs
/// `exec_ms × (1 + (B−1) × batch_factor)`, so `batch_factor = 1` means no
/// amortisation and `0` means a free ride for tag-alongs). Arrivals beyond
/// `capacity` waiting jobs are rejected — the caller counts them as drops.
#[derive(Debug)]
pub struct FifoQueue {
    servers: usize,
    free_servers: usize,
    capacity: usize,
    batch_max: usize,
    batch_factor: f64,
    waiting: VecDeque<JobRec>,
    slots: Vec<Vec<JobRec>>,
    free_slots: Vec<usize>,
    /// Largest waiting-queue depth observed.
    pub peak_depth: usize,
}

impl FifoQueue {
    /// Creates a queue with `servers` parallel servers, at most `capacity`
    /// waiting jobs and batches of up to `batch_max`.
    ///
    /// # Panics
    ///
    /// Panics if `servers` or `batch_max` is zero, or `batch_factor` is
    /// not in `[0, 1]`.
    pub fn new(servers: usize, capacity: usize, batch_max: usize, batch_factor: f64) -> Self {
        assert!(servers >= 1, "queue needs at least one server");
        assert!(batch_max >= 1, "batch_max must be at least 1");
        assert!(
            (0.0..=1.0).contains(&batch_factor),
            "batch_factor must be in [0, 1], got {batch_factor}"
        );
        Self {
            servers,
            free_servers: servers,
            capacity,
            batch_max,
            batch_factor,
            waiting: VecDeque::new(),
            slots: (0..servers).map(|_| Vec::with_capacity(batch_max)).collect(),
            free_slots: (0..servers).rev().collect(),
            peak_depth: 0,
        }
    }

    /// Offers a job; returns `false` (drop) when the waiting line is full.
    pub fn offer(&mut self, job: JobRec) -> bool {
        if self.waiting.len() >= self.capacity {
            return false;
        }
        self.waiting.push_back(job);
        self.peak_depth = self.peak_depth.max(self.waiting.len());
        true
    }

    /// Starts one service if a server is free and jobs are waiting:
    /// returns the slot id and the service duration for the dequeued
    /// batch. Call in a loop until `None` to saturate free servers.
    pub fn dispatch(&mut self, exec_ms: f64) -> Option<(usize, f64)> {
        if self.free_servers == 0 || self.waiting.is_empty() {
            return None;
        }
        let slot = self.free_slots.pop().expect("free_servers > 0 implies a free slot");
        self.free_servers -= 1;
        let batch = &mut self.slots[slot];
        debug_assert!(batch.is_empty());
        let take = self.batch_max.min(self.waiting.len());
        batch.extend(self.waiting.drain(..take));
        let duration = exec_ms * (1.0 + (take as f64 - 1.0) * self.batch_factor);
        Some((slot, duration))
    }

    /// Completes the service running in `slot`, appending its batch to
    /// `out` (the slot's buffer is retained for reuse) and freeing the
    /// server.
    pub fn complete_into(&mut self, slot: usize, out: &mut Vec<JobRec>) {
        let batch = &mut self.slots[slot];
        debug_assert!(!batch.is_empty(), "completing an idle slot");
        out.extend_from_slice(batch);
        batch.clear();
        self.free_slots.push(slot);
        self.free_servers += 1;
    }

    /// Jobs currently waiting (excludes jobs in service).
    pub fn depth(&self) -> usize {
        self.waiting.len()
    }

    /// Jobs currently being served.
    pub fn in_service(&self) -> usize {
        self.servers - self.free_servers
    }

    /// Total server count.
    pub fn servers(&self) -> usize {
        self.servers
    }
}

/// One transfer/job inside a [`PsResource`], keyed by the cumulative
/// service credit at which it completes.
#[derive(Debug)]
struct PsEntry {
    finish_credit: f64,
    seq: u64,
    job: JobRec,
}

impl PartialEq for PsEntry {
    fn eq(&self, other: &Self) -> bool {
        self.finish_credit == other.finish_credit && self.seq == other.seq
    }
}
impl Eq for PsEntry {}
impl PartialOrd for PsEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for PsEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap by finish credit, FIFO on ties.
        other
            .finish_credit
            .partial_cmp(&self.finish_credit)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// An egalitarian processor-sharing resource (the fluid model of a shared
/// link or a PS compute layer).
///
/// All `n` in-flight jobs progress at rate `min(rate_cap, capacity / n)`.
/// Instead of rescaling every job's remaining work on each arrival —
/// O(n) per event — the resource tracks a single cumulative *service
/// credit* `S(t) = ∫ rate(n(t)) dt`; a job with `work` remaining at
/// insertion completes when `S` has advanced by `work`. A min-heap on the
/// completion credit gives O(log n) arrivals and departures.
///
/// Every mutation bumps [`PsResource::epoch`]; the simulator stamps its
/// scheduled completion events with the epoch and discards stale ones, so
/// completion times may be re-estimated as the share changes without
/// touching already-queued events.
#[derive(Debug)]
pub struct PsResource {
    capacity: f64,
    rate_cap: f64,
    max_jobs: usize,
    credit: f64,
    last_ms: f64,
    heap: BinaryHeap<PsEntry>,
    next_seq: u64,
    /// Mutation counter for stale-event detection.
    pub epoch: u64,
    /// Largest in-flight count observed.
    pub peak_inflight: usize,
}

impl PsResource {
    /// Creates a PS resource.
    ///
    /// `capacity` is the total work served per ms when fully shared,
    /// `rate_cap` bounds one job's service rate (use `f64::INFINITY` for a
    /// link where a lone transfer gets the whole pipe; use `1.0` for a
    /// compute layer where one job cannot occupy more than one server),
    /// and `max_jobs` is the admission bound.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` or `rate_cap` is not positive.
    pub fn new(capacity: f64, rate_cap: f64, max_jobs: usize) -> Self {
        assert!(capacity > 0.0, "capacity must be positive");
        assert!(rate_cap > 0.0, "rate_cap must be positive");
        Self {
            capacity,
            rate_cap,
            max_jobs,
            credit: 0.0,
            last_ms: 0.0,
            heap: BinaryHeap::new(),
            next_seq: 0,
            epoch: 0,
            peak_inflight: 0,
        }
    }

    fn rate(&self) -> f64 {
        let n = self.heap.len();
        if n == 0 {
            0.0
        } else {
            (self.capacity / n as f64).min(self.rate_cap)
        }
    }

    /// Advances the service credit to virtual time `now_ms`.
    fn advance(&mut self, now_ms: f64) {
        debug_assert!(now_ms >= self.last_ms, "PS clock moved backwards");
        self.credit += self.rate() * (now_ms - self.last_ms);
        self.last_ms = now_ms;
    }

    /// Admits a job needing `work` service units; returns `false` (drop)
    /// when `max_jobs` are already in flight.
    pub fn offer(&mut self, now_ms: f64, work: f64, job: JobRec) -> bool {
        self.advance(now_ms);
        if self.heap.len() >= self.max_jobs {
            return false;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(PsEntry { finish_credit: self.credit + work, seq, job });
        self.peak_inflight = self.peak_inflight.max(self.heap.len());
        self.epoch += 1;
        true
    }

    /// Estimated virtual time of the next completion under the *current*
    /// share (`None` when idle). Valid until the next mutation.
    pub fn next_completion_ms(&self) -> Option<f64> {
        let top = self.heap.peek()?;
        let dt = ((top.finish_credit - self.credit) / self.rate()).max(0.0);
        Some(self.last_ms + dt)
    }

    /// Pops every job whose service completed by `now_ms`, appending them
    /// to `out` in completion (credit, then FIFO) order.
    pub fn pop_due_into(&mut self, now_ms: f64, out: &mut Vec<JobRec>) {
        self.advance(now_ms);
        // Tolerance: the scheduled completion time is `credit`-exact up to
        // one rounding of `dt × rate`; scale the slack with the credit
        // magnitude so it stays far below any real job's work.
        let due = self.credit + 1e-9 + 1e-12 * self.credit.abs();
        let mut popped = false;
        while let Some(top) = self.heap.peek() {
            if top.finish_credit > due {
                break;
            }
            out.push(self.heap.pop().expect("peeked entry exists").job);
            popped = true;
        }
        if popped {
            self.epoch += 1;
        }
    }

    /// Jobs currently in flight.
    pub fn inflight(&self) -> usize {
        self.heap.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(seq: u64) -> JobRec {
        JobRec { emit_ms: 0.0, seq, device: 0 }
    }

    #[test]
    fn fifo_serves_in_arrival_order() {
        let mut q = FifoQueue::new(1, 16, 1, 1.0);
        for s in 0..3 {
            assert!(q.offer(job(s)));
        }
        let (slot, dur) = q.dispatch(10.0).expect("server free");
        assert_eq!(dur, 10.0);
        let mut out = Vec::new();
        q.complete_into(slot, &mut out);
        assert_eq!(out[0].seq, 0);
        let (slot, _) = q.dispatch(10.0).unwrap();
        q.complete_into(slot, &mut out);
        assert_eq!(out[1].seq, 1);
    }

    #[test]
    fn fifo_bounds_and_drops() {
        let mut q = FifoQueue::new(1, 2, 1, 1.0);
        assert!(q.offer(job(0)));
        assert!(q.offer(job(1)));
        assert!(!q.offer(job(2)), "third job must be rejected");
        assert_eq!(q.peak_depth, 2);
    }

    #[test]
    fn fifo_batches_amortise_service_time() {
        let mut q = FifoQueue::new(1, 16, 4, 0.25);
        for s in 0..4 {
            q.offer(job(s));
        }
        let (slot, dur) = q.dispatch(10.0).unwrap();
        // 10 × (1 + 3 × 0.25) = 17.5 for four jobs vs 40 serially.
        assert!((dur - 17.5).abs() < 1e-12, "got {dur}");
        let mut out = Vec::new();
        q.complete_into(slot, &mut out);
        assert_eq!(out.len(), 4);
        assert_eq!(q.in_service(), 0);
    }

    #[test]
    fn fifo_multi_server_runs_concurrently() {
        let mut q = FifoQueue::new(3, 16, 1, 1.0);
        for s in 0..5 {
            q.offer(job(s));
        }
        let mut started = 0;
        while q.dispatch(5.0).is_some() {
            started += 1;
        }
        assert_eq!(started, 3, "three servers, three concurrent services");
        assert_eq!(q.depth(), 2);
    }

    #[test]
    fn ps_single_job_gets_full_capacity() {
        // Link model: capacity 1 work/ms, no per-job cap.
        let mut ps = PsResource::new(1.0, f64::INFINITY, 1024);
        assert!(ps.offer(0.0, 8.0, job(0)));
        assert!((ps.next_completion_ms().unwrap() - 8.0).abs() < 1e-12);
    }

    #[test]
    fn ps_sharing_halves_the_rate() {
        let mut ps = PsResource::new(1.0, f64::INFINITY, 1024);
        ps.offer(0.0, 10.0, job(0));
        // Second transfer arrives halfway: 5 units of the first remain,
        // now served at rate 1/2 → finishes at 5 + 10 = 15 ms.
        ps.offer(5.0, 10.0, job(1));
        let t = ps.next_completion_ms().unwrap();
        assert!((t - 15.0).abs() < 1e-9, "got {t}");
        let mut out = Vec::new();
        ps.pop_due_into(t, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].seq, 0);
        // Remaining job now alone again: 5 units left at full rate.
        let t2 = ps.next_completion_ms().unwrap();
        assert!((t2 - 20.0).abs() < 1e-9, "got {t2}");
    }

    #[test]
    fn ps_rate_cap_models_server_limit() {
        // Compute model: 4 servers, one job can use at most one server.
        let mut ps = PsResource::new(4.0, 1.0, 1024);
        ps.offer(0.0, 10.0, job(0));
        // A lone job is capped at rate 1 → 10 ms, not 2.5 ms.
        assert!((ps.next_completion_ms().unwrap() - 10.0).abs() < 1e-12);
        // Eight identical jobs share 4 servers → rate 1/2 each → 20 ms.
        for s in 1..8 {
            ps.offer(0.0, 10.0, job(s));
        }
        assert!((ps.next_completion_ms().unwrap() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn ps_admission_bound_drops() {
        let mut ps = PsResource::new(1.0, f64::INFINITY, 2);
        assert!(ps.offer(0.0, 1.0, job(0)));
        assert!(ps.offer(0.0, 1.0, job(1)));
        assert!(!ps.offer(0.0, 1.0, job(2)));
        assert_eq!(ps.inflight(), 2);
        assert_eq!(ps.peak_inflight, 2);
    }

    #[test]
    fn ps_epoch_bumps_on_mutation() {
        let mut ps = PsResource::new(1.0, f64::INFINITY, 8);
        let e0 = ps.epoch;
        ps.offer(0.0, 1.0, job(0));
        assert!(ps.epoch > e0);
        let e1 = ps.epoch;
        let mut out = Vec::new();
        ps.pop_due_into(ps.next_completion_ms().unwrap(), &mut out);
        assert_eq!(out.len(), 1);
        assert!(ps.epoch > e1);
    }
}
