//! The six-model catalog keyed by HEC layer (Fig. 1a).
//!
//! The paper associates one model with each of the K = 3 layers of the
//! hierarchical edge computing system: IoT device (Raspberry Pi 3), edge
//! server (Jetson TX2) and cloud (GPU Devbox). This module owns the layer
//! enum and the constructors that build the exact model families of the
//! paper at configurable scale.

use serde::{Deserialize, Serialize};

use crate::ae::{AeArchitecture, AutoencoderDetector};
use crate::detector::AnomalyDetector;
use crate::seq2seq_detector::Seq2SeqDetector;

/// A layer of the K = 3 hierarchical edge computing system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum HecLayer {
    /// Layer 1 — the IoT device (Raspberry Pi 3 in the paper's testbed).
    IoT,
    /// Layer 2 — the edge server (NVIDIA Jetson TX2).
    Edge,
    /// Layer 3 — the cloud (NVIDIA Devbox, 4× Titan X).
    Cloud,
}

impl HecLayer {
    /// All layers bottom-up.
    pub const ALL: [HecLayer; 3] = [HecLayer::IoT, HecLayer::Edge, HecLayer::Cloud];

    /// Zero-based index (also the bandit's action id).
    pub fn index(self) -> usize {
        match self {
            HecLayer::IoT => 0,
            HecLayer::Edge => 1,
            HecLayer::Cloud => 2,
        }
    }

    /// Layer from an action index.
    ///
    /// # Panics
    ///
    /// Panics if `index > 2`.
    pub fn from_index(index: usize) -> Self {
        Self::ALL[index]
    }

    /// The testbed hardware the paper deploys at this layer.
    pub fn hardware(self) -> &'static str {
        match self {
            HecLayer::IoT => "Raspberry Pi 3",
            HecLayer::Edge => "NVIDIA Jetson TX2",
            HecLayer::Cloud => "NVIDIA Devbox (4x GTX Titan X)",
        }
    }
}

impl std::fmt::Display for HecLayer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HecLayer::IoT => write!(f, "IoT"),
            HecLayer::Edge => write!(f, "Edge"),
            HecLayer::Cloud => write!(f, "Cloud"),
        }
    }
}

/// Static description of a catalog model (what Table I summarises).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModelSpec {
    /// Model name as printed in the paper.
    pub name: String,
    /// HEC layer this model is deployed at.
    pub layer: HecLayer,
    /// Trainable parameter count.
    pub params: usize,
    /// Int8 quantisation mode label (e.g. `int8-per-row`) when this model's
    /// inference runs the quantised path; `None` for the f32 path.
    pub quant: Option<String>,
}

/// A trained (or trainable) set of three detectors, one per HEC layer.
///
/// # Example
///
/// ```rust
/// use hec_anomaly::{HecLayer, ModelCatalog};
///
/// let catalog = ModelCatalog::univariate(96, 0);
/// assert_eq!(catalog.specs().len(), 3);
/// let specs = catalog.specs();
/// assert!(specs[0].params < specs[2].params); // capacity ladder
/// ```
pub struct ModelCatalog {
    detectors: Vec<Box<dyn AnomalyDetector>>,
}

impl ModelCatalog {
    /// The univariate family: AE-IoT (3 layers), AE-Edge (5), AE-Cloud (7)
    /// for windows of `input_dim` points.
    pub fn univariate(input_dim: usize, seed: u64) -> Self {
        Self {
            detectors: vec![
                Box::new(AutoencoderDetector::new("AE-IoT", AeArchitecture::iot(input_dim), seed)),
                Box::new(AutoencoderDetector::new(
                    "AE-Edge",
                    AeArchitecture::edge(input_dim),
                    seed.wrapping_add(1),
                )),
                Box::new(AutoencoderDetector::new(
                    "AE-Cloud",
                    AeArchitecture::cloud(input_dim),
                    seed.wrapping_add(2),
                )),
            ],
        }
    }

    /// Like [`Self::univariate`] but the layer-0 (IoT) detector opts into
    /// the int8 quantised inference path under `mode` — weights quantised
    /// once post-training, activations per batch when the mode asks for it.
    /// The edge and cloud detectors keep the f32 path: the paper's premise
    /// is that *on-device* inference is the resource-constrained one, and
    /// the quantised layer-0 delay is what feeds back into the fleet's
    /// delay economy.
    pub fn univariate_quantized(input_dim: usize, seed: u64, mode: hec_nn::QuantMode) -> Self {
        let mut iot = AutoencoderDetector::new("AE-IoT", AeArchitecture::iot(input_dim), seed);
        iot.set_quant_mode(Some(mode));
        Self {
            detectors: vec![
                Box::new(iot),
                Box::new(AutoencoderDetector::new(
                    "AE-Edge",
                    AeArchitecture::edge(input_dim),
                    seed.wrapping_add(1),
                )),
                Box::new(AutoencoderDetector::new(
                    "AE-Cloud",
                    AeArchitecture::cloud(input_dim),
                    seed.wrapping_add(2),
                )),
            ],
        }
    }

    /// The multivariate family: LSTM-seq2seq-IoT (`hidden` units),
    /// LSTM-seq2seq-Edge (double units), BiLSTM-seq2seq-Cloud
    /// (bidirectional) over `input_dim` channels.
    ///
    /// Deployment fidelity: on-device inference reads compressed sensor
    /// buffers (IoT 3-bit, edge 4-bit input quantization) while offloaded
    /// windows reach the cloud at full fidelity — the fidelity/compute
    /// tradeoff documented in DESIGN.md §2 that reproduces the paper's
    /// accuracy ladder.
    pub fn multivariate(input_dim: usize, hidden: usize, seed: u64) -> Self {
        let mut iot = Seq2SeqDetector::iot(input_dim, hidden, seed);
        iot.set_input_bits(Some(3));
        let mut edge = Seq2SeqDetector::edge(input_dim, hidden, seed.wrapping_add(1));
        edge.set_input_bits(Some(4));
        let cloud = Seq2SeqDetector::cloud(input_dim, hidden, seed.wrapping_add(2));
        Self { detectors: vec![Box::new(iot), Box::new(edge), Box::new(cloud)] }
    }

    /// Builds a catalog from three arbitrary detectors (bottom-up order).
    ///
    /// # Panics
    ///
    /// Panics unless exactly 3 detectors are given.
    pub fn from_detectors(detectors: Vec<Box<dyn AnomalyDetector>>) -> Self {
        assert_eq!(detectors.len(), 3, "catalog needs exactly K = 3 detectors");
        Self { detectors }
    }

    /// The detector deployed at `layer`.
    pub fn detector_mut(&mut self, layer: HecLayer) -> &mut dyn AnomalyDetector {
        self.detectors[layer.index()].as_mut()
    }

    /// Mutable access to all three detectors (bottom-up).
    pub fn detectors_mut(&mut self) -> &mut [Box<dyn AnomalyDetector>] {
        &mut self.detectors
    }

    /// Static specs for reporting (Table I's identity columns).
    pub fn specs(&self) -> Vec<ModelSpec> {
        self.detectors
            .iter()
            .zip(HecLayer::ALL)
            .map(|(d, layer)| ModelSpec {
                name: d.name().to_owned(),
                layer,
                params: d.param_count(),
                quant: d.quant_mode().map(|m| m.label()),
            })
            .collect()
    }
}

impl std::fmt::Debug for ModelCatalog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names: Vec<&str> = self.detectors.iter().map(|d| d.name()).collect();
        write!(f, "ModelCatalog({names:?})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layer_indices_roundtrip() {
        for layer in HecLayer::ALL {
            assert_eq!(HecLayer::from_index(layer.index()), layer);
        }
    }

    #[test]
    fn layer_ordering_bottom_up() {
        assert!(HecLayer::IoT < HecLayer::Edge);
        assert!(HecLayer::Edge < HecLayer::Cloud);
    }

    #[test]
    fn univariate_catalog_ladder() {
        let catalog = ModelCatalog::univariate(96, 0);
        let specs = catalog.specs();
        assert_eq!(specs[0].name, "AE-IoT");
        assert_eq!(specs[1].name, "AE-Edge");
        assert_eq!(specs[2].name, "AE-Cloud");
        assert!(specs[0].params < specs[1].params);
        assert!(specs[1].params < specs[2].params);
    }

    #[test]
    fn multivariate_catalog_ladder() {
        let catalog = ModelCatalog::multivariate(18, 32, 0);
        let specs = catalog.specs();
        assert_eq!(specs[2].name, "BiLSTM-seq2seq-Cloud");
        assert!(specs[0].params < specs[1].params);
        assert!(specs[1].params < specs[2].params);
    }

    #[test]
    fn quantized_catalog_marks_layer0_only() {
        use hec_nn::{QuantMode, QuantScheme};
        let catalog =
            ModelCatalog::univariate_quantized(96, 0, QuantMode::int8(QuantScheme::PerRow));
        let specs = catalog.specs();
        assert_eq!(specs[0].quant.as_deref(), Some("int8-per-row"));
        assert_eq!(specs[1].quant, None);
        assert_eq!(specs[2].quant, None);
        // The plain catalog is entirely f32.
        assert!(ModelCatalog::univariate(96, 0).specs().iter().all(|s| s.quant.is_none()));
    }

    #[test]
    fn detector_lookup_by_layer() {
        let mut catalog = ModelCatalog::univariate(32, 0);
        assert_eq!(catalog.detector_mut(HecLayer::Cloud).name(), "AE-Cloud");
        assert_eq!(catalog.detector_mut(HecLayer::IoT).name(), "AE-IoT");
    }

    #[test]
    fn hardware_strings() {
        assert!(HecLayer::IoT.hardware().contains("Raspberry"));
        assert!(HecLayer::Cloud.hardware().contains("Devbox"));
    }

    #[test]
    #[should_panic(expected = "exactly K = 3")]
    fn wrong_count_rejected() {
        let _ = ModelCatalog::from_detectors(vec![]);
    }

    #[test]
    fn display_names() {
        assert_eq!(HecLayer::IoT.to_string(), "IoT");
        assert_eq!(HecLayer::Edge.to_string(), "Edge");
        assert_eq!(HecLayer::Cloud.to_string(), "Cloud");
    }
}
