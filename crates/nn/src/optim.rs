//! First-order optimizers.
//!
//! The paper trains the seq2seq models with **RMSProp** (§II-A2); SGD and Adam
//! are provided for the policy network and ablations. Optimizers keep
//! per-parameter state keyed by a caller-supplied *slot* index (stable across
//! steps because layers visit parameters in a fixed order).

use std::collections::HashMap;

use hec_tensor::Matrix;

/// A stateful first-order optimizer.
///
/// `slot` identifies a parameter tensor; callers must pass the same slot for
/// the same tensor on every step (see
/// [`Sequential::apply_gradients`](crate::Sequential::apply_gradients)).
pub trait Optimizer {
    /// Updates `param` in place given its gradient.
    fn step(&mut self, slot: usize, param: &mut Matrix, grad: &Matrix);

    /// Current learning rate.
    fn learning_rate(&self) -> f32;

    /// Replaces the learning rate (for schedules / ablations).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Plain stochastic gradient descent, optionally with momentum.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: HashMap<usize, Matrix>,
}

impl Sgd {
    /// SGD with learning rate `lr` and no momentum.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not positive.
    pub fn new(lr: f32) -> Self {
        Self::with_momentum(lr, 0.0)
    }

    /// SGD with momentum `µ` (`0 ≤ µ < 1`).
    ///
    /// # Panics
    ///
    /// Panics if `lr <= 0` or `momentum` outside `[0, 1)`.
    pub fn with_momentum(lr: f32, momentum: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0, 1)");
        Self { lr, momentum, velocity: HashMap::new() }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, slot: usize, param: &mut Matrix, grad: &Matrix) {
        if self.momentum == 0.0 {
            param.add_scaled(grad, -self.lr);
            return;
        }
        let v =
            self.velocity.entry(slot).or_insert_with(|| Matrix::zeros(param.rows(), param.cols()));
        // v = µ·v − lr·g ; θ += v
        *v = v.scale(self.momentum);
        v.add_scaled(grad, -self.lr);
        *param += &*v;
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        assert!(lr > 0.0, "learning rate must be positive");
        self.lr = lr;
    }
}

/// RMSProp (Tieleman & Hinton) — the optimizer the paper uses for the
/// LSTM-seq2seq models.
#[derive(Debug, Clone)]
pub struct RmsProp {
    lr: f32,
    decay: f32,
    epsilon: f32,
    mean_sq: HashMap<usize, Matrix>,
}

impl RmsProp {
    /// RMSProp with the Keras defaults: `rho = 0.9`, `ε = 1e-7`.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not positive.
    pub fn new(lr: f32) -> Self {
        Self::with_params(lr, 0.9, 1e-7)
    }

    /// Fully-parameterised constructor.
    ///
    /// # Panics
    ///
    /// Panics if `lr <= 0`, `decay` outside `(0, 1)`, or `epsilon <= 0`.
    pub fn with_params(lr: f32, decay: f32, epsilon: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!(decay > 0.0 && decay < 1.0, "decay must be in (0, 1)");
        assert!(epsilon > 0.0, "epsilon must be positive");
        Self { lr, decay, epsilon, mean_sq: HashMap::new() }
    }
}

impl Optimizer for RmsProp {
    fn step(&mut self, slot: usize, param: &mut Matrix, grad: &Matrix) {
        let ms =
            self.mean_sq.entry(slot).or_insert_with(|| Matrix::zeros(param.rows(), param.cols()));
        let d = self.decay;
        // ms = ρ·ms + (1-ρ)·g²
        for (m, &g) in ms.as_mut_slice().iter_mut().zip(grad.as_slice().iter()) {
            *m = d * *m + (1.0 - d) * g * g;
        }
        let lr = self.lr;
        let eps = self.epsilon;
        for ((p, &g), &m) in
            param.as_mut_slice().iter_mut().zip(grad.as_slice().iter()).zip(ms.as_slice().iter())
        {
            *p -= lr * g / (m.sqrt() + eps);
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        assert!(lr > 0.0, "learning rate must be positive");
        self.lr = lr;
    }
}

/// Adam (Kingma & Ba) with bias correction.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    epsilon: f32,
    t: u64,
    moments: HashMap<usize, (Matrix, Matrix)>,
}

impl Adam {
    /// Adam with the standard defaults `β₁ = 0.9`, `β₂ = 0.999`, `ε = 1e-8`.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not positive.
    pub fn new(lr: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        Self { lr, beta1: 0.9, beta2: 0.999, epsilon: 1e-8, t: 0, moments: HashMap::new() }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, slot: usize, param: &mut Matrix, grad: &Matrix) {
        // Counting steps per slot would be more precise; counting per call is
        // the common simplification and only affects early bias correction.
        if slot == 0 {
            self.t += 1;
        }
        let t = self.t.max(1);
        let (m, v) = self.moments.entry(slot).or_insert_with(|| {
            (Matrix::zeros(param.rows(), param.cols()), Matrix::zeros(param.rows(), param.cols()))
        });
        let (b1, b2) = (self.beta1, self.beta2);
        for ((mi, vi), &g) in
            m.as_mut_slice().iter_mut().zip(v.as_mut_slice().iter_mut()).zip(grad.as_slice().iter())
        {
            *mi = b1 * *mi + (1.0 - b1) * g;
            *vi = b2 * *vi + (1.0 - b2) * g * g;
        }
        let bias1 = 1.0 - b1.powi(t as i32);
        let bias2 = 1.0 - b2.powi(t as i32);
        let lr = self.lr;
        let eps = self.epsilon;
        for ((p, &mi), &vi) in
            param.as_mut_slice().iter_mut().zip(m.as_slice().iter()).zip(v.as_slice().iter())
        {
            let m_hat = mi / bias1;
            let v_hat = vi / bias2;
            *p -= lr * m_hat / (v_hat.sqrt() + eps);
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        assert!(lr > 0.0, "learning rate must be positive");
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimise f(θ) = ‖θ − c‖² with each optimizer; all should converge.
    fn run_quadratic(opt: &mut dyn Optimizer, steps: usize) -> f32 {
        let target = Matrix::from_rows(&[&[3.0, -2.0]]);
        let mut theta = Matrix::zeros(1, 2);
        for _ in 0..steps {
            let grad = (&theta - &target).scale(2.0);
            opt.step(0, &mut theta, &grad);
        }
        (&theta - &target).frobenius_norm()
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        assert!(run_quadratic(&mut Sgd::new(0.1), 100) < 1e-3);
    }

    #[test]
    fn sgd_momentum_converges_on_quadratic() {
        assert!(run_quadratic(&mut Sgd::with_momentum(0.05, 0.9), 200) < 1e-2);
    }

    #[test]
    fn rmsprop_converges_on_quadratic() {
        assert!(run_quadratic(&mut RmsProp::new(0.05), 500) < 1e-2);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        assert!(run_quadratic(&mut Adam::new(0.1), 500) < 1e-2);
    }

    #[test]
    fn rmsprop_adapts_per_coordinate() {
        // Coordinates with wildly different curvatures: RMSProp normalises.
        let mut opt = RmsProp::new(0.01);
        let mut theta = Matrix::from_rows(&[&[10.0, 10.0]]);
        for _ in 0..2000 {
            // f = 100·x² + 0.01·y²
            let grad = Matrix::from_rows(&[&[200.0 * theta[(0, 0)], 0.02 * theta[(0, 1)]]]);
            opt.step(0, &mut theta, &grad);
        }
        assert!(theta[(0, 0)].abs() < 0.1, "steep coord did not converge: {theta:?}");
        assert!(theta[(0, 1)].abs() < 5.0, "shallow coord made no progress: {theta:?}");
    }

    #[test]
    fn slots_have_independent_state() {
        let mut opt = RmsProp::new(0.01);
        let mut a = Matrix::ones(1, 1);
        let mut b = Matrix::ones(2, 2);
        let ga = Matrix::ones(1, 1);
        let gb = Matrix::ones(2, 2);
        opt.step(0, &mut a, &ga);
        opt.step(1, &mut b, &gb); // different shape in a different slot: fine
        assert!(a[(0, 0)] < 1.0 && b[(0, 0)] < 1.0);
    }

    #[test]
    #[should_panic(expected = "learning rate must be positive")]
    fn negative_lr_rejected() {
        let _ = Sgd::new(-0.1);
    }

    #[test]
    fn lr_getter_setter() {
        let mut opt = Adam::new(0.1);
        assert_eq!(opt.learning_rate(), 0.1);
        opt.set_learning_rate(0.01);
        assert_eq!(opt.learning_rate(), 0.01);
    }
}
