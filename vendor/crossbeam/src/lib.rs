//! Offline subset of the `crossbeam` API: an unbounded MPMC channel.
//!
//! Backed by `Mutex<VecDeque>` + `Condvar` rather than crossbeam's
//! lock-free queue — same semantics (cloneable senders *and* receivers,
//! blocking `recv`, iteration ends when all senders are dropped), lower
//! throughput. Good enough for the simulator's per-layer worker threads;
//! swap the path dependency for crates.io `crossbeam` to get the fast one.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Multi-producer multi-consumer channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        ready: Condvar,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone.
    /// The unsent message is returned inside.
    #[derive(PartialEq, Eq, Clone, Copy)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl<T: Send> std::error::Error for SendError<T> {}

    /// Error returned by [`Receiver::recv`] on an empty, disconnected channel.
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty, disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub enum TryRecvError {
        /// The channel is currently empty but senders remain.
        Empty,
        /// The channel is empty and every sender is gone.
        Disconnected,
    }

    impl fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TryRecvError::Empty => f.write_str("channel empty"),
                TryRecvError::Disconnected => f.write_str("channel disconnected"),
            }
        }
    }

    impl std::error::Error for TryRecvError {}

    /// The sending half; cloneable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half; cloneable.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State { queue: VecDeque::new(), senders: 1, receivers: 1 }),
            ready: Condvar::new(),
        });
        (Sender { shared: Arc::clone(&shared) }, Receiver { shared })
    }

    impl<T> Sender<T> {
        /// Enqueues `msg`, failing only if every receiver is gone.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            if state.receivers == 0 {
                return Err(SendError(msg));
            }
            state.queue.push_back(msg);
            drop(state);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().unwrap_or_else(|e| e.into_inner()).senders += 1;
            Self { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            state.senders -= 1;
            if state.senders == 0 {
                drop(state);
                // Wake blocked receivers so they can observe disconnection.
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders are dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(msg) = state.queue.pop_front() {
                    return Ok(msg);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.shared.ready.wait(state).unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Pops a message without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            match state.queue.pop_front() {
                Some(msg) => Ok(msg),
                None if state.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.shared.state.lock().unwrap_or_else(|e| e.into_inner()).queue.len()
        }

        /// True if no messages are queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// Blocking iterator; ends when the channel disconnects.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().unwrap_or_else(|e| e.into_inner()).receivers += 1;
            Self { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            state.receivers -= 1;
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    /// Borrowing blocking iterator over received messages.
    #[derive(Debug)]
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;

        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = IntoIter<T>;

        fn into_iter(self) -> IntoIter<T> {
            IntoIter { receiver: self }
        }
    }

    /// Owning blocking iterator over received messages.
    #[derive(Debug)]
    pub struct IntoIter<T> {
        receiver: Receiver<T>,
    }

    impl<T> Iterator for IntoIter<T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, TryRecvError};

    #[test]
    fn fifo_within_a_sender() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let got: Vec<i32> = rx.iter().collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn iter_ends_when_all_senders_drop() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        let h1 = std::thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        let h2 = std::thread::spawn(move || {
            for i in 100..200 {
                tx2.send(i).unwrap();
            }
        });
        let mut got: Vec<i32> = rx.iter().collect();
        h1.join().unwrap();
        h2.join().unwrap();
        got.sort_unstable();
        assert_eq!(got, (0..200).collect::<Vec<_>>());
    }

    #[test]
    fn send_fails_without_receivers() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn try_recv_reports_state() {
        let (tx, rx) = unbounded::<u8>();
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        tx.send(9).unwrap();
        assert_eq!(rx.try_recv(), Ok(9));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }
}
