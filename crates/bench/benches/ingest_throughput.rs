//! Criterion bench: chunked parallel ingestion throughput (feature
//! `real-data`). An amplified in-memory power-CSV stream — the
//! checked-in fixture's data lines replicated to a few MB — is parsed by
//! the serial reader and by the chunked path at 1/2/4 workers. Reported
//! wall times divide into GB/s (bytes / time) and windows/s
//! (`bytes / bytes_per_window / time`); EXPERIMENTS.md records both.
//! On a multi-core host the chunked rows separate by thread count; on a
//! single-core host they collapse and the delta to `serial` is the
//! chunking + stitching overhead, which this bench pins as small.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::io::Cursor;

use hec_core::parallel::with_thread_count;
use hec_data::ingest::{MissingValuePolicy, PowerCsvSource};

/// Day length of the power fixture (readings per day).
const SPD: usize = 24;
/// Data-line replication factor: ~17 KB of fixture → a few MB of input.
const AMPLIFY: usize = 200;

/// The power fixture's bytes with its data lines replicated `AMPLIFY`×
/// (header and comments once, at the top — mid-file headers would be
/// data errors, same as in any real concatenated trace).
fn amplified_bytes() -> Vec<u8> {
    let path = format!("{}/../../fixtures/power_good.csv", env!("CARGO_MANIFEST_DIR"));
    let raw = std::fs::read(path).expect("power fixture present");
    let mut pos = 0usize;
    let tail_start = loop {
        if pos >= raw.len() {
            break raw.len();
        }
        let eol =
            raw[pos..].iter().position(|&b| b == b'\n').map(|i| pos + i + 1).unwrap_or(raw.len());
        let trimmed: &[u8] = {
            let mut l = &raw[pos..eol];
            while let [rest @ .., b'\n' | b'\r' | b' ' | b'\t'] = l {
                l = rest;
            }
            l
        };
        if trimmed.is_empty() || trimmed.starts_with(b"#") {
            pos = eol;
            continue;
        }
        break eol; // end of the header line
    };
    let tail = raw[tail_start..].to_vec();
    let mut big = raw;
    for _ in 1..AMPLIFY {
        big.extend_from_slice(&tail);
    }
    big
}

fn bench_ingest_throughput(c: &mut Criterion) {
    let bytes = amplified_bytes();
    let mb = bytes.len() as f64 / 1e6;
    let source = PowerCsvSource::new("amplified.csv", SPD, MissingValuePolicy::Reject);
    let windows = source.parse(Cursor::new(&bytes[..])).expect("clean input").len();

    let mut group = c.benchmark_group("ingest_throughput");
    group.sample_size(10);

    group.bench_function(&format!("{mb:.1}MB_{windows}w_serial"), |b| {
        b.iter(|| black_box(source.parse(Cursor::new(black_box(&bytes[..])))).unwrap())
    });
    for threads in [1usize, 2, 4] {
        let chunk = bytes.len().div_ceil(threads).max(64 * 1024);
        group.bench_function(&format!("{mb:.1}MB_{windows}w_chunked_threads{threads}"), |b| {
            b.iter(|| {
                with_thread_count(threads, || {
                    black_box(source.parse_chunked(black_box(&bytes[..]), chunk)).unwrap()
                })
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ingest_throughput);
criterion_main!(benches);
