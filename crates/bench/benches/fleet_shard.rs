//! Criterion bench: the sharded fleet engine — partitioning overhead and
//! thread scaling. `shards1/threads1` is the serial baseline (the exact
//! pre-sharding engine); `shardsN/threadsM` measures the conservative
//! lookahead-window coordinator driving N independent shards on M
//! workers. On a multi-core host the `shards4` rows separate by thread
//! count; on a single-core host they collapse (and the delta to
//! `threads1` is pure coordination overhead). Real-scale throughput
//! (1M devices) is recorded in EXPERIMENTS.md from `repro_fleet
//! --devices 1000000 --shards N` stderr timings.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use hec_core::parallel::with_thread_count;
use hec_core::run_scenario_sharded;
use hec_sim::fleet::{FleetScale, FleetScenario, ShardPlan};

fn bench_shard_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("fleet_shard_quick");
    group.sample_size(20);
    let sc = FleetScenario::edge_saturated(FleetScale::Quick);
    let windows = sc.total_windows();
    for &(shards, threads) in &[(1usize, 1usize), (2, 2), (4, 1), (4, 2), (4, 4)] {
        group.bench_function(&format!("{windows}_windows_shards{shards}_threads{threads}"), |b| {
            b.iter(|| {
                with_thread_count(threads, || {
                    black_box(run_scenario_sharded(black_box(&sc), shards))
                })
            })
        });
    }
    group.finish();
}

fn bench_partitioning(c: &mut Criterion) {
    // Plan construction alone: cohort slicing + per-shard scenario and
    // topology derivation. Must stay negligible next to a run.
    let mut group = c.benchmark_group("fleet_shard_plan");
    let sc = FleetScenario::flash_crowd(FleetScale::Full);
    for shards in [4usize, 16, 64] {
        group.bench_function(&format!("plan_full_scale_shards{shards}"), |b| {
            b.iter(|| black_box(ShardPlan::new(black_box(&sc), shards)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_shard_scaling, bench_partitioning);
criterion_main!(benches);
