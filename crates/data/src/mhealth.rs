//! Synthetic MHEALTH-like multivariate dataset.
//!
//! Substitutes the UCI MHEALTH dataset used by the paper (§III-A): 10
//! subjects, 12 activities, two body-worn motion sensors (left ankle and
//! right wrist), each with a 3-axis accelerometer, gyroscope and
//! magnetometer — 18 channels at 50 Hz. Windows are 128 timesteps
//! (~2.56 s) with stride 64, the dominant activity (walking) is *normal*
//! and all other activities are *anomalous*.
//!
//! Each `(activity, channel)` pair gets a stable pseudo-random harmonic
//! signature (fundamental frequency, two harmonics, DC offset) drawn from a
//! seed-derived bank, plus per-subject amplitude scaling and per-session
//! phase, plus white noise. Activities differ from walking by varying
//! amounts (standing is near-DC, jogging is walking-like at higher
//! frequency), which reproduces the hardness spectrum the adaptive scheme
//! exploits.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use hec_tensor::Matrix;

use crate::window::{sliding_windows, LabeledWindow};

/// Number of sensor channels (2 sensors × 3 modalities × 3 axes).
pub const CHANNELS: usize = 18;

/// The 12 MHEALTH activities.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Activity {
    /// Standing still (near-DC signals).
    Standing,
    /// Sitting and relaxing.
    Sitting,
    /// Lying down.
    LyingDown,
    /// Walking — the dominant activity, treated as **normal**.
    Walking,
    /// Climbing stairs.
    ClimbingStairs,
    /// Waist bends forward.
    WaistBends,
    /// Frontal elevation of arms.
    ArmElevation,
    /// Knees bending (crouching).
    KneesBending,
    /// Cycling.
    Cycling,
    /// Jogging.
    Jogging,
    /// Running.
    Running,
    /// Jump front and back.
    Jumping,
}

impl Activity {
    /// All 12 activities in MHEALTH order.
    pub const ALL: [Activity; 12] = [
        Activity::Standing,
        Activity::Sitting,
        Activity::LyingDown,
        Activity::Walking,
        Activity::ClimbingStairs,
        Activity::WaistBends,
        Activity::ArmElevation,
        Activity::KneesBending,
        Activity::Cycling,
        Activity::Jogging,
        Activity::Running,
        Activity::Jumping,
    ];

    /// Stable index 0..12.
    pub fn index(self) -> usize {
        Self::ALL.iter().position(|&a| a == self).expect("activity in ALL")
    }

    /// Whether this activity is the dataset's *normal* class.
    pub fn is_normal(self) -> bool {
        self == Activity::Walking
    }

    /// Fundamental movement frequency in Hz (drives the harmonic signature).
    fn fundamental_hz(self) -> f32 {
        match self {
            Activity::Standing => 0.15,
            Activity::Sitting => 0.10,
            Activity::LyingDown => 0.08,
            Activity::Walking => 1.8,
            Activity::ClimbingStairs => 1.4,
            Activity::WaistBends => 0.5,
            Activity::ArmElevation => 0.6,
            Activity::KneesBending => 0.7,
            Activity::Cycling => 1.5,
            Activity::Jogging => 2.6,
            Activity::Running => 3.2,
            Activity::Jumping => 2.2,
        }
    }

    /// Overall movement intensity (scales the oscillatory amplitude).
    fn intensity(self) -> f32 {
        match self {
            Activity::Standing => 0.08,
            Activity::Sitting => 0.05,
            Activity::LyingDown => 0.04,
            Activity::Walking => 1.0,
            Activity::ClimbingStairs => 1.15,
            Activity::WaistBends => 0.7,
            Activity::ArmElevation => 0.65,
            Activity::KneesBending => 0.8,
            Activity::Cycling => 0.9,
            Activity::Jogging => 1.6,
            Activity::Running => 2.1,
            Activity::Jumping => 1.9,
        }
    }

    /// How similar the activity's motion signature is to walking, in
    /// `[0, 1)`. The generator blends each activity's harmonic bank toward
    /// walking's by this factor, creating the hardness spectrum the paper's
    /// adaptive scheme exploits: near-walking gaits (stairs, jogging) are
    /// hard for small models; static postures are trivially easy.
    fn walking_similarity(self) -> f32 {
        match self {
            Activity::Standing => 0.0,
            Activity::Sitting => 0.0,
            Activity::LyingDown => 0.0,
            Activity::Walking => 1.0,
            Activity::ClimbingStairs => 0.93,
            Activity::WaistBends => 0.55,
            Activity::ArmElevation => 0.60,
            Activity::KneesBending => 0.85,
            Activity::Cycling => 0.88,
            Activity::Jogging => 0.90,
            Activity::Running => 0.82,
            Activity::Jumping => 0.75,
        }
    }
}

/// Configuration for [`MhealthGenerator`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MhealthConfig {
    /// Number of subjects (default 10, as in MHEALTH).
    pub subjects: usize,
    /// Window length in timesteps (default 128 ≈ 2.56 s at 50 Hz).
    pub window: usize,
    /// Window stride (default 64).
    pub stride: usize,
    /// Session length in timesteps for each anomalous activity per subject.
    pub session_len: usize,
    /// Multiplier on session length for the normal activity, so normal
    /// windows dominate the corpus (walking is the dominant activity).
    pub normal_session_multiplier: usize,
    /// White-noise standard deviation.
    pub noise_std: f32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MhealthConfig {
    fn default() -> Self {
        Self {
            subjects: 10,
            window: 128,
            stride: 64,
            session_len: 1024,
            normal_session_multiplier: 8,
            noise_std: 0.20,
            seed: 42,
        }
    }
}

/// Per-(activity, channel) harmonic signature.
#[derive(Debug, Clone, Copy)]
struct Signature {
    dc: f32,
    amp1: f32,
    amp2: f32,
    amp3: f32,
    phase: f32,
}

/// Deterministic generator for the synthetic MHEALTH-like dataset.
///
/// # Example
///
/// ```rust
/// use hec_data::{Activity, MhealthConfig, MhealthGenerator};
///
/// let gen = MhealthGenerator::new(MhealthConfig {
///     subjects: 2, session_len: 256, ..Default::default()
/// });
/// let windows = gen.generate();
/// assert!(windows.iter().any(|(_, a)| a.is_normal()));
/// assert!(windows.iter().all(|(w, _)| w.channels() == 18));
/// ```
#[derive(Debug, Clone)]
pub struct MhealthGenerator {
    config: MhealthConfig,
    signatures: Vec<Signature>, // 12 × 18, indexed activity*CHANNELS + channel
}

/// Sampling rate of the simulated sensors, Hz.
pub const SAMPLE_RATE_HZ: f32 = 50.0;

impl MhealthGenerator {
    /// Creates a generator; the signature bank is derived from the seed.
    ///
    /// # Panics
    ///
    /// Panics if any of `subjects`, `window`, `stride`, `session_len` or
    /// `normal_session_multiplier` is zero, or `session_len < window`.
    pub fn new(config: MhealthConfig) -> Self {
        assert!(config.subjects > 0, "subjects must be non-zero");
        assert!(config.window > 0 && config.stride > 0, "window/stride must be non-zero");
        assert!(config.session_len >= config.window, "session shorter than a window");
        assert!(config.normal_session_multiplier > 0, "multiplier must be non-zero");
        let mut rng = StdRng::seed_from_u64(config.seed ^ 0xC0FFEE);
        let signatures = (0..Activity::ALL.len() * CHANNELS)
            .map(|_| Signature {
                dc: rng.gen_range(-0.6..0.6),
                amp1: rng.gen_range(0.4..1.0),
                amp2: rng.gen_range(0.1..0.5),
                amp3: rng.gen_range(0.02..0.2),
                phase: rng.gen_range(0.0..std::f32::consts::TAU),
            })
            .collect();
        Self { config, signatures }
    }

    /// The configuration.
    pub fn config(&self) -> &MhealthConfig {
        &self.config
    }

    /// Synthesises one session (`steps × 18`) for a subject and activity,
    /// using the activity's built-in [`Activity::walking_similarity`].
    ///
    /// # Panics
    ///
    /// Panics if `steps == 0` or `subject >= subjects`.
    pub fn session(&self, subject: usize, activity: Activity, steps: usize) -> Matrix {
        self.session_with_similarity(subject, activity, steps, activity.walking_similarity())
    }

    /// Like [`MhealthGenerator::session`] but with an explicit
    /// walking-similarity blend in `[0, 1]` — the hardness dial used by the
    /// calibration probes and hardness ablations (1.0 = indistinguishable
    /// from walking, 0.0 = the activity's raw signature).
    ///
    /// # Panics
    ///
    /// Panics if `steps == 0`, `subject >= subjects`, or `blend ∉ [0, 1]`.
    pub fn session_with_similarity(
        &self,
        subject: usize,
        activity: Activity,
        steps: usize,
        blend: f32,
    ) -> Matrix {
        assert!(steps > 0, "steps must be non-zero");
        assert!(subject < self.config.subjects, "subject out of range");
        assert!((0.0..=1.0).contains(&blend), "blend must be in [0, 1]");
        let mut rng = StdRng::seed_from_u64(
            self.config
                .seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add((subject * 131 + activity.index()) as u64),
        );
        let subject_scale: f32 = 0.85 + 0.3 * (subject as f32 / self.config.subjects as f32);
        let session_phase: f32 = rng.gen_range(0.0..std::f32::consts::TAU);
        // Blend the activity toward walking by its similarity: near-walking
        // activities become subtle (hard) anomalies, static postures stay
        // blatantly different (easy).
        let walk = Activity::Walking;
        let f0 = blend * walk.fundamental_hz() + (1.0 - blend) * activity.fundamental_hz();
        let intensity = blend * walk.intensity() + (1.0 - blend) * activity.intensity();

        // Continuous latent dynamics: the gait frequency wanders slowly
        // (±12%) and every channel carries its own slow amplitude envelope
        // (independent phases/rates — limb-placement dynamics). This puts
        // the window's latent dimensionality at ≈ 2 + 18, so LSTM encoder
        // capacity genuinely binds: a small state cannot track the per-
        // channel envelopes and its reconstruction envelope on *normal*
        // data stays wide, hiding subtle activity deviations.
        let wander_phase: f32 = rng.gen_range(0.0..std::f32::consts::TAU);
        let wander_rate: f32 = rng.gen_range(0.05..0.10); // Hz
        let mod_phases: Vec<f32> =
            (0..CHANNELS).map(|_| rng.gen_range(0.0..std::f32::consts::TAU)).collect();
        let mod_rates: Vec<f32> = (0..CHANNELS).map(|_| rng.gen_range(0.20..0.50)).collect();
        let dt = 1.0 / SAMPLE_RATE_HZ;

        let mut data = Vec::with_capacity(steps * CHANNELS);
        let mut theta = session_phase; // integrated gait phase
        for s in 0..steps {
            let t = s as f32 / SAMPLE_RATE_HZ;
            let wander =
                1.0 + 0.12 * (std::f32::consts::TAU * wander_rate * t + wander_phase).sin();
            theta += std::f32::consts::TAU * f0 * wander * dt;
            for c in 0..CHANNELS {
                let amp_mod =
                    1.0 + 0.25 * (std::f32::consts::TAU * mod_rates[c] * t + mod_phases[c]).sin();
                let own = self.signatures[activity.index() * CHANNELS + c];
                let base = self.signatures[walk.index() * CHANNELS + c];
                let sig = Signature {
                    dc: blend * base.dc + (1.0 - blend) * own.dc,
                    amp1: blend * base.amp1 + (1.0 - blend) * own.amp1,
                    amp2: blend * base.amp2 + (1.0 - blend) * own.amp2,
                    amp3: blend * base.amp3 + (1.0 - blend) * own.amp3,
                    phase: blend * base.phase + (1.0 - blend) * own.phase,
                };
                let w = theta + sig.phase;
                let value = sig.dc
                    + intensity
                        * subject_scale
                        * amp_mod
                        * (sig.amp1 * w.sin()
                            + sig.amp2 * (2.0 * w).sin()
                            + sig.amp3 * (3.0 * w + 0.7).sin());
                let noise = gaussian(&mut rng) * self.config.noise_std;
                data.push(value + noise);
            }
        }
        Matrix::from_vec(steps, CHANNELS, data)
    }

    /// Generates the full windowed corpus: every subject performs every
    /// activity; walking sessions are `normal_session_multiplier` times
    /// longer. Returns `(window, activity)` pairs; the window's label is
    /// `!activity.is_normal()`.
    pub fn generate(&self) -> Vec<(LabeledWindow, Activity)> {
        let mut out = Vec::new();
        for subject in 0..self.config.subjects {
            for &activity in &Activity::ALL {
                let steps = if activity.is_normal() {
                    self.config.session_len * self.config.normal_session_multiplier
                } else {
                    self.config.session_len
                };
                let session = self.session(subject, activity, steps);
                for w in sliding_windows(&session, self.config.window, self.config.stride) {
                    out.push((LabeledWindow::new(w, !activity.is_normal()), activity));
                }
            }
        }
        out
    }
}

/// Standard-normal sample via Box–Muller.
fn gaussian(rng: &mut StdRng) -> f32 {
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> MhealthGenerator {
        MhealthGenerator::new(MhealthConfig {
            subjects: 3,
            session_len: 256,
            normal_session_multiplier: 4,
            ..Default::default()
        })
    }

    #[test]
    fn session_shape() {
        let gen = tiny();
        let s = gen.session(0, Activity::Walking, 300);
        assert_eq!(s.shape(), (300, 18));
    }

    #[test]
    fn sessions_are_deterministic() {
        let gen = tiny();
        let a = gen.session(1, Activity::Cycling, 200);
        let b = gen.session(1, Activity::Cycling, 200);
        assert_eq!(a, b);
    }

    #[test]
    fn subjects_differ() {
        let gen = tiny();
        let a = gen.session(0, Activity::Walking, 200);
        let b = gen.session(1, Activity::Walking, 200);
        assert!((&a - &b).frobenius_norm() > 1.0);
    }

    #[test]
    fn activities_differ() {
        let gen = tiny();
        let a = gen.session(0, Activity::Walking, 200);
        let b = gen.session(0, Activity::Running, 200);
        assert!((&a - &b).frobenius_norm() > 1.0);
    }

    #[test]
    fn walking_windows_dominate() {
        let windows = tiny().generate();
        let normal = windows.iter().filter(|(w, _)| !w.anomalous).count();
        let anomalous = windows.len() - normal;
        // multiplier 4 on 1 normal activity vs 11 anomalous activities of
        // equal length: normal should still be a sizeable fraction.
        assert!(normal > 0 && anomalous > 0);
        let windows_per_session = (256 - 128) / 64 + 1; // 3
        let expected_normal = 3 * ((256 * 4 - 128) / 64 + 1);
        assert_eq!(normal, expected_normal);
        assert_eq!(anomalous, 3 * 11 * windows_per_session);
    }

    #[test]
    fn labels_match_activity() {
        for (w, a) in tiny().generate() {
            assert_eq!(w.anomalous, !a.is_normal());
        }
    }

    #[test]
    fn window_dimensions() {
        for (w, _) in tiny().generate() {
            assert_eq!(w.len(), 128);
            assert_eq!(w.channels(), 18);
        }
    }

    #[test]
    fn standing_is_calmer_than_running() {
        let gen = tiny();
        let still = gen.session(0, Activity::Standing, 256);
        let run = gen.session(0, Activity::Running, 256);
        let energy = |m: &Matrix| {
            let mean = m.mean();
            m.as_slice().iter().map(|&x| (x - mean) * (x - mean)).sum::<f32>() / m.len() as f32
        };
        // Running is blended 0.6 toward walking (hardness continuum), so the
        // contrast is intentionally moderate rather than extreme.
        assert!(energy(&run) > 2.5 * energy(&still));
    }

    #[test]
    fn activity_indices_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for a in Activity::ALL {
            assert!(seen.insert(a.index()));
        }
        assert_eq!(seen.len(), 12);
    }

    #[test]
    #[should_panic(expected = "subject out of range")]
    fn bad_subject_panics() {
        let gen = tiny();
        let _ = gen.session(99, Activity::Walking, 10);
    }
}
