//! Schema adapters: raw CSV/NDJSON records → the paper's dataset layouts.
//!
//! * [`PowerCsvSource`] — the UCI-power-demand layout: a univariate
//!   demand series, one reading per line (`demand[,label]`), grouped
//!   into fixed-length day windows. Labels are day-granular: `0` (or an
//!   omitted field) = normal, `k ≥ 1` = anomaly class `k − 1`, and every
//!   reading of a day must agree on the label.
//! * [`MhealthNdjsonSource`] — the MHEALTH layout: one sample per line
//!   (`{"ch": [18 numbers], "activity": 0..11, "subject": n}`), windowed
//!   per contiguous `(subject, activity)` session with the paper's
//!   sliding-window protocol. Activity indices follow
//!   [`Activity::ALL`]; walking is normal, everything else anomalous.
//!
//! Both adapters stream through the allocation-lean readers, resolve
//! every sample through the configured [`MissingValuePolicy`] *before*
//! any window is built (so standardisation never sees a NaN), and
//! surface malformed input as line-numbered [`IngestError`]s.

use std::io::BufRead;
use std::path::{Path, PathBuf};

use hec_tensor::Matrix;

use crate::ingest::csv::{CsvReader, CsvRecord};
use crate::ingest::ndjson::{NdjsonReader, NdjsonRecord};
use crate::ingest::{Imputer, MissingValuePolicy};
use crate::mhealth::{Activity, CHANNELS};
use crate::source::{DatasetSource, IngestError, LabeledCorpus};
use crate::window::{sliding_windows, LabeledWindow};

/// Opens a trace file, reporting failures as line-0 I/O errors.
fn open(path: &Path, name: &str) -> Result<std::io::BufReader<std::fs::File>, IngestError> {
    let file = std::fs::File::open(path).map_err(|e| IngestError::Io {
        name: name.to_owned(),
        line: 0,
        source: e,
    })?;
    Ok(std::io::BufReader::new(file))
}

/// Logical trace name for error reports: the file name only, never the
/// absolute path (keeps repro output byte-identical across machines).
pub(crate) fn trace_name(path: &Path) -> String {
    path.file_name().map(|n| n.to_string_lossy().into_owned()).unwrap_or_else(|| "?".into())
}

/// The stateless per-record part of a power-demand reading, extracted by
/// [`PowerRow::extract`] and replayed through [`PowerBuilder::push`].
///
/// The split is what makes chunked parsing byte-identical to serial: a
/// chunk worker extracts rows **without** touching the stateful imputer /
/// day-label machinery, and the stitch phase replays every row through
/// one [`PowerBuilder`] in input order — the exact code path the serial
/// reader takes. The label parse is *deferred* (stored as a `Result`)
/// because the serial reader resolves the value through the imputer
/// before parsing the label; eagerly failing on a bad label in a worker
/// would report the wrong error for a line like `,bogus`.
#[derive(Debug)]
pub(crate) struct PowerRow {
    line: u64,
    /// Raw first field: `None` = missing marker, for the imputer.
    raw: Option<f32>,
    /// Deferred label parse (serial order: imputer first, label second).
    label: Result<usize, IngestError>,
}

impl PowerRow {
    /// Extracts the stateless parts of one CSV record, in the serial
    /// reader's error order (arity, then value, label deferred).
    pub(crate) fn extract(rec: &CsvRecord<'_>) -> Result<Self, IngestError> {
        rec.expect_fields(1, 2)?;
        let raw = rec.parse_f32(0)?;
        // An omitted label means normal — both a 1-field row and the
        // trailing-comma export shape `0.35,` (empty second field).
        let label =
            if rec.len() > 1 && !rec.field(1).is_empty() { rec.parse_usize(1) } else { Ok(0) };
        Ok(Self { line: rec.line_number(), raw, label })
    }
}

/// The stateful half of power-demand ingestion: imputation, day-label
/// consistency, and fixed-length day windowing. Both the serial and the
/// chunked path feed rows through this one type, so their outputs agree
/// by construction.
#[derive(Debug)]
pub(crate) struct PowerBuilder {
    samples_per_day: usize,
    imputer: Imputer,
    windows: Vec<LabeledWindow>,
    classes: Vec<Option<usize>>,
    day: Vec<f32>,
    /// The current day's label and the line that established it.
    day_label: Option<(usize, u64)>,
}

impl PowerBuilder {
    pub(crate) fn new(policy: MissingValuePolicy, samples_per_day: usize) -> Self {
        Self {
            samples_per_day,
            imputer: Imputer::new(policy, 1),
            windows: Vec::new(),
            classes: Vec::new(),
            day: Vec::with_capacity(samples_per_day),
            day_label: None,
        }
    }

    /// Replays one row through the stateful machinery (imputer → label →
    /// day-label consistency → day windowing), in serial order.
    pub(crate) fn push(&mut self, row: PowerRow) -> Result<(), IngestError> {
        let value = self.imputer.resolve(0, row.raw, row.line)?;
        let label = row.label?;
        match self.day_label {
            None => self.day_label = Some((label, row.line)),
            Some((l, at)) if l != label => {
                return Err(IngestError::Schema {
                    line: row.line,
                    message: format!(
                        "label {label} disagrees with label {l} from line {at}: a day's \
                         readings must share one label"
                    ),
                });
            }
            Some(_) => {}
        }
        self.day.push(value);
        if self.day.len() == self.samples_per_day {
            let (label, _) = self.day_label.take().expect("label set with the day's first reading");
            let data = Matrix::from_vec(self.samples_per_day, 1, std::mem::take(&mut self.day));
            self.windows.push(LabeledWindow::new(data, label > 0));
            self.classes.push((label > 0).then(|| label - 1));
            self.day = Vec::with_capacity(self.samples_per_day);
        }
        Ok(())
    }

    /// Finishes the corpus. A trailing partial day is dropped, matching
    /// the windowing protocol's treatment of incomplete tails.
    pub(crate) fn finish(self) -> LabeledCorpus {
        LabeledCorpus::new(self.windows, self.classes)
    }
}

/// File-backed univariate power-demand trace (CSV).
#[derive(Debug, Clone)]
pub struct PowerCsvSource {
    pub(crate) path: PathBuf,
    pub(crate) samples_per_day: usize,
    pub(crate) policy: MissingValuePolicy,
}

impl PowerCsvSource {
    /// Creates a source reading `path`, grouping every `samples_per_day`
    /// consecutive readings into one day window.
    ///
    /// # Panics
    ///
    /// Panics if `samples_per_day == 0`.
    pub fn new(
        path: impl Into<PathBuf>,
        samples_per_day: usize,
        policy: MissingValuePolicy,
    ) -> Self {
        assert!(samples_per_day > 0, "samples_per_day must be non-zero");
        Self { path: path.into(), samples_per_day, policy }
    }

    /// Parses an already-open stream (exposed for tests; [`DatasetSource::
    /// load`] opens the configured path and delegates here).
    pub fn parse(&self, src: impl BufRead) -> Result<LabeledCorpus, IngestError> {
        let name = trace_name(&self.path);
        let mut reader = CsvReader::new(src, name);
        let mut builder = PowerBuilder::new(self.policy, self.samples_per_day);
        let mut first = true;
        while let Some(rec) = reader.next_record()? {
            if std::mem::take(&mut first) && rec.looks_like_header() {
                continue;
            }
            builder.push(PowerRow::extract(&rec)?)?;
        }
        Ok(builder.finish())
    }
}

impl DatasetSource for PowerCsvSource {
    fn name(&self) -> String {
        format!("power-csv({})", trace_name(&self.path))
    }

    fn channels(&self) -> usize {
        1
    }

    fn load(&self) -> Result<LabeledCorpus, IngestError> {
        let _span = hec_telemetry::WallSpan::new("ingest.load");
        let src = open(&self.path, &trace_name(&self.path))?;
        record_bytes("power-csv", &self.path);
        let corpus = self.parse(src)?;
        record_ingest("power-csv", &corpus);
        Ok(corpus)
    }
}

impl PowerCsvSource {
    /// Loads the configured path through the chunked parallel parser
    /// ([`Self::parse_chunked`]): the whole file is read into memory,
    /// split into one newline-snapped range per
    /// [`hec_tensor::parallel::thread_count`] worker, and parsed
    /// concurrently. Byte-identical corpus/errors and identical
    /// telemetry counters to [`DatasetSource::load`], at any thread
    /// count.
    pub fn load_chunked(&self) -> Result<LabeledCorpus, IngestError> {
        let _span = hec_telemetry::WallSpan::new("ingest.load");
        let name = trace_name(&self.path);
        let bytes =
            std::fs::read(&self.path).map_err(|e| IngestError::Io { name, line: 0, source: e })?;
        record_byte_count("power-csv", bytes.len() as u64);
        let threads = hec_tensor::parallel::thread_count();
        let corpus =
            self.parse_chunked(&bytes, super::chunked::default_chunk_bytes(bytes.len(), threads))?;
        record_ingest("power-csv", &corpus);
        Ok(corpus)
    }
}

/// The stateless per-record part of an MHEALTH sample; channel values
/// travel alongside (borrowed in the serial path, copied into a chunk's
/// flat buffer in the chunked path). All of the record-level checks —
/// activity parse + range, subject, `ch` parse + arity — happen here,
/// *before* any stateful step the serial reader would take, so a chunk
/// worker failing at extraction reports exactly the serial error.
#[derive(Debug, Clone, Copy)]
pub(crate) struct MhealthRow {
    line: u64,
    subject: usize,
    activity: usize,
}

impl MhealthRow {
    /// Extracts one NDJSON record, in the serial reader's error order.
    /// Returns the row plus its `ch` slice (borrowing the record).
    pub(crate) fn extract<'a>(rec: &NdjsonRecord<'a>) -> Result<(Self, &'a [f32]), IngestError> {
        let activity = rec.integer("activity")?;
        if activity >= Activity::ALL.len() {
            return Err(IngestError::Schema {
                line: rec.line_number(),
                message: format!(
                    "activity index {activity} out of range (MHEALTH has {} activities)",
                    Activity::ALL.len()
                ),
            });
        }
        let subject = match rec.get("subject") {
            None => 0,
            Some(_) => rec.integer("subject")?,
        };
        let ch = rec.numbers("ch")?;
        if ch.len() != CHANNELS {
            return Err(IngestError::Schema {
                line: rec.line_number(),
                message: format!("expected {CHANNELS} channels in \"ch\", got {}", ch.len()),
            });
        }
        Ok((Self { line: rec.line_number(), subject, activity }, ch))
    }
}

/// The stateful half of MHEALTH ingestion: session tracking, imputation
/// (reset at session boundaries), and per-session sliding windows. Both
/// the serial and the chunked path feed rows through this one type.
#[derive(Debug)]
pub(crate) struct MhealthBuilder {
    window: usize,
    stride: usize,
    imputer: Imputer,
    windows: Vec<LabeledWindow>,
    classes: Vec<Option<usize>>,
    /// The open session's samples (row-major steps × CHANNELS) and key.
    session: Vec<f32>,
    session_key: Option<(usize, usize)>, // (subject, activity)
}

impl MhealthBuilder {
    pub(crate) fn new(policy: MissingValuePolicy, window: usize, stride: usize) -> Self {
        Self {
            window,
            stride,
            imputer: Imputer::new(policy, CHANNELS),
            windows: Vec::new(),
            classes: Vec::new(),
            session: Vec::new(),
            session_key: None,
        }
    }

    /// Windows out the open session (if any) and discards its buffer.
    fn close_session(&mut self) {
        let Some((_, activity_idx)) = self.session_key else { return };
        let steps = self.session.len() / CHANNELS;
        if steps >= self.window {
            let activity = Activity::ALL[activity_idx];
            let data = Matrix::from_vec(steps, CHANNELS, std::mem::take(&mut self.session));
            for w in sliding_windows(&data, self.window, self.stride) {
                self.windows.push(LabeledWindow::new(w, !activity.is_normal()));
                self.classes.push((!activity.is_normal()).then_some(activity_idx));
            }
        } else {
            // Runs shorter than a window yield nothing (the protocol
            // drops incomplete tails); discard the buffered samples.
            self.session.clear();
        }
    }

    /// Replays one sample through the stateful machinery, in serial
    /// order: session-boundary close + imputer reset, then per-channel
    /// imputation.
    pub(crate) fn push(&mut self, row: MhealthRow, ch: &[f32]) -> Result<(), IngestError> {
        let key = (row.subject, row.activity);
        if self.session_key != Some(key) {
            self.close_session();
            self.session_key = Some(key);
            // Impute-previous must not bridge sessions: a gap at the
            // start of a new activity has no in-session history.
            self.imputer.reset();
        }
        for (c, &raw) in ch.iter().enumerate() {
            let v = self.imputer.resolve(c, Some(raw), row.line)?;
            self.session.push(v);
        }
        Ok(())
    }

    pub(crate) fn finish(mut self) -> LabeledCorpus {
        self.close_session();
        LabeledCorpus::new(self.windows, self.classes)
    }
}

/// File-backed MHEALTH-shaped multivariate trace (NDJSON).
#[derive(Debug, Clone)]
pub struct MhealthNdjsonSource {
    pub(crate) path: PathBuf,
    pub(crate) window: usize,
    pub(crate) stride: usize,
    pub(crate) policy: MissingValuePolicy,
}

impl MhealthNdjsonSource {
    /// Creates a source reading `path`, windowing each contiguous
    /// `(subject, activity)` session with `window`/`stride`.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0` or `stride == 0`.
    pub fn new(
        path: impl Into<PathBuf>,
        window: usize,
        stride: usize,
        policy: MissingValuePolicy,
    ) -> Self {
        assert!(window > 0 && stride > 0, "window/stride must be non-zero");
        Self { path: path.into(), window, stride, policy }
    }

    /// Parses an already-open stream (exposed for tests).
    pub fn parse(&self, src: impl BufRead) -> Result<LabeledCorpus, IngestError> {
        let name = trace_name(&self.path);
        let mut reader = NdjsonReader::new(src, name);
        let mut builder = MhealthBuilder::new(self.policy, self.window, self.stride);
        while let Some(rec) = reader.next_record()? {
            let (row, ch) = MhealthRow::extract(&rec)?;
            builder.push(row, ch)?;
        }
        Ok(builder.finish())
    }
}

impl DatasetSource for MhealthNdjsonSource {
    fn name(&self) -> String {
        format!("mhealth-ndjson({})", trace_name(&self.path))
    }

    fn channels(&self) -> usize {
        CHANNELS
    }

    fn load(&self) -> Result<LabeledCorpus, IngestError> {
        let _span = hec_telemetry::WallSpan::new("ingest.load");
        let src = open(&self.path, &trace_name(&self.path))?;
        record_bytes("mhealth-ndjson", &self.path);
        let corpus = self.parse(src)?;
        record_ingest("mhealth-ndjson", &corpus);
        Ok(corpus)
    }
}

impl MhealthNdjsonSource {
    /// Loads the configured path through the chunked parallel parser —
    /// see [`PowerCsvSource::load_chunked`].
    pub fn load_chunked(&self) -> Result<LabeledCorpus, IngestError> {
        let _span = hec_telemetry::WallSpan::new("ingest.load");
        let name = trace_name(&self.path);
        let bytes =
            std::fs::read(&self.path).map_err(|e| IngestError::Io { name, line: 0, source: e })?;
        record_byte_count("mhealth-ndjson", bytes.len() as u64);
        let threads = hec_tensor::parallel::thread_count();
        let corpus =
            self.parse_chunked(&bytes, super::chunked::default_chunk_bytes(bytes.len(), threads))?;
        record_ingest("mhealth-ndjson", &corpus);
        Ok(corpus)
    }
}

/// Records the trace's on-disk size as the `ingest.bytes` counter. The
/// serial path reads the size from file metadata so its counter equals
/// the chunked path's in-memory byte count — telemetry snapshots stay
/// identical whichever loader ran.
fn record_bytes(format: &'static str, path: &Path) {
    if hec_telemetry::ENABLED {
        if let Ok(meta) = std::fs::metadata(path) {
            record_byte_count(format, meta.len());
        }
    }
}

/// Registry half of [`record_bytes`], shared with the chunked loader.
fn record_byte_count(format: &'static str, bytes: u64) {
    if hec_telemetry::ENABLED {
        hec_telemetry::counter_add("ingest.bytes", &[("format", format)], bytes);
    }
}

/// Records a loaded corpus in the telemetry registry. Window and anomaly
/// counts are pure functions of the trace file, so they are deterministic
/// and registry-safe; parse wall time goes to the sidecar via the
/// `ingest.load` span.
fn record_ingest(format: &'static str, corpus: &LabeledCorpus) {
    if hec_telemetry::ENABLED {
        let labels = [("format", format)];
        hec_telemetry::counter_add("ingest.windows", &labels, corpus.len() as u64);
        let anomalous = corpus.windows.iter().filter(|w| w.anomalous).count();
        hec_telemetry::counter_add("ingest.anomalous_windows", &labels, anomalous as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn power(samples_per_day: usize, policy: MissingValuePolicy) -> PowerCsvSource {
        PowerCsvSource::new("power.csv", samples_per_day, policy)
    }

    fn mhealth(window: usize, stride: usize, policy: MissingValuePolicy) -> MhealthNdjsonSource {
        MhealthNdjsonSource::new("trace.ndjson", window, stride, policy)
    }

    #[test]
    fn power_groups_days_and_labels() {
        let text = "demand,label\n1,0\n2,0\n3,1\n4,1\n5,0\n"; // day size 2, tail dropped
        let corpus = power(2, MissingValuePolicy::Reject).parse(Cursor::new(text)).unwrap();
        assert_eq!(corpus.len(), 2);
        assert!(!corpus.windows[0].anomalous);
        assert_eq!(corpus.windows[0].data.as_slice(), &[1.0, 2.0]);
        assert!(corpus.windows[1].anomalous);
        assert_eq!(corpus.classes[1], Some(0));
    }

    #[test]
    fn power_label_column_is_optional() {
        let corpus =
            power(2, MissingValuePolicy::Reject).parse(Cursor::new("1\n2\n3\n4\n")).unwrap();
        assert_eq!(corpus.len(), 2);
        assert_eq!(corpus.normal_count(), 2);
        // The trailing-comma export shape (empty label field) also reads
        // as normal, and may mix with explicit `,0` labels within a day.
        let corpus =
            power(2, MissingValuePolicy::Reject).parse(Cursor::new("1,\n2,0\n3,\n4,\n")).unwrap();
        assert_eq!(corpus.len(), 2);
        assert_eq!(corpus.normal_count(), 2);
    }

    #[test]
    fn power_rejects_inconsistent_day_labels() {
        let text = "1,0\n2,2\n";
        let err = power(2, MissingValuePolicy::Reject).parse(Cursor::new(text)).unwrap_err();
        assert_eq!(err.line(), 2);
        assert!(err.to_string().contains("label 2 disagrees"), "{err}");
        assert!(err.to_string().contains("line 1"), "{err}");
    }

    #[test]
    fn power_missing_value_policies() {
        let text = "1,0\n,0\n3,0\n4,0\n";
        let err = power(2, MissingValuePolicy::Reject).parse(Cursor::new(text)).unwrap_err();
        assert_eq!(err.line(), 2);
        let corpus = power(2, MissingValuePolicy::ImputePrevious).parse(Cursor::new(text)).unwrap();
        assert_eq!(corpus.windows[0].data.as_slice(), &[1.0, 1.0]);
        // A leading gap has nothing to impute from — still a line error.
        let err = power(2, MissingValuePolicy::ImputePrevious)
            .parse(Cursor::new(",0\n2,0\n"))
            .unwrap_err();
        assert_eq!(err.line(), 1);
    }

    #[test]
    fn power_malformed_line_is_line_numbered() {
        let err =
            power(2, MissingValuePolicy::Reject).parse(Cursor::new("1,0\nbogus,0\n")).unwrap_err();
        assert_eq!(err.line(), 2);
        let err =
            power(2, MissingValuePolicy::Reject).parse(Cursor::new("1,0\n2,0,9\n")).unwrap_err();
        assert_eq!(err.line(), 2);
        assert!(err.to_string().contains("expected 1..=2 fields"), "{err}");
    }

    fn sample_line(activity: usize, subject: usize, v: f32) -> String {
        let ch: Vec<String> = (0..CHANNELS).map(|c| format!("{}", v + c as f32)).collect();
        format!("{{\"ch\": [{}], \"activity\": {activity}, \"subject\": {subject}}}", ch.join(", "))
    }

    #[test]
    fn mhealth_windows_per_session() {
        // Walking (activity 3, normal): 6 steps → windows at 0, 2 with
        // window 4 / stride 2; Running (10): 4 steps → 1 window.
        let mut text = String::new();
        for i in 0..6 {
            text.push_str(&sample_line(3, 0, i as f32));
            text.push('\n');
        }
        for i in 0..4 {
            text.push_str(&sample_line(10, 0, 100.0 + i as f32));
            text.push('\n');
        }
        let corpus = mhealth(4, 2, MissingValuePolicy::Reject).parse(Cursor::new(text)).unwrap();
        assert_eq!(corpus.len(), 3);
        assert_eq!(corpus.normal_count(), 2);
        assert_eq!(corpus.class_counts(), vec![(Activity::Running.index(), 1)]);
        assert_eq!(corpus.windows[0].channels(), CHANNELS);
        assert_eq!(corpus.windows[0].data[(0, 0)], 0.0);
        assert_eq!(corpus.windows[2].data[(0, 0)], 100.0);
    }

    #[test]
    fn mhealth_subject_change_splits_sessions() {
        // 3 + 3 steps of the same activity by two subjects: neither run
        // reaches window 4, so no windows at all.
        let mut text = String::new();
        for subject in 0..2 {
            for i in 0..3 {
                text.push_str(&sample_line(3, subject, i as f32));
                text.push('\n');
            }
        }
        let corpus = mhealth(4, 2, MissingValuePolicy::Reject).parse(Cursor::new(text)).unwrap();
        assert!(corpus.is_empty());
    }

    #[test]
    fn mhealth_rejects_bad_arity_and_activity() {
        let err = mhealth(2, 1, MissingValuePolicy::Reject)
            .parse(Cursor::new("{\"ch\": [1, 2], \"activity\": 0}\n"))
            .unwrap_err();
        assert_eq!(err.line(), 1);
        assert!(err.to_string().contains("expected 18 channels"), "{err}");
        assert!(err.to_string().contains("got 2"), "{err}");
        let line = sample_line(12, 0, 0.0);
        let err = mhealth(2, 1, MissingValuePolicy::Reject)
            .parse(Cursor::new(format!("{line}\n")))
            .unwrap_err();
        assert!(err.to_string().contains("activity index 12 out of range"), "{err}");
    }

    #[test]
    fn mhealth_null_samples_follow_policy() {
        let good = sample_line(3, 0, 1.0);
        let gap = good.replacen("[1,", "[null,", 1);
        let text = format!("{good}\n{gap}\n{good}\n{good}\n");
        let err = mhealth(4, 2, MissingValuePolicy::Reject).parse(Cursor::new(&text)).unwrap_err();
        assert_eq!(err.line(), 2);
        let corpus =
            mhealth(4, 2, MissingValuePolicy::ImputePrevious).parse(Cursor::new(&text)).unwrap();
        assert_eq!(corpus.len(), 1);
        // The gap imputed channel 0 from the previous step.
        assert_eq!(corpus.windows[0].data[(1, 0)], 1.0);
    }

    #[test]
    fn mhealth_imputation_does_not_bridge_sessions() {
        let walk = sample_line(3, 0, 1.0);
        let run_gap = sample_line(10, 0, 2.0).replacen("[2,", "[null,", 1);
        let err = mhealth(1, 1, MissingValuePolicy::ImputePrevious)
            .parse(Cursor::new(format!("{walk}\n{run_gap}\n")))
            .unwrap_err();
        assert_eq!(err.line(), 2, "gap at a session start must not borrow the previous session");
    }
}
