//! LSTM seq2seq detectors for multivariate data
//! (LSTM-seq2seq-IoT / LSTM-seq2seq-Edge / BiLSTM-seq2seq-Cloud).
//!
//! §II-A2: the IoT model is a plain LSTM encoder–decoder; the edge model has
//! *double the number of LSTM units*; the cloud model uses a *bidirectional*
//! encoder. Scoring follows §II-A3: per-timestep reconstruction-error vectors
//! are modelled with a Gaussian `N(µ, Σ)` and scored by logPD.

use hec_data::LabeledWindow;
use hec_nn::{RmsProp, Seq2Seq, Seq2SeqConfig};
use hec_tensor::Matrix;

use crate::detector::{validate_training_set, AnomalyDetector, Detection, FitError, FitReport};
use crate::scorer::{ConfidenceRule, LogPdScorer, ThresholdRule};

/// A seq2seq anomaly detector over multichannel windows.
///
/// # Example
///
/// ```rust
/// use hec_anomaly::{AnomalyDetector, Seq2SeqDetector};
/// use hec_data::LabeledWindow;
/// use hec_nn::Seq2SeqConfig;
/// use hec_tensor::Matrix;
///
/// let config = Seq2SeqConfig { input_dim: 2, encoder_hidden: 8, dropout: 0.0, ..Default::default() };
/// let mut det = Seq2SeqDetector::new("demo", config);
/// // Normal: low-frequency sine windows.
/// let train: Vec<LabeledWindow> = (0..12)
///     .map(|i| {
///         let data: Vec<f32> = (0..10)
///             .flat_map(|t| {
///                 let w = t as f32 * 0.4 + i as f32 * 0.05;
///                 [w.sin(), w.cos()]
///             })
///             .collect();
///         LabeledWindow::new(Matrix::from_vec(10, 2, data), false)
///     })
///     .collect();
/// det.fit(&train, 25)?;
/// assert!(det.param_count() > 0);
/// # Ok::<(), hec_anomaly::FitError>(())
/// ```
pub struct Seq2SeqDetector {
    name: String,
    model: Seq2Seq,
    scorer: Option<LogPdScorer>,
    confidence: ConfidenceRule,
    threshold_rule: ThresholdRule,
    flag_fraction: f32,
    learning_rate: f32,
    quantization_bits: Option<u8>,
    truncation_fraction: Option<f32>,
    input_bits: Option<u8>,
}

impl Seq2SeqDetector {
    /// Builds a detector from a [`Seq2SeqConfig`].
    pub fn new(name: &str, config: Seq2SeqConfig) -> Self {
        Self {
            name: name.to_owned(),
            model: Seq2Seq::new(config),
            scorer: None,
            confidence: ConfidenceRule::default(),
            threshold_rule: ThresholdRule::default(),
            flag_fraction: 0.0,
            learning_rate: 1e-3,
            quantization_bits: None,
            truncation_fraction: None,
            input_bits: None,
        }
    }

    /// The IoT-layer model: LSTM encoder/decoder with `hidden` units.
    pub fn iot(input_dim: usize, hidden: usize, seed: u64) -> Self {
        Self::new(
            "LSTM-seq2seq-IoT",
            Seq2SeqConfig {
                input_dim,
                encoder_hidden: hidden,
                bidirectional: false,
                seed,
                ..Default::default()
            },
        )
    }

    /// The edge-layer model: *double* the LSTM units (§II-A2).
    pub fn edge(input_dim: usize, hidden: usize, seed: u64) -> Self {
        Self::new(
            "LSTM-seq2seq-Edge",
            Seq2SeqConfig {
                input_dim,
                encoder_hidden: hidden * 2,
                bidirectional: false,
                seed,
                ..Default::default()
            },
        )
    }

    /// The cloud-layer model: bidirectional encoder (§II-A2).
    pub fn cloud(input_dim: usize, hidden: usize, seed: u64) -> Self {
        Self::new(
            "BiLSTM-seq2seq-Cloud",
            Seq2SeqConfig {
                input_dim,
                encoder_hidden: hidden * 2,
                bidirectional: true,
                seed,
                ..Default::default()
            },
        )
    }

    /// Replaces the confidence rule.
    pub fn set_confidence_rule(&mut self, rule: ConfidenceRule) {
        self.confidence = rule;
    }

    /// Replaces the threshold rule. Takes effect at the next `fit`.
    pub fn set_threshold_rule(&mut self, rule: ThresholdRule) {
        self.threshold_rule = rule;
    }

    /// Enables post-training weight quantization to `bits` bits, emulating
    /// the deployment compression the paper applies to the IoT and edge
    /// models (§III-B). Applied (and the scorer recalibrated) during `fit`.
    pub fn set_quantization_bits(&mut self, bits: Option<u8>) {
        self.quantization_bits = bits;
    }

    /// The configured deployment quantization, if any.
    pub fn quantization_bits(&self) -> Option<u8> {
        self.quantization_bits
    }

    /// Restricts the model to the first `fraction` of every window
    /// (deployment compute budget: the IoT device cannot afford to run the
    /// LSTM over the full 2.56 s window, see DESIGN.md §2). The evidence a
    /// truncated deployment sees is a strict prefix of the full window, so
    /// detection capability is monotone in the fraction by construction.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < fraction <= 1`.
    pub fn set_truncation_fraction(&mut self, fraction: Option<f32>) {
        if let Some(f) = fraction {
            assert!(f > 0.0 && f <= 1.0, "fraction must be in (0, 1]");
        }
        self.truncation_fraction = fraction;
    }

    /// Restricts the on-device input fidelity to `bits` bits per sample
    /// (standardised range ±4 clamped and uniformly quantized). Models
    /// deployed low in the hierarchy read compressed sensor buffers, while
    /// offloaded windows travel at full fidelity — a fidelity/compute
    /// tradeoff that strictly degrades detectability (data-processing
    /// inequality), so the capability ladder cannot invert (DESIGN.md §2).
    ///
    /// # Panics
    ///
    /// Panics unless `2 <= bits <= 12`.
    pub fn set_input_bits(&mut self, bits: Option<u8>) {
        if let Some(b) = bits {
            assert!((2..=12).contains(&b), "input bits must be in 2..=12");
        }
        self.input_bits = bits;
    }

    /// Applies the deployment truncation and input quantization to a
    /// window's timesteps.
    fn deployed_steps(&self, window: &LabeledWindow) -> Vec<Matrix> {
        let mut steps = window.timesteps();
        if let Some(f) = self.truncation_fraction {
            let keep = ((steps.len() as f32 * f).round() as usize).max(2).min(steps.len());
            steps.truncate(keep);
        }
        if let Some(bits) = self.input_bits {
            let levels = ((1u32 << bits) - 1) as f32;
            let delta = 8.0 / levels;
            for m in &mut steps {
                m.map_inplace(|x| {
                    let clamped = x.clamp(-4.0, 4.0);
                    ((clamped + 4.0) / delta).round() * delta - 4.0
                });
            }
        }
        steps
    }

    /// Sets the window-flagging fraction.
    ///
    /// # Panics
    ///
    /// Panics if `fraction ∉ [0, 1)`.
    pub fn set_flag_fraction(&mut self, fraction: f32) {
        assert!((0.0..1.0).contains(&fraction), "flag fraction must be in [0, 1)");
        self.flag_fraction = fraction;
    }

    /// The calibrated scorer, if fitted.
    pub fn scorer(&self) -> Option<&LogPdScorer> {
        self.scorer.as_ref()
    }

    /// Encoded state of a window — the policy network's multivariate context
    /// (§III-B: "we use the encoded states of the LSTM-encoder").
    pub fn encode_context(&mut self, window: &LabeledWindow) -> Vec<f32> {
        let steps = self.deployed_steps(window);
        let state = self.model.encode(&steps);
        state.h.as_slice().to_vec()
    }

    fn window_errors(&mut self, window: &LabeledWindow) -> Vec<Vec<f32>> {
        let steps = self.deployed_steps(window);
        self.model.reconstruction_errors(&steps)
    }

    /// Fits the logPD scorer (and threshold) on `calibration`'s
    /// reconstruction errors through the current weights — shared by
    /// `fit` and `recalibrate`.
    fn calibrate_scorer(&mut self, calibration: &[LabeledWindow]) -> Result<f32, FitError> {
        let per_window: Vec<Vec<Vec<f32>>> =
            calibration.iter().map(|w| self.window_errors(w)).collect();
        let all_errors: Vec<Vec<f32>> = per_window.iter().flatten().cloned().collect();
        let mut scorer = LogPdScorer::fit_with_rule(&all_errors, 1e-4, self.threshold_rule)
            .map_err(|e| match e {
                crate::scorer::ScorerError::Gaussian(g) => FitError::Scoring(g),
                crate::scorer::ScorerError::EmptyCalibrationSet => {
                    FitError::InvalidTrainingSet { reason: "no calibration errors produced".into() }
                }
            })?;
        if let ThresholdRule::WindowFpr(_) = self.threshold_rule {
            let minima: Vec<f32> = per_window
                .iter()
                .map(|errs| errs.iter().map(|e| scorer.log_pd(e)).fold(f32::INFINITY, f32::min))
                .collect();
            scorer.set_threshold(self.threshold_rule.threshold(&minima));
        }
        let threshold = scorer.threshold();
        self.scorer = Some(scorer);
        Ok(threshold)
    }
}

impl AnomalyDetector for Seq2SeqDetector {
    fn name(&self) -> &str {
        &self.name
    }

    fn param_count(&self) -> usize {
        self.model.param_count()
    }

    fn fit(&mut self, train: &[LabeledWindow], epochs: usize) -> Result<FitReport, FitError> {
        validate_training_set(train)?;
        let dim = self.model.config().input_dim;
        for (i, w) in train.iter().enumerate() {
            if w.channels() != dim {
                return Err(FitError::InvalidTrainingSet {
                    reason: format!(
                        "window {i} has {} channels, model expects {dim}",
                        w.channels()
                    ),
                });
            }
        }

        let mut opt = RmsProp::new(self.learning_rate);
        let mut final_loss = 0.0f32;
        for _ in 0..epochs {
            let mut epoch_loss = 0.0f32;
            for w in train {
                let steps: Vec<Matrix> = self.deployed_steps(w);
                epoch_loss += self.model.train_batch(&steps, &mut opt);
            }
            final_loss = epoch_loss / train.len() as f32;
        }

        if let Some(bits) = self.quantization_bits {
            self.model.visit_params(&mut |param, _| {
                hec_tensor::quantize::quantize_inplace(param, bits);
            });
        }

        let threshold = self.calibrate_scorer(train)?;
        Ok(FitReport { epochs, final_loss, threshold })
    }

    fn detect(&mut self, window: &LabeledWindow) -> Detection {
        let errors = self.window_errors(window);
        let scorer = self.scorer.as_ref().expect("detect called before fit");
        let (min_log_pd, anomalous_fraction) = scorer.score_window(&errors);
        let anomalous = anomalous_fraction > self.flag_fraction;
        let confident = self.confidence.is_confident(
            min_log_pd,
            anomalous_fraction,
            scorer.threshold(),
            anomalous,
        );
        Detection { anomalous, confident, min_log_pd, anomalous_fraction }
    }

    fn context_features(&mut self, window: &LabeledWindow) -> Option<Vec<f32>> {
        // Encoder state (paper §III-B) augmented with per-channel mean/std —
        // both computable on the IoT device in one pass; the summary stats
        // compensate for the reduced fidelity of the on-device encoder input
        // (see DESIGN.md §2).
        let mut ctx = self.encode_context(window);
        let n = window.data.rows() as f32;
        for c in 0..window.channels() {
            // Strided column iteration (no per-channel Vec); same summation
            // order as `vecops::{mean, std_dev}` over a copied column.
            let mean = window.data.col_iter(c).sum::<f32>() / n;
            let var = window.data.col_iter(c).map(|x| (x - mean) * (x - mean)).sum::<f32>() / n;
            ctx.push(mean);
            ctx.push(var.sqrt());
        }
        Some(ctx)
    }

    fn threshold(&self) -> Option<f32> {
        self.scorer.as_ref().map(|s| s.threshold())
    }

    /// Re-fits the scorer (and threshold) on `calibration` through the
    /// current weights — one encoder/decoder pass per window, no
    /// retraining. The same code path `fit` calibrates through.
    fn recalibrate(&mut self, calibration: &[LabeledWindow]) -> Result<f32, FitError> {
        validate_training_set(calibration)?;
        if self.scorer.is_none() {
            return Err(FitError::InvalidTrainingSet {
                reason: "recalibrate requires a fitted detector".into(),
            });
        }
        self.calibrate_scorer(calibration)
    }
}

impl std::fmt::Debug for Seq2SeqDetector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Seq2SeqDetector({}, params={})", self.name, self.param_count())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sine_window(freq: f32, phase: f32, steps: usize) -> LabeledWindow {
        let data: Vec<f32> = (0..steps)
            .flat_map(|t| {
                let w = t as f32 * freq + phase;
                [w.sin(), 0.5 * w.cos()]
            })
            .collect();
        LabeledWindow::new(Matrix::from_vec(steps, 2, data), false)
    }

    fn train_set() -> Vec<LabeledWindow> {
        (0..15).map(|i| sine_window(0.4, i as f32 * 0.07, 12)).collect()
    }

    fn small(name: &str, bi: bool, hidden: usize) -> Seq2SeqDetector {
        Seq2SeqDetector::new(
            name,
            Seq2SeqConfig {
                input_dim: 2,
                encoder_hidden: hidden,
                bidirectional: bi,
                dropout: 0.0,
                l2_lambda: 1e-4,
                seed: 3,
            },
        )
    }

    #[test]
    fn param_ladder_iot_edge_cloud() {
        let iot = Seq2SeqDetector::iot(18, 32, 0);
        let edge = Seq2SeqDetector::edge(18, 32, 0);
        let cloud = Seq2SeqDetector::cloud(18, 32, 0);
        assert!(iot.param_count() < edge.param_count());
        assert!(edge.param_count() < cloud.param_count());
        assert_eq!(iot.name(), "LSTM-seq2seq-IoT");
        assert_eq!(edge.name(), "LSTM-seq2seq-Edge");
        assert_eq!(cloud.name(), "BiLSTM-seq2seq-Cloud");
    }

    #[test]
    fn fit_then_detect_separates() {
        let mut det = small("s2s", false, 12);
        let report = det.fit(&train_set(), 60).unwrap();
        assert!(report.threshold.is_finite());

        let normal = sine_window(0.4, 0.03, 12);
        // High-frequency jagged window should be anomalous.
        let weird_data: Vec<f32> =
            (0..12).flat_map(|t| if t % 2 == 0 { [2.0, -2.0] } else { [-2.0, 2.0] }).collect();
        let weird = LabeledWindow::new(Matrix::from_vec(12, 2, weird_data), true);

        let dn = det.detect(&normal);
        let dw = det.detect(&weird);
        assert!(dw.min_log_pd < dn.min_log_pd, "weird window not scored lower");
        assert!(dw.anomalous, "weird window not flagged");
    }

    #[test]
    fn context_vector_has_hidden_width() {
        let mut det = small("s2s", false, 12);
        let ctx = det.encode_context(&sine_window(0.4, 0.0, 12));
        assert_eq!(ctx.len(), 12);
        let mut det_bi = small("s2s-bi", true, 12);
        let ctx_bi = det_bi.encode_context(&sine_window(0.4, 0.0, 12));
        assert_eq!(ctx_bi.len(), 24);
    }

    #[test]
    fn recalibrate_refits_scorer_without_touching_weights() {
        let mut det = small("s2s", false, 12);
        det.fit(&train_set(), 60).unwrap();
        let t0 = det.threshold().unwrap();
        let params_before = det.param_count();

        // Level-shift the regime; recalibrating on it must move the
        // threshold while leaving the model untouched.
        let shifted: Vec<LabeledWindow> = train_set()
            .iter()
            .map(|w| {
                let v: Vec<f32> = w.data.as_slice().iter().map(|x| x + 1.5).collect();
                LabeledWindow::new(Matrix::from_vec(w.data.rows(), w.data.cols(), v), false)
            })
            .collect();
        let t1 = det.recalibrate(&shifted).unwrap();
        assert_ne!(t0, t1);
        assert_eq!(det.threshold(), Some(t1));
        assert_eq!(det.param_count(), params_before);
        assert!(!det.detect(&shifted[0]).anomalous, "recalibrated regime must pass");

        // Unfitted detectors refuse.
        let mut fresh = small("s2s2", false, 12);
        assert!(matches!(
            fresh.recalibrate(&train_set()),
            Err(FitError::InvalidTrainingSet { .. })
        ));
    }

    #[test]
    fn fit_rejects_wrong_channels() {
        let mut det = small("s2s", false, 8);
        let bad = vec![LabeledWindow::new(Matrix::zeros(10, 3), false)];
        assert!(matches!(det.fit(&bad, 1), Err(FitError::InvalidTrainingSet { .. })));
    }

    #[test]
    #[should_panic(expected = "detect called before fit")]
    fn detect_before_fit_panics() {
        let mut det = small("s2s", false, 8);
        let _ = det.detect(&sine_window(0.4, 0.0, 12));
    }
}
