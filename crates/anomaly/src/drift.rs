//! Drift detection on the score stream, and the sliding reservoir that
//! feeds recalibration.
//!
//! The detectors are fit offline and frozen; under a regime change their
//! score stream is the first place the shift becomes visible — a frozen
//! standardiser maps post-drift normals far from the training manifold,
//! reconstruction errors explode, and the per-window anomaly scores
//! saturate. [`PageHinkley`] watches any bounded per-window statistic
//! (the adaptation loop feeds it the layer-0 `anomalous_fraction` from
//! [`detect_batch`]) and raises a deterministic alarm when its running
//! mean shifts by more than a dead-band for long enough. O(1) state and
//! O(1) work per window, no RNG — the alarm index is a pure function of
//! the observed sequence, so the refresh schedule it drives is
//! byte-identical across reruns and thread counts.
//!
//! [`SlidingReservoir`] is the companion buffer: the last `capacity`
//! raw windows of the stream, pushed unconditionally (self-labelled
//! filtering would starve exactly when drift makes everything look
//! anomalous). On an alarm the adaptation loop refits the standardiser
//! from the reservoir and recalibrates the detector scorers on the
//! subset the refreshed pipeline judges normal.
//!
//! [`detect_batch`]: crate::AnomalyDetector::detect_batch

use std::collections::VecDeque;

/// Which direction of mean shift raises the alarm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriftDirection {
    /// Alarm on a sustained **rise** of the mean (the adaptation loop's
    /// default: drift pushes the flagged fraction up).
    Increase,
    /// Alarm on a sustained fall.
    Decrease,
    /// Alarm on either.
    Both,
}

/// Page–Hinkley test parameters. The defaults are tuned for a bounded
/// `[0, 1]` statistic such as a flagged-window fraction: `delta` absorbs
/// its normal-regime wobble, and `lambda = 6` requires roughly eight
/// consecutive fully-saturated windows before alarming — long enough
/// that a chance run of true anomalies (~15% of windows in the paper
/// protocol) will practically never trip it, short enough that a real
/// regime change is caught within a dozen windows.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PageHinkleyConfig {
    /// Dead-band half-width: deviations from the running mean smaller
    /// than this never accumulate.
    pub delta: f64,
    /// Alarm threshold on the accumulated excursion.
    pub lambda: f64,
    /// Warm-up: no alarm before this many observations (the running
    /// mean needs samples before deviations are meaningful).
    pub min_samples: u64,
    /// Which shift direction alarms.
    pub direction: DriftDirection,
}

impl Default for PageHinkleyConfig {
    fn default() -> Self {
        Self { delta: 0.05, lambda: 6.0, min_samples: 30, direction: DriftDirection::Increase }
    }
}

/// The Page–Hinkley mean-shift test: O(1) per observation, exact-rerun
/// deterministic.
///
/// # Example
///
/// ```rust
/// use hec_anomaly::{PageHinkley, PageHinkleyConfig};
///
/// let mut ph = PageHinkley::new(PageHinkleyConfig::default());
/// for _ in 0..100 {
///     assert!(!ph.observe(0.1)); // stationary: no alarm
/// }
/// let fired = (0..20).any(|_| ph.observe(1.0)); // sustained shift
/// assert!(fired);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PageHinkley {
    config: PageHinkleyConfig,
    n: u64,
    mean: f64,
    cum_up: f64,
    min_up: f64,
    cum_down: f64,
    max_down: f64,
}

impl PageHinkley {
    /// A fresh test with the given parameters.
    pub fn new(config: PageHinkleyConfig) -> Self {
        Self { config, n: 0, mean: 0.0, cum_up: 0.0, min_up: 0.0, cum_down: 0.0, max_down: 0.0 }
    }

    /// Observations absorbed since the last reset.
    pub fn observations(&self) -> u64 {
        self.n
    }

    /// The running mean of the observed stream.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The current upward excursion statistic (compared against
    /// `lambda`); useful for telemetry gauges.
    pub fn statistic(&self) -> f64 {
        match self.config.direction {
            DriftDirection::Increase => self.cum_up - self.min_up,
            DriftDirection::Decrease => self.max_down - self.cum_down,
            DriftDirection::Both => (self.cum_up - self.min_up).max(self.max_down - self.cum_down),
        }
    }

    /// Absorbs one observation; returns `true` when the accumulated
    /// mean-shift excursion crosses `lambda` (the caller decides whether
    /// to [`reset`](Self::reset) and refresh). The alarm keeps returning
    /// `true` until reset — it is a level, not an edge.
    ///
    /// # Panics
    ///
    /// Panics if `x` is NaN or ±∞: the score stream is produced by
    /// detectors that refuse non-finite input, so one arriving here is a
    /// pipeline bug, not data.
    pub fn observe(&mut self, x: f32) -> bool {
        assert!(x.is_finite(), "PageHinkley::observe: non-finite observation {x}");
        let x = x as f64;
        self.n += 1;
        self.mean += (x - self.mean) / self.n as f64;
        self.cum_up += x - self.mean - self.config.delta;
        self.min_up = self.min_up.min(self.cum_up);
        self.cum_down += x - self.mean + self.config.delta;
        self.max_down = self.max_down.max(self.cum_down);
        self.n >= self.config.min_samples && self.statistic() > self.config.lambda
    }

    /// Forgets all state (called after a refresh so the test re-learns
    /// the post-refresh regime from scratch).
    pub fn reset(&mut self) {
        *self = Self::new(self.config);
    }
}

/// A fixed-capacity sliding window over the most recent items: push
/// evicts the oldest once full. The adaptation loop keeps the last `R`
/// **raw** windows here so a refresh always has recent data to refit
/// from, whatever the frozen pipeline currently thinks of it.
#[derive(Debug, Clone)]
pub struct SlidingReservoir<T> {
    capacity: usize,
    buf: VecDeque<T>,
}

impl<T> SlidingReservoir<T> {
    /// An empty reservoir holding at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "reservoir capacity must be at least 1");
        Self { capacity, buf: VecDeque::with_capacity(capacity) }
    }

    /// Maximum number of retained items.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Items currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the reservoir is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends an item, evicting the oldest if at capacity.
    pub fn push(&mut self, item: T) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
        }
        self.buf.push_back(item);
    }

    /// Iterates oldest → newest.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.buf.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stationary_stream_never_alarms() {
        let mut ph = PageHinkley::new(PageHinkleyConfig::default());
        // A noisy but stationary 0/1 mix at ~15% positives (the paper's
        // anomaly rate), deterministic pattern.
        for i in 0..2000u32 {
            let x = if i % 7 == 0 { 1.0 } else { 0.05 };
            assert!(!ph.observe(x), "false alarm at {i}");
        }
        assert!(ph.mean() > 0.1 && ph.mean() < 0.3);
    }

    #[test]
    fn sustained_rise_alarms_and_reset_rearms() {
        let mut ph = PageHinkley::new(PageHinkleyConfig::default());
        for _ in 0..100 {
            assert!(!ph.observe(0.1));
        }
        let mut fired_at = None;
        for i in 0..40 {
            if ph.observe(0.95) {
                fired_at = Some(i);
                break;
            }
        }
        let fired_at = fired_at.expect("a 0.1 → 0.95 shift must alarm");
        assert!(fired_at < 20, "alarm should fire within ~a dozen windows, got {fired_at}");
        // Level, not edge: stays up until reset.
        assert!(ph.observe(0.95));
        ph.reset();
        assert_eq!(ph.observations(), 0);
        for _ in 0..100 {
            assert!(!ph.observe(0.95), "after reset the new level is the new normal");
        }
    }

    #[test]
    fn min_samples_suppresses_early_alarms() {
        let cfg = PageHinkleyConfig { min_samples: 50, ..PageHinkleyConfig::default() };
        let mut ph = PageHinkley::new(cfg);
        for i in 0..49 {
            // Wildly shifting from the start — still quiet during warm-up.
            assert!(!ph.observe(if i < 5 { 0.0 } else { 1.0 }) || i >= 49);
        }
    }

    #[test]
    fn decrease_direction_catches_falls_only() {
        let cfg = PageHinkleyConfig {
            direction: DriftDirection::Decrease,
            ..PageHinkleyConfig::default()
        };
        let mut falling = PageHinkley::new(cfg);
        for _ in 0..100 {
            assert!(!falling.observe(0.9));
        }
        assert!((0..40).any(|_| falling.observe(0.05)), "a fall must alarm Decrease");

        let mut rising = PageHinkley::new(cfg);
        for _ in 0..100 {
            assert!(!rising.observe(0.1));
        }
        assert!(!(0..40).any(|_| rising.observe(0.95)), "a rise must not alarm Decrease");
    }

    #[test]
    fn alarm_index_is_deterministic() {
        let stream: Vec<f32> = (0..300).map(|i| if i < 150 { 0.1 } else { 0.8 }).collect();
        let run = |cfg: PageHinkleyConfig| {
            let mut ph = PageHinkley::new(cfg);
            stream.iter().position(|&x| ph.observe(x))
        };
        let cfg = PageHinkleyConfig::default();
        let a = run(cfg);
        let b = run(cfg);
        assert_eq!(a, b);
        assert!(a.is_some());
    }

    #[test]
    #[should_panic(expected = "non-finite observation")]
    fn non_finite_observations_panic() {
        let mut ph = PageHinkley::new(PageHinkleyConfig::default());
        let _ = ph.observe(f32::NAN);
    }

    #[test]
    fn reservoir_is_a_sliding_window() {
        let mut r = SlidingReservoir::new(3);
        assert!(r.is_empty());
        for i in 0..5 {
            r.push(i);
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.capacity(), 3);
        let held: Vec<i32> = r.iter().copied().collect();
        assert_eq!(held, vec![2, 3, 4], "oldest evicted first, iteration oldest → newest");
    }

    #[test]
    #[should_panic(expected = "capacity must be at least 1")]
    fn zero_capacity_reservoir_panics() {
        let _ = SlidingReservoir::<i32>::new(0);
    }
}
