//! The discrete-event fleet engine.
//!
//! A virtual-clock simulator driven by [`EventQueue`] that streams every
//! window of a [`FleetScenario`] through the 3-layer hierarchy:
//!
//! ```text
//! device cohorts ──emit──▶ router ──▶ layer 0: per-device dedicated server
//!                                 └─▶ layer ℓ≥1: uplink (PS when capped)
//!                                          └──▶ compute queue (FIFO/PS)
//!                                                   └──▶ downlink ─▶ done
//! ```
//!
//! Service times come from the topology's [`HecTopology::exec_ms`] ladder,
//! concurrency limits from [`crate::DeviceProfile::concurrency`], and link
//! contention from the scenario's bandwidth overrides. Cohorts may be
//! heterogeneous: per-cohort payload sizes change link serialisation and
//! per-cohort `local_speed` scales the layer-0 execution time. Detection
//! delay is therefore *load-dependent*: the same action costs more under
//! queueing.
//!
//! The engine comes in two shapes sharing one implementation:
//!
//! * [`FleetSim::run_with`] — the push driver: run to completion with a
//!   router and an observer callback (scenario replays, CSV exports);
//! * [`FleetEngine::step`] — the pull driver: advance the virtual clock
//!   until the *next* per-window outcome ([`JobEvent::Served`] /
//!   [`JobEvent::Dropped`]) and return it. This is what closes the
//!   training loop: a caller can route a window, observe its simulated
//!   load-dependent completion, update the policy, and keep going —
//!   without re-running whole scenarios.
//!
//! The engine is single-threaded and fully deterministic — same scenario,
//! same seed ⇒ byte-identical [`FleetReport`] regardless of host thread
//! count or `HEC_THREADS`, and the step-wise API yields exactly the event
//! sequence the push driver reports. The hot path is batched: one
//! emission event injects a whole phase bucket of windows, and a freed
//! server dequeues jobs in batches, so millions of windows cost only a
//! few events each.

use std::collections::VecDeque;

use crate::event::EventQueue;
use crate::topology::HecTopology;

use super::metrics::{DropReason, FleetReport, LatencyHist, LayerSummary, TraceSample};
use super::queueing::{FifoQueue, JobRec, PsResource};
use super::scenario::{Discipline, FleetScenario};

/// Context handed to the router when a window is emitted.
#[derive(Debug)]
pub struct RouteCtx<'a> {
    /// Emitting device (global id).
    pub device: u32,
    /// Global window sequence number.
    pub seq: u64,
    /// Cohort the device belongs to.
    pub cohort: u32,
    /// Virtual emission time, ms.
    pub now_ms: f64,
    /// Per-layer compute backlog, sampled at the emitting bucket's start
    /// (waiting line for FIFO layers, in-flight count for PS layers,
    /// device-local in-flight for layer 0).
    pub queue_depth: &'a [usize],
    /// Per-layer concurrent uplink transfers (0 for uncapped links).
    pub link_inflight: &'a [usize],
}

/// Per-window completion/drop notification for observers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum JobEvent {
    /// The window was served to completion.
    Served {
        /// Global window sequence number.
        seq: u64,
        /// Emitting device.
        device: u32,
        /// Layer that served it.
        layer: usize,
        /// Load-dependent end-to-end latency, ms.
        latency_ms: f64,
    },
    /// The window was shed by admission control.
    Dropped {
        /// Global window sequence number.
        seq: u64,
        /// Emitting device.
        device: u32,
        /// Layer it was routed to.
        layer: usize,
        /// Where it was shed.
        reason: DropReason,
    },
}

/// Discrete events of the fleet simulation.
enum Ev {
    /// One phase bucket of a cohort emits its next window per device.
    Emit { cohort: u32, bucket: u32 },
    /// A bandwidth-shared uplink may have completed transfers.
    LinkDone { layer: u8, epoch: u64 },
    /// A transferred window reaches a shared layer's compute stage.
    ComputeArrive { layer: u8, job: JobRec },
    /// A FIFO service batch finishes.
    ComputeDone { layer: u8, slot: u32 },
    /// A PS compute layer may have completed jobs.
    PsComputeDone { layer: u8, epoch: u64 },
    /// A device-local execution finishes (gauge bookkeeping only).
    LocalDone,
    /// Periodic queue-depth sample.
    Trace,
}

/// Compute stage of a shared layer.
enum Stage {
    Fifo(FifoQueue),
    Ps(PsResource),
}

/// Per-layer mutable simulation state.
struct LayerState {
    exec_ms: f64,
    /// One-way propagation, ms (half the round trip).
    prop_ms: f64,
    /// `Some` when the uplink is bandwidth-capped (the per-window
    /// serialisation work is per-cohort, see `FleetEngine::ser_ms`).
    link: Option<PsResource>,
    /// Shared compute stage (`None` for layer 0).
    stage: Option<Stage>,
    offered: u64,
    served: u64,
    dropped_queue: u64,
    dropped_link: u64,
    busy_ms: f64,
    link_work_ms: f64,
    latency: LatencyHist,
}

/// A read-only snapshot of one layer's raw counters, consumed by the
/// sharded engine when merging shard metrics into a fleet-wide
/// [`FleetReport`].
pub(crate) struct RawLayerStats<'e> {
    pub offered: u64,
    pub served: u64,
    pub dropped_queue: u64,
    pub dropped_link: u64,
    pub busy_ms: f64,
    pub link_work_ms: f64,
    pub latency: &'e LatencyHist,
    pub peak_queue_depth: usize,
    pub peak_link_inflight: usize,
    pub has_link: bool,
}

/// A resumable, step-wise fleet simulation: the pull-driven core behind
/// [`FleetSim`].
///
/// [`FleetEngine::step`] advances the virtual clock until the next
/// per-window outcome and returns it; the caller supplies the router on
/// every call, so routing state (e.g. a policy network being trained on
/// the observed completions) can be mutated *between* steps. Once `step`
/// returns `None` the run is complete and [`FleetEngine::report`] renders
/// the same [`FleetReport`] the push driver would have produced.
pub struct FleetEngine<'a> {
    sc: &'a FleetScenario,
    topo: HecTopology,
    k: usize,
    layers: Vec<LayerState>,
    q: EventQueue<Ev>,
    /// First global device id of each cohort.
    bases: Vec<u32>,
    bucket_count: Vec<u32>,
    ticks: Vec<Vec<u32>>,
    /// Per-cohort layer-0 execution time (heterogeneous `local_speed`).
    exec0: Vec<f64>,
    /// Per-cohort per-layer link serialisation work, ms at full bandwidth
    /// (`None` for uncapped links; heterogeneous payloads).
    ser_ms: Vec<Vec<Option<f64>>>,
    total_devices: u64,
    busy_until: Vec<f64>,
    local_inflight: usize,
    next_seq: u64,
    emitted: u64,
    events: u64,
    depth_scratch: Vec<usize>,
    link_scratch: Vec<usize>,
    done_buf: Vec<JobRec>,
    trace: Vec<TraceSample>,
    last_activity_ms: f64,
    /// Outcomes produced by processed events, not yet handed to the caller.
    pending: VecDeque<JobEvent>,
}

impl<'a> FleetEngine<'a> {
    /// Prepares an engine on the scenario's own topology
    /// ([`FleetScenario::topology`]).
    pub fn new(scenario: &'a FleetScenario) -> Self {
        let topology = scenario.topology();
        Self::with_topology(scenario, topology)
    }

    /// Prepares an engine on an explicit topology (the scenario's
    /// bandwidth overrides are ignored; the topology is taken as-is).
    ///
    /// # Panics
    ///
    /// Panics if the scenario has no cohorts or a cohort's `local_speed`
    /// is invalid.
    pub fn with_topology(scenario: &'a FleetScenario, topology: HecTopology) -> Self {
        assert!(!scenario.cohorts.is_empty(), "scenario has no cohorts");
        let sc = scenario;
        let topo = topology;
        let k = topo.num_layers();
        let total_devices: u64 = sc.total_devices();

        let layers: Vec<LayerState> = (0..k)
            .map(|l| {
                let spec = &topo.layers()[l];
                let link = spec
                    .uplink
                    .bandwidth_mbps
                    .filter(|_| l > 0)
                    .map(|_| PsResource::new(1.0, f64::INFINITY, sc.link_max_inflight));
                let stage = (l > 0).then(|| {
                    let servers = spec.device.concurrency.max(1);
                    match sc.discipline {
                        Discipline::Fifo => Stage::Fifo(FifoQueue::new(
                            servers,
                            sc.queue_capacity,
                            sc.batch_max,
                            sc.batch_factor,
                        )),
                        Discipline::ProcessorSharing => Stage::Ps(PsResource::new(
                            servers as f64,
                            1.0,
                            sc.queue_capacity + servers,
                        )),
                    }
                });
                LayerState {
                    exec_ms: topo.exec_ms(l),
                    prop_ms: spec.uplink.rtt_ms / 2.0,
                    link,
                    stage,
                    offered: 0,
                    served: 0,
                    dropped_queue: 0,
                    dropped_link: 0,
                    busy_ms: 0.0,
                    link_work_ms: 0.0,
                    latency: LatencyHist::new(),
                }
            })
            .collect();

        // Per-cohort heterogeneity tables.
        let exec0: Vec<f64> = sc.cohorts.iter().map(|c| c.local_exec_ms(topo.exec_ms(0))).collect();
        let ser_ms: Vec<Vec<Option<f64>>> = sc
            .cohorts
            .iter()
            .map(|c| {
                let bits = c.payload_or(sc.payload_bytes) as f64 * 8.0;
                (0..k)
                    .map(|l| {
                        topo.layers()[l]
                            .uplink
                            .bandwidth_mbps
                            .filter(|_| l > 0)
                            .map(|mbps| bits / (mbps * 1e6) * 1e3)
                    })
                    .collect()
            })
            .collect();

        // Emission schedule: devices of cohort c occupy the contiguous id
        // range starting at `bases[c]`; each cohort's devices are spread
        // over `buckets` phase offsets within the period, one Emit event
        // per bucket tick.
        let mut bases: Vec<u32> = Vec::with_capacity(sc.cohorts.len());
        let mut next = 0u32;
        for c in &sc.cohorts {
            bases.push(next);
            next += c.devices;
        }
        let bucket_count: Vec<u32> =
            sc.cohorts.iter().map(|c| sc.emit_buckets.clamp(1, c.devices.max(1))).collect();
        let ticks: Vec<Vec<u32>> = bucket_count.iter().map(|&b| vec![0u32; b as usize]).collect();

        let mut engine = Self {
            sc,
            topo,
            k,
            layers,
            q: EventQueue::new(),
            bases,
            bucket_count,
            ticks,
            exec0,
            ser_ms,
            total_devices,
            busy_until: vec![0.0f64; total_devices as usize],
            local_inflight: 0,
            next_seq: 0,
            emitted: 0,
            events: 0,
            depth_scratch: vec![0usize; k],
            link_scratch: vec![0usize; k],
            done_buf: Vec::with_capacity(sc.batch_max.max(16)),
            trace: Vec::new(),
            last_activity_ms: 0.0,
            pending: VecDeque::new(),
        };

        for (c, spec) in sc.cohorts.iter().enumerate() {
            if spec.devices == 0 || spec.windows_per_device == 0 {
                continue;
            }
            for b in 0..engine.bucket_count[c] {
                engine
                    .q
                    .schedule(engine.emit_time(c, b, 0), Ev::Emit { cohort: c as u32, bucket: b });
            }
        }
        if sc.max_trace_samples > 0 {
            engine.q.schedule(0.0, Ev::Trace);
        }
        engine
    }

    /// Windows emitted so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Virtual time of the earliest pending event, or `None` when the run
    /// is complete. This is what the sharded coordinator derives its
    /// conservative barrier times from.
    pub fn next_event_time_ms(&self) -> Option<f64> {
        self.q.peek_time_ms()
    }

    /// Advances the simulation through every event at or before
    /// `barrier_ms`, appending each per-window outcome to `sink` tagged
    /// with the virtual time of the event that produced it (sink entries
    /// are therefore time-ordered). The engine's own `pending` buffer is
    /// drained into the sink, so mixing `advance_until` with [`FleetEngine::
    /// step`] on the same engine never loses or duplicates outcomes.
    ///
    /// This is the shard-local primitive behind the sharded fleet engine:
    /// a shard advances to the coordinator's barrier, and the coordinator
    /// merges the timestamped sinks across shards in stable shard order.
    ///
    /// # Panics
    ///
    /// Panics if the router returns a layer outside the topology.
    pub fn advance_until(
        &mut self,
        barrier_ms: f64,
        router: &mut dyn FnMut(&RouteCtx) -> usize,
        sink: &mut Vec<(f64, JobEvent)>,
    ) {
        // Anything already pending was produced at or before the last
        // processed event's time.
        let carried = self.last_activity_ms;
        for ev in self.pending.drain(..) {
            sink.push((carried, ev));
        }
        while let Some(t) = self.q.peek_time_ms() {
            if t > barrier_ms {
                break;
            }
            let (now, ev) = self.q.pop().expect("peeked event exists");
            self.events += 1;
            if !matches!(ev, Ev::Trace) {
                self.last_activity_ms = now;
            }
            self.dispatch(now, ev, router);
            for ev in self.pending.drain(..) {
                sink.push((now, ev));
            }
        }
    }

    /// Raw per-layer counters and histograms, for the sharded engine's
    /// order-stable metric merge.
    pub(crate) fn raw_layers(&self) -> impl Iterator<Item = RawLayerStats<'_>> {
        self.layers.iter().map(|layer| RawLayerStats {
            offered: layer.offered,
            served: layer.served,
            dropped_queue: layer.dropped_queue,
            dropped_link: layer.dropped_link,
            busy_ms: layer.busy_ms,
            link_work_ms: layer.link_work_ms,
            latency: &layer.latency,
            peak_queue_depth: match &layer.stage {
                Some(Stage::Fifo(f)) => f.peak_depth,
                Some(Stage::Ps(ps)) => ps.peak_inflight,
                None => 0,
            },
            peak_link_inflight: layer.link.as_ref().map_or(0, |ps| ps.peak_inflight),
            has_link: layer.link.is_some(),
        })
    }

    /// Discrete events processed so far.
    pub(crate) fn events_processed(&self) -> u64 {
        self.events
    }

    /// Virtual time of the last processed non-trace event.
    pub(crate) fn last_activity_ms(&self) -> f64 {
        self.last_activity_ms
    }

    /// Queue-depth samples collected so far.
    pub(crate) fn trace_samples(&self) -> &[TraceSample] {
        &self.trace
    }

    /// Device-id range `(lo, hi)` of bucket `b` within cohort `c`.
    fn bucket_range(&self, c: usize, b: u32) -> (u32, u32) {
        let devices = self.sc.cohorts[c].devices;
        let buckets = self.bucket_count[c];
        let base = devices / buckets;
        let rem = devices % buckets;
        let lo = b * base + b.min(rem);
        let hi = lo + base + u32::from(b < rem);
        (lo, hi)
    }

    /// Virtual time at which bucket `b` of cohort `c` emits tick `tick`.
    fn emit_time(&self, c: usize, b: u32, tick: u32) -> f64 {
        let spec = &self.sc.cohorts[c];
        let phase = spec.period_ms * (b as f64 / self.bucket_count[c] as f64);
        spec.start_ms + tick as f64 * spec.period_ms + phase
    }

    /// Advances the simulation until the next per-window outcome and
    /// returns it, or `None` when every event has been processed. The
    /// router is consulted (in deterministic emission order) for each
    /// window emitted along the way.
    ///
    /// # Panics
    ///
    /// Panics if the router returns a layer outside the topology.
    pub fn step(&mut self, router: &mut dyn FnMut(&RouteCtx) -> usize) -> Option<JobEvent> {
        loop {
            if let Some(ev) = self.pending.pop_front() {
                return Some(ev);
            }
            let (now, ev) = self.q.pop()?;
            self.events += 1;
            if !matches!(ev, Ev::Trace) {
                self.last_activity_ms = now;
            }
            self.dispatch(now, ev, router);
        }
    }

    /// Handles one discrete event, appending any per-window outcomes to
    /// `self.pending`.
    fn dispatch(&mut self, now: f64, ev: Ev, router: &mut dyn FnMut(&RouteCtx) -> usize) {
        match ev {
            Ev::Emit { cohort, bucket } => {
                let c = cohort as usize;
                for (l, layer) in self.layers.iter().enumerate() {
                    self.depth_scratch[l] = match &layer.stage {
                        Some(Stage::Fifo(f)) => f.depth(),
                        Some(Stage::Ps(ps)) => ps.inflight(),
                        None => self.local_inflight,
                    };
                    self.link_scratch[l] = layer.link.as_ref().map_or(0, PsResource::inflight);
                }
                let (lo, hi) = self.bucket_range(c, bucket);
                let exec0 = self.exec0[c];
                for local in lo..hi {
                    let device = self.bases[c] + local;
                    let seq = self.next_seq;
                    self.next_seq += 1;
                    self.emitted += 1;
                    let ctx = RouteCtx {
                        device,
                        seq,
                        cohort,
                        now_ms: now,
                        queue_depth: &self.depth_scratch,
                        link_inflight: &self.link_scratch,
                    };
                    let target = router(&ctx);
                    assert!(target < self.k, "router chose layer {target} of {}", self.k);
                    let layer = &mut self.layers[target];
                    layer.offered += 1;
                    if target == 0 {
                        // Dedicated per-device server: the device's own
                        // backlog is the queue.
                        let d = device as usize;
                        let start = self.busy_until[d].max(now);
                        if start - now > self.sc.local_backlog_ms {
                            layer.dropped_queue += 1;
                            self.pending.push_back(JobEvent::Dropped {
                                seq,
                                device,
                                layer: 0,
                                reason: DropReason::QueueFull,
                            });
                        } else {
                            let finish = start + exec0;
                            self.busy_until[d] = finish;
                            layer.busy_ms += exec0;
                            layer.served += 1;
                            let latency = finish - now;
                            layer.latency.record(latency);
                            self.local_inflight += 1;
                            self.q.schedule(finish, Ev::LocalDone);
                            self.pending.push_back(JobEvent::Served {
                                seq,
                                device,
                                layer: 0,
                                latency_ms: latency,
                            });
                        }
                    } else {
                        let job = JobRec { emit_ms: now, seq, device };
                        match (&mut layer.link, self.ser_ms[c][target]) {
                            (Some(ps), Some(work)) => {
                                if ps.offer(now, work, job) {
                                    layer.link_work_ms += work;
                                    let t = ps.next_completion_ms().expect("just offered").max(now);
                                    self.q.schedule(
                                        t,
                                        Ev::LinkDone { layer: target as u8, epoch: ps.epoch },
                                    );
                                } else {
                                    layer.dropped_link += 1;
                                    self.pending.push_back(JobEvent::Dropped {
                                        seq,
                                        device,
                                        layer: target,
                                        reason: DropReason::LinkSaturated,
                                    });
                                }
                            }
                            _ => {
                                let arrive = now + layer.prop_ms;
                                self.q.schedule(
                                    arrive,
                                    Ev::ComputeArrive { layer: target as u8, job },
                                );
                            }
                        }
                    }
                }
                let tick = self.ticks[c][bucket as usize] + 1;
                self.ticks[c][bucket as usize] = tick;
                if tick < self.sc.cohorts[c].windows_per_device {
                    self.q.schedule(self.emit_time(c, bucket, tick), Ev::Emit { cohort, bucket });
                }
            }

            Ev::LinkDone { layer, epoch } => {
                let l = layer as usize;
                let lay = &mut self.layers[l];
                let prop = lay.prop_ms;
                let ps = lay.link.as_mut().expect("LinkDone on uncapped link");
                if epoch != ps.epoch {
                    return; // superseded by a later arrival/completion
                }
                self.done_buf.clear();
                ps.pop_due_into(now, &mut self.done_buf);
                if let Some(t) = ps.next_completion_ms() {
                    self.q.schedule(t.max(now), Ev::LinkDone { layer, epoch: ps.epoch });
                }
                for job in self.done_buf.drain(..) {
                    self.q.schedule(now + prop, Ev::ComputeArrive { layer, job });
                }
            }

            Ev::ComputeArrive { layer, job } => {
                let l = layer as usize;
                let lay = &mut self.layers[l];
                let exec = lay.exec_ms;
                match lay.stage.as_mut().expect("compute on shared layer") {
                    Stage::Fifo(queue) => {
                        if queue.offer(job) {
                            while let Some((slot, dur)) = queue.dispatch(exec) {
                                lay.busy_ms += dur;
                                self.q.schedule(
                                    now + dur,
                                    Ev::ComputeDone { layer, slot: slot as u32 },
                                );
                            }
                        } else {
                            lay.dropped_queue += 1;
                            self.pending.push_back(JobEvent::Dropped {
                                seq: job.seq,
                                device: job.device,
                                layer: l,
                                reason: DropReason::QueueFull,
                            });
                        }
                    }
                    Stage::Ps(ps) => {
                        if ps.offer(now, exec, job) {
                            let t = ps.next_completion_ms().expect("just offered").max(now);
                            self.q.schedule(t, Ev::PsComputeDone { layer, epoch: ps.epoch });
                        } else {
                            lay.dropped_queue += 1;
                            self.pending.push_back(JobEvent::Dropped {
                                seq: job.seq,
                                device: job.device,
                                layer: l,
                                reason: DropReason::QueueFull,
                            });
                        }
                    }
                }
            }

            Ev::ComputeDone { layer, slot } => {
                let l = layer as usize;
                let lay = &mut self.layers[l];
                let prop = lay.prop_ms;
                let exec = lay.exec_ms;
                self.done_buf.clear();
                let Some(Stage::Fifo(queue)) = lay.stage.as_mut() else {
                    unreachable!("ComputeDone on a non-FIFO layer");
                };
                queue.complete_into(slot as usize, &mut self.done_buf);
                for job in self.done_buf.drain(..) {
                    let latency = now + prop - job.emit_ms;
                    lay.served += 1;
                    lay.latency.record(latency);
                    self.pending.push_back(JobEvent::Served {
                        seq: job.seq,
                        device: job.device,
                        layer: l,
                        latency_ms: latency,
                    });
                }
                while let Some((slot, dur)) = queue.dispatch(exec) {
                    lay.busy_ms += dur;
                    self.q.schedule(now + dur, Ev::ComputeDone { layer, slot: slot as u32 });
                }
            }

            Ev::PsComputeDone { layer, epoch } => {
                let l = layer as usize;
                let lay = &mut self.layers[l];
                let prop = lay.prop_ms;
                let exec = lay.exec_ms;
                let Some(Stage::Ps(ps)) = lay.stage.as_mut() else {
                    unreachable!("PsComputeDone on a non-PS layer");
                };
                if epoch != ps.epoch {
                    return;
                }
                self.done_buf.clear();
                ps.pop_due_into(now, &mut self.done_buf);
                if let Some(t) = ps.next_completion_ms() {
                    self.q.schedule(t.max(now), Ev::PsComputeDone { layer, epoch: ps.epoch });
                }
                for job in self.done_buf.drain(..) {
                    let latency = now + prop - job.emit_ms;
                    lay.served += 1;
                    lay.busy_ms += exec;
                    lay.latency.record(latency);
                    self.pending.push_back(JobEvent::Served {
                        seq: job.seq,
                        device: job.device,
                        layer: l,
                        latency_ms: latency,
                    });
                }
            }

            Ev::LocalDone => {
                self.local_inflight -= 1;
            }

            Ev::Trace => {
                let sample = TraceSample {
                    t_ms: now,
                    queue_depth: self
                        .layers
                        .iter()
                        .map(|layer| match &layer.stage {
                            Some(Stage::Fifo(f)) => f.depth(),
                            Some(Stage::Ps(ps)) => ps.inflight(),
                            None => self.local_inflight,
                        })
                        .collect(),
                    link_inflight: self
                        .layers
                        .iter()
                        .map(|layer| layer.link.as_ref().map_or(0, PsResource::inflight))
                        .collect(),
                };
                self.trace.push(sample);
                if self.trace.len() < self.sc.max_trace_samples && self.q.peek_time_ms().is_some() {
                    self.q.schedule_in(self.sc.trace_interval_ms, Ev::Trace);
                }
            }
        }
    }

    /// Renders the run's report. Normally called after [`FleetEngine::
    /// step`] returns `None`; calling earlier reports the progress so far
    /// (utilization denominators use the last processed activity time).
    pub fn report(&self) -> FleetReport {
        let sc = self.sc;
        let horizon = self.last_activity_ms.max(1e-9);
        let mut overall = LatencyHist::new();
        let mut served = 0u64;
        let mut dropped = 0u64;
        let summaries: Vec<LayerSummary> = self
            .layers
            .iter()
            .enumerate()
            .map(|(l, layer)| {
                let servers = if l == 0 {
                    self.total_devices.max(1) as f64
                } else {
                    self.topo.layers()[l].device.concurrency.max(1) as f64
                };
                served += layer.served;
                dropped += layer.dropped_queue + layer.dropped_link;
                overall.merge(&layer.latency);
                LayerSummary {
                    layer: l,
                    name: self.topo.layers()[l].device.name.clone(),
                    offered: layer.offered,
                    served: layer.served,
                    dropped_queue: layer.dropped_queue,
                    dropped_link: layer.dropped_link,
                    drop_rate: if layer.offered == 0 {
                        0.0
                    } else {
                        (layer.dropped_queue + layer.dropped_link) as f64 / layer.offered as f64
                    },
                    utilization: layer.busy_ms / (servers * horizon),
                    link_utilization: layer.link.as_ref().map(|_| layer.link_work_ms / horizon),
                    peak_queue_depth: match &layer.stage {
                        Some(Stage::Fifo(f)) => f.peak_depth,
                        Some(Stage::Ps(ps)) => ps.peak_inflight,
                        None => 0,
                    },
                    peak_link_inflight: layer.link.as_ref().map_or(0, |ps| ps.peak_inflight),
                    mean_ms: layer.latency.mean(),
                    p50_ms: layer.latency.quantile(0.50),
                    p99_ms: layer.latency.quantile(0.99),
                    max_ms: layer.latency.max(),
                }
            })
            .collect();

        FleetReport {
            scenario: sc.name.clone(),
            horizon_ms: self.last_activity_ms,
            events: self.events,
            emitted: self.emitted,
            served,
            dropped,
            layers: summaries,
            overall_mean_ms: overall.mean(),
            overall_p50_ms: overall.quantile(0.50),
            overall_p99_ms: overall.quantile(0.99),
            trace: self.trace.clone(),
        }
    }
}

/// A configured fleet simulation, ready to run (the push driver over
/// [`FleetEngine`]).
pub struct FleetSim<'a> {
    scenario: &'a FleetScenario,
    topology: HecTopology,
}

impl<'a> FleetSim<'a> {
    /// Prepares a simulation on the scenario's own topology
    /// ([`FleetScenario::topology`]).
    pub fn new(scenario: &'a FleetScenario) -> Self {
        let topology = scenario.topology();
        Self::with_topology(scenario, topology)
    }

    /// Prepares a simulation on an explicit topology (the scenario's
    /// bandwidth overrides are ignored; the topology is taken as-is).
    pub fn with_topology(scenario: &'a FleetScenario, topology: HecTopology) -> Self {
        assert!(!scenario.cohorts.is_empty(), "scenario has no cohorts");
        Self { scenario, topology }
    }

    /// Runs the scenario with its own routing plans and no observer.
    pub fn run(&self) -> FleetReport {
        let sc = self.scenario;
        let mut router = |ctx: &RouteCtx| sc.planned_layer(ctx.cohort, ctx.seq);
        self.run_with(&mut router, &mut |_| {})
    }

    /// Runs with a custom router (e.g. a trained policy choosing the
    /// action per window) and an observer receiving every per-window
    /// [`JobEvent`] in deterministic order.
    ///
    /// # Panics
    ///
    /// Panics if the router returns a layer outside the topology.
    pub fn run_with(
        &self,
        router: &mut dyn FnMut(&RouteCtx) -> usize,
        observer: &mut dyn FnMut(&JobEvent),
    ) -> FleetReport {
        let mut engine = FleetEngine::with_topology(self.scenario, self.topology.clone());
        while let Some(ev) = engine.step(router) {
            observer(&ev);
        }
        engine.report()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::scenario::{CohortSpec, FleetScale, RoutePlan};

    /// A tiny scenario: `devices` devices, `windows` windows each, one
    /// window per `period_ms`, all routed by `route`.
    fn tiny(devices: u32, windows: u32, period_ms: f64, route: RoutePlan) -> FleetScenario {
        let mut sc = FleetScenario::light_load(FleetScale::Quick);
        sc.name = "tiny".into();
        sc.cohorts = vec![CohortSpec::uniform(devices, windows, period_ms, 0.0, route)];
        sc
    }

    #[test]
    fn unloaded_cloud_latency_matches_table2() {
        // One device, slow emission, always-cloud: no queueing anywhere,
        // so every window costs exactly 500 ms RTT + 4.5 ms exec.
        let sc = tiny(1, 5, 10_000.0, RoutePlan::Fixed(2));
        let report = FleetSim::new(&sc).run();
        assert_eq!(report.served, 5);
        assert_eq!(report.dropped, 0);
        assert!((report.layers[2].mean_ms - 504.5).abs() < 1e-9, "{}", report.layers[2].mean_ms);
        assert!((report.layers[2].max_ms - 504.5).abs() < 1e-9);
    }

    #[test]
    fn unloaded_iot_latency_matches_table2() {
        let sc = tiny(3, 4, 10_000.0, RoutePlan::Fixed(0));
        let report = FleetSim::new(&sc).run();
        assert_eq!(report.served, 12);
        assert!((report.layers[0].mean_ms - 12.4).abs() < 1e-9);
    }

    #[test]
    fn saturation_makes_latency_load_dependent() {
        // 200 devices fire a window every 2 ms at the edge (100k/s) —
        // far beyond the TX2's ~540/s: queueing must push p99 well above
        // the unloaded 257.4 ms, and the bounded queue must shed load.
        let mut sc = tiny(200, 20, 2.0, RoutePlan::Fixed(1));
        sc.batch_max = 1;
        sc.queue_capacity = 100;
        let report = FleetSim::new(&sc).run();
        let edge = &report.layers[1];
        assert!(edge.dropped_queue > 0, "bounded queue never shed load");
        assert!(edge.p99_ms > 400.0, "p99 {} not load-dependent", edge.p99_ms);
        assert!(edge.utilization > 0.5, "util {}", edge.utilization);
        assert!(edge.peak_queue_depth == 100, "peak {}", edge.peak_queue_depth);
    }

    #[test]
    fn bandwidth_capped_link_contends() {
        // 50 devices upload simultaneously over a 1 Mbit/s cloud link:
        // 384 B = 3.072 ms alone, ~×50 when fully shared.
        let mut sc = tiny(50, 4, 1000.0, RoutePlan::Fixed(2));
        sc.cloud_bandwidth_mbps = Some(1.0);
        sc.emit_buckets = 1; // all devices in one bucket → simultaneous
        let report = FleetSim::new(&sc).run();
        let cloud = &report.layers[2];
        assert_eq!(cloud.served, 200);
        assert!(cloud.peak_link_inflight >= 50, "peak {}", cloud.peak_link_inflight);
        // Last transfer of a 50-share round: ≈ 50 × 3.072 = 153.6 ms of
        // serialisation on top of the 504.5 ms floor.
        assert!(cloud.max_ms > 504.5 + 100.0, "max {}", cloud.max_ms);
        assert!(cloud.link_utilization.unwrap() > 0.0);
    }

    #[test]
    fn link_admission_bound_drops() {
        let mut sc = tiny(50, 2, 1000.0, RoutePlan::Fixed(2));
        sc.cloud_bandwidth_mbps = Some(0.5);
        sc.link_max_inflight = 10;
        sc.emit_buckets = 1;
        let report = FleetSim::new(&sc).run();
        assert!(report.layers[2].dropped_link > 0, "admission bound never tripped");
        assert_eq!(report.served + report.dropped, report.emitted);
    }

    #[test]
    fn local_backlog_bound_drops() {
        // One device emitting every 1 ms but needing 12.4 ms per window
        // locally: the backlog crosses 50 ms and subsequent windows drop.
        let mut sc = tiny(1, 100, 1.0, RoutePlan::Fixed(0));
        sc.local_backlog_ms = 50.0;
        let report = FleetSim::new(&sc).run();
        assert!(report.layers[0].dropped_queue > 0);
        assert!(report.layers[0].served > 0);
        assert_eq!(report.served + report.dropped, report.emitted);
    }

    #[test]
    fn processor_sharing_discipline_serves_everything() {
        let mut sc = tiny(100, 5, 10.0, RoutePlan::Fixed(1));
        sc.discipline = Discipline::ProcessorSharing;
        sc.queue_capacity = 10_000;
        let report = FleetSim::new(&sc).run();
        let edge = &report.layers[1];
        assert_eq!(edge.served, 500);
        // Overloaded PS stretches latencies beyond the unloaded value.
        assert!(edge.p99_ms > 257.43, "p99 {}", edge.p99_ms);
    }

    #[test]
    fn conservation_emitted_equals_served_plus_dropped() {
        for name in FleetScenario::NAMES {
            let sc = FleetScenario::by_name(name, FleetScale::Quick).unwrap();
            let report = FleetSim::new(&sc).run();
            assert_eq!(report.emitted, sc.total_windows(), "{name}");
            assert_eq!(report.served + report.dropped, report.emitted, "{name}");
        }
    }

    #[test]
    fn reruns_are_identical() {
        let sc = FleetScenario::flash_crowd(FleetScale::Quick);
        let a = FleetSim::new(&sc).run();
        let b = FleetSim::new(&sc).run();
        assert_eq!(a, b);
        assert_eq!(a.to_text(), b.to_text());
    }

    #[test]
    fn observer_sees_every_window() {
        let sc = tiny(10, 10, 5.0, RoutePlan::Mixture([0.4, 0.3, 0.3]));
        let mut served = 0u64;
        let mut dropped = 0u64;
        let mut router = |ctx: &RouteCtx| (ctx.seq % 3) as usize;
        let report = FleetSim::new(&sc).run_with(&mut router, &mut |ev| match ev {
            JobEvent::Served { .. } => served += 1,
            JobEvent::Dropped { .. } => dropped += 1,
        });
        assert_eq!(served, report.served);
        assert_eq!(dropped, report.dropped);
        assert_eq!(served + dropped, 100);
    }

    #[test]
    fn trace_samples_cover_the_run() {
        let sc = tiny(20, 10, 10.0, RoutePlan::Fixed(1));
        let report = FleetSim::new(&sc).run();
        assert!(!report.trace.is_empty());
        assert!(report.trace.windows(2).all(|w| w[0].t_ms < w[1].t_ms));
    }

    #[test]
    #[should_panic(expected = "router chose layer 9")]
    fn out_of_range_route_panics() {
        let sc = tiny(1, 1, 10.0, RoutePlan::Fixed(0));
        let mut router = |_: &RouteCtx<'_>| 9usize;
        let _ = FleetSim::new(&sc).run_with(&mut router, &mut |_| {});
    }

    /// The step-wise engine must yield exactly the event stream and the
    /// byte-identical report of the push driver.
    #[test]
    fn stepwise_engine_matches_push_driver() {
        let mut sc = tiny(40, 8, 5.0, RoutePlan::Fixed(0));
        sc.batch_max = 2;
        let route = |ctx: &RouteCtx| (ctx.seq % 3) as usize;

        let mut pushed: Vec<JobEvent> = Vec::new();
        let push_report = FleetSim::new(&sc).run_with(&mut { route }, &mut |ev| pushed.push(*ev));

        let mut engine = FleetEngine::new(&sc);
        let mut pulled: Vec<JobEvent> = Vec::new();
        while let Some(ev) = engine.step(&mut { route }) {
            pulled.push(ev);
        }
        assert_eq!(pushed, pulled);
        assert_eq!(push_report, engine.report());
        assert_eq!(push_report.to_text(), engine.report().to_text());
        assert_eq!(engine.emitted(), push_report.emitted);
    }

    /// The step-wise API exists so routing state can change between
    /// steps: a router that reacts to the previous outcome must be legal
    /// and deterministic.
    #[test]
    fn router_state_can_mutate_between_steps() {
        let sc = tiny(30, 6, 4.0, RoutePlan::Fixed(0));
        let run = || {
            let mut engine = FleetEngine::new(&sc);
            let mut target = 0usize;
            let mut outcomes = Vec::new();
            loop {
                let ev = engine.step(&mut |_ctx| target);
                let Some(ev) = ev else { break };
                // Feedback: a drop pushes subsequent windows up a layer.
                if matches!(ev, JobEvent::Dropped { .. }) {
                    target = (target + 1) % 3;
                }
                outcomes.push(ev);
            }
            (outcomes, engine.report())
        };
        let (ev_a, rep_a) = run();
        let (ev_b, rep_b) = run();
        assert_eq!(ev_a, ev_b);
        assert_eq!(rep_a, rep_b);
    }

    /// A slower cohort pays proportionally more for local execution; a
    /// heavier-payload cohort pays more link serialisation on a capped
    /// uplink. Both knobs leave uniform cohorts bit-identical to PR 3.
    #[test]
    fn heterogeneous_cohorts_change_latency() {
        // Two local cohorts, second at half speed → double exec time.
        let mut sc = tiny(2, 3, 10_000.0, RoutePlan::Fixed(0));
        sc.cohorts.push(CohortSpec {
            local_speed: 0.5,
            ..CohortSpec::uniform(2, 3, 10_000.0, 0.0, RoutePlan::Fixed(0))
        });
        let report = FleetSim::new(&sc).run();
        assert_eq!(report.served, 12);
        assert!((report.layers[0].max_ms - 24.8).abs() < 1e-9, "{}", report.layers[0].max_ms);
        // The fast cohort still pays the testbed 12.4 ms (the p50 over
        // half-fast half-slow sits between the two).
        assert!(report.layers[0].mean_ms > 12.4 && report.layers[0].mean_ms < 24.8);

        // Two cloud cohorts over a capped link, second with 4× payload.
        let mut sc = tiny(1, 2, 10_000.0, RoutePlan::Fixed(2));
        sc.cloud_bandwidth_mbps = Some(1.0);
        sc.cohorts.push(CohortSpec {
            payload_bytes: Some(4 * 384),
            // Offset so transfers never overlap: latency is pure serialisation.
            ..CohortSpec::uniform(1, 2, 10_000.0, 3_000.0, RoutePlan::Fixed(2))
        });
        let report = FleetSim::new(&sc).run();
        assert_eq!(report.served, 4);
        // 384 B at 1 Mbit/s = 3.072 ms; 1536 B = 12.288 ms.
        let base = 504.5;
        assert_eq!(report.layers[2].served, 4);
        assert!(
            (report.layers[2].max_ms - (base + 12.288)).abs() < 1e-6,
            "max {}",
            report.layers[2].max_ms
        );
        assert!(
            (report.layers[2].mean_ms - (base + (3.072 + 12.288) / 2.0)).abs() < 1e-6,
            "mean {}",
            report.layers[2].mean_ms
        );
    }

    #[test]
    #[should_panic(expected = "local_speed must be positive")]
    fn invalid_local_speed_rejected() {
        let mut sc = tiny(1, 1, 10.0, RoutePlan::Fixed(0));
        sc.cohorts[0].local_speed = 0.0;
        let _ = FleetEngine::new(&sc);
    }
}
