//! Shared allocation tracking — the counting global allocator that was
//! previously duplicated across `crates/nn/tests/zero_alloc.rs`,
//! `crates/anomaly/tests/quant_alloc.rs` and
//! `crates/tensor/tests/alloc_free.rs`, promoted to one implementation.
//!
//! Install it per binary:
//!
//! ```ignore
//! #[global_allocator]
//! static GLOBAL: hec_telemetry::CountingAlloc = hec_telemetry::CountingAlloc;
//! ```
//!
//! [`allocations()`] then reports the process-wide count of `alloc` +
//! `realloc` calls. [`AllocPhase`] wraps a code region and folds the
//! allocation delta into the sidecar store (`alloc.<label>`), so
//! per-phase allocation behaviour shows up next to the wall-clock spans
//! in stderr dumps and `BENCH_*.json` — never in the deterministic
//! registry, since allocator traffic varies with thread count and warmup
//! state.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use crate::span::sidecar_add;
use crate::ENABLED;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);

/// A counting global allocator: delegates to [`System`] and counts every
/// `alloc` and `realloc` call (SeqCst, so cross-thread reads in tests see
/// a consistent count).
pub struct CountingAlloc;

// SAFETY: pure delegation to `System`; the only addition is an atomic
// counter bump, which allocates nothing and cannot unwind.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::SeqCst);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::SeqCst);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

/// Process-wide count of `alloc` + `realloc` calls. Stays 0 unless
/// [`CountingAlloc`] is installed as the binary's `#[global_allocator]`.
pub fn allocations() -> usize {
    ALLOCS.load(Ordering::SeqCst)
}

/// RAII allocation-phase tracker: records the [`allocations()`] delta
/// between construction and drop into the sidecar store as
/// `alloc.<label>`. Useful in binaries that install [`CountingAlloc`];
/// elsewhere (or with telemetry disabled) it records nothing.
#[must_use = "an AllocPhase measures until it is dropped"]
pub struct AllocPhase {
    label: &'static str,
    start: usize,
    armed: bool,
}

impl AllocPhase {
    /// Starts tracking allocations under `alloc.<label>`.
    pub fn new(label: &'static str) -> Self {
        Self { label, start: if ENABLED { allocations() } else { 0 }, armed: ENABLED }
    }
}

impl Drop for AllocPhase {
    fn drop(&mut self) {
        if self.armed {
            let delta = allocations().saturating_sub(self.start);
            // The sidecar name needs a String; build it only when enabled.
            let name = format!("alloc.{}", self.label);
            sidecar_add(&name, delta as u64);
        }
    }
}
