//! Offline subset of the `parking_lot` API, backed by `std::sync`.
//!
//! Only [`Mutex`] is provided (the single primitive the workspace uses).
//! Like real parking_lot, `lock()` is infallible: a poisoned std mutex is
//! recovered rather than propagated, since the protected data here
//! (per-layer job counters) stays consistent even if a holder panicked.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::Mutex as StdMutex;
pub use std::sync::MutexGuard;

/// A mutex whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Self { inner: StdMutex::new(value) }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;
    use std::sync::Arc;

    #[test]
    fn counts_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }
}
