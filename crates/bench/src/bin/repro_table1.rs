//! Regenerates **Table I** — comparison among AD models: #parameters,
//! accuracy, F1-score and execution time for the three univariate
//! autoencoders and the three multivariate seq2seq models.
//!
//! Run with `cargo run --release -p hec-bench --bin repro_table1`
//! (`HEC_PROFILE=quick` for a fast smoke run).

use hec_bench::{multivariate_config, paper, paper_table1, univariate_config, Profile};
use hec_core::{format_table1, Experiment};

fn main() {
    let profile = Profile::from_env();
    println!("== repro_table1 (profile: {profile:?}) ==\n");

    println!("--- Univariate (power demand, autoencoders) ---");
    let mut exp = Experiment::prepare(univariate_config(profile));
    exp.train_detectors();
    let rows = exp.table1();
    println!("{}", format_table1(&rows));
    println!("{}", paper_table1(&paper::TABLE1_UNIVARIATE));

    println!("--- Multivariate (MHEALTH-like, LSTM seq2seq) ---");
    let mut exp = Experiment::prepare(multivariate_config(profile));
    exp.train_detectors();
    let rows = exp.table1();
    println!("{}", format_table1(&rows));
    println!("{}", paper_table1(&paper::TABLE1_MULTIVARIATE));

    println!(
        "note: absolute #parameters/accuracies differ from the paper because the\n\
         datasets are synthetic substitutes and the models are sized for them; the\n\
         ladder (params/accuracy up, exec time down from IoT to Cloud) is the\n\
         reproduced claim. Exec times are the testbed-calibrated delay model;\n\
         `cargo bench -p hec-bench --bench model_exec` measures this Rust\n\
         implementation's own inference times."
    );
}
