//! Criterion bench: per-model inference time of this Rust implementation —
//! the analogue of Table I's "Exec time" row, measured on the build machine
//! instead of the Pi/TX2/Devbox (the testbed-calibrated values live in
//! `hec_sim::DatasetKind::paper_exec_ms`).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use hec_anomaly::ModelCatalog;
use hec_data::LabeledWindow;
use hec_tensor::Matrix;

fn ramp_window(n: usize) -> LabeledWindow {
    let v: Vec<f32> = (0..n).map(|t| (t as f32 / n as f32).sin()).collect();
    LabeledWindow::new(Matrix::from_vec(n, 1, v), false)
}

fn multi_window(steps: usize) -> LabeledWindow {
    let data: Vec<f32> = (0..steps * 18).map(|i| ((i % 97) as f32 * 0.07).sin()).collect();
    LabeledWindow::new(Matrix::from_vec(steps, 18, data), false)
}

fn bench_univariate(c: &mut Criterion) {
    let mut catalog = ModelCatalog::univariate(96, 0);
    let train: Vec<LabeledWindow> = (0..24).map(|_| ramp_window(96)).collect();
    for det in catalog.detectors_mut() {
        det.fit(&train, 20).expect("fit");
    }
    let window = ramp_window(96);
    let mut group = c.benchmark_group("table1_exec_univariate");
    for layer in 0..3 {
        let name = catalog.detectors_mut()[layer].name().to_owned();
        group.bench_function(&name, |b| {
            b.iter(|| {
                let d = catalog.detectors_mut()[layer].detect(black_box(&window));
                black_box(d)
            })
        });
    }
    group.finish();
}

fn bench_multivariate(c: &mut Criterion) {
    // Hidden size 16 keeps the bench minutes-scale; relative ordering
    // (IoT < Edge < Cloud cost) is what we check.
    let mut catalog = ModelCatalog::multivariate(18, 16, 0);
    let train: Vec<LabeledWindow> = (0..6).map(|_| multi_window(64)).collect();
    for det in catalog.detectors_mut() {
        det.fit(&train, 3).expect("fit");
    }
    let window = multi_window(64);
    let mut group = c.benchmark_group("table1_exec_multivariate");
    group.sample_size(20);
    for layer in 0..3 {
        let name = catalog.detectors_mut()[layer].name().to_owned();
        group.bench_function(&name, |b| {
            b.iter(|| {
                let d = catalog.detectors_mut()[layer].detect(black_box(&window));
                black_box(d)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_univariate, bench_multivariate);
criterion_main!(benches);
