//! Synthetic univariate power-demand dataset.
//!
//! Substitutes the Dutch power-demand dataset (UCR discords) used by the
//! paper (§III-A) and its references [2], [3], [9]. The real data is one year
//! of 15-minute electricity demand with a strong weekly rhythm; the
//! documented anomalies are **weekdays whose demand collapses to a
//! weekend/holiday profile**.
//!
//! This generator reproduces those properties:
//!
//! * each *sample* is one weekday of `samples_per_day` readings (default 96,
//!   i.e. 15-minute cadence) — the same day-granularity the paper's
//!   contextual features are computed at ("min, max, mean, and standard
//!   deviation of each day's sensor data", §III-B);
//! * normal weekdays follow a double-hump profile (morning and evening
//!   peaks over a base load) with subject-free multiplicative jitter;
//! * anomalous weekdays come in three hardness tiers, so that models of
//!   different capacity genuinely separate (the paper's core premise that
//!   "different data samples often have different levels of hardness"):
//!   - [`AnomalyKind::Holiday`] — full weekend-shaped collapse (easy),
//!   - [`AnomalyKind::Outage`] — normal morning then a collapsed afternoon
//!     (medium),
//!   - [`AnomalyKind::DampedPeaks`] — peaks attenuated by ~25–40 % (hard).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use hec_tensor::Matrix;

use crate::window::LabeledWindow;

/// Anomaly hardness tiers for the synthetic power data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AnomalyKind {
    /// Weekend-shaped collapse of the whole day (easy to detect).
    Holiday,
    /// Normal morning, collapsed afternoon (medium).
    Outage,
    /// Morning/evening peaks damped by ~25–40 % (hard).
    DampedPeaks,
}

impl AnomalyKind {
    /// All tiers in increasing detection difficulty.
    pub const ALL: [AnomalyKind; 3] =
        [AnomalyKind::Holiday, AnomalyKind::Outage, AnomalyKind::DampedPeaks];

    /// Index of the tier (0 = easiest).
    pub fn class_index(self) -> usize {
        match self {
            AnomalyKind::Holiday => 0,
            AnomalyKind::Outage => 1,
            AnomalyKind::DampedPeaks => 2,
        }
    }
}

/// Configuration for [`PowerGenerator`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerConfig {
    /// Number of weekday samples to generate.
    pub days: usize,
    /// Readings per day (default 96 = 15-minute cadence).
    pub samples_per_day: usize,
    /// Fraction of days that are anomalous (default 0.12).
    pub anomaly_rate: f64,
    /// Additive Gaussian noise std, in normalised demand units.
    pub noise_std: f32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PowerConfig {
    fn default() -> Self {
        Self { days: 600, samples_per_day: 96, anomaly_rate: 0.12, noise_std: 0.015, seed: 42 }
    }
}

/// Deterministic generator for the synthetic power-demand dataset.
///
/// # Example
///
/// ```rust
/// use hec_data::{PowerConfig, PowerGenerator};
///
/// let gen = PowerGenerator::new(PowerConfig { days: 20, ..Default::default() });
/// let days = gen.generate();
/// assert_eq!(days.len(), 20);
/// assert_eq!(days[0].0.data.shape(), (96, 1));
/// ```
#[derive(Debug, Clone)]
pub struct PowerGenerator {
    config: PowerConfig,
}

impl PowerGenerator {
    /// Creates a generator.
    ///
    /// # Panics
    ///
    /// Panics if `days == 0`, `samples_per_day < 8`, or
    /// `anomaly_rate ∉ [0, 1]`.
    pub fn new(config: PowerConfig) -> Self {
        assert!(config.days > 0, "days must be non-zero");
        assert!(config.samples_per_day >= 8, "need at least 8 samples per day");
        assert!((0.0..=1.0).contains(&config.anomaly_rate), "anomaly_rate must be in [0, 1]");
        Self { config }
    }

    /// The configuration.
    pub fn config(&self) -> &PowerConfig {
        &self.config
    }

    /// Generates the dataset: one `(window, kind)` pair per day, where `kind`
    /// is `None` for normal days. Windows are `samples_per_day × 1`.
    pub fn generate(&self) -> Vec<(LabeledWindow, Option<AnomalyKind>)> {
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        (0..self.config.days)
            .map(|_| {
                let kind = if rng.gen_bool(self.config.anomaly_rate) {
                    Some(match rng.gen_range(0..3) {
                        0 => AnomalyKind::Holiday,
                        1 => AnomalyKind::Outage,
                        _ => AnomalyKind::DampedPeaks,
                    })
                } else {
                    None
                };
                let day = self.day_profile(&mut rng, kind);
                (LabeledWindow::new(day, kind.is_some()), kind)
            })
            .collect()
    }

    /// Generates one day's demand curve.
    ///
    /// Normal days are drawn from an 8-factor latent model (base load,
    /// morning/evening peak amplitude-position-width, midday bump) so that
    /// autoencoders of different bottleneck widths genuinely differ in how
    /// well they can model *normal* variability — the mechanism behind the
    /// paper's capacity/accuracy ladder.
    fn day_profile(&self, rng: &mut StdRng, kind: Option<AnomalyKind>) -> Matrix {
        let n = self.config.samples_per_day;
        let mut p = DayParams::sample(rng);
        let sag: f32 = rng.gen_range(0.68..0.80); // Outage afternoon factor
        let damp: f32 = rng.gen_range(0.72..0.84); // DampedPeaks factor
        if let Some(AnomalyKind::DampedPeaks) = kind {
            // Hard anomaly: attenuate both peaks by 16-28% — well outside
            // the ±5% natural amplitude variation, but small compared to the
            // positional variability a narrow bottleneck cannot track.
            p.m_amp *= damp;
            p.e_amp *= damp;
        }
        let mut values = Vec::with_capacity(n);
        for s in 0..n {
            let t = s as f32 / n as f32;
            let base = match kind {
                None | Some(AnomalyKind::DampedPeaks) => p.shape(t),
                Some(AnomalyKind::Holiday) => weekend_shape(t),
                Some(AnomalyKind::Outage) => {
                    // Medium: sustained afternoon sag of 20-32%.
                    if t < 0.55 {
                        p.shape(t)
                    } else {
                        sag * p.shape(t)
                    }
                }
            };
            let noise = gaussian(rng) * self.config.noise_std;
            values.push((base + noise).max(0.0));
        }
        Matrix::from_vec(n, 1, values)
    }
}

/// The latent factors of one normal day.
#[derive(Debug, Clone, Copy)]
struct DayParams {
    base: f32,
    m_amp: f32,
    m_pos: f32,
    m_width: f32,
    e_amp: f32,
    e_pos: f32,
    e_width: f32,
    mid_amp: f32,
}

impl DayParams {
    /// Draws a normal day's factors. Peak *positions and widths* vary a lot
    /// (hard to encode through a narrow bottleneck); peak *amplitudes* vary
    /// little (±5%), so amplitude anomalies are separable in principle.
    fn sample(rng: &mut StdRng) -> Self {
        Self {
            base: rng.gen_range(0.33..0.37),
            m_amp: rng.gen_range(0.52..0.58),
            m_pos: rng.gen_range(0.32..0.39),
            m_width: rng.gen_range(0.055..0.095),
            e_amp: rng.gen_range(0.62..0.68),
            e_pos: rng.gen_range(0.78..0.85),
            e_width: rng.gen_range(0.075..0.115),
            mid_amp: rng.gen_range(0.18..0.30),
        }
    }

    /// Demand at day-fraction `t`.
    fn shape(&self, t: f32) -> f32 {
        self.base
            + self.m_amp * bump(t, self.m_pos, self.m_width)
            + self.e_amp * bump(t, self.e_pos, self.e_width)
            + self.mid_amp * bump(t, 0.55, 0.12)
    }
}

/// Normalised weekday demand at the template parameters (used by tests).
#[cfg(test)]
fn weekday_shape(t: f32) -> f32 {
    let base = 0.35;
    let morning = 0.55 * bump(t, 0.354, 0.07); // 08:30
    let evening = 0.65 * bump(t, 0.8125, 0.09); // 19:30
    let midday = 0.25 * bump(t, 0.55, 0.12);
    base + morning + evening + midday
}

/// Normalised weekend/holiday demand: low, flat, mild midday bump.
fn weekend_shape(t: f32) -> f32 {
    0.30 + 0.18 * bump(t, 0.58, 0.16)
}

/// Gaussian bump centred at `c` with width `w`.
fn bump(t: f32, c: f32, w: f32) -> f32 {
    let d = (t - c) / w;
    (-0.5 * d * d).exp()
}

/// Standard-normal sample via Box–Muller.
fn gaussian(rng: &mut StdRng) -> f32 {
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> PowerGenerator {
        PowerGenerator::new(PowerConfig { days: 200, ..Default::default() })
    }

    #[test]
    fn generates_requested_days() {
        let days = small().generate();
        assert_eq!(days.len(), 200);
        for (w, kind) in &days {
            assert_eq!(w.data.shape(), (96, 1));
            assert_eq!(w.anomalous, kind.is_some());
        }
    }

    #[test]
    fn anomaly_rate_roughly_respected() {
        let days = small().generate();
        let anomalous = days.iter().filter(|(w, _)| w.anomalous).count();
        let rate = anomalous as f64 / days.len() as f64;
        assert!((rate - 0.12).abs() < 0.06, "rate {rate} far from 0.12");
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = small().generate();
        let b = small().generate();
        assert_eq!(a.len(), b.len());
        for ((wa, _), (wb, _)) in a.iter().zip(b.iter()) {
            assert_eq!(wa.data, wb.data);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = small().generate();
        let b = PowerGenerator::new(PowerConfig { days: 200, seed: 7, ..Default::default() })
            .generate();
        assert!(a.iter().zip(b.iter()).any(|((wa, _), (wb, _))| wa.data != wb.data));
    }

    #[test]
    fn holiday_has_lower_mean_than_normal() {
        let days = small().generate();
        let mean_of = |pred: &dyn Fn(&Option<AnomalyKind>) -> bool| {
            let sel: Vec<f32> =
                days.iter().filter(|(_, k)| pred(k)).map(|(w, _)| w.data.mean()).collect();
            sel.iter().sum::<f32>() / sel.len().max(1) as f32
        };
        let normal = mean_of(&|k| k.is_none());
        let holiday = mean_of(&|k| matches!(k, Some(AnomalyKind::Holiday)));
        assert!(holiday < normal * 0.8, "holiday mean {holiday} not clearly below normal {normal}");
    }

    #[test]
    fn damped_peaks_is_subtler_than_holiday() {
        // Hardness ordering: the damped-peaks deviation from the normal
        // profile is smaller than the holiday deviation.
        let gen =
            PowerGenerator::new(PowerConfig { days: 400, noise_std: 0.0, ..Default::default() });
        let days = gen.generate();
        let template: Vec<f32> = (0..96).map(|s| weekday_shape(s as f32 / 96.0)).collect();
        let avg_dev = |kind: AnomalyKind| {
            let devs: Vec<f32> = days
                .iter()
                .filter(|(_, k)| *k == Some(kind))
                .map(|(w, _)| {
                    w.data
                        .as_slice()
                        .iter()
                        .zip(template.iter())
                        .map(|(a, b)| (a - b).abs())
                        .sum::<f32>()
                        / 96.0
                })
                .collect();
            devs.iter().sum::<f32>() / devs.len().max(1) as f32
        };
        let holiday = avg_dev(AnomalyKind::Holiday);
        let damped = avg_dev(AnomalyKind::DampedPeaks);
        assert!(damped < holiday, "expected damped ({damped}) subtler than holiday ({holiday})");
    }

    #[test]
    fn values_are_non_negative() {
        let days = small().generate();
        for (w, _) in &days {
            assert!(w.data.min() >= 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "anomaly_rate")]
    fn invalid_rate_rejected() {
        let _ = PowerGenerator::new(PowerConfig { anomaly_rate: 1.5, ..Default::default() });
    }
}
