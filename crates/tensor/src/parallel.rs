//! Scoped-thread parallelism helpers (no external thread-pool crates).
//!
//! The scheme evaluation and the ablation sweeps are embarrassingly parallel
//! over windows / schemes / grid points. This module provides an
//! order-preserving `map` built on [`std::thread::scope`]:
//!
//! * the worker count comes from the **`HEC_THREADS`** environment variable
//!   (default: [`std::thread::available_parallelism`]); `HEC_THREADS=1`
//!   forces the serial path, which is also taken automatically for tiny
//!   inputs;
//! * items are split into **contiguous chunks**, one per worker, and chunk
//!   results are concatenated in spawn order — output ordering is therefore
//!   deterministic and identical to the serial map, regardless of the
//!   thread count or scheduling.

use std::cell::Cell;
use std::num::NonZeroUsize;

thread_local! {
    /// Per-thread override installed by [`with_thread_count`]; takes
    /// precedence over `HEC_THREADS`.
    static THREAD_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
    /// Set inside [`parallel_map`] workers so nested calls (e.g. a sweep
    /// point evaluating a scheme) run serially instead of spawning
    /// `threads²` threads.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Number of worker threads parallel helpers may use.
///
/// A [`with_thread_count`] override on the calling thread wins; otherwise
/// reads `HEC_THREADS` (values `< 1` or unparsable fall back to the
/// default); defaults to the machine's available parallelism.
pub fn thread_count() -> usize {
    if let Some(n) = THREAD_OVERRIDE.with(Cell::get) {
        return n;
    }
    match std::env::var("HEC_THREADS") {
        Ok(s) => match s.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => default_threads(),
        },
        Err(_) => default_threads(),
    }
}

fn default_threads() -> usize {
    std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1)
}

/// Runs `f` with this thread's parallelism pinned to `threads`, restoring
/// the previous value afterwards (panic-safe).
///
/// This is how tests compare serial and parallel runs deterministically —
/// mutating the process-global `HEC_THREADS` from concurrent tests would
/// race both the comparison and (on some platforms) `getenv` itself.
///
/// # Panics
///
/// Panics if `threads` is zero.
pub fn with_thread_count<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    assert!(threads >= 1, "thread count must be at least 1");
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            THREAD_OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(THREAD_OVERRIDE.with(|c| c.replace(Some(threads))));
    f()
}

/// Maps `f` over `items` (with the item's index) using scoped threads,
/// returning results **in item order**.
///
/// Work is split into one contiguous chunk per worker; each worker produces
/// its chunk's results which are concatenated in chunk order, so the output
/// equals the serial `items.iter().enumerate().map(f).collect()` exactly.
///
/// # Panics
///
/// Propagates panics from `f` (the whole map panics if any worker panics).
///
/// # Example
///
/// ```rust
/// let squares = hec_tensor::parallel::parallel_map(&[1, 2, 3, 4], |_, &x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    parallel_map_grained(items, 1, f)
}

/// [`parallel_map`] with a minimum number of items per worker.
///
/// Use a grain `> 1` when the per-item work is cheap: the worker count is
/// capped at `items.len() / grain`, so threads are only spawned once each
/// has at least `grain` items' worth of work to amortise its spawn cost.
/// Calls made from inside another `parallel_map` worker always run
/// serially (the outer fan-out already owns the machine's parallelism).
pub fn parallel_map_grained<T, R, F>(items: &[T], grain: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    parallel_map_range_grained(items.len(), grain, |i| f(i, &items[i]))
}

/// Maps `f` over the index range `0..len` using scoped threads, returning
/// results **in index order** — [`parallel_map_grained`] without the item
/// slice, for callers whose work is driven purely by an index (e.g. a
/// per-window evaluation over an oracle corpus). Allocates nothing beyond
/// the result vectors.
pub fn parallel_map_range_grained<R, F>(len: usize, grain: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let threads = thread_count().min(len / grain.max(1)).max(1);
    if threads <= 1 || IN_WORKER.with(Cell::get) {
        return (0..len).map(f).collect();
    }
    let chunk_len = len.div_ceil(threads);
    std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = (0..len)
            .step_by(chunk_len)
            .map(|start| {
                let end = (start + chunk_len).min(len);
                scope.spawn(move || {
                    IN_WORKER.with(|c| c.set(true));
                    (start..end).map(f).collect::<Vec<R>>()
                })
            })
            .collect();
        let mut out = Vec::with_capacity(len);
        for handle in handles {
            out.extend(handle.join().expect("parallel_map worker panicked"));
        }
        out
    })
}

/// Applies `f` to every item of `items` in place (with the item's index)
/// using scoped threads.
///
/// This is the mutable counterpart of [`parallel_map`], built for workers
/// that *own* heavyweight state — e.g. the sharded fleet engine's shard
/// sub-engines, each advanced to a barrier independently. Items are split
/// into one contiguous `chunks_mut` slice per worker; since `f` only
/// observes `&mut` one item at a time, the result is identical to the
/// serial `for` loop whatever the thread count — determinism is the
/// caller's property to keep (`f` must not touch shared mutable state,
/// which `Sync` on `F` and `Send` on `T` enforce at compile time).
///
/// Calls from inside another parallel worker run serially, like
/// [`parallel_map_grained`].
///
/// # Panics
///
/// Propagates panics from `f`.
pub fn parallel_for_each_mut<T, F>(items: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    let len = items.len();
    let threads = thread_count().min(len).max(1);
    if threads <= 1 || IN_WORKER.with(Cell::get) {
        for (i, item) in items.iter_mut().enumerate() {
            f(i, item);
        }
        return;
    }
    let chunk_len = len.div_ceil(threads);
    std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = items
            .chunks_mut(chunk_len)
            .enumerate()
            .map(|(ci, chunk)| {
                scope.spawn(move || {
                    IN_WORKER.with(|c| c.set(true));
                    for (j, item) in chunk.iter_mut().enumerate() {
                        f(ci * chunk_len + j, item);
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().expect("parallel_for_each_mut worker panicked");
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_and_indices() {
        let items: Vec<usize> = (0..103).collect();
        // Force a real fan-out regardless of machine size or HEC_THREADS.
        let out = with_thread_count(4, || {
            parallel_map(&items, |i, &x| {
                assert_eq!(i, x);
                x * 2
            })
        });
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<u8> = Vec::new();
        assert!(parallel_map(&empty, |_, &x| x).is_empty());
        assert_eq!(parallel_map(&[7u8], |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn grain_caps_worker_count() {
        // 10 items at grain 100 → serial path, still correct and ordered.
        let items: Vec<usize> = (0..10).collect();
        let out = with_thread_count(8, || parallel_map_grained(&items, 100, |_, &x| x + 1));
        assert_eq!(out, (1..=10).collect::<Vec<_>>());
    }

    #[test]
    fn range_map_preserves_order() {
        // 101 items across 4 workers: uneven chunks, results in index order.
        let out = with_thread_count(4, || parallel_map_range_grained(101, 1, |i| i * 3));
        assert_eq!(out, (0..101).map(|i| i * 3).collect::<Vec<_>>());
        assert!(parallel_map_range_grained(0, 1, |i| i).is_empty());
    }

    #[test]
    fn nested_calls_run_serially() {
        let outer: Vec<usize> = (0..8).collect();
        let out = with_thread_count(4, || {
            parallel_map(&outer, |_, &x| {
                // Inner map from a worker thread must not fan out again.
                let inner: Vec<usize> = (0..50).collect();
                parallel_map(&inner, |_, &y| y).len() + x
            })
        });
        assert_eq!(out, outer.iter().map(|x| x + 50).collect::<Vec<_>>());
    }

    #[test]
    fn for_each_mut_matches_serial_loop() {
        let mut serial: Vec<usize> = (0..103).collect();
        for (i, x) in serial.iter_mut().enumerate() {
            *x = *x * 3 + i;
        }
        let mut parallel: Vec<usize> = (0..103).collect();
        with_thread_count(4, || parallel_for_each_mut(&mut parallel, |i, x| *x = *x * 3 + i));
        assert_eq!(parallel, serial);
        let mut empty: Vec<u8> = Vec::new();
        parallel_for_each_mut(&mut empty, |_, _| unreachable!());
    }

    #[test]
    fn override_beats_env_and_restores() {
        let ambient = thread_count();
        let inner = with_thread_count(7, thread_count);
        assert_eq!(inner, 7);
        assert_eq!(thread_count(), ambient);
    }

    #[test]
    fn thread_count_is_at_least_one() {
        assert!(thread_count() >= 1);
    }
}
