//! Device profiles and execution-time models.
//!
//! The paper measures per-model inference time on real hardware (Table I,
//! "Exec time", averaged over five runs). We model execution time two ways:
//!
//! * [`ExecTimeModel::Calibrated`] — the paper's own measurements (the
//!   default for reproducing Tables I–II);
//! * [`ExecTimeModel::Throughput`] — a FLOPs/throughput model
//!   (`2 × params × steps / effective_flops`) for models we size ourselves
//!   (ablations, custom catalogs).

use serde::{Deserialize, Serialize};

/// A machine in the testbed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceProfile {
    /// Human-readable name ("Raspberry Pi 3", …).
    pub name: String,
    /// Effective sustained throughput in MFLOP/s for dense inference.
    ///
    /// These are *effective* figures (including framework overhead) chosen
    /// so the throughput model lands near the paper's measurements, not peak
    /// datasheet numbers.
    pub effective_mflops: f64,
    /// Relative slowdown factor for recurrent (step-sequential) workloads,
    /// which cannot batch across time (≥ 1).
    pub recurrent_overhead: f64,
    /// How many detection jobs the machine can service simultaneously —
    /// the server count of this layer's queue in the fleet simulator
    /// (`crate::fleet`). The Pi runs one inference at a time; the shared
    /// edge/cloud servers each sustain several concurrent model instances.
    pub concurrency: usize,
}

impl DeviceProfile {
    /// The paper's IoT device.
    pub fn raspberry_pi3() -> Self {
        Self {
            name: "Raspberry Pi 3".into(),
            effective_mflops: 44.0,
            recurrent_overhead: 3.5,
            concurrency: 1,
        }
    }

    /// The paper's edge server.
    pub fn jetson_tx2() -> Self {
        Self {
            name: "NVIDIA Jetson TX2".into(),
            effective_mflops: 257.0,
            recurrent_overhead: 2.9,
            concurrency: 4,
        }
    }

    /// The paper's cloud server.
    pub fn devbox() -> Self {
        Self {
            name: "NVIDIA Devbox".into(),
            effective_mflops: 482.0,
            recurrent_overhead: 2.1,
            concurrency: 16,
        }
    }
}

/// How a layer's per-inference execution time is obtained.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ExecTimeModel {
    /// A fixed measured time in milliseconds (the paper's Table I values).
    Calibrated {
        /// Measured per-inference time, ms.
        ms: f64,
    },
    /// FLOPs-based: `2 × params × steps` divided by device throughput,
    /// multiplied by the device's recurrent overhead when `recurrent`.
    Throughput {
        /// Trainable parameter count of the deployed model.
        params: usize,
        /// Timesteps per inference (1 for feed-forward models).
        steps: usize,
        /// Whether the model is recurrent (sequential over steps).
        recurrent: bool,
    },
}

impl ExecTimeModel {
    /// Execution time in milliseconds on `device`.
    pub fn exec_ms(&self, device: &DeviceProfile) -> f64 {
        match *self {
            ExecTimeModel::Calibrated { ms } => ms,
            ExecTimeModel::Throughput { params, steps, recurrent } => {
                let flops = 2.0 * params as f64 * steps as f64;
                let base_ms = flops / (device.effective_mflops * 1e6) * 1e3;
                if recurrent {
                    base_ms * device.recurrent_overhead
                } else {
                    base_ms
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibrated_returns_fixed_value() {
        let m = ExecTimeModel::Calibrated { ms: 12.4 };
        assert_eq!(m.exec_ms(&DeviceProfile::raspberry_pi3()), 12.4);
        assert_eq!(m.exec_ms(&DeviceProfile::devbox()), 12.4);
    }

    #[test]
    fn throughput_model_close_to_paper_ae_times() {
        // Paper AE models: 271,017 / 949,468 / 1,085,077 params at
        // 12.4 / 7.4 / 4.5 ms on Pi / TX2 / Devbox.
        let cases = [
            (DeviceProfile::raspberry_pi3(), 271_017usize, 12.4),
            (DeviceProfile::jetson_tx2(), 949_468, 7.4),
            (DeviceProfile::devbox(), 1_085_077, 4.5),
        ];
        for (device, params, expected) in cases {
            let m = ExecTimeModel::Throughput { params, steps: 1, recurrent: false };
            let got = m.exec_ms(&device);
            assert!(
                (got - expected).abs() / expected < 0.05,
                "{}: {got:.2} ms vs paper {expected} ms",
                device.name
            );
        }
    }

    #[test]
    fn throughput_model_close_to_paper_lstm_times() {
        // Paper LSTM-seq2seq models: 28,518 / 97,818 / 1,028,018 params over
        // 128 steps at 591.0 / 417.3 / 232.3 ms. The throughput model cannot
        // match all three exactly (the paper's cloud model runs on CuDNN
        // fused kernels); we require the right order of magnitude and the
        // strictly-decreasing ladder.
        let pi = ExecTimeModel::Throughput { params: 28_518, steps: 128, recurrent: true }
            .exec_ms(&DeviceProfile::raspberry_pi3());
        let tx2 = ExecTimeModel::Throughput { params: 97_818, steps: 128, recurrent: true }
            .exec_ms(&DeviceProfile::jetson_tx2());
        let devbox = ExecTimeModel::Throughput { params: 1_028_018, steps: 128, recurrent: true }
            .exec_ms(&DeviceProfile::devbox());
        assert!((pi - 591.0).abs() / 591.0 < 0.05, "pi {pi:.1}");
        assert!((tx2 - 417.3).abs() / 417.3 < 0.35, "tx2 {tx2:.1}");
        // The Devbox number is dominated by fused-kernel efficiency; accept a
        // broad band but verify it is the fastest *relative to its size*.
        assert!(devbox > 0.0);
        let per_param_pi = pi / 28_518.0;
        let per_param_devbox = devbox / 1_028_018.0;
        assert!(per_param_devbox < per_param_pi);
    }

    #[test]
    fn recurrent_overhead_multiplies() {
        let device = DeviceProfile::raspberry_pi3();
        let ff = ExecTimeModel::Throughput { params: 1000, steps: 10, recurrent: false };
        let rec = ExecTimeModel::Throughput { params: 1000, steps: 10, recurrent: true };
        let ratio = rec.exec_ms(&device) / ff.exec_ms(&device);
        assert!((ratio - device.recurrent_overhead).abs() < 1e-9);
    }

    #[test]
    fn devices_get_faster_up_the_hierarchy() {
        let pi = DeviceProfile::raspberry_pi3();
        let tx2 = DeviceProfile::jetson_tx2();
        let devbox = DeviceProfile::devbox();
        assert!(pi.effective_mflops < tx2.effective_mflops);
        assert!(tx2.effective_mflops < devbox.effective_mflops);
        assert!(pi.concurrency <= tx2.concurrency);
        assert!(tx2.concurrency <= devbox.concurrency);
        assert!(pi.concurrency >= 1);
    }
}
