//! The assembled HEC testbed and its end-to-end delay model.

use serde::{Deserialize, Serialize};

use crate::device::{DeviceProfile, ExecTimeModel};
use crate::network::Link;

/// Which of the paper's two dataset families a topology is calibrated for
/// (they deploy different models, hence different execution times).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DatasetKind {
    /// Power-demand data, autoencoder models (Table I left half).
    Univariate,
    /// MHEALTH data, LSTM-seq2seq models (Table I right half).
    Multivariate,
}

impl DatasetKind {
    /// The paper's measured execution times, ms, bottom-up (Table I).
    pub fn paper_exec_ms(self) -> [f64; 3] {
        match self {
            DatasetKind::Univariate => [12.4, 7.4, 4.5],
            DatasetKind::Multivariate => [591.0, 417.3, 232.3],
        }
    }

    /// The paper's tuned cost parameter α (§III-B).
    pub fn paper_alpha(self) -> f64 {
        match self {
            DatasetKind::Univariate => 0.0005,
            DatasetKind::Multivariate => 0.00035,
        }
    }
}

/// One layer of the testbed: its device, the deployed model's execution-time
/// model and the network path from the IoT device to it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerSpec {
    /// The machine at this layer.
    pub device: DeviceProfile,
    /// Execution-time model of the AD model deployed here.
    pub exec: ExecTimeModel,
    /// Round-trip path from the IoT device to this layer.
    pub uplink: Link,
}

/// The K = 3 testbed of Fig. 1a with its delay model.
///
/// # Example
///
/// ```rust
/// use hec_sim::{DatasetKind, HecTopology};
///
/// let topo = HecTopology::paper_testbed(DatasetKind::Univariate);
/// // Always-Cloud end-to-end delay ≈ 500 ms RTT + 4.5 ms exec (Table II).
/// let d = topo.end_to_end_ms(2, 384);
/// assert!((d - 504.5).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HecTopology {
    layers: Vec<LayerSpec>,
}

impl HecTopology {
    /// Builds a topology from explicit layer specs (bottom-up).
    ///
    /// # Panics
    ///
    /// Panics if `layers` is empty.
    pub fn new(layers: Vec<LayerSpec>) -> Self {
        assert!(!layers.is_empty(), "topology needs at least one layer");
        Self { layers }
    }

    /// The paper's testbed: Pi 3 / Jetson TX2 / Devbox, delay-only WAN links
    /// of 250 ms (edge) and 500 ms (cloud) RTT, execution times calibrated
    /// to Table I for the given dataset family.
    pub fn paper_testbed(kind: DatasetKind) -> Self {
        let exec = kind.paper_exec_ms();
        Self::new(vec![
            LayerSpec {
                device: DeviceProfile::raspberry_pi3(),
                exec: ExecTimeModel::Calibrated { ms: exec[0] },
                uplink: Link::local(),
            },
            LayerSpec {
                device: DeviceProfile::jetson_tx2(),
                exec: ExecTimeModel::Calibrated { ms: exec[1] },
                uplink: Link::delay_only(250.03),
            },
            LayerSpec {
                device: DeviceProfile::devbox(),
                exec: ExecTimeModel::Calibrated { ms: exec[2] },
                uplink: Link::delay_only(500.0),
            },
        ])
    }

    /// Number of layers K.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Replaces `layer`'s execution-time model with a fixed measured value —
    /// how a measured quantised layer-0 delay (`repro_quant`) feeds back
    /// into the delay economy.
    ///
    /// # Panics
    ///
    /// Panics if `layer` is out of range or `ms` is not finite and positive.
    #[must_use]
    pub fn with_exec_ms(mut self, layer: usize, ms: f64) -> Self {
        assert!(ms.is_finite() && ms > 0.0, "exec override must be finite and > 0, got {ms}");
        self.layers[layer].exec = ExecTimeModel::Calibrated { ms };
        self
    }

    /// Immutable access to the layer specs (bottom-up).
    pub fn layers(&self) -> &[LayerSpec] {
        &self.layers
    }

    /// Execution time of the model at `layer`, ms.
    ///
    /// # Panics
    ///
    /// Panics if `layer` is out of range.
    pub fn exec_ms(&self, layer: usize) -> f64 {
        let spec = &self.layers[layer];
        spec.exec.exec_ms(&spec.device)
    }

    /// End-to-end detection delay when the task is executed at `layer`:
    /// round-trip transfer of the window payload plus execution (§II-B's
    /// `t_e2e`).
    ///
    /// # Panics
    ///
    /// Panics if `layer` is out of range.
    pub fn end_to_end_ms(&self, layer: usize, payload_bytes: usize) -> f64 {
        let spec = &self.layers[layer];
        spec.uplink.transfer_ms(payload_bytes) + self.exec_ms(layer)
    }

    /// Cumulative delay of the Successive scheme escalating through
    /// `layers_visited` (1 = stopped at IoT, 2 = IoT then edge, …): each
    /// visited layer pays its own transfer + execution.
    ///
    /// # Panics
    ///
    /// Panics if `layers_visited` is 0 or exceeds K.
    pub fn successive_ms(&self, layers_visited: usize, payload_bytes: usize) -> f64 {
        assert!(
            layers_visited >= 1 && layers_visited <= self.num_layers(),
            "layers_visited must be in 1..=K"
        );
        (0..layers_visited).map(|l| self.end_to_end_ms(l, payload_bytes)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn univariate_delays_match_table2() {
        let topo = HecTopology::paper_testbed(DatasetKind::Univariate);
        assert!((topo.end_to_end_ms(0, 384) - 12.4).abs() < 1e-9);
        assert!((topo.end_to_end_ms(1, 384) - 257.43).abs() < 1e-9);
        assert!((topo.end_to_end_ms(2, 384) - 504.5).abs() < 1e-9);
    }

    #[test]
    fn multivariate_delays_match_table2() {
        let topo = HecTopology::paper_testbed(DatasetKind::Multivariate);
        assert!((topo.end_to_end_ms(0, 9216) - 591.0).abs() < 1e-9);
        assert!((topo.end_to_end_ms(1, 9216) - 667.33).abs() < 1e-2);
        assert!((topo.end_to_end_ms(2, 9216) - 732.3).abs() < 1e-9);
    }

    #[test]
    fn successive_accumulates() {
        let topo = HecTopology::paper_testbed(DatasetKind::Univariate);
        let one = topo.successive_ms(1, 384);
        let two = topo.successive_ms(2, 384);
        let three = topo.successive_ms(3, 384);
        assert!((one - 12.4).abs() < 1e-9);
        assert!((two - (12.4 + 257.43)).abs() < 1e-9);
        assert!((three - (12.4 + 257.43 + 504.5)).abs() < 1e-9);
    }

    #[test]
    fn alphas_match_paper() {
        assert_eq!(DatasetKind::Univariate.paper_alpha(), 0.0005);
        assert_eq!(DatasetKind::Multivariate.paper_alpha(), 0.00035);
    }

    #[test]
    fn exec_ladder_decreases_up_the_hierarchy() {
        for kind in [DatasetKind::Univariate, DatasetKind::Multivariate] {
            let topo = HecTopology::paper_testbed(kind);
            assert!(topo.exec_ms(0) > topo.exec_ms(1));
            assert!(topo.exec_ms(1) > topo.exec_ms(2));
        }
    }

    #[test]
    #[should_panic(expected = "layers_visited")]
    fn successive_zero_layers_panics() {
        let topo = HecTopology::paper_testbed(DatasetKind::Univariate);
        let _ = topo.successive_ms(0, 0);
    }

    #[test]
    #[should_panic(expected = "at least one layer")]
    fn empty_topology_panics() {
        let _ = HecTopology::new(vec![]);
    }
}
