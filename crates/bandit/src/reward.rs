//! Reward and cost functions (§II-B, Eq. 1).

use serde::{Deserialize, Serialize};

/// The delay-to-accuracy cost `C(a, x) = α·t / (1 + α·t)` (Eq. 1):
/// a sigmoid-like map from end-to-end delay (ms) into `[0, 1)` so that
/// "a higher delay will result in a greater reduction of accuracy".
///
/// The paper selects `α = 0.0005` for the univariate dataset and
/// `α = 0.00035` for the multivariate dataset (§III-B).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    alpha: f64,
}

impl CostModel {
    /// Creates a cost model with the given α.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is not positive.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0, "alpha must be positive");
        Self { alpha }
    }

    /// The α parameter.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Cost of a detection that took `delay_ms` end-to-end.
    ///
    /// # Panics
    ///
    /// Panics if `delay_ms` is negative.
    pub fn cost(&self, delay_ms: f64) -> f64 {
        assert!(delay_ms >= 0.0, "delay must be non-negative");
        let at = self.alpha * delay_ms;
        at / (1.0 + at)
    }
}

/// The bandit reward `R(a, z_x) = accuracy(x) − C(a, x)` where `accuracy(x)`
/// is the per-sample correctness (1 if the selected model's verdict matches
/// the ground truth, else 0).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RewardModel {
    cost: CostModel,
}

impl RewardModel {
    /// Creates a reward model with the given cost α.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is not positive.
    pub fn new(alpha: f64) -> Self {
        Self { cost: CostModel::new(alpha) }
    }

    /// The underlying cost model.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// Reward for a detection with per-sample correctness `correct` that
    /// took `delay_ms`.
    pub fn reward(&self, correct: bool, delay_ms: f64) -> f64 {
        let accuracy = if correct { 1.0 } else { 0.0 };
        accuracy - self.cost.cost(delay_ms)
    }

    /// Aggregate "Reward" column of Table II: `100 × (mean accuracy − mean
    /// cost)` over a set of `(correct, delay)` pairs.
    ///
    /// Note: the paper's absolute reward scale is not reproducible from the
    /// stated formula (see EXPERIMENTS.md); this is our declared scale, used
    /// consistently across all schemes so the ranking is meaningful.
    pub fn aggregate_reward_x100(&self, outcomes: impl IntoIterator<Item = (bool, f64)>) -> f64 {
        let mut total = 0.0f64;
        let mut n = 0usize;
        for (correct, delay) in outcomes {
            total += self.reward(correct, delay);
            n += 1;
        }
        if n == 0 {
            return 0.0;
        }
        100.0 * total / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_is_zero_at_zero_delay() {
        assert_eq!(CostModel::new(0.0005).cost(0.0), 0.0);
    }

    #[test]
    fn cost_monotone_in_delay() {
        let c = CostModel::new(0.0005);
        let mut prev = -1.0;
        for &t in &[1.0, 10.0, 100.0, 500.0, 5_000.0] {
            let cost = c.cost(t);
            assert!(cost > prev);
            prev = cost;
        }
    }

    #[test]
    fn cost_bounded_below_one() {
        let c = CostModel::new(0.0005);
        assert!(c.cost(1e12) < 1.0);
    }

    #[test]
    fn cost_known_values() {
        // α·t = 0.0005 × 504.5 = 0.25225 → C = 0.25225/1.25225 ≈ 0.20144.
        let c = CostModel::new(0.0005);
        assert!((c.cost(504.5) - 0.201_437).abs() < 1e-5);
        // Univariate IoT: α·t = 0.0062 → C ≈ 0.006162.
        assert!((c.cost(12.4) - 0.006_162).abs() < 1e-5);
    }

    #[test]
    fn reward_prefers_fast_correct() {
        let r = RewardModel::new(0.0005);
        assert!(r.reward(true, 12.4) > r.reward(true, 504.5));
        assert!(r.reward(true, 504.5) > r.reward(false, 12.4));
    }

    #[test]
    fn incorrect_far_reward_is_most_negative() {
        let r = RewardModel::new(0.0005);
        assert!(r.reward(false, 504.5) < r.reward(false, 12.4));
        assert!(r.reward(false, 504.5) < 0.0);
    }

    #[test]
    fn aggregate_scales_by_100() {
        let r = RewardModel::new(0.0005);
        let agg = r.aggregate_reward_x100([(true, 0.0), (true, 0.0)]);
        assert!((agg - 100.0).abs() < 1e-9);
        assert_eq!(r.aggregate_reward_x100([]), 0.0);
    }

    #[test]
    fn alpha_tradeoff_crossover() {
        // With a large α, a slow correct detection is worth less than a fast
        // incorrect one is penalised — the knob the paper tunes per dataset.
        let strict = RewardModel::new(0.01);
        let lax = RewardModel::new(1e-6);
        assert!(strict.reward(true, 500.0) < lax.reward(true, 500.0));
    }

    #[test]
    #[should_panic(expected = "alpha must be positive")]
    fn zero_alpha_rejected() {
        let _ = CostModel::new(0.0);
    }
}
