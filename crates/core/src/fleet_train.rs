//! Fleet-in-the-loop bandit training.
//!
//! The paper trains its policy against the *static* per-action delay
//! table, so the learned trade-off is blind to load: offloading into a
//! saturated edge looks exactly as cheap as offloading into an idle one.
//! This module closes the loop instead: the policy trains **inside** the
//! discrete-event fleet simulator, on the step-wise
//! [`FleetEngine`](hec_sim::fleet::FleetEngine) API, interleaving
//!
//! 1. *route* — sample an action from the policy on the window's scaled
//!    base context **plus the live normalised load gauges** (queue depths
//!    and link occupancy at the emitting moment);
//! 2. *observe* — when the window's simulated completion (or drop)
//!    arrives, score it with the [`RewardModel`] at the **observed
//!    load-dependent delay** (drops pay the explicit drop penalty);
//! 3. *update* — apply the deferred REINFORCE update
//!    ([`PolicyTrainer::observe`]) with the reinforcement-comparison
//!    baseline.
//!
//! Because actions shape queueing, the policy's own exploration changes
//! the delays it learns from — exactly the closed loop a deployed
//! adaptive scheme lives in. One epoch = one full scenario replay; the
//! corpus maps onto emitted windows as `seq mod corpus`, so every oracle
//! window is visited under many load states.
//!
//! Everything is single-threaded and seeded: same scenario + oracle +
//! config ⇒ byte-identical trained weights, curve and drop counts on any
//! host and under any `HEC_THREADS` setting.

use hec_bandit::{
    ContextScaler, LoadNormalizer, PolicyNetwork, PolicyTrainer, RewardModel, TrainConfig,
    TrainingCurve,
};
use hec_sim::fleet::{FleetScenario, JobEvent, ShardPlan, ShardedFleetEngine};

use crate::oracle::Oracle;
use crate::stream::{scenario_load_normalizer, ProbeMap};

/// Result of training a policy inside the fleet.
#[derive(Debug)]
pub struct FleetTrainOutcome {
    /// The trained load-aware policy
    /// (`input_dim = scaler.dim() + load dims`).
    pub policy: PolicyNetwork,
    /// Mean observed reward per epoch (drops included at the penalty).
    pub curve: TrainingCurve,
    /// Windows shed by admission control in each epoch — falling drop
    /// counts are the visible sign the policy is learning to route
    /// around saturation.
    pub drops_per_epoch: Vec<u64>,
}

/// Trains a load-aware policy inside `scenario`'s fleet.
///
/// The policy's context is the scaled oracle context concatenated with
/// the scenario's normalised load features ([`scenario_load_normalizer`];
/// evaluation must use the same normaliser, which
/// [`crate::stream::stream_through_fleet`] does automatically for
/// policies of this dimensionality). `config.epochs` full scenario
/// replays are performed; `config.seed` seeds both the weight
/// initialisation and the exploration sampling.
///
/// `probe_cohort` mirrors the evaluation driver: `None` trains on every
/// emitted window (the policy's own exploration is the only load);
/// `Some(c)` trains only on cohort `c`'s windows while the remaining
/// cohorts replay their scenario routing plans as background load — the
/// congestion regime the policy must learn to route around.
///
/// # Panics
///
/// Panics if the oracle is empty, the scaler's dimensionality does not
/// match the oracle contexts, the probe cohort is out of range or emits
/// nothing, or the scenario emits no windows.
pub fn train_policy_in_fleet(
    scenario: &FleetScenario,
    oracle: &Oracle,
    scaler: &ContextScaler,
    reward: &RewardModel,
    hidden: usize,
    config: TrainConfig,
    probe_cohort: Option<u32>,
) -> FleetTrainOutcome {
    assert!(!oracle.is_empty(), "cannot train on an empty oracle corpus");
    let total_windows = scenario.total_windows();
    assert!(total_windows > 0, "scenario emits no windows");
    let trained_windows = match probe_cohort {
        None => total_windows,
        Some(pc) => {
            let cohort = scenario
                .cohorts
                .get(pc as usize)
                .unwrap_or_else(|| panic!("probe cohort {pc} out of range"));
            assert!(cohort.total_windows() > 0, "probe cohort {pc} emits no windows");
            cohort.total_windows()
        }
    };
    let n = oracle.len();
    let k = scenario.topology().num_layers();

    let scaled: Vec<Vec<f32>> =
        oracle.outcomes.iter().map(|o| scaler.transform(&o.context)).collect();
    let norm: LoadNormalizer = scenario_load_normalizer(scenario);
    let input_dim = scaler.dim() + norm.dims();

    let policy = PolicyNetwork::new(input_dim, hidden, k, config.seed);
    let mut trainer = PolicyTrainer::new(policy, config);

    let mut curve = Vec::with_capacity(config.epochs);
    let mut drops_per_epoch = Vec::with_capacity(config.epochs);
    // Routed-but-unresolved trainable windows: (oracle index, augmented
    // context, sampled action), indexed by the window's global sequence
    // number. Background windows under a probe cohort never get an entry.
    let mut pending: Vec<Option<(u32, Vec<f32>, usize)>> = vec![None; total_windows as usize];
    // The same window → oracle mapping the evaluation driver uses.
    let mut probe_map = ProbeMap::new(probe_cohort, n);

    // One-shard plan: training goes through the sharded coordinator's
    // serial fast path (`FleetEngine::step` exactly), keeping the mutating
    // sample→observe→update interleaving and its byte-identical weights.
    let plan = ShardPlan::new(scenario, 1);
    for _epoch in 0..config.epochs {
        let _span = hec_telemetry::WallSpan::new("core.train_epoch");
        let mut engine = ShardedFleetEngine::new(&plan);
        let mut total = 0.0f32;
        let mut outcomes = 0u64;
        let mut drops = 0u64;
        probe_map.reset();
        loop {
            // The router borrows the trainer mutably only for the duration
            // of this step; the deferred update below re-borrows it.
            let ev = {
                let trainer = &mut trainer;
                let pending = &mut pending;
                let probe_map = &mut probe_map;
                let scaled = &scaled;
                let norm = &norm;
                engine.step(&mut |ctx| {
                    let Some(i) = probe_map.oracle_index(ctx) else {
                        // Background load: replay the scenario plan.
                        return scenario.planned_layer(ctx.cohort, ctx.seq);
                    };
                    let mut feat = Vec::with_capacity(input_dim);
                    feat.extend_from_slice(&scaled[i]);
                    norm.append_features(ctx.queue_depth, ctx.link_inflight, &mut feat);
                    let action = trainer.sample_action(&feat);
                    pending[ctx.seq as usize] = Some((i as u32, feat, action));
                    action
                })
            };
            let Some(ev) = ev else { break };
            let seq = match ev {
                JobEvent::Served { seq, .. } | JobEvent::Dropped { seq, .. } => seq,
            };
            let Some((i, feat, action)) = pending[seq as usize].take() else {
                continue; // background window: load only, no update
            };
            let r = match ev {
                JobEvent::Served { layer, latency_ms, .. } => reward
                    .reward_outcome(oracle.correct(i as usize, layer), Some(latency_ms))
                    as f32,
                JobEvent::Dropped { .. } => {
                    drops += 1;
                    reward.reward_dropped() as f32
                }
            };
            trainer.observe(&feat, action, r);
            total += r;
            outcomes += 1;
        }
        debug_assert_eq!(outcomes, trained_windows, "fleet leaked windows during training");
        curve.push(total / outcomes.max(1) as f32);
        drops_per_epoch.push(drops);
        pending.iter_mut().for_each(|slot| *slot = None);
        // Deterministic training-progress counts (per-epoch updates and
        // drops are seed-fixed, so these belong in the registry).
        if hec_telemetry::ENABLED {
            hec_telemetry::counter_add(
                "train.updates",
                &[("scenario", scenario.name.as_str())],
                outcomes,
            );
            hec_telemetry::counter_add(
                "train.drops",
                &[("scenario", scenario.name.as_str())],
                drops,
            );
        }
    }

    FleetTrainOutcome {
        policy: trainer.into_policy(),
        curve: TrainingCurve { mean_reward_per_epoch: curve },
        drops_per_epoch,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::WindowOutcome;
    use crate::scheme::SchemeKind;
    use crate::stream::stream_through_fleet;
    use hec_anomaly::ConfidenceRule;
    use hec_sim::fleet::{CohortSpec, FleetScale, RoutePlan};

    /// Synthetic oracle: layer 0 is right only on easy (even) windows,
    /// layers 1 and 2 are always right — so offloading pays in accuracy.
    fn oracle(n: usize) -> Oracle {
        let outcomes = (0..n)
            .map(|i| {
                let truth = i % 3 == 0;
                let easy = i % 2 == 0;
                let verdict0 = if easy { truth } else { !truth };
                let frac = |v: bool| if v { 0.4f32 } else { 0.0 };
                WindowOutcome {
                    truth,
                    min_log_pd: [
                        -5.0,
                        if truth { -60.0 } else { -1.0 },
                        if truth { -60.0 } else { -1.0 },
                    ],
                    anomalous_fraction: [frac(verdict0), frac(truth), frac(truth)],
                    context: vec![easy as u8 as f32, (i % 3) as f32 / 2.0],
                }
            })
            .collect();
        Oracle {
            outcomes,
            thresholds: [-10.0; 3],
            flag_fraction: 0.0,
            confidence: ConfidenceRule::default(),
        }
    }

    /// A small fleet whose edge saturates if everything offloads there:
    /// 60 devices × 1 window / 25 ms ≈ 2.4k/s offered against ~540/s.
    fn hot_scenario() -> FleetScenario {
        let mut sc = FleetScenario::light_load(FleetScale::Quick);
        sc.name = "train_test".into();
        sc.batch_max = 1;
        sc.queue_capacity = 40;
        sc.trace_interval_ms = 25.0;
        sc.cohorts = vec![CohortSpec::uniform(60, 8, 25.0, 0.0, RoutePlan::Fixed(0))];
        sc
    }

    fn quick_config(epochs: usize) -> TrainConfig {
        TrainConfig { epochs, learning_rate: 5e-3, ..Default::default() }
    }

    #[test]
    fn training_produces_a_load_aware_policy_and_full_curve() {
        let o = oracle(48);
        let scaler = ContextScaler::fit(&o.contexts());
        let sc = hot_scenario();
        let reward = RewardModel::new(0.0005);
        let out = train_policy_in_fleet(&sc, &o, &scaler, &reward, 16, quick_config(4), None);
        assert_eq!(out.curve.mean_reward_per_epoch.len(), 4);
        assert_eq!(out.drops_per_epoch.len(), 4);
        let norm = scenario_load_normalizer(&sc);
        let mut policy = out.policy;
        assert_eq!(policy.input_dim(), scaler.dim() + norm.dims());
        // The trained policy slots straight into the closed-loop driver.
        let r = stream_through_fleet(
            &sc,
            &o,
            SchemeKind::Adaptive,
            Some(&mut policy),
            Some(&scaler),
            &reward,
            None,
        );
        assert_eq!(r.fleet.served + r.missed, r.fleet.emitted);
    }

    #[test]
    fn training_improves_observed_reward() {
        let o = oracle(48);
        let scaler = ContextScaler::fit(&o.contexts());
        let sc = hot_scenario();
        let reward = RewardModel::new(0.0005);
        let out = train_policy_in_fleet(&sc, &o, &scaler, &reward, 16, quick_config(12), None);
        let c = &out.curve.mean_reward_per_epoch;
        let early: f32 = c[..3].iter().sum::<f32>() / 3.0;
        let late: f32 = c[c.len() - 3..].iter().sum::<f32>() / 3.0;
        assert!(late > early, "no improvement: early {early}, late {late}");
    }

    /// Same seed + scenario ⇒ byte-identical trained weights, curve and
    /// drop counts, whatever `HEC_THREADS` says — and the closed-loop
    /// evaluation of the result is identical too.
    #[test]
    fn fleet_training_is_thread_count_invariant() {
        let o = oracle(36);
        let scaler = ContextScaler::fit(&o.contexts());
        let sc = hot_scenario();
        let reward = RewardModel::new(0.0005);
        let run = |threads: usize| {
            crate::parallel::with_thread_count(threads, || {
                let mut out =
                    train_policy_in_fleet(&sc, &o, &scaler, &reward, 16, quick_config(3), None);
                let weights = out.policy.weights_le_bytes();
                let report = stream_through_fleet(
                    &sc,
                    &o,
                    SchemeKind::Adaptive,
                    Some(&mut out.policy),
                    Some(&scaler),
                    &reward,
                    None,
                );
                (weights, out.curve, out.drops_per_epoch, report)
            })
        };
        let serial = run(1);
        let threaded = run(2);
        assert_eq!(serial.0, threaded.0, "trained weights diverged across HEC_THREADS");
        assert_eq!(serial.1, threaded.1, "training curve diverged");
        assert_eq!(serial.2, threaded.2, "drop accounting diverged");
        assert_eq!(serial.3, threaded.3, "closed-loop report diverged");
    }

    /// The shared-fleet setting end to end: a background cohort pegs the
    /// edge queue, a probe cohort is scheme-routed. A policy trained
    /// against the *static* delay table keeps sending hard windows into
    /// the saturated edge; the policy trained inside the loaded fleet
    /// learns to route around it and earns strictly more observed reward.
    #[test]
    fn fleet_trained_beats_static_under_background_saturation() {
        use hec_bandit::{PolicyNetwork, PolicyTrainer};

        let o = oracle(48);
        let scaler = ContextScaler::fit(&o.contexts());
        let scaled = scaler.transform_all(&o.contexts());
        let reward = RewardModel::new(0.0005);

        // Background: 2.5k win/s at 90% edge (capacity ~540/s) — pegged.
        // Probe: 30 devices × 8 windows through the same fleet.
        let mut sc = FleetScenario::light_load(FleetScale::Quick);
        sc.name = "probe_test".into();
        sc.batch_max = 1;
        sc.cohorts = vec![
            CohortSpec::uniform(250, 10, 100.0, 0.0, RoutePlan::Mixture([0.05, 0.90, 0.05])),
            CohortSpec::uniform(30, 8, 100.0, 0.0, RoutePlan::Fixed(0)),
        ];
        let probe = Some(1u32);

        // The paper's regime: REINFORCE against the static table.
        let delays = crate::experiment::static_delay_table(&sc.topology(), sc.payload_bytes);
        let mut static_trainer =
            PolicyTrainer::new(PolicyNetwork::new(scaler.dim(), 16, 3, 0), quick_config(40));
        static_trainer.train_with_delays(&scaled, &mut |i, a| o.correct(i, a), &delays, &reward);
        let mut static_policy = static_trainer.into_policy();

        // Ours: trained inside the loaded fleet.
        let out = train_policy_in_fleet(&sc, &o, &scaler, &reward, 16, quick_config(12), probe);
        let mut fleet_policy = out.policy;

        let eval = |policy: &mut PolicyNetwork| {
            stream_through_fleet(
                &sc,
                &o,
                SchemeKind::Adaptive,
                Some(policy),
                Some(&scaler),
                &reward,
                probe,
            )
        };
        let r_static = eval(&mut static_policy);
        let r_fleet = eval(&mut fleet_policy);
        assert!(
            r_fleet.mean_reward_x100 > r_static.mean_reward_x100,
            "fleet-trained {:.2} must beat static {:.2} under background saturation",
            r_fleet.mean_reward_x100,
            r_static.mean_reward_x100
        );
    }

    #[test]
    #[should_panic(expected = "empty oracle")]
    fn empty_oracle_rejected() {
        let o = Oracle {
            outcomes: vec![],
            thresholds: [0.0; 3],
            flag_fraction: 0.0,
            confidence: ConfidenceRule::default(),
        };
        let scaler = ContextScaler::fit(&[vec![0.0]]);
        let _ = train_policy_in_fleet(
            &hot_scenario(),
            &o,
            &scaler,
            &RewardModel::new(0.0005),
            8,
            quick_config(1),
            None,
        );
    }
}
