//! Sharded fleet engine: deterministic parallel DES over device
//! partitions.
//!
//! The serial [`FleetEngine`] runs one virtual clock on one core, which
//! caps scenarios at ~100k devices. This module scales the fleet out by
//! **resource partitioning**: a [`ShardPlan`] splits every cohort's
//! devices into `S` contiguous slices *and* divides the shared upper-layer
//! resources the same way — each shard's compute stage gets `1/S` of the
//! layer's server concurrency, `1/S` of the queue capacity, and its uplink
//! `1/S` of the link bandwidth and admission bound. Each shard is thereby
//! a self-contained `1/S`-scale replica of the scenario at identical
//! offered-load ratios (the same devices-and-resources twin scaling that
//! relates the Quick and Full [`FleetScale`]s), so shards never exchange
//! jobs and each one is an ordinary, fully deterministic [`FleetEngine`]
//! over its own [`EventQueue`] and layer-0 `busy_until` array.
//!
//! Shards still have to agree on a *global* outcome order, and the
//! coordinator must bound how far any shard's clock runs ahead of the
//! caller (routers may mutate between outcomes). Both come from a
//! conservative lookahead-window scheme:
//!
//! 1. the barrier is `min` over shards of the next pending event time,
//!    plus the plan's lookahead (the shortest cohort emission period);
//! 2. every shard advances independently — in parallel, when driven by
//!    `hec-core` — through all events at or before the barrier, buffering
//!    its per-window outcomes tagged with their virtual times;
//! 3. the coordinator merges the buffers in `(time, shard-id)` order —
//!    a deterministic k-way merge, so the merged stream and the merged
//!    metrics are byte-identical across reruns *and* across however many
//!    OS threads stepped the shards.
//!
//! `shards = 1` is the serial engine: the single shard's scenario,
//! topology and resource bounds are exactly the original's, and
//! [`ShardedFleetEngine::step`] delegates straight to
//! [`FleetEngine::step`], preserving the resumable pull contract (and its
//! byte-identical reports) for in-fleet training.
//!
//! Note that `shards > 1` is a *different* (equally valid) simulation
//! than the serial one — partitioning re-buckets emission phases and
//! splits queues — so its reports are deterministic and conserve windows
//! but are not expected to byte-match the serial run.
//!
//! [`FleetScale`]: super::scenario::FleetScale
//! [`EventQueue`]: crate::event::EventQueue

use std::collections::VecDeque;

use crate::topology::HecTopology;

use super::des::{FleetEngine, JobEvent, RouteCtx};
use super::metrics::{FleetReport, LatencyHist, LayerSummary, TraceSample};
use super::scenario::FleetScenario;

/// The contiguous run of one cohort's devices owned by one shard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeviceSlice {
    /// Cohort the slice belongs to.
    pub cohort: u32,
    /// First shard-local device id of the slice (slices are laid out in
    /// cohort order within the shard, exactly as in the serial engine).
    pub local_base: u32,
    /// First fleet-global device id of the slice.
    pub global_base: u32,
    /// Devices in the slice (may be 0 when a cohort is smaller than the
    /// shard count).
    pub len: u32,
}

/// One shard's derived configuration.
#[derive(Debug, Clone)]
struct ShardSpec {
    /// The original scenario with this shard's device slices and `1/S`
    /// resource bounds.
    scenario: FleetScenario,
    /// The testbed with `1/S` server concurrency and link bandwidth.
    topology: HecTopology,
    /// One slice per cohort, in cohort order.
    slices: Vec<DeviceSlice>,
    /// First fleet-global window sequence number of this shard.
    seq_base: u64,
}

/// A deterministic partition of a [`FleetScenario`] into shard-local
/// sub-scenarios (see the module docs for the scheme).
///
/// The plan owns every derived scenario and topology; shard engines
/// borrow from it, so one plan can be replayed by any number of
/// [`ShardedFleetEngine`]s.
#[derive(Debug, Clone)]
pub struct ShardPlan {
    scenario: FleetScenario,
    topology: HecTopology,
    shards: Vec<ShardSpec>,
    lookahead_ms: f64,
}

/// `total` split across `shards`, share of shard `s`: the remainder goes
/// to the lowest shard ids, mirroring the device partition.
fn split_share(total: usize, shards: usize, s: usize) -> usize {
    total / shards + usize::from(s < total % shards)
}

impl ShardPlan {
    /// Partitions `scenario` into `shards` sub-scenarios.
    ///
    /// Cohort `c`'s `D_c` devices are split into contiguous slices of
    /// `⌊D_c/S⌋ + (s < D_c mod S)` devices; queue capacity, link
    /// admission bounds, server concurrency and link bandwidth are each
    /// divided by `S` (concurrency and capacities floor at 1, so when
    /// `S` exceeds a layer's server count the partitioned system has
    /// slightly *more* aggregate capacity — documented, deterministic,
    /// and irrelevant at the fleet scales sharding exists for).
    ///
    /// # Panics
    ///
    /// Panics if `shards` is 0 or the scenario has no cohorts.
    pub fn new(scenario: &FleetScenario, shards: usize) -> Self {
        assert!(shards >= 1, "need at least one shard, got {shards}");
        assert!(!scenario.cohorts.is_empty(), "scenario has no cohorts");
        let topology = scenario.topology();

        // Fleet-global first device id of each cohort (the serial
        // engine's contiguous assignment).
        let mut global_base = Vec::with_capacity(scenario.cohorts.len());
        let mut next = 0u32;
        for c in &scenario.cohorts {
            global_base.push(next);
            next += c.devices;
        }

        let s32 = shards as u32;
        let mut specs = Vec::with_capacity(shards);
        let mut seq_base = 0u64;
        for s in 0..shards {
            let mut sub = scenario.clone();
            let mut slices = Vec::with_capacity(scenario.cohorts.len());
            let mut local_next = 0u32;
            for (c, spec) in scenario.cohorts.iter().enumerate() {
                let per = spec.devices / s32;
                let rem = spec.devices % s32;
                let len = per + u32::from((s as u32) < rem);
                let offset = s as u32 * per + (s as u32).min(rem);
                sub.cohorts[c].devices = len;
                slices.push(DeviceSlice {
                    cohort: c as u32,
                    local_base: local_next,
                    global_base: global_base[c] + offset,
                    len,
                });
                local_next += len;
            }
            if shards > 1 {
                sub.queue_capacity = split_share(scenario.queue_capacity, shards, s).max(1);
                sub.link_max_inflight = split_share(scenario.link_max_inflight, shards, s).max(1);
                // Keep the derived scenario self-consistent: its own
                // bandwidth overrides describe the shard's 1/S link.
                sub.edge_bandwidth_mbps = scenario.edge_bandwidth_mbps.map(|m| m / shards as f64);
                sub.cloud_bandwidth_mbps = scenario.cloud_bandwidth_mbps.map(|m| m / shards as f64);
            }
            let shard_topology = Self::shard_topology(&topology, shards, s);
            let windows = sub.total_windows();
            specs.push(ShardSpec { scenario: sub, topology: shard_topology, slices, seq_base });
            seq_base += windows;
        }

        // Conservative window: the shortest active emission period. Any
        // positive value is *correct* (shards are independent); this one
        // bounds the outcome buffer to roughly one fleet-wide emission
        // round per barrier.
        let min_period = scenario
            .cohorts
            .iter()
            .filter(|c| c.devices > 0 && c.windows_per_device > 0)
            .map(|c| c.period_ms)
            .fold(f64::INFINITY, f64::min);
        let lookahead_ms = if min_period.is_finite() { min_period.max(1e-3) } else { 1.0 };

        Self { scenario: scenario.clone(), topology, shards: specs, lookahead_ms }
    }

    /// The original topology with each shared layer's concurrency and
    /// each capped link's bandwidth divided by the shard count.
    fn shard_topology(base: &HecTopology, shards: usize, s: usize) -> HecTopology {
        if shards == 1 {
            return base.clone();
        }
        let mut layers = base.layers().to_vec();
        for (l, layer) in layers.iter_mut().enumerate() {
            if l > 0 {
                layer.device.concurrency = split_share(layer.device.concurrency, shards, s).max(1);
                if let Some(mbps) = layer.uplink.bandwidth_mbps {
                    layer.uplink = layer.uplink.clone().with_bandwidth(mbps / shards as f64);
                }
            }
        }
        HecTopology::new(layers)
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The partitioned scenario.
    pub fn scenario(&self) -> &FleetScenario {
        &self.scenario
    }

    /// Shard `s`'s derived sub-scenario (its device counts and `1/S`
    /// resource bounds).
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    pub fn shard_scenario(&self, s: usize) -> &FleetScenario {
        &self.shards[s].scenario
    }

    /// Shard `s`'s device slices, one per cohort in cohort order.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    pub fn device_slices(&self, s: usize) -> &[DeviceSlice] {
        &self.shards[s].slices
    }

    /// The conservative lookahead window, ms.
    pub fn lookahead_ms(&self) -> f64 {
        self.lookahead_ms
    }
}

/// Maps a shard-local device id to its fleet-global id via the shard's
/// slice table (slices are sorted by `local_base` and contiguous).
fn globalize_device(slices: &[DeviceSlice], local: u32) -> u32 {
    let idx = slices.partition_point(|sl| sl.local_base + sl.len <= local);
    let sl = &slices[idx];
    sl.global_base + (local - sl.local_base)
}

/// Rewrites a shard-local routing context into fleet-global coordinates.
fn globalize_ctx<'c>(slices: &[DeviceSlice], seq_base: u64, ctx: &RouteCtx<'c>) -> RouteCtx<'c> {
    let sl = &slices[ctx.cohort as usize];
    RouteCtx {
        device: sl.global_base + (ctx.device - sl.local_base),
        seq: seq_base + ctx.seq,
        cohort: ctx.cohort,
        now_ms: ctx.now_ms,
        queue_depth: ctx.queue_depth,
        link_inflight: ctx.link_inflight,
    }
}

/// Rewrites a shard-local outcome into fleet-global coordinates.
fn globalize_event(slices: &[DeviceSlice], seq_base: u64, ev: JobEvent) -> JobEvent {
    match ev {
        JobEvent::Served { seq, device, layer, latency_ms } => JobEvent::Served {
            seq: seq_base + seq,
            device: globalize_device(slices, device),
            layer,
            latency_ms,
        },
        JobEvent::Dropped { seq, device, layer, reason } => JobEvent::Dropped {
            seq: seq_base + seq,
            device: globalize_device(slices, device),
            layer,
            reason,
        },
    }
}

/// One shard's engine plus its global-coordinate translation: routers
/// always see fleet-global device ids and window sequence numbers,
/// whichever shard asks.
pub struct ShardEngine<'a> {
    engine: FleetEngine<'a>,
    slices: &'a [DeviceSlice],
    seq_base: u64,
    /// Outcomes of the current window, time-tagged and already
    /// globalized; drained by the coordinator's merge.
    outbox: Vec<(f64, JobEvent)>,
    /// Shard index within the plan (trace-track and metric labelling).
    shard_id: usize,
    /// Virtual-trace track name, `<scenario>/shard<id>` (empty when
    /// telemetry is compiled out).
    track: String,
    /// Lookahead windows this shard has been advanced through.
    barriers: u64,
    /// Windows in which the shard processed no events (it had nothing
    /// at or before the barrier) — the lookahead-stall gauge.
    stall_windows: u64,
}

impl ShardEngine<'_> {
    /// Virtual time of this shard's earliest pending event, or `None`
    /// when the shard has drained.
    pub fn next_event_time_ms(&self) -> Option<f64> {
        self.engine.next_event_time_ms()
    }

    /// Discrete events this shard has processed (per-shard throughput
    /// accounting for scale benchmarks).
    pub fn events(&self) -> u64 {
        self.engine.events_processed()
    }

    /// Shard index within the plan.
    pub fn shard_id(&self) -> usize {
        self.shard_id
    }

    /// Lookahead windows this shard has advanced through.
    pub fn barriers(&self) -> u64 {
        self.barriers
    }

    /// Lookahead windows in which this shard processed zero events.
    pub fn stall_windows(&self) -> u64 {
        self.stall_windows
    }

    /// Advances this shard through every event at or before `barrier_ms`,
    /// buffering the produced outcomes. The router receives fleet-global
    /// contexts; safe to call from any thread (each shard is advanced by
    /// at most one thread at a time — `&mut self` enforces it).
    ///
    /// # Panics
    ///
    /// Panics if the router returns a layer outside the topology.
    pub fn advance_to(&mut self, barrier_ms: f64, router: &mut dyn FnMut(&RouteCtx) -> usize) {
        let capture = hec_telemetry::trace_capture_enabled();
        let window_start = if capture { self.engine.next_event_time_ms() } else { None };
        let events_before = if hec_telemetry::ENABLED { self.engine.events_processed() } else { 0 };
        let from;
        {
            let Self { engine, slices, seq_base, outbox, .. } = self;
            let (slices, sb): (&[DeviceSlice], u64) = (slices, *seq_base);
            from = outbox.len();
            let mut wrapped = |ctx: &RouteCtx| router(&globalize_ctx(slices, sb, ctx));
            engine.advance_until(barrier_ms, &mut wrapped, outbox);
            for (_t, ev) in &mut outbox[from..] {
                *ev = globalize_event(slices, sb, *ev);
            }
        }
        if hec_telemetry::ENABLED {
            self.barriers += 1;
            if self.engine.events_processed() == events_before {
                self.stall_windows += 1;
            }
            if capture {
                if let Some(start) = window_start {
                    let start = start.min(barrier_ms);
                    hec_telemetry::vspan(&self.track, "advance", start, barrier_ms - start);
                }
                self.trace_outcomes(&self.outbox[from..]);
            }
        }
    }

    /// Records one virtual-trace event per buffered outcome: served
    /// windows as residency spans (emission-to-completion is exactly the
    /// latency), drops as instants tagged with layer and cause.
    fn trace_outcomes(&self, outcomes: &[(f64, JobEvent)]) {
        let jobs_track = format!("{}/jobs", self.track);
        for &(t, ev) in outcomes {
            match ev {
                JobEvent::Served { layer, latency_ms, .. } => {
                    hec_telemetry::vspan(
                        &jobs_track,
                        &format!("serve L{layer}"),
                        t - latency_ms,
                        latency_ms,
                    );
                }
                JobEvent::Dropped { layer, reason, .. } => {
                    hec_telemetry::vinstant(&jobs_track, &format!("drop L{layer} {reason:?}"), t);
                }
            }
        }
    }

    /// The serial (`shards = 1`) fast path: exactly [`FleetEngine::step`]
    /// with global-coordinate translation (the identity for shard 0 of a
    /// one-shard plan).
    fn step_translated(&mut self, router: &mut dyn FnMut(&RouteCtx) -> usize) -> Option<JobEvent> {
        let ev = {
            let Self { engine, slices, seq_base, .. } = self;
            let (slices, sb): (&[DeviceSlice], u64) = (slices, *seq_base);
            let mut wrapped = |ctx: &RouteCtx| router(&globalize_ctx(slices, sb, ctx));
            engine.step(&mut wrapped).map(|ev| globalize_event(slices, sb, ev))
        };
        if let Some(out) = ev {
            if hec_telemetry::trace_capture_enabled() {
                self.trace_outcomes(&[(self.engine.last_activity_ms(), out)]);
            }
        }
        ev
    }
}

/// The sharded fleet engine: shard sub-engines behind the serial
/// [`FleetEngine`]'s resumable pull contract.
///
/// [`ShardedFleetEngine::step`] yields per-window outcomes in the
/// deterministic merged order; callers that can provide a `Sync` router
/// may instead drive the shards in parallel through the window primitives
/// ([`ShardedFleetEngine::next_barrier`] /
/// [`ShardedFleetEngine::shards_mut`] /
/// [`ShardedFleetEngine::merge_window`]), which is what
/// `hec_core::sharded` does — both drivers produce identical streams and
/// byte-identical reports.
pub struct ShardedFleetEngine<'a> {
    plan: &'a ShardPlan,
    shards: Vec<ShardEngine<'a>>,
    ready: VecDeque<JobEvent>,
}

impl<'a> ShardedFleetEngine<'a> {
    /// Builds one engine per shard of the plan.
    pub fn new(plan: &'a ShardPlan) -> Self {
        let shards = plan
            .shards
            .iter()
            .enumerate()
            .map(|(s, spec)| ShardEngine {
                engine: FleetEngine::with_topology(&spec.scenario, spec.topology.clone()),
                slices: &spec.slices,
                seq_base: spec.seq_base,
                outbox: Vec::new(),
                shard_id: s,
                track: if hec_telemetry::ENABLED {
                    format!("{}/shard{}", plan.scenario.name, s)
                } else {
                    String::new()
                },
                barriers: 0,
                stall_windows: 0,
            })
            .collect();
        Self { plan, shards, ready: VecDeque::new() }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Windows emitted so far, across shards.
    pub fn emitted(&self) -> u64 {
        self.shards.iter().map(|sh| sh.engine.emitted()).sum()
    }

    /// Discrete events processed so far, across shards.
    pub fn events(&self) -> u64 {
        self.shards.iter().map(|sh| sh.engine.events_processed()).sum()
    }

    /// Advances the fleet until the next per-window outcome (in the
    /// deterministic merged order) and returns it, or `None` when every
    /// shard has drained. With one shard this *is* [`FleetEngine::step`];
    /// with more it advances all shards window-by-window, consulting the
    /// router shard-by-shard in stable shard order within each window
    /// (which is what lets a `FnMut` router — e.g. a policy being
    /// trained — remain legal under sharding).
    ///
    /// # Panics
    ///
    /// Panics if the router returns a layer outside the topology.
    pub fn step(&mut self, router: &mut dyn FnMut(&RouteCtx) -> usize) -> Option<JobEvent> {
        if self.shards.len() == 1 {
            return self.shards[0].step_translated(router);
        }
        loop {
            if let Some(ev) = self.ready.pop_front() {
                return Some(ev);
            }
            let barrier = self.next_barrier()?;
            for shard in &mut self.shards {
                shard.advance_to(barrier, router);
            }
            self.merge_window();
        }
    }

    /// The next conservative barrier: the minimum pending event time
    /// across shards plus the plan's lookahead. `None` when every shard
    /// has drained.
    pub fn next_barrier(&self) -> Option<f64> {
        let mut t = f64::INFINITY;
        for sh in &self.shards {
            if let Some(next) = sh.next_event_time_ms() {
                t = t.min(next);
            }
        }
        let barrier = t.is_finite().then_some(t + self.plan.lookahead_ms);
        if let Some(b) = barrier {
            if hec_telemetry::trace_capture_enabled() {
                let track = format!("{}/coordinator", self.plan.scenario.name);
                hec_telemetry::vinstant(&track, "barrier", b);
            }
        }
        barrier
    }

    /// Mutable access to the shard engines, for parallel window
    /// advancement (each shard to the same barrier, any thread
    /// assignment).
    pub fn shards_mut(&mut self) -> &mut [ShardEngine<'a>] {
        &mut self.shards
    }

    /// Merges every shard's buffered outcomes into the ready queue in
    /// `(virtual time, shard id)` order — a deterministic k-way merge of
    /// already time-sorted buffers, so the merged stream is independent
    /// of how many threads advanced the shards.
    pub fn merge_window(&mut self) {
        let mut cursors = vec![0usize; self.shards.len()];
        loop {
            let mut best: Option<(f64, usize)> = None;
            for (s, sh) in self.shards.iter().enumerate() {
                if let Some(&(t, _)) = sh.outbox.get(cursors[s]) {
                    // Strict `<`: ties go to the lowest shard id.
                    if best.is_none_or(|(bt, _)| t < bt) {
                        best = Some((t, s));
                    }
                }
            }
            let Some((_, s)) = best else { break };
            let (_, ev) = self.shards[s].outbox[cursors[s]];
            self.ready.push_back(ev);
            cursors[s] += 1;
        }
        for sh in &mut self.shards {
            sh.outbox.clear();
        }
    }

    /// Pops the next merged outcome, if any (the parallel driver's
    /// observer loop between windows).
    pub fn pop_ready(&mut self) -> Option<JobEvent> {
        self.ready.pop_front()
    }

    /// Renders the fleet-wide report. With one shard this is byte-for-
    /// byte the serial [`FleetEngine::report`]; with more, per-layer
    /// counters are summed, latency histograms merged in stable shard
    /// order (order-invariant), peaks maxed, and utilizations recomputed
    /// against the partitioned capacity — all deterministic.
    pub fn report(&self) -> FleetReport {
        if hec_telemetry::ENABLED {
            self.record_registry_metrics();
        }
        if self.shards.len() == 1 {
            return self.shards[0].engine.report();
        }
        let plan = self.plan;
        let k = plan.topology.num_layers();
        let shards_f = self.shards.len() as f64;

        let horizon_act =
            self.shards.iter().map(|sh| sh.engine.last_activity_ms()).fold(0.0f64, f64::max);
        let horizon = horizon_act.max(1e-9);

        let mut offered = vec![0u64; k];
        let mut served = vec![0u64; k];
        let mut dropped_queue = vec![0u64; k];
        let mut dropped_link = vec![0u64; k];
        let mut busy_ms = vec![0.0f64; k];
        let mut link_work_ms = vec![0.0f64; k];
        let mut peak_queue = vec![0usize; k];
        let mut peak_link = vec![0usize; k];
        let mut has_link = vec![false; k];
        let mut hist: Vec<LatencyHist> = (0..k).map(|_| LatencyHist::new()).collect();
        for sh in &self.shards {
            for (l, raw) in sh.engine.raw_layers().enumerate() {
                offered[l] += raw.offered;
                served[l] += raw.served;
                dropped_queue[l] += raw.dropped_queue;
                dropped_link[l] += raw.dropped_link;
                busy_ms[l] += raw.busy_ms;
                link_work_ms[l] += raw.link_work_ms;
                peak_queue[l] = peak_queue[l].max(raw.peak_queue_depth);
                peak_link[l] = peak_link[l].max(raw.peak_link_inflight);
                has_link[l] |= raw.has_link;
                hist[l].merge(raw.latency);
            }
        }

        // Aggregate server capacity per layer: every device at layer 0,
        // the sum of the shards' (partitioned) concurrencies above. Each
        // shard link carries 1/S of the bandwidth, so S shard-links at
        // work w_s each run at Σw_s / (S × horizon) aggregate utilization.
        let servers: Vec<f64> = (0..k)
            .map(|l| {
                if l == 0 {
                    plan.scenario.total_devices().max(1) as f64
                } else {
                    plan.shards
                        .iter()
                        .map(|sp| sp.topology.layers()[l].device.concurrency.max(1))
                        .sum::<usize>() as f64
                }
            })
            .collect();

        let mut overall = LatencyHist::new();
        let mut total_served = 0u64;
        let mut total_dropped = 0u64;
        let layers: Vec<LayerSummary> = (0..k)
            .map(|l| {
                total_served += served[l];
                total_dropped += dropped_queue[l] + dropped_link[l];
                overall.merge(&hist[l]);
                LayerSummary {
                    layer: l,
                    name: plan.topology.layers()[l].device.name.clone(),
                    offered: offered[l],
                    served: served[l],
                    dropped_queue: dropped_queue[l],
                    dropped_link: dropped_link[l],
                    drop_rate: if offered[l] == 0 {
                        0.0
                    } else {
                        (dropped_queue[l] + dropped_link[l]) as f64 / offered[l] as f64
                    },
                    utilization: busy_ms[l] / (servers[l] * horizon),
                    link_utilization: has_link[l].then(|| link_work_ms[l] / (shards_f * horizon)),
                    peak_queue_depth: peak_queue[l],
                    peak_link_inflight: peak_link[l],
                    mean_ms: hist[l].mean(),
                    p50_ms: hist[l].quantile(0.50),
                    p99_ms: hist[l].quantile(0.99),
                    max_ms: hist[l].max(),
                }
            })
            .collect();

        FleetReport {
            scenario: plan.scenario.name.clone(),
            horizon_ms: horizon_act,
            events: self.events(),
            emitted: self.emitted(),
            served: total_served,
            dropped: total_dropped,
            layers,
            overall_mean_ms: overall.mean(),
            overall_p50_ms: overall.quantile(0.50),
            overall_p99_ms: overall.quantile(0.99),
            trace: self.merged_trace(k),
        }
    }

    /// Copies per-shard progress and fleet totals into the global
    /// telemetry registry. Everything recorded here is a virtual-clock or
    /// count fact, so the registry snapshot stays byte-identical across
    /// reruns and `HEC_THREADS` (recording happens on the coordinator
    /// thread in stable shard order, and all values are set-semantics so
    /// re-reporting is idempotent).
    fn record_registry_metrics(&self) {
        use hec_telemetry::{counter_set, gauge_set, hist_set, GeomHist};
        let scenario = self.plan.scenario.name.as_str();
        let k = self.plan.topology.num_layers();

        for sh in &self.shards {
            // Zero-padded ids keep lexicographic snapshot order numeric.
            let id = format!("{:04}", sh.shard_id);
            let labels = [("scenario", scenario), ("shard", id.as_str())];
            let horizon = sh.engine.last_activity_ms();
            counter_set("fleet.shard.events", &labels, sh.events());
            counter_set("fleet.shard.barriers", &labels, sh.barriers);
            counter_set("fleet.shard.stall_windows", &labels, sh.stall_windows);
            gauge_set(
                "fleet.shard.event_rate_per_ms",
                &labels,
                if horizon > 0.0 { sh.events() as f64 / horizon } else { 0.0 },
            );
        }

        let mut overall = GeomHist::new();
        let mut served = 0u64;
        let mut dropped_queue = 0u64;
        let mut dropped_link = 0u64;
        for l in 0..k {
            let mut layer_served = 0u64;
            let mut layer_dq = 0u64;
            let mut layer_dl = 0u64;
            for sh in &self.shards {
                if let Some(raw) = sh.engine.raw_layers().nth(l) {
                    layer_served += raw.served;
                    layer_dq += raw.dropped_queue;
                    layer_dl += raw.dropped_link;
                    overall.merge(raw.latency);
                }
            }
            let layer = format!("{l}");
            let labels = [("layer", layer.as_str()), ("scenario", scenario)];
            counter_set("fleet.layer.served", &labels, layer_served);
            counter_set("fleet.layer.dropped_queue", &labels, layer_dq);
            counter_set("fleet.layer.dropped_link", &labels, layer_dl);
            served += layer_served;
            dropped_queue += layer_dq;
            dropped_link += layer_dl;
        }
        let labels = [("scenario", scenario)];
        counter_set("fleet.emitted", &labels, self.emitted());
        counter_set("fleet.served", &labels, served);
        counter_set("fleet.dropped", &labels, dropped_queue + dropped_link);
        counter_set("fleet.events", &labels, self.events());
        hist_set("fleet.latency_ms", &labels, &overall);
    }

    /// Element-wise sum of the shards' queue traces. Shards sample at
    /// identical virtual times (multiples of the trace interval), but may
    /// stop at different sample counts as their horizons diverge — the
    /// merged trace truncates to the shortest among shards that emit any
    /// windows (empty shards contribute a lone all-zero sample and are
    /// skipped).
    fn merged_trace(&self, k: usize) -> Vec<TraceSample> {
        let contributing: Vec<&[TraceSample]> = self
            .plan
            .shards
            .iter()
            .zip(&self.shards)
            .filter(|(spec, _)| spec.scenario.total_windows() > 0)
            .map(|(_, sh)| sh.engine.trace_samples())
            .collect();
        let n = contributing.iter().map(|t| t.len()).min().unwrap_or(0);
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let mut queue_depth = vec![0usize; k];
            let mut link_inflight = vec![0usize; k];
            for t in &contributing {
                for l in 0..k {
                    queue_depth[l] += t[i].queue_depth.get(l).copied().unwrap_or(0);
                    link_inflight[l] += t[i].link_inflight.get(l).copied().unwrap_or(0);
                }
            }
            out.push(TraceSample { t_ms: contributing[0][i].t_ms, queue_depth, link_inflight });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::des::FleetSim;
    use crate::fleet::scenario::{FleetScale, RoutePlan};

    fn default_router(sc: &FleetScenario) -> impl FnMut(&RouteCtx) -> usize + '_ {
        move |ctx: &RouteCtx| sc.planned_layer(ctx.cohort, ctx.seq)
    }

    /// Runs a sharded plan to completion through `step`, returning the
    /// outcome stream and report.
    fn run_sharded(sc: &FleetScenario, shards: usize) -> (Vec<JobEvent>, FleetReport) {
        let plan = ShardPlan::new(sc, shards);
        let mut engine = ShardedFleetEngine::new(&plan);
        let mut router = default_router(sc);
        let mut outcomes = Vec::new();
        while let Some(ev) = engine.step(&mut router) {
            outcomes.push(ev);
        }
        (outcomes, engine.report())
    }

    #[test]
    fn one_shard_is_byte_identical_to_serial() {
        for name in FleetScenario::NAMES {
            let sc = FleetScenario::by_name(name, FleetScale::Quick).unwrap();
            let serial = FleetSim::new(&sc).run();
            let (_, sharded) = run_sharded(&sc, 1);
            assert_eq!(serial, sharded, "{name}");
            assert_eq!(serial.to_text(), sharded.to_text(), "{name}");
            assert_eq!(serial.layers_csv(), sharded.layers_csv(), "{name}");
            assert_eq!(serial.trace_csv(), sharded.trace_csv(), "{name}");
        }
    }

    #[test]
    fn one_shard_outcome_stream_matches_serial_engine() {
        let sc = FleetScenario::flash_crowd(FleetScale::Quick);
        let mut serial = Vec::new();
        FleetSim::new(&sc).run_with(&mut default_router(&sc), &mut |ev| serial.push(*ev));
        let (sharded, _) = run_sharded(&sc, 1);
        assert_eq!(serial, sharded);
    }

    #[test]
    fn sharded_runs_conserve_windows_and_are_deterministic() {
        for shards in [2usize, 3, 7] {
            for name in FleetScenario::NAMES {
                let sc = FleetScenario::by_name(name, FleetScale::Quick).unwrap();
                let (ev_a, rep_a) = run_sharded(&sc, shards);
                let (ev_b, rep_b) = run_sharded(&sc, shards);
                assert_eq!(ev_a, ev_b, "{name}/{shards}: outcome stream not deterministic");
                assert_eq!(rep_a, rep_b, "{name}/{shards}: report not deterministic");
                assert_eq!(rep_a.emitted, sc.total_windows(), "{name}/{shards}");
                assert_eq!(rep_a.served + rep_a.dropped, rep_a.emitted, "{name}/{shards}");
            }
        }
    }

    #[test]
    fn partition_conserves_devices_and_stays_contiguous() {
        let sc = FleetScenario::flash_crowd(FleetScale::Quick);
        for shards in [1usize, 2, 5, 13] {
            let plan = ShardPlan::new(&sc, shards);
            for (c, spec) in sc.cohorts.iter().enumerate() {
                let total: u32 = (0..shards).map(|s| plan.device_slices(s)[c].len).sum();
                assert_eq!(total, spec.devices, "cohort {c} at {shards} shards");
                // Slices tile the cohort's global id range in shard order.
                let mut expect = plan.device_slices(0)[c].global_base;
                for s in 0..shards {
                    let sl = &plan.device_slices(s)[c];
                    assert_eq!(sl.global_base, expect, "cohort {c} shard {s}");
                    expect += sl.len;
                }
            }
        }
    }

    #[test]
    fn global_ids_and_seqs_are_unique_and_dense() {
        let sc = FleetScenario::flash_crowd(FleetScale::Quick);
        let plan = ShardPlan::new(&sc, 4);
        let mut engine = ShardedFleetEngine::new(&plan);
        let total = sc.total_windows();
        let mut seen_seq = vec![false; total as usize];
        let devices = sc.total_devices();
        let mut router = |ctx: &RouteCtx| {
            assert!((ctx.device as u64) < devices, "device {} out of range", ctx.device);
            assert!(ctx.seq < total, "seq {} out of range", ctx.seq);
            assert!(!seen_seq[ctx.seq as usize], "seq {} routed twice", ctx.seq);
            seen_seq[ctx.seq as usize] = true;
            sc.planned_layer(ctx.cohort, ctx.seq)
        };
        while engine.step(&mut router).is_some() {}
        assert!(seen_seq.iter().all(|&b| b), "not every window was routed");
    }

    #[test]
    fn merged_outcomes_are_time_ordered_within_windows() {
        // The merged stream must visit shards deterministically; outcome
        // seqs of a Fixed(0) run arrive grouped by emission time.
        let mut sc = FleetScenario::light_load(FleetScale::Quick);
        sc.cohorts[0].route = RoutePlan::Fixed(0);
        let (outcomes, report) = run_sharded(&sc, 3);
        assert_eq!(outcomes.len() as u64, report.emitted);
    }

    #[test]
    fn more_shards_than_devices_still_completes() {
        let mut sc = FleetScenario::light_load(FleetScale::Quick);
        sc.cohorts[0].devices = 3;
        let (outcomes, report) = run_sharded(&sc, 8);
        assert_eq!(report.emitted, sc.total_windows());
        assert_eq!(outcomes.len() as u64, report.served + report.dropped);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panics() {
        let sc = FleetScenario::light_load(FleetScale::Quick);
        let _ = ShardPlan::new(&sc, 0);
    }
}
