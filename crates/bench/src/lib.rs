//! # hec-bench
//!
//! The reproduction harness: shared experiment profiles for the `repro_*`
//! binaries (one per table/figure of the paper) and the Criterion benches.
//!
//! Two profiles are provided:
//!
//! * **quick** — small corpora and few epochs, finishes in seconds even in
//!   debug builds (used by CI and the harness self-tests);
//! * **full** — the defaults sized for `--release` runs, whose outputs are
//!   recorded in EXPERIMENTS.md.
//!
//! Select with the `HEC_PROFILE` environment variable (`quick` | `full`,
//! default `full` for binaries).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod telemetry;

use hec_bandit::TrainConfig;
use hec_core::{DatasetConfig, ExperimentConfig};
use hec_data::{mhealth::MhealthConfig, power::PowerConfig};
use hec_sim::fleet::{CohortSpec, FleetScale, FleetScenario, RoutePlan};

/// Appends the standard scheme-routed **probe cohort** to a fleet
/// scenario and returns its cohort index: 20k devices (at full scale)
/// each emitting 10 windows one minute apart, scaled by the
/// [`FleetScale`] divisor so offered-load rates match at either scale.
/// The cohort's `RoutePlan` is a placeholder — the closed-loop drivers
/// override it with the scheme router. Shared by `repro_fleet_train`
/// and `repro_real` so their closed-loop numbers stay comparable.
pub fn push_probe_cohort(scenario: &mut FleetScenario, scale: FleetScale) -> u32 {
    let s = scale.divisor();
    let probe = scenario.cohorts.len() as u32;
    scenario.cohorts.push(CohortSpec::uniform(
        (20_000.0 / s) as u32,
        10,
        60_000.0 / s,
        0.0,
        RoutePlan::Fixed(0),
    ));
    probe
}

/// Which experiment scale to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Profile {
    /// Seconds-scale run for CI and smoke tests.
    Quick,
    /// The release-mode run recorded in EXPERIMENTS.md.
    Full,
}

impl Profile {
    /// Reads `HEC_PROFILE` (`quick`/`full`), defaulting to `Full`.
    pub fn from_env() -> Self {
        Self::from_env_or(Profile::Full)
    }

    /// Reads `HEC_PROFILE` (case-insensitive, whitespace-trimmed), falling
    /// back to `default` when unset. Unrecognized values also fall back but
    /// warn on stderr, so a typo'd profile never silently runs at the wrong
    /// scale. The integration tests use this with a `Quick` default so
    /// `cargo test` stays seconds-scale, while `HEC_PROFILE=full` still
    /// exercises the release-sized configuration.
    pub fn from_env_or(default: Profile) -> Self {
        let Ok(raw) = std::env::var("HEC_PROFILE") else {
            return default;
        };
        let value = raw.trim();
        if value.eq_ignore_ascii_case("quick") {
            Profile::Quick
        } else if value.eq_ignore_ascii_case("full") {
            Profile::Full
        } else {
            if !value.is_empty() {
                eprintln!(
                    "warning: unrecognized HEC_PROFILE value {value:?} (expected \"quick\" or \"full\"); using the {default:?} profile"
                );
            }
            default
        }
    }
}

/// The univariate (power-demand / autoencoder) experiment configuration.
pub fn univariate_config(profile: Profile) -> ExperimentConfig {
    match profile {
        Profile::Full => ExperimentConfig {
            dataset: DatasetConfig::Univariate(PowerConfig {
                days: 600,
                samples_per_day: 96,
                anomaly_rate: 0.12,
                noise_std: 0.03,
                seed: 42,
            }),
            ad_epochs: 150,
            policy: TrainConfig { epochs: 150, learning_rate: 2e-3, ..Default::default() },
            seq2seq_hidden: 32,
            policy_hidden: 100,
            seed: 42,
        },
        Profile::Quick => ExperimentConfig {
            dataset: DatasetConfig::Univariate(PowerConfig {
                days: 150,
                samples_per_day: 24,
                anomaly_rate: 0.15,
                noise_std: 0.03,
                seed: 42,
            }),
            ad_epochs: 60,
            policy: TrainConfig { epochs: 20, learning_rate: 2e-3, ..Default::default() },
            seq2seq_hidden: 8,
            policy_hidden: 32,
            seed: 42,
        },
    }
}

/// The multivariate (MHEALTH-like / seq2seq) experiment configuration.
pub fn multivariate_config(profile: Profile) -> ExperimentConfig {
    match profile {
        Profile::Full => ExperimentConfig {
            dataset: DatasetConfig::Multivariate(MhealthConfig {
                subjects: 4,
                window: 128,
                stride: 64,
                session_len: 512,
                normal_session_multiplier: 6,
                noise_std: 0.12,
                seed: 42,
            }),
            ad_epochs: 12,
            policy: TrainConfig { epochs: 100, learning_rate: 2e-3, ..Default::default() },
            seq2seq_hidden: 32,
            policy_hidden: 100,
            seed: 42,
        },
        Profile::Quick => ExperimentConfig {
            dataset: DatasetConfig::Multivariate(MhealthConfig {
                subjects: 2,
                window: 32,
                stride: 32,
                session_len: 128,
                normal_session_multiplier: 4,
                noise_std: 0.12,
                seed: 42,
            }),
            ad_epochs: 8,
            policy: TrainConfig { epochs: 15, learning_rate: 2e-3, ..Default::default() },
            seq2seq_hidden: 8,
            policy_hidden: 32,
            seed: 42,
        },
    }
}

/// Paper reference values for Table I (for side-by-side printing).
pub mod paper {
    /// (model, #params, accuracy %, F1, exec ms) — Table I, univariate.
    pub const TABLE1_UNIVARIATE: [(&str, usize, f64, f64, f64); 3] = [
        ("AE-IoT", 271_017, 78.09, 0.465, 12.4),
        ("AE-Edge", 949_468, 93.33, 0.741, 7.4),
        ("AE-Cloud", 1_085_077, 98.09, 0.909, 4.5),
    ];

    /// (model, #params, accuracy %, F1, exec ms) — Table I, multivariate.
    pub const TABLE1_MULTIVARIATE: [(&str, usize, f64, f64, f64); 3] = [
        ("LSTM-seq2seq-IoT", 28_518, 82.63, 0.852, 591.0),
        ("LSTM-seq2seq-Edge", 97_818, 94.21, 0.955, 417.3),
        ("BiLSTM-seq2seq-Cloud", 1_028_018, 97.37, 0.980, 232.3),
    ];

    /// (scheme, F1, accuracy %, delay ms) — Table II, univariate.
    /// The paper's "Reward" column is omitted (scale not reproducible from
    /// the stated formula; see EXPERIMENTS.md).
    pub const TABLE2_UNIVARIATE: [(&str, f64, f64, f64); 5] = [
        ("IoT Device", 0.465, 93.68, 12.4),
        ("Edge", 0.800, 98.63, 257.43),
        ("Cloud", 0.909, 99.46, 504.50),
        ("Successive", 0.769, 98.35, 105.27),
        ("Our Method", 0.870, 99.17, 144.50),
    ];

    /// (scheme, F1, accuracy %, delay ms) — Table II, multivariate.
    pub const TABLE2_MULTIVARIATE: [(&str, f64, f64, f64); 5] = [
        ("IoT Device", 0.848, 93.19, 591.0),
        ("Edge", 0.951, 97.59, 667.30),
        ("Cloud", 0.980, 99.00, 732.30),
        ("Successive", 0.911, 95.79, 626.16),
        ("Our Method", 0.972, 98.60, 674.87),
    ];
}

/// Formats the paper's Table I reference block.
pub fn paper_table1(rows: &[(&str, usize, f64, f64, f64)]) -> String {
    let mut out = String::from("Paper reference (Table I):\n");
    for (m, p, acc, f1, ms) in rows {
        out.push_str(&format!(
            "  {m:<22} params={p:>9}  acc={acc:>6.2}%  f1={f1:.3}  exec={ms:.1} ms\n"
        ));
    }
    out
}

/// Formats the paper's Table II reference block.
pub fn paper_table2(rows: &[(&str, f64, f64, f64)]) -> String {
    let mut out = String::from("Paper reference (Table II):\n");
    for (s, f1, acc, ms) in rows {
        out.push_str(&format!("  {s:<12} f1={f1:.3}  acc={acc:>6.2}%  delay={ms:>7.2} ms\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_profiles_are_small() {
        let uni = univariate_config(Profile::Quick);
        assert!(uni.ad_epochs <= 60);
        let multi = multivariate_config(Profile::Quick);
        assert!(multi.ad_epochs <= 8);
    }

    #[test]
    fn full_profile_matches_paper_dimensions() {
        let uni = univariate_config(Profile::Full);
        assert_eq!(uni.payload_bytes(), 96 * 4);
        let multi = multivariate_config(Profile::Full);
        assert_eq!(multi.payload_bytes(), 128 * 18 * 4);
    }

    #[test]
    fn reference_blocks_render() {
        assert!(paper_table1(&paper::TABLE1_UNIVARIATE).contains("AE-IoT"));
        assert!(paper_table2(&paper::TABLE2_MULTIVARIATE).contains("Our Method"));
    }
}
