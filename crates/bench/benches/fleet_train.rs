//! Criterion bench: the fleet-in-the-loop training subsystem — one
//! in-fleet REINFORCE epoch, and the two closed-loop evaluation routers
//! (statically-trained policy via the precomputed action table vs the
//! fleet-trained load-aware policy routed per window on live queue
//! state). The table router amortises one batched forward pass over the
//! corpus; the load-aware router pays a per-window forward — this bench
//! keeps that overhead honest.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use hec_anomaly::ConfidenceRule;
use hec_bandit::{ContextScaler, PolicyNetwork, RewardModel, TrainConfig};
use hec_core::stream::{scenario_load_normalizer, stream_through_fleet};
use hec_core::{train_policy_in_fleet, Oracle, SchemeKind, WindowOutcome};
use hec_sim::fleet::{FleetScale, FleetScenario};

/// Synthetic frozen oracle: layer 0 right on even windows, upper layers
/// always right (no model training in a bench).
fn synthetic_oracle(n: usize) -> Oracle {
    let outcomes = (0..n)
        .map(|i| {
            let truth = i % 3 == 0;
            let easy = i % 2 == 0;
            let verdict0 = if easy { truth } else { !truth };
            let frac = |v: bool| if v { 0.4f32 } else { 0.0 };
            WindowOutcome {
                truth,
                min_log_pd: [
                    -5.0,
                    if truth { -60.0 } else { -1.0 },
                    if truth { -60.0 } else { -1.0 },
                ],
                anomalous_fraction: [frac(verdict0), frac(truth), frac(truth)],
                context: vec![easy as u8 as f32, (i % 5) as f32 / 4.0],
            }
        })
        .collect();
    Oracle {
        outcomes,
        thresholds: [-10.0; 3],
        flag_fraction: 0.0,
        confidence: ConfidenceRule::default(),
    }
}

fn bench_fleet_train(c: &mut Criterion) {
    let oracle = synthetic_oracle(256);
    let scaler = ContextScaler::fit(&oracle.contexts());
    let reward = RewardModel::new(0.0005);
    let sc = FleetScenario::edge_saturated(FleetScale::Quick);

    let mut group = c.benchmark_group("fleet_train");
    group.bench_function(
        &format!("one_epoch_edge_saturated_{}_windows", sc.total_windows()),
        |b| {
            b.iter(|| {
                black_box(train_policy_in_fleet(
                    black_box(&sc),
                    &oracle,
                    &scaler,
                    &reward,
                    32,
                    TrainConfig { epochs: 1, ..Default::default() },
                    None,
                ))
            })
        },
    );
    group.finish();
}

fn bench_eval_routers(c: &mut Criterion) {
    let oracle = synthetic_oracle(256);
    let scaler = ContextScaler::fit(&oracle.contexts());
    let reward = RewardModel::new(0.0005);
    let sc = FleetScenario::edge_saturated(FleetScale::Quick);
    let norm = scenario_load_normalizer(&sc);
    let windows = sc.total_windows();

    let mut static_policy = PolicyNetwork::new(scaler.dim(), 32, 3, 0);
    let mut fleet_policy = PolicyNetwork::new(scaler.dim() + norm.dims(), 32, 3, 0);

    let mut group = c.benchmark_group("fleet_eval");
    group.bench_function(&format!("static_table_router_{windows}_windows"), |b| {
        b.iter(|| {
            black_box(stream_through_fleet(
                &sc,
                &oracle,
                SchemeKind::Adaptive,
                Some(&mut static_policy),
                Some(&scaler),
                &reward,
                None,
            ))
        })
    });
    group.bench_function(&format!("load_aware_router_{windows}_windows"), |b| {
        b.iter(|| {
            black_box(stream_through_fleet(
                &sc,
                &oracle,
                SchemeKind::Adaptive,
                Some(&mut fleet_policy),
                Some(&scaler),
                &reward,
                None,
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fleet_train, bench_eval_routers);
criterion_main!(benches);
