//! Offline subset of the `proptest` API.
//!
//! Implements the slice of proptest this workspace's property suite uses:
//! the [`proptest!`] macro (with `#![proptest_config(..)]`), range and
//! tuple strategies, `any::<T>()`, [`collection::vec`], `prop_map`, and
//! the `prop_assert*` macros. Cases are generated from a seeded
//! [`rand::rngs::StdRng`], so runs are fully deterministic — there is no
//! shrinking and no persisted failure file. On failure, the case index
//! and per-case seed are printed to stderr before the panic propagates,
//! so a failing input can be regenerated exactly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;

/// Runtime configuration for a [`proptest!`] block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
    /// Base RNG seed; case `i` uses `seed + i`.
    pub seed: u64,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64, seed: 0x4845_435f_4144 } // "HEC_AD"
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases, ..Self::default() }
    }
}

/// A generator of test values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! numeric_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                use rand::Rng;
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                use rand::Rng;
                rng.gen_range(self.clone())
            }
        }
    )*};
}
numeric_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                use rand::Rng;
                rng.gen_range(self.clone())
            }
        }
    )*};
}
float_range_strategy!(f32, f64);

/// Strategy returned by [`Just`]-style constant needs and by `any::<T>()`.
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: core::marker::PhantomData<T>,
}

/// Generates an arbitrary value of `T` (uniform over the type's values).
pub fn any<T>() -> Any<T> {
    Any { _marker: core::marker::PhantomData }
}

macro_rules! any_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                use rand::Rng;
                rng.gen::<$t>()
            }
        }
    )*};
}
any_strategy!(bool, u32, u64, usize, f32, f64);

/// A constant strategy, always yielding clones of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident => $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )+};
}
tuple_strategy!(
    (A => 0, B => 1),
    (A => 0, B => 1, C => 2),
    (A => 0, B => 1, C => 2, D => 3),
);

/// Collection strategies.
pub mod collection {
    use super::{StdRng, Strategy};

    /// Allowed lengths for [`vec`]: a fixed size or a range of sizes.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi_exclusive: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self { lo: r.start, hi_exclusive: r.end }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            Self { lo: *r.start(), hi_exclusive: *r.end() + 1 }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// Strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            use rand::Rng;
            let len = rng.gen_range(self.size.lo..self.size.hi_exclusive);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything a property test module needs.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{any, Any, Just, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a condition inside a property, reporting the failing case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_eq!($left, $right, $($fmt)*);
    };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        assert_ne!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_ne!($left, $right, $($fmt)*);
    };
}

/// Declares deterministic property tests.
///
/// Supports the common proptest form: an optional
/// `#![proptest_config(expr)]` header followed by `#[test] fn` items whose
/// arguments are drawn from strategies with `name in strategy`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $(
            $(#[$meta:meta])+
            fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut proptest_rng = <$crate::StdRngForMacros as $crate::SeedableRngForMacros>::seed_from_u64(
                        config.seed.wrapping_add(case as u64),
                    );
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut proptest_rng);)*
                    // One closure per case isolates `return`/`?` in bodies.
                    let run = || -> () { $body };
                    // There is no shrinking, so on failure report which
                    // deterministic case broke before the panic propagates:
                    // re-running with this case's seed regenerates the input.
                    let outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(run));
                    if let Err(panic) = outcome {
                        eprintln!(
                            "proptest: case {}/{} of `{}` failed (case seed {:#x})",
                            case + 1,
                            config.cases,
                            stringify!($name),
                            config.seed.wrapping_add(case as u64),
                        );
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Re-export used by the [`proptest!`] expansion; not public API.
#[doc(hidden)]
pub type StdRngForMacros = StdRng;

#[doc(hidden)]
pub use rand::SeedableRng as SeedableRngForMacros;

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn evens(max: usize) -> impl Strategy<Value = usize> {
        (0..max / 2).prop_map(|x| x * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in -5.0f32..5.0, n in 1usize..10) {
            prop_assert!((-5.0..5.0).contains(&x));
            prop_assert!((1..10).contains(&n));
        }

        #[test]
        fn vec_lengths_respect_size_range(v in collection::vec(0u8..255, 3..7)) {
            prop_assert!((3..7).contains(&v.len()));
        }

        #[test]
        fn mapped_strategies_apply(e in evens(100), flag in any::<bool>()) {
            prop_assert_eq!(e % 2, 0);
            prop_assert!(u8::from(flag) <= 1);
        }

        #[test]
        fn tuples_sample_elementwise(pair in (0usize..4, 10usize..14)) {
            prop_assert!(pair.0 < 4 && (10..14).contains(&pair.1));
        }
    }

    proptest! {
        #[test]
        fn default_config_also_works(x in 0u32..10) {
            prop_assert!(x < 10);
        }

        #[test]
        #[should_panic]
        fn failing_cases_propagate_panics(x in 0u32..4) {
            prop_assert!(x > 100);
        }
    }
}
