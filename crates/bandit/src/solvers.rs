//! Comparator bandit solvers for the ablation benches.
//!
//! The paper solves the contextual bandit with a policy-gradient network;
//! these are the standard alternatives we ablate against: context-free
//! **ε-greedy** and the linear-contextual **LinUCB** (Li et al., 2010).

use rand::Rng;

use hec_tensor::{vecops, Matrix};

/// A contextual (or context-free) bandit solver.
pub trait BanditSolver {
    /// Algorithm name for reports.
    fn name(&self) -> &str;

    /// Chooses an arm for the given context.
    fn select(&mut self, context: &[f32], rng: &mut dyn rand::RngCore) -> usize;

    /// Observes the reward of a pulled arm.
    fn update(&mut self, context: &[f32], arm: usize, reward: f32);
}

/// Context-free ε-greedy over sample-average arm values.
#[derive(Debug, Clone)]
pub struct EpsilonGreedy {
    epsilon: f32,
    counts: Vec<u64>,
    values: Vec<f32>,
}

impl EpsilonGreedy {
    /// Creates an ε-greedy solver with `arms` arms.
    ///
    /// # Panics
    ///
    /// Panics if `arms < 2` or `epsilon ∉ [0, 1]`.
    pub fn new(arms: usize, epsilon: f32) -> Self {
        assert!(arms >= 2, "need at least two arms");
        assert!((0.0..=1.0).contains(&epsilon), "epsilon must be in [0, 1]");
        Self { epsilon, counts: vec![0; arms], values: vec![0.0; arms] }
    }

    /// Current sample-average value estimates.
    pub fn values(&self) -> &[f32] {
        &self.values
    }
}

impl BanditSolver for EpsilonGreedy {
    fn name(&self) -> &str {
        "epsilon-greedy"
    }

    fn select(&mut self, _context: &[f32], rng: &mut dyn rand::RngCore) -> usize {
        if rng.gen::<f32>() < self.epsilon {
            rng.gen_range(0..self.values.len())
        } else {
            vecops::argmax(&self.values)
        }
    }

    fn update(&mut self, _context: &[f32], arm: usize, reward: f32) {
        assert!(arm < self.values.len(), "arm out of range");
        self.counts[arm] += 1;
        let n = self.counts[arm] as f32;
        self.values[arm] += (reward - self.values[arm]) / n;
    }
}

/// LinUCB (disjoint model): per-arm ridge regression with an upper
/// confidence bonus `α √(xᵀ A⁻¹ x)`. `A⁻¹` is maintained incrementally with
/// the Sherman–Morrison identity, so updates are O(d²).
pub struct LinUcb {
    alpha: f32,
    dim: usize,
    a_inv: Vec<Matrix>,
    b: Vec<Vec<f32>>,
}

impl LinUcb {
    /// Creates LinUCB with exploration width `alpha` over `dim`-dimensional
    /// contexts and `arms` arms.
    ///
    /// # Panics
    ///
    /// Panics if `arms < 2`, `dim == 0`, or `alpha < 0`.
    pub fn new(arms: usize, dim: usize, alpha: f32) -> Self {
        assert!(arms >= 2, "need at least two arms");
        assert!(dim > 0, "context dimension must be non-zero");
        assert!(alpha >= 0.0, "alpha must be non-negative");
        Self {
            alpha,
            dim,
            a_inv: (0..arms).map(|_| Matrix::eye(dim)).collect(),
            b: vec![vec![0.0; dim]; arms],
        }
    }

    fn theta(&self, arm: usize) -> Vec<f32> {
        // θ = A⁻¹ b
        let ainv = &self.a_inv[arm];
        (0..self.dim).map(|i| vecops::dot(ainv.row(i), &self.b[arm])).collect()
    }

    /// UCB score of an arm for a context.
    fn score(&self, arm: usize, x: &[f32]) -> f32 {
        let theta = self.theta(arm);
        let mean = vecops::dot(&theta, x);
        let ainv = &self.a_inv[arm];
        let ax: Vec<f32> = (0..self.dim).map(|i| vecops::dot(ainv.row(i), x)).collect();
        let var = vecops::dot(x, &ax).max(0.0);
        mean + self.alpha * var.sqrt()
    }
}

impl BanditSolver for LinUcb {
    fn name(&self) -> &str {
        "linucb"
    }

    fn select(&mut self, context: &[f32], _rng: &mut dyn rand::RngCore) -> usize {
        assert_eq!(context.len(), self.dim, "context dimension mismatch");
        let scores: Vec<f32> = (0..self.a_inv.len()).map(|arm| self.score(arm, context)).collect();
        vecops::argmax(&scores)
    }

    fn update(&mut self, context: &[f32], arm: usize, reward: f32) {
        assert_eq!(context.len(), self.dim, "context dimension mismatch");
        assert!(arm < self.a_inv.len(), "arm out of range");
        // Sherman–Morrison: (A + xxᵀ)⁻¹ = A⁻¹ − (A⁻¹x xᵀA⁻¹)/(1 + xᵀA⁻¹x).
        let ainv = &self.a_inv[arm];
        let ax: Vec<f32> = (0..self.dim).map(|i| vecops::dot(ainv.row(i), context)).collect();
        let denom = 1.0 + vecops::dot(context, &ax);
        let mut new_ainv = ainv.clone();
        for i in 0..self.dim {
            for j in 0..self.dim {
                let delta = ax[i] * ax[j] / denom;
                new_ainv[(i, j)] -= delta;
            }
        }
        self.a_inv[arm] = new_ainv;
        for (bi, &xi) in self.b[arm].iter_mut().zip(context.iter()) {
            *bi += reward * xi;
        }
    }
}

impl std::fmt::Debug for LinUcb {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "LinUcb(arms={}, dim={}, alpha={})", self.a_inv.len(), self.dim, self.alpha)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn epsilon_greedy_finds_best_arm() {
        let mut solver = EpsilonGreedy::new(3, 0.1);
        let mut rng = StdRng::seed_from_u64(3);
        let true_means = [0.2f32, 0.8, 0.5];
        for _ in 0..2000 {
            let arm = solver.select(&[], &mut rng);
            let noise: f32 = rng.gen_range(-0.1..0.1);
            solver.update(&[], arm, true_means[arm] + noise);
        }
        assert_eq!(vecops::argmax(solver.values()), 1);
    }

    #[test]
    fn epsilon_zero_is_pure_greedy() {
        let mut solver = EpsilonGreedy::new(2, 0.0);
        let mut rng = StdRng::seed_from_u64(0);
        solver.update(&[], 0, 1.0);
        solver.update(&[], 1, 0.0);
        for _ in 0..50 {
            assert_eq!(solver.select(&[], &mut rng), 0);
        }
    }

    #[test]
    fn linucb_learns_context_dependent_arms() {
        // Arm 0 pays in context [1,0]; arm 1 pays in context [0,1].
        let mut solver = LinUcb::new(2, 2, 0.5);
        let mut rng = StdRng::seed_from_u64(7);
        for i in 0..600 {
            let ctx = if i % 2 == 0 { [1.0f32, 0.0] } else { [0.0, 1.0] };
            let arm = solver.select(&ctx, &mut rng);
            let reward = match (i % 2 == 0, arm) {
                (true, 0) | (false, 1) => 1.0,
                _ => 0.0,
            };
            solver.update(&ctx, arm, reward);
        }
        // Exploration bonus has decayed; choices should be context-correct.
        assert_eq!(solver.select(&[1.0, 0.0], &mut rng), 0);
        assert_eq!(solver.select(&[0.0, 1.0], &mut rng), 1);
    }

    #[test]
    fn linucb_sherman_morrison_matches_direct_inverse() {
        // After a handful of rank-1 updates, A⁻¹·A ≈ I.
        let mut solver = LinUcb::new(2, 3, 1.0);
        let contexts = [[1.0f32, 0.5, -0.2], [0.3, -1.0, 0.8], [-0.6, 0.1, 0.4], [0.9, 0.9, 0.9]];
        let mut a = Matrix::eye(3);
        for ctx in contexts {
            solver.update(&ctx, 0, 1.0);
            let x = Matrix::col_vector(&ctx);
            let xxt = x.matmul(&x.transpose());
            a += &xxt;
        }
        let product = solver.a_inv[0].matmul(&a);
        for i in 0..3 {
            for j in 0..3 {
                let expected = if i == j { 1.0 } else { 0.0 };
                assert!(
                    (product[(i, j)] - expected).abs() < 1e-3,
                    "A⁻¹A[{i}][{j}] = {}",
                    product[(i, j)]
                );
            }
        }
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(EpsilonGreedy::new(2, 0.1).name(), "epsilon-greedy");
        assert_eq!(LinUcb::new(2, 2, 1.0).name(), "linucb");
    }

    #[test]
    #[should_panic(expected = "epsilon must be in")]
    fn bad_epsilon_rejected() {
        let _ = EpsilonGreedy::new(2, 1.5);
    }
}
