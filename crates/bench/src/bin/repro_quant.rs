//! Int8 quantisation sweep for the layer-0 detector — the F1-cost table
//! behind the "quantised inference path" entry in EXPERIMENTS.md.
//!
//! Trains the univariate AE-IoT detector **once** in f32 on the standard
//! split, then re-quantises the same trained weights through every
//! [`QuantMode`] — weight-only vs full int8, per-tensor vs per-row
//! parameters — recalibrating the scorer each time (quantised
//! reconstruction shifts the error distribution, so the threshold must
//! re-fit). Each scheme is evaluated on the AD test split so the table
//! isolates the accuracy cost of quantisation from training noise.
//!
//! Everything on stdout is deterministic — same profile ⇒ byte-identical
//! output across reruns and `HEC_THREADS` settings (the integer kernels
//! accumulate in a fixed order), which the CI smoke job enforces by
//! diffing two runs. Per-window latency is *measured wall-clock* and
//! goes to **stderr** only, alongside the suggested
//! `repro_fleet_train --layer0-exec-ms` value (the paper's 12.4 ms
//! layer-0 execution time scaled by the measured int8/f32 ratio).
//!
//! ```text
//! cargo run --release -p hec-bench --bin repro_quant -- [out_dir] [--telemetry <dir>]
//! ```
//!
//! With `out_dir`, the table is also written to `quant_schemes.csv`.

use std::fmt::Write as _;
use std::time::Instant;

use hec_anomaly::{AeArchitecture, AnomalyDetector, AutoencoderDetector, QuantMode, QuantScheme};
use hec_bench::{univariate_config, Profile};
use hec_core::{DatasetConfig, Experiment};
use hec_data::{BinaryConfusion, LabeledWindow};

/// Counting global allocator, so `AllocPhase` deltas recorded by the
/// instrumented library layers are real in this binary.
#[cfg(feature = "telemetry")]
#[global_allocator]
static GLOBAL_ALLOC: hec_telemetry::CountingAlloc = hec_telemetry::CountingAlloc;

/// Accuracy/F1 of a fitted detector over the test split.
fn evaluate(det: &mut AutoencoderDetector, test: &[LabeledWindow]) -> BinaryConfusion {
    let mut confusion = BinaryConfusion::new();
    for (d, w) in det.detect_batch(test).into_iter().zip(test.iter()) {
        confusion.record(d.anomalous, w.anomalous);
    }
    confusion
}

/// Mean wall-clock per-window detection latency, microseconds, measured
/// over `passes` per-window sweeps of the test split after one warm-up
/// pass (so buffer growth is excluded — the steady state the fleet's
/// delay economy models). Wall-clock ⇒ stderr only.
fn per_window_us(det: &mut AutoencoderDetector, test: &[LabeledWindow], passes: usize) -> f64 {
    for w in test {
        let _ = det.detect(w);
    }
    let t0 = Instant::now();
    for _ in 0..passes {
        for w in test {
            let _ = det.detect(w);
        }
    }
    t0.elapsed().as_secs_f64() * 1e6 / (passes * test.len()) as f64
}

fn usage_exit(detail: &str) -> ! {
    eprintln!("usage: repro_quant [out_dir] [--telemetry <dir>]  ({detail})");
    std::process::exit(2);
}

fn main() {
    let mut out_dir: Option<String> = None;
    let mut telemetry_dir: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--telemetry" {
            telemetry_dir =
                Some(args.next().unwrap_or_else(|| usage_exit("--telemetry needs a directory")));
        } else if arg.starts_with('-') || out_dir.is_some() {
            usage_exit(&format!("unexpected argument {arg:?}"));
        } else {
            out_dir = Some(arg);
        }
    }
    hec_bench::telemetry::init("repro_quant", telemetry_dir.as_deref());
    let mut bench_metrics: Vec<(String, f64)> = Vec::new();
    let profile = Profile::from_env();
    println!("== repro_quant (profile: {profile:?}) ==\n");

    let config = univariate_config(profile);
    let DatasetConfig::Univariate(power) = &config.dataset else {
        unreachable!("univariate_config is univariate");
    };
    let input_dim = power.samples_per_day;
    let seed = config.seed;
    let ad_epochs = config.ad_epochs;
    let exp = Experiment::prepare(config);
    let train = exp.split.ad_train.clone();
    let test = exp.split.ad_test.clone();
    println!(
        "pipeline: AE-IoT [{}], {} training windows, {} test windows, {} epochs\n",
        AeArchitecture::iot(input_dim)
            .layer_sizes
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .join("-"),
        train.len(),
        test.len(),
        ad_epochs
    );

    // One f32 training run; every scheme below re-quantises these weights.
    let mut det = AutoencoderDetector::new("AE-IoT", AeArchitecture::iot(input_dim), seed);
    let t0 = Instant::now();
    let report = det.fit(&train, ad_epochs).expect("AE-IoT fit");
    let fit_wall = t0.elapsed().as_secs_f64();
    eprintln!("[timing] f32 training: {fit_wall:.2} s");
    bench_metrics.push(("train_epoch_ms".into(), fit_wall * 1e3 / ad_epochs as f64));

    // Sub-microsecond per-window latency needs a long measurement window:
    // 200 full-profile passes over the test split is ~20 ms per scheme.
    let passes = match profile {
        Profile::Quick => 20,
        Profile::Full => 200,
    };
    let f32_confusion = evaluate(&mut det, &test);
    let f32_detections = det.detect_batch(&test);
    let f32_threshold = report.threshold;
    let f32_us = per_window_us(&mut det, &test, passes);
    eprintln!("[latency] {:<15}: {f32_us:9.1} us/window", "f32");
    bench_metrics.push(("f32.detect_us_per_window".into(), f32_us));

    let modes = [
        QuantMode::weight_only(QuantScheme::PerTensor),
        QuantMode::weight_only(QuantScheme::PerRow),
        QuantMode::int8(QuantScheme::PerTensor),
        QuantMode::int8(QuantScheme::PerRow),
    ];
    println!("scheme          params      accuracy   f1       delta_f1");
    println!(
        "{:<15} {:>9}  {:>7.4}  {:.4}   {:+.4}",
        "f32",
        det.param_count(),
        f32_confusion.accuracy(),
        f32_confusion.f1(),
        0.0
    );
    let mut csv = String::from("scheme,params,accuracy,f1,delta_f1\n");
    let _ = writeln!(
        csv,
        "f32,{},{:.6},{:.6},{:.6}",
        det.param_count(),
        f32_confusion.accuracy(),
        f32_confusion.f1(),
        0.0
    );

    let mut int8_per_row_us = f32_us;
    for mode in modes {
        det.requantize(Some(mode), &train).expect("requantize");
        let confusion = evaluate(&mut det, &test);
        let us = per_window_us(&mut det, &test, passes);
        eprintln!("[latency] {:<15}: {us:9.1} us/window", mode.label());
        bench_metrics.push((format!("{}.detect_us_per_window", mode.label()), us));
        if mode == QuantMode::int8(QuantScheme::PerRow) {
            int8_per_row_us = us;
        }
        let delta = confusion.f1() - f32_confusion.f1();
        println!(
            "{:<15} {:>9}  {:>7.4}  {:.4}   {:+.4}",
            mode.label(),
            det.param_count(),
            confusion.accuracy(),
            confusion.f1(),
            delta
        );
        let _ = writeln!(
            csv,
            "{},{},{:.6},{:.6},{:.6}",
            mode.label(),
            det.param_count(),
            confusion.accuracy(),
            confusion.f1(),
            delta
        );
    }

    // The f32 weights were never touched: restoring the f32 path must
    // reproduce the original threshold and detections bit-for-bit.
    let restored_threshold = det.requantize(None, &train).expect("restore f32");
    let restored = det.detect_batch(&test);
    assert_eq!(restored_threshold, f32_threshold, "f32 restore changed the threshold");
    assert_eq!(restored, f32_detections, "f32 restore changed detections");
    println!("\nf32 restore check: ok (threshold and detections bit-identical)");

    // Feed the measurement back into the delay economy: scale the paper's
    // measured 12.4 ms layer-0 execution time by the int8/f32 ratio this
    // implementation observes. Wall-clock ⇒ stderr.
    let paper_layer0_ms = 12.4;
    let ratio = int8_per_row_us / f32_us;
    eprintln!(
        "[latency] int8-per-row / f32 ratio: {ratio:.3}  ->  suggested \
         repro_fleet_train --layer0-exec-ms {:.2}  (paper 12.4 ms x ratio)",
        paper_layer0_ms * ratio
    );

    if let Some(dir) = &out_dir {
        std::fs::create_dir_all(dir).expect("create output directory");
        let path = format!("{dir}/quant_schemes.csv");
        std::fs::write(&path, csv).expect("write scheme CSV");
        println!("wrote {path}");
    }

    let metric_refs: Vec<(&str, f64)> =
        bench_metrics.iter().map(|(n, v)| (n.as_str(), *v)).collect();
    hec_bench::telemetry::write_bench_json("repro_quant", &metric_refs);
    hec_bench::telemetry::dump("repro_quant", telemetry_dir.as_deref());
}
