//! Criterion bench: scheme-evaluation throughput over a frozen oracle —
//! how fast Table II rows regenerate once the models are trained, and the
//! relative cost of the Successive escalation logic vs fixed placement.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use hec_anomaly::ConfidenceRule;
use hec_bandit::{ContextScaler, PolicyNetwork, RewardModel};
use hec_core::{Oracle, SchemeEvaluator, SchemeKind, WindowOutcome};
use hec_sim::{DatasetKind, HecTopology};

fn synthetic_oracle(n: usize) -> Oracle {
    let outcomes = (0..n)
        .map(|i| {
            let truth = i % 5 == 0;
            let easy = i % 2 == 0;
            let lp = if truth { -40.0 } else { -2.0 };
            let frac = if truth { 0.2 } else { 0.0 };
            WindowOutcome {
                truth,
                min_log_pd: [if easy { lp } else { -8.0 }, lp, lp],
                anomalous_fraction: [if easy { frac } else { 0.0 }, frac, frac],
                context: vec![easy as u8 as f32, (i % 7) as f32, 0.5, 1.0],
            }
        })
        .collect();
    Oracle {
        outcomes,
        thresholds: [-10.0; 3],
        flag_fraction: 0.0,
        confidence: ConfidenceRule::default(),
    }
}

fn bench_schemes(c: &mut Criterion) {
    let topo = HecTopology::paper_testbed(DatasetKind::Univariate);
    let oracle = synthetic_oracle(1000);
    let ev = SchemeEvaluator::new(&topo, 384, RewardModel::new(0.0005));

    let mut group = c.benchmark_group("scheme_eval_1000_windows");
    group.bench_function("fixed_cloud", |b| {
        b.iter(|| black_box(ev.evaluate(SchemeKind::Cloud, black_box(&oracle), None, None)))
    });
    group.bench_function("successive", |b| {
        b.iter(|| black_box(ev.evaluate(SchemeKind::Successive, black_box(&oracle), None, None)))
    });

    let scaler = ContextScaler::fit(&oracle.contexts());
    let mut policy = PolicyNetwork::new(4, 100, 3, 0);
    group.bench_function("adaptive", |b| {
        b.iter(|| {
            black_box(ev.evaluate(
                SchemeKind::Adaptive,
                black_box(&oracle),
                Some(&mut policy),
                Some(&scaler),
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_schemes);
criterion_main!(benches);
