//! # hec-data
//!
//! Synthetic IoT datasets, windowing, standardisation, splits and metrics for
//! the HEC-AD reproduction.
//!
//! The paper evaluates on two public datasets that we substitute with
//! faithful synthetic generators (see DESIGN.md §2 for the substitution
//! rationale):
//!
//! * [`power`] — a univariate **power-demand** generator modelled on the
//!   Dutch power-demand dataset (UCR discords): one year of 15-minute
//!   readings with a strong weekly rhythm; anomalies are weekdays whose
//!   demand profile collapses to a weekend/holiday shape.
//! * [`mhealth`] — a multivariate **MHEALTH-like** generator: 18 IMU channels
//!   (2 sensors × accelerometer/gyroscope/magnetometer × 3 axes) at 50 Hz for
//!   12 activities and 10 subjects; the dominant activity (walking) is
//!   normal, everything else anomalous; windows of 128 steps, stride 64.
//!
//! With the `real-data` feature enabled, the [`ingest`] module adds
//! file-backed **real-trace** loading: hand-rolled streaming CSV and
//! NDJSON readers with schema adapters for the UCI-power-demand and
//! MHEALTH layouts, an explicit missing-value policy, and line-numbered
//! error reporting. The [`source`] module's [`DatasetSource`] trait
//! unifies the synthetic generators with those loaders.
//!
//! Supporting modules:
//!
//! * [`amplify`] — deterministic trace amplification: a checked-in
//!   fixture corpus times a repetition factor (rep 0 verbatim, later
//!   reps splitmix64-perturbed per window/channel) becomes an
//!   engine-scale stream for the sharded fleet to ingest, plus
//!   deterministic regime-change schedules ([`DriftSchedule`]) for the
//!   online-adaptation experiments,
//! * [`online`] — streaming Welford/parallel-merge standardisation
//!   moments ([`OnlineStandardizer`]) whose `freeze()` matches the
//!   batch fit,
//! * [`window`] — labelled windows and sliding-window extraction,
//! * [`standardize`] — zero-mean/unit-variance per-channel scaling ("the data
//!   is standardized to zero mean and unit variance", §III-A),
//! * [`split`] — the paper's train/test/policy-train protocol,
//! * [`source`] — the [`DatasetSource`] corpus abstraction,
//! * [`metrics`] — confusion-matrix accuracy/precision/recall/F1.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod amplify;
#[cfg(feature = "real-data")]
pub mod ingest;
pub mod metrics;
pub mod mhealth;
pub mod online;
pub mod power;
pub mod source;
pub mod split;
pub mod standardize;
pub mod window;

pub use amplify::{
    amplify_corpus, AmplifiedSource, DriftKind, DriftSchedule, PerturbConfig, PerturbConfigError,
};
pub use metrics::BinaryConfusion;
pub use mhealth::{Activity, MhealthConfig, MhealthGenerator};
pub use online::OnlineStandardizer;
pub use power::{PowerConfig, PowerGenerator};
pub use source::{DatasetSource, IngestError, LabeledCorpus};
pub use split::{paper_split, PaperSplit};
pub use standardize::{NonFiniteError, Standardizer};
pub use window::LabeledWindow;
