//! Allocation accounting for the quantised detector hot path:
//!
//! * a warmed `AutoencoderDetector::detect` on the int8 path performs
//!   **zero** heap allocations per window (counting global allocator) —
//!   the input copies into a reused row vector, the integer kernels run in
//!   thread-local scratch, and scoring walks a reused scalar error buffer;
//! * batched detection makes **zero allocating matmul calls** — every
//!   product routes through the `_into` kernels
//!   (`hec_tensor::kernel::matmul_allocations` counts the allocating
//!   wrapper calls).
//!
//! Everything lives in one `#[test]` so no concurrent test can disturb the
//! global counters.

use hec_anomaly::{AeArchitecture, AnomalyDetector, AutoencoderDetector};
use hec_data::LabeledWindow;
use hec_nn::{QuantMode, QuantScheme};
use hec_telemetry::{allocations, CountingAlloc};
use hec_tensor::Matrix;

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn ramp_window(jitter: f32, n: usize) -> LabeledWindow {
    let v: Vec<f32> = (0..n).map(|t| (t as f32 / n as f32) + jitter).collect();
    LabeledWindow::new(Matrix::from_vec(n, 1, v), false)
}

#[test]
fn quantised_detection_is_allocation_free_once_warm() {
    let train: Vec<LabeledWindow> =
        (0..40).map(|i| ramp_window(0.002 * (i % 7) as f32, 16)).collect();
    let mut det = AutoencoderDetector::new("ae-q", AeArchitecture::iot(16), 1);
    det.set_quant_mode(Some(QuantMode::int8(QuantScheme::PerRow)));
    det.fit(&train, 30).unwrap();

    // --- Per-window detection: zero total allocations once warm. ---
    let window = ramp_window(0.001, 16);
    let _ = det.detect(&window); // warmup: buffers and kernel scratch grow
    let mut last_delta = usize::MAX;
    for _attempt in 0..5 {
        let before = allocations();
        for _ in 0..32 {
            let _ = det.detect(&window);
        }
        last_delta = allocations() - before;
        if last_delta == 0 {
            break;
        }
    }
    assert_eq!(
        last_delta, 0,
        "warmed quantised detect performed {last_delta} heap allocations per window batch"
    );

    // --- Batched detection: zero allocating matmul wrapper calls (the
    // batch matrix and results vector are the only fresh memory). ---
    let windows: Vec<LabeledWindow> = (0..8).map(|i| ramp_window(0.001 * i as f32, 16)).collect();
    let _ = det.detect_batch(&windows); // warmup
    let wrapper_before = hec_tensor::kernel::matmul_allocations();
    let _ = det.detect_batch(&windows);
    assert_eq!(
        hec_tensor::kernel::matmul_allocations(),
        wrapper_before,
        "quantised detect_batch performed allocating matmul calls"
    );
}
