//! Autoencoder detectors for univariate data (AE-IoT / AE-Edge / AE-Cloud).
//!
//! §II-A1: *"we build three AE-based models called AE-IoT, AE-Edge, and
//! AE-Cloud … These models have three, five, seven layers and thus have
//! different capabilities of learning features for data representation."*
//! Layer counts follow the paper's convention of counting neuron layers
//! (input + hidden(s) + output).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use hec_data::LabeledWindow;
use hec_nn::{Activation, Dense, Layer, Mse, QuantMode, QuantizedDense, RmsProp, Sequential};
use hec_tensor::Matrix;

use crate::detector::{validate_training_set, AnomalyDetector, Detection, FitError, FitReport};
use crate::scorer::{ConfidenceRule, LogPdScorer, ThresholdRule};

/// Neuron-layer sizes of an autoencoder, including input and output
/// (`[96, 64, 96]` is the paper's "three layers").
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AeArchitecture {
    /// Sizes of every neuron layer, first and last must be equal.
    pub layer_sizes: Vec<usize>,
}

impl AeArchitecture {
    /// The 3-layer AE-IoT architecture for the given input width: a very
    /// narrow single bottleneck (~input/32). The bottleneck cannot track the
    /// data's latent factors, so its reconstruction envelope on normal data
    /// is wide and subtle deviations stay inside it — this is what limits
    /// the IoT model to "easy" anomalies.
    pub fn iot(input: usize) -> Self {
        Self { layer_sizes: vec![input, (input / 32).max(2), input] }
    }

    /// The 5-layer AE-Edge architecture: a deeper funnel down to ~input/12,
    /// enough capacity for most of the latent factors.
    pub fn edge(input: usize) -> Self {
        Self {
            layer_sizes: vec![
                input,
                (input / 3).max(4),
                (input / 12).max(3),
                (input / 3).max(4),
                input,
            ],
        }
    }

    /// The 7-layer AE-Cloud architecture: the widest and deepest
    /// (bottleneck ~input/8), with the tightest normal-data envelope and
    /// hence the best sensitivity.
    pub fn cloud(input: usize) -> Self {
        Self {
            layer_sizes: vec![
                input,
                input / 2,
                input / 4,
                (input / 8).max(4),
                input / 4,
                input / 2,
                input,
            ],
        }
    }

    /// Number of neuron layers (the paper's "three/five/seven").
    pub fn depth(&self) -> usize {
        self.layer_sizes.len()
    }

    /// Validates the architecture.
    ///
    /// # Panics
    ///
    /// Panics if fewer than 3 layers, any layer is zero-width, or the input
    /// and output widths differ.
    fn validate(&self) {
        assert!(self.depth() >= 3, "autoencoder needs at least 3 neuron layers");
        assert!(self.layer_sizes.iter().all(|&s| s > 0), "zero-width layer");
        assert_eq!(
            self.layer_sizes.first(),
            self.layer_sizes.last(),
            "autoencoder input and output widths must match"
        );
    }
}

/// An autoencoder anomaly detector over flattened univariate windows.
///
/// Scoring: per-timestep scalar reconstruction errors, 1-D Gaussian logPD,
/// threshold = min training logPD (§II-A3).
///
/// # Example
///
/// ```rust
/// use hec_anomaly::{AeArchitecture, AnomalyDetector, AutoencoderDetector};
/// use hec_data::LabeledWindow;
/// use hec_tensor::Matrix;
///
/// // Normal windows: a fixed ramp + tiny jitter.
/// let train: Vec<LabeledWindow> = (0..40)
///     .map(|i| {
///         let v: Vec<f32> = (0..16).map(|t| t as f32 / 16.0 + 0.001 * (i % 5) as f32).collect();
///         LabeledWindow::new(Matrix::from_vec(16, 1, v), false)
///     })
///     .collect();
/// let mut det = AutoencoderDetector::new("AE-demo", AeArchitecture::cloud(16), 0);
/// det.fit(&train, 120)?;
/// let spiky: Vec<f32> = (0..16).map(|t| if t % 2 == 0 { 2.0 } else { -2.0 }).collect();
/// let anomaly = LabeledWindow::new(Matrix::from_vec(16, 1, spiky), true);
/// assert!(det.detect(&anomaly).anomalous);
/// # Ok::<(), hec_anomaly::FitError>(())
/// ```
pub struct AutoencoderDetector {
    name: String,
    architecture: AeArchitecture,
    net: Sequential,
    scorer: Option<LogPdScorer>,
    confidence: ConfidenceRule,
    threshold_rule: ThresholdRule,
    /// A window is flagged anomalous when its anomalous-point fraction
    /// exceeds this (default 0: any point below threshold flags the window).
    flag_fraction: f32,
    batch_size: usize,
    learning_rate: f32,
    quantization_bits: Option<u8>,
    /// When set, inference runs through [`QuantNet`] instead of the f32 net.
    quant_mode: Option<QuantMode>,
    qnet: Option<QuantNet>,
    /// Reused `1 × input` row vector and per-point scalar error buffer: the
    /// per-window detection path allocates nothing once these are warm
    /// (the f32 net's own forward excepted — the quantised path is fully
    /// allocation-free).
    x_buf: Matrix,
    err_buf: Vec<f32>,
    rng: StdRng,
}

/// The int8 inference twin of the trained f32 [`Sequential`]: one
/// [`QuantizedDense`] per layer (weights quantised once post-training) plus
/// a pair of ping/pong activation buffers, so a warmed forward pass performs
/// no allocating matmul calls — the same guarantee as the f32 hot path.
struct QuantNet {
    layers: Vec<QuantizedDense>,
    ping: Matrix,
    pong: Matrix,
}

impl QuantNet {
    /// Snapshots the trained parameters of `net` (visited in layer order:
    /// weight, bias per [`Dense`]) and quantises them under `mode`.
    /// Activations follow the autoencoder convention: Tanh on hidden layers,
    /// Linear on the last.
    fn from_sequential(net: &mut Sequential, n_layers: usize, mode: QuantMode) -> Self {
        let mut pairs: Vec<(Matrix, Matrix)> = Vec::new();
        let mut pending: Option<Matrix> = None;
        net.visit_params(&mut |param, _| match pending.take() {
            Some(w) => pairs.push((w, param.clone())),
            None => pending = Some(param.clone()),
        });
        assert_eq!(pairs.len(), n_layers, "autoencoder must be Dense-only");
        let layers = pairs
            .iter()
            .enumerate()
            .map(|(i, (w, b))| {
                let act = if i == n_layers - 1 { Activation::Linear } else { Activation::Tanh };
                QuantizedDense::from_weights(w, b, act, mode)
            })
            .collect();
        QuantNet { layers, ping: Matrix::zeros(1, 1), pong: Matrix::zeros(1, 1) }
    }

    /// Inference forward pass; the returned reconstruction borrows an
    /// internal buffer (reused across calls — allocation-free once warm).
    fn forward(&mut self, x: &Matrix) -> &Matrix {
        self.layers[0].forward_into(x, &mut self.ping);
        for layer in &mut self.layers[1..] {
            layer.forward_into(&self.ping, &mut self.pong);
            std::mem::swap(&mut self.ping, &mut self.pong);
        }
        &self.ping
    }
}

impl AutoencoderDetector {
    /// Builds the detector with Glorot-initialised weights.
    ///
    /// # Panics
    ///
    /// Panics if the architecture is invalid (see [`AeArchitecture`]).
    pub fn new(name: &str, architecture: AeArchitecture, seed: u64) -> Self {
        architecture.validate();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut layers: Vec<Box<dyn Layer>> = Vec::new();
        let sizes = &architecture.layer_sizes;
        for i in 0..sizes.len() - 1 {
            let act = if i == sizes.len() - 2 { Activation::Linear } else { Activation::Tanh };
            layers.push(Box::new(Dense::new(&mut rng, sizes[i], sizes[i + 1], act)));
        }
        Self {
            name: name.to_owned(),
            net: Sequential::new(layers),
            architecture,
            scorer: None,
            confidence: ConfidenceRule::default(),
            threshold_rule: ThresholdRule::default(),
            flag_fraction: 0.0,
            batch_size: 32,
            learning_rate: 1e-3,
            quantization_bits: None,
            quant_mode: None,
            qnet: None,
            x_buf: Matrix::zeros(1, 1),
            err_buf: Vec::new(),
            rng,
        }
    }

    /// Replaces the confidence rule (for the Successive-scheme ablation).
    pub fn set_confidence_rule(&mut self, rule: ConfidenceRule) {
        self.confidence = rule;
    }

    /// Replaces the threshold rule (the paper's `Min`, a quantile, a robust
    /// `MeanMinusKSigma`, or the default fixed-specificity `WindowFpr`).
    /// Takes effect at the next `fit`.
    pub fn set_threshold_rule(&mut self, rule: ThresholdRule) {
        self.threshold_rule = rule;
    }

    /// Enables post-training weight quantization to `bits` bits (deployment
    /// compression, paper §III-B). Applied during `fit`, before calibration.
    pub fn set_quantization_bits(&mut self, bits: Option<u8>) {
        self.quantization_bits = bits;
    }

    /// Selects the int8 inference path: when `Some`, `fit` snapshots the
    /// trained weights into a quantised network (weights quantised once,
    /// activations per batch when the mode asks for it) and all detection
    /// runs through the integer kernels. Takes effect at the next [`fit`]
    /// or [`Self::requantize`].
    ///
    /// [`fit`]: AnomalyDetector::fit
    pub fn set_quant_mode(&mut self, mode: Option<QuantMode>) {
        self.quant_mode = mode;
    }

    /// Re-quantises a *trained* detector under a different mode (or back to
    /// the f32 path with `None`) and recalibrates the scorer on
    /// `calibration` — quantised reconstruction shifts the error
    /// distribution, so the detection threshold must be re-fit. The f32
    /// weights are untouched; one training run can sweep every scheme.
    /// `calibration` must be all-normal windows (typically the training
    /// set). Returns the recalibrated threshold.
    ///
    /// # Errors
    ///
    /// Fails if `calibration` is empty or scorer fitting fails.
    pub fn requantize(
        &mut self,
        mode: Option<QuantMode>,
        calibration: &[LabeledWindow],
    ) -> Result<f32, FitError> {
        self.quant_mode = mode;
        self.rebuild_quantized_net();
        self.calibrate(calibration)
    }

    fn rebuild_quantized_net(&mut self) {
        let n_layers = self.architecture.layer_sizes.len() - 1;
        self.qnet =
            self.quant_mode.map(|mode| QuantNet::from_sequential(&mut self.net, n_layers, mode));
    }

    /// Sets the window-flagging fraction (see field docs).
    ///
    /// # Panics
    ///
    /// Panics if `fraction ∉ [0, 1)`.
    pub fn set_flag_fraction(&mut self, fraction: f32) {
        assert!((0.0..1.0).contains(&fraction), "flag fraction must be in [0, 1)");
        self.flag_fraction = fraction;
    }

    /// The architecture this detector was built with.
    pub fn architecture(&self) -> &AeArchitecture {
        &self.architecture
    }

    /// The calibrated scorer, if fitted.
    pub fn scorer(&self) -> Option<&LogPdScorer> {
        self.scorer.as_ref()
    }

    fn input_dim(&self) -> usize {
        self.architecture.layer_sizes[0]
    }

    /// Scores the per-point scalar errors in `errors` through the calibrated
    /// scorer.
    fn detection_from_scalar_errors(&self, errors: &[f32]) -> Detection {
        let scorer = self.scorer.as_ref().expect("detect called before fit");
        let (min_log_pd, anomalous_fraction) = scorer.score_window_scalar(errors);
        let anomalous = anomalous_fraction > self.flag_fraction;
        let confident = self.confidence.is_confident(
            min_log_pd,
            anomalous_fraction,
            scorer.threshold(),
            anomalous,
        );
        Detection { anomalous, confident, min_log_pd, anomalous_fraction }
    }

    /// Fills `self.err_buf` with the window's per-point scalar reconstruction
    /// errors. This is the per-window hot path: the input copies into the
    /// reused `self.x_buf` row vector and the errors land in the reused
    /// buffer, so no allocation survives warm-up (on the quantised path; the
    /// f32 `Sequential::predict` still allocates internally).
    fn scalar_errors_into(&mut self, window: &LabeledWindow) {
        let flat = window.data.as_slice();
        assert_eq!(
            flat.len(),
            self.input_dim(),
            "window length {} does not match model input {}",
            flat.len(),
            self.input_dim()
        );
        self.x_buf.resize(1, flat.len());
        self.x_buf.as_mut_slice().copy_from_slice(flat);
        self.err_buf.clear();
        match self.qnet.as_mut() {
            Some(q) => {
                let y = q.forward(&self.x_buf);
                self.err_buf.extend(flat.iter().zip(y.as_slice().iter()).map(|(a, b)| a - b));
            }
            None => {
                let y = self.net.predict(&self.x_buf);
                self.err_buf.extend(flat.iter().zip(y.as_slice().iter()).map(|(a, b)| a - b));
            }
        }
    }

    /// Calibrates the scorer on the current forward path's per-point errors
    /// over `calibration` (all-normal windows).
    fn calibrate(&mut self, calibration: &[LabeledWindow]) -> Result<f32, FitError> {
        let mut per_window: Vec<Vec<f32>> = Vec::with_capacity(calibration.len());
        for w in calibration {
            self.scalar_errors_into(w);
            per_window.push(self.err_buf.clone());
        }
        // The scorer fits on 1-D error vectors; materialise them only here,
        // on the cold calibration path.
        let all_errors: Vec<Vec<f32>> =
            per_window.iter().flat_map(|errs| errs.iter().map(|&e| vec![e])).collect();
        let mut scorer = LogPdScorer::fit_with_rule(&all_errors, 1e-6, self.threshold_rule)
            .map_err(|e| match e {
                crate::scorer::ScorerError::Gaussian(g) => FitError::Scoring(g),
                crate::scorer::ScorerError::EmptyCalibrationSet => {
                    FitError::InvalidTrainingSet { reason: "no calibration errors produced".into() }
                }
            })?;
        if let ThresholdRule::WindowFpr(_) = self.threshold_rule {
            let minima: Vec<f32> = per_window
                .iter()
                .map(|errs| {
                    errs.iter().map(|&e| scorer.log_pd_scalar(e)).fold(f32::INFINITY, f32::min)
                })
                .collect();
            scorer.set_threshold(self.threshold_rule.threshold(&minima));
        }
        let threshold = scorer.threshold();
        self.scorer = Some(scorer);
        Ok(threshold)
    }
}

impl AnomalyDetector for AutoencoderDetector {
    fn name(&self) -> &str {
        &self.name
    }

    fn param_count(&self) -> usize {
        self.net.param_count()
    }

    fn fit(&mut self, train: &[LabeledWindow], epochs: usize) -> Result<FitReport, FitError> {
        let _span = hec_telemetry::WallSpan::new("anomaly.fit");
        validate_training_set(train)?;
        let dim = self.input_dim();
        for (i, w) in train.iter().enumerate() {
            if w.flattened().len() != dim {
                return Err(FitError::InvalidTrainingSet {
                    reason: format!(
                        "window {i} has {} points, model expects {dim}",
                        w.flattened().len()
                    ),
                });
            }
        }

        let mut opt = RmsProp::new(self.learning_rate);
        let mut order: Vec<usize> = (0..train.len()).collect();
        let mut final_loss = 0.0f32;
        for _ in 0..epochs {
            order.shuffle(&mut self.rng);
            let mut epoch_loss = 0.0f32;
            let mut batches = 0usize;
            for chunk in order.chunks(self.batch_size) {
                let rows: Vec<Vec<f32>> = chunk.iter().map(|&i| train[i].flattened()).collect();
                let refs: Vec<&[f32]> = rows.iter().map(|r| r.as_slice()).collect();
                let batch = Matrix::from_rows(&refs);
                epoch_loss += self.net.train_batch(&batch, &batch, &Mse, &mut opt, 0.0);
                batches += 1;
            }
            final_loss = epoch_loss / batches.max(1) as f32;
        }

        if let Some(bits) = self.quantization_bits {
            self.net.visit_params(&mut |param, _| {
                hec_tensor::quantize::quantize_inplace(param, bits);
            });
        }

        // Snapshot the trained weights into the int8 twin (if selected),
        // then calibrate the scorer on whichever forward path detection
        // will actually use.
        self.rebuild_quantized_net();
        let threshold = self.calibrate(train)?;
        Ok(FitReport { epochs, final_loss, threshold })
    }

    // NOTE: single-window `detect` is deliberately uninstrumented — a
    // wall span's sidecar fold allocates its key, and the warmed per-
    // window path is proven allocation-free in tests/quant_alloc.rs.
    // `detect_batch` (below) carries the span and alloc phase instead.
    fn detect(&mut self, window: &LabeledWindow) -> Detection {
        self.scalar_errors_into(window);
        self.detection_from_scalar_errors(&self.err_buf)
    }

    /// Batched scoring: the whole corpus becomes one `windows × input` matrix
    /// and runs through a single forward pass per layer, so the dense kernels
    /// see real batch dimensions instead of `1 × input` row vectors. Row
    /// independence of the dense ops makes the results identical to the
    /// per-window path.
    fn detect_batch(&mut self, windows: &[LabeledWindow]) -> Vec<Detection> {
        if windows.is_empty() {
            return Vec::new();
        }
        let _span = hec_telemetry::WallSpan::new("anomaly.detect_batch");
        let _allocs = hec_telemetry::AllocPhase::new("anomaly.detect_batch");
        let dim = self.input_dim();
        let mut data = Vec::with_capacity(windows.len() * dim);
        for (i, w) in windows.iter().enumerate() {
            let flat = w.flattened();
            assert_eq!(
                flat.len(),
                dim,
                "window {i} length {} does not match model input {dim}",
                flat.len()
            );
            data.extend_from_slice(&flat);
        }
        let x = Matrix::from_vec(windows.len(), dim, data);
        // One clone of the batched reconstruction releases the forward
        // buffers before per-row scoring (which reuses `self.err_buf`).
        let y: Matrix = match self.qnet.as_mut() {
            Some(q) => q.forward(&x).clone(),
            None => self.net.predict(&x),
        };
        let mut detections = Vec::with_capacity(windows.len());
        for r in 0..windows.len() {
            self.err_buf.clear();
            self.err_buf.extend(x.row(r).iter().zip(y.row(r).iter()).map(|(a, b)| a - b));
            detections.push(self.detection_from_scalar_errors(&self.err_buf));
        }
        detections
    }

    fn threshold(&self) -> Option<f32> {
        self.scorer.as_ref().map(|s| s.threshold())
    }

    fn quant_mode(&self) -> Option<QuantMode> {
        self.quant_mode
    }

    /// Re-fits the scorer (and threshold) on `calibration` through the
    /// current forward path — weights untouched, so this costs one
    /// forward pass per window. The same code path `fit` and
    /// [`AutoencoderDetector::requantize`] calibrate through.
    fn recalibrate(&mut self, calibration: &[LabeledWindow]) -> Result<f32, FitError> {
        validate_training_set(calibration)?;
        if self.scorer.is_none() {
            return Err(FitError::InvalidTrainingSet {
                reason: "recalibrate requires a fitted detector".into(),
            });
        }
        self.calibrate(calibration)
    }
}

impl std::fmt::Debug for AutoencoderDetector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "AutoencoderDetector({}, {:?}, params={})",
            self.name,
            self.architecture.layer_sizes,
            self.param_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp_window(jitter: f32, n: usize) -> LabeledWindow {
        let v: Vec<f32> = (0..n).map(|t| (t as f32 / n as f32) + jitter).collect();
        LabeledWindow::new(Matrix::from_vec(n, 1, v), false)
    }

    fn train_set(n: usize) -> Vec<LabeledWindow> {
        (0..40).map(|i| ramp_window(0.002 * (i % 7) as f32, n)).collect()
    }

    #[test]
    fn architectures_have_expected_depths() {
        assert_eq!(AeArchitecture::iot(96).depth(), 3);
        assert_eq!(AeArchitecture::edge(96).depth(), 5);
        assert_eq!(AeArchitecture::cloud(96).depth(), 7);
    }

    #[test]
    fn param_counts_increase_iot_to_cloud() {
        let iot = AutoencoderDetector::new("iot", AeArchitecture::iot(96), 0);
        let edge = AutoencoderDetector::new("edge", AeArchitecture::edge(96), 0);
        let cloud = AutoencoderDetector::new("cloud", AeArchitecture::cloud(96), 0);
        assert!(iot.param_count() < edge.param_count());
        assert!(edge.param_count() < cloud.param_count());
    }

    #[test]
    fn fit_then_detect_separates() {
        // The cloud model has the capacity to nail this simple family; the
        // IoT model's 2-unit bottleneck intentionally does not (see
        // `AeArchitecture::iot`), so this test exercises the large end.
        let mut det = AutoencoderDetector::new("ae", AeArchitecture::cloud(16), 1);
        let report = det.fit(&train_set(16), 150).unwrap();
        assert!(report.final_loss < 0.05, "loss too high: {}", report.final_loss);
        assert!(report.threshold.is_finite());

        // Normal-looking window: not anomalous.
        let normal = ramp_window(0.001, 16);
        assert!(!det.detect(&normal).anomalous);

        // Flat window: anomalous.
        let flat = LabeledWindow::new(Matrix::from_vec(16, 1, vec![0.5; 16]), true);
        assert!(det.detect(&flat).anomalous);
    }

    #[test]
    fn capacity_gap_iot_vs_cloud() {
        // On a richer two-factor family the narrow IoT bottleneck must end
        // with a visibly larger reconstruction loss than the cloud model —
        // this gap is the mechanism behind the paper's accuracy ladder.
        let train: Vec<LabeledWindow> = (0..60)
            .map(|i| {
                let a = 0.5 + 0.3 * ((i % 5) as f32 / 4.0);
                let p = (i % 7) as f32 / 7.0;
                let v: Vec<f32> = (0..16)
                    .map(|t| a * ((t as f32 / 16.0 + p) * std::f32::consts::TAU).sin())
                    .collect();
                LabeledWindow::new(Matrix::from_vec(16, 1, v), false)
            })
            .collect();
        let mut iot = AutoencoderDetector::new("iot", AeArchitecture::iot(16), 2);
        let mut cloud = AutoencoderDetector::new("cloud", AeArchitecture::cloud(16), 2);
        let r_iot = iot.fit(&train, 120).unwrap();
        let r_cloud = cloud.fit(&train, 120).unwrap();
        assert!(
            r_cloud.final_loss < r_iot.final_loss,
            "no capacity gap: iot {} vs cloud {}",
            r_iot.final_loss,
            r_cloud.final_loss
        );
    }

    #[test]
    fn recalibrate_adapts_threshold_without_retraining() {
        let mut det = AutoencoderDetector::new("ae", AeArchitecture::cloud(16), 1);
        det.fit(&train_set(16), 120).unwrap();
        let t0 = det.threshold().unwrap();

        // A level-shifted regime: every window offset by +0.5. The frozen
        // scorer flags these wholesale...
        let shifted: Vec<LabeledWindow> = train_set(16)
            .iter()
            .map(|w| {
                let v: Vec<f32> = w.data.as_slice().iter().map(|x| x + 0.5).collect();
                LabeledWindow::new(Matrix::from_vec(16, 1, v), false)
            })
            .collect();
        assert!(
            det.detect(&shifted[0]).anomalous,
            "shifted regime must look anomalous pre-refresh"
        );

        // ...recalibrating on the shifted (all-normal) regime adapts the
        // scorer: same weights, new threshold, shifted windows pass again.
        let t1 = det.recalibrate(&shifted).unwrap();
        assert_ne!(t0, t1, "threshold must move with the regime");
        assert_eq!(det.threshold(), Some(t1));
        assert!(!det.detect(&shifted[0]).anomalous, "recalibrated regime must pass");

        // Contract errors: anomalous calibration windows are refused.
        let bad = vec![LabeledWindow::new(Matrix::from_vec(16, 1, vec![0.1; 16]), true)];
        assert!(matches!(det.recalibrate(&bad), Err(FitError::InvalidTrainingSet { .. })));
        assert!(matches!(det.recalibrate(&[]), Err(FitError::InvalidTrainingSet { .. })));
    }

    #[test]
    fn recalibrate_requires_a_fitted_detector() {
        let mut det = AutoencoderDetector::new("ae", AeArchitecture::iot(16), 1);
        let err = det.recalibrate(&train_set(16)).unwrap_err();
        assert!(err.to_string().contains("fitted"), "{err}");
    }

    #[test]
    fn detect_batch_matches_per_window() {
        let mut det = AutoencoderDetector::new("ae", AeArchitecture::cloud(16), 1);
        det.fit(&train_set(16), 80).unwrap();
        let windows = vec![
            ramp_window(0.001, 16),
            LabeledWindow::new(Matrix::from_vec(16, 1, vec![0.5; 16]), true),
            ramp_window(0.004, 16),
        ];
        let batched = det.detect_batch(&windows);
        let single: Vec<Detection> = windows.iter().map(|w| det.detect(w)).collect();
        assert_eq!(batched, single);
        assert!(det.detect_batch(&[]).is_empty());
    }

    #[test]
    fn detect_reports_scores() {
        let mut det = AutoencoderDetector::new("ae", AeArchitecture::iot(16), 1);
        det.fit(&train_set(16), 60).unwrap();
        let d = det.detect(&ramp_window(0.0, 16));
        assert!(d.min_log_pd.is_finite());
        assert!((0.0..=1.0).contains(&d.anomalous_fraction));
    }

    #[test]
    fn quantised_detector_fits_and_separates() {
        use hec_nn::{QuantMode, QuantScheme};
        for mode in
            [QuantMode::weight_only(QuantScheme::PerTensor), QuantMode::int8(QuantScheme::PerRow)]
        {
            let mut det = AutoencoderDetector::new("ae-q", AeArchitecture::cloud(16), 1);
            det.set_quant_mode(Some(mode));
            det.fit(&train_set(16), 150).unwrap();
            assert!(!det.detect(&ramp_window(0.001, 16)).anomalous, "{}", mode.label());
            let flat = LabeledWindow::new(Matrix::from_vec(16, 1, vec![0.5; 16]), true);
            assert!(det.detect(&flat).anomalous, "{}", mode.label());
        }
    }

    #[test]
    fn quantised_detect_batch_matches_per_window() {
        use hec_nn::{QuantMode, QuantScheme};
        let mut det = AutoencoderDetector::new("ae-q", AeArchitecture::cloud(16), 1);
        det.set_quant_mode(Some(QuantMode::int8(QuantScheme::PerTensor)));
        det.fit(&train_set(16), 80).unwrap();
        let windows = vec![
            ramp_window(0.001, 16),
            LabeledWindow::new(Matrix::from_vec(16, 1, vec![0.5; 16]), true),
            ramp_window(0.004, 16),
        ];
        let batched = det.detect_batch(&windows);
        let single: Vec<Detection> = windows.iter().map(|w| det.detect(w)).collect();
        assert_eq!(batched, single);
    }

    #[test]
    fn requantize_sweeps_schemes_and_restores_f32_exactly() {
        use hec_nn::{QuantMode, QuantScheme};
        let train = train_set(16);
        let mut det = AutoencoderDetector::new("ae", AeArchitecture::cloud(16), 1);
        let report = det.fit(&train, 80).unwrap();
        let f32_threshold = report.threshold;
        let normal = ramp_window(0.001, 16);
        let f32_detection = det.detect(&normal);

        // Sweep every scheme off one training run: the f32 weights stay
        // intact, only the quantised twin and the threshold change.
        for mode in [
            QuantMode::weight_only(QuantScheme::PerTensor),
            QuantMode::weight_only(QuantScheme::PerRow),
            QuantMode::int8(QuantScheme::PerTensor),
            QuantMode::int8(QuantScheme::PerRow),
        ] {
            let t = det.requantize(Some(mode), &train).unwrap();
            assert!(t.is_finite(), "{}", mode.label());
            assert_eq!(det.quant_mode(), Some(mode));
        }

        // Back to f32: threshold and detections must round-trip exactly.
        let t = det.requantize(None, &train).unwrap();
        assert_eq!(t, f32_threshold);
        assert_eq!(det.detect(&normal), f32_detection);
    }

    #[test]
    fn fit_rejects_wrong_window_size() {
        let mut det = AutoencoderDetector::new("ae", AeArchitecture::iot(16), 0);
        let bad = vec![ramp_window(0.0, 8)];
        assert!(matches!(det.fit(&bad, 1), Err(FitError::InvalidTrainingSet { .. })));
    }

    #[test]
    fn fit_rejects_anomalous_windows() {
        let mut det = AutoencoderDetector::new("ae", AeArchitecture::iot(16), 0);
        let mut set = train_set(16);
        set[0].anomalous = true;
        assert!(matches!(det.fit(&set, 1), Err(FitError::InvalidTrainingSet { .. })));
    }

    #[test]
    #[should_panic(expected = "detect called before fit")]
    fn detect_before_fit_panics() {
        let mut det = AutoencoderDetector::new("ae", AeArchitecture::iot(16), 0);
        let _ = det.detect(&ramp_window(0.0, 16));
    }

    #[test]
    #[should_panic(expected = "widths must match")]
    fn asymmetric_architecture_rejected() {
        let _ = AutoencoderDetector::new("bad", AeArchitecture { layer_sizes: vec![16, 8, 12] }, 0);
    }

    #[test]
    fn name_and_debug() {
        let det = AutoencoderDetector::new("AE-IoT", AeArchitecture::iot(16), 0);
        assert_eq!(det.name(), "AE-IoT");
        assert!(format!("{det:?}").contains("AE-IoT"));
    }
}
