//! # hec-nn
//!
//! A from-scratch neural-network framework sufficient to reproduce every model
//! in *"Contextual-Bandit Anomaly Detection for IoT Data in Distributed
//! Hierarchical Edge Computing"* (ICDCS 2020):
//!
//! * stacked [`Dense`] autoencoders (AE-IoT / AE-Edge / AE-Cloud, §II-A1),
//! * [`Lstm`] encoder–decoder sequence-to-sequence models, including the
//!   bidirectional encoder of BiLSTM-seq2seq-Cloud (§II-A2) — see
//!   [`seq2seq::Seq2Seq`],
//! * the single-hidden-layer softmax policy network (§II-B) — built from
//!   [`Dense`] layers by the `hec-bandit` crate,
//! * the paper's training recipe: MSE reconstruction loss, RMSProp,
//!   `l2`-norm kernel regularisation, dropout 0.3 on decoder outputs.
//!
//! Backpropagation (including BPTT through the LSTMs) is implemented manually
//! and validated against finite differences in the test suite.
//!
//! Every model owns a preallocated scratch workspace (see [`workspace`]) and
//! routes its matrix products through `hec-tensor`'s `_into` kernels, so
//! steady-state forward and training steps allocate no matmul temporaries
//! (every product lands in a reused buffer or a caller-visible output), and
//! the inference [`Lstm::step_into`] performs zero heap allocations.
//!
//! # Example
//!
//! ```rust
//! use hec_nn::{Activation, Dense, Mse, RmsProp, Sequential};
//! use hec_tensor::Matrix;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! // A tiny 2-2-1 regression network.
//! let mut net = Sequential::new(vec![
//!     Box::new(Dense::new(&mut rng, 2, 2, Activation::Tanh)),
//!     Box::new(Dense::new(&mut rng, 2, 1, Activation::Linear)),
//! ]);
//! let x = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
//! let y = Matrix::from_rows(&[&[1.0], &[-1.0]]);
//! let mut opt = RmsProp::new(0.01);
//! let before = net.train_batch(&x, &y, &Mse, &mut opt, 0.0);
//! for _ in 0..200 { net.train_batch(&x, &y, &Mse, &mut opt, 0.0); }
//! let after = net.train_batch(&x, &y, &Mse, &mut opt, 0.0);
//! assert!(after < before);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod activation;
pub mod dense;
pub mod dropout;
pub mod loss;
pub mod lstm;
pub mod optim;
pub mod qdense;
pub mod seq2seq;
pub mod sequential;
pub mod workspace;

pub use activation::Activation;
pub use dense::Dense;
pub use dropout::Dropout;
pub use loss::{Loss, Mse};
pub use lstm::{Lstm, LstmState};
pub use optim::{Adam, Optimizer, RmsProp, Sgd};
pub use qdense::{QuantMode, QuantScheme, QuantizedDense};
pub use seq2seq::{Seq2Seq, Seq2SeqConfig};
pub use sequential::{Layer, Sequential};
pub use workspace::Buf;
