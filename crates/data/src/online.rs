//! Incremental (streaming) standardisation statistics.
//!
//! The batch [`Standardizer`] fits on a corpus it can see all at once;
//! an unbounded device stream cannot afford that. [`OnlineStandardizer`]
//! accumulates per-channel moments one matrix (or one chunk) at a time
//! using Welford's numerically stable update, and chunk accumulators
//! combine with the parallel merge of Chan et al. — so a sharded
//! ingestion path can fit per-shard and merge, order-independently up to
//! floating-point association.
//!
//! [`OnlineStandardizer::freeze`] converts the running moments into a
//! regular [`Standardizer`] with the **same semantics as the batch fit**
//! (population standard deviation, `σ = 1` fallback for zero-variance
//! channels, rejection of non-finite samples): on any corpus, a
//! one-pass or chunk-merged online fit agrees with
//! [`Standardizer::fit`] on the stacked corpus to within `1e-3`
//! absolute / `1e-3` relative per channel (the batch path's own f32
//! summation error dominates the gap — the online accumulators run in
//! f64). The agreement, including the NaN/±inf rejection paths, is
//! pinned by the property tests in `tests/online_props.rs`.

use hec_tensor::Matrix;

use crate::standardize::{NonFiniteError, Standardizer};

/// Running per-channel mean/variance moments (Welford accumulators).
///
/// # Example
///
/// ```rust
/// use hec_data::{OnlineStandardizer, Standardizer};
/// use hec_tensor::Matrix;
///
/// let a = Matrix::from_rows(&[&[0.0, 10.0], &[2.0, 14.0]]);
/// let b = Matrix::from_rows(&[&[4.0, 18.0]]);
/// let mut on = OnlineStandardizer::new(2);
/// on.update(&a);
/// on.update(&b);
/// let frozen = on.freeze();
/// let batch = Standardizer::fit(&a.vconcat(&b));
/// for (x, y) in frozen.mean().iter().zip(batch.mean()) {
///     assert!((x - y).abs() < 1e-3);
/// }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct OnlineStandardizer {
    /// Rows (timesteps) absorbed so far.
    count: u64,
    /// Running per-channel mean.
    mean: Vec<f64>,
    /// Running per-channel sum of squared deviations from the mean.
    m2: Vec<f64>,
}

impl OnlineStandardizer {
    /// An empty accumulator over `channels` channels.
    ///
    /// # Panics
    ///
    /// Panics if `channels == 0`.
    pub fn new(channels: usize) -> Self {
        assert!(channels > 0, "cannot standardise zero channels");
        Self { count: 0, mean: vec![0.0; channels], m2: vec![0.0; channels] }
    }

    /// Number of channels this accumulator tracks.
    pub fn channels(&self) -> usize {
        self.mean.len()
    }

    /// Rows absorbed so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Absorbs every row of a `time × channels` matrix.
    ///
    /// # Panics
    ///
    /// Panics if the column count differs from [`Self::channels`], or
    /// with a [`NonFiniteError`] message if `data` contains NaN or ±∞
    /// (use [`Self::try_update`] to handle the error instead).
    pub fn update(&mut self, data: &Matrix) {
        self.try_update(data).unwrap_or_else(|e| panic!("OnlineStandardizer::update: {e}"));
    }

    /// Fallible [`Self::update`]: like [`Standardizer::try_fit`], the
    /// whole matrix is scanned first and rejected **atomically** — on
    /// error (positions local to `data`) no row has been absorbed, so a
    /// caller can drop the offending chunk and continue the stream.
    ///
    /// # Panics
    ///
    /// Panics if the column count differs from the accumulator's (a
    /// caller bug, not a data defect).
    pub fn try_update(&mut self, data: &Matrix) -> Result<(), NonFiniteError> {
        assert_eq!(data.cols(), self.channels(), "channel count mismatch");
        if let Some(e) = crate::standardize::first_non_finite(data) {
            return Err(e);
        }
        for row in data.iter_rows() {
            self.count += 1;
            let n = self.count as f64;
            for (c, &x) in row.iter().enumerate() {
                let x = x as f64;
                let delta = x - self.mean[c];
                self.mean[c] += delta / n;
                self.m2[c] += delta * (x - self.mean[c]);
            }
        }
        Ok(())
    }

    /// Merges another accumulator into this one (Chan et al.'s parallel
    /// combination of moments): the result is equivalent to having
    /// absorbed both accumulators' rows, in any order, up to
    /// floating-point association.
    ///
    /// # Panics
    ///
    /// Panics if the channel counts differ.
    pub fn merge(&mut self, other: &Self) {
        assert_eq!(self.channels(), other.channels(), "channel count mismatch");
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let (na, nb) = (self.count as f64, other.count as f64);
        let n = na + nb;
        for c in 0..self.channels() {
            let delta = other.mean[c] - self.mean[c];
            self.mean[c] += delta * (nb / n);
            self.m2[c] += other.m2[c] + delta * delta * (na * nb / n);
        }
        self.count += other.count;
    }

    /// Freezes the running moments into a batch-semantics
    /// [`Standardizer`]: population standard deviation (`m2 / n`), and
    /// `σ = 1` for zero-variance channels so transforming them maps to 0
    /// (the same fallback [`Standardizer::fit`] applies). See the module
    /// docs for the documented agreement precision.
    ///
    /// # Panics
    ///
    /// Panics if no rows have been absorbed.
    pub fn freeze(&self) -> Standardizer {
        assert!(self.count > 0, "cannot freeze an empty OnlineStandardizer");
        let n = self.count as f64;
        let mean: Vec<f32> = self.mean.iter().map(|&m| m as f32).collect();
        let std: Vec<f32> = self
            .m2
            .iter()
            .map(|&v| {
                let s = (v / n).sqrt() as f32;
                if s > 0.0 {
                    s
                } else {
                    1.0
                }
            })
            .collect();
        Standardizer::from_moments(mean, std)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mat(rows: &[&[f32]]) -> Matrix {
        Matrix::from_rows(rows)
    }

    #[test]
    fn one_pass_matches_batch_fit() {
        let data = mat(&[&[1.0, -2.0], &[0.5, 4.0], &[2.0, 1.0], &[-3.0, 0.5]]);
        let mut on = OnlineStandardizer::new(2);
        on.update(&data);
        assert_eq!(on.count(), 4);
        let frozen = on.freeze();
        let batch = Standardizer::fit(&data);
        for c in 0..2 {
            assert!((frozen.mean()[c] - batch.mean()[c]).abs() < 1e-5);
            assert!((frozen.std()[c] - batch.std()[c]).abs() < 1e-5);
        }
    }

    #[test]
    fn chunked_then_merged_matches_batch_fit() {
        let a = mat(&[&[1.0], &[2.0]]);
        let b = mat(&[&[10.0], &[11.0], &[12.0]]);
        let mut left = OnlineStandardizer::new(1);
        left.update(&a);
        let mut right = OnlineStandardizer::new(1);
        right.update(&b);
        left.merge(&right);
        let frozen = left.freeze();
        let batch = Standardizer::fit(&a.vconcat(&b));
        assert!((frozen.mean()[0] - batch.mean()[0]).abs() < 1e-5);
        assert!((frozen.std()[0] - batch.std()[0]).abs() < 1e-5);
    }

    #[test]
    fn merge_into_empty_adopts_the_other_side() {
        let data = mat(&[&[3.0], &[5.0]]);
        let mut filled = OnlineStandardizer::new(1);
        filled.update(&data);
        let mut empty = OnlineStandardizer::new(1);
        empty.merge(&filled);
        assert_eq!(empty, filled);
        // ... and merging an empty accumulator is a no-op.
        let before = filled.clone();
        filled.merge(&OnlineStandardizer::new(1));
        assert_eq!(filled, before);
    }

    #[test]
    fn constant_channel_freezes_to_unit_sigma() {
        let mut on = OnlineStandardizer::new(1);
        on.update(&mat(&[&[5.0], &[5.0], &[5.0]]));
        let frozen = on.freeze();
        assert_eq!(frozen.std()[0], 1.0);
        let batch = Standardizer::fit(&mat(&[&[5.0], &[5.0], &[5.0]]));
        assert_eq!(frozen.std()[0], batch.std()[0]);
    }

    #[test]
    fn try_update_rejects_non_finite_atomically() {
        let mut on = OnlineStandardizer::new(2);
        on.update(&mat(&[&[1.0, 2.0]]));
        let before = on.clone();
        let err = on.try_update(&mat(&[&[3.0, 4.0], &[f32::NAN, 5.0]])).unwrap_err();
        assert_eq!(err, NonFiniteError { row: 1, col: 0 });
        // The clean leading row must NOT have been absorbed.
        assert_eq!(on, before);
        // The error position matches the batch path's.
        let batch_err = Standardizer::try_fit(&mat(&[&[3.0, 4.0], &[f32::NAN, 5.0]])).unwrap_err();
        assert_eq!(err, batch_err);
    }

    #[test]
    #[should_panic(expected = "non-finite sample")]
    fn update_panics_with_clear_message_on_inf() {
        let mut on = OnlineStandardizer::new(1);
        on.update(&mat(&[&[f32::INFINITY]]));
    }

    #[test]
    #[should_panic(expected = "channel count mismatch")]
    fn mismatched_channels_panic() {
        let mut on = OnlineStandardizer::new(2);
        on.update(&mat(&[&[1.0, 2.0, 3.0]]));
    }

    #[test]
    #[should_panic(expected = "cannot freeze")]
    fn freezing_empty_panics() {
        let _ = OnlineStandardizer::new(1).freeze();
    }
}
