//! Frozen vs adaptive pipelines under an injected regime change.
//!
//! The paper's pipeline fits everything offline and freezes it. This
//! binary measures what that costs once the input distribution moves —
//! and what the online-adaptation loop (`hec_core::adapt`) buys back:
//!
//! 1. Train the univariate pipeline (detectors, scorers, policy) on the
//!    clean corpus, exactly as `repro_table2` does.
//! 2. Build a drift-injected stream: a fresh raw corpus (different
//!    generator seed), amplified ×4 (`hec_data::amplify`, labels stay
//!    truthful), with a **step regime change** injected mid-stream
//!    (`DriftSchedule`: +1.5σ level, +20% scale — a sensor
//!    recalibration-style shift).
//! 3. Stream it twice through the chunked fleet-replay loop on identical
//!    starting state: once **frozen** (no refresh of any kind — the
//!    paper's regime) and once **adaptive** (Page–Hinkley drift detection
//!    on the layer-0 score stream; on alarm refit the standardizer from
//!    the raw-window reservoir and recalibrate the detector scorers; the
//!    bandit refreshes continually between chunks). The frozen run goes
//!    first and mutates nothing, so both runs start from the same
//!    weights.
//! 4. Compare recovery: chunks until F1 returns to the pre-drift
//!    baseline, cumulative reward foregone post-onset, and post-drift
//!    mean F1.
//!
//! Everything on stdout is deterministic — same profile ⇒ byte-identical
//! output across reruns and `HEC_THREADS` settings, which the CI
//! drift-smoke job enforces by diffing two runs (timing goes to stderr).
//!
//! ```text
//! cargo run --release -p hec-bench --bin repro_drift -- [out_dir] \
//!     [--telemetry <dir>]
//! ```
//!
//! With `out_dir`, a `drift.csv` per-chunk trajectory table (both
//! pipelines) is written there.

use std::fmt::Write as _;
use std::time::Instant;

use hec_bandit::{PolicyTrainer, TrainConfig};
use hec_bench::{univariate_config, Profile};
use hec_core::adapt::{run_adaptive_stream, AdaptConfig, AdaptReport, RecoveryStats};
use hec_core::Experiment;
use hec_data::power::{PowerConfig, PowerGenerator};
use hec_data::{
    amplify_corpus, DatasetSource, DriftKind, DriftSchedule, LabeledWindow, OnlineStandardizer,
    PerturbConfig,
};

/// Counting global allocator, so `AllocPhase` deltas recorded by the
/// instrumented library layers are real in this binary.
#[cfg(feature = "telemetry")]
#[global_allocator]
static GLOBAL_ALLOC: hec_telemetry::CountingAlloc = hec_telemetry::CountingAlloc;

/// Per-profile sizing of the drift experiment.
struct DriftSizing {
    /// Generator config of the *stream* corpus (decorrelated seed).
    stream_base: PowerConfig,
    /// Amplification factor over the base corpus.
    amplify: usize,
    /// Windows per adaptation chunk.
    chunk: usize,
    /// Fleet shards for the chunk replay.
    shards: usize,
    /// Drift onset, in stream window index.
    onset: usize,
}

fn sizing(profile: Profile) -> DriftSizing {
    match profile {
        Profile::Full => DriftSizing {
            stream_base: PowerConfig {
                days: 600,
                samples_per_day: 96,
                anomaly_rate: 0.12,
                noise_std: 0.03,
                seed: 11,
            },
            amplify: 4,
            chunk: 50,
            shards: 4,
            onset: 1200,
        },
        Profile::Quick => DriftSizing {
            stream_base: PowerConfig {
                days: 150,
                samples_per_day: 24,
                anomaly_rate: 0.15,
                noise_std: 0.03,
                seed: 11,
            },
            amplify: 4,
            chunk: 25,
            shards: 2,
            onset: 300,
        },
    }
}

fn usage_exit(detail: &str) -> ! {
    eprintln!("usage: repro_drift [out_dir] [--telemetry <dir>]  ({detail})");
    std::process::exit(2);
}

fn print_report(report: &AdaptReport, recovery: &RecoveryStats) {
    println!("{} pipeline:", report.label);
    println!(
        "  drift detections at chunks {:?}; refreshes at chunks {:?}",
        report.detections, report.refreshes
    );
    println!(
        "  baseline (pre-onset): f1={:.4} reward={:.2}",
        recovery.baseline_f1, recovery.baseline_reward_x100
    );
    println!(
        "  post-drift: f1={:.4} reward={:.2} | recovery={} | reward loss={:.2}",
        recovery.post_f1,
        recovery.post_reward_x100,
        match recovery.recovery_chunks {
            Some(k) => format!("{k} chunks"),
            None => "never".into(),
        },
        recovery.cumulative_reward_loss
    );
}

fn append_csv(csv: &mut String, report: &AdaptReport) {
    for c in &report.chunks {
        let _ = writeln!(
            csv,
            "{},{},{},{:.6},{:.6},{:.4},{:.4},{},{},{},{:.4}",
            report.label,
            c.index,
            c.windows,
            c.f1,
            c.accuracy,
            c.mean_reward_x100,
            c.drift_statistic,
            c.drift_alarm as u8,
            c.refreshed as u8,
            c.policy_updates,
            c.threshold_iot
        );
    }
}

fn main() {
    let mut out_dir: Option<String> = None;
    let mut telemetry_dir: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--telemetry" {
            telemetry_dir =
                Some(args.next().unwrap_or_else(|| usage_exit("--telemetry needs a directory")));
        } else if arg.starts_with('-') || out_dir.is_some() {
            usage_exit(&format!("unexpected argument {arg:?}"));
        } else {
            out_dir = Some(arg);
        }
    }
    hec_bench::telemetry::init("repro_drift", telemetry_dir.as_deref());
    let mut bench_metrics: Vec<(String, f64)> = Vec::new();
    let profile = Profile::from_env();
    let size = sizing(profile);
    println!("== repro_drift (profile: {profile:?}) ==\n");

    // Stage 1: the clean offline pipeline.
    let t0 = Instant::now();
    let mut exp = Experiment::prepare(univariate_config(profile));
    exp.train_detectors();
    let policy_corpus = exp.split.policy_train.clone();
    let policy_oracle = exp.oracle_over(&policy_corpus);
    let (policy, scaler, _curve) = exp.train_policy(&policy_oracle);
    let mut trainer = PolicyTrainer::new(
        policy,
        TrainConfig { learning_rate: 5e-3, entropy_beta: 0.02, ..Default::default() },
    );
    let pipeline_wall = t0.elapsed().as_secs_f64();
    eprintln!("[timing] offline pipeline: {pipeline_wall:.2} s");
    bench_metrics.push(("pipeline_s".into(), pipeline_wall));

    // Stage 2: the drift-injected stream. Amplify a decorrelated raw
    // corpus, then shift level by 1.5σ and scale by +20% from the onset
    // window onward (σ measured on the raw base corpus).
    let base = PowerGenerator::new(size.stream_base.clone()).load().expect("synthetic source");
    let amplified = amplify_corpus(&base, size.amplify, &PerturbConfig::default());
    let mut moments = OnlineStandardizer::new(1);
    for w in &amplified.windows {
        moments.update(&w.data);
    }
    let sigma = moments.freeze().std()[0];
    let drift =
        DriftSchedule { kind: DriftKind::Step, onset: size.onset, level: 1.5 * sigma, scale: 0.2 };
    let stream: Vec<LabeledWindow> = drift.apply(&amplified).windows;
    let onset_chunk = size.onset / size.chunk;
    println!(
        "stream: {} windows ({} base x{} amplified), step drift at window {} \
         (chunk {}): level +1.5 sigma, scale +20%",
        stream.len(),
        base.len(),
        size.amplify,
        size.onset,
        onset_chunk
    );
    println!(
        "loop: chunks of {} windows, {} fleet shards, Page-Hinkley on the layer-0 \
         anomalous-fraction stream\n",
        size.chunk, size.shards
    );

    // Stage 3: frozen first (mutates neither the experiment nor the
    // policy weights), then adaptive on the identical starting state.
    let frozen_cfg = AdaptConfig::frozen(size.chunk, size.shards);
    let t0 = Instant::now();
    let frozen = run_adaptive_stream(&mut exp, &mut trainer, &scaler, &stream, &frozen_cfg);
    let frozen_wall = t0.elapsed().as_secs_f64();
    eprintln!("[timing] frozen stream: {frozen_wall:.2} s");
    bench_metrics.push(("frozen_windows_per_s".into(), stream.len() as f64 / frozen_wall));

    let adaptive_cfg = AdaptConfig::adaptive(size.chunk, size.shards);
    let t0 = Instant::now();
    let adaptive = run_adaptive_stream(&mut exp, &mut trainer, &scaler, &stream, &adaptive_cfg);
    let adaptive_wall = t0.elapsed().as_secs_f64();
    eprintln!("[timing] adaptive stream: {adaptive_wall:.2} s");
    bench_metrics.push(("adaptive_windows_per_s".into(), stream.len() as f64 / adaptive_wall));

    // Stage 4: recovery comparison.
    let eps = 0.05;
    let fr = frozen.recovery(onset_chunk, eps);
    let ar = adaptive.recovery(onset_chunk, eps);
    print_report(&frozen, &fr);
    println!();
    print_report(&adaptive, &ar);
    println!("\ncomparison (adaptive - frozen):");
    println!("  post-drift f1:     {:+.4}", ar.post_f1 - fr.post_f1);
    println!("  post-drift reward: {:+.2}", ar.post_reward_x100 - fr.post_reward_x100);
    println!(
        "  reward loss:       {:+.2} ({:.2} -> {:.2})",
        ar.cumulative_reward_loss - fr.cumulative_reward_loss,
        fr.cumulative_reward_loss,
        ar.cumulative_reward_loss
    );
    let fmt_rec = |r: Option<usize>| r.map_or("never".to_string(), |k| format!("{k} chunks"));
    println!(
        "  recovery:          {} vs {}",
        fmt_rec(ar.recovery_chunks),
        fmt_rec(fr.recovery_chunks)
    );

    if let Some(dir) = &out_dir {
        let mut csv = String::from(
            "pipeline,chunk,windows,f1,accuracy,reward_x100,ph_statistic,alarm,refreshed,\
             policy_updates,threshold_iot\n",
        );
        append_csv(&mut csv, &frozen);
        append_csv(&mut csv, &adaptive);
        std::fs::create_dir_all(dir).expect("create output directory");
        let path = format!("{dir}/drift.csv");
        std::fs::write(&path, csv).expect("write drift CSV");
        println!("\nwrote {path}");
    }

    let metric_refs: Vec<(&str, f64)> =
        bench_metrics.iter().map(|(n, v)| (n.as_str(), *v)).collect();
    hec_bench::telemetry::write_bench_json("repro_drift", &metric_refs);
    hec_bench::telemetry::dump("repro_drift", telemetry_dir.as_deref());
}
