//! Network links with RTT, optional bandwidth cap and jitter.
//!
//! The paper emulates WAN connections with the Linux `tc` tool (§III-C).
//! Table II implies pure-delay links: the univariate Edge scheme's
//! end-to-end delay (257.43 ms) minus the TX2 execution time (7.4 ms) gives
//! ≈ 250 ms for IoT→Edge, and the Cloud scheme gives ≈ 500 ms for
//! IoT→Cloud — for both datasets, independent of payload size. We therefore
//! default to delay-only links and expose bandwidth/jitter for ablations.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A (round-trip) network path between the IoT device and a higher layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Link {
    /// Round-trip propagation delay in milliseconds.
    pub rtt_ms: f64,
    /// Optional uplink bandwidth cap in Mbit/s (`None` = unconstrained,
    /// matching the paper's delay-only `tc netem` emulation).
    pub bandwidth_mbps: Option<f64>,
    /// Standard deviation of Gaussian delay jitter, ms (0 = deterministic).
    pub jitter_std_ms: f64,
}

impl Link {
    /// A delay-only link (the paper's default emulation).
    ///
    /// # Panics
    ///
    /// Panics if `rtt_ms` is negative.
    pub fn delay_only(rtt_ms: f64) -> Self {
        assert!(rtt_ms >= 0.0, "rtt must be non-negative");
        Self { rtt_ms, bandwidth_mbps: None, jitter_std_ms: 0.0 }
    }

    /// The local "link" from a device to itself: zero cost.
    pub fn local() -> Self {
        Self::delay_only(0.0)
    }

    /// Adds a bandwidth cap (Mbit/s).
    ///
    /// # Panics
    ///
    /// Panics if `mbps` is not positive.
    pub fn with_bandwidth(mut self, mbps: f64) -> Self {
        assert!(mbps > 0.0, "bandwidth must be positive");
        self.bandwidth_mbps = Some(mbps);
        self
    }

    /// Adds Gaussian jitter (std in ms).
    ///
    /// # Panics
    ///
    /// Panics if `std_ms` is negative.
    pub fn with_jitter(mut self, std_ms: f64) -> Self {
        assert!(std_ms >= 0.0, "jitter std must be non-negative");
        self.jitter_std_ms = std_ms;
        self
    }

    /// Deterministic round-trip transfer time for a payload of
    /// `payload_bytes` (jitter excluded).
    pub fn transfer_ms(&self, payload_bytes: usize) -> f64 {
        let serialisation = match self.bandwidth_mbps {
            Some(mbps) => (payload_bytes as f64 * 8.0) / (mbps * 1e6) * 1e3,
            None => 0.0,
        };
        self.rtt_ms + serialisation
    }

    /// Transfer time with jitter sampled from `rng` (truncated at zero).
    pub fn transfer_ms_jittered(&self, payload_bytes: usize, rng: &mut impl Rng) -> f64 {
        let base = self.transfer_ms(payload_bytes);
        if self.jitter_std_ms == 0.0 {
            return base;
        }
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        (base + z * self.jitter_std_ms).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn delay_only_ignores_payload() {
        let link = Link::delay_only(250.0);
        assert_eq!(link.transfer_ms(0), 250.0);
        assert_eq!(link.transfer_ms(1_000_000), 250.0);
    }

    #[test]
    fn local_link_is_free() {
        assert_eq!(Link::local().transfer_ms(4096), 0.0);
    }

    #[test]
    fn bandwidth_adds_serialisation_delay() {
        // 10 Mbit/s, 1 MB payload: 8 Mbit / 10 Mbit/s = 0.8 s = 800 ms.
        let link = Link::delay_only(100.0).with_bandwidth(10.0);
        let t = link.transfer_ms(1_000_000);
        assert!((t - 900.0).abs() < 1e-6, "got {t}");
    }

    #[test]
    fn jitter_varies_but_stays_positive() {
        let link = Link::delay_only(50.0).with_jitter(20.0);
        let mut rng = StdRng::seed_from_u64(5);
        let samples: Vec<f64> = (0..200).map(|_| link.transfer_ms_jittered(0, &mut rng)).collect();
        assert!(samples.iter().all(|&t| t >= 0.0));
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((mean - 50.0).abs() < 5.0, "mean {mean}");
        let distinct = samples.windows(2).any(|w| (w[0] - w[1]).abs() > 1e-9);
        assert!(distinct, "jitter produced identical samples");
    }

    #[test]
    fn zero_jitter_is_deterministic() {
        let link = Link::delay_only(75.0);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(link.transfer_ms_jittered(100, &mut rng), 75.0);
    }

    #[test]
    #[should_panic(expected = "rtt must be non-negative")]
    fn negative_rtt_rejected() {
        let _ = Link::delay_only(-1.0);
    }
}
