//! The demo result panel's streaming series (Fig. 3b) and the closed-loop
//! fleet streaming driver.
//!
//! The paper's GUI continuously plots, as windows stream in: the raw sensory
//! signal, the detection outcome (0/1) vs ground truth, the detection delay
//! vs the action chosen by the policy network, and the accumulated accuracy
//! and F1-score. This module regenerates exactly those series as data.
//!
//! [`stream_through_fleet`] goes further: it replays the evaluation corpus
//! from every device of a [`FleetScenario`] into the discrete-event fleet
//! simulator, with the scheme (in particular the trained bandit policy)
//! choosing each window's layer. The chosen action now changes *queueing* —
//! a policy that routes everything to the cloud saturates the cloud path
//! and pays load-dependent delay, which the per-window Fig. 3b replay
//! cannot express.
//!
//! The driver pulls outcomes from the sharded coordinator's resumable
//! `step` contract (a one-shard [`ShardedFleetEngine`], i.e. exactly the
//! serial `FleetEngine` — the same engine [`crate::fleet_train`] trains
//! inside) and routes **load-aware**
//! policies natively: an Adaptive policy whose input dimension is
//! `context + load features` gets the emitting moment's normalised queue
//! depths appended to each window's context, instead of the static
//! precomputed action table the base policy uses. Every emitted window is
//! scored under the dataset's [`RewardModel`] with its *observed*
//! load-dependent delay; windows shed by admission control pay the
//! explicit drop penalty.

use std::fmt::Write as _;

use serde::{Deserialize, Serialize};

use hec_bandit::{ContextScaler, LoadNormalizer, PolicyNetwork, RewardModel};
use hec_data::BinaryConfusion;
use hec_sim::fleet::{
    DropReason, FleetReport, FleetScenario, JobEvent, LatencyHist, RouteCtx, ShardPlan,
    ShardedFleetEngine,
};

use crate::oracle::Oracle;
use crate::scheme::{SchemeEvaluator, SchemeKind};

/// One row of the Fig. 3b panel: the state after processing window `index`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StreamRecord {
    /// Stream position (window index).
    pub index: usize,
    /// Ground truth (1 = anomalous).
    pub truth: bool,
    /// The scheme's verdict.
    pub predicted: bool,
    /// Layer that served the window (the plotted "action").
    pub action: usize,
    /// End-to-end detection delay of this window, ms.
    pub delay_ms: f64,
    /// Accuracy accumulated over the stream so far.
    pub cumulative_accuracy: f64,
    /// F1-score accumulated over the stream so far.
    pub cumulative_f1: f64,
}

/// Replays the evaluation corpus as a stream under the given scheme,
/// producing the Fig. 3b series.
///
/// `policy`/`scaler` are required only for [`SchemeKind::Adaptive`].
///
/// # Panics
///
/// Panics if `Adaptive` is requested without a policy and scaler.
pub fn stream_records(
    evaluator: &SchemeEvaluator<'_>,
    oracle: &Oracle,
    kind: SchemeKind,
    mut policy: Option<&mut PolicyNetwork>,
    scaler: Option<&ContextScaler>,
) -> Vec<StreamRecord> {
    let mut confusion = BinaryConfusion::new();
    let mut records = Vec::with_capacity(oracle.len());
    for i in 0..oracle.len() {
        let outcome = match kind {
            SchemeKind::IoTDevice => evaluator.fixed(oracle, i, 0),
            SchemeKind::Edge => evaluator.fixed(oracle, i, 1),
            SchemeKind::Cloud => evaluator.fixed(oracle, i, 2),
            SchemeKind::Successive => evaluator.successive(oracle, i),
            SchemeKind::Adaptive => {
                let p = policy.as_deref_mut().expect("Adaptive needs a trained policy");
                let s = scaler.expect("Adaptive needs a context scaler");
                evaluator.adaptive(oracle, i, p, s)
            }
        };
        let truth = oracle.outcomes[i].truth;
        confusion.record(outcome.verdict, truth);
        records.push(StreamRecord {
            index: i,
            truth,
            predicted: outcome.verdict,
            action: outcome.final_layer,
            delay_ms: outcome.delay_ms,
            cumulative_accuracy: confusion.accuracy(),
            cumulative_f1: confusion.f1(),
        });
    }
    records
}

/// Renders stream records as CSV (header + one line per window), the format
/// the `repro_fig3` bench binary writes.
pub fn to_csv(records: &[StreamRecord]) -> String {
    let mut out =
        String::from("index,truth,predicted,action,delay_ms,cumulative_accuracy,cumulative_f1\n");
    for r in records {
        out.push_str(&format!(
            "{},{},{},{},{:.3},{:.6},{:.6}\n",
            r.index,
            r.truth as u8,
            r.predicted as u8,
            r.action,
            r.delay_ms,
            r.cumulative_accuracy,
            r.cumulative_f1
        ));
    }
    out
}

/// Per-layer drop accounting for one fleet stream: how many windows a
/// layer shed, split by cause. Covers **every** dropped window of the run
/// (background cohorts included), unlike `missed`, which counts only the
/// scheme-routed ones — the "silent drop" blind spot this breakdown
/// closes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DropBreakdown {
    /// Layer index (0 = IoT).
    pub layer: usize,
    /// Windows dropped at the layer's compute queue (or device backlog).
    pub queue: u64,
    /// Windows dropped at the layer's uplink admission bound.
    pub link: u64,
}

/// Result of streaming the corpus through the fleet under one scheme.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetStreamResult {
    /// Which scheme routed the windows.
    pub scheme: SchemeKind,
    /// The fleet simulation's load report (utilization, queue traces,
    /// drops, load-dependent latency distributions per layer).
    pub fleet: FleetReport,
    /// Detection confusion over the *served* windows (each window's
    /// verdict comes from the oracle at the layer that served it).
    pub confusion: BinaryConfusion,
    /// Windows shed by admission control before any model saw them.
    pub missed: u64,
    /// Drop-by-layer / drop-by-cause breakdown over the whole run. Sums
    /// to `fleet.dropped` (asserted — conservation is
    /// `emitted == served + dropped`), and is mirrored into the telemetry
    /// registry as `stream.drops{scheme,layer,cause}` counters.
    pub drops: Vec<DropBreakdown>,
    /// `100 × mean(accuracy − cost)` over **all scheme-routed windows**,
    /// with each served window's cost charged at its *observed*
    /// load-dependent delay and each shed window paying the drop penalty
    /// (`hec_bandit::CostModel::DROP_COST`). Directly comparable to the
    /// static Table II reward column — except this one cannot be gamed by
    /// routing everything into a saturated queue.
    pub mean_reward_x100: f64,
    /// Mean latency over the scheme-routed *served* windows (equals the
    /// fleet's overall mean when the scheme routes every cohort).
    pub routed_mean_ms: f64,
    /// 99th-percentile latency over the scheme-routed served windows.
    pub routed_p99_ms: f64,
}

impl FleetStreamResult {
    /// Accuracy over served windows.
    pub fn accuracy(&self) -> f64 {
        self.confusion.accuracy()
    }

    /// F1 over served windows.
    pub fn f1(&self) -> f64 {
        self.confusion.f1()
    }
}

/// The load-feature normaliser matching a scenario's admission bounds.
/// Shared-layer queue features cap at the queue capacity and link
/// features at the link admission bound — absolute quantities that the
/// Quick/Full scale twins share, so those features are scale-free as-is.
/// Layer 0's raw gauge counts concurrently-busy devices and grows with
/// fleet size, so it is rescaled to **per-mille of the fleet** before
/// the ramp: a policy trained on the 1/50 Quick twin sees the same
/// layer-0 feature for the same relative occupancy it will meet at Full
/// scale. Policies trained in a scenario's fleet and routers evaluating
/// them must use this same normaliser.
pub fn scenario_load_normalizer(scenario: &FleetScenario) -> LoadNormalizer {
    let k = scenario.topology().num_layers();
    let queue_caps: Vec<f64> = (0..k)
        .map(|l| if l == 0 { 1000.0 } else { scenario.queue_capacity.max(1) as f64 })
        .collect();
    let link_caps = vec![scenario.link_max_inflight.max(1) as f64; k];
    let mut queue_scale = vec![1.0; k];
    queue_scale[0] = 1000.0 / scenario.total_devices().max(1) as f64;
    LoadNormalizer::new(queue_caps, link_caps).with_queue_scale(queue_scale)
}

/// Window → oracle mapping for a scheme-routed stream, single-sourced so
/// the fleet trainer and the evaluation router can never diverge on it:
/// scheme-routed windows map round-robin over the corpus in emission
/// order; background windows under a probe cohort map to `None` (they
/// contribute load, not scores or updates).
#[derive(Debug, Clone)]
pub struct ProbeMap {
    probe: Option<u32>,
    corpus_len: usize,
    next: usize,
}

impl ProbeMap {
    /// Creates the mapping for a corpus of `corpus_len` oracle windows.
    ///
    /// # Panics
    ///
    /// Panics if the corpus is empty.
    pub fn new(probe: Option<u32>, corpus_len: usize) -> Self {
        assert!(corpus_len > 0, "empty oracle corpus");
        Self { probe, corpus_len, next: 0 }
    }

    /// The oracle window index for an emitted window, or `None` when the
    /// window belongs to a background cohort.
    pub fn oracle_index(&mut self, ctx: &RouteCtx<'_>) -> Option<usize> {
        match self.probe {
            None => Some((ctx.seq % self.corpus_len as u64) as usize),
            Some(pc) if ctx.cohort == pc => {
                let i = self.next % self.corpus_len;
                self.next += 1;
                Some(i)
            }
            Some(_) => None,
        }
    }

    /// Resets the round-robin position (start of a new epoch/replay).
    pub fn reset(&mut self) {
        self.next = 0;
    }
}

/// Precomputes the per-oracle-window routing table for a scheme — the
/// stateless (`Fn + Sync`-able) half of scheme routing, shared by
/// [`stream_through_fleet`]'s table mode and the sharded
/// [`crate::replay`] driver, so the two can never diverge on what a
/// scheme does.
///
/// `policy`/`scaler` are required for [`SchemeKind::Adaptive`] and the
/// policy must be **static** (`input_dim == scaler.dim()`): a load-aware
/// policy's action depends on live queue state and has no precomputable
/// table — route it through [`stream_through_fleet`].
///
/// # Panics
///
/// Panics if `Adaptive` is requested without a policy and scaler, or
/// with a policy whose input dimension is not the scaler's.
pub fn scheme_action_table(
    scenario: &FleetScenario,
    oracle: &Oracle,
    kind: SchemeKind,
    policy: Option<&mut PolicyNetwork>,
    scaler: Option<&ContextScaler>,
) -> Vec<usize> {
    let n = oracle.len();
    match kind {
        SchemeKind::IoTDevice => vec![0; n],
        SchemeKind::Edge => vec![1; n],
        SchemeKind::Cloud => vec![2; n],
        SchemeKind::Successive => {
            let top = scenario.topology().num_layers() - 1;
            (0..n)
                .map(|i| {
                    let mut layer = 0usize;
                    while layer < top && !oracle.confident(i, layer) {
                        layer += 1;
                    }
                    layer
                })
                .collect()
        }
        SchemeKind::Adaptive => {
            let p = policy.expect("Adaptive needs a trained policy");
            let s = scaler.expect("Adaptive needs a context scaler");
            if p.input_dim() != s.dim() {
                let norm = scenario_load_normalizer(scenario);
                panic!(
                    "Adaptive policy input dim {} matches neither the base context ({}) nor \
                     base + load features ({})",
                    p.input_dim(),
                    s.dim(),
                    s.dim() + norm.dims()
                );
            }
            let scaled: Vec<Vec<f32>> =
                oracle.outcomes.iter().map(|o| s.transform(&o.context)).collect();
            p.greedy_batch(&scaled)
        }
    }
}

/// How the scheme picks each emitted window's layer.
enum FleetRouterMode<'p> {
    /// Per-oracle-window precomputed actions: a table lookup on the hot
    /// path (fixed schemes, Successive, and the static Adaptive policy).
    Table(Vec<usize>),
    /// A load-aware policy: each window's scaled base context gets the
    /// emitting moment's normalised load gauges appended, and the policy
    /// runs greedily per window — the action genuinely depends on the
    /// queues the earlier actions built up.
    LoadAware {
        policy: &'p mut PolicyNetwork,
        base: Vec<Vec<f32>>,
        norm: LoadNormalizer,
        scratch: Vec<f32>,
    },
}

impl FleetRouterMode<'_> {
    /// Routes oracle window `i` under the live load gauges of `ctx`.
    fn route(&mut self, ctx: &RouteCtx<'_>, i: usize) -> usize {
        match self {
            FleetRouterMode::Table(actions) => actions[i],
            FleetRouterMode::LoadAware { policy, base, norm, scratch } => {
                scratch.clear();
                scratch.extend_from_slice(&base[i]);
                norm.append_features(ctx.queue_depth, ctx.link_inflight, scratch);
                policy.greedy(scratch)
            }
        }
    }
}

/// Streams the corpus through the discrete-event fleet simulator under a
/// scheme: every scheme-routed window maps to an oracle window (in
/// emission order, round-robin over the corpus), the scheme chooses its
/// layer, the fleet sim charges the load-dependent delay, and the layer's
/// frozen detector verdict is scored against ground truth. Each
/// scheme-routed window's reward is scored under `reward` with the
/// observed delay (drops pay the drop penalty).
///
/// `probe_cohort` selects *which* windows the scheme routes:
///
/// * `None` — the scheme routes **every** cohort's windows (the
///   scenario's own routing plans are ignored);
/// * `Some(c)` — only cohort `c`'s windows are scheme-routed and scored;
///   the other cohorts keep their scenario routing plans and act as
///   **background load**. This is the shared-fleet setting: the adaptive
///   scheme must live with (and route around) congestion it does not
///   control — e.g. a probe cohort inside `edge_saturated`'s pegged edge
///   queue.
///
/// For [`SchemeKind::Successive`] each window is routed to the layer
/// where the escalation would stop (the intermediate hops' delays are not
/// modelled — only the serving layer's queueing is).
/// [`SchemeKind::Adaptive`] accepts two kinds of policy, told apart by
/// input dimensionality:
///
/// * **static** (`input_dim == scaler.dim()`): greedy actions are
///   precomputed in one batched forward pass, as a routing table;
/// * **load-aware** (`input_dim == scaler.dim() + load dims` from
///   [`scenario_load_normalizer`]): routed per window on the live queue
///   state — the router the fleet-trained policy needs.
///
/// Deterministic: same scenario + oracle + policy ⇒ an identical
/// [`FleetStreamResult`], regardless of `HEC_THREADS`.
///
/// # Panics
///
/// Panics if the oracle is empty, `probe_cohort` is out of range,
/// `Adaptive` is requested without a policy and scaler, or the policy's
/// input dimension matches neither routing mode.
pub fn stream_through_fleet(
    scenario: &FleetScenario,
    oracle: &Oracle,
    kind: SchemeKind,
    mut policy: Option<&mut PolicyNetwork>,
    scaler: Option<&ContextScaler>,
    reward: &RewardModel,
    probe_cohort: Option<u32>,
) -> FleetStreamResult {
    assert!(!oracle.is_empty(), "cannot stream an empty oracle corpus");
    if let Some(pc) = probe_cohort {
        assert!(
            (pc as usize) < scenario.cohorts.len(),
            "probe cohort {pc} out of range ({} cohorts)",
            scenario.cohorts.len()
        );
    }
    let n = oracle.len();
    let mut mode: FleetRouterMode<'_> = match (kind, policy.take()) {
        (SchemeKind::Adaptive, Some(p)) => {
            let s = scaler.expect("Adaptive needs a context scaler");
            let norm = scenario_load_normalizer(scenario);
            if p.input_dim() == s.dim() + norm.dims() {
                // Load-aware policy: routed per window on the live queue
                // state — no precomputable table.
                let scaled: Vec<Vec<f32>> =
                    oracle.outcomes.iter().map(|o| s.transform(&o.context)).collect();
                let scratch = Vec::with_capacity(p.input_dim());
                FleetRouterMode::LoadAware { policy: p, base: scaled, norm, scratch }
            } else {
                // Static policy (or a dimension mismatch, which the
                // table builder rejects with the full diagnostic).
                FleetRouterMode::Table(scheme_action_table(scenario, oracle, kind, Some(p), scaler))
            }
        }
        (_, p) => FleetRouterMode::Table(scheme_action_table(scenario, oracle, kind, p, scaler)),
    };

    let mut confusion = BinaryConfusion::new();
    let mut missed = 0u64;
    let mut reward_sum = 0.0f64;
    let mut routed = 0u64;
    let mut routed_latency = LatencyHist::new();
    // Every drop of the run, by layer and cause — background cohorts
    // included, so the totals reconcile against the fleet report.
    let mut drop_counts = vec![[0u64; 2]; scenario.topology().num_layers()];
    // Oracle index of each scheme-routed window, by sequence number
    // (`u32::MAX` = background window, not scored). Only needed when a
    // probe cohort leaves background windows interleaved in the stream.
    let mut oracle_of: Vec<u32> = match probe_cohort {
        Some(_) => vec![u32::MAX; scenario.total_windows() as usize],
        None => Vec::new(),
    };
    let mut probe_map = ProbeMap::new(probe_cohort, n);

    // The one-shard plan routes through the sharded coordinator's serial
    // fast path: exactly `FleetEngine::step`, so stateful (`FnMut`)
    // routers stay legal and the output is byte-identical to PR 3/4.
    let plan = ShardPlan::new(scenario, 1);
    let mut engine = ShardedFleetEngine::new(&plan);
    while let Some(ev) = {
        let mode = &mut mode;
        let oracle_of = &mut oracle_of;
        let probe_map = &mut probe_map;
        engine.step(&mut |ctx| match probe_map.oracle_index(ctx) {
            Some(i) => {
                if probe_cohort.is_some() {
                    oracle_of[ctx.seq as usize] = i as u32;
                }
                mode.route(ctx, i)
            }
            None => scenario.planned_layer(ctx.cohort, ctx.seq),
        })
    } {
        // Map the outcome back to its oracle window; background windows
        // under a probe cohort only contribute load, not scores.
        let index_of = |seq: u64| -> Option<usize> {
            match probe_cohort {
                None => Some((seq % n as u64) as usize),
                Some(_) => {
                    let i = oracle_of[seq as usize];
                    (i != u32::MAX).then_some(i as usize)
                }
            }
        };
        match ev {
            JobEvent::Served { seq, layer, latency_ms, .. } => {
                let Some(i) = index_of(seq) else { continue };
                confusion.record(oracle.verdict(i, layer), oracle.outcomes[i].truth);
                reward_sum += reward.reward_outcome(oracle.correct(i, layer), Some(latency_ms));
                routed_latency.record(latency_ms);
                routed += 1;
            }
            JobEvent::Dropped { seq, layer, reason, .. } => {
                let cause = match reason {
                    DropReason::QueueFull => 0,
                    DropReason::LinkSaturated => 1,
                };
                drop_counts[layer][cause] += 1;
                if index_of(seq).is_none() {
                    continue;
                }
                missed += 1;
                reward_sum += reward.reward_dropped();
                routed += 1;
            }
        }
    }
    let fleet = engine.report();
    let drops: Vec<DropBreakdown> = drop_counts
        .iter()
        .enumerate()
        .map(|(layer, c)| DropBreakdown { layer, queue: c[0], link: c[1] })
        .collect();
    let total_drops: u64 = drops.iter().map(|d| d.queue + d.link).sum();
    debug_assert_eq!(total_drops, fleet.dropped, "drop breakdown diverged from the fleet report");
    debug_assert_eq!(fleet.served + fleet.dropped, fleet.emitted, "window conservation violated");
    if hec_telemetry::ENABLED {
        let scheme = kind.to_string();
        for d in &drops {
            let layer = d.layer.to_string();
            if d.queue > 0 {
                hec_telemetry::counter_add(
                    "stream.drops",
                    &[("cause", "queue_full"), ("layer", &layer), ("scheme", &scheme)],
                    d.queue,
                );
            }
            if d.link > 0 {
                hec_telemetry::counter_add(
                    "stream.drops",
                    &[("cause", "link_saturated"), ("layer", &layer), ("scheme", &scheme)],
                    d.link,
                );
            }
        }
        hec_telemetry::counter_add("stream.missed", &[("scheme", &scheme)], missed);
        hec_telemetry::counter_add("stream.routed", &[("scheme", &scheme)], routed);
    }
    let mean_reward_x100 = 100.0 * reward_sum / routed.max(1) as f64;
    FleetStreamResult {
        scheme: kind,
        fleet,
        confusion,
        missed,
        drops,
        mean_reward_x100,
        routed_mean_ms: routed_latency.mean(),
        routed_p99_ms: routed_latency.quantile(0.99),
    }
}

/// Renders per-scheme fleet streaming results as CSV: one row per scheme
/// with detection quality next to the load-dependent latency figures.
pub fn fleet_stream_csv(results: &[FleetStreamResult]) -> String {
    let mut out = String::from(
        "scheme,emitted,served,missed,accuracy,f1,reward_x100,routed_mean_ms,routed_p99_ms,\
         mean_ms,p50_ms,p99_ms,iot_util,edge_util,cloud_util,edge_drop_rate,cloud_drop_rate\n",
    );
    for r in results {
        let layer = |l: usize| &r.fleet.layers[l];
        let _ = writeln!(
            out,
            "{},{},{},{},{:.6},{:.6},{:.4},{:.3},{:.3},{:.3},{:.3},{:.3},{:.6},{:.6},{:.6},{:.6},{:.6}",
            r.scheme,
            r.fleet.emitted,
            r.fleet.served,
            r.missed,
            r.accuracy(),
            r.f1(),
            r.mean_reward_x100,
            r.routed_mean_ms,
            r.routed_p99_ms,
            r.fleet.overall_mean_ms,
            r.fleet.overall_p50_ms,
            r.fleet.overall_p99_ms,
            layer(0).utilization,
            layer(1).utilization,
            layer(2).utilization,
            layer(1).drop_rate,
            layer(2).drop_rate,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::WindowOutcome;
    use hec_anomaly::ConfidenceRule;
    use hec_bandit::RewardModel;
    use hec_sim::{DatasetKind, HecTopology};

    fn oracle(n: usize) -> Oracle {
        let outcomes = (0..n)
            .map(|i| {
                let truth = i % 3 == 0;
                WindowOutcome {
                    truth,
                    min_log_pd: [-5.0, -5.0, if truth { -60.0 } else { -1.0 }],
                    anomalous_fraction: [
                        0.0,
                        if truth && i % 2 == 0 { 0.4 } else { 0.0 },
                        if truth { 0.4 } else { 0.0 },
                    ],
                    context: vec![i as f32],
                }
            })
            .collect();
        Oracle {
            outcomes,
            thresholds: [-10.0; 3],
            flag_fraction: 0.0,
            confidence: ConfidenceRule::default(),
        }
    }

    #[test]
    fn stream_length_matches_corpus() {
        let topo = HecTopology::paper_testbed(DatasetKind::Univariate);
        let ev = SchemeEvaluator::new(&topo, 384, RewardModel::new(0.0005));
        let o = oracle(30);
        let records = stream_records(&ev, &o, SchemeKind::Cloud, None, None);
        assert_eq!(records.len(), 30);
        assert!(records.iter().enumerate().all(|(i, r)| r.index == i));
    }

    #[test]
    fn cumulative_accuracy_is_monotone_series_of_running_mean() {
        let topo = HecTopology::paper_testbed(DatasetKind::Univariate);
        let ev = SchemeEvaluator::new(&topo, 384, RewardModel::new(0.0005));
        let o = oracle(30);
        let records = stream_records(&ev, &o, SchemeKind::Cloud, None, None);
        // Cloud is always correct in this synthetic oracle.
        let last = records.last().unwrap();
        assert_eq!(last.cumulative_accuracy, 1.0);
        assert_eq!(last.cumulative_f1, 1.0);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let topo = HecTopology::paper_testbed(DatasetKind::Univariate);
        let ev = SchemeEvaluator::new(&topo, 384, RewardModel::new(0.0005));
        let o = oracle(5);
        let csv = to_csv(&stream_records(&ev, &o, SchemeKind::IoTDevice, None, None));
        assert_eq!(csv.lines().count(), 6);
        assert!(csv.starts_with("index,truth"));
    }

    #[test]
    fn iot_stream_has_constant_low_delay() {
        let topo = HecTopology::paper_testbed(DatasetKind::Univariate);
        let ev = SchemeEvaluator::new(&topo, 384, RewardModel::new(0.0005));
        let o = oracle(10);
        let records = stream_records(&ev, &o, SchemeKind::IoTDevice, None, None);
        assert!(records.iter().all(|r| (r.delay_ms - 12.4).abs() < 1e-9));
        assert!(records.iter().all(|r| r.action == 0));
    }

    /// The cumulative accuracy/F1 at every stream position must equal the
    /// metrics recomputed from scratch over the prefix of (predicted,
    /// truth) pairs — the running confusion may never drift.
    #[test]
    fn cumulative_accounting_matches_prefix_recomputation() {
        let topo = HecTopology::paper_testbed(DatasetKind::Univariate);
        let ev = SchemeEvaluator::new(&topo, 384, RewardModel::new(0.0005));
        let o = oracle(50);
        // IoT misses every true anomaly in this oracle (mixed verdicts);
        // Cloud gets everything right — check the accounting on both.
        for kind in [SchemeKind::IoTDevice, SchemeKind::Cloud] {
            let records = stream_records(&ev, &o, kind, None, None);
            for (i, r) in records.iter().enumerate() {
                let prefix = BinaryConfusion::from_predictions(
                    records[..=i].iter().map(|p| (p.predicted, p.truth)),
                );
                assert_eq!(r.cumulative_accuracy, prefix.accuracy(), "accuracy drift at {i}");
                assert_eq!(r.cumulative_f1, prefix.f1(), "f1 drift at {i}");
            }
        }
        // The IoT series genuinely varies (neither all-correct nor all-wrong).
        let last = *stream_records(&ev, &o, SchemeKind::IoTDevice, None, None).last().unwrap();
        assert!(last.cumulative_accuracy > 0.0 && last.cumulative_accuracy < 1.0);
    }

    /// A tiny fleet scenario for driver tests: `devices` devices, 10
    /// windows each, one window per `period_ms`.
    fn fleet_scenario(devices: u32, period_ms: f64) -> FleetScenario {
        use hec_sim::fleet::{CohortSpec, FleetScale, RoutePlan};
        let mut sc = FleetScenario::light_load(FleetScale::Quick);
        sc.name = "driver_test".into();
        sc.trace_interval_ms = 10.0;
        // RoutePlan is overridden by the scheme router.
        sc.cohorts = vec![CohortSpec::uniform(devices, 10, period_ms, 0.0, RoutePlan::Fixed(0))];
        sc
    }

    fn rm() -> RewardModel {
        RewardModel::new(0.0005)
    }

    #[test]
    fn fleet_stream_unloaded_cloud_matches_table2() {
        let sc = fleet_scenario(5, 10_000.0);
        let o = oracle(30);
        let r = stream_through_fleet(&sc, &o, SchemeKind::Cloud, None, None, &rm(), None);
        assert_eq!(r.fleet.served, 50);
        assert_eq!(r.missed, 0);
        assert!((r.fleet.layers[2].mean_ms - 504.5).abs() < 1e-9);
        // Cloud verdicts are always correct in this synthetic oracle.
        assert_eq!(r.accuracy(), 1.0);
        assert_eq!(r.f1(), 1.0);
        // Unloaded cloud reward matches the static table exactly:
        // 100 × (1 − C(504.5)).
        let expected = 100.0 * rm().reward(true, 504.5);
        assert!((r.mean_reward_x100 - expected).abs() < 1e-9, "{}", r.mean_reward_x100);
    }

    #[test]
    fn fleet_stream_load_changes_the_delay_of_the_same_action() {
        // Same scheme, same corpus — a 100× faster fleet must pay more
        // per window at the edge than the slow fleet (queueing).
        let o = oracle(30);
        let slow = stream_through_fleet(
            &fleet_scenario(10, 10_000.0),
            &o,
            SchemeKind::Edge,
            None,
            None,
            &rm(),
            None,
        );
        let mut fast_sc = fleet_scenario(200, 4.0);
        fast_sc.batch_max = 1;
        let fast = stream_through_fleet(&fast_sc, &o, SchemeKind::Edge, None, None, &rm(), None);
        assert!(
            fast.fleet.layers[1].p99_ms > slow.fleet.layers[1].p99_ms + 50.0,
            "fast p99 {} vs slow p99 {}",
            fast.fleet.layers[1].p99_ms,
            slow.fleet.layers[1].p99_ms
        );
        // The observed-delay reward must fall with the load even though
        // the static table would call both runs identical.
        assert!(
            fast.mean_reward_x100 < slow.mean_reward_x100,
            "fast {} vs slow {}",
            fast.mean_reward_x100,
            slow.mean_reward_x100
        );
    }

    #[test]
    fn fleet_stream_adaptive_routes_by_policy_and_is_thread_invariant() {
        let o = oracle(60);
        let contexts = o.contexts();
        let scaler = hec_bandit::ContextScaler::fit(&contexts);
        let mut policy = PolicyNetwork::new(1, 8, 3, 0);
        let sc = fleet_scenario(20, 50.0);

        let mut run = |threads: usize| {
            crate::parallel::with_thread_count(threads, || {
                stream_through_fleet(
                    &sc,
                    &o,
                    SchemeKind::Adaptive,
                    Some(&mut policy),
                    Some(&scaler),
                    &rm(),
                    None,
                )
            })
        };
        let serial = run(1);
        let parallel = run(2);
        assert_eq!(serial, parallel, "fleet stream must not depend on HEC_THREADS");
        assert_eq!(serial.fleet.served + serial.missed, serial.fleet.emitted);
    }

    /// A load-aware policy (input = base context + load features) must be
    /// routed per window on the live queue state, deterministically.
    #[test]
    fn fleet_stream_routes_load_aware_policies() {
        let o = oracle(60);
        let scaler = hec_bandit::ContextScaler::fit(&o.contexts());
        let sc = fleet_scenario(20, 50.0);
        let norm = scenario_load_normalizer(&sc);
        let mut policy = PolicyNetwork::new(scaler.dim() + norm.dims(), 8, 3, 0);

        let a = stream_through_fleet(
            &sc,
            &o,
            SchemeKind::Adaptive,
            Some(&mut policy),
            Some(&scaler),
            &rm(),
            None,
        );
        let b = stream_through_fleet(
            &sc,
            &o,
            SchemeKind::Adaptive,
            Some(&mut policy),
            Some(&scaler),
            &rm(),
            None,
        );
        assert_eq!(a, b, "load-aware routing must be deterministic");
        assert_eq!(a.fleet.served + a.missed, a.fleet.emitted);
    }

    #[test]
    #[should_panic(expected = "matches neither")]
    fn fleet_stream_rejects_mismatched_policy_dims() {
        let o = oracle(10);
        let scaler = hec_bandit::ContextScaler::fit(&o.contexts());
        let sc = fleet_scenario(5, 1_000.0);
        let mut policy = PolicyNetwork::new(scaler.dim() + 1, 8, 3, 0);
        let _ = stream_through_fleet(
            &sc,
            &o,
            SchemeKind::Adaptive,
            Some(&mut policy),
            Some(&scaler),
            &rm(),
            None,
        );
    }

    /// Dropped windows must show up in the reward as the explicit drop
    /// penalty: a saturated run's mean reward sits below what its served
    /// windows alone would suggest.
    #[test]
    fn fleet_stream_charges_drops_the_penalty() {
        let o = oracle(30);
        let mut sc = fleet_scenario(200, 4.0);
        sc.batch_max = 1;
        sc.queue_capacity = 50;
        let r = stream_through_fleet(&sc, &o, SchemeKind::Edge, None, None, &rm(), None);
        assert!(r.missed > 0, "scenario failed to shed load");
        // Recompute the aggregate from the parts: served mean reward and
        // the −100 penalty per miss.
        let served_sum = r.mean_reward_x100 * r.fleet.emitted as f64 / 100.0 + r.missed as f64;
        let served_mean = 100.0 * served_sum / r.fleet.served as f64;
        assert!(served_mean > r.mean_reward_x100, "penalty not applied");
    }

    #[test]
    fn fleet_stream_csv_has_one_row_per_scheme() {
        let o = oracle(20);
        let sc = fleet_scenario(5, 1_000.0);
        let results: Vec<FleetStreamResult> = [SchemeKind::IoTDevice, SchemeKind::Successive]
            .into_iter()
            .map(|kind| stream_through_fleet(&sc, &o, kind, None, None, &rm(), None))
            .collect();
        let csv = fleet_stream_csv(&results);
        assert!(csv.starts_with("scheme,emitted"));
        assert!(csv.lines().next().unwrap().contains("reward_x100"));
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.contains("IoT Device"));
    }
}
