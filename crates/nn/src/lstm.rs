//! LSTM cell with truncation-free backpropagation through time, plus a
//! bidirectional wrapper.
//!
//! Gate layout follows the classic formulation (and Keras' kernel packing):
//! for input `x_t` (batch × input_dim) and previous state `(h, c)`:
//!
//! ```text
//! z  = x_t·Wx + h_{t-1}·Wh + b          (batch × 4H, split [i | f | g | o])
//! i  = σ(z_i)    f = σ(z_f)    g = tanh(z_g)    o = σ(z_o)
//! c_t = f ⊙ c_{t-1} + i ⊙ g
//! h_t = o ⊙ tanh(c_t)
//! ```
//!
//! The backward pass is validated against finite differences in the tests.

use rand::Rng;

use hec_tensor::{init, Matrix};

use crate::activation::sigmoid;
use crate::workspace::Buf;

/// The recurrent state `(h, c)` of an [`Lstm`].
#[derive(Debug, Clone, PartialEq)]
pub struct LstmState {
    /// Hidden state (batch × hidden).
    pub h: Matrix,
    /// Cell state (batch × hidden).
    pub c: Matrix,
}

impl LstmState {
    /// All-zero state for a batch of the given size.
    ///
    /// # Panics
    ///
    /// Panics if `batch` or `hidden` is zero.
    pub fn zeros(batch: usize, hidden: usize) -> Self {
        Self { h: Matrix::zeros(batch, hidden), c: Matrix::zeros(batch, hidden) }
    }

    /// Concatenates two states along the feature axis (used by the
    /// bidirectional encoder to merge forward/backward summaries).
    pub fn concat(&self, other: &LstmState) -> LstmState {
        LstmState { h: self.h.hconcat(&other.h), c: self.c.hconcat(&other.c) }
    }
}

/// Extracts a gate's column block from the packed pre-activation and applies
/// its nonlinearity, in one pass (one allocation — the gate matrix itself,
/// which BPTT keeps as cache).
fn gate_block(z: &Matrix, start: usize, width: usize, f: impl Fn(f32) -> f32) -> Matrix {
    let mut out = Matrix::zeros(z.rows(), width);
    for r in 0..z.rows() {
        let src = &z.row(r)[start..start + width];
        for (d, &s) in out.row_mut(r).iter_mut().zip(src.iter()) {
            *d = f(s);
        }
    }
    out
}

/// Per-step cache for BPTT.
struct StepCache {
    x: Matrix,
    h_prev: Matrix,
    c_prev: Matrix,
    i: Matrix,
    f: Matrix,
    g: Matrix,
    o: Matrix,
    #[allow(dead_code)]
    c: Matrix,
    tanh_c: Matrix,
}

/// A single-layer LSTM.
///
/// # Example
///
/// ```rust
/// use hec_nn::{Lstm, LstmState};
/// use hec_tensor::Matrix;
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let mut rng = StdRng::seed_from_u64(0);
/// let mut lstm = Lstm::new(&mut rng, 3, 8);
/// let xs = vec![Matrix::ones(2, 3); 5]; // 5 timesteps, batch of 2
/// let hs = lstm.forward_seq(&xs, false);
/// assert_eq!(hs.len(), 5);
/// assert_eq!(hs[4].h.shape(), (2, 8));
/// ```
pub struct Lstm {
    wx: Matrix, // input_dim × 4H
    wh: Matrix, // H × 4H
    b: Matrix,  // 1 × 4H
    grad_wx: Matrix,
    grad_wh: Matrix,
    grad_b: Matrix,
    input_dim: usize,
    hidden: usize,
    caches: Vec<StepCache>,
    scratch: LstmScratch,
}

/// Reusable buffers so forward steps and BPTT perform no matmul allocations.
#[derive(Default)]
struct LstmScratch {
    /// Pre-activation `x·Wx` (then summed with `zh` and the bias).
    z: Buf,
    /// Recurrent pre-activation `h·Wh`.
    zh: Buf,
    /// BPTT: gradient on `h_t` (injected + recurrent).
    dh: Buf,
    /// BPTT: gradient on `c_t`.
    dc: Buf,
    /// BPTT: gate pre-activation gradients, `batch × 4H`.
    dz: Buf,
    /// BPTT: recurrent hidden gradient flowing to step `t−1`.
    dh_next: Buf,
    /// BPTT: recurrent cell gradient flowing to step `t−1`.
    dc_next: Buf,
    /// Staging for the `Wx` gradient product before accumulation.
    gwx: Buf,
    /// Staging for the `Wh` gradient product before accumulation.
    gwh: Buf,
    /// Staging for the bias gradient row before accumulation.
    gb: Buf,
}

impl Lstm {
    /// Creates an LSTM with Glorot-uniform kernels and zero bias, except the
    /// forget-gate bias which is initialised to 1 (the standard trick to ease
    /// early gradient flow).
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(rng: &mut impl Rng, input_dim: usize, hidden: usize) -> Self {
        assert!(input_dim > 0 && hidden > 0, "lstm dimensions must be non-zero");
        let mut b = Matrix::zeros(1, 4 * hidden);
        for j in hidden..2 * hidden {
            b[(0, j)] = 1.0; // forget gate bias
        }
        Self {
            wx: init::glorot_uniform(rng, input_dim, 4 * hidden),
            wh: init::glorot_uniform(rng, hidden, 4 * hidden),
            b,
            grad_wx: Matrix::zeros(input_dim, 4 * hidden),
            grad_wh: Matrix::zeros(hidden, 4 * hidden),
            grad_b: Matrix::zeros(1, 4 * hidden),
            input_dim,
            hidden,
            caches: Vec::new(),
            scratch: LstmScratch::default(),
        }
    }

    /// Input dimensionality.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Hidden size `H`.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Number of trainable scalars: `4H·(input_dim + H + 1)`.
    pub fn param_count(&self) -> usize {
        self.wx.len() + self.wh.len() + self.b.len()
    }

    /// Clears cached steps (call before reusing for a new sequence when
    /// driving [`Lstm::step`] manually).
    pub fn clear_cache(&mut self) {
        self.caches.clear();
    }

    /// One timestep. Caches intermediates when `training` is true.
    ///
    /// # Panics
    ///
    /// Panics if shapes disagree with the constructor dimensions.
    pub fn step(&mut self, x: &Matrix, state: &LstmState, training: bool) -> LstmState {
        let batch = x.rows();
        let h = self.hidden;
        self.compute_preactivation(x, state);

        if !training {
            let mut out = LstmState::zeros(batch, h);
            self.gates_into(state, &mut out);
            return out;
        }

        // Training keeps every gate as an owned matrix for BPTT, so these
        // allocations are the step's cache, not temporaries.
        let z = self.scratch.z.get();
        let i = gate_block(z, 0, h, sigmoid);
        let f = gate_block(z, h, h, sigmoid);
        let g = gate_block(z, 2 * h, h, f32::tanh);
        let o = gate_block(z, 3 * h, h, sigmoid);

        let mut c = Matrix::zeros(batch, h);
        for (((cv, &fv), (&cp, &iv)), &gv) in c
            .as_mut_slice()
            .iter_mut()
            .zip(f.as_slice())
            .zip(state.c.as_slice().iter().zip(i.as_slice()))
            .zip(g.as_slice())
        {
            *cv = fv * cp + iv * gv;
        }
        let tanh_c = c.map(f32::tanh);
        let h_new = o.hadamard(&tanh_c);

        self.caches.push(StepCache {
            x: x.clone(),
            h_prev: state.h.clone(),
            c_prev: state.c.clone(),
            i,
            f,
            g,
            o,
            c: c.clone(),
            tanh_c,
        });
        LstmState { h: h_new, c }
    }

    /// Inference-only timestep writing into a caller-owned state — the fully
    /// allocation-free path (no gate matrices, no cache).
    ///
    /// # Panics
    ///
    /// Panics if shapes disagree with the constructor dimensions.
    pub fn step_into(&mut self, x: &Matrix, state: &LstmState, out: &mut LstmState) {
        self.compute_preactivation(x, state);
        self.gates_into(state, out);
    }

    /// `z = x·Wx + h·Wh + b` into the scratch buffer.
    fn compute_preactivation(&mut self, x: &Matrix, state: &LstmState) {
        assert_eq!(x.cols(), self.input_dim, "lstm input width mismatch");
        assert_eq!(state.h.cols(), self.hidden, "lstm state width mismatch");
        assert_eq!(x.rows(), state.h.rows(), "lstm batch mismatch");
        let batch = x.rows();
        let h4 = 4 * self.hidden;
        let z = self.scratch.z.shaped(batch, h4);
        x.matmul_into(&self.wx, z);
        let zh = self.scratch.zh.shaped(batch, h4);
        state.h.matmul_into(&self.wh, zh);
        *z += &*zh;
        z.add_row_broadcast_assign(&self.b);
    }

    /// Applies the gate nonlinearities to the scratch pre-activation and
    /// writes the next `(h, c)` into `out`, fused and allocation-free.
    fn gates_into(&mut self, state: &LstmState, out: &mut LstmState) {
        let h = self.hidden;
        let z = self.scratch.z.get();
        let batch = z.rows();
        out.h.resize(batch, h);
        out.c.resize(batch, h);
        for r in 0..batch {
            let zrow = z.row(r);
            let (zi, rest) = zrow.split_at(h);
            let (zf, rest) = rest.split_at(h);
            let (zg, zo) = rest.split_at(h);
            let cp = state.c.row(r);
            let h_row = out.h.row_mut(r);
            let c_row = out.c.row_mut(r);
            for (idx, (hv, cv)) in h_row.iter_mut().zip(c_row.iter_mut()).enumerate() {
                let i_v = sigmoid(zi[idx]);
                let f_v = sigmoid(zf[idx]);
                let g_v = zg[idx].tanh();
                let o_v = sigmoid(zo[idx]);
                let c_v = f_v * cp[idx] + i_v * g_v;
                *hv = o_v * c_v.tanh();
                *cv = c_v;
            }
        }
    }

    /// Runs the whole sequence from a zero initial state, returning the state
    /// after every step. Clears any previous cache first.
    ///
    /// # Panics
    ///
    /// Panics if `xs` is empty or shapes disagree.
    pub fn forward_seq(&mut self, xs: &[Matrix], training: bool) -> Vec<LstmState> {
        assert!(!xs.is_empty(), "empty sequence");
        let state0 = LstmState::zeros(xs[0].rows(), self.hidden);
        self.forward_seq_from(xs, &state0, training)
    }

    /// Runs the whole sequence from an explicit initial state.
    ///
    /// # Panics
    ///
    /// Panics if `xs` is empty or shapes disagree.
    pub fn forward_seq_from(
        &mut self,
        xs: &[Matrix],
        state0: &LstmState,
        training: bool,
    ) -> Vec<LstmState> {
        assert!(!xs.is_empty(), "empty sequence");
        if training {
            self.caches.clear();
        }
        let mut states = Vec::with_capacity(xs.len());
        let mut state = state0.clone();
        for x in xs {
            state = self.step(x, &state, training);
            states.push(state.clone());
        }
        states
    }

    /// BPTT over the cached sequence.
    ///
    /// * `dh_each[t]` — gradient w.r.t. `h_t` injected at step `t` (pass a
    ///   zero matrix where no gradient arrives);
    /// * `d_final` — extra gradient on the *last* state `(h_T, c_T)`, e.g.
    ///   flowing back from a decoder initialised with the encoder state.
    ///
    /// Returns the per-step input gradients and the gradient w.r.t. the
    /// initial state. Parameter gradients are **accumulated** internally.
    /// Consumes the cache.
    ///
    /// # Panics
    ///
    /// Panics if `dh_each.len()` differs from the number of cached steps.
    pub fn backward_seq(
        &mut self,
        dh_each: &[Matrix],
        d_final: Option<&LstmState>,
    ) -> (Vec<Matrix>, LstmState) {
        assert_eq!(
            dh_each.len(),
            self.caches.len(),
            "gradient count {} does not match cached steps {}",
            dh_each.len(),
            self.caches.len()
        );
        let t_len = self.caches.len();
        let batch = self.caches[0].x.rows();
        let h = self.hidden;
        for (t, dh_t) in dh_each.iter().enumerate() {
            assert_eq!(dh_t.shape(), (batch, h), "dh_each[{t}]: wrong gradient shape");
        }

        let scratch = &mut self.scratch;
        {
            let dh_next = scratch.dh_next.zeroed(batch, h);
            let dc_next = scratch.dc_next.zeroed(batch, h);
            if let Some(df) = d_final {
                *dh_next += &df.h;
                *dc_next += &df.c;
            }
        }

        let mut dxs = vec![Matrix::zeros(batch, self.input_dim); t_len];
        let caches: Vec<StepCache> = self.caches.drain(..).collect();

        for (t, cache) in caches.iter().enumerate().rev() {
            // dh = dh_each[t] + dh_next; dc = dc_next + dh ⊙ o ⊙ (1 − tanh²c)
            // — the contribution flowing through h_t = o ⊙ tanh(c_t). Fused
            // into scratch, preserving the elementwise expression order of
            // the former hadamard chains exactly.
            {
                let dh = scratch.dh.shaped(batch, h);
                let dc = scratch.dc.shaped(batch, h);
                let dh_next = scratch.dh_next.get();
                let dc_next = scratch.dc_next.get();
                for idx in 0..batch * h {
                    let dh_v = dh_each[t].as_slice()[idx] + dh_next.as_slice()[idx];
                    let tc = cache.tanh_c.as_slice()[idx];
                    let o_v = cache.o.as_slice()[idx];
                    dh.as_mut_slice()[idx] = dh_v;
                    dc.as_mut_slice()[idx] =
                        dc_next.as_slice()[idx] + (dh_v * o_v) * (1.0 - tc * tc);
                }
            }

            // Gate pre-activation gradients, written straight into the
            // packed `batch × 4H` layout (no per-gate temporaries).
            {
                let dz = scratch.dz.shaped(batch, 4 * h);
                let dh = scratch.dh.get();
                let dc = scratch.dc.get();
                for r in 0..batch {
                    let dz_row = dz.row_mut(r);
                    let (dzi, rest) = dz_row.split_at_mut(h);
                    let (dzf, rest) = rest.split_at_mut(h);
                    let (dzg, dzo) = rest.split_at_mut(h);
                    let (i_r, f_r) = (cache.i.row(r), cache.f.row(r));
                    let (g_r, o_r) = (cache.g.row(r), cache.o.row(r));
                    let (cp_r, tc_r) = (cache.c_prev.row(r), cache.tanh_c.row(r));
                    let (dh_r, dc_r) = (dh.row(r), dc.row(r));
                    for idx in 0..h {
                        let (dcv, dhv) = (dc_r[idx], dh_r[idx]);
                        let (iv, fv, gv, ov) = (i_r[idx], f_r[idx], g_r[idx], o_r[idx]);
                        dzi[idx] = (dcv * gv) * (iv * (1.0 - iv));
                        dzf[idx] = (dcv * cp_r[idx]) * (fv * (1.0 - fv));
                        dzg[idx] = (dcv * iv) * (1.0 - gv * gv);
                        dzo[idx] = (dhv * tc_r[idx]) * (ov * (1.0 - ov));
                    }
                }
            }

            // Parameter gradients, staged through scratch so the kernel
            // products never allocate.
            let dz = scratch.dz.get();
            let gwx = scratch.gwx.shaped(self.input_dim, 4 * h);
            cache.x.t_matmul_into(dz, gwx);
            self.grad_wx += &*gwx;
            let gwh = scratch.gwh.shaped(h, 4 * h);
            cache.h_prev.t_matmul_into(dz, gwh);
            self.grad_wh += &*gwh;
            let gb = scratch.gb.shaped(1, 4 * h);
            dz.sum_rows_into(gb);
            self.grad_b += &*gb;

            dz.matmul_t_into(&self.wx, &mut dxs[t]);
            dz.matmul_t_into(&self.wh, scratch.dh_next.shaped(batch, h));
            let dc_next = scratch.dc_next.shaped(batch, h);
            let dc = scratch.dc.get();
            for ((o, &d), &fv) in
                dc_next.as_mut_slice().iter_mut().zip(dc.as_slice()).zip(cache.f.as_slice())
            {
                *o = d * fv;
            }
        }

        (dxs, LstmState { h: scratch.dh_next.get().clone(), c: scratch.dc_next.get().clone() })
    }

    /// Visits `(parameter, gradient)` pairs: `Wx`, `Wh`, `b`.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Matrix, &mut Matrix)) {
        f(&mut self.wx, &mut self.grad_wx);
        f(&mut self.wh, &mut self.grad_wh);
        f(&mut self.b, &mut self.grad_b);
    }

    /// Squared Frobenius norm of the kernels (`Wx`, `Wh`), excluding bias.
    pub fn kernel_norm_sq(&self) -> f32 {
        self.wx.frobenius_norm_sq() + self.wh.frobenius_norm_sq()
    }

    /// Adds `2·λ·W` to the kernel gradients (gradient of `λ‖W‖²`).
    pub fn apply_l2(&mut self, lambda: f32) {
        self.grad_wx.add_scaled(&self.wx, 2.0 * lambda);
        self.grad_wh.add_scaled(&self.wh, 2.0 * lambda);
    }
}

impl std::fmt::Debug for Lstm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Lstm(in={}, hidden={}, params={})",
            self.input_dim,
            self.hidden,
            self.param_count()
        )
    }
}

/// A bidirectional LSTM encoder: a forward and a backward [`Lstm`] whose
/// final states are concatenated — the encoder of BiLSTM-seq2seq-Cloud
/// (§II-A2: "learn both backward and forward directions of the input
/// sequence to encode information into encoded states").
pub struct BiLstm {
    forward: Lstm,
    backward: Lstm,
}

impl BiLstm {
    /// Creates a bidirectional LSTM; each direction has `hidden` units, so the
    /// concatenated summary has width `2·hidden`.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(rng: &mut impl Rng, input_dim: usize, hidden: usize) -> Self {
        Self {
            forward: Lstm::new(rng, input_dim, hidden),
            backward: Lstm::new(rng, input_dim, hidden),
        }
    }

    /// Per-direction hidden size.
    pub fn hidden(&self) -> usize {
        self.forward.hidden()
    }

    /// Total parameter count of both directions.
    pub fn param_count(&self) -> usize {
        self.forward.param_count() + self.backward.param_count()
    }

    /// Encodes a sequence; returns the concatenated final state
    /// `[h_fwd_T | h_bwd_T]`, `[c_fwd_T | c_bwd_T]` (batch × 2H each).
    ///
    /// # Panics
    ///
    /// Panics if `xs` is empty.
    pub fn encode(&mut self, xs: &[Matrix], training: bool) -> LstmState {
        assert!(!xs.is_empty(), "empty sequence");
        let fwd_states = self.forward.forward_seq(xs, training);
        let reversed: Vec<Matrix> = xs.iter().rev().cloned().collect();
        let bwd_states = self.backward.forward_seq(&reversed, training);
        let f_last = fwd_states.last().expect("non-empty");
        let b_last = bwd_states.last().expect("non-empty");
        f_last.concat(b_last)
    }

    /// BPTT given the gradient on the concatenated final state. Returns the
    /// per-step input gradients (sum of both directions' contributions).
    pub fn backward_from_state(&mut self, d_state: &LstmState) -> Vec<Matrix> {
        let h = self.hidden();
        let t_len = d_state_len(&self.forward);
        let batch = d_state.h.rows();
        let zeros: Vec<Matrix> = vec![Matrix::zeros(batch, h); t_len];

        let df = LstmState { h: d_state.h.slice_cols(0, h), c: d_state.c.slice_cols(0, h) };
        let db = LstmState { h: d_state.h.slice_cols(h, 2 * h), c: d_state.c.slice_cols(h, 2 * h) };
        let (dx_fwd, _) = self.forward.backward_seq(&zeros, Some(&df));
        let (dx_bwd_rev, _) = self.backward.backward_seq(&zeros, Some(&db));

        dx_fwd.into_iter().zip(dx_bwd_rev.into_iter().rev()).map(|(a, b)| &a + &b).collect()
    }

    /// Visits both directions' parameters.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Matrix, &mut Matrix)) {
        self.forward.visit_params(f);
        self.backward.visit_params(f);
    }

    /// Squared Frobenius norm of all kernels.
    pub fn kernel_norm_sq(&self) -> f32 {
        self.forward.kernel_norm_sq() + self.backward.kernel_norm_sq()
    }

    /// L2 gradient contribution for both directions.
    pub fn apply_l2(&mut self, lambda: f32) {
        self.forward.apply_l2(lambda);
        self.backward.apply_l2(lambda);
    }
}

fn d_state_len(lstm: &Lstm) -> usize {
    lstm.caches.len()
}

impl std::fmt::Debug for BiLstm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BiLstm(in={}, hidden={}×2)", self.forward.input_dim(), self.hidden())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn seq(rng: &mut StdRng, t: usize, batch: usize, dim: usize) -> Vec<Matrix> {
        (0..t).map(|_| hec_tensor::init::uniform(rng, batch, dim, -1.0, 1.0)).collect()
    }

    /// Loss = sum over all timesteps of sum(h_t).
    fn loss_of(lstm: &mut Lstm, xs: &[Matrix]) -> f32 {
        lstm.forward_seq(xs, false).iter().map(|s| s.h.sum()).sum()
    }

    #[test]
    fn shapes_are_correct() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut lstm = Lstm::new(&mut rng, 3, 5);
        let xs = seq(&mut rng, 4, 2, 3);
        let states = lstm.forward_seq(&xs, false);
        assert_eq!(states.len(), 4);
        for s in &states {
            assert_eq!(s.h.shape(), (2, 5));
            assert_eq!(s.c.shape(), (2, 5));
        }
    }

    #[test]
    fn param_count_formula() {
        let mut rng = StdRng::seed_from_u64(0);
        let lstm = Lstm::new(&mut rng, 18, 48);
        assert_eq!(lstm.param_count(), 4 * 48 * (18 + 48 + 1));
    }

    #[test]
    fn gradient_check_wx() {
        let mut rng = StdRng::seed_from_u64(21);
        let mut lstm = Lstm::new(&mut rng, 2, 3);
        let xs = seq(&mut rng, 3, 2, 2);

        let states = lstm.forward_seq(&xs, true);
        let dhs: Vec<Matrix> =
            states.iter().map(|s| Matrix::ones(s.h.rows(), s.h.cols())).collect();
        let _ = lstm.backward_seq(&dhs, None);
        let analytic = lstm.grad_wx.clone();

        let eps = 1e-2f32;
        for idx in 0..lstm.wx.len() {
            lstm.wx.as_mut_slice()[idx] += eps;
            let lp = loss_of(&mut lstm, &xs);
            lstm.wx.as_mut_slice()[idx] -= 2.0 * eps;
            let lm = loss_of(&mut lstm, &xs);
            lstm.wx.as_mut_slice()[idx] += eps;
            let numeric = (lp - lm) / (2.0 * eps);
            let a = analytic.as_slice()[idx];
            assert!(
                (a - numeric).abs() < 2e-2 * (1.0 + numeric.abs()),
                "wx[{idx}]: analytic {a} vs numeric {numeric}"
            );
        }
    }

    #[test]
    fn gradient_check_wh_and_bias() {
        let mut rng = StdRng::seed_from_u64(33);
        let mut lstm = Lstm::new(&mut rng, 2, 3);
        let xs = seq(&mut rng, 4, 1, 2);

        let states = lstm.forward_seq(&xs, true);
        let dhs: Vec<Matrix> =
            states.iter().map(|s| Matrix::ones(s.h.rows(), s.h.cols())).collect();
        let _ = lstm.backward_seq(&dhs, None);
        let analytic_wh = lstm.grad_wh.clone();
        let analytic_b = lstm.grad_b.clone();

        let eps = 1e-2f32;
        for idx in 0..lstm.wh.len() {
            lstm.wh.as_mut_slice()[idx] += eps;
            let lp = loss_of(&mut lstm, &xs);
            lstm.wh.as_mut_slice()[idx] -= 2.0 * eps;
            let lm = loss_of(&mut lstm, &xs);
            lstm.wh.as_mut_slice()[idx] += eps;
            let numeric = (lp - lm) / (2.0 * eps);
            let a = analytic_wh.as_slice()[idx];
            assert!(
                (a - numeric).abs() < 2e-2 * (1.0 + numeric.abs()),
                "wh[{idx}]: analytic {a} vs numeric {numeric}"
            );
        }
        for idx in 0..lstm.b.len() {
            lstm.b.as_mut_slice()[idx] += eps;
            let lp = loss_of(&mut lstm, &xs);
            lstm.b.as_mut_slice()[idx] -= 2.0 * eps;
            let lm = loss_of(&mut lstm, &xs);
            lstm.b.as_mut_slice()[idx] += eps;
            let numeric = (lp - lm) / (2.0 * eps);
            let a = analytic_b.as_slice()[idx];
            assert!(
                (a - numeric).abs() < 2e-2 * (1.0 + numeric.abs()),
                "b[{idx}]: analytic {a} vs numeric {numeric}"
            );
        }
    }

    #[test]
    fn gradient_check_inputs() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut lstm = Lstm::new(&mut rng, 2, 3);
        let xs = seq(&mut rng, 3, 1, 2);

        let states = lstm.forward_seq(&xs, true);
        let dhs: Vec<Matrix> = states.iter().map(|s| Matrix::ones(1, s.h.cols())).collect();
        let (dxs, _) = lstm.backward_seq(&dhs, None);

        let eps = 1e-2f32;
        for t in 0..xs.len() {
            for idx in 0..xs[t].len() {
                let mut xp = xs.clone();
                xp[t].as_mut_slice()[idx] += eps;
                let mut xm = xs.clone();
                xm[t].as_mut_slice()[idx] -= eps;
                let numeric = (loss_of(&mut lstm, &xp) - loss_of(&mut lstm, &xm)) / (2.0 * eps);
                let a = dxs[t].as_slice()[idx];
                assert!(
                    (a - numeric).abs() < 2e-2 * (1.0 + numeric.abs()),
                    "x[{t}][{idx}]: analytic {a} vs numeric {numeric}"
                );
            }
        }
    }

    #[test]
    fn step_into_matches_step() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut lstm = Lstm::new(&mut rng, 3, 5);
        let x = hec_tensor::init::uniform(&mut rng, 2, 3, -1.0, 1.0);
        let state = LstmState {
            h: hec_tensor::init::uniform(&mut rng, 2, 5, -1.0, 1.0),
            c: hec_tensor::init::uniform(&mut rng, 2, 5, -1.0, 1.0),
        };
        let by_value = lstm.step(&x, &state, false);
        // Wrong-shaped buffer on purpose: step_into must resize it.
        let mut into = LstmState::zeros(1, 5);
        lstm.step_into(&x, &state, &mut into);
        assert_eq!(into, by_value);
        // Training steps agree with inference steps on the produced state.
        let trained = lstm.step(&x, &state, true);
        assert_eq!(trained, by_value);
        lstm.clear_cache();
    }

    #[test]
    fn final_state_gradient_flows_to_initial_state() {
        // Encoder-style: gradient only on the last state.
        let mut rng = StdRng::seed_from_u64(8);
        let mut lstm = Lstm::new(&mut rng, 2, 3);
        let xs = seq(&mut rng, 3, 1, 2);
        let _ = lstm.forward_seq(&xs, true);
        let zeros: Vec<Matrix> = (0..3).map(|_| Matrix::zeros(1, 3)).collect();
        let d_final = LstmState { h: Matrix::ones(1, 3), c: Matrix::ones(1, 3) };
        let (dxs, d0) = lstm.backward_seq(&zeros, Some(&d_final));
        assert!(dxs.iter().any(|d| d.frobenius_norm() > 0.0));
        assert!(d0.h.frobenius_norm() > 0.0 || d0.c.frobenius_norm() > 0.0);
    }

    #[test]
    fn forget_bias_initialised_to_one() {
        let mut rng = StdRng::seed_from_u64(0);
        let lstm = Lstm::new(&mut rng, 2, 4);
        for j in 0..4 {
            assert_eq!(lstm.b[(0, j)], 0.0); // input gate
            assert_eq!(lstm.b[(0, 4 + j)], 1.0); // forget gate
        }
    }

    #[test]
    fn bilstm_state_width_is_double() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut bi = BiLstm::new(&mut rng, 3, 5);
        let xs = seq(&mut rng, 4, 2, 3);
        let s = bi.encode(&xs, false);
        assert_eq!(s.h.shape(), (2, 10));
        assert_eq!(s.c.shape(), (2, 10));
    }

    #[test]
    fn bilstm_sees_both_directions() {
        // A sequence and its reverse give different forward summaries but the
        // bilstm's concatenated state "swaps halves" in a way that keeps the
        // information; minimally: encoding differs for different sequences.
        let mut rng = StdRng::seed_from_u64(0);
        let mut bi = BiLstm::new(&mut rng, 2, 4);
        let xs = seq(&mut rng, 5, 1, 2);
        let rev: Vec<Matrix> = xs.iter().rev().cloned().collect();
        let a = bi.encode(&xs, false);
        let b = bi.encode(&rev, false);
        assert!((&a.h - &b.h).frobenius_norm() > 1e-6);
    }

    #[test]
    fn bilstm_gradient_check_inputs() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut bi = BiLstm::new(&mut rng, 2, 3);
        let xs = seq(&mut rng, 3, 1, 2);

        let s = bi.encode(&xs, true);
        let d = LstmState { h: Matrix::ones(1, s.h.cols()), c: Matrix::zeros(1, s.c.cols()) };
        let dxs = bi.backward_from_state(&d);

        let loss = |bi: &mut BiLstm, xs: &[Matrix]| bi.encode(xs, false).h.sum();
        let eps = 1e-2f32;
        for t in 0..xs.len() {
            for idx in 0..xs[t].len() {
                let mut xp = xs.to_vec();
                xp[t].as_mut_slice()[idx] += eps;
                let mut xm = xs.to_vec();
                xm[t].as_mut_slice()[idx] -= eps;
                let numeric = (loss(&mut bi, &xp) - loss(&mut bi, &xm)) / (2.0 * eps);
                let a = dxs[t].as_slice()[idx];
                assert!(
                    (a - numeric).abs() < 2e-2 * (1.0 + numeric.abs()),
                    "x[{t}][{idx}]: analytic {a} vs numeric {numeric}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "empty sequence")]
    fn empty_sequence_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut lstm = Lstm::new(&mut rng, 2, 2);
        let _ = lstm.forward_seq(&[], false);
    }
}
