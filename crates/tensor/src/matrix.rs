//! Row-major dense `f32` matrix.
//!
//! [`Matrix`] is deliberately small: it implements exactly the operations the
//! neural-network substrate ([`hec-nn`](../../nn)) and the Gaussian scorer
//! ([`crate::stats`]) need, with validated dimensions and no unsafe code.

use std::fmt;
use std::ops::{Add, AddAssign, Index, IndexMut, Mul, Neg, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A dense, row-major `f32` matrix.
///
/// # Example
///
/// ```rust
/// use hec_tensor::Matrix;
///
/// let m = Matrix::zeros(2, 3);
/// assert_eq!(m.rows(), 2);
/// assert_eq!(m.cols(), 3);
/// assert_eq!(m[(1, 2)], 0.0);
/// ```
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self::filled(rows, cols, 0.0)
    }

    /// Creates a `rows × cols` matrix filled with ones.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn ones(rows: usize, cols: usize) -> Self {
        Self::filled(rows, cols, 1.0)
    }

    /// Creates a `rows × cols` matrix with every entry set to `value`.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn filled(rows: usize, cols: usize, value: f32) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        Self { rows, cols, data: vec![value; rows * cols] }
    }

    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols` or either dimension is zero.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} does not match {rows}x{cols}",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Creates a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty or rows have differing lengths.
    ///
    /// # Example
    ///
    /// ```rust
    /// use hec_tensor::Matrix;
    /// let m = Matrix::from_rows(&[&[1.0, 2.0][..], &[3.0, 4.0][..]]);
    /// assert_eq!(m[(1, 0)], 3.0);
    /// ```
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        assert!(!rows.is_empty(), "matrix must have at least one row");
        let cols = rows[0].len();
        assert!(cols > 0, "matrix rows must be non-empty");
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(r.len(), cols, "row {i} has length {} (expected {cols})", r.len());
            data.extend_from_slice(r);
        }
        Self { rows: rows.len(), cols, data }
    }

    /// Creates a 1×n row vector from a slice.
    ///
    /// # Panics
    ///
    /// Panics if `v` is empty.
    pub fn row_vector(v: &[f32]) -> Self {
        Self::from_vec(1, v.len(), v.to_vec())
    }

    /// Creates an n×1 column vector from a slice.
    ///
    /// # Panics
    ///
    /// Panics if `v` is empty.
    pub fn col_vector(v: &[f32]) -> Self {
        Self::from_vec(v.len(), 1, v.to_vec())
    }

    /// Creates the n×n identity matrix.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn eye(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Always `false`: matrices are validated to be non-empty at construction.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Flat row-major view of the data.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat row-major view of the data.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix and returns the flat row-major buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Borrows row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "row index {r} out of bounds ({} rows)", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrows row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(r < self.rows, "row index {r} out of bounds ({} rows)", self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies column `c` into a fresh `Vec`.
    ///
    /// Prefer [`Matrix::col_iter`] in hot paths — it walks the same elements
    /// without allocating.
    ///
    /// # Panics
    ///
    /// Panics if `c >= cols`.
    pub fn col(&self, c: usize) -> Vec<f32> {
        self.col_iter(c).collect()
    }

    /// Non-allocating strided iterator over column `c`, top to bottom.
    ///
    /// # Panics
    ///
    /// Panics if `c >= cols`.
    ///
    /// # Example
    ///
    /// ```rust
    /// use hec_tensor::Matrix;
    /// let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
    /// assert_eq!(m.col_iter(1).collect::<Vec<_>>(), vec![2.0, 4.0]);
    /// ```
    pub fn col_iter(&self, c: usize) -> impl Iterator<Item = f32> + '_ {
        assert!(c < self.cols, "col index {c} out of bounds ({} cols)", self.cols);
        self.data[c..].iter().step_by(self.cols).copied()
    }

    /// Reshapes the matrix to `rows × cols` **reusing the existing
    /// allocation** whenever its capacity allows. Contents are unspecified
    /// afterwards; callers are expected to overwrite (this is the primitive
    /// behind the `_into` buffer-reuse convention).
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn resize(&mut self, rows: usize, cols: usize) {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        self.data.resize(rows * cols, 0.0);
        self.rows = rows;
        self.cols = cols;
    }

    /// Sets every element to `value` in place.
    pub fn fill(&mut self, value: f32) {
        self.data.fill(value);
    }

    /// Makes `self` an exact copy of `src`, reusing the existing allocation
    /// when possible.
    pub fn copy_from(&mut self, src: &Matrix) {
        self.resize(src.rows, src.cols);
        self.data.copy_from_slice(&src.data);
    }

    /// Iterator over rows as slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks_exact(self.cols)
    }

    /// Matrix product `self · rhs`.
    ///
    /// Allocates the output; hot paths should prefer [`Matrix::matmul_into`]
    /// with a reused buffer. Both route through the shared cache-blocked
    /// kernel in [`crate::kernel`].
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != rhs.rows`.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        crate::kernel::count_matmul_alloc();
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        self.matmul_into(rhs, &mut out);
        out
    }

    /// `self · rhs` written into `out` (resized in place, reusing its
    /// allocation when possible).
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != rhs.rows`.
    pub fn matmul_into(&self, rhs: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul dimension mismatch: {}x{} · {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        out.resize(self.rows, rhs.cols);
        crate::kernel::gemm_nn(
            self.rows,
            self.cols,
            rhs.cols,
            &self.data,
            &rhs.data,
            &mut out.data,
        );
    }

    /// `selfᵀ · rhs` without materialising the transpose.
    ///
    /// Allocates the output; hot paths should prefer
    /// [`Matrix::t_matmul_into`].
    ///
    /// # Panics
    ///
    /// Panics if `self.rows != rhs.rows`.
    pub fn t_matmul(&self, rhs: &Matrix) -> Matrix {
        crate::kernel::count_matmul_alloc();
        let mut out = Matrix::zeros(self.cols, rhs.cols);
        self.t_matmul_into(rhs, &mut out);
        out
    }

    /// `selfᵀ · rhs` written into `out` (resized in place).
    ///
    /// # Panics
    ///
    /// Panics if `self.rows != rhs.rows`.
    pub fn t_matmul_into(&self, rhs: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.rows, rhs.rows,
            "t_matmul dimension mismatch: ({}x{})ᵀ · {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        out.resize(self.cols, rhs.cols);
        crate::kernel::gemm_tn(
            self.rows,
            self.cols,
            rhs.cols,
            &self.data,
            &rhs.data,
            &mut out.data,
        );
    }

    /// `self · rhsᵀ` without materialising the transpose.
    ///
    /// Allocates the output; hot paths should prefer
    /// [`Matrix::matmul_t_into`].
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != rhs.cols`.
    pub fn matmul_t(&self, rhs: &Matrix) -> Matrix {
        crate::kernel::count_matmul_alloc();
        let mut out = Matrix::zeros(self.rows, rhs.rows);
        self.matmul_t_into(rhs, &mut out);
        out
    }

    /// `self · rhsᵀ` written into `out` (resized in place). Uses the packed
    /// transposed-B kernel path (see [`crate::kernel::gemm_nt`]).
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != rhs.cols`.
    pub fn matmul_t_into(&self, rhs: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols, rhs.cols,
            "matmul_t dimension mismatch: {}x{} · ({}x{})ᵀ",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        out.resize(self.rows, rhs.rows);
        crate::kernel::gemm_nt(
            self.rows,
            self.cols,
            rhs.rows,
            &self.data,
            &rhs.data,
            &mut out.data,
        );
    }

    /// Returns the transpose as a new matrix.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Element-wise (Hadamard) product.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn hadamard(&self, rhs: &Matrix) -> Matrix {
        self.assert_same_shape(rhs, "hadamard");
        let data = self.data.iter().zip(rhs.data.iter()).map(|(a, b)| a * b).collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }

    /// Element-wise product written into `out` (resized in place).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn hadamard_into(&self, rhs: &Matrix, out: &mut Matrix) {
        self.assert_same_shape(rhs, "hadamard");
        out.resize(self.rows, self.cols);
        for ((o, &a), &b) in out.data.iter_mut().zip(self.data.iter()).zip(rhs.data.iter()) {
            *o = a * b;
        }
    }

    /// Applies `f` to every element, returning a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix { rows: self.rows, cols: self.cols, data: self.data.iter().map(|&x| f(x)).collect() }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Element-wise combination of two equally-shaped matrices.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn zip_map(&self, rhs: &Matrix, f: impl Fn(f32, f32) -> f32) -> Matrix {
        self.assert_same_shape(rhs, "zip_map");
        let data = self.data.iter().zip(rhs.data.iter()).map(|(&a, &b)| f(a, b)).collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }

    /// Multiplies every element by a scalar, returning a new matrix.
    pub fn scale(&self, s: f32) -> Matrix {
        self.map(|x| x * s)
    }

    /// `self += rhs * s` in place (generalised AXPY).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_scaled(&mut self, rhs: &Matrix, s: f32) {
        self.assert_same_shape(rhs, "add_scaled");
        for (a, &b) in self.data.iter_mut().zip(rhs.data.iter()) {
            *a += b * s;
        }
    }

    /// Adds a 1×cols row vector to every row (broadcast), returning a new matrix.
    ///
    /// # Panics
    ///
    /// Panics if `bias` is not `1 × self.cols`.
    pub fn add_row_broadcast(&self, bias: &Matrix) -> Matrix {
        let mut out = self.clone();
        out.add_row_broadcast_assign(bias);
        out
    }

    /// Adds a 1×cols row vector to every row **in place**.
    ///
    /// # Panics
    ///
    /// Panics if `bias` is not `1 × self.cols`.
    pub fn add_row_broadcast_assign(&mut self, bias: &Matrix) {
        assert_eq!(bias.rows, 1, "broadcast bias must be a row vector");
        assert_eq!(bias.cols, self.cols, "broadcast bias width mismatch");
        for r in 0..self.rows {
            let row = &mut self.data[r * self.cols..(r + 1) * self.cols];
            for (x, &b) in row.iter_mut().zip(bias.data.iter()) {
                *x += b;
            }
        }
    }

    /// `self + bias` (row broadcast) written into `out` (resized in place).
    ///
    /// # Panics
    ///
    /// Panics if `bias` is not `1 × self.cols`.
    pub fn add_row_broadcast_into(&self, bias: &Matrix, out: &mut Matrix) {
        out.copy_from(self);
        out.add_row_broadcast_assign(bias);
    }

    /// Sums the rows into a 1×cols row vector.
    pub fn sum_rows(&self) -> Matrix {
        let mut out = Matrix::zeros(1, self.cols);
        self.sum_rows_into(&mut out);
        out
    }

    /// Sums the rows into `out` (resized to `1 × cols` in place).
    pub fn sum_rows_into(&self, out: &mut Matrix) {
        out.resize(1, self.cols);
        out.fill(0.0);
        for row in self.iter_rows() {
            for (o, &x) in out.data.iter_mut().zip(row.iter()) {
                *o += x;
            }
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Arithmetic mean of all elements.
    pub fn mean(&self) -> f32 {
        self.sum() / self.data.len() as f32
    }

    /// Maximum element. Never NaN for finite inputs.
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element. Never NaN for finite inputs.
    pub fn min(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// Squared Frobenius norm (no square root).
    pub fn frobenius_norm_sq(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>()
    }

    /// Index of the maximum element of a single-row or single-column matrix.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is neither a row nor a column vector.
    pub fn argmax(&self) -> usize {
        assert!(
            self.rows == 1 || self.cols == 1,
            "argmax is defined on vectors only (shape {}x{})",
            self.rows,
            self.cols
        );
        crate::vecops::argmax(&self.data)
    }

    /// Horizontally concatenates `self` and `rhs` (same number of rows).
    ///
    /// # Panics
    ///
    /// Panics if the row counts differ.
    pub fn hconcat(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.rows, rhs.rows, "hconcat row mismatch");
        let cols = self.cols + rhs.cols;
        let mut data = Vec::with_capacity(self.rows * cols);
        for r in 0..self.rows {
            data.extend_from_slice(self.row(r));
            data.extend_from_slice(rhs.row(r));
        }
        Matrix { rows: self.rows, cols, data }
    }

    /// Vertically concatenates `self` and `rhs` (same number of columns).
    ///
    /// # Panics
    ///
    /// Panics if the column counts differ.
    pub fn vconcat(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.cols, "vconcat col mismatch");
        let mut data = self.data.clone();
        data.extend_from_slice(&rhs.data);
        Matrix { rows: self.rows + rhs.rows, cols: self.cols, data }
    }

    /// Returns columns `[start, end)` as a new matrix.
    ///
    /// # Panics
    ///
    /// Panics if `start >= end` or `end > cols`.
    pub fn slice_cols(&self, start: usize, end: usize) -> Matrix {
        assert!(start < end && end <= self.cols, "invalid column slice {start}..{end}");
        let cols = end - start;
        let mut data = Vec::with_capacity(self.rows * cols);
        for r in 0..self.rows {
            data.extend_from_slice(&self.row(r)[start..end]);
        }
        Matrix { rows: self.rows, cols, data }
    }

    /// Returns rows `[start, end)` as a new matrix.
    ///
    /// # Panics
    ///
    /// Panics if `start >= end` or `end > rows`.
    pub fn slice_rows(&self, start: usize, end: usize) -> Matrix {
        assert!(start < end && end <= self.rows, "invalid row slice {start}..{end}");
        let data = self.data[start * self.cols..end * self.cols].to_vec();
        Matrix { rows: end - start, cols: self.cols, data }
    }

    /// True if any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|x| !x.is_finite())
    }

    /// Clamps every element into `[lo, hi]` in place.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn clamp_inplace(&mut self, lo: f32, hi: f32) {
        assert!(lo <= hi, "invalid clamp range [{lo}, {hi}]");
        for x in &mut self.data {
            *x = x.clamp(lo, hi);
        }
    }

    fn assert_same_shape(&self, rhs: &Matrix, op: &str) {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "{op}: shape mismatch {}x{} vs {}x{}",
            self.rows,
            self.cols,
            rhs.rows,
            rhs.cols
        );
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let show = self.rows.min(6);
        for r in 0..show {
            let row = self.row(r);
            let cells: Vec<String> = row.iter().take(8).map(|x| format!("{x:>9.4}")).collect();
            let ellipsis = if self.cols > 8 { ", …" } else { "" };
            writeln!(f, "  [{}{}]", cells.join(", "), ellipsis)?;
        }
        if self.rows > show {
            writeln!(f, "  … ({} more rows)", self.rows - show)?;
        }
        write!(f, "]")
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f32;

    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of bounds");
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of bounds");
        &mut self.data[r * self.cols + c]
    }
}

impl Add<&Matrix> for &Matrix {
    type Output = Matrix;

    fn add(self, rhs: &Matrix) -> Matrix {
        self.zip_map(rhs, |a, b| a + b)
    }
}

impl Sub<&Matrix> for &Matrix {
    type Output = Matrix;

    fn sub(self, rhs: &Matrix) -> Matrix {
        self.zip_map(rhs, |a, b| a - b)
    }
}

impl Mul<f32> for &Matrix {
    type Output = Matrix;

    fn mul(self, s: f32) -> Matrix {
        self.scale(s)
    }
}

impl Neg for &Matrix {
    type Output = Matrix;

    fn neg(self) -> Matrix {
        self.scale(-1.0)
    }
}

impl AddAssign<&Matrix> for Matrix {
    fn add_assign(&mut self, rhs: &Matrix) {
        self.add_scaled(rhs, 1.0);
    }
}

impl SubAssign<&Matrix> for Matrix {
    fn sub_assign(&mut self, rhs: &Matrix) {
        self.add_scaled(rhs, -1.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f32, b: f32) -> bool {
        (a - b).abs() <= 1e-5 * (1.0 + a.abs().max(b.abs()))
    }

    #[test]
    fn zeros_and_shape() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert_eq!(m.len(), 12);
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_dimension_panics() {
        let _ = Matrix::zeros(0, 3);
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn from_vec_length_mismatch_panics() {
        let _ = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn identity_matmul_is_noop() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(a.matmul(&Matrix::eye(2)), a);
        assert_eq!(Matrix::eye(2).matmul(&a), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[7.0, 8.0], &[9.0, 10.0], &[11.0, 12.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), (2, 2));
        assert_eq!(c[(0, 0)], 58.0);
        assert_eq!(c[(0, 1)], 64.0);
        assert_eq!(c[(1, 0)], 139.0);
        assert_eq!(c[(1, 1)], 154.0);
    }

    #[test]
    #[should_panic(expected = "matmul dimension mismatch")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn t_matmul_equals_transpose_then_matmul() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[1.0, 0.5], &[-1.0, 2.0], &[0.0, 3.0]]);
        let fast = a.t_matmul(&b);
        let slow = a.transpose().matmul(&b);
        assert_eq!(fast, slow);
    }

    #[test]
    fn matmul_t_equals_matmul_with_transpose() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[1.0, 0.0, -1.0], &[2.0, 1.0, 0.5]]);
        let fast = a.matmul_t(&b);
        let slow = a.matmul(&b.transpose());
        assert_eq!(fast, slow);
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn hadamard_elementwise() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[2.0, 0.5], &[1.0, -1.0]]);
        let h = a.hadamard(&b);
        assert_eq!(h.as_slice(), &[2.0, 1.0, 3.0, -4.0]);
    }

    #[test]
    fn broadcast_bias_adds_to_each_row() {
        let a = Matrix::zeros(3, 2);
        let bias = Matrix::row_vector(&[1.0, -1.0]);
        let out = a.add_row_broadcast(&bias);
        for r in 0..3 {
            assert_eq!(out.row(r), &[1.0, -1.0]);
        }
    }

    #[test]
    fn sum_rows_collapses() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let s = a.sum_rows();
        assert_eq!(s.as_slice(), &[9.0, 12.0]);
    }

    #[test]
    fn reductions() {
        let a = Matrix::from_rows(&[&[1.0, -2.0], &[3.0, 4.0]]);
        assert!(approx(a.sum(), 6.0));
        assert!(approx(a.mean(), 1.5));
        assert_eq!(a.max(), 4.0);
        assert_eq!(a.min(), -2.0);
        assert!(approx(a.frobenius_norm_sq(), 30.0));
        assert!(approx(a.frobenius_norm(), 30.0f32.sqrt()));
    }

    #[test]
    fn argmax_on_vectors() {
        assert_eq!(Matrix::row_vector(&[0.1, 0.7, 0.2]).argmax(), 1);
        assert_eq!(Matrix::col_vector(&[5.0, 1.0]).argmax(), 0);
    }

    #[test]
    #[should_panic(expected = "vectors only")]
    fn argmax_on_matrix_panics() {
        let _ = Matrix::zeros(2, 2).argmax();
    }

    #[test]
    fn concat_and_slice_roundtrip() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0], &[6.0]]);
        let h = a.hconcat(&b);
        assert_eq!(h.shape(), (2, 3));
        assert_eq!(h.slice_cols(0, 2), a);
        assert_eq!(h.slice_cols(2, 3), b);

        let v = a.vconcat(&a);
        assert_eq!(v.shape(), (4, 2));
        assert_eq!(v.slice_rows(2, 4), a);
    }

    #[test]
    fn operators() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[3.0, -1.0]]);
        assert_eq!((&a + &b).as_slice(), &[4.0, 1.0]);
        assert_eq!((&a - &b).as_slice(), &[-2.0, 3.0]);
        assert_eq!((&a * 2.0).as_slice(), &[2.0, 4.0]);
        assert_eq!((-&a).as_slice(), &[-1.0, -2.0]);
        let mut c = a.clone();
        c += &b;
        assert_eq!(c.as_slice(), &[4.0, 1.0]);
        c -= &b;
        assert_eq!(c.as_slice(), a.as_slice());
    }

    #[test]
    fn into_variants_match_allocating_ops() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[7.0, 8.0], &[9.0, 10.0], &[11.0, 12.0]]);
        // Deliberately wrong-shaped buffer: `_into` must resize it.
        let mut out = Matrix::ones(1, 1);
        a.matmul_into(&b, &mut out);
        assert_eq!(out, a.matmul(&b));

        let at = a.transpose();
        at.t_matmul_into(&b, &mut out);
        assert_eq!(out, at.t_matmul(&b));

        let bt = b.transpose();
        a.matmul_t_into(&bt, &mut out);
        assert_eq!(out, a.matmul_t(&bt));

        let c = Matrix::from_rows(&[&[1.0, 0.5, -1.0], &[2.0, -0.5, 0.0]]);
        a.hadamard_into(&c, &mut out);
        assert_eq!(out, a.hadamard(&c));

        let bias = Matrix::row_vector(&[1.0, -1.0, 0.5]);
        a.add_row_broadcast_into(&bias, &mut out);
        assert_eq!(out, a.add_row_broadcast(&bias));

        a.sum_rows_into(&mut out);
        assert_eq!(out, a.sum_rows());
    }

    #[test]
    fn col_iter_matches_col() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        for c in 0..2 {
            assert_eq!(m.col_iter(c).collect::<Vec<_>>(), m.col(c));
        }
    }

    #[test]
    fn resize_reuses_and_reshapes() {
        let mut m = Matrix::zeros(4, 4);
        m.resize(2, 3);
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m.len(), 6);
        m.fill(7.0);
        assert!(m.as_slice().iter().all(|&x| x == 7.0));
        let src = Matrix::from_rows(&[&[1.0], &[2.0]]);
        m.copy_from(&src);
        assert_eq!(m, src);
    }

    #[test]
    fn broadcast_assign_matches_allocating() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let bias = Matrix::row_vector(&[10.0, 20.0]);
        let mut b = a.clone();
        b.add_row_broadcast_assign(&bias);
        assert_eq!(b, a.add_row_broadcast(&bias));
    }

    #[test]
    fn add_scaled_axpy() {
        let mut a = Matrix::ones(2, 2);
        let b = Matrix::filled(2, 2, 2.0);
        a.add_scaled(&b, 0.5);
        assert!(a.as_slice().iter().all(|&x| approx(x, 2.0)));
    }

    #[test]
    fn non_finite_detection() {
        let mut a = Matrix::ones(1, 2);
        assert!(!a.has_non_finite());
        a[(0, 1)] = f32::NAN;
        assert!(a.has_non_finite());
    }

    #[test]
    fn clamp_bounds() {
        let mut a = Matrix::from_rows(&[&[-5.0, 0.5, 5.0]]);
        a.clamp_inplace(-1.0, 1.0);
        assert_eq!(a.as_slice(), &[-1.0, 0.5, 1.0]);
    }

    #[test]
    fn debug_is_nonempty() {
        let a = Matrix::ones(1, 1);
        assert!(!format!("{a:?}").is_empty());
    }

    #[test]
    fn serde_roundtrip() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let json = serde_json_like(&a);
        assert!(json.contains("rows"));
    }

    // serde smoke test without pulling serde_json: use the Debug of the
    // Serialize impl via bincode-like manual check. We only check the derive
    // compiles and fields are accessible, so this is a compile-time guarantee.
    fn serde_json_like(m: &Matrix) -> String {
        format!("rows={} cols={} n={}", m.rows(), m.cols(), m.len())
    }
}
