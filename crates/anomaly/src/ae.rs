//! Autoencoder detectors for univariate data (AE-IoT / AE-Edge / AE-Cloud).
//!
//! §II-A1: *"we build three AE-based models called AE-IoT, AE-Edge, and
//! AE-Cloud … These models have three, five, seven layers and thus have
//! different capabilities of learning features for data representation."*
//! Layer counts follow the paper's convention of counting neuron layers
//! (input + hidden(s) + output).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use hec_data::LabeledWindow;
use hec_nn::{Activation, Dense, Layer, Mse, RmsProp, Sequential};
use hec_tensor::Matrix;

use crate::detector::{validate_training_set, AnomalyDetector, Detection, FitError, FitReport};
use crate::scorer::{ConfidenceRule, LogPdScorer, ThresholdRule};

/// Neuron-layer sizes of an autoencoder, including input and output
/// (`[96, 64, 96]` is the paper's "three layers").
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AeArchitecture {
    /// Sizes of every neuron layer, first and last must be equal.
    pub layer_sizes: Vec<usize>,
}

impl AeArchitecture {
    /// The 3-layer AE-IoT architecture for the given input width: a very
    /// narrow single bottleneck (~input/32). The bottleneck cannot track the
    /// data's latent factors, so its reconstruction envelope on normal data
    /// is wide and subtle deviations stay inside it — this is what limits
    /// the IoT model to "easy" anomalies.
    pub fn iot(input: usize) -> Self {
        Self { layer_sizes: vec![input, (input / 32).max(2), input] }
    }

    /// The 5-layer AE-Edge architecture: a deeper funnel down to ~input/12,
    /// enough capacity for most of the latent factors.
    pub fn edge(input: usize) -> Self {
        Self {
            layer_sizes: vec![
                input,
                (input / 3).max(4),
                (input / 12).max(3),
                (input / 3).max(4),
                input,
            ],
        }
    }

    /// The 7-layer AE-Cloud architecture: the widest and deepest
    /// (bottleneck ~input/8), with the tightest normal-data envelope and
    /// hence the best sensitivity.
    pub fn cloud(input: usize) -> Self {
        Self {
            layer_sizes: vec![
                input,
                input / 2,
                input / 4,
                (input / 8).max(4),
                input / 4,
                input / 2,
                input,
            ],
        }
    }

    /// Number of neuron layers (the paper's "three/five/seven").
    pub fn depth(&self) -> usize {
        self.layer_sizes.len()
    }

    /// Validates the architecture.
    ///
    /// # Panics
    ///
    /// Panics if fewer than 3 layers, any layer is zero-width, or the input
    /// and output widths differ.
    fn validate(&self) {
        assert!(self.depth() >= 3, "autoencoder needs at least 3 neuron layers");
        assert!(self.layer_sizes.iter().all(|&s| s > 0), "zero-width layer");
        assert_eq!(
            self.layer_sizes.first(),
            self.layer_sizes.last(),
            "autoencoder input and output widths must match"
        );
    }
}

/// An autoencoder anomaly detector over flattened univariate windows.
///
/// Scoring: per-timestep scalar reconstruction errors, 1-D Gaussian logPD,
/// threshold = min training logPD (§II-A3).
///
/// # Example
///
/// ```rust
/// use hec_anomaly::{AeArchitecture, AnomalyDetector, AutoencoderDetector};
/// use hec_data::LabeledWindow;
/// use hec_tensor::Matrix;
///
/// // Normal windows: a fixed ramp + tiny jitter.
/// let train: Vec<LabeledWindow> = (0..40)
///     .map(|i| {
///         let v: Vec<f32> = (0..16).map(|t| t as f32 / 16.0 + 0.001 * (i % 5) as f32).collect();
///         LabeledWindow::new(Matrix::from_vec(16, 1, v), false)
///     })
///     .collect();
/// let mut det = AutoencoderDetector::new("AE-demo", AeArchitecture::cloud(16), 0);
/// det.fit(&train, 120)?;
/// let spiky: Vec<f32> = (0..16).map(|t| if t % 2 == 0 { 2.0 } else { -2.0 }).collect();
/// let anomaly = LabeledWindow::new(Matrix::from_vec(16, 1, spiky), true);
/// assert!(det.detect(&anomaly).anomalous);
/// # Ok::<(), hec_anomaly::FitError>(())
/// ```
pub struct AutoencoderDetector {
    name: String,
    architecture: AeArchitecture,
    net: Sequential,
    scorer: Option<LogPdScorer>,
    confidence: ConfidenceRule,
    threshold_rule: ThresholdRule,
    /// A window is flagged anomalous when its anomalous-point fraction
    /// exceeds this (default 0: any point below threshold flags the window).
    flag_fraction: f32,
    batch_size: usize,
    learning_rate: f32,
    quantization_bits: Option<u8>,
    rng: StdRng,
}

impl AutoencoderDetector {
    /// Builds the detector with Glorot-initialised weights.
    ///
    /// # Panics
    ///
    /// Panics if the architecture is invalid (see [`AeArchitecture`]).
    pub fn new(name: &str, architecture: AeArchitecture, seed: u64) -> Self {
        architecture.validate();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut layers: Vec<Box<dyn Layer>> = Vec::new();
        let sizes = &architecture.layer_sizes;
        for i in 0..sizes.len() - 1 {
            let act = if i == sizes.len() - 2 { Activation::Linear } else { Activation::Tanh };
            layers.push(Box::new(Dense::new(&mut rng, sizes[i], sizes[i + 1], act)));
        }
        Self {
            name: name.to_owned(),
            net: Sequential::new(layers),
            architecture,
            scorer: None,
            confidence: ConfidenceRule::default(),
            threshold_rule: ThresholdRule::default(),
            flag_fraction: 0.0,
            batch_size: 32,
            learning_rate: 1e-3,
            quantization_bits: None,
            rng,
        }
    }

    /// Replaces the confidence rule (for the Successive-scheme ablation).
    pub fn set_confidence_rule(&mut self, rule: ConfidenceRule) {
        self.confidence = rule;
    }

    /// Replaces the threshold rule (the paper's `Min`, a quantile, a robust
    /// `MeanMinusKSigma`, or the default fixed-specificity `WindowFpr`).
    /// Takes effect at the next `fit`.
    pub fn set_threshold_rule(&mut self, rule: ThresholdRule) {
        self.threshold_rule = rule;
    }

    /// Enables post-training weight quantization to `bits` bits (deployment
    /// compression, paper §III-B). Applied during `fit`, before calibration.
    pub fn set_quantization_bits(&mut self, bits: Option<u8>) {
        self.quantization_bits = bits;
    }

    /// Sets the window-flagging fraction (see field docs).
    ///
    /// # Panics
    ///
    /// Panics if `fraction ∉ [0, 1)`.
    pub fn set_flag_fraction(&mut self, fraction: f32) {
        assert!((0.0..1.0).contains(&fraction), "flag fraction must be in [0, 1)");
        self.flag_fraction = fraction;
    }

    /// The architecture this detector was built with.
    pub fn architecture(&self) -> &AeArchitecture {
        &self.architecture
    }

    /// The calibrated scorer, if fitted.
    pub fn scorer(&self) -> Option<&LogPdScorer> {
        self.scorer.as_ref()
    }

    fn input_dim(&self) -> usize {
        self.architecture.layer_sizes[0]
    }

    /// Scores per-point reconstruction errors through the calibrated scorer.
    fn detection_from_errors(&self, errors: &[Vec<f32>]) -> Detection {
        let scorer = self.scorer.as_ref().expect("detect called before fit");
        let (min_log_pd, anomalous_fraction) = scorer.score_window(errors);
        let anomalous = anomalous_fraction > self.flag_fraction;
        let confident = self.confidence.is_confident(
            min_log_pd,
            anomalous_fraction,
            scorer.threshold(),
            anomalous,
        );
        Detection { anomalous, confident, min_log_pd, anomalous_fraction }
    }

    /// Per-point reconstruction errors for one window.
    fn reconstruction_errors(&mut self, window: &LabeledWindow) -> Vec<Vec<f32>> {
        let flat = window.flattened();
        assert_eq!(
            flat.len(),
            self.input_dim(),
            "window length {} does not match model input {}",
            flat.len(),
            self.input_dim()
        );
        let x = Matrix::row_vector(&flat);
        let y = self.net.predict(&x);
        flat.iter().zip(y.as_slice().iter()).map(|(a, b)| vec![a - b]).collect()
    }
}

impl AnomalyDetector for AutoencoderDetector {
    fn name(&self) -> &str {
        &self.name
    }

    fn param_count(&self) -> usize {
        self.net.param_count()
    }

    fn fit(&mut self, train: &[LabeledWindow], epochs: usize) -> Result<FitReport, FitError> {
        validate_training_set(train)?;
        let dim = self.input_dim();
        for (i, w) in train.iter().enumerate() {
            if w.flattened().len() != dim {
                return Err(FitError::InvalidTrainingSet {
                    reason: format!(
                        "window {i} has {} points, model expects {dim}",
                        w.flattened().len()
                    ),
                });
            }
        }

        let mut opt = RmsProp::new(self.learning_rate);
        let mut order: Vec<usize> = (0..train.len()).collect();
        let mut final_loss = 0.0f32;
        for _ in 0..epochs {
            order.shuffle(&mut self.rng);
            let mut epoch_loss = 0.0f32;
            let mut batches = 0usize;
            for chunk in order.chunks(self.batch_size) {
                let rows: Vec<Vec<f32>> = chunk.iter().map(|&i| train[i].flattened()).collect();
                let refs: Vec<&[f32]> = rows.iter().map(|r| r.as_slice()).collect();
                let batch = Matrix::from_rows(&refs);
                epoch_loss += self.net.train_batch(&batch, &batch, &Mse, &mut opt, 0.0);
                batches += 1;
            }
            final_loss = epoch_loss / batches.max(1) as f32;
        }

        if let Some(bits) = self.quantization_bits {
            self.net.visit_params(&mut |param, _| {
                hec_tensor::quantize::quantize_inplace(param, bits);
            });
        }

        // Calibrate the scorer on the training set's per-point errors.
        let per_window: Vec<Vec<Vec<f32>>> =
            train.iter().map(|w| self.reconstruction_errors(w)).collect();
        let all_errors: Vec<Vec<f32>> = per_window.iter().flatten().cloned().collect();
        let mut scorer = LogPdScorer::fit_with_rule(&all_errors, 1e-6, self.threshold_rule)
            .map_err(|e| match e {
                crate::scorer::ScorerError::Gaussian(g) => FitError::Scoring(g),
                crate::scorer::ScorerError::EmptyCalibrationSet => {
                    FitError::InvalidTrainingSet { reason: "no calibration errors produced".into() }
                }
            })?;
        if let ThresholdRule::WindowFpr(_) = self.threshold_rule {
            let minima: Vec<f32> = per_window
                .iter()
                .map(|errs| errs.iter().map(|e| scorer.log_pd(e)).fold(f32::INFINITY, f32::min))
                .collect();
            scorer.set_threshold(self.threshold_rule.threshold(&minima));
        }
        let threshold = scorer.threshold();
        self.scorer = Some(scorer);
        Ok(FitReport { epochs, final_loss, threshold })
    }

    fn detect(&mut self, window: &LabeledWindow) -> Detection {
        let errors = self.reconstruction_errors(window);
        self.detection_from_errors(&errors)
    }

    /// Batched scoring: the whole corpus becomes one `windows × input` matrix
    /// and runs through a single forward pass per layer, so the dense kernels
    /// see real batch dimensions instead of `1 × input` row vectors. Row
    /// independence of the dense ops makes the results identical to the
    /// per-window path.
    fn detect_batch(&mut self, windows: &[LabeledWindow]) -> Vec<Detection> {
        if windows.is_empty() {
            return Vec::new();
        }
        let dim = self.input_dim();
        let mut data = Vec::with_capacity(windows.len() * dim);
        for (i, w) in windows.iter().enumerate() {
            let flat = w.flattened();
            assert_eq!(
                flat.len(),
                dim,
                "window {i} length {} does not match model input {dim}",
                flat.len()
            );
            data.extend_from_slice(&flat);
        }
        let x = Matrix::from_vec(windows.len(), dim, data);
        let y = self.net.predict(&x);
        (0..windows.len())
            .map(|r| {
                let errors: Vec<Vec<f32>> =
                    x.row(r).iter().zip(y.row(r).iter()).map(|(a, b)| vec![a - b]).collect();
                self.detection_from_errors(&errors)
            })
            .collect()
    }

    fn threshold(&self) -> Option<f32> {
        self.scorer.as_ref().map(|s| s.threshold())
    }
}

impl std::fmt::Debug for AutoencoderDetector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "AutoencoderDetector({}, {:?}, params={})",
            self.name,
            self.architecture.layer_sizes,
            self.param_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp_window(jitter: f32, n: usize) -> LabeledWindow {
        let v: Vec<f32> = (0..n).map(|t| (t as f32 / n as f32) + jitter).collect();
        LabeledWindow::new(Matrix::from_vec(n, 1, v), false)
    }

    fn train_set(n: usize) -> Vec<LabeledWindow> {
        (0..40).map(|i| ramp_window(0.002 * (i % 7) as f32, n)).collect()
    }

    #[test]
    fn architectures_have_expected_depths() {
        assert_eq!(AeArchitecture::iot(96).depth(), 3);
        assert_eq!(AeArchitecture::edge(96).depth(), 5);
        assert_eq!(AeArchitecture::cloud(96).depth(), 7);
    }

    #[test]
    fn param_counts_increase_iot_to_cloud() {
        let iot = AutoencoderDetector::new("iot", AeArchitecture::iot(96), 0);
        let edge = AutoencoderDetector::new("edge", AeArchitecture::edge(96), 0);
        let cloud = AutoencoderDetector::new("cloud", AeArchitecture::cloud(96), 0);
        assert!(iot.param_count() < edge.param_count());
        assert!(edge.param_count() < cloud.param_count());
    }

    #[test]
    fn fit_then_detect_separates() {
        // The cloud model has the capacity to nail this simple family; the
        // IoT model's 2-unit bottleneck intentionally does not (see
        // `AeArchitecture::iot`), so this test exercises the large end.
        let mut det = AutoencoderDetector::new("ae", AeArchitecture::cloud(16), 1);
        let report = det.fit(&train_set(16), 150).unwrap();
        assert!(report.final_loss < 0.05, "loss too high: {}", report.final_loss);
        assert!(report.threshold.is_finite());

        // Normal-looking window: not anomalous.
        let normal = ramp_window(0.001, 16);
        assert!(!det.detect(&normal).anomalous);

        // Flat window: anomalous.
        let flat = LabeledWindow::new(Matrix::from_vec(16, 1, vec![0.5; 16]), true);
        assert!(det.detect(&flat).anomalous);
    }

    #[test]
    fn capacity_gap_iot_vs_cloud() {
        // On a richer two-factor family the narrow IoT bottleneck must end
        // with a visibly larger reconstruction loss than the cloud model —
        // this gap is the mechanism behind the paper's accuracy ladder.
        let train: Vec<LabeledWindow> = (0..60)
            .map(|i| {
                let a = 0.5 + 0.3 * ((i % 5) as f32 / 4.0);
                let p = (i % 7) as f32 / 7.0;
                let v: Vec<f32> = (0..16)
                    .map(|t| a * ((t as f32 / 16.0 + p) * std::f32::consts::TAU).sin())
                    .collect();
                LabeledWindow::new(Matrix::from_vec(16, 1, v), false)
            })
            .collect();
        let mut iot = AutoencoderDetector::new("iot", AeArchitecture::iot(16), 2);
        let mut cloud = AutoencoderDetector::new("cloud", AeArchitecture::cloud(16), 2);
        let r_iot = iot.fit(&train, 120).unwrap();
        let r_cloud = cloud.fit(&train, 120).unwrap();
        assert!(
            r_cloud.final_loss < r_iot.final_loss,
            "no capacity gap: iot {} vs cloud {}",
            r_iot.final_loss,
            r_cloud.final_loss
        );
    }

    #[test]
    fn detect_batch_matches_per_window() {
        let mut det = AutoencoderDetector::new("ae", AeArchitecture::cloud(16), 1);
        det.fit(&train_set(16), 80).unwrap();
        let windows = vec![
            ramp_window(0.001, 16),
            LabeledWindow::new(Matrix::from_vec(16, 1, vec![0.5; 16]), true),
            ramp_window(0.004, 16),
        ];
        let batched = det.detect_batch(&windows);
        let single: Vec<Detection> = windows.iter().map(|w| det.detect(w)).collect();
        assert_eq!(batched, single);
        assert!(det.detect_batch(&[]).is_empty());
    }

    #[test]
    fn detect_reports_scores() {
        let mut det = AutoencoderDetector::new("ae", AeArchitecture::iot(16), 1);
        det.fit(&train_set(16), 60).unwrap();
        let d = det.detect(&ramp_window(0.0, 16));
        assert!(d.min_log_pd.is_finite());
        assert!((0.0..=1.0).contains(&d.anomalous_fraction));
    }

    #[test]
    fn fit_rejects_wrong_window_size() {
        let mut det = AutoencoderDetector::new("ae", AeArchitecture::iot(16), 0);
        let bad = vec![ramp_window(0.0, 8)];
        assert!(matches!(det.fit(&bad, 1), Err(FitError::InvalidTrainingSet { .. })));
    }

    #[test]
    fn fit_rejects_anomalous_windows() {
        let mut det = AutoencoderDetector::new("ae", AeArchitecture::iot(16), 0);
        let mut set = train_set(16);
        set[0].anomalous = true;
        assert!(matches!(det.fit(&set, 1), Err(FitError::InvalidTrainingSet { .. })));
    }

    #[test]
    #[should_panic(expected = "detect called before fit")]
    fn detect_before_fit_panics() {
        let mut det = AutoencoderDetector::new("ae", AeArchitecture::iot(16), 0);
        let _ = det.detect(&ramp_window(0.0, 16));
    }

    #[test]
    #[should_panic(expected = "widths must match")]
    fn asymmetric_architecture_rejected() {
        let _ = AutoencoderDetector::new("bad", AeArchitecture { layer_sizes: vec![16, 8, 12] }, 0);
    }

    #[test]
    fn name_and_debug() {
        let det = AutoencoderDetector::new("AE-IoT", AeArchitecture::iot(16), 0);
        assert_eq!(det.name(), "AE-IoT");
        assert!(format!("{det:?}").contains("AE-IoT"));
    }
}
