//! Calibration probe: detection rate per model as a function of the
//! walking-similarity blend — used to place each activity's hardness
//! between the capacity tiers (DESIGN.md §2 substitution calibration).
//!
//! ```text
//! cargo run --release -p hec-bench --bin probe_hardness
//! ```

use hec_anomaly::{AnomalyDetector, ModelCatalog};
use hec_data::mhealth::{Activity, MhealthConfig, MhealthGenerator};
use hec_data::window::sliding_windows;
use hec_data::{LabeledWindow, Standardizer};

fn main() {
    let config = MhealthConfig {
        subjects: 2,
        window: 64,
        stride: 32,
        session_len: 256,
        normal_session_multiplier: 8,
        noise_std: 0.20,
        seed: 5,
    };
    let gen = MhealthGenerator::new(config.clone());

    // Train on walking only.
    let mut walking: Vec<LabeledWindow> = Vec::new();
    let mut raw = Vec::new();
    for subject in 0..config.subjects {
        let session = gen.session(
            subject,
            Activity::Walking,
            config.session_len * config.normal_session_multiplier,
        );
        raw.push(session);
    }
    let mut stacked = raw[0].clone();
    for m in &raw[1..] {
        stacked = stacked.vconcat(m);
    }
    let std = Standardizer::fit(&stacked);
    for session in &raw {
        for w in sliding_windows(&std.transform(session), config.window, config.stride) {
            walking.push(LabeledWindow::new(w, false));
        }
    }
    println!("walking windows: {}", walking.len());

    let mut catalog = ModelCatalog::multivariate(18, 12, 5);
    for det in catalog.detectors_mut() {
        let r = det.fit(&walking, 8).expect("fit");
        println!("{:<22} loss={:.4} thr={:.1}", det.name(), r.final_loss, r.threshold);
    }

    // Quantization sweep on a copy of the IoT model: how many bits does it
    // take to degrade sensitivity?
    use hec_anomaly::Seq2SeqDetector;
    for bits in [8u8, 7, 6, 5, 4] {
        let mut det = Seq2SeqDetector::iot(18, 12, 5);
        det.set_quantization_bits(Some(bits));
        let r = det.fit(&walking, 8).expect("fit");
        let mut caught = 0usize;
        let mut total = 0usize;
        for subject in 0..config.subjects {
            let session =
                gen.session_with_similarity(subject, Activity::Jogging, config.session_len, 0.85);
            for w in sliding_windows(&std.transform(&session), config.window, config.stride) {
                total += 1;
                if det.detect(&LabeledWindow::new(w, true)).anomalous {
                    caught += 1;
                }
            }
        }
        println!(
            "IoT @ {bits} bits: loss={:.4} thr={:.1} jogging(0.85) detection={:.1}%",
            r.final_loss,
            r.threshold,
            100.0 * caught as f64 / total.max(1) as f64
        );
    }

    // Sweep the blend for a few representative activities.
    for activity in [Activity::Jogging, Activity::Cycling, Activity::Running] {
        println!("\n{activity:?}: detection % (IoT/Edge/Cloud) vs blend");
        for blend in [0.70f32, 0.80, 0.85, 0.90, 0.94, 0.97] {
            let mut caught = [0usize; 3];
            let mut total = 0usize;
            for subject in 0..config.subjects {
                let session =
                    gen.session_with_similarity(subject, activity, config.session_len, blend);
                for w in sliding_windows(&std.transform(&session), config.window, config.stride) {
                    total += 1;
                    let lw = LabeledWindow::new(w, true);
                    for (k, det) in catalog.detectors_mut().iter_mut().enumerate() {
                        if det.detect(&lw).anomalous {
                            caught[k] += 1;
                        }
                    }
                }
            }
            let pct = |c: usize| 100.0 * c as f64 / total.max(1) as f64;
            println!(
                "  blend {blend:.2}: {:>5.1}% / {:>5.1}% / {:>5.1}%",
                pct(caught[0]),
                pct(caught[1]),
                pct(caught[2])
            );
        }
    }
}
