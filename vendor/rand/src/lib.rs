//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the small slice of `rand` it actually uses:
//! [`Rng`], [`RngCore`], [`SeedableRng`], [`rngs::StdRng`] (a
//! deterministic xoshiro256++ generator) and [`seq::SliceRandom`].
//! Semantics match rand 0.8 closely enough for this project's use —
//! uniform ranges, standard floats in `[0, 1)`, Fisher–Yates shuffle —
//! but the exact value streams differ from upstream `rand`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A source of raw randomness: the object-safe base trait.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a seed.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a full-width seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanded with SplitMix64.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 step (public-domain constants).
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Convenience extension methods over [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the standard distribution
    /// (floats uniform in `[0, 1)`).
    fn gen<T: distributions::Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from the given range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1], got {p}");
        <f64 as distributions::Standard>::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Distribution plumbing for [`Rng::gen`] and [`Rng::gen_range`].
pub mod distributions {
    use super::RngCore;

    /// Types samplable by [`super::Rng::gen`].
    pub trait Standard {
        /// Draws one value from the standard distribution.
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
    }

    impl Standard for f32 {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            // 24 high bits -> uniform in [0, 1).
            (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }

    impl Standard for f64 {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            // 53 high bits -> uniform in [0, 1).
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Standard for bool {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u32() & 1 == 1
        }
    }

    impl Standard for u32 {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u32()
        }
    }

    impl Standard for u64 {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u64()
        }
    }

    impl Standard for usize {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u64() as usize
        }
    }

    /// Ranges usable with [`super::Rng::gen_range`].
    pub trait SampleRange<T> {
        /// Draws one value uniformly from the range.
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    macro_rules! int_range {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for core::ops::Range<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "gen_range: empty range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let offset = (rng.next_u64() as u128 % span) as i128;
                    (self.start as i128 + offset) as $t
                }
            }
            impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "gen_range: empty range");
                    let span = (hi as i128 - lo as i128 + 1) as u128;
                    let offset = (rng.next_u64() as u128 % span) as i128;
                    (lo as i128 + offset) as $t
                }
            }
        )*};
    }
    int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for core::ops::Range<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "gen_range: empty range");
                    let unit = <$t as Standard>::sample_standard(rng);
                    let v = self.start + (self.end - self.start) * unit;
                    // `unit` < 1, but the final addition can round up to
                    // exactly `end` when `start` dominates the span; map
                    // those ~2^-24 draws back inside the half-open range.
                    if v < self.end {
                        v
                    } else {
                        self.start
                    }
                }
            }
        )*};
    }
    float_range!(f32, f64);
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Not the same value stream as upstream rand's ChaCha-based `StdRng`,
    /// but deterministic for a given seed, which is what the experiment
    /// pipeline relies on.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ by Blackman & Vigna (public domain).
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // Avoid the all-zero state, which xoshiro cannot leave.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            Self { s }
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns one uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        use super::RngCore;
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f32 = rng.gen_range(-0.5..0.5);
            assert!((-0.5..0.5).contains(&x));
            let n: usize = rng.gen_range(0..10);
            assert!(n < 10);
            let m: usize = rng.gen_range(3..=5);
            assert!((3..=5).contains(&m));
        }
    }

    #[test]
    fn unit_floats_cover_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut lo = 1.0f64;
        let mut hi = 0.0f64;
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            lo = lo.min(u);
            hi = hi.max(u);
        }
        assert!(lo < 0.01 && hi > 0.99, "poor coverage: [{lo}, {hi}]");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits={hits}");
    }

    #[test]
    fn works_through_dyn_rngcore() {
        use super::RngCore;
        let mut rng = StdRng::seed_from_u64(9);
        let dyn_rng: &mut dyn RngCore = &mut rng;
        let x: usize = dyn_rng.gen_range(0..4);
        assert!(x < 4);
    }
}
