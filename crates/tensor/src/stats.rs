//! Gaussian fitting and log probability density.
//!
//! The paper scores anomalies with the *logarithmic probability density*
//! (logPD) of reconstruction errors under a Gaussian `N(µ, Σ)` fitted on the
//! reconstruction errors of **normal** training data (§II-A3). This module
//! provides exactly that: sample mean/covariance estimation, a Cholesky
//! factorisation for the (regularised) covariance, and the multivariate
//! log-pdf evaluated through triangular solves.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::Matrix;

/// Error fitting or evaluating a [`Gaussian`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum GaussianError {
    /// Fewer than two samples were provided.
    NotEnoughSamples {
        /// Number of samples that were provided.
        got: usize,
    },
    /// The (regularised) covariance matrix is not positive definite.
    NotPositiveDefinite,
    /// A sample had the wrong dimensionality.
    DimensionMismatch {
        /// Expected dimensionality (that of the fitted Gaussian).
        expected: usize,
        /// Dimensionality of the offending sample.
        got: usize,
    },
}

impl fmt::Display for GaussianError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GaussianError::NotEnoughSamples { got } => {
                write!(f, "need at least 2 samples to fit a gaussian, got {got}")
            }
            GaussianError::NotPositiveDefinite => {
                write!(f, "covariance matrix is not positive definite")
            }
            GaussianError::DimensionMismatch { expected, got } => {
                write!(f, "sample dimension {got} does not match gaussian dimension {expected}")
            }
        }
    }
}

impl std::error::Error for GaussianError {}

/// A multivariate Gaussian `N(µ, Σ)` with a precomputed Cholesky factor,
/// ready for fast log-pdf queries.
///
/// # Example
///
/// ```rust
/// use hec_tensor::{Gaussian, Matrix};
///
/// // Two-dimensional errors clustered near the origin.
/// let samples = Matrix::from_rows(&[
///     &[0.1, -0.1], &[-0.2, 0.1], &[0.0, 0.2], &[0.15, 0.0],
/// ]);
/// let g = Gaussian::fit(&samples, 1e-3)?;
/// // A point near the mean is more probable than a distant one.
/// assert!(g.log_pdf(&[0.0, 0.0])? > g.log_pdf(&[5.0, 5.0])?);
/// # Ok::<(), hec_tensor::GaussianError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Gaussian {
    mean: Vec<f32>,
    /// Lower-triangular Cholesky factor of the regularised covariance.
    chol: Matrix,
    /// log(det Σ) computed from the Cholesky diagonal.
    log_det: f32,
    dim: usize,
}

impl Gaussian {
    /// Fits `N(µ, Σ + εI)` to the rows of `samples`.
    ///
    /// `ridge` (ε) is added to the covariance diagonal for numerical
    /// stability — reconstruction errors of a well-trained model can have
    /// near-singular covariance.
    ///
    /// # Errors
    ///
    /// * [`GaussianError::NotEnoughSamples`] if fewer than 2 rows.
    /// * [`GaussianError::NotPositiveDefinite`] if Σ + εI has a non-positive
    ///   pivot (choose a larger `ridge`).
    pub fn fit(samples: &Matrix, ridge: f32) -> Result<Self, GaussianError> {
        let n = samples.rows();
        if n < 2 {
            return Err(GaussianError::NotEnoughSamples { got: n });
        }
        let d = samples.cols();
        let mut mean = vec![0.0f32; d];
        for row in samples.iter_rows() {
            for (m, &x) in mean.iter_mut().zip(row.iter()) {
                *m += x;
            }
        }
        for m in &mut mean {
            *m /= n as f32;
        }

        // Unbiased sample covariance.
        let mut cov = Matrix::zeros(d, d);
        for row in samples.iter_rows() {
            for i in 0..d {
                let di = row[i] - mean[i];
                if di == 0.0 {
                    continue;
                }
                for j in i..d {
                    let dj = row[j] - mean[j];
                    cov[(i, j)] += di * dj;
                }
            }
        }
        let denom = (n - 1) as f32;
        for i in 0..d {
            for j in i..d {
                let v = cov[(i, j)] / denom;
                cov[(i, j)] = v;
                cov[(j, i)] = v;
            }
            cov[(i, i)] += ridge;
        }

        Self::from_mean_cov(mean, &cov)
    }

    /// Builds a Gaussian from an explicit mean and covariance.
    ///
    /// # Errors
    ///
    /// * [`GaussianError::DimensionMismatch`] if `mean.len() != cov.rows()`.
    /// * [`GaussianError::NotPositiveDefinite`] if `cov` is not positive
    ///   definite (no ridge is added here; the caller controls regularisation).
    pub fn from_mean_cov(mean: Vec<f32>, cov: &Matrix) -> Result<Self, GaussianError> {
        let d = mean.len();
        if cov.rows() != d || cov.cols() != d {
            return Err(GaussianError::DimensionMismatch { expected: d, got: cov.rows() });
        }
        let chol = cholesky(cov).ok_or(GaussianError::NotPositiveDefinite)?;
        let log_det = 2.0 * (0..d).map(|i| chol[(i, i)].ln()).sum::<f32>();
        Ok(Self { mean, chol, log_det, dim: d })
    }

    /// Dimensionality of the Gaussian.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Mean vector µ.
    pub fn mean(&self) -> &[f32] {
        &self.mean
    }

    /// Log probability density of `x`:
    /// `-½ [ d·ln(2π) + ln|Σ| + (x-µ)ᵀ Σ⁻¹ (x-µ) ]`.
    ///
    /// # Errors
    ///
    /// [`GaussianError::DimensionMismatch`] if `x.len() != self.dim()`.
    pub fn log_pdf(&self, x: &[f32]) -> Result<f32, GaussianError> {
        if x.len() != self.dim {
            return Err(GaussianError::DimensionMismatch { expected: self.dim, got: x.len() });
        }
        let diff: Vec<f32> = x.iter().zip(self.mean.iter()).map(|(a, b)| a - b).collect();
        // Solve L y = diff; then (x-µ)ᵀ Σ⁻¹ (x-µ) = ‖y‖².
        let y = forward_substitute(&self.chol, &diff);
        let maha_sq: f32 = y.iter().map(|v| v * v).sum();
        let d = self.dim as f32;
        Ok(-0.5 * (d * (2.0 * std::f32::consts::PI).ln() + self.log_det + maha_sq))
    }

    /// Log probability density of a 1-dimensional sample, allocation-free.
    ///
    /// Bit-identical to [`Gaussian::log_pdf`] on `&[x]`: at `d = 1` the
    /// general path's difference vector and forward substitution reduce to
    /// the scalar expressions below operation for operation, so detectors
    /// can use this on their per-point hot path without shifting any
    /// calibrated threshold by even an ulp.
    ///
    /// # Errors
    ///
    /// [`GaussianError::DimensionMismatch`] if the Gaussian is not 1-D.
    pub fn log_pdf_scalar(&self, x: f32) -> Result<f32, GaussianError> {
        if self.dim != 1 {
            return Err(GaussianError::DimensionMismatch { expected: self.dim, got: 1 });
        }
        let y = (x - self.mean[0]) / self.chol[(0, 0)];
        let maha_sq = y * y;
        Ok(-0.5 * ((2.0 * std::f32::consts::PI).ln() + self.log_det + maha_sq))
    }

    /// Squared Mahalanobis distance `(x-µ)ᵀ Σ⁻¹ (x-µ)`.
    ///
    /// # Errors
    ///
    /// [`GaussianError::DimensionMismatch`] if `x.len() != self.dim()`.
    pub fn mahalanobis_sq(&self, x: &[f32]) -> Result<f32, GaussianError> {
        if x.len() != self.dim {
            return Err(GaussianError::DimensionMismatch { expected: self.dim, got: x.len() });
        }
        let diff: Vec<f32> = x.iter().zip(self.mean.iter()).map(|(a, b)| a - b).collect();
        let y = forward_substitute(&self.chol, &diff);
        Ok(y.iter().map(|v| v * v).sum())
    }
}

/// Cholesky factorisation `A = L·Lᵀ` of a symmetric positive-definite matrix.
///
/// Returns `None` if a pivot is non-positive (matrix not positive definite).
pub fn cholesky(a: &Matrix) -> Option<Matrix> {
    let n = a.rows();
    if a.cols() != n {
        return None;
    }
    let mut l = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a[(i, j)];
            for k in 0..j {
                sum -= l[(i, k)] * l[(j, k)];
            }
            if i == j {
                if sum <= 0.0 || !sum.is_finite() {
                    return None;
                }
                l[(i, j)] = sum.sqrt();
            } else {
                l[(i, j)] = sum / l[(j, j)];
            }
        }
    }
    Some(l)
}

/// Solves `L y = b` for lower-triangular `L` (forward substitution).
fn forward_substitute(l: &Matrix, b: &[f32]) -> Vec<f32> {
    let n = b.len();
    let mut y = vec![0.0f32; n];
    for i in 0..n {
        let mut sum = b[i];
        for (j, &yj) in y.iter().enumerate().take(i) {
            sum -= l[(i, j)] * yj;
        }
        y[i] = sum / l[(i, i)];
    }
    y
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cholesky_of_identity_is_identity() {
        let l = cholesky(&Matrix::eye(4)).unwrap();
        assert_eq!(l, Matrix::eye(4));
    }

    #[test]
    fn cholesky_reconstructs() {
        // A = L Lᵀ for a hand-picked SPD matrix.
        let a = Matrix::from_rows(&[&[4.0, 2.0, 0.6], &[2.0, 5.0, 1.5], &[0.6, 1.5, 3.0]]);
        let l = cholesky(&a).unwrap();
        let back = l.matmul(&l.transpose());
        for (x, y) in back.as_slice().iter().zip(a.as_slice().iter()) {
            assert!((x - y).abs() < 1e-4, "{x} vs {y}");
        }
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // eigenvalues 3, -1
        assert!(cholesky(&a).is_none());
    }

    #[test]
    fn univariate_log_pdf_matches_closed_form() {
        // N(0, 1): log pdf at 0 is -0.5 ln(2π).
        let g = Gaussian::from_mean_cov(vec![0.0], &Matrix::eye(1)).unwrap();
        let expected = -0.5 * (2.0 * std::f32::consts::PI).ln();
        assert!((g.log_pdf(&[0.0]).unwrap() - expected).abs() < 1e-5);
        // At x=2: -0.5(ln 2π + 4).
        let expected2 = -0.5 * ((2.0 * std::f32::consts::PI).ln() + 4.0);
        assert!((g.log_pdf(&[2.0]).unwrap() - expected2).abs() < 1e-5);
    }

    #[test]
    fn fit_recovers_mean() {
        let samples = Matrix::from_rows(&[
            &[1.0, 10.0],
            &[2.0, 12.0],
            &[3.0, 14.0],
            &[2.0, 11.0],
            &[2.0, 13.0],
        ]);
        let g = Gaussian::fit(&samples, 1e-3).unwrap();
        assert!((g.mean()[0] - 2.0).abs() < 1e-5);
        assert!((g.mean()[1] - 12.0).abs() < 1e-5);
    }

    #[test]
    fn fit_requires_two_samples() {
        let samples = Matrix::from_rows(&[&[1.0, 2.0]]);
        assert_eq!(
            Gaussian::fit(&samples, 1e-3).unwrap_err(),
            GaussianError::NotEnoughSamples { got: 1 }
        );
    }

    #[test]
    fn ridge_rescues_degenerate_covariance() {
        // All samples identical -> zero covariance; ridge makes it PD.
        let samples = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0], &[1.0, 1.0]]);
        let g = Gaussian::fit(&samples, 1e-2).unwrap();
        assert!(g.log_pdf(&[1.0, 1.0]).unwrap().is_finite());
    }

    #[test]
    fn log_pdf_decreases_with_distance() {
        let samples = Matrix::from_rows(&[
            &[0.0, 0.0],
            &[0.1, -0.1],
            &[-0.1, 0.1],
            &[0.05, 0.05],
            &[-0.05, -0.05],
        ]);
        let g = Gaussian::fit(&samples, 1e-3).unwrap();
        let near = g.log_pdf(&[0.0, 0.0]).unwrap();
        let mid = g.log_pdf(&[1.0, 1.0]).unwrap();
        let far = g.log_pdf(&[3.0, 3.0]).unwrap();
        assert!(near > mid && mid > far);
    }

    #[test]
    fn dimension_mismatch_is_reported() {
        let g = Gaussian::from_mean_cov(vec![0.0, 0.0], &Matrix::eye(2)).unwrap();
        assert_eq!(
            g.log_pdf(&[1.0]).unwrap_err(),
            GaussianError::DimensionMismatch { expected: 2, got: 1 }
        );
    }

    #[test]
    fn scalar_log_pdf_is_bit_identical_to_general_path() {
        let samples = Matrix::from_vec(6, 1, vec![0.013, -0.021, 0.007, 0.049, -0.033, 0.002]);
        let g = Gaussian::fit(&samples, 1e-6).unwrap();
        for x in [-3.0f32, -0.02, 0.0, 0.013, 0.7, 42.0] {
            let general = g.log_pdf(&[x]).unwrap();
            let scalar = g.log_pdf_scalar(x).unwrap();
            assert_eq!(general.to_bits(), scalar.to_bits(), "diverged at {x}");
        }
        // Multivariate Gaussians reject the scalar path.
        let g2 = Gaussian::from_mean_cov(vec![0.0, 0.0], &Matrix::eye(2)).unwrap();
        assert_eq!(
            g2.log_pdf_scalar(1.0).unwrap_err(),
            GaussianError::DimensionMismatch { expected: 2, got: 1 }
        );
    }

    #[test]
    fn mahalanobis_identity_cov_is_euclidean_sq() {
        let g = Gaussian::from_mean_cov(vec![0.0, 0.0], &Matrix::eye(2)).unwrap();
        let m = g.mahalanobis_sq(&[3.0, 4.0]).unwrap();
        assert!((m - 25.0).abs() < 1e-4);
    }

    #[test]
    fn error_display_is_lowercase_and_nonempty() {
        let e = GaussianError::NotPositiveDefinite.to_string();
        assert!(!e.is_empty());
        assert!(e.chars().next().unwrap().is_lowercase());
    }
}
