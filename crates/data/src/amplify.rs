//! Trace amplification: stretch a checked-in fixture into an
//! engine-scale stream without network access.
//!
//! The fleet engine shards to millions of devices, but the repository's
//! real traces are a few hundred windows — big enough to validate the
//! parsers, far too small to exercise the ingestion → sharded-replay
//! path at engine rate. [`amplify_corpus`] multiplies a loaded corpus by
//! a repetition factor: repetition 0 is the base corpus **verbatim**,
//! and every later repetition applies a deterministic per-(repetition,
//! window, channel) perturbation — a multiplicative scale and an
//! additive jitter drawn from splitmix64 streams, **constant across the
//! timesteps of a window** so within-window dynamics (the thing the
//! detectors and the paper's context features look at) are preserved.
//! Windows are never split or recombined, and each repetition appends
//! the base corpus's windows in order, so session/window boundaries
//! survive amplification. Labels and anomaly classes are copied
//! unchanged.
//!
//! Everything is a pure function of `(base corpus, factor, seed)` — same
//! inputs, same amplified stream, on any machine and at any thread
//! count.

use crate::source::{DatasetSource, IngestError, LabeledCorpus};
use crate::window::LabeledWindow;

/// How repetitions `>= 1` are perturbed. The defaults are gentle (±1%
/// scale, ±0.002 jitter): enough that repeated windows are not byte
/// copies, small enough that a window's anomaly label stays truthful —
/// the power fixture's anomaly signal survives standardisation at these
/// levels (checked empirically in `repro_real --amplify`; larger values
/// drift the detectors' input distribution and belong to the
/// online-learning-under-drift experiments, not to replay).
#[derive(Debug, Clone, Copy)]
pub struct PerturbConfig {
    /// Half-width of the multiplicative scale band: each (repetition,
    /// window, channel) scales by `1 ± scale`.
    pub scale: f32,
    /// Half-width of the additive jitter band, in raw data units.
    pub jitter: f32,
    /// Stream seed; fixtures amplified with different seeds decorrelate.
    pub seed: u64,
}

impl Default for PerturbConfig {
    fn default() -> Self {
        Self { scale: 0.01, jitter: 0.002, seed: 0x9e37_79b9_7f4a_7c15 }
    }
}

/// `splitmix64` step — the same generator the fleet scenarios use for
/// deterministic derived streams.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Uniform in `[-1, 1)` from the generator's top 24 bits.
fn unit(state: &mut u64) -> f32 {
    ((splitmix64(state) >> 40) as f32 / (1u64 << 24) as f32) * 2.0 - 1.0
}

/// Multiplies `base` by `factor`: repetition 0 verbatim, repetitions
/// `1..factor` perturbed per [`PerturbConfig`]. `factor == 1` returns a
/// clone of the base. The result has `base.len() * factor` windows in
/// repetition-major order (base order preserved within each repetition).
///
/// # Panics
///
/// Panics if `factor == 0` (an amplified corpus with no repetitions is
/// a caller bug — use `Option` at the call site to express "off").
pub fn amplify_corpus(
    base: &LabeledCorpus,
    factor: usize,
    perturb: &PerturbConfig,
) -> LabeledCorpus {
    assert!(factor >= 1, "amplification factor must be at least 1");
    let mut windows = Vec::with_capacity(base.len() * factor);
    let mut classes = Vec::with_capacity(base.len() * factor);
    for rep in 0..factor {
        for (w, window) in base.windows.iter().enumerate() {
            let data = if rep == 0 {
                window.data.clone()
            } else {
                let (steps, channels) = (window.data.rows(), window.data.cols());
                // One scale/jitter pair per channel, held constant over
                // the window's timesteps: the stream key mixes the
                // repetition, window index and seed so every repetition
                // of every window draws an independent perturbation.
                let mut values = window.data.as_slice().to_vec();
                for c in 0..channels {
                    let mut state = perturb
                        .seed
                        .wrapping_add((rep as u64).wrapping_mul(0x0100_0000_01b3))
                        .wrapping_add((w as u64).wrapping_mul(0x1000_0000_0000_001b))
                        .wrapping_add(c as u64);
                    let scale = 1.0 + perturb.scale * unit(&mut state);
                    let jitter = perturb.jitter * unit(&mut state);
                    for t in 0..steps {
                        let v = &mut values[t * channels + c];
                        *v = *v * scale + jitter;
                    }
                }
                hec_tensor::Matrix::from_vec(steps, channels, values)
            };
            windows.push(LabeledWindow::new(data, window.anomalous));
            classes.push(base.classes[w]);
        }
    }
    LabeledCorpus::new(windows, classes)
}

/// A [`DatasetSource`] that amplifies whatever its base source loads —
/// the checked-in fixture becomes an engine-scale stream behind the same
/// trait the rest of the pipeline consumes.
#[derive(Debug, Clone)]
pub struct AmplifiedSource<S> {
    base: S,
    factor: usize,
    perturb: PerturbConfig,
}

impl<S: DatasetSource> AmplifiedSource<S> {
    /// Wraps `base`, multiplying its corpus by `factor` on load.
    ///
    /// # Panics
    ///
    /// Panics if `factor == 0`.
    pub fn new(base: S, factor: usize, perturb: PerturbConfig) -> Self {
        assert!(factor >= 1, "amplification factor must be at least 1");
        Self { base, factor, perturb }
    }
}

impl<S: DatasetSource> DatasetSource for AmplifiedSource<S> {
    fn name(&self) -> String {
        format!("amplified({} x{})", self.base.name(), self.factor)
    }

    fn channels(&self) -> usize {
        self.base.channels()
    }

    fn load(&self) -> Result<LabeledCorpus, IngestError> {
        Ok(amplify_corpus(&self.base.load()?, self.factor, &self.perturb))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hec_tensor::Matrix;

    fn base() -> LabeledCorpus {
        let mk =
            |v: f32, anomalous| LabeledWindow::new(Matrix::from_vec(3, 2, vec![v; 6]), anomalous);
        LabeledCorpus::new(
            vec![mk(1.0, false), mk(2.0, true), mk(3.0, false)],
            vec![None, Some(1), None],
        )
    }

    #[test]
    fn factor_one_is_the_identity() {
        let b = base();
        let a = amplify_corpus(&b, 1, &PerturbConfig::default());
        assert_eq!(a.len(), b.len());
        for (x, y) in a.windows.iter().zip(&b.windows) {
            assert_eq!(x.data.as_slice(), y.data.as_slice());
        }
        assert_eq!(a.classes, b.classes);
    }

    #[test]
    fn repetition_zero_is_verbatim_and_later_reps_are_perturbed() {
        let b = base();
        let a = amplify_corpus(&b, 3, &PerturbConfig::default());
        assert_eq!(a.len(), 9);
        // Rep 0 verbatim.
        for (x, y) in a.windows[..3].iter().zip(&b.windows) {
            assert_eq!(x.data.as_slice(), y.data.as_slice());
        }
        // Reps 1, 2 perturbed, each differently.
        assert_ne!(a.windows[3].data.as_slice(), b.windows[0].data.as_slice());
        assert_ne!(a.windows[6].data.as_slice(), a.windows[3].data.as_slice());
        // Labels and classes replicate in repetition-major order.
        assert_eq!(a.classes, [None, Some(1), None].repeat(3));
        assert!(a.windows[4].anomalous && a.windows[7].anomalous);
    }

    #[test]
    fn perturbation_is_constant_within_a_window_per_channel() {
        let b = base();
        let a = amplify_corpus(&b, 2, &PerturbConfig::default());
        let w = &a.windows[3].data; // rep 1, window 0 (constant base 1.0)
        for c in 0..2 {
            let first = w[(0, c)];
            for t in 1..3 {
                assert_eq!(w[(t, c)], first, "channel {c} must be uniformly perturbed");
            }
        }
        // ... but channels draw independent perturbations.
        assert_ne!(w[(0, 0)], w[(0, 1)]);
    }

    #[test]
    fn amplification_is_deterministic_and_gentle() {
        let b = base();
        let cfg = PerturbConfig::default();
        let a1 = amplify_corpus(&b, 4, &cfg);
        let a2 = amplify_corpus(&b, 4, &cfg);
        for (x, y) in a1.windows.iter().zip(&a2.windows) {
            assert_eq!(x.data.as_slice(), y.data.as_slice());
        }
        // Bounded: |v' - v| <= |v| * scale + jitter (+ f32 slack).
        for (rep_w, base_w) in a1.windows.iter().zip(b.windows.iter().cycle()) {
            for (p, v) in rep_w.data.as_slice().iter().zip(base_w.data.as_slice()) {
                assert!((p - v).abs() <= v.abs() * cfg.scale + cfg.jitter + 1e-6);
            }
        }
        // Different seed, different stream.
        let a3 = amplify_corpus(&b, 4, &PerturbConfig { seed: 7, ..cfg });
        assert_ne!(a1.windows[3].data.as_slice(), a3.windows[3].data.as_slice());
    }
}
