//! # hec-bandit
//!
//! The paper's core contribution (§II-B): adaptive model selection framed as
//! a **contextual bandit** characterised by a single-step Markov decision
//! process and solved with a REINFORCE **policy-gradient network**.
//!
//! * [`PolicyNetwork`] — the single-hidden-layer softmax network (100 hidden
//!   units, K = 3 outputs) mapping a context `z_x` to a categorical policy
//!   `π_θ(a | z_x)` over HEC layers;
//! * [`reward`] — the reward `R(a, z) = accuracy(x) − C(a, x)` with the
//!   delay-to-accuracy cost `C = α·t_e2e / (1 + α·t_e2e)` (Eq. 1);
//! * [`delay`] — pluggable [`DelaySource`]s feeding the reward: the static
//!   per-action table, or observed load-dependent delays from a simulated
//!   fleet (with `None` = dropped → the explicit drop penalty);
//! * [`train`] — REINFORCE with the **reinforcement comparison** baseline
//!   (Williams 1992) the paper uses to reduce reward variance;
//! * [`solvers`] — comparator bandit algorithms (ε-greedy, LinUCB) for the
//!   ablation benches, behind the common [`BanditSolver`] trait;
//! * [`context`] — context-vector scaling utilities.
//!
//! # Example
//!
//! ```rust
//! use hec_bandit::{PolicyNetwork, RewardModel};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let mut policy = PolicyNetwork::new(4, 100, 3, 0);
//! let ctx = [0.1, 0.9, 0.4, 0.2];
//! let probs = policy.probabilities(&ctx);
//! assert_eq!(probs.len(), 3);
//! assert!((probs.iter().sum::<f32>() - 1.0).abs() < 1e-5);
//!
//! let reward = RewardModel::new(0.0005);
//! // A correct detection at 12.4 ms is worth more than one at 504.5 ms.
//! assert!(reward.reward(true, 12.4) > reward.reward(true, 504.5));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod context;
pub mod delay;
pub mod policy;
pub mod reward;
pub mod solvers;
pub mod train;

pub use context::{ContextScaler, LoadNormalizer};
pub use delay::{DelaySource, ObservedDelays, StaticDelays};
pub use policy::PolicyNetwork;
pub use reward::{CostModel, InvalidDelay, RewardModel};
pub use solvers::{BanditSolver, EpsilonGreedy, LinUcb};
pub use train::{PolicyTrainer, ReinforcementComparison, TrainConfig, TrainingCurve};
