//! End-to-end telemetry invariants over the sharded fleet driver:
//!
//! * the global metric snapshot — in every sink format — and the virtual-
//!   clock trace export are **byte-identical** across `HEC_THREADS`
//!   values for the same run (the repo's determinism invariant extended
//!   to the telemetry subsystem; CI enforces the same property on
//!   `repro_fleet --telemetry` output);
//! * window conservation is visible end to end: the per-layer drop
//!   breakdown [`hec_core::stream::DropBreakdown`] sums to the fleet
//!   report's drop count, `emitted == served + dropped`, and the
//!   registry's `stream.drops` / `fleet.*` counters agree with both.
//!
//! Everything lives in one `#[test]`: the registry, trace store and
//! capture flag are binary-global, so concurrent tests would disturb
//! each other. When the crate is built without `hec-telemetry/enabled`
//! the test degenerates to the conservation checks (the registry is
//! inert), so it stays meaningful in the no-op configuration too.

use hec_bandit::{ContextScaler, RewardModel};
use hec_core::parallel::with_thread_count;
use hec_core::stream::stream_through_fleet;
use hec_core::{run_scenario_sharded, Oracle, SchemeKind, WindowOutcome};
use hec_sim::fleet::{CohortSpec, FleetScale, FleetScenario, RoutePlan};
use hec_telemetry::{MetricValue, Snapshot};

/// Synthetic oracle (the shape `fleet_train`'s tests use): truth on
/// every third window, all layers confident.
fn oracle(n: usize) -> Oracle {
    let outcomes = (0..n)
        .map(|i| {
            let truth = i % 3 == 0;
            WindowOutcome {
                truth,
                min_log_pd: [
                    if truth { -60.0 } else { -1.0 },
                    if truth { -60.0 } else { -1.0 },
                    if truth { -60.0 } else { -1.0 },
                ],
                anomalous_fraction: [0.4; 3].map(|f| if truth { f } else { 0.0 }),
                context: vec![(i % 2) as f32, (i % 3) as f32 / 2.0],
            }
        })
        .collect();
    Oracle {
        outcomes,
        thresholds: [-10.0; 3],
        flag_fraction: 0.0,
        confidence: hec_anomaly::ConfidenceRule::default(),
    }
}

/// A fleet hot enough that routing everything to the edge drops windows:
/// 60 devices × 8 windows / 25 ms against a 40-deep edge queue.
fn hot_scenario() -> FleetScenario {
    let mut sc = FleetScenario::light_load(FleetScale::Quick);
    sc.name = "telemetry_test".into();
    sc.batch_max = 1;
    sc.queue_capacity = 40;
    sc.trace_interval_ms = 25.0;
    sc.cohorts = vec![CohortSpec::uniform(60, 8, 25.0, 0.0, RoutePlan::Fixed(0))];
    sc
}

/// Sum of a named counter across all label sets in a snapshot.
fn counter_total(snap: &Snapshot, name: &str) -> u64 {
    snap.entries()
        .iter()
        .filter(|(k, _)| k.name() == name)
        .map(|(_, v)| match v {
            MetricValue::Counter(n) => *n,
            other => panic!("{name} is not a counter: {other:?}"),
        })
        .sum()
}

#[test]
fn telemetry_is_thread_count_invariant_and_conserves_windows() {
    // --- Part 1: snapshot + trace byte-identity across HEC_THREADS. ---
    if hec_telemetry::ENABLED {
        let sc = FleetScenario::edge_saturated(FleetScale::Quick);
        let mut dumps: Vec<(String, String, String, String)> = Vec::new();
        for threads in [1usize, 2, 4] {
            hec_telemetry::reset();
            hec_telemetry::clear_trace();
            hec_telemetry::set_trace_capture(true);
            let run = with_thread_count(threads, || run_scenario_sharded(&sc, 4));
            hec_telemetry::set_trace_capture(false);
            let snap = hec_telemetry::snapshot();
            assert!(!snap.is_empty(), "instrumented run recorded no metrics");
            assert_eq!(
                counter_total(&snap, "fleet.shard.events"),
                run.report.events,
                "per-shard event counters disagree with the report"
            );
            dumps.push((
                snap.to_text(),
                snap.to_csv(),
                snap.to_ndjson(),
                hec_telemetry::export_chrome_trace(),
            ));
        }
        hec_telemetry::clear_trace();
        for d in &dumps[1..] {
            assert_eq!(dumps[0].0, d.0, "snapshot text depends on HEC_THREADS");
            assert_eq!(dumps[0].1, d.1, "snapshot CSV depends on HEC_THREADS");
            assert_eq!(dumps[0].2, d.2, "snapshot NDJSON depends on HEC_THREADS");
            assert_eq!(dumps[0].3, d.3, "chrome trace depends on HEC_THREADS");
        }
        let trace = &dumps[0].3;
        assert!(trace.contains("edge_saturated/shard0"), "advance track missing");
        assert!(trace.contains("edge_saturated/coordinator"), "barrier track missing");
        assert!(trace.contains("\"ph\":\"X\""), "no complete spans captured");
        hec_telemetry::reset();
    } else {
        eprintln!("telemetry disabled: skipping snapshot byte-identity section");
    }

    // --- Part 2: drop conservation, engine -> stream -> registry. ---
    hec_telemetry::reset();
    let o = oracle(48);
    let scaler = ContextScaler::fit(&o.contexts());
    let sc = hot_scenario();
    let reward = RewardModel::new(0.0005);
    // Everything to the edge: the 40-deep queue must shed load.
    let r = stream_through_fleet(&sc, &o, SchemeKind::Edge, None, Some(&scaler), &reward, None);
    assert!(r.fleet.dropped > 0, "scenario failed to produce drops");
    assert_eq!(
        r.fleet.served + r.fleet.dropped,
        r.fleet.emitted,
        "fleet lost windows: emitted != served + dropped"
    );
    let breakdown_total: u64 = r.drops.iter().map(|d| d.queue + d.link).sum();
    assert_eq!(
        breakdown_total, r.fleet.dropped,
        "drop breakdown does not sum to the fleet's drop count"
    );
    // Every drop in this scenario is a queue overflow at the edge.
    for d in &r.drops {
        assert_eq!(d.link, 0, "unexpected link drop at layer {}", d.layer);
        if d.queue > 0 {
            assert_eq!(d.layer, 1, "queue drops must be at the edge layer");
        }
    }
    if hec_telemetry::ENABLED {
        let snap = hec_telemetry::snapshot();
        assert_eq!(
            counter_total(&snap, "stream.drops"),
            r.fleet.dropped,
            "stream.drops counters disagree with the report"
        );
        assert_eq!(counter_total(&snap, "fleet.dropped"), r.fleet.dropped);
        assert_eq!(counter_total(&snap, "fleet.served"), r.fleet.served);
        assert_eq!(counter_total(&snap, "fleet.emitted"), r.fleet.emitted);
        hec_telemetry::reset();
    }
}
