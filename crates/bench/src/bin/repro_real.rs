//! Runs the paper's full protocol on **real (file-backed) traces**: the
//! checked-in CSV power-demand and NDJSON MHEALTH fixtures stream through
//! ingestion → standardisation → `paper_split` → detector training →
//! policy training → Table-I/II-style evaluation → the closed-loop fleet
//! simulator (the trace's windows replayed as a probe cohort inside the
//! `light_load` background fleet).
//!
//! Requires the `real-data` feature:
//!
//! ```text
//! cargo run --release -p hec-bench --features real-data --bin repro_real -- [fixtures_dir]
//! ```
//!
//! Everything on stdout is deterministic — same fixtures ⇒ byte-identical
//! output across reruns and `HEC_THREADS` settings (the CI real-data job
//! enforces this with a diff). The adversarial fixtures demonstrate the
//! loader's failure mode: line-numbered errors, never panics.

use hec_bandit::{RewardModel, TrainConfig};
use hec_core::stream::stream_through_fleet;
use hec_core::{
    format_table1, format_table2, DatasetConfig, Experiment, ExperimentConfig, SchemeKind,
};
use hec_data::ingest::{MhealthNdjsonSource, MissingValuePolicy, PowerCsvSource};
use hec_data::mhealth::MhealthConfig;
use hec_data::power::PowerConfig;
use hec_data::{DatasetSource, LabeledCorpus};
use hec_sim::fleet::{FleetScale, FleetScenario};

/// Counting global allocator, so `AllocPhase` deltas recorded by the
/// instrumented library layers are real in this binary.
#[cfg(feature = "telemetry")]
#[global_allocator]
static GLOBAL_ALLOC: hec_telemetry::CountingAlloc = hec_telemetry::CountingAlloc;

/// Day length of the power fixture (readings per day).
const POWER_SPD: usize = 24;
/// Window/stride of the MHEALTH fixture protocol.
const MHEALTH_WINDOW: usize = 16;
const MHEALTH_STRIDE: usize = 8;

/// Parsed command line: the fixtures directory and the telemetry dump
/// directory.
fn parse_args() -> (String, Option<String>) {
    let mut fixtures: Option<String> = None;
    let mut telemetry_dir: Option<String> = None;
    let mut args = std::env::args().skip(1);
    let usage_exit = || -> ! {
        eprintln!("usage: repro_real [fixtures_dir] [--telemetry <dir>]");
        std::process::exit(2);
    };
    while let Some(arg) = args.next() {
        if arg == "--telemetry" {
            telemetry_dir = Some(args.next().unwrap_or_else(|| usage_exit()));
        } else if arg.starts_with('-') || fixtures.is_some() {
            usage_exit();
        } else {
            fixtures = Some(arg);
        }
    }
    let fixtures =
        fixtures.unwrap_or_else(|| format!("{}/../../fixtures", env!("CARGO_MANIFEST_DIR")));
    (fixtures, telemetry_dir)
}

fn describe(corpus: &LabeledCorpus) -> String {
    let classes: Vec<String> =
        corpus.class_counts().iter().map(|(c, n)| format!("{c}:{n}")).collect();
    format!(
        "{} windows ({} normal, {} anomalous; class counts {{{}}})",
        corpus.len(),
        corpus.normal_count(),
        corpus.len() - corpus.normal_count(),
        classes.join(", ")
    )
}

/// The scenario's light-load background fleet plus the real trace as
/// the standard scheme-routed probe cohort
/// ([`hec_bench::push_probe_cohort`], quick-scale twin rates).
fn probe_scenario(kind: hec_sim::DatasetKind, payload_bytes: usize) -> (FleetScenario, u32) {
    let mut sc = FleetScenario::light_load(FleetScale::Quick);
    sc.kind = kind;
    sc.payload_bytes = payload_bytes;
    let probe = hec_bench::push_probe_cohort(&mut sc, FleetScale::Quick);
    (sc, probe)
}

/// Full protocol over one loaded corpus.
fn run_pipeline(label: &str, config: ExperimentConfig, corpus: LabeledCorpus) {
    println!("--- {label} ---");
    println!("corpus: {}", describe(&corpus));

    let mut exp = Experiment::prepare_with_corpus(config, corpus);
    let (train, test, policy_n, full) = exp.split.sizes();
    println!("paper split: ad_train={train} ad_test={test} policy_train={policy_n} full={full}");

    exp.train_detectors();
    println!("{}", format_table1(&exp.table1()));

    let policy_corpus = exp.split.policy_train.clone();
    let policy_oracle = exp.oracle_over(&policy_corpus);
    let (mut policy, scaler, curve) = exp.train_policy(&policy_oracle);
    println!(
        "policy training: {} epochs over {} windows, reward {:.4} -> {:.4}\n",
        curve.mean_reward_per_epoch.len(),
        policy_oracle.len(),
        curve.mean_reward_per_epoch[0],
        curve.final_reward()
    );

    let eval_corpus = exp.split.full.clone();
    let eval_oracle = exp.oracle_over(&eval_corpus);
    let (table2, actions) = exp.table2(&eval_oracle, &mut policy, &scaler);
    println!("{}", format_table2(&table2));
    println!("adaptive action histogram (IoT/Edge/Cloud): {actions:?}\n");

    // Closed loop: the trace's windows replay as a probe cohort inside
    // the light_load background fleet; every scheme routes the probe.
    let kind = exp.config().dataset.kind();
    let payload = exp.config().payload_bytes();
    let (sc, probe) = probe_scenario(kind, payload);
    let reward = RewardModel::new(kind.paper_alpha());
    println!(
        "fleet closed loop ({} background cohorts + {}-device probe):",
        sc.cohorts.len() - 1,
        sc.cohorts[probe as usize].devices
    );
    for scheme in SchemeKind::ALL {
        let r = match scheme {
            SchemeKind::Adaptive => stream_through_fleet(
                &sc,
                &eval_oracle,
                scheme,
                Some(&mut policy),
                Some(&scaler),
                &reward,
                Some(probe),
            ),
            _ => stream_through_fleet(&sc, &eval_oracle, scheme, None, None, &reward, Some(probe)),
        };
        println!(
            "  {:<11} acc={:.4} f1={:.4} reward={:<8.2} mean={:.2} ms p99={:.2} ms \
             served={} missed={}",
            scheme.to_string(),
            r.accuracy(),
            r.f1(),
            r.mean_reward_x100,
            r.routed_mean_ms,
            r.routed_p99_ms,
            r.confusion.total(),
            r.missed
        );
    }
    println!();
}

/// Demonstrates the loader's failure mode on an adversarial trace: a
/// line-numbered error under each missing-value policy, never a panic.
fn show_errors(label: &str, load: impl Fn(MissingValuePolicy) -> Option<hec_data::IngestError>) {
    for policy in [MissingValuePolicy::Reject, MissingValuePolicy::ImputePrevious] {
        match load(policy) {
            Some(err) => println!("  {label} [{policy}] -> error: {err}"),
            None => println!("  {label} [{policy}] -> loaded cleanly"),
        }
    }
}

fn main() {
    let (dir, telemetry_dir) = parse_args();
    hec_bench::telemetry::init("repro_real", telemetry_dir.as_deref());
    let mut bench_metrics: Vec<(String, f64)> = Vec::new();
    println!("== repro_real (fixture traces through the full paper protocol) ==\n");

    // --- univariate: power-demand CSV ---
    let power_source =
        PowerCsvSource::new(format!("{dir}/power_good.csv"), POWER_SPD, MissingValuePolicy::Reject);
    let corpus = match power_source.load() {
        Ok(c) => c,
        Err(e) => {
            eprintln!("failed to load power_good.csv: {e}");
            std::process::exit(1);
        }
    };
    let days = corpus.len();
    let config = ExperimentConfig {
        dataset: DatasetConfig::Univariate(PowerConfig {
            days,
            samples_per_day: POWER_SPD,
            anomaly_rate: 0.0, // unused: the corpus is file-backed
            noise_std: 0.0,
            seed: 42,
        }),
        ad_epochs: 60,
        policy: TrainConfig { epochs: 25, learning_rate: 2e-3, ..Default::default() },
        seq2seq_hidden: 8,
        policy_hidden: 32,
        seed: 42,
    };
    let n_windows = corpus.len();
    let t0 = std::time::Instant::now();
    run_pipeline(&power_source.name(), config, corpus);
    let wall = t0.elapsed().as_secs_f64();
    eprintln!("[timing] power pipeline: {wall:.2} s");
    bench_metrics.push(("power.pipeline_s".into(), wall));
    bench_metrics.push(("power.windows_per_s".into(), n_windows as f64 / wall));

    // --- multivariate: MHEALTH NDJSON ---
    let mhealth_source = MhealthNdjsonSource::new(
        format!("{dir}/mhealth_good.ndjson"),
        MHEALTH_WINDOW,
        MHEALTH_STRIDE,
        MissingValuePolicy::Reject,
    );
    let corpus = match mhealth_source.load() {
        Ok(c) => c,
        Err(e) => {
            eprintln!("failed to load mhealth_good.ndjson: {e}");
            std::process::exit(1);
        }
    };
    let config = ExperimentConfig {
        dataset: DatasetConfig::Multivariate(MhealthConfig {
            subjects: 2,
            window: MHEALTH_WINDOW,
            stride: MHEALTH_STRIDE,
            session_len: MHEALTH_WINDOW, // unused: the corpus is file-backed
            normal_session_multiplier: 1,
            noise_std: 0.0,
            seed: 42,
        }),
        ad_epochs: 6,
        policy: TrainConfig { epochs: 25, learning_rate: 2e-3, ..Default::default() },
        seq2seq_hidden: 8,
        policy_hidden: 32,
        seed: 42,
    };
    let n_windows = corpus.len();
    let t0 = std::time::Instant::now();
    run_pipeline(&mhealth_source.name(), config, corpus);
    let wall = t0.elapsed().as_secs_f64();
    eprintln!("[timing] mhealth pipeline: {wall:.2} s");
    bench_metrics.push(("mhealth.pipeline_s".into(), wall));
    bench_metrics.push(("mhealth.windows_per_s".into(), n_windows as f64 / wall));

    // --- adversarial traces: line-numbered errors, not panics ---
    println!("--- adversarial traces ---");
    show_errors("power_bad.csv", |policy| {
        PowerCsvSource::new(format!("{dir}/power_bad.csv"), POWER_SPD, policy).load().err()
    });
    show_errors("mhealth_bad.ndjson", |policy| {
        MhealthNdjsonSource::new(
            format!("{dir}/mhealth_bad.ndjson"),
            MHEALTH_WINDOW,
            MHEALTH_STRIDE,
            policy,
        )
        .load()
        .err()
    });

    let metric_refs: Vec<(&str, f64)> =
        bench_metrics.iter().map(|(n, v)| (n.as_str(), *v)).collect();
    hec_bench::telemetry::write_bench_json("repro_real", &metric_refs);
    hec_bench::telemetry::dump("repro_real", telemetry_dir.as_deref());
}
