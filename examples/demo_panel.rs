//! A terminal rendition of the paper's demo GUI (Fig. 3): stream the test
//! corpus through the HEC runtime, print the live panel rows (outcome vs
//! truth, delay vs action, cumulative accuracy/F1) and a final summary —
//! including the threaded message-passing runtime standing in for the
//! testbed's keep-alive TCP sockets.
//!
//! ```text
//! cargo run --release --example demo_panel
//! ```

use hec_ad::bandit::RewardModel;
use hec_ad::core::stream::stream_records;
use hec_ad::core::{DatasetConfig, Experiment, ExperimentConfig, SchemeEvaluator, SchemeKind};
use hec_ad::data::power::PowerConfig;
use hec_ad::sim::{DetectJob, HecRuntime};

fn main() {
    let config = ExperimentConfig {
        dataset: DatasetConfig::Univariate(PowerConfig {
            days: 200,
            samples_per_day: 48,
            anomaly_rate: 0.15,
            noise_std: 0.03,
            seed: 9,
        }),
        ad_epochs: 100,
        seed: 9,
        ..ExperimentConfig::univariate()
    };
    let payload = config.payload_bytes();
    let alpha = config.dataset.kind().paper_alpha();

    let mut exp = Experiment::prepare(config);
    exp.train_detectors();
    let policy_corpus = exp.split.policy_train.clone();
    let policy_oracle = exp.oracle_over(&policy_corpus);
    let (mut policy, scaler, _) = exp.train_policy(&policy_oracle);

    let eval_corpus = exp.split.ad_test.clone();
    let oracle = exp.oracle_over(&eval_corpus);
    let ev = SchemeEvaluator::new(exp.topology(), payload, RewardModel::new(alpha));
    let records =
        stream_records(&ev, &oracle, SchemeKind::Adaptive, Some(&mut policy), Some(&scaler));

    // Replay the chosen actions through the threaded runtime, as the demo
    // testbed would: each job is routed to its layer's worker over channels.
    let verdicts: Vec<bool> = records.iter().map(|r| r.predicted).collect();
    let executors: Vec<_> = (0..3)
        .map(|_| {
            let v = verdicts.clone();
            Box::new(move |id: u64| v[id as usize]) as _
        })
        .collect();
    let runtime = HecRuntime::spawn(exp.topology().clone(), executors);
    for r in &records {
        runtime.submit(DetectJob { id: r.index as u64, layer: r.action, payload_bytes: payload });
    }
    let results = runtime.shutdown();

    println!("┌──────┬───────┬──────┬────────┬───────────┬─────────┬────────┐");
    println!("│  #   │ truth │ pred │ action │ delay(ms) │ cum.acc │ cum.F1 │");
    println!("├──────┼───────┼──────┼────────┼───────────┼─────────┼────────┤");
    for (r, job) in records.iter().zip(results.iter()).take(25) {
        println!(
            "│ {:>4} │   {}   │  {}   │ {:<6} │ {:>9.1} │  {:>5.3}  │ {:>5.3}  │",
            r.index,
            r.truth as u8,
            r.predicted as u8,
            ["IoT", "Edge", "Cloud"][r.action],
            job.e2e_ms,
            r.cumulative_accuracy,
            r.cumulative_f1
        );
    }
    println!("└──────┴───────┴──────┴────────┴───────────┴─────────┴────────┘");
    if records.len() > 25 {
        println!("… {} more rows", records.len() - 25);
    }

    let last = records.last().expect("non-empty stream");
    let mean_delay: f64 = results.iter().map(|r| r.e2e_ms).sum::<f64>() / results.len() as f64;
    let mut hist = [0usize; 3];
    for r in &records {
        hist[r.action] += 1;
    }
    println!(
        "\nfinal: accuracy {:.2}%  f1 {:.3}  mean delay {:.1} ms",
        last.cumulative_accuracy * 100.0,
        last.cumulative_f1,
        mean_delay
    );
    println!("actions: IoT {} / Edge {} / Cloud {}", hist[0], hist[1], hist[2]);
}
