//! Property tests for the telemetry primitives:
//!
//! * histogram merge is associative and commutative (bitwise-exact on
//!   every field for integer-valued samples, where f64 addition cannot
//!   round; bins/count/min/max exact and sum within epsilon for arbitrary
//!   floats);
//! * a local [`Registry`] produces the same snapshot — byte-for-byte in
//!   every sink format — whatever order its metrics were recorded in,
//!   the property the global registry's cross-thread determinism rests
//!   on.
//!
//! These run against the crate with or without the `enabled` feature:
//! `GeomHist` and the local (non-global) `Registry` API are always
//! compiled; only the global recording entry points gate on `ENABLED`.

use proptest::prelude::*;

use hec_telemetry::{GeomHist, Registry};

fn hist_of(samples: &[f64]) -> GeomHist {
    let mut h = GeomHist::new();
    for &s in samples {
        h.record(s);
    }
    h
}

/// Bitwise equality on every observable field (PartialEq on the struct
/// covers bins/count/min/max/sum; quantiles derive from those).
fn assert_bitwise_eq(a: &GeomHist, b: &GeomHist) {
    assert_eq!(a, b);
    assert_eq!(a.sum().to_bits(), b.sum().to_bits(), "sum differs in bits");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Integer-valued samples: f64 addition over them is exact up to
    /// 2^53, so merge must be bitwise-identical under any grouping or
    /// ordering of the parts.
    #[test]
    fn hist_merge_associative_commutative_exact_on_integers(
        a in proptest::collection::vec(0u32..1_000_000, 0..40),
        b in proptest::collection::vec(0u32..1_000_000, 0..40),
        c in proptest::collection::vec(0u32..1_000_000, 0..40),
    ) {
        let to_f = |v: &[u32]| v.iter().map(|&x| x as f64).collect::<Vec<_>>();
        let (ha, hb, hc) = (hist_of(&to_f(&a)), hist_of(&to_f(&b)), hist_of(&to_f(&c)));

        // Commutativity: a+b == b+a.
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        assert_bitwise_eq(&ab, &ba);

        // Associativity: (a+b)+c == a+(b+c).
        let mut ab_c = ab.clone();
        ab_c.merge(&hc);
        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut a_bc = ha.clone();
        a_bc.merge(&bc);
        assert_bitwise_eq(&ab_c, &a_bc);

        // Merge equals recording the concatenation in order.
        let mut all = to_f(&a);
        all.extend(to_f(&b));
        all.extend(to_f(&c));
        let direct = hist_of(&all);
        assert_eq!(ab_c.count(), direct.count());
        assert_bitwise_eq(&ab_c, &direct);
    }

    /// Arbitrary finite floats: the discrete fields (bins, count, min,
    /// max) stay exact under reordering; only `sum` may round, and it
    /// stays within a relative epsilon.
    #[test]
    fn hist_merge_commutative_on_floats(
        a in proptest::collection::vec(0.0f64..1e12, 1..40),
        b in proptest::collection::vec(0.0f64..1e12, 1..40),
    ) {
        let (ha, hb) = (hist_of(&a), hist_of(&b));
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        assert_eq!(ab.count(), ba.count());
        assert_eq!(ab.min().to_bits(), ba.min().to_bits());
        assert_eq!(ab.max().to_bits(), ba.max().to_bits());
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(ab.quantile(q).to_bits(), ba.quantile(q).to_bits());
        }
        let eps = 1e-9 * ab.sum().abs().max(1.0);
        assert!((ab.sum() - ba.sum()).abs() <= eps, "{} vs {}", ab.sum(), ba.sum());
    }

    /// A registry's snapshot — in all three sink formats — is invariant
    /// to the order metrics were recorded in.
    #[test]
    fn registry_snapshot_is_insertion_order_invariant(
        counters in proptest::collection::vec((0usize..8, 1u64..1000), 1..24),
        rot in 0usize..23,
    ) {
        const NAMES: [&str; 4] = ["a.count", "b.count", "c.count", "d.count"];
        const SHARDS: [&str; 2] = ["0000", "0001"];
        let key = |i: usize| (NAMES[i / 2], SHARDS[i % 2]);

        let mut forward = Registry::new();
        for &(i, n) in &counters {
            let (name, shard) = key(i);
            forward.counter_add(name, &[("shard", shard)], n);
            forward.hist_record("lat", &[("shard", shard)], n as f64);
        }

        let rot = rot % counters.len();
        let mut rotated = Registry::new();
        for &(i, n) in counters[rot..].iter().chain(&counters[..rot]) {
            let (name, shard) = key(i);
            rotated.counter_add(name, &[("shard", shard)], n);
            rotated.hist_record("lat", &[("shard", shard)], n as f64);
        }

        let (s1, s2) = (forward.snapshot(), rotated.snapshot());
        assert_eq!(s1.to_text(), s2.to_text());
        assert_eq!(s1.to_csv(), s2.to_csv());
        assert_eq!(s1.to_ndjson(), s2.to_ndjson());
    }
}
