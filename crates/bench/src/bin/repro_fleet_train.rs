//! Fleet-in-the-loop training vs the paper's static training regime.
//!
//! Trains the adaptive policy two ways on the univariate pipeline —
//! **static** (the paper's regime: REINFORCE against the unloaded
//! per-action delay table) and **fleet** (inside the discrete-event
//! simulator: load-aware context features, rewards from observed
//! load-dependent delays, drops at the explicit penalty) — then evaluates
//! both closed-loop on all four named fleet scenarios in the
//! **shared-fleet** setting: each scenario's own cohorts replay their
//! mixture routing as background load (edge_saturated really does peg the
//! edge queue) while the policy routes a dedicated probe cohort through
//! the loaded hierarchy. The statically-trained policy cannot see the
//! congestion; the fleet-trained one carries live queue-depth features.
//!
//! Fleet training always runs on the scenario's **Quick-scale twin**:
//! the twin divides fleet size and virtual time by the same factor, so
//! offered-load rates — and therefore saturation behaviour and the load
//! features' distribution — match the evaluation scale by construction,
//! at 1/50 the training cost. Evaluation runs at the profile's scale
//! (`HEC_PROFILE=full` ⇒ 100k+ devices, ≥1M windows per scenario).
//!
//! Everything on stdout is deterministic — same profile ⇒ byte-identical
//! output across reruns and `HEC_THREADS` settings, which the CI smoke
//! job enforces by diffing two runs (timing goes to stderr).
//!
//! ```text
//! cargo run --release -p hec-bench --bin repro_fleet_train -- [out_dir] \
//!     [--layer0-exec-ms <ms>]
//! ```
//!
//! With `out_dir`, a `fleet_train.csv` comparison table is written there.
//!
//! `--layer0-exec-ms` (or env `HEC_LAYER0_EXEC_MS`) replaces the paper's
//! measured 12.4 ms layer-0 execution time everywhere delays are derived —
//! the static delay table the baseline policy trains against, the fleet
//! scenarios' device-local execution, and the shared layers' service times.
//! Pass the per-window latency `repro_quant` measures for the int8 path to
//! re-record the comparison with the cheaper layer 0. Output stays
//! deterministic for a fixed flag value (the default invocation is
//! byte-identical to the flagless binary).

use std::fmt::Write as _;
use std::time::Instant;

use hec_bandit::{RewardModel, TrainConfig};
use hec_bench::{univariate_config, Profile};
use hec_core::stream::stream_through_fleet;
use hec_core::{train_policy_in_fleet, Experiment, SchemeKind};
use hec_sim::fleet::{FleetScale, FleetScenario};
use hec_sim::DatasetKind;

/// The named scenario plus the standard scheme-routed probe cohort
/// ([`hec_bench::push_probe_cohort`]): 20k devices (full scale) emitting
/// one window per minute through the scenario's background fleet.
/// Returns the scenario and the probe cohort's index.
fn with_probe_cohort(
    name: &str,
    scale: FleetScale,
    layer0_exec_ms: Option<f64>,
) -> (FleetScenario, u32) {
    let mut sc = FleetScenario::by_name(name, scale).expect("named scenario");
    sc.exec_ms_override[0] = layer0_exec_ms;
    let probe = hec_bench::push_probe_cohort(&mut sc, scale);
    (sc, probe)
}

/// Counting global allocator, so `AllocPhase` deltas recorded by the
/// instrumented library layers are real in this binary.
#[cfg(feature = "telemetry")]
#[global_allocator]
static GLOBAL_ALLOC: hec_telemetry::CountingAlloc = hec_telemetry::CountingAlloc;

fn usage_exit(detail: &str) -> ! {
    eprintln!(
        "usage: repro_fleet_train [out_dir] [--layer0-exec-ms <ms>] [--telemetry <dir>]  \
         ({detail})"
    );
    std::process::exit(2);
}

fn main() {
    let mut out_dir: Option<String> = None;
    let mut telemetry_dir: Option<String> = None;
    let mut layer0_exec_ms: Option<f64> = std::env::var("HEC_LAYER0_EXEC_MS")
        .ok()
        .map(|v| v.parse().unwrap_or_else(|_| usage_exit("bad HEC_LAYER0_EXEC_MS")));
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--layer0-exec-ms" {
            let ms: f64 = args
                .next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| usage_exit("--layer0-exec-ms needs a number"));
            layer0_exec_ms = Some(ms);
        } else if arg == "--telemetry" {
            telemetry_dir =
                Some(args.next().unwrap_or_else(|| usage_exit("--telemetry needs a directory")));
        } else if arg.starts_with('-') || out_dir.is_some() {
            usage_exit(&format!("unexpected argument {arg:?}"));
        } else {
            out_dir = Some(arg);
        }
    }
    if let Some(ms) = layer0_exec_ms {
        if !(ms.is_finite() && ms > 0.0) {
            usage_exit("layer-0 exec override must be finite and > 0");
        }
    }
    hec_bench::telemetry::init("repro_fleet_train", telemetry_dir.as_deref());
    let mut bench_metrics: Vec<(String, f64)> = Vec::new();
    let profile = Profile::from_env();
    let eval_scale = match profile {
        Profile::Quick => FleetScale::Quick,
        Profile::Full => FleetScale::Full,
    };
    println!("== repro_fleet_train (profile: {profile:?}) ==\n");
    if let Some(ms) = layer0_exec_ms {
        println!("layer-0 exec override: {ms} ms (int8 quantised inference path)\n");
    }

    // Shared pipeline: detectors, oracles, and the statically-trained
    // baseline policy (the paper's regime).
    let config = univariate_config(profile);
    let policy_hidden = config.policy_hidden;
    let policy_cfg = config.policy;
    // Fleet training always uses the quick-scale twin, so its depth does
    // not vary with the evaluation profile. Far more updates per epoch
    // than the static regime (every probe window, not every corpus
    // window) would saturate plain REINFORCE's softmax on the
    // on-average-best action before it discriminates per context; the
    // entropy bonus keeps the policy exploratory at the full learning
    // rate (this replaces the former ×0.25 learning-rate workaround).
    let fleet_epochs = 6usize;
    let fleet_entropy_beta = 0.08f32;
    let t0 = Instant::now();
    let mut exp = Experiment::prepare(config);
    if let Some(ms) = layer0_exec_ms {
        // The static regime trains against this topology's delay table, so
        // the baseline policy sees the quantised layer-0 cost too.
        exp.override_exec_ms(0, ms);
    }
    exp.train_detectors();
    let policy_corpus = exp.split.policy_train.clone();
    let policy_oracle = exp.oracle_over(&policy_corpus);
    let (mut static_policy, scaler, _static_curve) = exp.train_policy(&policy_oracle);
    let eval_corpus = exp.split.full.clone();
    let eval_oracle = exp.oracle_over(&eval_corpus);
    eprintln!("[timing] pipeline + static policy: {:.2} s", t0.elapsed().as_secs_f64());
    let reward = RewardModel::new(DatasetKind::Univariate.paper_alpha());
    println!(
        "pipeline: {} policy-training windows, {} evaluation windows, alpha = {}\n",
        policy_oracle.len(),
        eval_oracle.len(),
        reward.cost_model().alpha()
    );

    let mut csv = String::from(
        "scenario,policy,fleet_emitted,fleet_served,probe_missed,accuracy,f1,reward_x100,\
         routed_mean_ms,routed_p99_ms\n",
    );
    for name in FleetScenario::NAMES {
        // Train inside the scenario's quick-scale twin (same rates, same
        // saturation behaviour, 1/50 the cost).
        let (train_sc, train_probe) = with_probe_cohort(name, FleetScale::Quick, layer0_exec_ms);
        let t0 = Instant::now();
        let out = train_policy_in_fleet(
            &train_sc,
            &policy_oracle,
            &scaler,
            &reward,
            policy_hidden,
            TrainConfig { epochs: fleet_epochs, entropy_beta: fleet_entropy_beta, ..policy_cfg },
            Some(train_probe),
        );
        let train_wall = t0.elapsed().as_secs_f64();
        eprintln!("[timing] fleet-train {name}: {train_wall:.2} s");
        bench_metrics
            .push((format!("{name}.train_epoch_ms"), train_wall * 1e3 / fleet_epochs as f64));
        let curve = &out.curve.mean_reward_per_epoch;
        println!("scenario {name}:");
        println!(
            "  fleet training ({} epochs x {} probe windows): reward {:.4} -> {:.4}, \
             drops {} -> {}",
            fleet_epochs,
            train_sc.cohorts[train_probe as usize].total_windows(),
            curve[0],
            curve[curve.len() - 1],
            out.drops_per_epoch[0],
            out.drops_per_epoch[out.drops_per_epoch.len() - 1],
        );
        let mut fleet_policy = out.policy;

        // Closed-loop evaluation at the profile's scale.
        let (eval_sc, eval_probe) = with_probe_cohort(name, eval_scale, layer0_exec_ms);
        let t0 = Instant::now();
        let results = [
            (
                "static",
                stream_through_fleet(
                    &eval_sc,
                    &eval_oracle,
                    SchemeKind::Adaptive,
                    Some(&mut static_policy),
                    Some(&scaler),
                    &reward,
                    Some(eval_probe),
                ),
            ),
            (
                "fleet",
                stream_through_fleet(
                    &eval_sc,
                    &eval_oracle,
                    SchemeKind::Adaptive,
                    Some(&mut fleet_policy),
                    Some(&scaler),
                    &reward,
                    Some(eval_probe),
                ),
            ),
        ];
        let eval_wall = t0.elapsed().as_secs_f64();
        eprintln!("[timing] eval {name}: {eval_wall:.2} s");
        let eval_windows: u64 = results.iter().map(|(_, r)| r.fleet.emitted).sum();
        bench_metrics.push((format!("{name}.windows_per_s"), eval_windows as f64 / eval_wall));
        for (label, r) in &results {
            println!(
                "  {label:<7} acc={:.4} f1={:.4} reward={:<9.2} mean={:.2} ms p99={:.2} ms \
                 served={} missed={}",
                r.accuracy(),
                r.f1(),
                r.mean_reward_x100,
                r.routed_mean_ms,
                r.routed_p99_ms,
                r.confusion.total(),
                r.missed
            );
            let _ = writeln!(
                csv,
                "{},{},{},{},{},{:.6},{:.6},{:.4},{:.3},{:.3}",
                name,
                label,
                r.fleet.emitted,
                r.fleet.served,
                r.missed,
                r.accuracy(),
                r.f1(),
                r.mean_reward_x100,
                r.routed_mean_ms,
                r.routed_p99_ms
            );
        }
        println!(
            "  delta reward (fleet - static): {:+.2}\n",
            results[1].1.mean_reward_x100 - results[0].1.mean_reward_x100
        );
    }

    if let Some(dir) = &out_dir {
        std::fs::create_dir_all(dir).expect("create output directory");
        let path = format!("{dir}/fleet_train.csv");
        std::fs::write(&path, csv).expect("write comparison CSV");
        println!("wrote {path}");
    }

    let metric_refs: Vec<(&str, f64)> =
        bench_metrics.iter().map(|(n, v)| (n.as_str(), *v)).collect();
    hec_bench::telemetry::write_bench_json("repro_fleet_train", &metric_refs);
    hec_bench::telemetry::dump("repro_fleet_train", telemetry_dir.as_deref());
}
