//! The end-to-end experiment pipeline.
//!
//! Mirrors the paper's procedure: generate the dataset → standardise →
//! split (§III-A) → train the three AD models on normal data → calibrate
//! the logPD scorers → precompute the frozen oracle → train the policy
//! network on the policy-training split → evaluate all five schemes on the
//! whole dataset (Tables I and II).

use hec_anomaly::{FitError, ModelCatalog};
use hec_bandit::{
    ContextScaler, PolicyNetwork, PolicyTrainer, RewardModel, StaticDelays, TrainConfig,
    TrainingCurve,
};
use hec_data::{
    mhealth::{Activity, MhealthConfig, MhealthGenerator},
    paper_split,
    power::{PowerConfig, PowerGenerator},
    standardize::Standardizer,
    BinaryConfusion, DatasetSource, LabeledCorpus, LabeledWindow, PaperSplit,
};
use hec_sim::{DatasetKind, HecTopology};
use hec_tensor::Matrix;

use crate::oracle::Oracle;
use crate::report::{Table1Row, Table2Row};
use crate::scheme::{SchemeEvaluator, SchemeKind};

/// Which dataset to run, with its generator configuration.
#[derive(Debug, Clone)]
pub enum DatasetConfig {
    /// Synthetic power-demand data and the autoencoder catalog.
    Univariate(PowerConfig),
    /// Synthetic MHEALTH-like data and the seq2seq catalog.
    Multivariate(MhealthConfig),
}

impl DatasetConfig {
    /// The dataset family.
    pub fn kind(&self) -> DatasetKind {
        match self {
            DatasetConfig::Univariate(_) => DatasetKind::Univariate,
            DatasetConfig::Multivariate(_) => DatasetKind::Multivariate,
        }
    }
}

/// Full pipeline configuration.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Dataset and generator parameters.
    pub dataset: DatasetConfig,
    /// Training epochs for the AD models.
    pub ad_epochs: usize,
    /// Policy-network training hyper-parameters.
    pub policy: TrainConfig,
    /// Hidden units of the IoT seq2seq model (multivariate only; the edge
    /// model doubles this and the cloud model is bidirectional, §II-A2).
    pub seq2seq_hidden: usize,
    /// Hidden units of the policy network (paper: 100).
    pub policy_hidden: usize,
    /// Master seed.
    pub seed: u64,
}

impl ExperimentConfig {
    /// Default univariate configuration (sized for release-mode runs).
    pub fn univariate() -> Self {
        Self {
            dataset: DatasetConfig::Univariate(PowerConfig::default()),
            ad_epochs: 150,
            policy: TrainConfig { epochs: 40, learning_rate: 1e-3, ..Default::default() },
            seq2seq_hidden: 32,
            policy_hidden: 100,
            seed: 42,
        }
    }

    /// Default multivariate configuration (sized for release-mode runs).
    pub fn multivariate() -> Self {
        Self {
            dataset: DatasetConfig::Multivariate(MhealthConfig {
                subjects: 4,
                session_len: 512,
                normal_session_multiplier: 6,
                ..Default::default()
            }),
            ad_epochs: 15,
            policy: TrainConfig { epochs: 30, learning_rate: 1e-3, ..Default::default() },
            seq2seq_hidden: 32,
            policy_hidden: 100,
            seed: 42,
        }
    }

    /// Payload size of one window in bytes (f32 samples over the socket).
    pub fn payload_bytes(&self) -> usize {
        match &self.dataset {
            DatasetConfig::Univariate(c) => c.samples_per_day * 4,
            DatasetConfig::Multivariate(c) => c.window * 18 * 4,
        }
    }
}

/// Everything the harness needs to print Tables I and II and the figures.
#[derive(Debug, Clone)]
pub struct ExperimentReport {
    /// Dataset family this report covers.
    pub kind: DatasetKind,
    /// Table I rows (per-model comparison).
    pub table1: Vec<Table1Row>,
    /// Table II rows (per-scheme comparison).
    pub table2: Vec<Table2Row>,
    /// The policy network's learning curve.
    pub training_curve: TrainingCurve,
    /// Adaptive scheme's action histogram (windows per layer).
    pub adaptive_actions: [usize; 3],
    /// Number of windows in the evaluation corpus.
    pub eval_windows: usize,
}

/// A fully assembled experiment, exposing each pipeline stage.
pub struct Experiment {
    config: ExperimentConfig,
    topology: HecTopology,
    /// The standardised, split corpora.
    pub split: PaperSplit,
    /// The per-channel scaling fitted on the corpus' normal windows —
    /// kept so externally supplied windows (e.g. an amplified replay
    /// trace) can be brought into the same space the detectors were
    /// trained in.
    standardizer: Standardizer,
    catalog: ModelCatalog,
    thresholds: [f32; 3],
}

impl Experiment {
    /// Stage 1–2: generate, standardise and split the dataset; build the
    /// (untrained) model catalog and the calibrated testbed topology.
    pub fn prepare(config: ExperimentConfig) -> Self {
        let corpus = match &config.dataset {
            DatasetConfig::Univariate(power) => PowerGenerator::new(power.clone()).load(),
            DatasetConfig::Multivariate(mh) => MhealthGenerator::new(mh.clone()).load(),
        }
        .expect("synthetic sources are infallible");
        Self::prepare_with_corpus(config, corpus)
    }

    /// Like [`Experiment::prepare`], but on an externally supplied corpus
    /// — the entry point for **real traces** loaded through a
    /// [`DatasetSource`] (see `hec_data::ingest`, feature `real-data`).
    /// `config.dataset` still selects the model catalog, delay
    /// calibration and payload sizing; its generator parameters must
    /// describe the corpus' window shape.
    ///
    /// # Panics
    ///
    /// Panics if the corpus is empty, if any window's shape differs from
    /// the configured one (`samples_per_day × 1` univariate,
    /// `window × 18` multivariate), or if any window holds non-finite
    /// samples (real-trace ingestion resolves those through its
    /// missing-value policy before the corpus reaches this point).
    pub fn prepare_with_corpus(config: ExperimentConfig, corpus: LabeledCorpus) -> Self {
        assert!(!corpus.is_empty(), "cannot prepare an experiment on an empty corpus");
        let kind = config.dataset.kind();
        let topology = HecTopology::paper_testbed(kind);
        let expected = match &config.dataset {
            DatasetConfig::Univariate(power) => (power.samples_per_day, 1),
            DatasetConfig::Multivariate(mh) => (mh.window, 18),
        };
        for (i, w) in corpus.windows.iter().enumerate() {
            assert_eq!(
                w.data.shape(),
                expected,
                "corpus window {i} has shape {:?}, but the configured dataset expects {:?}",
                w.data.shape(),
                expected
            );
        }
        let LabeledCorpus { windows, classes: class_of } = corpus;

        // Standardise with statistics from normal windows only (the paper
        // standardises all training tasks; detectors must not see anomaly
        // statistics).
        let normal_rows: Vec<Matrix> =
            windows.iter().filter(|w| !w.anomalous).map(|w| w.data.clone()).collect();
        assert!(!normal_rows.is_empty(), "corpus has no normal windows to standardise on");
        let stacked = stack_rows(&normal_rows);
        let standardizer = Standardizer::fit(&stacked);
        let windows: Vec<LabeledWindow> = windows
            .into_iter()
            .map(|w| LabeledWindow::new(standardizer.transform(&w.data), w.anomalous))
            .collect();

        let split = paper_split(&windows, &|i| class_of[i], config.seed);

        let catalog = match &config.dataset {
            DatasetConfig::Univariate(power) => {
                ModelCatalog::univariate(power.samples_per_day, config.seed)
            }
            DatasetConfig::Multivariate(_) => {
                ModelCatalog::multivariate(18, config.seq2seq_hidden, config.seed)
            }
        };

        Self { config, topology, split, standardizer, catalog, thresholds: [0.0; 3] }
    }

    /// Standardises externally supplied raw windows with the same
    /// per-channel statistics the experiment's corpus was standardised
    /// with — the bridge from an amplified ingestion-side corpus to the
    /// space the detectors and the oracle operate in.
    pub fn standardize_windows(&self, windows: &[LabeledWindow]) -> Vec<LabeledWindow> {
        windows
            .iter()
            .map(|w| LabeledWindow::new(self.standardizer.transform(&w.data), w.anomalous))
            .collect()
    }

    /// The calibrated testbed topology.
    pub fn topology(&self) -> &HecTopology {
        &self.topology
    }

    /// The per-channel standardizer currently bridging raw windows into
    /// the detectors' space (fitted on the corpus' normal windows at
    /// [`Experiment::prepare`] time, possibly refit since by online
    /// adaptation).
    pub fn standardizer(&self) -> &Standardizer {
        &self.standardizer
    }

    /// Replaces the standardizer — the online-adaptation path: a refit
    /// from a recent reservoir (see [`crate::adapt`]) takes effect for
    /// every subsequent [`Experiment::standardize_windows`] call. The
    /// detectors themselves are untouched; pair with
    /// [`Experiment::recalibrate_detectors`] when the score distribution
    /// moved too.
    ///
    /// # Panics
    ///
    /// Panics if `standardizer`'s channel count differs from the fitted
    /// one.
    pub fn set_standardizer(&mut self, standardizer: Standardizer) {
        assert_eq!(
            standardizer.channels(),
            self.standardizer.channels(),
            "replacement standardizer must keep the corpus channel count"
        );
        self.standardizer = standardizer;
    }

    /// The calibrated logPD thresholds currently in force (bottom-up),
    /// as last set by [`Experiment::train_detectors`] or
    /// [`Experiment::recalibrate_detectors`].
    pub fn thresholds(&self) -> [f32; 3] {
        self.thresholds
    }

    /// Recalibrates every detector's logPD scorer and threshold on fresh
    /// **normal** windows without retraining weights — the cheap
    /// in-fleet refresh of online adaptation. On success the experiment's
    /// threshold table is updated and returned (bottom-up).
    ///
    /// # Errors
    ///
    /// Propagates the first detector's [`FitError`]; detectors earlier in
    /// the ladder keep their new calibration in that case (callers treat
    /// a failed refresh as "skip this round", and the next successful
    /// refresh re-aligns all three).
    pub fn recalibrate_detectors(
        &mut self,
        calibration: &[LabeledWindow],
    ) -> Result<[f32; 3], FitError> {
        let mut thresholds = self.thresholds;
        for (layer, det) in self.catalog.detectors_mut().iter_mut().enumerate() {
            thresholds[layer] = det.recalibrate(calibration)?;
        }
        self.thresholds = thresholds;
        Ok(thresholds)
    }

    /// Replaces `layer`'s execution time in this experiment's topology —
    /// every downstream consumer (the static delay table, policy training,
    /// scheme evaluation) sees the override. This is how `repro_quant`'s
    /// measured quantised layer-0 delay feeds the reward economy.
    ///
    /// # Panics
    ///
    /// Panics if `layer` is out of range or `ms` is not finite and positive.
    pub fn override_exec_ms(&mut self, layer: usize, ms: f64) {
        self.topology = self.topology.clone().with_exec_ms(layer, ms);
    }

    /// The experiment configuration.
    pub fn config(&self) -> &ExperimentConfig {
        &self.config
    }

    /// Stage 3: train all three detectors on the AD training split and
    /// calibrate their scorers.
    ///
    /// # Panics
    ///
    /// Panics if a detector fails to fit (invalid split).
    pub fn train_detectors(&mut self) {
        let train = &self.split.ad_train;
        for (layer, det) in self.catalog.detectors_mut().iter_mut().enumerate() {
            let report = det
                .fit(train, self.config.ad_epochs)
                .unwrap_or_else(|e| panic!("failed to fit {}: {e}", det.name()));
            self.thresholds[layer] = report.threshold;
        }
    }

    /// Stage 4: Table I — evaluate each detector on the AD test split.
    pub fn table1(&mut self) -> Vec<Table1Row> {
        let test = &self.split.ad_test;
        let mut rows = Vec::with_capacity(3);
        for (layer, det) in self.catalog.detectors_mut().iter_mut().enumerate() {
            let mut confusion = BinaryConfusion::new();
            for (d, w) in det.detect_batch(test).into_iter().zip(test.iter()) {
                confusion.record(d.anomalous, w.anomalous);
            }
            rows.push(Table1Row {
                model: det.name().to_owned(),
                layer: hec_anomaly::HecLayer::from_index(layer),
                params: det.param_count(),
                accuracy_pct: confusion.accuracy() * 100.0,
                f1: confusion.f1(),
                exec_ms: self.topology.exec_ms(layer),
            });
        }
        rows
    }

    /// Stage 5: precompute the frozen oracle over a corpus.
    pub fn oracle_over(&mut self, windows: &[LabeledWindow]) -> Oracle {
        Oracle::precompute_with_thresholds(&mut self.catalog, windows, self.thresholds)
    }

    /// The static per-action delay table of this experiment's topology
    /// and payload — the unloaded `t_e2e` ladder behind Table II, exposed
    /// as a [`StaticDelays`] source so training and ablations share one
    /// reward path with the fleet-observed delays.
    pub fn static_delays(&self) -> StaticDelays {
        static_delay_table(&self.topology, self.config.payload_bytes())
    }

    /// Stage 6: train the policy network on the policy-training corpus
    /// against the **static** delay table (the paper's original training
    /// regime; see [`crate::fleet_train`] for the load-aware variant).
    /// Returns the trained policy, its context scaler and the learning curve.
    pub fn train_policy(
        &mut self,
        policy_oracle: &Oracle,
    ) -> (PolicyNetwork, ContextScaler, TrainingCurve) {
        let contexts = policy_oracle.contexts();
        let scaler = ContextScaler::fit(&contexts);
        let scaled = scaler.transform_all(&contexts);
        let reward = RewardModel::new(self.config.dataset.kind().paper_alpha());
        let delays = self.static_delays();

        let input_dim = scaled[0].len();
        let policy = PolicyNetwork::new(
            input_dim,
            self.config.policy_hidden,
            self.topology.num_layers(),
            self.config.seed,
        );
        let mut trainer = PolicyTrainer::new(policy, self.config.policy);
        let curve = trainer.train_with_delays(
            &scaled,
            &mut |i, a| policy_oracle.correct(i, a),
            &delays,
            &reward,
        );
        (trainer.into_policy(), scaler, curve)
    }

    /// Stage 7: Table II — evaluate all five schemes on an oracle corpus.
    pub fn table2(
        &self,
        eval_oracle: &Oracle,
        policy: &mut PolicyNetwork,
        scaler: &ContextScaler,
    ) -> (Vec<Table2Row>, [usize; 3]) {
        let reward = RewardModel::new(self.config.dataset.kind().paper_alpha());
        let ev = SchemeEvaluator::new(&self.topology, self.config.payload_bytes(), reward);
        let mut rows = Vec::with_capacity(5);
        let mut adaptive_actions = [0usize; 3];
        for kind in SchemeKind::ALL {
            let result = match kind {
                SchemeKind::Adaptive => ev.evaluate(kind, eval_oracle, Some(policy), Some(scaler)),
                _ => ev.evaluate(kind, eval_oracle, None, None),
            };
            if kind == SchemeKind::Adaptive {
                adaptive_actions = result.action_histogram;
            }
            rows.push(Table2Row {
                scheme: kind,
                f1: result.confusion.f1(),
                accuracy_pct: result.confusion.accuracy() * 100.0,
                delay_ms: result.mean_delay_ms,
                reward: result.reward_x100,
            });
        }
        (rows, adaptive_actions)
    }

    /// Runs the whole pipeline and assembles the report.
    pub fn run(config: ExperimentConfig) -> ExperimentReport {
        let kind = config.dataset.kind();
        let mut exp = Self::prepare(config);
        exp.train_detectors();
        let table1 = exp.table1();

        let policy_corpus = exp.split.policy_train.clone();
        let policy_oracle = exp.oracle_over(&policy_corpus);
        let (mut policy, scaler, training_curve) = exp.train_policy(&policy_oracle);

        let eval_corpus = exp.split.full.clone();
        let eval_oracle = exp.oracle_over(&eval_corpus);
        let (table2, adaptive_actions) = exp.table2(&eval_oracle, &mut policy, &scaler);

        ExperimentReport {
            kind,
            table1,
            table2,
            training_curve,
            adaptive_actions,
            eval_windows: eval_oracle.len(),
        }
    }
}

/// The static per-action delay table for a topology and payload: the
/// unloaded end-to-end `t_e2e` of every layer, as a [`StaticDelays`]
/// source. Every consumer of the old "fixed delay table" reward path goes
/// through this (training, ablations, figures), so swapping in observed
/// fleet delays is a one-argument change.
pub fn static_delay_table(topology: &HecTopology, payload_bytes: usize) -> StaticDelays {
    StaticDelays::new(
        (0..topology.num_layers()).map(|l| topology.end_to_end_ms(l, payload_bytes)).collect(),
    )
}

/// Vertically stacks matrices (same column count).
fn stack_rows(mats: &[Matrix]) -> Matrix {
    assert!(!mats.is_empty(), "nothing to stack");
    let mut out = mats[0].clone();
    for m in &mats[1..] {
        out = out.vconcat(m);
    }
    out
}

/// Re-export of the MHEALTH activity enum for example binaries.
pub type MhealthActivity = Activity;

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_univariate() -> ExperimentConfig {
        ExperimentConfig {
            dataset: DatasetConfig::Univariate(PowerConfig {
                days: 120,
                samples_per_day: 24,
                anomaly_rate: 0.15,
                noise_std: 0.03,
                seed: 7,
            }),
            ad_epochs: 60,
            policy: TrainConfig { epochs: 25, learning_rate: 2e-3, ..Default::default() },
            seq2seq_hidden: 8,
            policy_hidden: 32,
            seed: 7,
        }
    }

    #[test]
    fn univariate_pipeline_end_to_end() {
        let report = Experiment::run(tiny_univariate());
        assert_eq!(report.kind, DatasetKind::Univariate);
        assert_eq!(report.table1.len(), 3);
        assert_eq!(report.table2.len(), 5);

        // Table I invariants: params ladder up, exec time ladders down.
        assert!(report.table1[0].params < report.table1[2].params);
        assert!(report.table1[0].exec_ms > report.table1[2].exec_ms);

        // Table II invariants.
        let by_scheme =
            |k: SchemeKind| report.table2.iter().find(|r| r.scheme == k).expect("scheme present");
        let iot = by_scheme(SchemeKind::IoTDevice);
        let cloud = by_scheme(SchemeKind::Cloud);
        let adaptive = by_scheme(SchemeKind::Adaptive);
        let successive = by_scheme(SchemeKind::Successive);

        assert!(iot.delay_ms < cloud.delay_ms);
        assert!(adaptive.delay_ms < cloud.delay_ms, "adaptive should undercut always-cloud");
        assert!(successive.reward.is_none());
        assert!(adaptive.reward.is_some());
        // Sanity: every accuracy is a percentage.
        for row in &report.table2 {
            assert!((0.0..=100.0).contains(&row.accuracy_pct), "{row:?}");
        }
        // The policy must actually mix actions or pick a sensible single
        // layer; at minimum the histogram sums to the corpus size.
        assert_eq!(report.adaptive_actions.iter().sum::<usize>(), report.eval_windows);
    }

    #[test]
    fn stages_can_run_separately() {
        let mut exp = Experiment::prepare(tiny_univariate());
        assert_eq!(exp.topology().num_layers(), 3);
        exp.train_detectors();
        let t1 = exp.table1();
        assert_eq!(t1.len(), 3);
        let corpus = exp.split.policy_train.clone();
        let oracle = exp.oracle_over(&corpus);
        assert_eq!(oracle.len(), corpus.len());
        let (_policy, scaler, curve) = exp.train_policy(&oracle);
        assert_eq!(scaler.dim(), 4);
        assert!(!curve.mean_reward_per_epoch.is_empty());
    }

    #[test]
    fn payload_bytes_reflect_window_shape() {
        assert_eq!(ExperimentConfig::univariate().payload_bytes(), 96 * 4);
        assert_eq!(ExperimentConfig::multivariate().payload_bytes(), 128 * 18 * 4);
    }

    #[test]
    fn prepare_with_corpus_matches_prepare_for_synthetic_sources() {
        let config = tiny_univariate();
        let via_prepare = Experiment::prepare(config.clone());
        let corpus = match &config.dataset {
            DatasetConfig::Univariate(power) => PowerGenerator::new(power.clone()).load().unwrap(),
            _ => unreachable!(),
        };
        let via_corpus = Experiment::prepare_with_corpus(config, corpus);
        assert_eq!(via_prepare.split.sizes(), via_corpus.split.sizes());
        for (a, b) in via_prepare.split.ad_train.iter().zip(via_corpus.split.ad_train.iter()) {
            assert_eq!(a.data, b.data);
        }
    }

    #[test]
    #[should_panic(expected = "expects (24, 1)")]
    fn prepare_with_corpus_rejects_mismatched_window_shapes() {
        use hec_data::LabeledWindow;
        use hec_tensor::Matrix;
        let windows: Vec<LabeledWindow> =
            (0..12).map(|_| LabeledWindow::new(Matrix::zeros(8, 1), false)).collect();
        let classes = vec![None; 12];
        let _ = Experiment::prepare_with_corpus(
            tiny_univariate(),
            LabeledCorpus::new(windows, classes),
        );
    }
}
