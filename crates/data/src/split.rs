//! The paper's train/test split protocol.
//!
//! §III-A: *"we select 70% of normal samples of all the subjects as the
//! training set; and the rest 30% of normal samples plus 5% of each of the
//! other activities as the test set. To train the policy network, we select
//! 30% of normal samples and 5% of each of the other activities as the
//! training set, and the whole dataset as the test set."*

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::window::LabeledWindow;

/// The result of [`paper_split`]: the paper's four evaluation corpora.
#[derive(Debug, Clone)]
pub struct PaperSplit {
    /// 70 % of normal windows — AD model training set.
    pub ad_train: Vec<LabeledWindow>,
    /// Remaining 30 % of normal windows + 5 % of each anomaly class — AD
    /// model test set.
    pub ad_test: Vec<LabeledWindow>,
    /// 30 % of normal windows + 5 % of each anomaly class — policy-network
    /// training set (bandit exploration corpus).
    pub policy_train: Vec<LabeledWindow>,
    /// The whole dataset — policy-network test set.
    pub full: Vec<LabeledWindow>,
}

impl PaperSplit {
    /// Sanity counters: `(train_normals, test_total, policy_total, full_total)`.
    pub fn sizes(&self) -> (usize, usize, usize, usize) {
        (self.ad_train.len(), self.ad_test.len(), self.policy_train.len(), self.full.len())
    }
}

/// Splits a corpus per the paper's protocol.
///
/// * `windows` — the full corpus;
/// * `class_of` — maps each window to an anomaly-class id (`None` = normal);
///   the "5 % of each class" sampling is stratified over these ids;
/// * `seed` — shuffling seed.
///
/// # Panics
///
/// Panics if there are fewer than 10 normal windows (the split would be
/// degenerate).
pub fn paper_split(
    windows: &[LabeledWindow],
    class_of: &dyn Fn(usize) -> Option<usize>,
    seed: u64,
) -> PaperSplit {
    let mut rng = StdRng::seed_from_u64(seed);

    let mut normal_idx: Vec<usize> = Vec::new();
    let mut by_class: std::collections::BTreeMap<usize, Vec<usize>> =
        std::collections::BTreeMap::new();
    for (i, w) in windows.iter().enumerate() {
        match class_of(i) {
            None => {
                assert!(!w.anomalous, "window {i} has no class but is labelled anomalous");
                normal_idx.push(i);
            }
            Some(c) => by_class.entry(c).or_default().push(i),
        }
    }
    assert!(normal_idx.len() >= 10, "need at least 10 normal windows, got {}", normal_idx.len());

    normal_idx.shuffle(&mut rng);
    let split_at = (normal_idx.len() as f64 * 0.7).round() as usize;
    let (train_normals, rest_normals) = normal_idx.split_at(split_at);

    // 5% of each anomaly class, at least one window per class.
    let mut anomaly_sample: Vec<usize> = Vec::new();
    for idxs in by_class.values() {
        let mut idxs = idxs.clone();
        idxs.shuffle(&mut rng);
        let take = ((idxs.len() as f64 * 0.05).round() as usize).max(1).min(idxs.len());
        anomaly_sample.extend_from_slice(&idxs[..take]);
    }

    let collect = |idxs: &[usize]| -> Vec<LabeledWindow> {
        idxs.iter().map(|&i| windows[i].clone()).collect()
    };

    let mut ad_test_idx: Vec<usize> = rest_normals.to_vec();
    ad_test_idx.extend_from_slice(&anomaly_sample);
    ad_test_idx.shuffle(&mut rng);

    // Policy training reuses the same recipe (fresh shuffle for ordering).
    let mut policy_idx = ad_test_idx.clone();
    policy_idx.shuffle(&mut rng);

    PaperSplit {
        ad_train: collect(train_normals),
        ad_test: collect(&ad_test_idx),
        policy_train: collect(&policy_idx),
        full: windows.to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hec_tensor::Matrix;

    fn corpus(normals: usize, classes: &[usize]) -> (Vec<LabeledWindow>, Vec<Option<usize>>) {
        let mut windows = Vec::new();
        let mut class_ids = Vec::new();
        for i in 0..normals {
            windows.push(LabeledWindow::new(Matrix::filled(4, 1, i as f32), false));
            class_ids.push(None);
        }
        for (c, &count) in classes.iter().enumerate() {
            for i in 0..count {
                windows
                    .push(LabeledWindow::new(Matrix::filled(4, 1, -((c * 100 + i) as f32)), true));
                class_ids.push(Some(c));
            }
        }
        (windows, class_ids)
    }

    #[test]
    fn split_fractions() {
        let (windows, ids) = corpus(100, &[40, 40]);
        let split = paper_split(&windows, &|i| ids[i], 1);
        assert_eq!(split.ad_train.len(), 70);
        assert!(split.ad_train.iter().all(|w| !w.anomalous));
        // 30 normals + 2 per class (5% of 40 = 2).
        assert_eq!(split.ad_test.len(), 30 + 4);
        assert_eq!(split.policy_train.len(), split.ad_test.len());
        assert_eq!(split.full.len(), windows.len());
    }

    #[test]
    fn every_class_represented_in_test() {
        let (windows, ids) = corpus(50, &[10, 10, 10]);
        let split = paper_split(&windows, &|i| ids[i], 2);
        let anomalies = split.ad_test.iter().filter(|w| w.anomalous).count();
        assert!(anomalies >= 3, "each of 3 classes must contribute at least one window");
    }

    #[test]
    fn deterministic_given_seed() {
        let (windows, ids) = corpus(40, &[20]);
        let a = paper_split(&windows, &|i| ids[i], 9);
        let b = paper_split(&windows, &|i| ids[i], 9);
        assert_eq!(a.ad_train.len(), b.ad_train.len());
        for (x, y) in a.ad_train.iter().zip(b.ad_train.iter()) {
            assert_eq!(x.data, y.data);
        }
    }

    #[test]
    fn different_seed_shuffles_differently() {
        let (windows, ids) = corpus(40, &[20]);
        let a = paper_split(&windows, &|i| ids[i], 1);
        let b = paper_split(&windows, &|i| ids[i], 2);
        let same =
            a.ad_train.iter().zip(b.ad_train.iter()).filter(|(x, y)| x.data == y.data).count();
        assert!(same < a.ad_train.len(), "shuffles identical across seeds");
    }

    #[test]
    #[should_panic(expected = "at least 10 normal windows")]
    fn too_few_normals_panics() {
        let (windows, ids) = corpus(5, &[5]);
        let _ = paper_split(&windows, &|i| ids[i], 0);
    }

    #[test]
    #[should_panic(expected = "labelled anomalous")]
    fn inconsistent_labelling_panics() {
        let windows = vec![LabeledWindow::new(Matrix::zeros(2, 1), true); 12];
        let _ = paper_split(&windows, &|_| None, 0);
    }
}
