//! The [`Layer`] abstraction and a [`Sequential`] container.

use hec_tensor::Matrix;

use crate::loss::Loss;
use crate::optim::Optimizer;

/// A differentiable layer with cached forward state.
///
/// The contract mirrors classic define-by-run frameworks:
///
/// 1. [`Layer::forward`] caches whatever the backward pass needs;
/// 2. [`Layer::backward`] consumes the cache, **accumulates** parameter
///    gradients internally, and returns the gradient w.r.t. its input;
/// 3. [`Layer::visit_params`] walks `(parameter, gradient)` pairs in a stable
///    order so an [`Optimizer`] can update them and zero the gradients.
pub trait Layer {
    /// Forward pass over a batch (`rows = batch`, `cols = features`).
    /// `training` enables dropout and gradient caching.
    fn forward(&mut self, input: &Matrix, training: bool) -> Matrix;

    /// Backward pass: receives `∂L/∂output`, accumulates parameter gradients,
    /// returns `∂L/∂input`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if called without a preceding training-mode
    /// [`Layer::forward`].
    fn backward(&mut self, grad_output: &Matrix) -> Matrix;

    /// Visits every `(parameter, gradient)` pair in a stable order.
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Matrix, &mut Matrix));

    /// Total number of trainable scalars (weights + biases).
    fn param_count(&self) -> usize;

    /// Sum of squared kernel weights (for `l2` regularisation). Biases are
    /// excluded, matching Keras `kernel_regularizer` semantics used by the
    /// paper (§II-A2).
    fn kernel_norm_sq(&self) -> f32 {
        0.0
    }

    /// Adds `2·λ·W` to each kernel gradient (the gradient of `λ‖W‖²`).
    fn apply_l2(&mut self, _lambda: f32) {}
}

/// A stack of layers applied in order.
///
/// This is the shape of every feed-forward model in the paper: the three
/// autoencoders and the policy network.
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl Sequential {
    /// Creates a sequential model from the given layers.
    ///
    /// # Panics
    ///
    /// Panics if `layers` is empty.
    pub fn new(layers: Vec<Box<dyn Layer>>) -> Self {
        assert!(!layers.is_empty(), "sequential model needs at least one layer");
        Self { layers }
    }

    /// Number of layers.
    pub fn depth(&self) -> usize {
        self.layers.len()
    }

    /// Total trainable parameter count (the paper's Table I "#Parameters").
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(|l| l.param_count()).sum()
    }

    /// Inference-mode forward pass (dropout disabled).
    pub fn predict(&mut self, input: &Matrix) -> Matrix {
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward(&x, false);
        }
        x
    }

    /// Training-mode forward pass (dropout enabled, caches kept).
    pub fn forward_training(&mut self, input: &Matrix) -> Matrix {
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward(&x, true);
        }
        x
    }

    /// Backpropagates `grad` through every layer (reverse order), returning
    /// the gradient w.r.t. the model input.
    pub fn backward(&mut self, grad: &Matrix) -> Matrix {
        let mut g = grad.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g);
        }
        g
    }

    /// One optimisation step: forward, loss, backward, L2, parameter update.
    /// Returns the (unregularised) loss value before the update.
    ///
    /// `l2_lambda` is the kernel regularisation weight (the paper uses `1e-4`
    /// for the seq2seq models).
    pub fn train_batch(
        &mut self,
        input: &Matrix,
        target: &Matrix,
        loss: &dyn Loss,
        optimizer: &mut dyn Optimizer,
        l2_lambda: f32,
    ) -> f32 {
        let output = self.forward_training(input);
        let loss_value = loss.value(&output, target);
        let grad = loss.gradient(&output, target);
        self.backward(&grad);
        if l2_lambda > 0.0 {
            for layer in &mut self.layers {
                layer.apply_l2(l2_lambda);
            }
        }
        self.apply_gradients(optimizer);
        loss_value
    }

    /// Applies the optimizer to all accumulated gradients and zeroes them.
    pub fn apply_gradients(&mut self, optimizer: &mut dyn Optimizer) {
        let mut slot = 0usize;
        for layer in &mut self.layers {
            layer.visit_params(&mut |param, grad| {
                optimizer.step(slot, param, grad);
                grad.map_inplace(|_| 0.0);
                slot += 1;
            });
        }
    }

    /// Visits every `(parameter, gradient)` pair of every layer in order
    /// (e.g. for post-training weight quantization).
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Matrix, &mut Matrix)) {
        for layer in &mut self.layers {
            layer.visit_params(f);
        }
    }

    /// Sum of squared kernel weights across all layers.
    pub fn kernel_norm_sq(&self) -> f32 {
        self.layers.iter().map(|l| l.kernel_norm_sq()).sum()
    }

    /// Immutable access to the boxed layers (for introspection in reports).
    pub fn layers(&self) -> &[Box<dyn Layer>] {
        &self.layers
    }
}

impl std::fmt::Debug for Sequential {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Sequential({} layers, {} params)", self.depth(), self.param_count())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Activation;
    use crate::dense::Dense;
    use crate::loss::Mse;
    use crate::optim::Sgd;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_net(seed: u64) -> Sequential {
        let mut rng = StdRng::seed_from_u64(seed);
        Sequential::new(vec![
            Box::new(Dense::new(&mut rng, 2, 4, Activation::Tanh)),
            Box::new(Dense::new(&mut rng, 4, 1, Activation::Linear)),
        ])
    }

    #[test]
    fn learns_xor_ish_regression() {
        let mut net = tiny_net(3);
        let x = Matrix::from_rows(&[&[0.0, 0.0], &[0.0, 1.0], &[1.0, 0.0], &[1.0, 1.0]]);
        let y = Matrix::from_rows(&[&[0.0], &[1.0], &[1.0], &[0.0]]);
        let mut opt = Sgd::new(0.5);
        let mut last = f32::INFINITY;
        for _ in 0..2000 {
            last = net.train_batch(&x, &y, &Mse, &mut opt, 0.0);
        }
        assert!(last < 0.05, "failed to fit XOR: loss {last}");
    }

    #[test]
    fn param_count_sums_layers() {
        let net = tiny_net(0);
        // 2*4+4 + 4*1+1 = 17
        assert_eq!(net.param_count(), 17);
        assert_eq!(net.depth(), 2);
    }

    #[test]
    fn predict_is_deterministic() {
        let mut net = tiny_net(1);
        let x = Matrix::from_rows(&[&[0.3, -0.7]]);
        let a = net.predict(&x);
        let b = net.predict(&x);
        assert_eq!(a, b);
    }

    #[test]
    fn l2_shrinks_weights() {
        // With zero loss gradient pressure (target == output is impossible to
        // arrange exactly, so use tiny lr on loss but large l2), weights decay.
        let mut net = tiny_net(5);
        let x = Matrix::from_rows(&[&[0.5, 0.5]]);
        let before = net.kernel_norm_sq();
        let y = net.predict(&x);
        let mut opt = Sgd::new(0.1);
        for _ in 0..50 {
            net.train_batch(&x, &y, &Mse, &mut opt, 0.01);
        }
        let after = net.kernel_norm_sq();
        assert!(after < before, "l2 did not shrink kernels: {before} -> {after}");
    }

    #[test]
    #[should_panic(expected = "at least one layer")]
    fn empty_model_panics() {
        let _ = Sequential::new(vec![]);
    }

    #[test]
    fn debug_mentions_depth() {
        let net = tiny_net(0);
        assert!(format!("{net:?}").contains("2 layers"));
    }
}
