//! Per-channel zero-mean/unit-variance standardisation.

use serde::{Deserialize, Serialize};

use hec_tensor::Matrix;

/// A non-finite sample (NaN or ±∞) found where finite data is required.
///
/// Mean and standard deviation absorb a single NaN into *every* channel
/// statistic, silently poisoning every downstream reconstruction error and
/// policy reward — so standardisation refuses non-finite input outright.
/// Real-trace ingestion applies its missing-value policy *before* fitting
/// (see the `ingest` module), so a loaded corpus can never trip this.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NonFiniteError {
    /// Row (timestep) of the first offending sample.
    pub row: usize,
    /// Column (channel) of the first offending sample.
    pub col: usize,
}

impl std::fmt::Display for NonFiniteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "non-finite sample (NaN or ±inf) at row {}, channel {}: standardisation requires \
             finite data — apply a missing-value policy (e.g. the ingestion module's \
             reject/impute-previous) before fitting or transforming",
            self.row, self.col
        )
    }
}

impl std::error::Error for NonFiniteError {}

/// Returns the position of the first non-finite entry, if any.
pub(crate) fn first_non_finite(data: &Matrix) -> Option<NonFiniteError> {
    for (r, row) in data.iter_rows().enumerate() {
        for (c, &x) in row.iter().enumerate() {
            if !x.is_finite() {
                return Some(NonFiniteError { row: r, col: c });
            }
        }
    }
    None
}

/// Fitted per-channel standardiser: `x ↦ (x − µ_c) / σ_c`.
///
/// The paper standardises every training task and dataset to zero mean and
/// unit variance (§III-A). Fit on the **training** portion only, then apply
/// to everything, as usual.
///
/// # Example
///
/// ```rust
/// use hec_data::Standardizer;
/// use hec_tensor::Matrix;
///
/// let train = Matrix::from_rows(&[&[0.0, 10.0], &[2.0, 14.0], &[4.0, 18.0]]);
/// let s = Standardizer::fit(&train);
/// let z = s.transform(&train);
/// assert!(z.col(0).iter().sum::<f32>().abs() < 1e-5); // zero mean
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Standardizer {
    mean: Vec<f32>,
    std: Vec<f32>,
}

impl Standardizer {
    /// Fits per-column mean and (population) standard deviation.
    ///
    /// Columns with zero variance get `σ = 1` so transforming them maps to 0
    /// rather than dividing by zero.
    ///
    /// # Panics
    ///
    /// Panics with a [`NonFiniteError`] message if `data` contains NaN or
    /// ±∞ (use [`Standardizer::try_fit`] to handle the error instead).
    pub fn fit(data: &Matrix) -> Self {
        Self::try_fit(data).unwrap_or_else(|e| panic!("Standardizer::fit: {e}"))
    }

    /// Fallible [`Standardizer::fit`]: returns the position of the first
    /// non-finite sample instead of poisoning the statistics.
    pub fn try_fit(data: &Matrix) -> Result<Self, NonFiniteError> {
        if let Some(e) = first_non_finite(data) {
            return Err(e);
        }
        let d = data.cols();
        let n = data.rows() as f32;
        let mut mean = vec![0.0f32; d];
        for row in data.iter_rows() {
            for (m, &x) in mean.iter_mut().zip(row.iter()) {
                *m += x;
            }
        }
        for m in &mut mean {
            *m /= n;
        }
        let mut var = vec![0.0f32; d];
        for row in data.iter_rows() {
            for ((v, &m), &x) in var.iter_mut().zip(mean.iter()).zip(row.iter()) {
                let diff = x - m;
                *v += diff * diff;
            }
        }
        let std = var
            .into_iter()
            .map(|v| {
                let s = (v / n).sqrt();
                if s > 0.0 {
                    s
                } else {
                    1.0
                }
            })
            .collect();
        Ok(Self { mean, std })
    }

    /// Builds a standardiser from already-computed moments. Callers
    /// (the streaming `OnlineStandardizer::freeze`) are responsible for
    /// the fit invariants: `std` strictly positive (`σ = 1` fallback
    /// already applied) and both vectors the same length.
    pub(crate) fn from_moments(mean: Vec<f32>, std: Vec<f32>) -> Self {
        debug_assert_eq!(mean.len(), std.len());
        debug_assert!(std.iter().all(|&s| s > 0.0));
        Self { mean, std }
    }

    /// Number of channels this standardiser was fitted on.
    pub fn channels(&self) -> usize {
        self.mean.len()
    }

    /// Fitted per-channel means.
    pub fn mean(&self) -> &[f32] {
        &self.mean
    }

    /// Fitted per-channel standard deviations.
    pub fn std(&self) -> &[f32] {
        &self.std
    }

    /// Standardises a `time × channels` matrix.
    ///
    /// # Panics
    ///
    /// Panics if the column count differs from the fitted channel count, or
    /// with a [`NonFiniteError`] message if `data` contains NaN or ±∞ (use
    /// [`Standardizer::try_transform`] to handle the latter as an error).
    pub fn transform(&self, data: &Matrix) -> Matrix {
        self.try_transform(data).unwrap_or_else(|e| panic!("Standardizer::transform: {e}"))
    }

    /// Fallible [`Standardizer::transform`]: returns the position of the
    /// first non-finite sample instead of propagating it into every
    /// downstream score.
    ///
    /// # Panics
    ///
    /// Panics if the column count differs from the fitted channel count
    /// (a caller bug, not a data defect).
    pub fn try_transform(&self, data: &Matrix) -> Result<Matrix, NonFiniteError> {
        assert_eq!(data.cols(), self.channels(), "channel count mismatch");
        if let Some(e) = first_non_finite(data) {
            return Err(e);
        }
        let mut out = data.clone();
        for r in 0..out.rows() {
            let row = out.row_mut(r);
            for ((x, &m), &s) in row.iter_mut().zip(self.mean.iter()).zip(self.std.iter()) {
                *x = (*x - m) / s;
            }
        }
        Ok(out)
    }

    /// Inverse transform: `z ↦ z·σ_c + µ_c`.
    ///
    /// # Panics
    ///
    /// Panics if the column count differs from the fitted channel count.
    pub fn inverse_transform(&self, data: &Matrix) -> Matrix {
        assert_eq!(data.cols(), self.channels(), "channel count mismatch");
        let mut out = data.clone();
        for r in 0..out.rows() {
            let row = out.row_mut(r);
            for ((x, &m), &s) in row.iter_mut().zip(self.mean.iter()).zip(self.std.iter()) {
                *x = *x * s + m;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transform_gives_zero_mean_unit_variance() {
        let data = Matrix::from_rows(&[&[1.0, 100.0], &[2.0, 200.0], &[3.0, 300.0], &[4.0, 400.0]]);
        let s = Standardizer::fit(&data);
        let z = s.transform(&data);
        for c in 0..2 {
            let col = z.col(c);
            let mean: f32 = col.iter().sum::<f32>() / col.len() as f32;
            let var: f32 =
                col.iter().map(|&x| (x - mean) * (x - mean)).sum::<f32>() / col.len() as f32;
            assert!(mean.abs() < 1e-5, "col {c} mean {mean}");
            assert!((var - 1.0).abs() < 1e-4, "col {c} var {var}");
        }
    }

    #[test]
    fn roundtrip_inverse() {
        let data = Matrix::from_rows(&[&[1.5, -3.0], &[0.5, 9.0], &[2.5, 3.0]]);
        let s = Standardizer::fit(&data);
        let back = s.inverse_transform(&s.transform(&data));
        for (a, b) in back.as_slice().iter().zip(data.as_slice().iter()) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn constant_column_maps_to_zero() {
        let data = Matrix::from_rows(&[&[5.0], &[5.0], &[5.0]]);
        let s = Standardizer::fit(&data);
        let z = s.transform(&data);
        assert!(z.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    #[should_panic(expected = "channel count mismatch")]
    fn mismatched_channels_panic() {
        let s = Standardizer::fit(&Matrix::zeros(3, 2));
        let _ = s.transform(&Matrix::zeros(3, 3));
    }

    #[test]
    fn fit_rejects_nan_with_position() {
        let data = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, f32::NAN], &[5.0, 6.0]]);
        let err = Standardizer::try_fit(&data).unwrap_err();
        assert_eq!(err, NonFiniteError { row: 1, col: 1 });
        assert!(err.to_string().contains("row 1, channel 1"), "{err}");
        assert!(err.to_string().contains("missing-value policy"), "{err}");
    }

    #[test]
    fn fit_rejects_infinities() {
        for bad in [f32::INFINITY, f32::NEG_INFINITY] {
            let data = Matrix::from_rows(&[&[bad], &[1.0]]);
            let err = Standardizer::try_fit(&data).unwrap_err();
            assert_eq!(err, NonFiniteError { row: 0, col: 0 });
        }
    }

    #[test]
    fn transform_rejects_non_finite_input() {
        let s = Standardizer::fit(&Matrix::from_rows(&[&[0.0], &[2.0]]));
        let err = s.try_transform(&Matrix::from_rows(&[&[f32::NAN]])).unwrap_err();
        assert_eq!(err, NonFiniteError { row: 0, col: 0 });
    }

    #[test]
    #[should_panic(expected = "non-finite sample")]
    fn fit_panics_with_clear_message_on_nan() {
        let _ = Standardizer::fit(&Matrix::from_rows(&[&[f32::NAN], &[1.0]]));
    }

    #[test]
    #[should_panic(expected = "non-finite sample")]
    fn transform_panics_with_clear_message_on_inf() {
        let s = Standardizer::fit(&Matrix::from_rows(&[&[0.0], &[2.0]]));
        let _ = s.transform(&Matrix::from_rows(&[&[f32::INFINITY]]));
    }

    #[test]
    fn try_fit_matches_fit_on_clean_data() {
        let data = Matrix::from_rows(&[&[1.0, -2.0], &[0.5, 4.0], &[2.0, 1.0]]);
        let a = Standardizer::fit(&data);
        let b = Standardizer::try_fit(&data).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.transform(&data), b.try_transform(&data).unwrap());
    }

    #[test]
    fn applies_train_statistics_to_test() {
        let train = Matrix::from_rows(&[&[0.0], &[2.0]]); // mean 1, std 1
        let s = Standardizer::fit(&train);
        let test = Matrix::from_rows(&[&[3.0]]);
        let z = s.transform(&test);
        assert!((z[(0, 0)] - 2.0).abs() < 1e-6);
    }
}
