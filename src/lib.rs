//! # hec-ad
//!
//! A from-scratch Rust reproduction of *"Contextual-Bandit Anomaly Detection
//! for IoT Data in Distributed Hierarchical Edge Computing"* (Ngo, Luo,
//! Chaouchi, Quek — IEEE ICDCS 2020).
//!
//! This meta-crate re-exports the whole stack:
//!
//! | Crate | Contents |
//! |---|---|
//! | [`tensor`] | dense `f32` matrices, Gaussian logPD, vector ops |
//! | [`nn`] | dense / LSTM / BiLSTM / seq2seq networks with manual backprop |
//! | [`data`] | synthetic power-demand & MHEALTH-like datasets, splits, metrics |
//! | [`anomaly`] | the six AD models and the logPD anomaly scorer |
//! | [`sim`] | the 3-layer HEC testbed simulator (devices, links, runtime) |
//! | [`bandit`] | policy network, REINFORCE + reinforcement comparison, ε-greedy, LinUCB |
//! | [`core`] | the five schemes, the experiment pipeline, tables, ablations |
//! | [`telemetry`] | deterministic metrics registry, span tracing, alloc tracking |
//!
//! # Quickstart
//!
//! ```rust,no_run
//! use hec_ad::core::{Experiment, ExperimentConfig};
//!
//! // Runs the full univariate pipeline (Table I + Table II).
//! let report = Experiment::run(ExperimentConfig::univariate());
//! println!("{}", hec_ad::core::format_table2(&report.table2));
//! ```
//!
//! See `examples/` for runnable end-to-end scenarios and the `hec-bench`
//! crate for the binaries that regenerate every table and figure of the
//! paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use hec_anomaly as anomaly;
pub use hec_bandit as bandit;
pub use hec_core as core;
pub use hec_data as data;
pub use hec_nn as nn;
pub use hec_sim as sim;
pub use hec_telemetry as telemetry;
pub use hec_tensor as tensor;
