//! Univariate power-demand scenario: inspect the synthetic dataset, train
//! the three autoencoders, and look at how detection hardness maps to model
//! capacity — the paper's §II-A1 pipeline in isolation.
//!
//! ```text
//! cargo run --release --example univariate_power
//! ```

use hec_ad::anomaly::ModelCatalog;
use hec_ad::data::power::{AnomalyKind, PowerConfig, PowerGenerator};
use hec_ad::data::{paper_split, LabeledWindow, Standardizer};
use hec_ad::tensor::Matrix;

fn main() {
    let config = PowerConfig {
        days: 400,
        samples_per_day: 48,
        anomaly_rate: 0.15,
        noise_std: 0.03,
        seed: 11,
    };
    let gen = PowerGenerator::new(config.clone());
    let days = gen.generate();

    // Dataset tour.
    let mut per_kind = [0usize; 3];
    let mut normal = 0usize;
    for (_, kind) in &days {
        match kind {
            None => normal += 1,
            Some(k) => per_kind[k.class_index()] += 1,
        }
    }
    println!("dataset: {} days ({normal} normal)", days.len());
    for kind in AnomalyKind::ALL {
        println!("  {kind:?}: {} days", per_kind[kind.class_index()]);
    }

    // Standardise on normal days, split per the paper.
    let normals: Vec<Matrix> =
        days.iter().filter(|(w, _)| !w.anomalous).map(|(w, _)| w.data.clone()).collect();
    let mut stacked = normals[0].clone();
    for m in &normals[1..] {
        stacked = stacked.vconcat(m);
    }
    let std = Standardizer::fit(&stacked);
    let windows: Vec<LabeledWindow> =
        days.iter().map(|(w, _)| LabeledWindow::new(std.transform(&w.data), w.anomalous)).collect();
    let classes: Vec<Option<usize>> =
        days.iter().map(|(_, k)| k.map(|x| x.class_index())).collect();
    let split = paper_split(&windows, &|i| classes[i], 11);
    println!(
        "\nsplit: {} AD-train / {} AD-test / {} policy-train",
        split.ad_train.len(),
        split.ad_test.len(),
        split.policy_train.len()
    );

    // Train the catalog and report per-hardness detection rates.
    let mut catalog = ModelCatalog::univariate(config.samples_per_day, 11);
    for det in catalog.detectors_mut() {
        let r = det.fit(&split.ad_train, 120).expect("fit");
        println!(
            "trained {:<10} ({} params): loss {:.5}, threshold {:.2}",
            det.name(),
            det.param_count(),
            r.final_loss,
            r.threshold
        );
    }

    println!("\ndetection rate by anomaly hardness (per model):");
    println!(
        "{:<12} {:>9} {:>9} {:>9} {:>12}",
        "Model", "Holiday", "Outage", "Damped", "FalsePos(%)"
    );
    for det in catalog.detectors_mut() {
        let mut caught = [0usize; 3];
        let mut totals = [0usize; 3];
        let mut fp = 0usize;
        let mut negatives = 0usize;
        for (i, w) in windows.iter().enumerate() {
            let d = det.detect(w);
            match classes[i] {
                Some(c) => {
                    totals[c] += 1;
                    if d.anomalous {
                        caught[c] += 1;
                    }
                }
                None => {
                    negatives += 1;
                    if d.anomalous {
                        fp += 1;
                    }
                }
            }
        }
        let pct = |c: usize, t: usize| 100.0 * c as f64 / t.max(1) as f64;
        println!(
            "{:<12} {:>8.1}% {:>8.1}% {:>8.1}% {:>11.1}%",
            det.name(),
            pct(caught[0], totals[0]),
            pct(caught[1], totals[1]),
            pct(caught[2], totals[2]),
            pct(fp, negatives)
        );
    }
    println!("\nexpected shape: every model catches holidays; only the larger models");
    println!("catch damped-peak days — the hardness/capacity matching the bandit exploits.");
}
